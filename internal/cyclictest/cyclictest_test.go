package cyclictest

import (
	"testing"
	"time"

	"github.com/yasmin-rt/yasmin/internal/kernel"
	"github.com/yasmin-rt/yasmin/internal/platform"
)

// smallOpts keeps unit tests quick; the full paper options run in the
// benchmark harness.
func smallOpts() Options {
	return Options{Threads: 3, Interval: 10 * time.Millisecond, Loops: 200}
}

func TestOptionsValidation(t *testing.T) {
	bad := []Options{
		{Threads: 0, Interval: time.Millisecond, Loops: 1},
		{Threads: 1, Interval: 0, Loops: 1},
		{Threads: 1, Interval: time.Millisecond, Loops: 0},
		{Threads: 1, Interval: time.Millisecond, Loops: 1, Distance: -1},
	}
	pl := platform.OdroidXU4()
	for i, o := range bad {
		if _, err := RunNative(1, pl, kernel.Ideal{}, o); err == nil {
			t.Errorf("options %d accepted", i)
		}
	}
}

func TestNativeIdealKernelZeroLatency(t *testing.T) {
	res, err := RunNative(1, platform.OdroidXU4(), kernel.Ideal{}, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	min, max, avg := res.Summary()
	if min != 0 || max != 0 || avg != 0 {
		t.Errorf("ideal kernel latency <%v,%v,%v>, want zeros", min, max, avg)
	}
	if res.Combined.Count() != int64(3*200) {
		t.Errorf("samples = %d, want 600", res.Combined.Count())
	}
}

func TestNativeKernelOrdering(t *testing.T) {
	// Under identical load, expected ordering of average wake-up latency:
	// GSN-EDF < PREEMPT_RT < P-RES (~1ms).
	pl := platform.OdroidXU4()
	opts := smallOpts()
	load := 0.91
	gsn, err := RunNative(7, pl, &kernel.LitmusGSNEDF{Load: load}, opts)
	if err != nil {
		t.Fatal(err)
	}
	prt, err := RunNative(7, pl, &kernel.PreemptRT{Load: load}, opts)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := RunNative(7, pl, &kernel.LitmusPRES{Load: load}, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, _, gsnAvg := gsn.Summary()
	_, _, prtAvg := prt.Summary()
	presMin, _, presAvg := pres.Summary()
	if !(gsnAvg < prtAvg) {
		t.Errorf("GSN-EDF avg %v not below PREEMPT_RT avg %v", gsnAvg, prtAvg)
	}
	if !(prtAvg < presAvg) {
		t.Errorf("PREEMPT_RT avg %v not below P-RES avg %v", prtAvg, presAvg)
	}
	if presMin < 900*time.Microsecond {
		t.Errorf("P-RES min %v, want ~1ms (reservation boundary)", presMin)
	}
}

func TestYASMINAddsOverheadOverNative(t *testing.T) {
	pl := platform.OdroidXU4()
	opts := smallOpts()
	k := &kernel.LitmusGSNEDF{Load: 0.91}
	native, err := RunNative(3, pl, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	yas, err := RunYASMIN(3, pl, &kernel.LitmusGSNEDF{Load: 0.91}, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, _, nAvg := native.Summary()
	_, _, yAvg := yas.Summary()
	if !(yAvg > nAvg) {
		t.Errorf("YASMIN avg %v not above native %v: middleware overhead missing", yAvg, nAvg)
	}
	// ... but within the same order of magnitude (paper: 74 -> 170µs).
	if yAvg > 6*nAvg {
		t.Errorf("YASMIN avg %v implausibly above native %v", yAvg, nAvg)
	}
	if yas.Combined.Count() != int64(opts.Threads*opts.Loops) {
		t.Errorf("samples = %d, want %d", yas.Combined.Count(), opts.Threads*opts.Loops)
	}
}

func TestYASMINNeedsEnoughCores(t *testing.T) {
	opts := Options{Threads: 6, Interval: 10 * time.Millisecond, Loops: 10}
	if _, err := RunYASMIN(1, platform.ApalisTK1(), kernel.Ideal{}, opts); err == nil {
		t.Error("want error: 6 threads cannot fit a 4-core platform")
	}
}

func TestResultString(t *testing.T) {
	res, err := RunNative(1, platform.OdroidXU4(), &kernel.PreemptRT{Load: 0.5},
		Options{Threads: 2, Interval: time.Millisecond, Loops: 50})
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	if len(s) == 0 || res.Variant != "RTapps" {
		t.Errorf("row = %q", s)
	}
}

func TestDeterministicResults(t *testing.T) {
	pl := platform.OdroidXU4()
	opts := smallOpts()
	run := func() (time.Duration, time.Duration, time.Duration) {
		res, err := RunYASMIN(11, pl, &kernel.PreemptRT{Load: 0.91}, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary()
	}
	a1, a2, a3 := run()
	b1, b2, b3 := run()
	if a1 != b1 || a2 != b2 || a3 != b3 {
		t.Errorf("non-deterministic: <%v,%v,%v> vs <%v,%v,%v>", a1, a2, a3, b1, b2, b3)
	}
}
