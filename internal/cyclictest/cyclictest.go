// Package cyclictest ports the standard rt-tests latency measurement tool
// into the simulation, in the two variants the paper compares (Section 4.2):
//
//   - Native ("RTapps"): each thread sleeps until its next period and
//     measures now - expected, exercising the kernel wake-up path directly.
//   - YASMIN: the same measurement loop adapted to run under YASMIN
//     management, as the paper adapted cyclictest to its middleware: each
//     thread is a periodic task; the measured latency is the span between
//     the nominal release and the job actually starting on a worker.
//
// The paper invokes cyclictest with `-t 6 -d 0 -i 10000 -m -l 10000`: six
// threads, zero distance (all threads share the interval), a 10ms interval,
// locked memory, 10000 loops.
package cyclictest

import (
	"fmt"
	"time"

	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/kernel"
	"github.com/yasmin-rt/yasmin/internal/platform"
	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/sim"
	"github.com/yasmin-rt/yasmin/internal/trace"
)

// Options mirror the cyclictest flags used in the paper.
type Options struct {
	Threads  int           // -t
	Interval time.Duration // -i (microseconds in the tool; a Duration here)
	Loops    int           // -l
	Distance time.Duration // -d (0 in the paper: all threads share Interval)
}

// PaperOptions returns `-t 6 -d 0 -i 10000 -m -l 10000`.
func PaperOptions() Options {
	return Options{Threads: 6, Interval: 10 * time.Millisecond, Loops: 10000, Distance: 0}
}

func (o *Options) validate() error {
	if o.Threads <= 0 {
		return fmt.Errorf("cyclictest: need at least one thread")
	}
	if o.Interval <= 0 {
		return fmt.Errorf("cyclictest: non-positive interval")
	}
	if o.Loops <= 0 {
		return fmt.Errorf("cyclictest: non-positive loop count")
	}
	if o.Distance < 0 {
		return fmt.Errorf("cyclictest: negative distance")
	}
	return nil
}

// Result aggregates the per-thread latency stats, reported <min, max, avg>
// like the tool (and Table 2).
type Result struct {
	Kernel    string
	Variant   string // "YASMIN" or "RTapps"
	PerThread []*trace.Stat
	Combined  *trace.Stat
}

// Summary returns the paper's <min, max, avg> triple.
func (r *Result) Summary() (min, max, avg time.Duration) { return r.Combined.Summary() }

// String renders a Table 2 row.
func (r *Result) String() string {
	min, max, avg := r.Summary()
	return fmt.Sprintf("%-28s %-8s <%d, %d, %d> µs",
		r.Kernel, r.Variant, min.Microseconds(), max.Microseconds(), avg.Microseconds())
}

// RunNative measures the raw kernel wake-up latency: the RTapps rows of
// Table 2 (and the litmus+<plugin> rows, by switching the kernel model).
func RunNative(seed int64, pl *platform.Platform, k kernel.Model, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine(seed)
	env, err := rt.NewSimEnv(eng, pl, kernel.WakeFunc(k, eng.Rand()))
	if err != nil {
		return nil, err
	}
	res := &Result{
		Kernel:   k.Name(),
		Variant:  "RTapps",
		Combined: trace.NewStat("cyclictest", false),
	}
	for i := 0; i < opts.Threads; i++ {
		st := trace.NewStat(fmt.Sprintf("thread-%d", i), false)
		res.PerThread = append(res.PerThread, st)
		interval := opts.Interval + time.Duration(i)*opts.Distance
		core := i % pl.NumCores()
		env.Spawn(fmt.Sprintf("cyclictest-%d", i), core, func(c rt.Ctx) {
			next := c.Now() + interval
			for loop := 0; loop < opts.Loops; loop++ {
				c.SleepUntil(next)
				lat := c.Now() - next
				if lat < 0 {
					lat = 0
				}
				st.Add(lat)
				res.Combined.Add(lat)
				next += interval
			}
		})
	}
	if err := eng.RunUntilIdle(); err != nil {
		return nil, err
	}
	return res, nil
}

// RunYASMIN measures the wake-up latency through the middleware: threads
// become periodic YASMIN tasks; each job's measured latency is
// start - release, covering the scheduler thread's own kernel wake-up, job
// release, dispatch, the worker's futex wake and the context switch — the
// YASMIN rows of Table 2.
//
// Following the paper's setup on the 8-core Odroid-XU4: N measurement
// threads need N workers, one more core for the scheduler thread, and one
// core left to the OS.
func RunYASMIN(seed int64, pl *platform.Platform, k kernel.Model, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.Threads+2 > pl.NumCores() {
		return nil, fmt.Errorf("cyclictest: %d threads need %d cores (workers + scheduler + OS), platform has %d",
			opts.Threads, opts.Threads+2, pl.NumCores())
	}
	eng := sim.NewEngine(seed)
	env, err := rt.NewSimEnv(eng, pl, kernel.WakeFunc(k, eng.Rand()))
	if err != nil {
		return nil, err
	}
	cores := make([]int, opts.Threads)
	for i := range cores {
		cores[i] = i + 1 // core 0 stays with the OS
	}
	cfg := core.Config{
		Workers:       opts.Threads,
		WorkerCores:   cores,
		SchedulerCore: opts.Threads + 1,
		Mapping:       core.MappingPartitioned,
		Priority:      core.PriorityRM,
		Preemption:    true,
		MaxTasks:      opts.Threads,
	}
	app, err := core.New(cfg, env)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Kernel:   k.Name(),
		Variant:  "YASMIN",
		Combined: trace.NewStat("cyclictest", false),
	}
	type meas struct {
		st   *trace.Stat
		done int
	}
	measures := make([]*meas, opts.Threads)
	for i := 0; i < opts.Threads; i++ {
		m := &meas{st: trace.NewStat(fmt.Sprintf("thread-%d", i), false)}
		measures[i] = m
		res.PerThread = append(res.PerThread, m.st)
		interval := opts.Interval + time.Duration(i)*opts.Distance
		tid, err := app.TaskDecl(core.TData{
			Name:     fmt.Sprintf("cyclictest-%d", i),
			Period:   interval,
			VirtCore: i,
		})
		if err != nil {
			return nil, err
		}
		_, err = app.VersionDecl(tid, func(x *core.ExecCtx, _ any) error {
			// The measurement: how late did this job start relative to its
			// nominal release?
			lat := x.Now() - x.Release()
			if lat < 0 {
				lat = 0
			}
			m.st.Add(lat)
			res.Combined.Add(lat)
			m.done++
			return nil
		}, nil, core.VSelect{})
		if err != nil {
			return nil, err
		}
	}
	horizon := opts.Interval*time.Duration(opts.Loops+2) + time.Second
	env.Spawn("main", rt.UnpinnedCore, func(c rt.Ctx) {
		if err := app.Start(c); err != nil {
			return
		}
		// Run until every thread has completed its loops (or horizon).
		for c.Now() < horizon {
			all := true
			for _, m := range measures {
				if m.done < opts.Loops {
					all = false
					break
				}
			}
			if all {
				break
			}
			c.Sleep(opts.Interval)
		}
		app.Stop(c)
		app.Cleanup(c)
	})
	if err := eng.Run(sim.Time(horizon + 5*time.Second)); err != nil {
		return nil, err
	}
	return res, nil
}
