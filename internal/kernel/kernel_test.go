package kernel

import (
	"math/rand"
	"testing"
	"time"

	"github.com/yasmin-rt/yasmin/internal/rt"
)

func sampleAvg(t *testing.T, m Model, load string, n int) (min, max, avg time.Duration) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	min = time.Hour
	var sum time.Duration
	for i := 0; i < n; i++ {
		lat := m.Latency(rng, rt.WakeTimer)
		if lat < 0 {
			t.Fatalf("%s: negative latency %v", m.Name(), lat)
		}
		if lat < min {
			min = lat
		}
		if lat > max {
			max = lat
		}
		sum += lat
	}
	return min, max, sum / time.Duration(n)
}

func TestPreemptRTShape(t *testing.T) {
	// Calibration target (paper Table 2, RTapps row): <176, 1550, 463> µs.
	min, max, avg := sampleAvg(t, &PreemptRT{Load: 0.91}, "stress", 10000)
	if min < 100*time.Microsecond || min > 250*time.Microsecond {
		t.Errorf("min = %v, want ~176µs", min)
	}
	if max < 900*time.Microsecond || max > 1600*time.Microsecond {
		t.Errorf("max = %v, want ~1.5ms", max)
	}
	if avg < 300*time.Microsecond || avg > 650*time.Microsecond {
		t.Errorf("avg = %v, want ~463µs", avg)
	}
}

func TestGSNEDFShape(t *testing.T) {
	// Target: <35, 247, 84> µs.
	min, max, avg := sampleAvg(t, &LitmusGSNEDF{Load: 0.91}, "stress", 10000)
	if min < 15*time.Microsecond || min > 60*time.Microsecond {
		t.Errorf("min = %v, want ~35µs", min)
	}
	if max < 150*time.Microsecond || max > 280*time.Microsecond {
		t.Errorf("max = %v, want ~247µs", max)
	}
	if avg < 50*time.Microsecond || avg > 130*time.Microsecond {
		t.Errorf("avg = %v, want ~84µs", avg)
	}
}

func TestPRESShape(t *testing.T) {
	// Target: <988, 1206, 1027> µs — reservation-boundary quantisation.
	min, max, avg := sampleAvg(t, &LitmusPRES{Load: 0.91}, "stress", 10000)
	if min < 950*time.Microsecond || min > 1050*time.Microsecond {
		t.Errorf("min = %v, want ~988µs", min)
	}
	if max > 1300*time.Microsecond {
		t.Errorf("max = %v, want ~1.2ms", max)
	}
	if avg < 990*time.Microsecond || avg > 1100*time.Microsecond {
		t.Errorf("avg = %v, want ~1027µs", avg)
	}
}

func TestVanillaHasHeavyTail(t *testing.T) {
	_, max, _ := sampleAvg(t, &Vanilla{Load: 0.9}, "stress", 10000)
	if max < 5*time.Millisecond {
		t.Errorf("vanilla max = %v, want multi-ms CFS tail", max)
	}
}

func TestLoadSensitivity(t *testing.T) {
	for _, mk := range []func(load float64) Model{
		func(l float64) Model { return &PreemptRT{Load: l} },
		func(l float64) Model { return &LitmusGSNEDF{Load: l} },
		func(l float64) Model { return &Vanilla{Load: l} },
	} {
		idleM := mk(0)
		loadM := mk(0.9)
		_, _, idle := sampleAvg(t, idleM, "idle", 4000)
		_, _, load := sampleAvg(t, loadM, "load", 4000)
		if load <= idle {
			t.Errorf("%s: loaded avg %v not above idle avg %v", loadM.Name(), load, idle)
		}
	}
}

func TestUnparkCheaperThanTimer(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := &PreemptRT{Load: 0.9}
	var timer, unpark time.Duration
	for i := 0; i < 5000; i++ {
		timer += m.Latency(rng, rt.WakeTimer)
		unpark += m.Latency(rng, rt.WakeUnpark)
	}
	if unpark >= timer {
		t.Errorf("futex wake total %v not below timer wake %v", unpark, timer)
	}
}

func TestIdealAndWakeFunc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if Ideal.Latency(Ideal{}, rng, rt.WakeTimer) != 0 {
		t.Error("ideal latency must be zero")
	}
	if WakeFunc(nil, rng) != nil {
		t.Error("nil model must give nil hook")
	}
	fn := WakeFunc(&PreemptRT{Load: 0.5}, rng)
	if fn == nil || fn(rt.WakeTimer, 0) < 0 {
		t.Error("wake func broken")
	}
}

func TestNames(t *testing.T) {
	models := []Model{&PreemptRT{}, &LitmusGSNEDF{}, &LitmusPRES{}, &Vanilla{}, Ideal{}}
	for _, m := range models {
		if m.Name() == "" {
			t.Errorf("%T has empty name", m)
		}
	}
}
