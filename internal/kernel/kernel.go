// Package kernel models the operating-system substrates of the paper's
// Table 2 latency comparison: Linux with the PREEMPT_RT patch set, LitmusRT
// with the GSN-EDF plugin, LitmusRT with the P-RES (polling reservation)
// plugin, and vanilla Linux as a baseline.
//
// A kernel model is a sampler for the latency between a thread's nominal
// wake-up instant (timer expiry or futex wake) and the instant it actually
// runs. The mechanisms behind each model's shape:
//
//   - PREEMPT_RT: fully threaded IRQs give a bounded but load-sensitive
//     path: timer IRQ -> irq thread -> scheduler -> task. Under stress-ng
//     load the softirq and timer threads queue behind cache-thrashing
//     stressors, producing a heavy sub-2ms tail.
//   - LitmusRT GSN-EDF: a much shorter in-kernel path (dedicated RT
//     scheduling class, release heaps), tail bounded by link-level
//     contention — an order of magnitude tighter than PREEMPT_RT.
//   - LitmusRT P-RES: wake-ups are served at polling-reservation
//     boundaries: latency concentrates slightly above the reservation
//     period (~1 ms), almost load-independent — the paper measures
//     <988, 1206, 1027> µs.
//   - Vanilla Linux (CFS): no latency guarantee at all; wake-ups contend
//     with fair-share scheduling, with tails in the tens of milliseconds
//     under load.
//
// All sampling is driven by the caller-provided deterministic RNG, so
// simulations remain reproducible.
//yasmin:deterministic package

package kernel

import (
	"math"
	"math/rand"
	"time"

	"github.com/yasmin-rt/yasmin/internal/rt"
)

// Model samples OS-induced wake-up latencies.
type Model interface {
	Name() string
	// Latency returns one sample for the given wake reason.
	Latency(rng *rand.Rand, reason rt.WakeReason) time.Duration
}

// WakeFunc adapts a model to the rt.SimEnv hook.
func WakeFunc(m Model, rng *rand.Rand) rt.WakeLatencyFunc {
	if m == nil {
		return nil
	}
	return func(reason rt.WakeReason, core int) time.Duration {
		return m.Latency(rng, reason)
	}
}

// expSample draws an exponential with the given mean.
func expSample(rng *rand.Rand, mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	u := rng.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return time.Duration(-float64(mean) * math.Log(1-u))
}

// clamp bounds d to [lo, hi].
func clamp(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

// PreemptRT models Linux 4.14-rt with threaded IRQs. Load in [0,1] is the
// stress-ng pressure (see internal/stress).
type PreemptRT struct {
	Load float64
}

// Name returns the kernel identification string.
func (k *PreemptRT) Name() string { return "Linux+PREEMPT_RT 4.14-rt" }

// Latency samples the threaded-IRQ wake path. Calibration targets the
// paper's RTapps row: <176, 1550, 463> µs under stress-ng load.
func (k *PreemptRT) Latency(rng *rand.Rand, reason rt.WakeReason) time.Duration {
	// Idle floor ~ 8µs; stressed floor rises as the IRQ thread queues.
	floor := 8*time.Microsecond + time.Duration(k.Load*float64(160*time.Microsecond))
	// Body: two exponential stages (IRQ thread dispatch + target wake).
	mean := 4*time.Microsecond + time.Duration(k.Load*float64(135*time.Microsecond))
	lat := floor + expSample(rng, mean) + expSample(rng, mean)
	// Occasional timer-stressor collision spike.
	if rng.Float64() < 0.04*k.Load {
		lat += expSample(rng, 300*time.Microsecond)
	}
	if reason == rt.WakeUnpark {
		// Futex wake skips the timer IRQ stage.
		lat = floor/2 + expSample(rng, mean)
	}
	return clamp(lat, 3*time.Microsecond, 1600*time.Microsecond)
}

// LitmusGSNEDF models LitmusRT 4.9.30 with the global GSN-EDF plugin.
type LitmusGSNEDF struct {
	Load float64
}

// Name returns the kernel identification string.
func (k *LitmusGSNEDF) Name() string { return "LitmusRT 4.9.30 GSN-EDF" }

// Latency samples the Litmus release path: calibrated to the paper's
// litmus+GSN-EDF row <35, 247, 84> µs.
func (k *LitmusGSNEDF) Latency(rng *rand.Rand, reason rt.WakeReason) time.Duration {
	floor := 5*time.Microsecond + time.Duration(k.Load*float64(28*time.Microsecond))
	mean := 3*time.Microsecond + time.Duration(k.Load*float64(25*time.Microsecond))
	lat := floor + expSample(rng, mean) + expSample(rng, mean)
	if rng.Float64() < 0.02*k.Load {
		lat += expSample(rng, 60*time.Microsecond)
	}
	if reason == rt.WakeUnpark {
		lat = floor/2 + expSample(rng, mean)
	}
	return clamp(lat, 2*time.Microsecond, 260*time.Microsecond)
}

// LitmusPRES models LitmusRT with polling reservations (P-RES): each thread
// is served by a periodic reservation, so a wake-up waits for the next
// replenishment boundary.
type LitmusPRES struct {
	Load float64
	// Reservation is the polling period (default 1ms, the plugin default
	// the paper's numbers point at).
	Reservation time.Duration
}

// Name returns the kernel identification string.
func (k *LitmusPRES) Name() string { return "LitmusRT 4.9.30 P-RES" }

// Latency concentrates just above the reservation period: the paper
// measures <988, 1206, 1027> µs for a 1ms reservation.
func (k *LitmusPRES) Latency(rng *rand.Rand, reason rt.WakeReason) time.Duration {
	res := k.Reservation
	if res <= 0 {
		res = time.Millisecond
	}
	// The wake misses the current polling slot almost surely and is served
	// at the next boundary plus scheduling jitter.
	early := time.Duration(rng.Int63n(int64(14 * time.Microsecond)))
	jitter := expSample(rng, 25*time.Microsecond+time.Duration(k.Load*float64(30*time.Microsecond)))
	return clamp(res-early+jitter, res-20*time.Microsecond, res+250*time.Microsecond)
}

// Vanilla models an unpatched Linux CFS kernel: no latency bound at all.
type Vanilla struct {
	Load float64
}

// Name returns the kernel identification string.
func (k *Vanilla) Name() string { return "Linux (vanilla CFS)" }

// Latency has a small floor but a heavy, load-dependent tail: fair-share
// scheduling may delay an RT-ish thread by whole scheduling epochs.
func (k *Vanilla) Latency(rng *rand.Rand, reason rt.WakeReason) time.Duration {
	floor := 5 * time.Microsecond
	mean := 15*time.Microsecond + time.Duration(k.Load*float64(500*time.Microsecond))
	lat := floor + expSample(rng, mean)
	if rng.Float64() < 0.10*k.Load {
		// Landed behind a full CFS timeslice (or several).
		lat += time.Duration(1+rng.Intn(4)) * 6 * time.Millisecond
	}
	return clamp(lat, 3*time.Microsecond, 50*time.Millisecond)
}

// Ideal is the zero-latency kernel used by unit tests and idealised
// experiments.
type Ideal struct{}

// Name returns the kernel identification string.
func (Ideal) Name() string { return "ideal" }

// Latency is always zero.
func (Ideal) Latency(*rand.Rand, rt.WakeReason) time.Duration { return 0 }
