// Package graph models task graphs with precedence constraints (paper
// Section 2): Directed Acyclic task-Graphs (DAGs) whose root nodes carry the
// activation pattern, with FIFO channels on the edges, plus the
// transformation of Synchronous DataFlow (SDF) graphs into DAGs that the
// paper requires as a pre-processing step.
package graph

import (
	"fmt"
	"time"
)

// NodeID identifies a node within a DAG.
type NodeID int

// Edge is a precedence (and optionally data) dependency between two nodes.
// Tokens is the number of data items conveyed per activation (>= 0; zero
// models a pure precedence edge, like the paper's fork->left channel of
// size 0).
type Edge struct {
	From, To NodeID
	Channel  string // channel identifier, "" for anonymous
	Tokens   int    // items pushed per source activation / popped per sink activation
}

// Node is one task in the graph.
type Node struct {
	ID   NodeID
	Name string
	// WCET is the node's nominal worst-case execution time (single-version
	// view; the middleware attaches richer version sets at declaration).
	WCET time.Duration
}

// DAG is a directed acyclic task graph. The graph as a whole carries the
// activation pattern (period, relative deadline): "only the root nodes need
// to have a period attached" — we lift it to the graph, as the paper does.
type DAG struct {
	Name     string
	Period   time.Duration
	Deadline time.Duration
	Sporadic bool
	Nodes    []Node
	Edges    []Edge
}

// AddNode appends a node and returns its ID.
func (g *DAG) AddNode(name string, wcet time.Duration) NodeID {
	id := NodeID(len(g.Nodes))
	g.Nodes = append(g.Nodes, Node{ID: id, Name: name, WCET: wcet})
	return id
}

// AddEdge appends a dependency edge.
func (g *DAG) AddEdge(from, to NodeID, channel string, tokens int) {
	g.Edges = append(g.Edges, Edge{From: from, To: to, Channel: channel, Tokens: tokens})
}

// Preds returns the predecessor node IDs of n, in edge order.
func (g *DAG) Preds(n NodeID) []NodeID {
	var out []NodeID
	for _, e := range g.Edges {
		if e.To == n {
			out = append(out, e.From)
		}
	}
	return out
}

// Succs returns the successor node IDs of n, in edge order.
func (g *DAG) Succs(n NodeID) []NodeID {
	var out []NodeID
	for _, e := range g.Edges {
		if e.From == n {
			out = append(out, e.To)
		}
	}
	return out
}

// Roots returns the IDs of nodes without predecessors — the nodes the
// scheduler releases periodically; all others are data-activated.
func (g *DAG) Roots() []NodeID {
	indeg := make([]int, len(g.Nodes))
	for _, e := range g.Edges {
		indeg[e.To]++
	}
	var roots []NodeID
	for i, d := range indeg {
		if d == 0 {
			roots = append(roots, NodeID(i))
		}
	}
	return roots
}

// Sinks returns the IDs of nodes without successors.
func (g *DAG) Sinks() []NodeID {
	outdeg := make([]int, len(g.Nodes))
	for _, e := range g.Edges {
		outdeg[e.From]++
	}
	var sinks []NodeID
	for i, d := range outdeg {
		if d == 0 {
			sinks = append(sinks, NodeID(i))
		}
	}
	return sinks
}

// TopoOrder returns a topological order of the nodes, or an error if the
// graph has a cycle (Kahn's algorithm; ties broken by node ID for
// determinism).
func (g *DAG) TopoOrder() ([]NodeID, error) {
	n := len(g.Nodes)
	indeg := make([]int, n)
	adj := make([][]NodeID, n)
	for _, e := range g.Edges {
		if int(e.From) >= n || int(e.To) >= n || e.From < 0 || e.To < 0 {
			return nil, fmt.Errorf("graph %s: edge %d->%d references unknown node", g.Name, e.From, e.To)
		}
		indeg[e.To]++
		adj[e.From] = append(adj[e.From], e.To)
	}
	// Min-ID-first ready list for deterministic output.
	var ready []NodeID
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, NodeID(i))
		}
	}
	var order []NodeID
	for len(ready) > 0 {
		// Pick smallest ID.
		best := 0
		for i := 1; i < len(ready); i++ {
			if ready[i] < ready[best] {
				best = i
			}
		}
		u := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		order = append(order, u)
		for _, v := range adj[u] {
			indeg[v]--
			if indeg[v] == 0 {
				ready = append(ready, v)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("graph %s: cycle detected (%d of %d nodes ordered)", g.Name, len(order), n)
	}
	return order, nil
}

// Validate checks acyclicity, edge sanity and the activation pattern.
func (g *DAG) Validate() error {
	if g.Period <= 0 {
		return fmt.Errorf("graph %s: non-positive period %v", g.Name, g.Period)
	}
	if g.Deadline <= 0 {
		return fmt.Errorf("graph %s: non-positive deadline %v", g.Name, g.Deadline)
	}
	for _, e := range g.Edges {
		if e.Tokens < 0 {
			return fmt.Errorf("graph %s: edge %d->%d has negative tokens", g.Name, e.From, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("graph %s: self-loop on node %d", g.Name, e.From)
		}
	}
	_, err := g.TopoOrder()
	return err
}

// CriticalPath returns the longest WCET-weighted path length through the
// graph — the lower bound on the graph's makespan on unlimited cores.
func (g *DAG) CriticalPath() (time.Duration, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return 0, err
	}
	finish := make([]time.Duration, len(g.Nodes))
	var longest time.Duration
	for _, u := range order {
		start := time.Duration(0)
		for _, p := range g.Preds(u) {
			if finish[p] > start {
				start = finish[p]
			}
		}
		finish[u] = start + g.Nodes[u].WCET
		if finish[u] > longest {
			longest = finish[u]
		}
	}
	return longest, nil
}

// TotalWork returns the sum of node WCETs — the graph's workload on one core.
func (g *DAG) TotalWork() time.Duration {
	var w time.Duration
	for i := range g.Nodes {
		w += g.Nodes[i].WCET
	}
	return w
}
