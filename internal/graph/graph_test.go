package graph

import (
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// diamond builds the paper's running example: fork -> {left,right} -> join.
func diamond() *DAG {
	g := &DAG{Name: "diamond", Period: ms(250), Deadline: ms(250)}
	fork := g.AddNode("fork", ms(1))
	left := g.AddNode("left", ms(5))
	right := g.AddNode("right", ms(3))
	join := g.AddNode("join", ms(2))
	g.AddEdge(fork, left, "fl", 0)
	g.AddEdge(fork, right, "fr", 1)
	g.AddEdge(left, join, "lj", 1)
	g.AddEdge(right, join, "rj", 2)
	return g
}

func TestDiamondStructure(t *testing.T) {
	g := diamond()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	roots := g.Roots()
	if len(roots) != 1 || g.Nodes[roots[0]].Name != "fork" {
		t.Errorf("roots = %v, want [fork]", roots)
	}
	sinks := g.Sinks()
	if len(sinks) != 1 || g.Nodes[sinks[0]].Name != "join" {
		t.Errorf("sinks = %v, want [join]", sinks)
	}
	if preds := g.Preds(3); len(preds) != 2 {
		t.Errorf("join preds = %v, want 2", preds)
	}
	if succs := g.Succs(0); len(succs) != 2 {
		t.Errorf("fork succs = %v, want 2", succs)
	}
}

func TestTopoOrderDeterministic(t *testing.T) {
	g := diamond()
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	want := []NodeID{0, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestCycleDetection(t *testing.T) {
	g := &DAG{Name: "cyclic", Period: ms(10), Deadline: ms(10)}
	a := g.AddNode("a", ms(1))
	b := g.AddNode("b", ms(1))
	g.AddEdge(a, b, "", 0)
	g.AddEdge(b, a, "", 0)
	if _, err := g.TopoOrder(); err == nil {
		t.Error("want cycle error")
	}
	if err := g.Validate(); err == nil {
		t.Error("Validate must reject cycles")
	}
}

func TestValidateRejectsBadGraphs(t *testing.T) {
	g := &DAG{Name: "noperiod"}
	g.AddNode("a", ms(1))
	if err := g.Validate(); err == nil {
		t.Error("want error for missing period")
	}

	g2 := &DAG{Name: "selfloop", Period: ms(10), Deadline: ms(10)}
	a := g2.AddNode("a", ms(1))
	g2.Edges = append(g2.Edges, Edge{From: a, To: a})
	if err := g2.Validate(); err == nil {
		t.Error("want error for self-loop")
	}

	g3 := &DAG{Name: "dangling", Period: ms(10), Deadline: ms(10)}
	b := g3.AddNode("b", ms(1))
	g3.Edges = append(g3.Edges, Edge{From: b, To: NodeID(9)})
	if _, err := g3.TopoOrder(); err == nil {
		t.Error("want error for dangling edge")
	}
}

func TestCriticalPathAndWork(t *testing.T) {
	g := diamond()
	cp, err := g.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	// fork(1) -> left(5) -> join(2) = 8ms is the longest chain.
	if cp != ms(8) {
		t.Errorf("critical path = %v, want 8ms", cp)
	}
	if w := g.TotalWork(); w != ms(11) {
		t.Errorf("total work = %v, want 11ms", w)
	}
}

func TestSDFRepetitionVector(t *testing.T) {
	// Classic A -(2:3)-> B: rates A*2 = B*3 => reps A=3, B=2.
	s := &SDF{
		Name: "ab", Period: ms(100), Deadline: ms(100),
		Actors: []SDFActor{{Name: "A", WCET: ms(1)}, {Name: "B", WCET: ms(2)}},
		Arcs:   []SDFArc{{From: 0, To: 1, Produce: 2, Consume: 3}},
	}
	reps, err := s.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	if reps[0] != 3 || reps[1] != 2 {
		t.Errorf("reps = %v, want [3 2]", reps)
	}
}

func TestSDFInconsistentRates(t *testing.T) {
	// Triangle with inconsistent balance equations.
	s := &SDF{
		Name: "bad", Period: ms(100), Deadline: ms(100),
		Actors: []SDFActor{{Name: "A", WCET: ms(1)}, {Name: "B", WCET: ms(1)}, {Name: "C", WCET: ms(1)}},
		Arcs: []SDFArc{
			{From: 0, To: 1, Produce: 1, Consume: 1},
			{From: 1, To: 2, Produce: 1, Consume: 1},
			{From: 0, To: 2, Produce: 2, Consume: 1},
		},
	}
	if _, err := s.RepetitionVector(); err == nil {
		t.Error("want inconsistency error")
	}
}

func TestSDFExpandChain(t *testing.T) {
	s := &SDF{
		Name: "chain", Period: ms(100), Deadline: ms(100),
		Actors: []SDFActor{{Name: "src", WCET: ms(1)}, {Name: "dst", WCET: ms(2)}},
		Arcs:   []SDFArc{{From: 0, To: 1, Produce: 2, Consume: 3}},
	}
	g, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// src fires 3x, dst 2x => 5 nodes.
	if len(g.Nodes) != 5 {
		t.Fatalf("expanded nodes = %d, want 5", len(g.Nodes))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// dst#0 needs tokens 1..3 => src firings 1,2 (0-based 0,1).
	// dst#1 needs tokens 4..6 => src firings 2,3 (0-based 1,2).
	d0 := g.Preds(NodeID(3))
	if len(d0) != 2 {
		t.Errorf("dst#0 preds = %v, want 2 producer firings", d0)
	}
	d1 := g.Preds(NodeID(4))
	if len(d1) != 2 {
		t.Errorf("dst#1 preds = %v, want 2 producer firings", d1)
	}
}

func TestSDFExpandWithInitialTokens(t *testing.T) {
	// With 3 initial tokens, dst#0 fires without waiting for src.
	s := &SDF{
		Name: "delayed", Period: ms(100), Deadline: ms(100),
		Actors: []SDFActor{{Name: "src", WCET: ms(1)}, {Name: "dst", WCET: ms(2)}},
		Arcs:   []SDFArc{{From: 0, To: 1, Produce: 2, Consume: 3, Initial: 3}},
	}
	g, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// dst#0 has no predecessors now.
	var dst0 NodeID = -1
	for _, n := range g.Nodes {
		if n.Name == "dst#0" {
			dst0 = n.ID
		}
	}
	if dst0 < 0 {
		t.Fatal("dst#0 not found")
	}
	if preds := g.Preds(dst0); len(preds) != 0 {
		t.Errorf("dst#0 preds = %v, want none (initial tokens cover it)", preds)
	}
}

func TestSDFSelfConsistentTriangle(t *testing.T) {
	// A->B->C->sink consistency with non-trivial rates.
	s := &SDF{
		Name: "tri", Period: ms(100), Deadline: ms(100),
		Actors: []SDFActor{{Name: "A", WCET: ms(1)}, {Name: "B", WCET: ms(1)}, {Name: "C", WCET: ms(1)}},
		Arcs: []SDFArc{
			{From: 0, To: 1, Produce: 1, Consume: 2},
			{From: 1, To: 2, Produce: 3, Consume: 1},
		},
	}
	reps, err := s.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	// A*1 = B*2 and B*3 = C*1 => A=2, B=1, C=3.
	if reps[0] != 2 || reps[1] != 1 || reps[2] != 3 {
		t.Errorf("reps = %v, want [2 1 3]", reps)
	}
	g, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 6 {
		t.Errorf("nodes = %d, want 6", len(g.Nodes))
	}
}
