package graph

import (
	"fmt"
	"time"
)

// SDF is a Synchronous DataFlow graph (Lee & Messerschmitt 1987, the paper's
// reference [25]): actors fire consuming/producing fixed token counts per
// edge. The paper requires SDF inputs to be expanded into DAGs before
// YASMIN can schedule them; Expand implements that transformation for one
// graph iteration.
type SDF struct {
	Name     string
	Period   time.Duration // period of one full SDF iteration
	Deadline time.Duration
	Actors   []SDFActor
	Arcs     []SDFArc
}

// SDFActor is an SDF node.
type SDFActor struct {
	Name string
	WCET time.Duration
}

// SDFArc connects two actors with fixed production/consumption rates and an
// optional number of initial tokens (delays).
type SDFArc struct {
	From, To int // actor indices
	Produce  int // tokens produced per source firing
	Consume  int // tokens consumed per destination firing
	Initial  int // initial tokens on the arc
}

// RepetitionVector computes the minimal positive firing counts per actor for
// one iteration (the balance equations). Returns an error if the graph is
// inconsistent (no valid rates).
func (s *SDF) RepetitionVector() ([]int, error) {
	n := len(s.Actors)
	if n == 0 {
		return nil, fmt.Errorf("sdf %s: no actors", s.Name)
	}
	// Solve balance equations with rational arithmetic over a spanning
	// traversal, then scale to the smallest integer vector.
	num := make([]int64, n) // repetition as fraction num/den
	den := make([]int64, n)
	visited := make([]bool, n)
	adj := make([][]int, n) // arc indices per actor (both directions)
	for i, a := range s.Arcs {
		if a.From < 0 || a.From >= n || a.To < 0 || a.To >= n {
			return nil, fmt.Errorf("sdf %s: arc %d references unknown actor", s.Name, i)
		}
		if a.Produce <= 0 || a.Consume <= 0 {
			return nil, fmt.Errorf("sdf %s: arc %d has non-positive rates", s.Name, i)
		}
		adj[a.From] = append(adj[a.From], i)
		adj[a.To] = append(adj[a.To], i)
	}
	var gcd func(a, b int64) int64
	gcd = func(a, b int64) int64 {
		if b == 0 {
			if a < 0 {
				return -a
			}
			return a
		}
		return gcd(b, a%b)
	}
	reduce := func(i int) {
		g := gcd(num[i], den[i])
		if g != 0 {
			num[i] /= g
			den[i] /= g
		}
	}
	// BFS per connected component.
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		num[start], den[start] = 1, 1
		visited[start] = true
		queue := []int{start}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, ai := range adj[u] {
				a := s.Arcs[ai]
				// r_from * produce = r_to * consume
				var v int
				var vn, vd int64
				if a.From == u {
					v = a.To
					vn = num[u] * int64(a.Produce)
					vd = den[u] * int64(a.Consume)
				} else {
					v = a.From
					vn = num[u] * int64(a.Consume)
					vd = den[u] * int64(a.Produce)
				}
				if !visited[v] {
					num[v], den[v] = vn, vd
					reduce(v)
					visited[v] = true
					queue = append(queue, v)
					continue
				}
				// Consistency check: existing ratio must match.
				if num[v]*vd != vn*den[v] {
					return nil, fmt.Errorf("sdf %s: inconsistent rates at actor %s", s.Name, s.Actors[v].Name)
				}
			}
		}
	}
	// Scale all fractions to integers: multiply by LCM of denominators.
	lcm := int64(1)
	for i := 0; i < n; i++ {
		g := gcd(lcm, den[i])
		lcm = lcm / g * den[i]
	}
	reps := make([]int, n)
	var overall int64
	for i := 0; i < n; i++ {
		r := num[i] * (lcm / den[i])
		if r <= 0 {
			return nil, fmt.Errorf("sdf %s: non-positive repetition for %s", s.Name, s.Actors[i].Name)
		}
		reps[i] = int(r)
		overall = gcd(overall, r)
	}
	if overall > 1 {
		for i := range reps {
			reps[i] = int(int64(reps[i]) / overall)
		}
	}
	return reps, nil
}

// Expand unrolls one SDF iteration into a DAG: actor a becomes reps[a]
// firing nodes "name#k"; dependencies are derived from token production and
// consumption order (firing j of the consumer depends on the producer firing
// that makes its last required token available, accounting for initial
// tokens).
func (s *SDF) Expand() (*DAG, error) {
	reps, err := s.RepetitionVector()
	if err != nil {
		return nil, err
	}
	g := &DAG{
		Name:     s.Name,
		Period:   s.Period,
		Deadline: s.Deadline,
	}
	// Node IDs per actor firing.
	ids := make([][]NodeID, len(s.Actors))
	for ai, actor := range s.Actors {
		ids[ai] = make([]NodeID, reps[ai])
		for k := 0; k < reps[ai]; k++ {
			ids[ai][k] = g.AddNode(fmt.Sprintf("%s#%d", actor.Name, k), actor.WCET)
		}
	}
	for arcIdx, a := range s.Arcs {
		chName := fmt.Sprintf("%s.arc%d", s.Name, arcIdx)
		// Consumer firing j needs tokens (j*consume+1 .. (j+1)*consume).
		// With `initial` tokens pre-loaded, the producer must have emitted
		// (j+1)*consume - initial tokens; producer firing i emits tokens
		// up to (i+1)*produce. Firing j depends on producer firing
		// ceil(((j+1)*consume - initial)/produce) - 1 and all earlier ones;
		// adding only the last-needed edge keeps the DAG sparse (earlier
		// producer firings are transitively ordered for produce<=consume;
		// for general rates we add every contributing producer).
		for j := 0; j < reps[a.To]; j++ {
			need := (j+1)*a.Consume - a.Initial
			if need <= 0 {
				continue // satisfied by initial tokens: no dependency this iteration
			}
			last := (need + a.Produce - 1) / a.Produce // 1-based producer firing count
			if last > reps[a.From] {
				return nil, fmt.Errorf("sdf %s: arc %d under-produces within one iteration", s.Name, arcIdx)
			}
			first := (j*a.Consume - a.Initial) / a.Produce // 0-based, first contributing
			if first < 0 {
				first = 0
			}
			for i := first; i < last; i++ {
				g.AddEdge(ids[a.From][i], ids[a.To][j], chName, a.Produce)
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("sdf %s: expansion produced invalid DAG: %w", s.Name, err)
	}
	return g, nil
}
