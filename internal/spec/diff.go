// Declarative live reconfiguration: Diff computes the transaction that
// turns one application spec into another, Plan.Apply (or the package-level
// SwitchSpec) stages it onto App.Reconfigure, and installModes compiles
// Spec.Modes into core mode presets so App.SwitchMode drives the same
// machinery from a task-subset description.
package spec

import (
	"fmt"

	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/rt"
)

// PlanChannel identifies a channel (and its endpoints at diff time) slated
// for removal.
type PlanChannel struct {
	Name string `json:"name"`
	Src  string `json:"src,omitempty"`
	Dst  string `json:"dst,omitempty"`
}

// Plan is the reconfiguration transaction Diff derives from two specs: the
// tasks to retire, admit and retune, and the topics/channels that come and
// go with them. Apply stages it onto a single App.Reconfigure transaction —
// validated, admission-tested and committed atomically, or rejected leaving
// the running application unchanged.
type Plan struct {
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// Remove lists tasks of the old spec absent (or structurally changed)
	// in the new one; they drain at commit.
	Remove []string `json:"remove,omitempty"`
	// Add lists tasks of the new spec to admit (newly declared or the
	// re-declared halves of structural changes).
	Add []string `json:"add,omitempty"`
	// Retune lists tasks whose timing-only parameters changed.
	Retune []string `json:"retune,omitempty"`
	// AddTopics / RemoveTopics list pub-sub topics that exist in only one
	// of the specs (or changed definition: removed and re-added).
	AddTopics    []string `json:"add_topics,omitempty"`
	RemoveTopics []string `json:"remove_topics,omitempty"`
	// RemoveChannels lists channels to sever and delete.
	RemoveChannels []PlanChannel `json:"remove_channels,omitempty"`
	// Mode optionally installs an execution-mode word at commit.
	Mode *uint32 `json:"mode,omitempty"`

	to *Spec // target spec carrying task/topic definitions (not serialized)
}

// Empty reports whether the plan stages no change at all.
func (p *Plan) Empty() bool {
	return len(p.Remove) == 0 && len(p.Add) == 0 && len(p.Retune) == 0 &&
		len(p.AddTopics) == 0 && len(p.RemoveTopics) == 0 &&
		len(p.RemoveChannels) == 0 && p.Mode == nil
}

// Diff computes the Plan that reconfigures an application built from `from`
// into `to`. Tasks present in both specs with identical structure but
// different timing become retunes; structural changes (versions, wiring)
// become retire-and-readmit pairs. Both specs must validate.
func Diff(from, to *Spec) (*Plan, error) {
	if err := from.Validate(); err != nil {
		return nil, fmt.Errorf("spec: diff source: %w", err)
	}
	if err := to.Validate(); err != nil {
		return nil, fmt.Errorf("spec: diff target: %w", err)
	}
	p := &Plan{From: from.Name, To: to.Name, to: to}

	fromTask := make(map[string]*TaskSpec, len(from.Tasks))
	for i := range from.Tasks {
		fromTask[from.Tasks[i].Name] = &from.Tasks[i]
	}
	toTask := make(map[string]*TaskSpec, len(to.Tasks))
	for i := range to.Tasks {
		toTask[to.Tasks[i].Name] = &to.Tasks[i]
	}

	// Topics first: a changed topic forces its registered tasks through a
	// retire/readmit cycle (a live topic cannot be resized).
	forced := make(map[string]bool)
	fromTopic := make(map[string]*TopicSpec, len(from.Topics))
	for i := range from.Topics {
		fromTopic[from.Topics[i].Name] = &from.Topics[i]
	}
	toTopic := make(map[string]*TopicSpec, len(to.Topics))
	for i := range to.Topics {
		toTopic[to.Topics[i].Name] = &to.Topics[i]
	}
	for i := range from.Topics {
		ft := &from.Topics[i]
		tt, ok := toTopic[ft.Name]
		if ok && topicDefEqual(ft, tt) {
			continue
		}
		p.RemoveTopics = append(p.RemoveTopics, ft.Name)
		for _, tn := range ft.Pubs {
			forced[tn] = true
		}
		for _, tn := range ft.Subs {
			forced[tn] = true
		}
		if ok { // changed definition: re-add under the new one
			p.AddTopics = append(p.AddTopics, ft.Name)
		}
	}
	for i := range to.Topics {
		if _, ok := fromTopic[to.Topics[i].Name]; !ok {
			p.AddTopics = append(p.AddTopics, to.Topics[i].Name)
		}
	}

	// Channels absent or redefined in the target are severed; a redefined
	// channel forces its endpoints through retire/readmit, which re-creates
	// it under the new definition.
	toChan := make(map[string]*ChannelSpec, len(to.Channels))
	for i := range to.Channels {
		toChan[to.Channels[i].Name] = &to.Channels[i]
	}
	for i := range from.Channels {
		fc := &from.Channels[i]
		tc, ok := toChan[fc.Name]
		if ok && channelDefEqual(fc, tc) {
			continue
		}
		p.RemoveChannels = append(p.RemoveChannels, PlanChannel{Name: fc.Name, Src: fc.Src, Dst: fc.Dst})
		for _, tn := range []string{fc.Src, fc.Dst} {
			if tn != "" {
				forced[tn] = true
			}
		}
		if ok {
			for _, tn := range []string{tc.Src, tc.Dst} {
				if tn != "" {
					forced[tn] = true
				}
			}
		}
	}

	for i := range from.Tasks {
		if _, ok := toTask[from.Tasks[i].Name]; !ok {
			p.Remove = append(p.Remove, from.Tasks[i].Name)
		}
	}
	for i := range to.Tasks { // deterministic order: target declaration order
		name := to.Tasks[i].Name
		ft, existed := fromTask[name]
		switch {
		case !existed:
			p.Add = append(p.Add, name)
		case forced[name] || !taskStructEqual(from, to, ft, &to.Tasks[i]):
			p.Remove = append(p.Remove, name)
			p.Add = append(p.Add, name)
		case !taskTimingEqual(ft, &to.Tasks[i]):
			p.Retune = append(p.Retune, name)
		}
	}
	return p, nil
}

// Apply stages the plan onto one reconfiguration transaction of app. The
// app must have been built from the plan's source spec (names resolve
// against the live task set).
func (p *Plan) Apply(c rt.Ctx, app *core.App) error {
	if p.to == nil {
		return fmt.Errorf("spec: plan has no target spec (construct plans with Diff)")
	}
	return app.Reconfigure(c, func(tx *core.Reconfig) error {
		if err := p.to.stageTarget(tx, p.Add, p.Remove, p.Retune, p.AddTopics, p.RemoveTopics, p.RemoveChannels); err != nil {
			return err
		}
		if p.Mode != nil {
			tx.SetMode(*p.Mode)
		}
		return nil
	})
}

// SwitchSpec computes Diff(from, to) and applies it to the app in one
// admitted transaction — the declarative spelling of App.Reconfigure.
func SwitchSpec(c rt.Ctx, app *core.App, from, to *Spec) (*Plan, error) {
	p, err := Diff(from, to)
	if err != nil {
		return nil, err
	}
	if err := p.Apply(c, app); err != nil {
		return p, err
	}
	return p, nil
}

// installModes compiles Spec.Modes into core mode presets. Each preset's
// Build computes, at switch time, the task add/remove set that turns the
// app's current live tasks into the mode's active set, so arbitrary mode
// sequences (and partial states from earlier transactions) converge.
func (s *Spec) installModes(app *core.App) error {
	for i := range s.Modes {
		m := &s.Modes[i]
		active := m.activeSet(s)
		preset := core.ModePreset{
			Mode: m.Mode,
			Build: func(tx *core.Reconfig) error {
				var add, remove []string
				for ti := range s.Tasks {
					name := s.Tasks[ti].Name
					has := tx.HasTask(name)
					switch {
					case active[name] && !has:
						add = append(add, name)
					case !active[name] && has:
						remove = append(remove, name)
					}
				}
				return s.stageTarget(tx, add, remove, nil, nil, nil, nil)
			},
		}
		if err := app.InstallMode(m.Name, preset); err != nil {
			return err
		}
	}
	return nil
}

// stageTarget stages removals, additions and retunes against s (the target
// spec) on one transaction. Added tasks get their versions (synthesized
// when function-less), accelerator bindings, channels to other active tasks
// and topic registrations, exactly as a fresh Build would wire them.
func (s *Spec) stageTarget(tx *core.Reconfig, add, remove, retune []string,
	addTopics []string, removeTopics []string, removeChannels []PlanChannel) error {
	for _, name := range remove {
		if err := tx.RemoveTaskByName(name); err != nil {
			return fmt.Errorf("spec: remove task %q: %w", name, err)
		}
	}
	for _, pc := range removeChannels {
		cid := tx.TopicID(pc.Name)
		if cid < 0 {
			continue // already gone
		}
		if pc.Src != "" {
			src, dst := tx.TaskID(pc.Src), tx.TaskID(pc.Dst)
			if src >= 0 && dst >= 0 { // both endpoints survive: sever explicitly
				if err := tx.Disconnect(src, dst, cid); err != nil {
					return fmt.Errorf("spec: disconnect channel %q: %w", pc.Name, err)
				}
			}
		}
		if err := tx.RemoveTopic(cid); err != nil {
			return fmt.Errorf("spec: remove channel %q: %w", pc.Name, err)
		}
	}
	for _, name := range removeTopics {
		if err := tx.RemoveTopicByName(name); err != nil {
			return fmt.Errorf("spec: remove topic %q: %w", name, err)
		}
	}
	for _, name := range addTopics {
		ts := s.topicSpec(name)
		if ts == nil {
			return fmt.Errorf("spec: plan adds topic %q not in the target spec", name)
		}
		pol, err := core.ParsePolicy(ts.Policy)
		if err != nil {
			return err
		}
		if _, err := tx.AddTopic(ts.Name, core.TopicOpts{
			Capacity: ts.Capacity, Policy: pol, Priority: ts.Priority}); err != nil {
			return fmt.Errorf("spec: add topic %q: %w", name, err)
		}
	}

	// Stage all added tasks first so forward references resolve.
	addSet := make(map[string]bool, len(add))
	tids := make(map[string]core.TID, len(add))
	for _, name := range add {
		ts := s.taskSpec(name)
		if ts == nil {
			return fmt.Errorf("spec: plan adds task %q not in the target spec", name)
		}
		tid, err := tx.AddTask(core.TData{
			Name:          ts.Name,
			Period:        ts.Period.Std(),
			Deadline:      ts.Deadline.Std(),
			ReleaseOffset: ts.Offset.Std(),
			VirtCore:      ts.Core,
			Priority:      ts.Priority,
			Sporadic:      ts.Sporadic,
		})
		if err != nil {
			return fmt.Errorf("spec: add task %q: %w", name, err)
		}
		addSet[name] = true
		tids[name] = tid
	}

	// Channels touching an added task: ensure the channel exists and
	// connect it when both endpoints are active in the merged view.
	ins := make(map[string][]core.CID)
	outs := make(map[string][]core.CID)
	for i := range s.Channels {
		cs := &s.Channels[i]
		if cs.Src == "" {
			continue
		}
		if !addSet[cs.Src] && !addSet[cs.Dst] {
			continue
		}
		if !tx.HasTask(cs.Src) || !tx.HasTask(cs.Dst) {
			continue // other endpoint inactive in this configuration
		}
		cid := tx.TopicID(cs.Name)
		if cid < 0 {
			var err error
			if cid, err = tx.AddChannel(cs.Name, cs.Capacity); err != nil {
				return fmt.Errorf("spec: add channel %q: %w", cs.Name, err)
			}
		}
		if err := tx.ConnectDelayed(tx.TaskID(cs.Src), tx.TaskID(cs.Dst), cid, cs.Delay); err != nil {
			return fmt.Errorf("spec: connect channel %q: %w", cs.Name, err)
		}
		if cs.Capacity > 0 {
			ins[cs.Dst] = append(ins[cs.Dst], cid)
		}
		outs[cs.Src] = append(outs[cs.Src], cid)
	}

	// Topic registrations for added tasks; collect the endpoint lists the
	// synthesized bodies consume.
	tins := make(map[string][]core.CID)
	touts := make(map[string][]core.CID)
	for i := range s.Topics {
		tp := &s.Topics[i]
		cid := tx.TopicID(tp.Name)
		if cid < 0 {
			return fmt.Errorf("spec: topic %q not present in the live application (plans must add it)", tp.Name)
		}
		for _, pn := range tp.Pubs {
			if addSet[pn] {
				if err := tx.PubOn(tids[pn], cid); err != nil {
					return fmt.Errorf("spec: topic %q publisher %q: %w", tp.Name, pn, err)
				}
				touts[pn] = append(touts[pn], cid)
			}
		}
		for _, sn := range tp.Subs {
			if addSet[sn] {
				if err := tx.SubOn(tids[sn], cid); err != nil {
					return fmt.Errorf("spec: topic %q subscriber %q: %w", tp.Name, sn, err)
				}
				tins[sn] = append(tins[sn], cid)
			}
		}
	}

	// Versions (synthesized against the staged wiring when function-less)
	// and accelerator bindings.
	for _, name := range add {
		ts := s.taskSpec(name)
		tid := tids[name]
		for vi := range ts.Versions {
			v := &ts.Versions[vi]
			fn := v.Fn
			if fn == nil {
				fn = synthBody(ins[name], outs[name], tins[name], touts[name], v)
			}
			props := core.VSelect{
				WCET:             v.WCET.Std(),
				EnergyBudget:     v.Energy,
				GetBatteryStatus: v.GetBattery,
				MinBattery:       v.MinBattery,
				Quality:          v.Quality,
				Modes:            v.Modes,
				Mask:             v.Mask,
			}
			vid, err := tx.AddVersion(tid, fn, v.Args, props)
			if err != nil {
				return fmt.Errorf("spec: task %q version %d: %w", name, vi, err)
			}
			if v.Accel != "" {
				if err := tx.UseAccel(tid, vid, s.AccelID(v.Accel)); err != nil {
					return fmt.Errorf("spec: task %q version %d: %w", name, vi, err)
				}
			}
		}
	}

	for _, name := range retune {
		ts := s.taskSpec(name)
		if ts == nil {
			return fmt.Errorf("spec: plan retunes task %q not in the target spec", name)
		}
		tid := tx.TaskID(name)
		if tid < 0 {
			return fmt.Errorf("spec: retune: no live task %q", name)
		}
		if err := tx.Retune(tid, core.TData{
			Name:          ts.Name,
			Period:        ts.Period.Std(),
			Deadline:      ts.Deadline.Std(),
			ReleaseOffset: ts.Offset.Std(),
			VirtCore:      ts.Core,
			Priority:      ts.Priority,
			Sporadic:      ts.Sporadic,
		}); err != nil {
			return fmt.Errorf("spec: retune task %q: %w", name, err)
		}
	}
	return nil
}

func (s *Spec) taskSpec(name string) *TaskSpec {
	for i := range s.Tasks {
		if s.Tasks[i].Name == name {
			return &s.Tasks[i]
		}
	}
	return nil
}

func (s *Spec) topicSpec(name string) *TopicSpec {
	for i := range s.Topics {
		if s.Topics[i].Name == name {
			return &s.Topics[i]
		}
	}
	return nil
}

// taskTimingEqual compares the parameters Retune can change live.
func taskTimingEqual(a, b *TaskSpec) bool {
	return a.Period == b.Period && a.Deadline == b.Deadline && a.Offset == b.Offset &&
		a.Core == b.Core && a.Priority == b.Priority && a.Sporadic == b.Sporadic
}

// taskStructEqual compares everything a retune cannot change: the version
// list (extra-functional properties and accelerator bindings) and the
// task's channel/topic wiring in its spec.
func taskStructEqual(from, to *Spec, a, b *TaskSpec) bool {
	if len(a.Versions) != len(b.Versions) {
		return false
	}
	for i := range a.Versions {
		va, vb := &a.Versions[i], &b.Versions[i]
		if va.WCET != vb.WCET || va.Energy != vb.Energy || va.MinBattery != vb.MinBattery ||
			va.Quality != vb.Quality || va.Modes != vb.Modes || va.Mask != vb.Mask ||
			va.Accel != vb.Accel {
			return false
		}
	}
	return wiringKey(from, a.Name) == wiringKey(to, b.Name)
}

// wiringKey summarises a task's channel endpoints and topic registrations
// within a spec, order-independent of unrelated declarations.
func wiringKey(s *Spec, name string) string {
	key := ""
	for i := range s.Channels {
		c := &s.Channels[i]
		if c.Src == name {
			key += fmt.Sprintf("out:%s>%s/%d/%d;", c.Name, c.Dst, c.Capacity, c.Delay)
		}
		if c.Dst == name {
			key += fmt.Sprintf("in:%s<%s/%d/%d;", c.Name, c.Src, c.Capacity, c.Delay)
		}
	}
	for i := range s.Topics {
		tp := &s.Topics[i]
		for _, p := range tp.Pubs {
			if p == name {
				key += "pub:" + tp.Name + ";"
			}
		}
		for _, sb := range tp.Subs {
			if sb == name {
				key += "sub:" + tp.Name + ";"
			}
		}
	}
	return key
}

func topicDefEqual(a, b *TopicSpec) bool {
	if a.Capacity != b.Capacity || a.Policy != b.Policy || a.Priority != b.Priority {
		return false
	}
	return stringSetEqual(a.Pubs, b.Pubs) && stringSetEqual(a.Subs, b.Subs)
}

func channelDefEqual(a, b *ChannelSpec) bool {
	return a.Capacity == b.Capacity && a.Src == b.Src && a.Dst == b.Dst && a.Delay == b.Delay
}

func stringSetEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[string]int, len(a))
	for _, x := range a {
		seen[x]++
	}
	for _, x := range b {
		if seen[x] == 0 {
			return false
		}
		seen[x]--
	}
	return true
}
