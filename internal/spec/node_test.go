package spec

import (
	"strings"
	"testing"
	"time"

	"github.com/yasmin-rt/yasmin/internal/core"
)

// clusterSpec builds a 2-node application: cam@0 -> filter@0 over a local
// channel, both publishing/subscribing topic "det" that log@1 consumes,
// while beat@1 publishes "pulse" back to filter@0 — a fan-in/fan-out pair
// crossing the node boundary in both directions.
func clusterSpec(t *testing.T) *Spec {
	t.Helper()
	s, err := NewApp("vision").
		Nodes(2).
		Task("cam").Period(10*time.Millisecond).OnNode(0).
		Version(nil, core.VSelect{WCET: time.Millisecond}).
		ChanTo("filter", 4).
		Task("filter").OnNode(0).
		Version(nil, core.VSelect{WCET: time.Millisecond}).
		Task("log").Period(20*time.Millisecond).OnNode(1).
		Version(nil, core.VSelect{WCET: time.Millisecond}).
		Task("beat").Period(50*time.Millisecond).OnNode(1).
		Version(nil, core.VSelect{WCET: time.Millisecond}).
		Spec()
	if err != nil {
		t.Fatal(err)
	}
	s.Topics = []TopicSpec{
		{Name: "det", Capacity: 8, Pubs: []string{"filter"}, Subs: []string{"log"}},
		{Name: "pulse", Capacity: 4, Pubs: []string{"beat"}, Subs: []string{"filter"}},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNodePlacementValidation(t *testing.T) {
	t.Run("node-out-of-range", func(t *testing.T) {
		s := clusterSpec(t)
		s.Tasks[2].Node = 5
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), "node 5 out of range [0,2)") {
			t.Fatalf("want out-of-range error, got %v", err)
		}
	})
	t.Run("single-node-rejects-placement", func(t *testing.T) {
		s := clusterSpec(t)
		s.Nodes = 0 // single-node: any Node > 0 is now out of range
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), "out of range [0,1)") {
			t.Fatalf("want out-of-range error, got %v", err)
		}
	})
	t.Run("cross-node-channel", func(t *testing.T) {
		s := clusterSpec(t)
		s.Tasks[1].Node = 1 // filter moves; cam->filter now crosses nodes
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), "crosses nodes 0 and 1") {
			t.Fatalf("want cross-node channel error, got %v", err)
		}
	})
	t.Run("negative-nodes", func(t *testing.T) {
		s := clusterSpec(t)
		s.Nodes = -1
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), "negative node count") {
			t.Fatalf("want negative node count error, got %v", err)
		}
	})
}

func TestForNodeProjection(t *testing.T) {
	s := clusterSpec(t)
	s.Modes = []ModeSpec{{Name: "eco", Mode: 1, Tasks: []string{"cam"}}}

	p0 := s.ForNode(0)
	if p0.Name != "vision@node0" {
		t.Errorf("projection name %q", p0.Name)
	}
	if got := len(p0.Tasks); got != 2 {
		t.Fatalf("node 0 has %d tasks, want 2", got)
	}
	if p0.Tasks[0].Name != "cam" || p0.Tasks[1].Name != "filter" {
		t.Errorf("node 0 tasks %q/%q, want cam/filter (declaration order)",
			p0.Tasks[0].Name, p0.Tasks[1].Name)
	}
	if len(p0.Channels) != 1 || p0.Channels[0].Name != "cam->filter" {
		t.Errorf("node 0 channels = %+v, want just cam->filter", p0.Channels)
	}
	// Both topics survive on node 0: "det" keeps only its publisher,
	// "pulse" only its subscriber — the missing sides are remote.
	if len(p0.Topics) != 2 {
		t.Fatalf("node 0 has %d topics, want 2", len(p0.Topics))
	}
	if len(p0.Topics[0].Pubs) != 1 || len(p0.Topics[0].Subs) != 0 {
		t.Errorf("det on node 0: pubs=%v subs=%v, want local pub only",
			p0.Topics[0].Pubs, p0.Topics[0].Subs)
	}
	if len(p0.Topics[1].Pubs) != 0 || len(p0.Topics[1].Subs) != 1 {
		t.Errorf("pulse on node 0: pubs=%v subs=%v, want local sub only",
			p0.Topics[1].Pubs, p0.Topics[1].Subs)
	}
	if len(p0.Modes) != 0 {
		t.Errorf("projection kept modes %+v; they must be dropped", p0.Modes)
	}
	// One-sided topics validate only because the spec is a projection.
	if err := p0.Validate(); err != nil {
		t.Fatalf("projection must validate: %v", err)
	}

	p1 := s.ForNode(1)
	if got := len(p1.Tasks); got != 2 {
		t.Fatalf("node 1 has %d tasks, want 2", got)
	}
	if len(p1.Channels) != 0 {
		t.Errorf("node 1 channels = %+v, want none", p1.Channels)
	}
	if err := p1.Validate(); err != nil {
		t.Fatalf("projection must validate: %v", err)
	}
	// Positional CID contract inside the projection: topics start at
	// len(Channels), in projected declaration order.
	if id := p1.TopicID("det"); id != 0 {
		t.Errorf("det on node 1 has CID %d, want 0", id)
	}
	if id := p1.TopicID("pulse"); id != 1 {
		t.Errorf("pulse on node 1 has CID %d, want 1", id)
	}

	// The projection does not alias the parent.
	p0.Topics[0].Pubs[0] = "mutated"
	if s.Topics[0].Pubs[0] != "filter" {
		t.Error("projection aliases the parent spec's topic endpoint slice")
	}

	// A full (non-projected) spec still demands both sides.
	bad := clusterSpec(t)
	bad.Topics[0].Subs = nil
	if err := bad.Validate(); err == nil ||
		!strings.Contains(err.Error(), "no subscribers") {
		t.Fatalf("full spec with sub-less topic must fail, got %v", err)
	}
}
