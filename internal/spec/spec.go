package spec

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/rt"
)

// Duration is a time.Duration that marshals as a human-readable string
// ("250ms") and unmarshals from either a string or a nanosecond number, so
// spec files stay hand-writable.
type Duration time.Duration

// Std returns the standard-library duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// MarshalJSON encodes the duration as its String form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "33ms"-style strings or raw nanosecond numbers.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("spec: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	n, err := strconv.ParseInt(string(b), 10, 64)
	if err != nil {
		return fmt.Errorf("spec: bad duration %s", string(b))
	}
	*d = Duration(n)
	return nil
}

// Spec is a complete declarative application description. Identifier
// assignment is positional and deterministic: task i gets TID i, channel i
// gets CID i, accelerator i gets HID i, version j of a task gets VID j —
// the same IDs an imperative program declaring in the same order would get.
type Spec struct {
	// Name labels the application (reports, scenario libraries).
	Name string `json:"name,omitempty"`
	// Nodes is the cluster size this application is placed over; zero or
	// one describes the ordinary single-node application. With Nodes > 1
	// every task carries a Node placement and ForNode projects the
	// per-node sub-application (see internal/cluster for the data plane
	// that stitches the projections together).
	Nodes int `json:"nodes,omitempty"`
	// Accels declares hardware accelerators; names matching a platform
	// accelerator (e.g. "kepler-gk20a") inherit its speed and power.
	Accels []AccelSpec `json:"accels,omitempty"`
	// Channels declares the FIFO channels and, through their Src/Dst
	// endpoints, the precedence edges of the task graph.
	Channels []ChannelSpec `json:"channels,omitempty"`
	// Topics declares the pub-sub topics: N publishers to M subscribers
	// over one shared buffer with an overflow policy. Topics share the CID
	// space with channels — channels take the first IDs, topics follow.
	Topics []TopicSpec `json:"topics,omitempty"`
	// Tasks declares the tasks with their versions.
	Tasks []TaskSpec `json:"tasks"`
	// Modes declares named mode presets for live reconfiguration: each mode
	// activates a subset of the tasks and installs an execution-mode word.
	// Build installs them on the App; App.SwitchMode(name) computes the
	// task-set diff from the current state and applies it as an admitted,
	// quiescent reconfiguration transaction.
	Modes []ModeSpec `json:"modes,omitempty"`

	// projected marks a ForNode projection: its topics may keep only the
	// endpoints local to that node (the missing side lives on other nodes
	// and reaches the topic over the cluster data plane), which relaxes
	// the needs-a-publisher/needs-a-subscriber validation.
	projected bool
}

// ModeSpec names one application mode: the set of active tasks (empty =
// all) and the execution-mode word installed for SelectMode version
// selection. Topics and accelerators are mode-independent; channels follow
// their endpoints (an edge exists in a mode iff both its tasks are active).
type ModeSpec struct {
	Name string `json:"name"`
	// Mode is the execution-mode word (matched against VSelect.Modes).
	Mode uint32 `json:"mode,omitempty"`
	// Tasks lists the active tasks; empty activates every task.
	Tasks []string `json:"tasks,omitempty"`
}

// activeSet resolves the mode's active task-name set.
func (m *ModeSpec) activeSet(s *Spec) map[string]bool {
	out := make(map[string]bool, len(s.Tasks))
	if len(m.Tasks) == 0 {
		for i := range s.Tasks {
			out[s.Tasks[i].Name] = true
		}
		return out
	}
	for _, n := range m.Tasks {
		out[n] = true
	}
	return out
}

// TaskSpec describes one task — the declarative form of core.TData plus its
// versions.
type TaskSpec struct {
	Name string `json:"name"`
	// Period is the minimal inter-arrival time; zero makes the task
	// data-activated (a non-root graph node) or aperiodic.
	Period Duration `json:"period,omitempty"`
	// Deadline is the relative deadline; zero means implicit.
	Deadline Duration `json:"deadline,omitempty"`
	// Offset delays the first periodic release.
	Offset Duration `json:"offset,omitempty"`
	// Core binds the task to a worker under partitioned mapping.
	Core int `json:"core,omitempty"`
	// Node places the task on a cluster node (Spec.Nodes > 1); the zero
	// value is node 0, which is also every single-node task's placement.
	Node int `json:"node,omitempty"`
	// Priority is the static priority under PriorityUser.
	Priority int `json:"priority,omitempty"`
	// Sporadic marks tasks released by TaskActivate.
	Sporadic bool `json:"sporadic,omitempty"`
	// Versions lists the task's implementations, in declaration order.
	Versions []VersionSpec `json:"versions"`
}

// VersionSpec describes one implementation of a task: its extra-functional
// properties (core.VSelect) plus the accelerator binding by name. The entry
// point Fn is code and is not serialized; a nil Fn gets a synthesized body
// at Build (pop inputs, compute WCET, push outputs).
type VersionSpec struct {
	// Name optionally labels the version ("gpu", "aes", ...).
	Name string `json:"name,omitempty"`
	// WCET is the worst-case execution time; it also sizes the synthesized
	// body of function-less versions.
	WCET Duration `json:"wcet,omitempty"`
	// AccelCS is the worst-case length of the version's accelerator
	// critical section (the AccelSection part of WCET). Blocking-aware
	// admission derives priority-inversion bounds from it; zero on an
	// accelerator version falls back to the whole WCET (conservative). It
	// also sizes the accelerator section of synthesized bodies.
	AccelCS Duration `json:"accel_cs,omitempty"`
	// Energy is the per-job energy budget in millijoules.
	Energy float64 `json:"energy,omitempty"`
	// MinBattery is the battery percentage below which this version is not
	// affordable (SelectEnergy).
	MinBattery float64 `json:"min_battery,omitempty"`
	// Quality ranks functionally-equivalent versions.
	Quality int `json:"quality,omitempty"`
	// Modes is the execution-mode bitmask (SelectMode).
	Modes uint32 `json:"modes,omitempty"`
	// Mask is the permission bitmask (SelectBitmask).
	Mask uint32 `json:"mask,omitempty"`
	// Accel names the accelerator this version uses; empty means CPU-only.
	Accel string `json:"accel,omitempty"`

	// Fn is the version entry point (code; not serialized).
	Fn core.TaskFunc `json:"-"`
	// Args is the static argument passed to Fn (not serialized).
	Args any `json:"-"`
	// GetBattery is the battery-status callback (SelectEnergy; not
	// serialized — Build falls back to the App battery when nil).
	GetBattery func() float64 `json:"-"`
}

// ChannelSpec describes one FIFO channel and its (optional) endpoints. A
// channel with both endpoints set is also a precedence edge; a channel with
// neither is a free-standing FIFO the tasks use directly.
type ChannelSpec struct {
	Name string `json:"name"`
	// Capacity is the FIFO depth; zero declares a pure precedence channel.
	Capacity int `json:"capacity"`
	// Src and Dst name the producer and consumer tasks.
	Src string `json:"src,omitempty"`
	Dst string `json:"dst,omitempty"`
	// Delay pre-seeds the edge with initial tokens (SDF delay tokens),
	// permitting feedback cycles.
	Delay int `json:"delay,omitempty"`
}

// TopicSpec describes one pub-sub topic: the declarative form of
// core.TopicOpts plus its endpoints by task name. Unlike a channel, a topic
// is pure data plane — it never creates precedence edges; subscribers poll
// (periodically or opportunistically) with Take/Recv.
type TopicSpec struct {
	Name string `json:"name"`
	// Capacity is the shared buffer depth (>= 1): the maximum backlog of
	// the slowest subscriber. One buffered entry serves every subscriber.
	Capacity int `json:"capacity"`
	// Policy is the overflow behaviour: "reject" (default; publish fails
	// when full, the Table-1 channel semantics), "drop_oldest", or "latest"
	// (conflation: a take returns only the newest value).
	Policy string `json:"policy,omitempty"`
	// Priority ranks the topic against other topics (lower = more urgent);
	// consumers draining several subscriptions (TakeAny) honour it.
	Priority int `json:"priority,omitempty"`
	// Pubs and Subs name the publisher and subscriber tasks (>= 1 each).
	Pubs []string `json:"pubs"`
	Subs []string `json:"subs"`
}

// AccelSpec describes one hardware accelerator pool. Count > 1 declares
// that many interchangeable instances (e.g. two identical DSP cores):
// version bindings reference the pool by name, the runtime takes any free
// instance, and contention parks jobs on one pool-wide priority-ordered
// waiter list. Every instance consumes one MaxAccels slot.
type AccelSpec struct {
	Name  string `json:"name"`
	Count int    `json:"count,omitempty"` // instances; 0 reads as 1
}

// instances returns the pool's instance count (Count, at least 1).
func (a *AccelSpec) instances() int {
	if a.Count > 1 {
		return a.Count
	}
	return 1
}

// TaskID returns the TID task `name` will get at Build, or -1.
func (s *Spec) TaskID(name string) core.TID {
	for i := range s.Tasks {
		if s.Tasks[i].Name == name {
			return core.TID(i)
		}
	}
	return -1
}

// ChannelID returns the CID channel `name` will get at Build, or -1.
func (s *Spec) ChannelID(name string) core.CID {
	for i := range s.Channels {
		if s.Channels[i].Name == name {
			return core.CID(i)
		}
	}
	return -1
}

// TopicID returns the CID topic `name` will get at Build, or -1. Channels
// occupy the first IDs, topics follow in declaration order.
func (s *Spec) TopicID(name string) core.CID {
	for i := range s.Topics {
		if s.Topics[i].Name == name {
			return core.CID(len(s.Channels) + i)
		}
	}
	return -1
}

// AccelID returns the pool-head HID accelerator `name` will get at Build,
// or core.NoAccel. Assignment stays positional, but a pool occupies Count
// consecutive instance slots, so later pools' heads shift accordingly.
func (s *Spec) AccelID(name string) core.HID {
	id := 0
	for i := range s.Accels {
		if s.Accels[i].Name == name {
			return core.HID(id)
		}
		id += s.Accels[i].instances()
	}
	return core.NoAccel
}

// accelInstances returns the total instance count across all pools (the
// MaxAccels demand).
func (s *Spec) accelInstances() int {
	n := 0
	for i := range s.Accels {
		n += s.Accels[i].instances()
	}
	return n
}

// Validate checks the whole description and reports every problem it finds
// as one joined error (errors.Join), not just the first: duplicate or empty
// names, dangling channel endpoints, self-loops, negative timing
// parameters, version-less tasks, unknown accelerator references,
// periodic tasks with undelayed input edges, and zero-delay cycles in the
// channel graph.
func (s *Spec) Validate() error {
	var errs []error
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("spec: "+format, args...))
	}

	if len(s.Tasks) == 0 {
		bad("no tasks declared")
	}
	if s.Nodes < 0 {
		bad("negative node count %d", s.Nodes)
	}
	nodeCount := s.Nodes
	if nodeCount < 1 {
		nodeCount = 1
	}

	accels := make(map[string]bool, len(s.Accels))
	for i, a := range s.Accels {
		if a.Name == "" {
			bad("accelerator %d has no name", i)
			continue
		}
		if accels[a.Name] {
			bad("duplicate accelerator name %q", a.Name)
		}
		if a.Count < 0 {
			bad("accelerator %q: negative instance count %d", a.Name, a.Count)
		}
		accels[a.Name] = true
	}

	tasks := make(map[string]int, len(s.Tasks))
	for i := range s.Tasks {
		t := &s.Tasks[i]
		if t.Name == "" {
			bad("task %d has no name", i)
		} else if _, dup := tasks[t.Name]; dup {
			bad("duplicate task name %q", t.Name)
		} else {
			tasks[t.Name] = i
		}
		if t.Period < 0 {
			bad("task %q: negative period %v", t.Name, t.Period.Std())
		}
		if t.Deadline < 0 {
			bad("task %q: negative deadline %v", t.Name, t.Deadline.Std())
		}
		if t.Offset < 0 {
			bad("task %q: negative offset %v", t.Name, t.Offset.Std())
		}
		if t.Core < 0 {
			bad("task %q: negative core %d", t.Name, t.Core)
		}
		if t.Node < 0 || t.Node >= nodeCount {
			bad("task %q: node %d out of range [0,%d)", t.Name, t.Node, nodeCount)
		}
		if len(t.Versions) == 0 {
			bad("task %q has no versions", t.Name)
		}
		for vi := range t.Versions {
			v := &t.Versions[vi]
			if v.WCET < 0 {
				bad("task %q version %d: negative WCET %v", t.Name, vi, v.WCET.Std())
			}
			if v.Accel != "" && !accels[v.Accel] {
				bad("task %q version %d: unknown accelerator %q", t.Name, vi, v.Accel)
			}
			if v.AccelCS < 0 {
				bad("task %q version %d: negative accelerator critical section %v", t.Name, vi, v.AccelCS.Std())
			}
			if v.AccelCS > 0 && v.Accel == "" {
				bad("task %q version %d: accel_cs without an accelerator binding", t.Name, vi)
			}
			if v.AccelCS > 0 && v.WCET > 0 && v.AccelCS > v.WCET {
				bad("task %q version %d: accelerator critical section %v exceeds WCET %v",
					t.Name, vi, v.AccelCS.Std(), v.WCET.Std())
			}
			if v.Fn == nil && v.WCET == 0 {
				bad("task %q version %d: needs a function or a WCET to synthesize one", t.Name, vi)
			}
		}
	}

	chans := make(map[string]bool, len(s.Channels))
	for i := range s.Channels {
		c := &s.Channels[i]
		if c.Name == "" {
			bad("channel %d has no name", i)
		} else if chans[c.Name] {
			bad("duplicate channel name %q", c.Name)
		} else {
			chans[c.Name] = true
		}
		if c.Capacity < 0 {
			bad("channel %q: negative capacity %d", c.Name, c.Capacity)
		}
		if c.Delay < 0 {
			bad("channel %q: negative delay token count %d", c.Name, c.Delay)
		}
		if (c.Src == "") != (c.Dst == "") {
			bad("channel %q: endpoint dangling (src=%q dst=%q); set both or neither", c.Name, c.Src, c.Dst)
			continue
		}
		if c.Src == "" {
			continue // free-standing FIFO
		}
		si, sok := tasks[c.Src]
		if !sok {
			bad("channel %q: unknown source task %q", c.Name, c.Src)
		}
		di, dok := tasks[c.Dst]
		if !dok {
			bad("channel %q: unknown destination task %q", c.Name, c.Dst)
		}
		if sok && dok && si == di {
			bad("channel %q: self-loop on task %q", c.Name, c.Src)
		}
		if sok && dok && s.Tasks[si].Node != s.Tasks[di].Node {
			bad("channel %q: crosses nodes %d and %d (precedence edges are node-local; cross-node data flows over a topic and the cluster data plane)",
				c.Name, s.Tasks[si].Node, s.Tasks[di].Node)
		}
		if dok && c.Delay == 0 && s.Tasks[di].Period > 0 {
			bad("channel %q: destination %q is data-activated but has a period; only root nodes carry periods (feedback into a periodic root needs delay tokens)", c.Name, c.Dst)
		}
	}

	for i := range s.Topics {
		tp := &s.Topics[i]
		if tp.Name == "" {
			bad("topic %d has no name", i)
		} else if chans[tp.Name] {
			bad("topic %q collides with a channel name (channels and topics share one ID space)", tp.Name)
		} else if s.TopicID(tp.Name) != core.CID(len(s.Channels)+i) {
			bad("duplicate topic name %q", tp.Name)
		}
		if tp.Capacity < 1 {
			bad("topic %q: capacity must be >= 1, got %d", tp.Name, tp.Capacity)
		}
		if _, err := core.ParsePolicy(tp.Policy); err != nil {
			bad("topic %q: %v", tp.Name, err)
		}
		// A ForNode projection legitimately keeps only one side of a topic
		// (the other side lives on other nodes); a full spec needs both.
		if len(tp.Pubs) == 0 && !s.projected {
			bad("topic %q has no publishers", tp.Name)
		}
		if len(tp.Subs) == 0 && !s.projected {
			bad("topic %q has no subscribers", tp.Name)
		}
		if len(tp.Pubs)+len(tp.Subs) == 0 {
			bad("topic %q has no endpoints at all", tp.Name)
		}
		seenPub := make(map[string]bool, len(tp.Pubs))
		for _, p := range tp.Pubs {
			if _, ok := tasks[p]; !ok {
				bad("topic %q: unknown publisher task %q", tp.Name, p)
			}
			if seenPub[p] {
				bad("topic %q: duplicate publisher %q", tp.Name, p)
			}
			seenPub[p] = true
		}
		seenSub := make(map[string]bool, len(tp.Subs))
		for _, sb := range tp.Subs {
			if _, ok := tasks[sb]; !ok {
				bad("topic %q: unknown subscriber task %q", tp.Name, sb)
			}
			if seenSub[sb] {
				bad("topic %q: duplicate subscriber %q", tp.Name, sb)
			}
			seenSub[sb] = true
		}
	}

	seenMode := make(map[string]bool, len(s.Modes))
	for i := range s.Modes {
		m := &s.Modes[i]
		if m.Name == "" {
			bad("mode %d has no name", i)
			continue
		}
		if seenMode[m.Name] {
			bad("duplicate mode name %q", m.Name)
		}
		seenMode[m.Name] = true
		for _, tn := range m.Tasks {
			if _, ok := tasks[tn]; !ok {
				bad("mode %q: unknown task %q", m.Name, tn)
			}
		}
		// A data-activated task active in this mode needs an active
		// producer (or an explicit deadline): otherwise switching to the
		// mode would orphan it and the transaction would be rejected.
		active := m.activeSet(s)
		for ti := range s.Tasks {
			t := &s.Tasks[ti]
			if !active[t.Name] || t.Period > 0 || t.Sporadic || t.Deadline > 0 {
				continue
			}
			fed := false
			for ci := range s.Channels {
				c := &s.Channels[ci]
				if c.Dst == t.Name && c.Src != "" && active[c.Src] {
					fed = true
					break
				}
			}
			if !fed {
				bad("mode %q: data-activated task %q has no active producer and no explicit deadline", m.Name, t.Name)
			}
		}
	}

	if err := s.checkAcyclic(tasks); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// checkAcyclic rejects cycles over zero-delay edges (edges carrying delay
// tokens are legitimate feedback, as in core.App.checkAcyclic).
func (s *Spec) checkAcyclic(tasks map[string]int) error {
	succ := make([][]int, len(s.Tasks))
	for i := range s.Channels {
		c := &s.Channels[i]
		if c.Src == "" || c.Dst == "" || c.Delay > 0 {
			continue
		}
		si, sok := tasks[c.Src]
		di, dok := tasks[c.Dst]
		if !sok || !dok || si == di {
			continue // reported by Validate already
		}
		succ[si] = append(succ[si], di)
	}
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, len(s.Tasks))
	var visit func(i int) error
	visit = func(i int) error {
		color[i] = grey
		for _, d := range succ[i] {
			switch color[d] {
			case grey:
				return fmt.Errorf("spec: channel graph has a cycle through task %q", s.Tasks[d].Name)
			case white:
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		color[i] = black
		return nil
	}
	for i := range s.Tasks {
		if color[i] == white {
			if err := visit(i); err != nil {
				return err
			}
		}
	}
	return nil
}

// ForNode projects the per-node sub-application of a clustered spec: the
// tasks placed on `node` (declaration order preserved), the channels whose
// endpoints are both local (plus free-standing FIFOs, replicated
// everywhere), and the topics with at least one local endpoint — keeping
// only the local side of their Pubs/Subs lists. A topic that loses a side
// this way is exactly a cross-node topic: the missing publishers or
// subscribers live on other nodes and reach it over the cluster data plane
// (cluster.Node.Topic wires the forwarding), so the projection is marked
// `projected` to relax the both-sides validation.
//
// Modes are dropped from projections: a mode's task list filtered down to
// one node could become empty, which ModeSpec reads as "all tasks active" —
// silently inverting the mode's meaning. Cluster-wide mode switches are the
// control plane's job (cluster.Reconfigure), not a per-node preset's.
//
// The projection is a deep-enough copy: mutating its slices does not alias
// the parent spec.
func (s *Spec) ForNode(node int) *Spec {
	out := &Spec{
		Name:      fmt.Sprintf("%s@node%d", s.Name, node),
		Accels:    append([]AccelSpec(nil), s.Accels...),
		projected: true,
	}
	local := make(map[string]bool, len(s.Tasks))
	for i := range s.Tasks {
		if s.Tasks[i].Node == node {
			t := s.Tasks[i]
			t.Node = 0 // placement is resolved; the projection is single-node
			t.Versions = append([]VersionSpec(nil), s.Tasks[i].Versions...)
			out.Tasks = append(out.Tasks, t)
			local[t.Name] = true
		}
	}
	for i := range s.Channels {
		c := s.Channels[i]
		free := c.Src == "" && c.Dst == ""
		if free || (local[c.Src] && local[c.Dst]) {
			out.Channels = append(out.Channels, c)
		}
	}
	for i := range s.Topics {
		tp := s.Topics[i]
		var pubs, subs []string
		for _, p := range tp.Pubs {
			if local[p] {
				pubs = append(pubs, p)
			}
		}
		for _, sb := range tp.Subs {
			if local[sb] {
				subs = append(subs, sb)
			}
		}
		if len(pubs)+len(subs) == 0 {
			continue // no local endpoint: the topic does not exist here
		}
		tp.Pubs, tp.Subs = pubs, subs
		out.Topics = append(out.Topics, tp)
	}
	return out
}

// Build validates the spec, sizes the configuration to fit it (only zero
// limits are filled in), creates an App on env and performs every
// declaration call. It is the declarative equivalent of the whole Table-1
// construction sequence.
func (s *Spec) Build(cfg core.Config, env rt.Env) (*core.App, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s.build(cfg, env)
}

// build instantiates an already-validated spec.
func (s *Spec) build(cfg core.Config, env rt.Env) (*core.App, error) {
	s.sizeConfig(&cfg)
	app, err := core.New(cfg, env)
	if err != nil {
		return nil, err
	}
	if err := s.apply(app); err != nil {
		return nil, err
	}
	if err := s.installModes(app); err != nil {
		return nil, err
	}
	return app, nil
}

// Apply validates the spec and performs its declarations on an existing,
// freshly initialized App, for callers that configure the App themselves.
// The App must hold no declarations yet: the spec layer's ID assignment is
// positional (task i == TID i), which only holds from a clean slate.
//
// Apply is all-or-nothing: the spec is pre-validated against the target App
// (running schedule, capacity limits) before the first declaration call, so
// a failure can never leave a half-declared App behind.
func (s *Spec) Apply(app *core.App) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if err := s.preflight(app); err != nil {
		return err
	}
	if err := s.apply(app); err != nil {
		return err
	}
	return s.installModes(app)
}

// preflight checks everything a declaration call could reject — the running
// schedule and the static capacity limits — so apply's declaration sequence
// cannot fail partway through.
func (s *Spec) preflight(app *core.App) error {
	if app.Started() {
		return fmt.Errorf("spec: Apply on a running App: %w (use Reconfigure/SwitchSpec for live changes)", core.ErrStarted)
	}
	if app.NumTasks() != 0 || app.NumChannels() != 0 || app.NumAccels() != 0 {
		return fmt.Errorf("spec: Apply needs a freshly initialized App (IDs are positional); call App.Init first")
	}
	cfg := app.Config()
	if len(s.Tasks) > cfg.MaxTasks {
		return fmt.Errorf("spec: %d tasks exceed MaxTasks=%d", len(s.Tasks), cfg.MaxTasks)
	}
	if len(s.Channels)+len(s.Topics) > cfg.MaxChannels {
		return fmt.Errorf("spec: %d channels+topics exceed MaxChannels=%d",
			len(s.Channels)+len(s.Topics), cfg.MaxChannels)
	}
	if s.accelInstances() > cfg.MaxAccels {
		return fmt.Errorf("spec: %d accelerator instances exceed MaxAccels=%d", s.accelInstances(), cfg.MaxAccels)
	}
	for i := range s.Tasks {
		if n := len(s.Tasks[i].Versions); n > cfg.MaxVersionsPerTask {
			return fmt.Errorf("spec: task %q has %d versions, MaxVersionsPerTask=%d",
				s.Tasks[i].Name, n, cfg.MaxVersionsPerTask)
		}
	}
	return nil
}

// sizeConfig raises unset static limits to fit the spec.
func (s *Spec) sizeConfig(cfg *core.Config) {
	if cfg.MaxTasks == 0 && len(s.Tasks) > 0 {
		cfg.MaxTasks = len(s.Tasks)
	}
	if cfg.MaxChannels == 0 && len(s.Channels)+len(s.Topics) > 0 {
		cfg.MaxChannels = len(s.Channels) + len(s.Topics)
	}
	if cfg.MaxAccels == 0 && len(s.Accels) > 0 {
		cfg.MaxAccels = s.accelInstances()
	}
	if cfg.MaxVersionsPerTask == 0 {
		for i := range s.Tasks {
			if n := len(s.Tasks[i].Versions); n > cfg.MaxVersionsPerTask {
				cfg.MaxVersionsPerTask = n
			}
		}
	}
}

// apply performs the declaration calls; the spec is already validated.
// Name resolution is done once up front (maps and per-task channel lists),
// keeping instantiation linear in the spec size.
func (s *Spec) apply(app *core.App) error {
	if app.NumTasks() != 0 || app.NumChannels() != 0 || app.NumAccels() != 0 {
		return fmt.Errorf("spec: Apply needs a freshly initialized App (IDs are positional); call App.Init first")
	}
	taskIdx := make(map[string]core.TID, len(s.Tasks))
	for i := range s.Tasks {
		taskIdx[s.Tasks[i].Name] = core.TID(i)
	}
	accelIdx := make(map[string]core.HID, len(s.Accels))
	for i := range s.Accels {
		accelIdx[s.Accels[i].Name] = core.HID(i)
	}
	ins := make([][]core.CID, len(s.Tasks))
	outs := make([][]core.CID, len(s.Tasks))
	for i := range s.Channels {
		c := &s.Channels[i]
		if c.Src == "" {
			continue
		}
		if c.Capacity > 0 {
			di := taskIdx[c.Dst]
			ins[di] = append(ins[di], core.CID(i))
		}
		si := taskIdx[c.Src]
		outs[si] = append(outs[si], core.CID(i))
	}
	// Topic endpoints, for the synthesized bodies: publishers publish the
	// job index, subscribers drain their backlog.
	tins := make([][]core.CID, len(s.Tasks))
	touts := make([][]core.CID, len(s.Tasks))
	for i := range s.Topics {
		tp := &s.Topics[i]
		id := core.CID(len(s.Channels) + i)
		for _, p := range tp.Pubs {
			touts[taskIdx[p]] = append(touts[taskIdx[p]], id)
		}
		for _, sb := range tp.Subs {
			tins[taskIdx[sb]] = append(tins[taskIdx[sb]], id)
		}
	}

	for i := range s.Accels {
		a := &s.Accels[i]
		if _, err := app.HwAccelDeclPool(a.Name, a.instances()); err != nil {
			return fmt.Errorf("spec: accel %q: %w", a.Name, err)
		}
	}
	for i := range s.Channels {
		c := &s.Channels[i]
		if _, err := app.ChannelDecl(c.Name, c.Capacity); err != nil {
			return fmt.Errorf("spec: channel %q: %w", c.Name, err)
		}
	}
	for i := range s.Topics {
		tp := &s.Topics[i]
		pol, _ := core.ParsePolicy(tp.Policy) // validated already
		opts := core.TopicOpts{Capacity: tp.Capacity, Policy: pol, Priority: tp.Priority}
		if _, err := app.TopicDecl(tp.Name, opts); err != nil {
			return fmt.Errorf("spec: topic %q: %w", tp.Name, err)
		}
	}
	for i := range s.Tasks {
		t := &s.Tasks[i]
		tid, err := app.TaskDecl(core.TData{
			Name:          t.Name,
			Period:        t.Period.Std(),
			Deadline:      t.Deadline.Std(),
			ReleaseOffset: t.Offset.Std(),
			VirtCore:      t.Core,
			Priority:      t.Priority,
			Sporadic:      t.Sporadic,
		})
		if err != nil {
			return fmt.Errorf("spec: task %q: %w", t.Name, err)
		}
		for vi := range t.Versions {
			v := &t.Versions[vi]
			fn := v.Fn
			if fn == nil {
				fn = synthBody(ins[i], outs[i], tins[i], touts[i], v)
			}
			props := core.VSelect{
				WCET:             v.WCET.Std(),
				AccelCS:          v.AccelCS.Std(),
				EnergyBudget:     v.Energy,
				GetBatteryStatus: v.GetBattery,
				MinBattery:       v.MinBattery,
				Quality:          v.Quality,
				Modes:            v.Modes,
				Mask:             v.Mask,
			}
			vid, err := app.VersionDecl(tid, fn, v.Args, props)
			if err != nil {
				return fmt.Errorf("spec: task %q version %d: %w", t.Name, vi, err)
			}
			if v.Accel != "" {
				if err := app.HwAccelUse(tid, vid, accelIdx[v.Accel]); err != nil {
					return fmt.Errorf("spec: task %q version %d: %w", t.Name, vi, err)
				}
			}
		}
	}
	for i := range s.Channels {
		c := &s.Channels[i]
		if c.Src == "" {
			continue
		}
		src, dst := taskIdx[c.Src], taskIdx[c.Dst]
		var err error
		if c.Delay > 0 {
			err = app.ChannelConnectDelayed(src, dst, core.CID(i), c.Delay)
		} else {
			err = app.ChannelConnect(src, dst, core.CID(i))
		}
		if err != nil {
			return fmt.Errorf("spec: channel %q: %w", c.Name, err)
		}
	}
	for i := range s.Topics {
		tp := &s.Topics[i]
		id := core.CID(len(s.Channels) + i)
		for _, p := range tp.Pubs {
			if err := app.TopicPub(taskIdx[p], id); err != nil {
				return fmt.Errorf("spec: topic %q: %w", tp.Name, err)
			}
		}
		for _, sb := range tp.Subs {
			if err := app.TopicSub(taskIdx[sb], id); err != nil {
				return fmt.Errorf("spec: topic %q: %w", tp.Name, err)
			}
		}
	}
	return nil
}

// synthBody generates the body of a function-less version: pop one value
// from every data-carrying input channel, take the pending backlog of every
// subscribed topic, model the WCET as computation (an explicit AccelCS —
// defaulting to 90% of the WCET — framed by equal CPU halves for
// accelerator versions), and push/publish the job index to every output
// channel and topic — the standard workload stand-in simulation tools use.
// Pops are guarded by ChannelLen: an activation fired by a delay token
// finds the edge seeded but the FIFO empty (only real producer completions
// buffer values).
func synthBody(ins, outs, tins, touts []core.CID, v *VersionSpec) core.TaskFunc {
	wcet := v.WCET.Std()
	accelCS := v.AccelCS.Std()
	onAccel := v.Accel != ""
	return func(x *core.ExecCtx, _ any) error {
		for _, c := range ins {
			n, err := x.ChannelLen(c)
			if err != nil {
				return err
			}
			if n == 0 {
				continue
			}
			if _, err := x.Pop(c); err != nil {
				return err
			}
		}
		for _, c := range tins {
			for { // drain the whole backlog, like a real inbox consumer
				_, ok, err := x.Take(c)
				if err != nil {
					return err
				}
				if !ok {
					break
				}
			}
		}
		if onAccel {
			// Default split 5%/90%/5%; an explicit AccelCS sizes the
			// section, framed by equal CPU halves.
			pre := wcet / 20
			post := wcet / 20
			cs := wcet - pre - post
			if accelCS > 0 && accelCS <= wcet {
				cs = accelCS
				pre = (wcet - cs) / 2
				post = wcet - cs - pre
			}
			if err := x.Compute(pre); err != nil {
				return err
			}
			if err := x.AccelSection(cs); err != nil {
				return err
			}
			if err := x.Compute(post); err != nil {
				return err
			}
		} else if err := x.Compute(wcet); err != nil {
			return err
		}
		for _, c := range outs {
			if err := x.Push(c, x.JobIndex()); err != nil {
				return err
			}
		}
		for _, c := range touts {
			if err := x.Publish(c, x.JobIndex()); err != nil {
				return err
			}
		}
		return nil
	}
}

// WriteJSON serialises the spec with indentation.
func (s *Spec) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("spec: encode: %w", err)
	}
	return nil
}

// Load parses a spec from JSON and validates it.
func Load(r io.Reader) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: decode: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile reads and validates a spec file.
func LoadFile(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
