package spec

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/offline"
	"github.com/yasmin-rt/yasmin/internal/platform"
	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/sim"
	"github.com/yasmin-rt/yasmin/internal/taskset"
	"github.com/yasmin-rt/yasmin/internal/trace"
)

// runSim drives an app built by `build` for `horizon` of virtual time and
// returns its job trace as comparable strings.
func runSim(t *testing.T, seed int64, horizon time.Duration,
	build func(env *rt.SimEnv) (*core.App, error)) []string {
	t.Helper()
	eng := sim.NewEngine(seed)
	env, err := rt.NewSimEnv(eng, platform.OdroidXU4(), nil)
	if err != nil {
		t.Fatal(err)
	}
	app, err := build(env)
	if err != nil {
		t.Fatal(err)
	}
	env.Spawn("main", rt.UnpinnedCore, func(c rt.Ctx) {
		if err := app.Start(c); err != nil {
			t.Error("start:", err)
			return
		}
		c.SleepUntil(horizon)
		app.Stop(c)
		app.Cleanup(c)
	})
	if err := eng.Run(sim.Time(horizon + time.Minute)); err != nil {
		t.Fatal(err)
	}
	if err := app.FirstError(); err != nil {
		t.Fatalf("task error during run: %v", err)
	}
	return formatJobs(app.Recorder().Jobs())
}

func formatJobs(jobs []trace.JobRecord) []string {
	out := make([]string, len(jobs))
	for i, j := range jobs {
		out[i] = fmt.Sprintf("%s#%d v%d core%d rel=%v start=%v fin=%v miss=%v",
			j.Task, j.Job, j.Version, j.Core, j.Release, j.Start, j.Finish, j.Missed)
	}
	return out
}

func diffTraces(t *testing.T, a, b []string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("trace length mismatch: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at job %d:\n  %s\n  %s", i, a[i], b[i])
		}
	}
}

// guardedPop mirrors the synthesized bodies' input handling: check length,
// pop only when a value is buffered.
func guardedPop(x *core.ExecCtx, c core.CID) error {
	n, err := x.ChannelLen(c)
	if err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	_, err = x.Pop(c)
	return err
}

// diamondSpec describes the paper's Listing 2 diamond as a function-less,
// fully serializable spec (synthesized bodies).
func diamondSpec() *Spec {
	return &Spec{
		Name:   "diamond",
		Accels: []AccelSpec{{Name: "quantum_rand_num_generator"}},
		Channels: []ChannelSpec{
			{Name: "fl", Capacity: 0, Src: "fork", Dst: "left"},
			{Name: "fr", Capacity: 1, Src: "fork", Dst: "right"},
			{Name: "rj", Capacity: 2, Src: "right", Dst: "join"},
			{Name: "lj", Capacity: 1, Src: "left", Dst: "join"},
		},
		Tasks: []TaskSpec{
			{Name: "fork", Period: Duration(250 * time.Millisecond),
				Versions: []VersionSpec{{WCET: Duration(200 * time.Microsecond)}}},
			{Name: "left", Versions: []VersionSpec{
				{WCET: Duration(800 * time.Microsecond), Energy: 5, Quality: 1},
				{WCET: Duration(300 * time.Microsecond), Energy: 12, Quality: 9,
					Accel: "quantum_rand_num_generator"},
			}},
			{Name: "right", Versions: []VersionSpec{{WCET: Duration(300 * time.Microsecond)}}},
			{Name: "join", Versions: []VersionSpec{{WCET: Duration(100 * time.Microsecond)}}},
		},
	}
}

func simCfg() core.Config {
	return core.Config{
		Workers:       2,
		WorkerCores:   []int{4, 5},
		SchedulerCore: 6,
		Mapping:       core.MappingGlobal,
		Priority:      core.PriorityEDF,
		RecordJobs:    true,
	}
}

// TestJSONRoundTrip: marshal -> unmarshal yields an identical spec, and
// building the decoded spec produces exactly the schedule of the original.
func TestJSONRoundTrip(t *testing.T) {
	orig := diamondSpec()
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, decoded) {
		t.Fatalf("round-trip mismatch:\norig:    %+v\ndecoded: %+v", orig, decoded)
	}

	const horizon = 2 * time.Second
	tr1 := runSim(t, 1, horizon, func(env *rt.SimEnv) (*core.App, error) {
		return orig.Build(simCfg(), env)
	})
	tr2 := runSim(t, 1, horizon, func(env *rt.SimEnv) (*core.App, error) {
		return decoded.Build(simCfg(), env)
	})
	if len(tr1) == 0 {
		t.Fatal("no jobs recorded")
	}
	diffTraces(t, tr1, tr2)
}

// TestSpecMatchesImperative: a spec-built app and a hand-declared app with
// the same structure produce the identical simulation trace.
func TestSpecMatchesImperative(t *testing.T) {
	s := diamondSpec()
	const horizon = 2 * time.Second

	declarative := runSim(t, 7, horizon, func(env *rt.SimEnv) (*core.App, error) {
		return s.Build(simCfg(), env)
	})

	imperative := runSim(t, 7, horizon, func(env *rt.SimEnv) (*core.App, error) {
		cfg := simCfg()
		cfg.MaxTasks = 4
		cfg.MaxChannels = 4
		cfg.MaxAccels = 1
		cfg.MaxVersionsPerTask = 2
		app, err := core.New(cfg, env)
		if err != nil {
			return nil, err
		}
		// Same declaration order as Spec.apply: accels, channels, tasks
		// (with versions), connects — with hand-written bodies that mirror
		// the synthesized ones.
		acc, err := app.HwAccelDecl("quantum_rand_num_generator")
		if err != nil {
			return nil, err
		}
		fl, _ := app.ChannelDecl("fl", 0)
		fr, _ := app.ChannelDecl("fr", 1)
		rj, _ := app.ChannelDecl("rj", 2)
		lj, _ := app.ChannelDecl("lj", 1)
		fork, err := app.TaskDecl(core.TData{Name: "fork", Period: 250 * time.Millisecond})
		if err != nil {
			return nil, err
		}
		if _, err := app.VersionDecl(fork, func(x *core.ExecCtx, _ any) error {
			if err := x.Compute(200 * time.Microsecond); err != nil {
				return err
			}
			if err := x.Push(fl, x.JobIndex()); err != nil {
				return err
			}
			return x.Push(fr, x.JobIndex())
		}, nil, core.VSelect{WCET: 200 * time.Microsecond}); err != nil {
			return nil, err
		}
		left, err := app.TaskDecl(core.TData{Name: "left"})
		if err != nil {
			return nil, err
		}
		if _, err := app.VersionDecl(left, func(x *core.ExecCtx, _ any) error {
			if err := x.Compute(800 * time.Microsecond); err != nil {
				return err
			}
			return x.Push(lj, x.JobIndex())
		}, nil, core.VSelect{WCET: 800 * time.Microsecond, EnergyBudget: 5, Quality: 1}); err != nil {
			return nil, err
		}
		wcet := 300 * time.Microsecond
		pre, post := wcet/20, wcet/20
		lv2, err := app.VersionDecl(left, func(x *core.ExecCtx, _ any) error {
			if err := x.Compute(pre); err != nil {
				return err
			}
			if err := x.AccelSection(wcet - pre - post); err != nil {
				return err
			}
			if err := x.Compute(post); err != nil {
				return err
			}
			return x.Push(lj, x.JobIndex())
		}, nil, core.VSelect{WCET: wcet, EnergyBudget: 12, Quality: 9})
		if err != nil {
			return nil, err
		}
		if err := app.HwAccelUse(left, lv2, acc); err != nil {
			return nil, err
		}
		right, err := app.TaskDecl(core.TData{Name: "right"})
		if err != nil {
			return nil, err
		}
		if _, err := app.VersionDecl(right, func(x *core.ExecCtx, _ any) error {
			if err := guardedPop(x, fr); err != nil {
				return err
			}
			if err := x.Compute(300 * time.Microsecond); err != nil {
				return err
			}
			return x.Push(rj, x.JobIndex())
		}, nil, core.VSelect{WCET: 300 * time.Microsecond}); err != nil {
			return nil, err
		}
		join, err := app.TaskDecl(core.TData{Name: "join"})
		if err != nil {
			return nil, err
		}
		if _, err := app.VersionDecl(join, func(x *core.ExecCtx, _ any) error {
			if err := guardedPop(x, rj); err != nil {
				return err
			}
			if err := guardedPop(x, lj); err != nil {
				return err
			}
			return x.Compute(100 * time.Microsecond)
		}, nil, core.VSelect{WCET: 100 * time.Microsecond}); err != nil {
			return nil, err
		}
		if err := app.ChannelConnect(fork, left, fl); err != nil {
			return nil, err
		}
		if err := app.ChannelConnect(fork, right, fr); err != nil {
			return nil, err
		}
		if err := app.ChannelConnect(right, join, rj); err != nil {
			return nil, err
		}
		return app, app.ChannelConnect(left, join, lj)
	})

	diffTraces(t, declarative, imperative)
}

// TestBuilderMatchesSpec: the fluent builder yields the same Spec (and the
// same IDs) as the literal structure.
func TestBuilderMatchesSpec(t *testing.T) {
	b := NewApp("diamond")
	fl := b.Channel("fl", 0)
	fr := b.Channel("fr", 1)
	rj := b.Channel("rj", 2)
	lj := b.Channel("lj", 1)
	b.Connect("fork", "left", fl).
		Connect("fork", "right", fr).
		Connect("right", "join", rj).
		Connect("left", "join", lj)
	built, err := b.
		Task("fork").Period(250*time.Millisecond).
		Version(nil, core.VSelect{WCET: 200 * time.Microsecond}).
		Task("left").
		Version(nil, core.VSelect{WCET: 800 * time.Microsecond, EnergyBudget: 5, Quality: 1}).
		Version(nil, core.VSelect{WCET: 300 * time.Microsecond, EnergyBudget: 12, Quality: 9}).
		OnAccel("quantum_rand_num_generator").
		Task("right").
		Version(nil, core.VSelect{WCET: 300 * time.Microsecond}).
		Task("join").
		Version(nil, core.VSelect{WCET: 100 * time.Microsecond}).
		Spec()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(built, diamondSpec()) {
		t.Fatalf("builder spec mismatch:\nbuilt: %+v\nwant:  %+v", built, diamondSpec())
	}
	if got := built.TaskID("right"); got != 2 {
		t.Fatalf("TaskID(right) = %d, want 2", got)
	}
	if got := built.ChannelID("rj"); got != rj {
		t.Fatalf("ChannelID(rj) = %d, want %d", got, rj)
	}
}

// TestBuilderErrorAccumulation: a broken chain surfaces every error at
// Build, not just the first, and never panics.
func TestBuilderErrorAccumulation(t *testing.T) {
	_, err := NewApp().
		Task("a").Period(-time.Second).
		Version(nil, core.VSelect{WCET: time.Millisecond}).
		OnAccel("gpu").
		Task("a"). // duplicate
		Task("").  // unnamed
		Period(time.Second).
		ChanTo("b", -1). // from unnamed task
		Task("c").
		OnAccel("gpu"). // before any Version
		Build(core.Config{Workers: 1}, rt.NewOSEnv())
	if err == nil {
		t.Fatal("expected accumulated errors")
	}
	for _, want := range []string{
		"negative period",
		"duplicate task name",
		"task needs a name",
		"unnamed task",
		"OnAccel before any Version",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing from:\n%v", want, err)
		}
	}
}

// TestValidateRejections: structural problems in a spec are all reported.
func TestValidateRejections(t *testing.T) {
	t.Run("cycle", func(t *testing.T) {
		s := &Spec{
			Channels: []ChannelSpec{
				{Name: "ab", Capacity: 1, Src: "a", Dst: "b"},
				{Name: "ba", Capacity: 1, Src: "b", Dst: "a"},
			},
			Tasks: []TaskSpec{
				{Name: "a", Versions: []VersionSpec{{WCET: Duration(time.Millisecond)}}},
				{Name: "b", Versions: []VersionSpec{{WCET: Duration(time.Millisecond)}}},
			},
		}
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), "cycle") {
			t.Fatalf("want cycle error, got %v", err)
		}
		// Delay tokens break the cycle (SDF feedback), as in core.
		s.Channels[1].Delay = 1
		s.Tasks[0].Period = Duration(10 * time.Millisecond)
		if err := s.Validate(); err != nil {
			t.Fatalf("delayed back edge should validate, got %v", err)
		}
	})
	t.Run("dangling", func(t *testing.T) {
		s := diamondSpec()
		s.Channels[2].Dst = "nowhere"
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), `unknown destination task "nowhere"`) {
			t.Fatalf("want dangling-endpoint error, got %v", err)
		}
	})
	t.Run("duplicate-task", func(t *testing.T) {
		s := diamondSpec()
		s.Tasks[3].Name = "fork"
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), `duplicate task name "fork"`) {
			t.Fatalf("want duplicate-task error, got %v", err)
		}
	})
	t.Run("multi-error", func(t *testing.T) {
		s := diamondSpec()
		s.Tasks[0].Period = Duration(-1)            // bad period
		s.Tasks[1].Versions = nil                   // no versions
		s.Channels[0].Dst = "ghost"                 // dangling
		s.Tasks[3].Versions[0].Accel = "warp-drive" // unknown accel
		err := s.Validate()
		if err == nil {
			t.Fatal("expected errors")
		}
		for _, want := range []string{
			"negative period", "has no versions", `unknown destination task "ghost"`,
			`unknown accelerator "warp-drive"`,
		} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("error %q missing from:\n%v", want, err)
			}
		}
	})
}

// TestTaskSetBridge: the analysis view inherits root timing for graph nodes
// and round-trips flat sets.
func TestTaskSetBridge(t *testing.T) {
	set, err := diamondSpec().TaskSet()
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 4 {
		t.Fatalf("want 4 tasks, got %d", set.Len())
	}
	for _, tk := range set.Tasks {
		if tk.Period != 250*time.Millisecond {
			t.Errorf("task %s: period %v, want inherited 250ms", tk.Name, tk.Period)
		}
	}
	if u := set.TotalUtilization(); u <= 0 {
		t.Fatalf("utilization %v", u)
	}

	// Flat round trip: taskset -> spec -> taskset preserves the timing.
	flat := &taskset.Set{Tasks: []taskset.Task{
		{ID: 0, Name: "t0", Period: 10 * time.Millisecond, Deadline: 10 * time.Millisecond,
			WCET: time.Millisecond},
		{ID: 1, Name: "t1", Period: 40 * time.Millisecond, Deadline: 20 * time.Millisecond,
			WCET: 2 * time.Millisecond, Offset: time.Millisecond},
	}}
	back, err := FromTaskSet(flat).TaskSet()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(flat, back) {
		t.Fatalf("flat round trip mismatch:\nin:  %+v\nout: %+v", flat, back)
	}

	// Duplicate names (legal in task sets, which key on IDs) are uniquified.
	dup := &taskset.Set{Tasks: []taskset.Task{
		{ID: 0, Name: "sensor", Period: 10 * time.Millisecond, Deadline: 10 * time.Millisecond,
			WCET: time.Millisecond},
		{ID: 1, Name: "sensor", Period: 20 * time.Millisecond, Deadline: 20 * time.Millisecond,
			WCET: time.Millisecond},
	}}
	ds := FromTaskSet(dup)
	if err := ds.Validate(); err != nil {
		t.Fatalf("duplicate-name set should lift cleanly: %v", err)
	}
	if ds.Tasks[1].Name != "sensor#1" {
		t.Fatalf("uniquified name = %q, want sensor#1", ds.Tasks[1].Name)
	}
}

// TestOfflineBridge: the spec maps onto the off-line synthesiser input and
// synthesizes a feasible table for the diamond.
func TestOfflineBridge(t *testing.T) {
	specs, err := diamondSpec().OfflineSpecs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("want 4 specs, got %d", len(specs))
	}
	if got := specs[3].Preds; len(got) != 2 {
		t.Fatalf("join preds = %v, want 2 predecessors", got)
	}
	if specs[1].Versions[1].Accel != 0 {
		t.Fatalf("left v2 accel index = %d, want 0", specs[1].Versions[1].Accel)
	}
	sched, err := offline.Synthesize(specs, 2, 1, offline.MinMakespan)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Table == nil || len(sched.Placements) == 0 {
		t.Fatal("empty synthesis result")
	}
}

// TestSynthesizedFeedbackLoop: a delay-token back edge with function-less
// versions runs without task errors — the delay-token activation finds the
// FIFO empty and the synthesized body must tolerate it.
func TestSynthesizedFeedbackLoop(t *testing.T) {
	s := &Spec{
		Name: "feedback",
		Channels: []ChannelSpec{
			{Name: "ab", Capacity: 4, Src: "a", Dst: "b"},
			{Name: "ba", Capacity: 4, Src: "b", Dst: "a", Delay: 1},
		},
		Tasks: []TaskSpec{
			{Name: "a", Period: Duration(10 * time.Millisecond),
				Versions: []VersionSpec{{WCET: Duration(time.Millisecond)}}},
			{Name: "b", Versions: []VersionSpec{{WCET: Duration(2 * time.Millisecond)}}},
		},
	}
	tr := runSim(t, 4, 100*time.Millisecond, func(env *rt.SimEnv) (*core.App, error) {
		return s.Build(core.Config{Workers: 2, RecordJobs: true}, env)
	})
	if len(tr) < 10 {
		t.Fatalf("feedback loop starved: only %d jobs", len(tr))
	}
}

// TestBuildSizesConfig: Build fills zero static limits from the spec.
func TestBuildSizesConfig(t *testing.T) {
	tr := runSim(t, 3, time.Second, func(env *rt.SimEnv) (*core.App, error) {
		return diamondSpec().Build(core.Config{Workers: 2, RecordJobs: true}, env)
	})
	if len(tr) == 0 {
		t.Fatal("no jobs recorded")
	}
}

// TestApplyOnExistingApp: a spec applies onto a fresh caller-configured
// App, and refuses a non-empty one (positional IDs would mis-wire).
func TestApplyOnExistingApp(t *testing.T) {
	env := rt.NewOSEnv()
	app, err := core.New(core.Config{Workers: 1}, env)
	if err != nil {
		t.Fatal(err)
	}
	if err := diamondSpec().Apply(app); err != nil {
		t.Fatal(err)
	}
	// The declarations landed and the App stays usable imperatively.
	if _, err := app.TaskDecl(core.TData{Name: "extra"}); err != nil {
		t.Fatalf("app not usable after Apply: %v", err)
	}
	// A second Apply would assign colliding positional IDs: rejected.
	if err := diamondSpec().Apply(app); err == nil ||
		!strings.Contains(err.Error(), "freshly initialized") {
		t.Fatalf("Apply on non-empty app: got %v, want freshly-initialized error", err)
	}
	// After Init clears the declarations, Apply works again.
	app.Init()
	if err := diamondSpec().Apply(app); err != nil {
		t.Fatal(err)
	}
}

// topicSpec builds a small pub-sub application: two sensors fan into one
// monitor over a "bus" topic, and the first sensor also feeds a conflating
// "latest" topic read by a dashboard.
func topicSpec() *Spec {
	return &Spec{
		Name: "pubsub",
		Topics: []TopicSpec{
			{Name: "bus", Capacity: 16, Priority: 1,
				Pubs: []string{"s0", "s1"}, Subs: []string{"monitor"}},
			{Name: "latest", Capacity: 1, Policy: "latest", Priority: 0,
				Pubs: []string{"s0"}, Subs: []string{"dashboard"}},
		},
		Tasks: []TaskSpec{
			{Name: "s0", Period: Duration(10 * time.Millisecond),
				Versions: []VersionSpec{{WCET: Duration(time.Millisecond)}}},
			{Name: "s1", Period: Duration(20 * time.Millisecond),
				Versions: []VersionSpec{{WCET: Duration(time.Millisecond)}}},
			{Name: "monitor", Period: Duration(20 * time.Millisecond),
				Versions: []VersionSpec{{WCET: Duration(2 * time.Millisecond)}}},
			{Name: "dashboard", Period: Duration(50 * time.Millisecond),
				Versions: []VersionSpec{{WCET: Duration(time.Millisecond)}}},
		},
	}
}

func TestTopicSpecRoundTripAndBuild(t *testing.T) {
	s := topicSpec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.TopicID("bus"); got != 0 {
		t.Errorf("TopicID(bus) = %d, want 0 (no channels declared)", got)
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, loaded) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", s, loaded)
	}
	// Synthesized bodies publish and drain the topics; no task errors.
	tr := runSim(t, 5, time.Second, func(env *rt.SimEnv) (*core.App, error) {
		return loaded.Build(core.Config{Workers: 2, RecordJobs: true}, env)
	})
	if len(tr) == 0 {
		t.Fatal("no jobs recorded")
	}
}

func TestTopicSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(s *Spec)
		want string
	}{
		{"no pubs", func(s *Spec) { s.Topics[0].Pubs = nil }, "no publishers"},
		{"no subs", func(s *Spec) { s.Topics[0].Subs = nil }, "no subscribers"},
		{"bad policy", func(s *Spec) { s.Topics[0].Policy = "sometimes" }, "overflow policy"},
		{"zero capacity", func(s *Spec) { s.Topics[0].Capacity = 0 }, "capacity"},
		{"unknown pub", func(s *Spec) { s.Topics[0].Pubs = []string{"ghost"} }, "unknown publisher"},
		{"unknown sub", func(s *Spec) { s.Topics[0].Subs = []string{"ghost"} }, "unknown subscriber"},
		{"dup pub", func(s *Spec) { s.Topics[0].Pubs = []string{"s0", "s0"} }, "duplicate publisher"},
		{"dup topic", func(s *Spec) { s.Topics[1].Name = "bus" }, "duplicate topic"},
		{"collides with channel", func(s *Spec) {
			s.Channels = append(s.Channels, ChannelSpec{Name: "bus", Capacity: 1})
		}, "collides"},
		{"unnamed", func(s *Spec) { s.Topics[0].Name = "" }, "no name"},
	}
	for _, tc := range cases {
		s := topicSpec()
		tc.mut(s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestBuilderTopics(t *testing.T) {
	b := NewApp("pubsub")
	bus := b.Topic("bus", core.TopicOpts{Capacity: 16, Priority: 1})
	latest := b.Topic("latest", core.TopicOpts{Capacity: 1, Policy: core.Latest})
	if bus != 0 || latest != 1 {
		t.Fatalf("topic CIDs = %d,%d, want 0,1", bus, latest)
	}
	b.Task("s0").Period(10*time.Millisecond).
		Version(nil, core.VSelect{WCET: time.Millisecond}).
		Publishes("bus", "latest").
		Task("s1").Period(20*time.Millisecond).
		Version(nil, core.VSelect{WCET: time.Millisecond}).
		Publishes("bus").
		Task("monitor").Period(20*time.Millisecond).
		Version(nil, core.VSelect{WCET: 2 * time.Millisecond}).
		Subscribes("bus").
		Task("dashboard").Period(50*time.Millisecond).
		Version(nil, core.VSelect{WCET: time.Millisecond}).
		Subscribes("latest")
	s, err := b.Spec()
	if err != nil {
		t.Fatal(err)
	}
	want := topicSpec()
	if !reflect.DeepEqual(s.Topics, want.Topics) {
		t.Fatalf("builder topics:\n%+v\nwant:\n%+v", s.Topics, want.Topics)
	}

	// Channel after topic shifts positional IDs: rejected.
	b2 := NewApp()
	b2.Topic("t", core.TopicOpts{Capacity: 1})
	b2.Channel("c", 1)
	if err := b2.Err(); err == nil || !strings.Contains(err.Error(), "declare channels first") {
		t.Errorf("channel-after-topic: got %v", err)
	}
	// Unknown topic in Publishes/Subscribes accumulates an error.
	b3 := NewApp()
	b3.Task("t").Period(time.Millisecond).
		Version(nil, core.VSelect{WCET: time.Microsecond}).
		Publishes("ghost")
	if err := b3.Err(); err == nil || !strings.Contains(err.Error(), "unknown topic") {
		t.Errorf("publishes unknown topic: got %v", err)
	}
}
