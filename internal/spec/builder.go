package spec

import (
	"errors"
	"fmt"
	"time"

	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/rt"
)

// Builder constructs a Spec fluently. Unlike the imperative Table-1 calls,
// builder methods never return errors: problems accumulate and surface
// once, joined, from Err, Spec or Build — so an application reads as one
// chained description instead of a wall of per-call checks:
//
//	app, err := spec.NewApp("pipeline").
//		Task("cam").Period(33*time.Millisecond).
//		Version(grab, core.VSelect{WCET: 2 * time.Millisecond}).
//		ChanTo("detect", 4).
//		Task("detect").
//		Version(detectGPU, core.VSelect{WCET: 9 * time.Millisecond}).OnAccel("gpu").
//		Version(detectCPU, core.VSelect{WCET: 21 * time.Millisecond}).
//		Build(cfg, env)
//
// Forward references are legal: ChanTo may name a task declared later;
// names resolve when the Spec is validated.
type Builder struct {
	s    Spec
	errs []error
}

// NewApp starts a fluent application description; an optional single
// argument names it.
func NewApp(name ...string) *Builder {
	b := &Builder{}
	if len(name) > 0 {
		b.s.Name = name[0]
	}
	return b
}

func (b *Builder) fail(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf("spec: "+format, args...))
}

// Err returns every error accumulated so far, joined; nil when clean.
func (b *Builder) Err() error { return errors.Join(b.errs...) }

// Spec validates the accumulated description and returns it. The builder
// remains usable; the returned Spec is a snapshot copy.
func (b *Builder) Spec() (*Spec, error) {
	if err := b.Err(); err != nil {
		return nil, err
	}
	out := b.s
	out.Accels = append([]AccelSpec(nil), b.s.Accels...)
	out.Channels = append([]ChannelSpec(nil), b.s.Channels...)
	out.Topics = append([]TopicSpec(nil), b.s.Topics...)
	for i := range out.Topics {
		out.Topics[i].Pubs = append([]string(nil), b.s.Topics[i].Pubs...)
		out.Topics[i].Subs = append([]string(nil), b.s.Topics[i].Subs...)
	}
	out.Tasks = make([]TaskSpec, len(b.s.Tasks))
	for i := range b.s.Tasks {
		out.Tasks[i] = b.s.Tasks[i]
		out.Tasks[i].Versions = append([]VersionSpec(nil), b.s.Tasks[i].Versions...)
	}
	if len(b.s.Modes) > 0 {
		out.Modes = make([]ModeSpec, len(b.s.Modes))
		for i := range b.s.Modes {
			out.Modes[i] = b.s.Modes[i]
			out.Modes[i].Tasks = append([]string(nil), b.s.Modes[i].Tasks...)
		}
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return &out, nil
}

// Build finalises the description and instantiates it on env — accumulated
// builder errors and validation errors are reported together.
func (b *Builder) Build(cfg core.Config, env rt.Env) (*core.App, error) {
	s, err := b.Spec() // validates
	if err != nil {
		return nil, err
	}
	return s.build(cfg, env)
}

// Nodes declares the cluster size the application is placed over (see
// Spec.Nodes); tasks then pick their node with OnNode. Zero or one keeps
// the ordinary single-node application.
func (b *Builder) Nodes(n int) *Builder {
	if n < 0 {
		b.fail("negative node count %d", n)
		return b
	}
	b.s.Nodes = n
	return b
}

// Accel declares a hardware accelerator. Declaring the same name twice is
// harmless (OnAccel auto-declares).
func (b *Builder) Accel(name string) *Builder {
	if name == "" {
		b.fail("accelerator needs a name")
		return b
	}
	if b.s.AccelID(name) == core.NoAccel {
		b.s.Accels = append(b.s.Accels, AccelSpec{Name: name})
	}
	return b
}

// AccelPool declares a pool of count interchangeable accelerator instances
// (HwAccelDeclPool): version bindings reference the pool by name and the
// runtime takes any free instance. Re-declaring a name with a different
// count is an error; OnAccel's auto-declaration (count 1) upgrades cleanly
// when AccelPool names the same accelerator first.
func (b *Builder) AccelPool(name string, count int) *Builder {
	if name == "" {
		b.fail("accelerator needs a name")
		return b
	}
	if count < 1 {
		b.fail("accelerator pool %q needs count >= 1, got %d", name, count)
		return b
	}
	for i := range b.s.Accels {
		if b.s.Accels[i].Name != name {
			continue
		}
		if b.s.Accels[i].instances() != count {
			b.fail("accelerator %q re-declared with count %d (was %d)",
				name, count, b.s.Accels[i].instances())
		}
		return b
	}
	b.s.Accels = append(b.s.Accels, AccelSpec{Name: name, Count: count})
	return b
}

// Channel declares a free-standing FIFO channel and returns the CID it will
// have at Build (assignment is positional, so the ID is known immediately —
// version bodies may capture it). Connect it to tasks with Connect, or
// leave it unconnected for direct Push/Pop use.
func (b *Builder) Channel(name string, capacity int) core.CID {
	if name == "" {
		b.fail("channel needs a name")
		return -1
	}
	if len(b.s.Topics) > 0 {
		// CIDs are positional with channels before topics: a channel
		// declared after a topic would shift the already-returned topic IDs.
		b.fail("channel %q declared after a topic; declare channels first (IDs are positional)", name)
		return -1
	}
	if b.s.ChannelID(name) >= 0 {
		b.fail("duplicate channel name %q", name)
		return -1
	}
	if capacity < 0 {
		b.fail("channel %q: negative capacity %d", name, capacity)
		capacity = 0
	}
	b.s.Channels = append(b.s.Channels, ChannelSpec{Name: name, Capacity: capacity})
	return core.CID(len(b.s.Channels) - 1)
}

// Topic declares a pub-sub topic and returns the CID it will have at Build
// (positional, channels first — so declare channels before topics). Attach
// endpoints with Publishes/Subscribes on the task descriptions, and wrap
// the CID in typed ports (core.PubOf / core.SubOf) for compile-time-checked
// Send/Recv in version bodies.
func (b *Builder) Topic(name string, opts core.TopicOpts) core.CID {
	if name == "" {
		b.fail("topic needs a name")
		return -1
	}
	if b.s.TopicID(name) >= 0 || b.s.ChannelID(name) >= 0 {
		b.fail("duplicate topic name %q", name)
		return -1
	}
	if opts.Capacity < 1 {
		b.fail("topic %q: capacity must be >= 1, got %d", name, opts.Capacity)
		opts.Capacity = 1
	}
	policy := ""
	if opts.Policy != core.Reject {
		policy = opts.Policy.String() // Reject is the JSON default: omit it
	}
	b.s.Topics = append(b.s.Topics, TopicSpec{
		Name:     name,
		Capacity: opts.Capacity,
		Policy:   policy,
		Priority: opts.Priority,
	})
	return core.CID(len(b.s.Channels) + len(b.s.Topics) - 1)
}

// topicByName returns the TopicSpec or fails the builder.
func (b *Builder) topicByName(verb, name string) *TopicSpec {
	for i := range b.s.Topics {
		if b.s.Topics[i].Name == name {
			return &b.s.Topics[i]
		}
	}
	b.fail("%s unknown topic %q; declare it with Topic first", verb, name)
	return nil
}

// Connect makes channel c a precedence edge from src to dst (task names;
// forward references allowed).
func (b *Builder) Connect(src, dst string, c core.CID) *Builder {
	return b.ConnectDelayed(src, dst, c, 0)
}

// ConnectDelayed is Connect with `delay` initial tokens pre-seeded on the
// edge (permits feedback cycles).
func (b *Builder) ConnectDelayed(src, dst string, c core.CID, delay int) *Builder {
	if int(c) < 0 || int(c) >= len(b.s.Channels) {
		b.fail("connect %s->%s: no channel %d", src, dst, c)
		return b
	}
	ch := &b.s.Channels[c]
	if ch.Src != "" || ch.Dst != "" {
		b.fail("channel %q already connects %s->%s", ch.Name, ch.Src, ch.Dst)
		return b
	}
	ch.Src, ch.Dst, ch.Delay = src, dst, delay
	return b
}

// Mode declares a named mode preset activating the listed tasks (none =
// all) with the given execution-mode word. Build installs the presets on
// the App; App.SwitchMode(name) later reconfigures to them live.
func (b *Builder) Mode(name string, mode uint32, tasks ...string) *Builder {
	if name == "" {
		b.fail("mode needs a name")
		return b
	}
	for i := range b.s.Modes {
		if b.s.Modes[i].Name == name {
			b.fail("duplicate mode name %q", name)
			return b
		}
	}
	b.s.Modes = append(b.s.Modes, ModeSpec{Name: name, Mode: mode, Tasks: tasks})
	return b
}

// Task starts (or re-opens) the description of the named task and returns
// its fluent sub-builder. Re-opening an existing name is an error, but the
// chain stays usable.
func (b *Builder) Task(name string) *TaskBuilder {
	if name == "" {
		b.fail("task needs a name")
		return &TaskBuilder{b: b, i: -1}
	}
	if b.s.TaskID(name) >= 0 {
		b.fail("duplicate task name %q", name)
		return &TaskBuilder{b: b, i: int(b.s.TaskID(name))}
	}
	b.s.Tasks = append(b.s.Tasks, TaskSpec{Name: name})
	return &TaskBuilder{b: b, i: len(b.s.Tasks) - 1}
}

// TaskBuilder describes one task within a Builder chain. Its methods
// return the TaskBuilder for task-scoped chaining; Task/Accel/Channel/
// Connect/Err/Spec/Build hop back to the application scope.
type TaskBuilder struct {
	b *Builder
	i int // index into b.s.Tasks; -1 after an unnamed task
}

func (t *TaskBuilder) spec() *TaskSpec {
	if t.i < 0 {
		return &TaskSpec{} // scratch: keeps a broken chain panic-free
	}
	return &t.b.s.Tasks[t.i]
}

// Period sets the minimal inter-arrival time.
func (t *TaskBuilder) Period(d time.Duration) *TaskBuilder {
	if d < 0 {
		t.b.fail("task %q: negative period %v", t.spec().Name, d)
		return t
	}
	t.spec().Period = Duration(d)
	return t
}

// Deadline sets the relative deadline (zero keeps it implicit).
func (t *TaskBuilder) Deadline(d time.Duration) *TaskBuilder {
	if d < 0 {
		t.b.fail("task %q: negative deadline %v", t.spec().Name, d)
		return t
	}
	t.spec().Deadline = Duration(d)
	return t
}

// Offset delays the first periodic release.
func (t *TaskBuilder) Offset(d time.Duration) *TaskBuilder {
	if d < 0 {
		t.b.fail("task %q: negative offset %v", t.spec().Name, d)
		return t
	}
	t.spec().Offset = Duration(d)
	return t
}

// Core binds the task to a virtual core (partitioned mapping).
func (t *TaskBuilder) Core(vc int) *TaskBuilder {
	t.spec().Core = vc
	return t
}

// OnNode places the task on a cluster node (requires Builder.Nodes > 1;
// validated at Spec/Build).
func (t *TaskBuilder) OnNode(node int) *TaskBuilder {
	t.spec().Node = node
	return t
}

// Priority sets the static user priority (PriorityUser; lower = more
// urgent).
func (t *TaskBuilder) Priority(p int) *TaskBuilder {
	t.spec().Priority = p
	return t
}

// Sporadic marks the task as released by TaskActivate with minimum
// inter-arrival time `min`.
func (t *TaskBuilder) Sporadic(min time.Duration) *TaskBuilder {
	t.spec().Sporadic = true
	return t.Period(min)
}

// Version adds an implementation with the given entry point and
// extra-functional properties. A nil fn is legal and gets a synthesized
// body from props.WCET at Build.
func (t *TaskBuilder) Version(fn core.TaskFunc, props core.VSelect) *TaskBuilder {
	return t.VersionArgs(fn, nil, props)
}

// VersionArgs is Version with a static argument passed to fn on every job.
func (t *TaskBuilder) VersionArgs(fn core.TaskFunc, args any, props core.VSelect) *TaskBuilder {
	s := t.spec()
	s.Versions = append(s.Versions, VersionSpec{
		WCET:       Duration(props.WCET),
		AccelCS:    Duration(props.AccelCS),
		Energy:     props.EnergyBudget,
		MinBattery: props.MinBattery,
		Quality:    props.Quality,
		Modes:      props.Modes,
		Mask:       props.Mask,
		Fn:         fn,
		Args:       args,
		GetBattery: props.GetBatteryStatus,
	})
	return t
}

// OnAccel binds the most recently added version to the named accelerator,
// declaring the accelerator if needed.
func (t *TaskBuilder) OnAccel(name string) *TaskBuilder {
	s := t.spec()
	if len(s.Versions) == 0 {
		t.b.fail("task %q: OnAccel before any Version", s.Name)
		return t
	}
	t.b.Accel(name)
	s.Versions[len(s.Versions)-1].Accel = name
	return t
}

// Publishes registers this task as a publisher on the named topics
// (declared earlier with Topic). The task's versions may then Publish/Send
// on them; on the wall-clock backend multi-publisher topics fan in through
// a lock-free MPSC ring.
func (t *TaskBuilder) Publishes(topics ...string) *TaskBuilder {
	name := t.spec().Name
	if t.i < 0 {
		t.b.fail("Publishes from unnamed task")
		return t
	}
	for _, tn := range topics {
		tp := t.b.topicByName("Publishes", tn)
		if tp == nil {
			continue
		}
		tp.Pubs = append(tp.Pubs, name)
	}
	return t
}

// Subscribes registers this task as a subscriber on the named topics: each
// subscription is a private cursor over the topic's shared buffer, drained
// with Take/Recv (or TakeAny in topic-priority order).
func (t *TaskBuilder) Subscribes(topics ...string) *TaskBuilder {
	name := t.spec().Name
	if t.i < 0 {
		t.b.fail("Subscribes from unnamed task")
		return t
	}
	for _, tn := range topics {
		tp := t.b.topicByName("Subscribes", tn)
		if tp == nil {
			continue
		}
		tp.Subs = append(tp.Subs, name)
	}
	return t
}

// ChanTo declares a FIFO channel of the given capacity from this task to
// dst (which may be declared later) and connects it. The channel is named
// "src->dst"; parallel channels between the same pair get a "#n" suffix.
func (t *TaskBuilder) ChanTo(dst string, capacity int) *TaskBuilder {
	return t.ChanToDelayed(dst, capacity, 0)
}

// ChanToDelayed is ChanTo with `delay` initial tokens on the edge.
func (t *TaskBuilder) ChanToDelayed(dst string, capacity, delay int) *TaskBuilder {
	src := t.spec().Name
	if t.i < 0 {
		t.b.fail("ChanTo %q from unnamed task", dst)
		return t
	}
	name := src + "->" + dst
	for n := 2; t.b.s.ChannelID(name) >= 0; n++ {
		name = fmt.Sprintf("%s->%s#%d", src, dst, n)
	}
	c := t.b.Channel(name, capacity)
	t.b.ConnectDelayed(src, dst, c, delay)
	return t
}

// Task hops to a new task description (application scope).
func (t *TaskBuilder) Task(name string) *TaskBuilder { return t.b.Task(name) }

// Accel declares an accelerator (application scope).
func (t *TaskBuilder) Accel(name string) *Builder { return t.b.Accel(name) }

// AccelPool declares an accelerator pool (application scope).
func (t *TaskBuilder) AccelPool(name string, count int) *Builder {
	return t.b.AccelPool(name, count)
}

// Channel declares a free-standing channel (application scope).
func (t *TaskBuilder) Channel(name string, capacity int) core.CID {
	return t.b.Channel(name, capacity)
}

// Topic declares a pub-sub topic (application scope).
func (t *TaskBuilder) Topic(name string, opts core.TopicOpts) core.CID {
	return t.b.Topic(name, opts)
}

// Mode declares a mode preset (application scope).
func (t *TaskBuilder) Mode(name string, mode uint32, tasks ...string) *Builder {
	return t.b.Mode(name, mode, tasks...)
}

// Connect connects a declared channel (application scope).
func (t *TaskBuilder) Connect(src, dst string, c core.CID) *Builder {
	return t.b.Connect(src, dst, c)
}

// Err reports the accumulated errors (application scope).
func (t *TaskBuilder) Err() error { return t.b.Err() }

// Spec finalises the description (application scope).
func (t *TaskBuilder) Spec() (*Spec, error) { return t.b.Spec() }

// Build finalises and instantiates the application (application scope).
func (t *TaskBuilder) Build(cfg core.Config, env rt.Env) (*core.App, error) {
	return t.b.Build(cfg, env)
}
