package spec

import (
	"fmt"
	"time"

	"github.com/yasmin-rt/yasmin/internal/offline"
	"github.com/yasmin-rt/yasmin/internal/taskset"
)

// FromTaskSet lifts a flat descriptive task set (as produced by
// yasmin-taskgen or read by the analyses) into an application spec: one
// single-version task per entry, no channels. The result builds and runs
// directly — each synthesized body computes its WCET. Task sets only
// require unique IDs, so empty or colliding names are uniquified with the
// task ID.
func FromTaskSet(set *taskset.Set) *Spec {
	s := &Spec{Name: "taskset", Tasks: make([]TaskSpec, 0, len(set.Tasks))}
	seen := make(map[string]bool, len(set.Tasks))
	accelCount := make(map[string]int)
	for i := range set.Tasks {
		t := &set.Tasks[i]
		name := t.Name
		if name == "" {
			name = fmt.Sprintf("t%d", t.ID)
		}
		for seen[name] {
			name = fmt.Sprintf("%s#%d", name, t.ID)
		}
		seen[name] = true
		// One version per accelerator use, so TaskSet() round-trips the
		// blocking model exactly; CPU-only tasks get one plain version.
		var versions []VersionSpec
		for _, u := range t.Accels {
			cs := u.CS
			if cs > t.WCET {
				cs = t.WCET
			}
			versions = append(versions, VersionSpec{
				WCET:    Duration(t.WCET),
				Accel:   u.Pool,
				AccelCS: Duration(cs),
			})
			cnt := u.Count
			if cnt < 1 {
				cnt = 1
			}
			if cnt > accelCount[u.Pool] {
				accelCount[u.Pool] = cnt
			}
		}
		if len(versions) == 0 {
			versions = []VersionSpec{{WCET: Duration(t.WCET)}}
		}
		s.Tasks = append(s.Tasks, TaskSpec{
			Name:     name,
			Period:   Duration(t.Period),
			Deadline: Duration(t.Deadline),
			Offset:   Duration(t.Offset),
			Sporadic: t.Sporadic,
			Versions: versions,
		})
	}
	// Accelerator pools referenced by the tasks, in first-use order.
	declared := make(map[string]bool, len(accelCount))
	for i := range set.Tasks {
		for _, u := range set.Tasks[i].Accels {
			if u.Pool == "" || declared[u.Pool] {
				continue
			}
			declared[u.Pool] = true
			as := AccelSpec{Name: u.Pool}
			if accelCount[u.Pool] > 1 {
				as.Count = accelCount[u.Pool]
			}
			s.Accels = append(s.Accels, as)
		}
	}
	return s
}

// TaskSet flattens the spec into the descriptive model the schedulability
// analyses consume: every task becomes an independent sporadic/periodic
// task. Data-activated graph nodes inherit the smallest period and deadline
// of their root ancestors (the conservative decomposition core.App.resolve
// applies at Start); each task's WCET is the maximum over its versions.
// It fails when a task has no WCET information or no root ancestor.
func (s *Spec) TaskSet() (*taskset.Set, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	preds := s.predIndices()
	out := &taskset.Set{Tasks: make([]taskset.Task, 0, len(s.Tasks))}
	poolCount := func(name string) int {
		for ai := range s.Accels {
			if s.Accels[ai].Name == name {
				return s.Accels[ai].instances()
			}
		}
		return 1
	}
	for i := range s.Tasks {
		t := &s.Tasks[i]
		var wcet time.Duration
		var uses []taskset.AccelUse
		for vi := range t.Versions {
			v := &t.Versions[vi]
			if w := v.WCET.Std(); w > wcet {
				wcet = w
			}
			if v.Accel == "" {
				continue
			}
			cs := v.AccelCS.Std()
			if cs <= 0 {
				cs = v.WCET.Std() // undeclared section: whole WCET, conservative
			}
			if cs <= 0 {
				continue
			}
			// Aggregate per pool across ALL versions: version selection is
			// dynamic, so the analysis must see every pool the task can
			// touch.
			found := false
			for ui := range uses {
				if uses[ui].Pool == v.Accel {
					if cs > uses[ui].CS {
						uses[ui].CS = cs
					}
					found = true
					break
				}
			}
			if !found {
				uses = append(uses, taskset.AccelUse{Pool: v.Accel, CS: cs, Count: poolCount(v.Accel)})
			}
		}
		if wcet <= 0 {
			return nil, fmt.Errorf("spec: task %q has no WCET; cannot derive an analysis task set", t.Name)
		}
		period := t.Period.Std()
		deadline := t.Deadline.Std()
		if period == 0 {
			rp, rd := s.rootTiming(i, preds, make([]bool, len(s.Tasks)))
			if rp == 0 {
				return nil, fmt.Errorf("spec: task %q is aperiodic with no periodic root ancestor; cannot derive an analysis task set", t.Name)
			}
			period = rp
			if deadline == 0 {
				deadline = rd
			}
		}
		if deadline == 0 {
			deadline = period // implicit
		}
		out.Tasks = append(out.Tasks, taskset.Task{
			ID:       i,
			Name:     t.Name,
			Period:   period,
			Deadline: deadline,
			Offset:   t.Offset.Std(),
			WCET:     wcet,
			Sporadic: t.Sporadic,
			Accels:   uses,
		})
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("spec: derived task set invalid: %w", err)
	}
	return out, nil
}

// OfflineSpecs maps the application onto the off-line synthesiser's input
// (offline.Synthesize): spec task i becomes offline spec i — matching the
// TID assignment of Build, as the synthesiser requires — with predecessor
// indices derived from the connected channels and accelerator names
// resolved to indices.
func (s *Spec) OfflineSpecs() ([]offline.TaskSpec, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	preds := s.predIndices()
	out := make([]offline.TaskSpec, 0, len(s.Tasks))
	for i := range s.Tasks {
		t := &s.Tasks[i]
		versions := make([]offline.VersionSpec, 0, len(t.Versions))
		for vi := range t.Versions {
			v := &t.Versions[vi]
			accel := offline.NoAccelerator
			if v.Accel != "" {
				accel = int(s.AccelID(v.Accel))
			}
			if v.WCET <= 0 {
				return nil, fmt.Errorf("spec: task %q version %d has no WCET; cannot synthesize off-line", t.Name, vi)
			}
			versions = append(versions, offline.VersionSpec{
				WCET:   v.WCET.Std(),
				Accel:  accel,
				Energy: v.Energy,
			})
		}
		out = append(out, offline.TaskSpec{
			Name:     t.Name,
			Period:   t.Period.Std(),
			Deadline: t.Deadline.Std(),
			Versions: versions,
			Preds:    preds[i],
		})
	}
	return out, nil
}

// predIndices derives, per task index, the de-duplicated predecessor task
// indices from the connected channels.
func (s *Spec) predIndices() [][]int {
	idx := make(map[string]int, len(s.Tasks))
	for i := range s.Tasks {
		idx[s.Tasks[i].Name] = i
	}
	preds := make([][]int, len(s.Tasks))
	for i := range s.Channels {
		c := &s.Channels[i]
		if c.Src == "" || c.Dst == "" {
			continue
		}
		si, di := idx[c.Src], idx[c.Dst]
		dup := false
		for _, p := range preds[di] {
			if p == si {
				dup = true
				break
			}
		}
		if !dup {
			preds[di] = append(preds[di], si)
		}
	}
	return preds
}

// rootTiming walks back through predecessors and returns the smallest
// period among periodic/sporadic root ancestors and the matching effective
// deadline (explicit, else the period).
func (s *Spec) rootTiming(i int, preds [][]int, seen []bool) (time.Duration, time.Duration) {
	if seen[i] {
		return 0, 0
	}
	seen[i] = true
	var bestP, bestD time.Duration
	consider := func(p, d time.Duration) {
		if p > 0 && (bestP == 0 || p < bestP) {
			bestP = p
			bestD = d
		}
	}
	for _, pi := range preds[i] {
		t := &s.Tasks[pi]
		if t.Period > 0 {
			d := t.Deadline.Std()
			if d == 0 {
				d = t.Period.Std()
			}
			consider(t.Period.Std(), d)
		} else {
			consider(s.rootTiming(pi, preds, seen))
		}
	}
	return bestP, bestD
}
