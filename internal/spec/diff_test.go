package spec

import (
	"errors"
	"reflect"
	"sort"
	"testing"
	"time"

	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/platform"
	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/sim"
)

func simEnvFor(t *testing.T) (*sim.Engine, *rt.SimEnv) {
	t.Helper()
	eng := sim.NewEngine(7)
	env, err := rt.NewSimEnv(eng, platform.Generic(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	return eng, env
}

func twoPhaseSpecs() (*Spec, *Spec) {
	mk := func(extra bool, samplerPeriod time.Duration) *Spec {
		s := &Spec{
			Name: "phased",
			Tasks: []TaskSpec{
				{Name: "sampler", Period: Duration(samplerPeriod),
					Versions: []VersionSpec{{WCET: Duration(time.Millisecond)}}},
			},
		}
		if extra {
			s.Tasks = append(s.Tasks, TaskSpec{Name: "analyzer", Period: Duration(20 * time.Millisecond),
				Versions: []VersionSpec{{WCET: Duration(2 * time.Millisecond)}}})
		}
		return s
	}
	return mk(false, 10*time.Millisecond), mk(true, 5*time.Millisecond)
}

func TestDiffAddRemoveRetune(t *testing.T) {
	from, to := twoPhaseSpecs()
	p, err := Diff(from, to)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Add, []string{"analyzer"}) {
		t.Errorf("Add = %v", p.Add)
	}
	if !reflect.DeepEqual(p.Retune, []string{"sampler"}) {
		t.Errorf("Retune = %v", p.Retune)
	}
	if len(p.Remove) != 0 {
		t.Errorf("Remove = %v", p.Remove)
	}
	back, err := Diff(to, from)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Remove, []string{"analyzer"}) || len(back.Add) != 0 {
		t.Errorf("reverse plan = %+v", back)
	}
}

func TestDiffStructuralChangeRedeclares(t *testing.T) {
	from, _ := twoPhaseSpecs()
	to := &Spec{Name: "phased", Tasks: []TaskSpec{
		{Name: "sampler", Period: Duration(10 * time.Millisecond),
			Versions: []VersionSpec{
				{WCET: Duration(time.Millisecond)},
				{WCET: Duration(2 * time.Millisecond)}, // extra version: structural
			}},
	}}
	p, err := Diff(from, to)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Remove, []string{"sampler"}) || !reflect.DeepEqual(p.Add, []string{"sampler"}) {
		t.Errorf("plan = %+v, want retire-and-readmit of sampler", p)
	}
}

func TestSwitchSpecLive(t *testing.T) {
	from, to := twoPhaseSpecs()
	eng, env := simEnvFor(t)
	app, err := from.Build(core.Config{Workers: 2, MaxTasks: 8, MaxChannels: 8}, env)
	if err != nil {
		t.Fatal(err)
	}
	env.Spawn("main", rt.UnpinnedCore, func(c rt.Ctx) {
		if err := app.Start(c); err != nil {
			t.Errorf("start: %v", err)
			return
		}
		c.SleepUntil(100 * time.Millisecond)
		plan, err := SwitchSpec(c, app, from, to)
		if err != nil {
			t.Errorf("SwitchSpec: %v", err)
		} else if plan.Empty() {
			t.Error("plan unexpectedly empty")
		}
		c.SleepUntil(200 * time.Millisecond)
		app.Stop(c)
		app.Cleanup(c)
	})
	if err := eng.Run(sim.Time(time.Minute)); err != nil {
		t.Fatal(err)
	}
	rec := app.Recorder()
	sam := rec.Task("sampler")
	// 10 jobs at 10ms over [0,100) + 20 at 5ms over [100,200).
	if sam == nil || sam.Jobs < 28 {
		t.Errorf("sampler = %+v, want ~30 jobs (retuned at 100ms)", sam)
	}
	ana := rec.Task("analyzer")
	if ana == nil || ana.Jobs < 4 {
		t.Errorf("analyzer = %+v, want ~5 jobs (admitted at 100ms)", ana)
	}
	if app.Epoch() != 1 {
		t.Errorf("epoch = %d", app.Epoch())
	}
}

func TestSpecModesInstallAndSwitch(t *testing.T) {
	s := &Spec{
		Name: "missions",
		Tasks: []TaskSpec{
			{Name: "telemetry", Period: Duration(10 * time.Millisecond),
				Versions: []VersionSpec{{WCET: Duration(time.Millisecond)}}},
			{Name: "search", Period: Duration(10 * time.Millisecond),
				Versions: []VersionSpec{{WCET: Duration(3 * time.Millisecond)}}},
			{Name: "rescue", Period: Duration(10 * time.Millisecond),
				Versions: []VersionSpec{{WCET: Duration(4 * time.Millisecond)}}},
		},
		Modes: []ModeSpec{
			{Name: "search", Mode: 0, Tasks: []string{"telemetry", "search"}},
			{Name: "rescue", Mode: 1, Tasks: []string{"telemetry", "rescue"}},
		},
	}
	eng, env := simEnvFor(t)
	app, err := s.Build(core.Config{Workers: 2, MaxTasks: 8, MaxChannels: 8}, env)
	if err != nil {
		t.Fatal(err)
	}
	got := app.ModeNames()
	sort.Strings(got)
	if !reflect.DeepEqual(got, []string{"rescue", "search"}) {
		t.Fatalf("installed modes = %v", got)
	}
	env.Spawn("main", rt.UnpinnedCore, func(c rt.Ctx) {
		// Enter the initial mode before Start: rescue is not declared yet.
		if err := app.SwitchMode(c, "search"); err != nil {
			t.Errorf("pre-start switch: %v", err)
			return
		}
		if err := app.Start(c); err != nil {
			t.Errorf("start: %v", err)
			return
		}
		c.SleepUntil(100 * time.Millisecond)
		if err := app.SwitchMode(c, "rescue"); err != nil {
			t.Errorf("switch to rescue: %v", err)
		}
		c.SleepUntil(200 * time.Millisecond)
		app.Stop(c)
		app.Cleanup(c)
	})
	if err := eng.Run(sim.Time(time.Minute)); err != nil {
		t.Fatal(err)
	}
	rec := app.Recorder()
	tele := rec.Task("telemetry")
	if tele == nil || tele.Jobs < 19 {
		t.Errorf("telemetry = %+v, want ~20 jobs (never stopped)", tele)
	}
	search := rec.Task("search")
	if search == nil || search.Jobs < 9 || search.Jobs > 12 {
		t.Errorf("search = %+v, want ~10 jobs (first phase only)", search)
	}
	rescue := rec.Task("rescue")
	if rescue == nil || rescue.Jobs < 9 || rescue.Jobs > 12 {
		t.Errorf("rescue = %+v, want ~10 jobs (second phase only)", rescue)
	}
	if app.ModeName() != "rescue" {
		t.Errorf("mode name = %q", app.ModeName())
	}
}

func TestModeValidationCatchesOrphans(t *testing.T) {
	s := &Spec{
		Tasks: []TaskSpec{
			{Name: "cam", Period: Duration(10 * time.Millisecond),
				Versions: []VersionSpec{{WCET: Duration(time.Millisecond)}}},
			{Name: "proc", Versions: []VersionSpec{{WCET: Duration(time.Millisecond)}}},
		},
		Channels: []ChannelSpec{{Name: "c", Capacity: 2, Src: "cam", Dst: "proc"}},
		Modes:    []ModeSpec{{Name: "bad", Tasks: []string{"proc"}}},
	}
	err := s.Validate()
	if err == nil {
		t.Fatal("want orphan validation error")
	}
}

func TestApplyAllOrNothing(t *testing.T) {
	eng, env := simEnvFor(t)
	_ = eng
	// Capacity violation: MaxTasks too small — Apply must fail BEFORE the
	// first declaration, leaving the App untouched and reusable.
	app, err := core.New(core.Config{Workers: 1, MaxTasks: 1}, env)
	if err != nil {
		t.Fatal(err)
	}
	big := &Spec{Tasks: []TaskSpec{
		{Name: "a", Period: Duration(time.Millisecond), Versions: []VersionSpec{{WCET: Duration(time.Microsecond)}}},
		{Name: "b", Period: Duration(time.Millisecond), Versions: []VersionSpec{{WCET: Duration(time.Microsecond)}}},
	}}
	if err := big.Apply(app); err == nil {
		t.Fatal("want capacity preflight error")
	}
	if app.NumTasks() != 0 {
		t.Fatalf("failed Apply left %d declarations behind", app.NumTasks())
	}
	small := &Spec{Tasks: []TaskSpec{
		{Name: "a", Period: Duration(time.Millisecond), Versions: []VersionSpec{{WCET: Duration(time.Microsecond)}}},
	}}
	if err := small.Apply(app); err != nil {
		t.Fatalf("clean Apply after failed one: %v", err)
	}
	if app.NumTasks() != 1 {
		t.Fatalf("NumTasks = %d", app.NumTasks())
	}
}

func TestApplyRejectsRunningApp(t *testing.T) {
	eng, env := simEnvFor(t)
	s := &Spec{Tasks: []TaskSpec{
		{Name: "a", Period: Duration(10 * time.Millisecond), Versions: []VersionSpec{{WCET: Duration(time.Millisecond)}}},
	}}
	app, err := s.Build(core.Config{Workers: 1}, env)
	if err != nil {
		t.Fatal(err)
	}
	env.Spawn("main", rt.UnpinnedCore, func(c rt.Ctx) {
		if err := app.Start(c); err != nil {
			t.Errorf("start: %v", err)
			return
		}
		other := &Spec{Tasks: []TaskSpec{
			{Name: "b", Period: Duration(10 * time.Millisecond), Versions: []VersionSpec{{WCET: Duration(time.Millisecond)}}},
		}}
		if err := other.Apply(app); !errors.Is(err, core.ErrStarted) {
			t.Errorf("Apply on running app = %v, want ErrStarted", err)
		}
		app.Stop(c)
		app.Cleanup(c)
	})
	if err := eng.Run(sim.Time(time.Minute)); err != nil {
		t.Fatal(err)
	}
}
