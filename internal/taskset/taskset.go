// Package taskset provides the descriptive real-time task model shared by
// the generators, the schedulability analyses and the off-line scheduler:
// sporadic/periodic tasks with implicit, constrained or arbitrary deadlines
// (Section 2 of the paper), period utilities (GCD, hyperperiod) and the
// Dirichlet-Rescale (DRS) task-set generator used by the Fig. 2 evaluation.
package taskset

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// DeadlineScheme classifies the relation between deadline and period.
type DeadlineScheme int

// Deadline schemes (Section 2).
const (
	ImplicitDeadline    DeadlineScheme = iota + 1 // D = T
	ConstrainedDeadline                           // D <= T
	ArbitraryDeadline                             // no relation
)

func (s DeadlineScheme) String() string {
	switch s {
	case ImplicitDeadline:
		return "implicit"
	case ConstrainedDeadline:
		return "constrained"
	case ArbitraryDeadline:
		return "arbitrary"
	default:
		return fmt.Sprintf("DeadlineScheme(%d)", int(s))
	}
}

// Task is a descriptive sporadic/periodic task. WCET is the worst-case
// execution time of its (single, for analysis purposes) implementation; the
// middleware's multi-version runtime model lives in internal/core.
type Task struct {
	ID       int           `json:"id"`
	Name     string        `json:"name"`
	Period   time.Duration `json:"period"`   // minimum inter-arrival time T
	Deadline time.Duration `json:"deadline"` // relative deadline D
	Offset   time.Duration `json:"offset"`   // release offset
	WCET     time.Duration `json:"wcet"`     // worst-case execution time C
	Sporadic bool          `json:"sporadic,omitempty"`

	// Accels lists, per shared accelerator pool any of the task's versions
	// may run on, the worst-case critical section the task can hold an
	// instance for. Empty for CPU-only tasks. The blocking analysis
	// (analysis.PIPBlocking) derives per-task priority-inversion bounds
	// from these; omitting a pool a version can touch makes the analysis
	// unsound, so bridges aggregate across ALL versions.
	Accels []AccelUse `json:"accels,omitempty"`
}

// AccelUse is one task's worst-case use of one shared accelerator pool.
type AccelUse struct {
	// Pool names the accelerator pool.
	Pool string `json:"pool"`
	// CS is the worst-case critical-section length on the pool (part of
	// the task's WCET).
	CS time.Duration `json:"cs"`
	// Count is the pool's instance count (0 reads as 1).
	Count int `json:"count,omitempty"`
}

// AccelOn returns the task's worst-case critical section on the named
// pool (zero when the task does not use it).
func (t *Task) AccelOn(pool string) time.Duration {
	for i := range t.Accels {
		if t.Accels[i].Pool == pool {
			return t.Accels[i].CS
		}
	}
	return 0
}

// Utilization returns C/T.
func (t *Task) Utilization() float64 {
	if t.Period <= 0 {
		return 0
	}
	return float64(t.WCET) / float64(t.Period)
}

// Density returns C/min(D,T), the demand metric for constrained deadlines.
func (t *Task) Density() float64 {
	d := t.Deadline
	if t.Period < d {
		d = t.Period
	}
	if d <= 0 {
		return 0
	}
	return float64(t.WCET) / float64(d)
}

// Validate checks the task parameters.
func (t *Task) Validate() error {
	if t.Period <= 0 {
		return fmt.Errorf("task %d (%s): non-positive period %v", t.ID, t.Name, t.Period)
	}
	if t.WCET <= 0 {
		return fmt.Errorf("task %d (%s): non-positive WCET %v", t.ID, t.Name, t.WCET)
	}
	if t.Deadline <= 0 {
		return fmt.Errorf("task %d (%s): non-positive deadline %v", t.ID, t.Name, t.Deadline)
	}
	if t.Offset < 0 {
		return fmt.Errorf("task %d (%s): negative offset %v", t.ID, t.Name, t.Offset)
	}
	return nil
}

// Scheme returns the deadline scheme of the task.
func (t *Task) Scheme() DeadlineScheme {
	switch {
	case t.Deadline == t.Period:
		return ImplicitDeadline
	case t.Deadline < t.Period:
		return ConstrainedDeadline
	default:
		return ArbitraryDeadline
	}
}

// Set is an ordered collection of tasks.
type Set struct {
	Tasks []Task `json:"tasks"`
}

// Validate checks every task and ID uniqueness.
func (s *Set) Validate() error {
	seen := make(map[int]bool, len(s.Tasks))
	for i := range s.Tasks {
		if err := s.Tasks[i].Validate(); err != nil {
			return err
		}
		if seen[s.Tasks[i].ID] {
			return fmt.Errorf("duplicate task ID %d", s.Tasks[i].ID)
		}
		seen[s.Tasks[i].ID] = true
	}
	return nil
}

// TotalUtilization returns the sum of task utilizations.
func (s *Set) TotalUtilization() float64 {
	var u float64
	for i := range s.Tasks {
		u += s.Tasks[i].Utilization()
	}
	return u
}

// Len returns the number of tasks.
func (s *Set) Len() int { return len(s.Tasks) }

// ByPeriod returns task indices sorted by ascending period (rate-monotonic
// priority order, highest priority first).
func (s *Set) ByPeriod() []int {
	idx := make([]int, len(s.Tasks))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return s.Tasks[idx[a]].Period < s.Tasks[idx[b]].Period
	})
	return idx
}

// ByDeadline returns task indices sorted by ascending relative deadline
// (deadline-monotonic priority order).
func (s *Set) ByDeadline() []int {
	idx := make([]int, len(s.Tasks))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return s.Tasks[idx[a]].Deadline < s.Tasks[idx[b]].Deadline
	})
	return idx
}

// GCD returns the greatest common divisor of two durations.
func GCD(a, b time.Duration) time.Duration {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of two durations. It saturates at
// MaxDuration on overflow.
func LCM(a, b time.Duration) time.Duration {
	if a == 0 || b == 0 {
		return 0
	}
	g := GCD(a, b)
	q := a / g
	// Overflow check: q * b must fit.
	const maxDur = time.Duration(1<<63 - 1)
	if q > maxDur/b {
		return maxDur
	}
	return q * b
}

// PeriodGCD returns the GCD of all task periods — the paper's scheduler
// thread activation period (Section 3.3). Returns 0 for an empty set.
func (s *Set) PeriodGCD() time.Duration {
	var g time.Duration
	for i := range s.Tasks {
		g = GCD(g, s.Tasks[i].Period)
	}
	return g
}

// Hyperperiod returns the LCM of all task periods, saturating on overflow.
func (s *Set) Hyperperiod() time.Duration {
	var h time.Duration = 1
	if len(s.Tasks) == 0 {
		return 0
	}
	for i := range s.Tasks {
		h = LCM(h, s.Tasks[i].Period)
	}
	return h
}

// WriteJSON serialises the set.
func (s *Set) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("taskset: encode: %w", err)
	}
	return nil
}

// ReadJSON parses a set previously written with WriteJSON.
func ReadJSON(r io.Reader) (*Set, error) {
	var s Set
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("taskset: decode: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("taskset: invalid set: %w", err)
	}
	return &s, nil
}
