package taskset

import (
	"bytes"
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestTaskUtilizationAndDensity(t *testing.T) {
	tk := Task{ID: 0, Name: "t", Period: ms(100), Deadline: ms(50), WCET: ms(25)}
	if got := tk.Utilization(); got != 0.25 {
		t.Errorf("U = %g, want 0.25", got)
	}
	if got := tk.Density(); got != 0.5 {
		t.Errorf("density = %g, want 0.5", got)
	}
}

func TestDeadlineSchemes(t *testing.T) {
	tests := []struct {
		name string
		d    time.Duration
		want DeadlineScheme
	}{
		{"implicit", ms(100), ImplicitDeadline},
		{"constrained", ms(60), ConstrainedDeadline},
		{"arbitrary", ms(150), ArbitraryDeadline},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			tk := Task{Period: ms(100), Deadline: tc.d, WCET: ms(1)}
			if got := tk.Scheme(); got != tc.want {
				t.Errorf("Scheme() = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestValidateRejectsBadTasks(t *testing.T) {
	tests := []struct {
		name string
		task Task
	}{
		{"zero period", Task{Deadline: ms(1), WCET: ms(1)}},
		{"zero wcet", Task{Period: ms(10), Deadline: ms(10)}},
		{"zero deadline", Task{Period: ms(10), WCET: ms(1)}},
		{"negative offset", Task{Period: ms(10), Deadline: ms(10), WCET: ms(1), Offset: -1}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.task.Validate(); err == nil {
				t.Error("want validation error")
			}
		})
	}
}

func TestSetValidateDuplicateIDs(t *testing.T) {
	s := Set{Tasks: []Task{
		{ID: 1, Period: ms(10), Deadline: ms(10), WCET: ms(1)},
		{ID: 1, Period: ms(20), Deadline: ms(20), WCET: ms(1)},
	}}
	if err := s.Validate(); err == nil {
		t.Error("want duplicate-ID error")
	}
}

func TestGCDLCMHyperperiod(t *testing.T) {
	if got := GCD(ms(250), ms(100)); got != ms(50) {
		t.Errorf("GCD = %v, want 50ms", got)
	}
	if got := LCM(ms(250), ms(100)); got != ms(500) {
		t.Errorf("LCM = %v, want 500ms", got)
	}
	s := Set{Tasks: []Task{
		{ID: 0, Period: ms(250), Deadline: ms(250), WCET: ms(1)},
		{ID: 1, Period: ms(100), Deadline: ms(100), WCET: ms(1)},
		{ID: 2, Period: ms(40), Deadline: ms(40), WCET: ms(1)},
	}}
	if got := s.PeriodGCD(); got != ms(10) {
		t.Errorf("PeriodGCD = %v, want 10ms", got)
	}
	// 250 = 2*5^3, 100 = 2^2*5^2, 40 = 2^3*5 => LCM = 2^3*5^3 = 1000.
	if got := s.Hyperperiod(); got != ms(1000) {
		t.Errorf("Hyperperiod = %v, want 1s", got)
	}
}

func TestLCMOverflowSaturates(t *testing.T) {
	huge := time.Duration(1<<62 - 1)
	if got := LCM(huge, huge-2); got != time.Duration(1<<63-1) {
		t.Errorf("LCM overflow = %v, want saturation", got)
	}
}

func TestPriorityOrders(t *testing.T) {
	s := Set{Tasks: []Task{
		{ID: 0, Period: ms(300), Deadline: ms(100), WCET: ms(1)},
		{ID: 1, Period: ms(100), Deadline: ms(90), WCET: ms(1)},
		{ID: 2, Period: ms(200), Deadline: ms(200), WCET: ms(1)},
	}}
	rm := s.ByPeriod()
	if rm[0] != 1 || rm[1] != 2 || rm[2] != 0 {
		t.Errorf("ByPeriod = %v, want [1 2 0]", rm)
	}
	dm := s.ByDeadline()
	if dm[0] != 1 || dm[1] != 0 || dm[2] != 2 {
		t.Errorf("ByDeadline = %v, want [1 0 2]", dm)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := &Set{Tasks: []Task{
		{ID: 0, Name: "a", Period: ms(100), Deadline: ms(100), WCET: ms(10)},
		{ID: 1, Name: "b", Period: ms(200), Deadline: ms(150), WCET: ms(20), Sporadic: true},
	}}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Tasks[1].Name != "b" || !got.Tasks[1].Sporadic {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	bad := bytes.NewBufferString(`{"tasks":[{"id":0,"period":0,"deadline":1,"wcet":1}]}`)
	if _, err := ReadJSON(bad); err == nil {
		t.Error("want error for invalid set")
	}
}
