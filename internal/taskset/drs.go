//yasmin:deterministic package

package taskset

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// DRSConfig parameterises the Dirichlet-Rescale utilisation-vector generator
// (Griffin, Bate, Davis: "Generating Utilization Vectors for the Systematic
// Evaluation of Schedulability Tests", RTSS 2020 — the paper's reference
// [20]), plus the period generator that turns utilisations into tasks.
type DRSConfig struct {
	// N is the number of tasks.
	N int
	// TotalUtilization is the target sum of utilisations.
	TotalUtilization float64
	// MaxUtilization caps each task's individual utilisation (default 1).
	MaxUtilization float64
	// MinUtilization floors each task's individual utilisation (default 0).
	MinUtilization float64
	// PeriodMin and PeriodMax bound the log-uniform period distribution
	// (defaults 10ms and 1s).
	PeriodMin, PeriodMax time.Duration
	// PeriodGranularity rounds periods down to a multiple of this value
	// (default 1ms), keeping hyperperiods bounded as in common practice.
	PeriodGranularity time.Duration
	// DeadlineFactor scales deadlines relative to periods: 1 gives implicit
	// deadlines; values in (0,1) give constrained ones. Default 1.
	DeadlineFactor float64
}

func (c *DRSConfig) withDefaults() DRSConfig {
	out := *c
	if out.MaxUtilization == 0 {
		out.MaxUtilization = 1
	}
	if out.PeriodMin == 0 {
		out.PeriodMin = 10 * time.Millisecond
	}
	if out.PeriodMax == 0 {
		out.PeriodMax = time.Second
	}
	if out.PeriodGranularity == 0 {
		out.PeriodGranularity = time.Millisecond
	}
	if out.DeadlineFactor == 0 {
		out.DeadlineFactor = 1
	}
	return out
}

// Validate checks the configuration for feasibility.
func (c *DRSConfig) Validate() error {
	cc := c.withDefaults()
	if cc.N <= 0 {
		return fmt.Errorf("drs: N must be positive, got %d", cc.N)
	}
	if cc.TotalUtilization <= 0 {
		return fmt.Errorf("drs: total utilisation must be positive, got %g", cc.TotalUtilization)
	}
	if cc.MinUtilization < 0 || cc.MinUtilization > cc.MaxUtilization {
		return fmt.Errorf("drs: bad per-task bounds [%g,%g]", cc.MinUtilization, cc.MaxUtilization)
	}
	if cc.TotalUtilization > float64(cc.N)*cc.MaxUtilization {
		return fmt.Errorf("drs: total %g infeasible with N=%d, max=%g",
			cc.TotalUtilization, cc.N, cc.MaxUtilization)
	}
	if cc.TotalUtilization < float64(cc.N)*cc.MinUtilization {
		return fmt.Errorf("drs: total %g below N*min = %g",
			cc.TotalUtilization, float64(cc.N)*cc.MinUtilization)
	}
	if cc.PeriodMin <= 0 || cc.PeriodMax < cc.PeriodMin {
		return fmt.Errorf("drs: bad period range [%v,%v]", cc.PeriodMin, cc.PeriodMax)
	}
	if cc.DeadlineFactor <= 0 || cc.DeadlineFactor > 1 {
		return fmt.Errorf("drs: deadline factor %g out of (0,1]", cc.DeadlineFactor)
	}
	return nil
}

// DRSUtilizations draws a utilisation vector of length N summing to
// TotalUtilization with every component inside
// [MinUtilization, MaxUtilization].
//
// The algorithm follows the Dirichlet-Rescale idea: draw a flat-Dirichlet
// point on the simplex (via normalised exponentials), then iteratively clamp
// components that violate their bound and re-draw the residual simplex over
// the unclamped components. The iteration count is bounded; the result is
// exact in the sum and respects the bounds.
func DRSUtilizations(rng *rand.Rand, cfg DRSConfig) ([]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := cfg.withDefaults()
	n := c.N
	lo, hi := c.MinUtilization, c.MaxUtilization

	// Work on the shifted problem: y_i = x_i - lo, sum(y) = total - n*lo,
	// y_i in [0, hi-lo].
	rem := c.TotalUtilization - float64(n)*lo
	span := hi - lo
	u := make([]float64, n)
	fixed := make([]bool, n)
	unfixed := n

	const maxRounds = 64
	for round := 0; round < maxRounds && unfixed > 0 && rem > 1e-12; round++ {
		// Flat Dirichlet over the unfixed components.
		sum := 0.0
		draws := make([]float64, 0, unfixed)
		for i := 0; i < n; i++ {
			if fixed[i] {
				continue
			}
			// Exponential(1) via inverse CDF; guard against log(0).
			v := -math.Log(1 - rng.Float64())
			if v <= 0 {
				v = 1e-12
			}
			draws = append(draws, v)
			sum += v
		}
		j := 0
		over := false
		for i := 0; i < n; i++ {
			if fixed[i] {
				continue
			}
			u[i] = rem * draws[j] / sum
			j++
			if u[i] > span {
				over = true
			}
		}
		if !over {
			// Success: all unfixed components are within bounds.
			for i := 0; i < n; i++ {
				if !fixed[i] {
					fixed[i] = true
				}
			}
			rem = 0
			break
		}
		// Clamp violators at the bound and redistribute what remains.
		for i := 0; i < n; i++ {
			if fixed[i] || u[i] <= span {
				continue
			}
			u[i] = span
			fixed[i] = true
			unfixed--
			rem -= span
		}
		if unfixed == 0 && rem > 1e-9 {
			return nil, fmt.Errorf("drs: internal: residual %g with no free components", rem)
		}
	}
	if rem > 1e-9 && unfixed > 0 {
		// Extremely unlikely; distribute evenly as a last resort.
		add := rem / float64(unfixed)
		for i := 0; i < n; i++ {
			if !fixed[i] {
				u[i] += add
			}
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = u[i] + lo
	}
	return out, nil
}

// Generate draws a full task set: DRS utilisations plus log-uniform periods,
// WCET = U_i * T_i, deadlines scaled by DeadlineFactor.
func Generate(rng *rand.Rand, cfg DRSConfig) (*Set, error) {
	us, err := DRSUtilizations(rng, cfg)
	if err != nil {
		return nil, err
	}
	c := cfg.withDefaults()
	s := &Set{Tasks: make([]Task, c.N)}
	logMin := math.Log(float64(c.PeriodMin))
	logMax := math.Log(float64(c.PeriodMax))
	for i := 0; i < c.N; i++ {
		period := time.Duration(math.Exp(logMin + rng.Float64()*(logMax-logMin)))
		if c.PeriodGranularity > 0 && period > c.PeriodGranularity {
			period -= period % c.PeriodGranularity
		}
		wcet := time.Duration(us[i] * float64(period))
		if wcet < time.Microsecond {
			wcet = time.Microsecond // keep tasks non-degenerate
		}
		deadline := time.Duration(c.DeadlineFactor * float64(period))
		s.Tasks[i] = Task{
			ID:       i,
			Name:     fmt.Sprintf("tau%d", i),
			Period:   period,
			Deadline: deadline,
			WCET:     wcet,
		}
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("drs: generated invalid set: %w", err)
	}
	return s, nil
}
