package taskset

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestDRSSumAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(120)
		total := 0.2 + rng.Float64()*1.8
		if total > float64(n) {
			total = float64(n)
		}
		us, err := DRSUtilizations(rng, DRSConfig{N: n, TotalUtilization: total})
		if err != nil {
			t.Fatalf("trial %d (n=%d U=%g): %v", trial, n, total, err)
		}
		sum := 0.0
		for _, u := range us {
			if u < -1e-12 || u > 1+1e-9 {
				t.Fatalf("trial %d: component %g out of [0,1]", trial, u)
			}
			sum += u
		}
		if math.Abs(sum-total) > 1e-6 {
			t.Fatalf("trial %d: sum %g, want %g", trial, sum, total)
		}
	}
}

func TestDRSRespectsCustomBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := DRSConfig{N: 10, TotalUtilization: 3, MinUtilization: 0.1, MaxUtilization: 0.5}
	for trial := 0; trial < 100; trial++ {
		us, err := DRSUtilizations(rng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, u := range us {
			if u < 0.1-1e-9 || u > 0.5+1e-9 {
				t.Fatalf("component %g out of [0.1,0.5]", u)
			}
			sum += u
		}
		if math.Abs(sum-3) > 1e-6 {
			t.Fatalf("sum %g, want 3", sum)
		}
	}
}

func TestDRSPropertySumPreserved(t *testing.T) {
	// Property: for any feasible (n, total), the vector sums to total and
	// stays in bounds.
	f := func(seed int64, nRaw uint8, tRaw uint16) bool {
		n := int(nRaw)%100 + 2
		total := float64(tRaw%2000)/1000 + 0.01 // (0.01, 2.01)
		if total > float64(n) {
			total = float64(n) * 0.9
		}
		rng := rand.New(rand.NewSource(seed))
		us, err := DRSUtilizations(rng, DRSConfig{N: n, TotalUtilization: total})
		if err != nil {
			return false
		}
		sum := 0.0
		for _, u := range us {
			if u < -1e-12 || u > 1+1e-9 {
				return false
			}
			sum += u
		}
		return math.Abs(sum-total) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDRSInfeasibleConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tests := []struct {
		name string
		cfg  DRSConfig
	}{
		{"zero tasks", DRSConfig{N: 0, TotalUtilization: 1}},
		{"zero total", DRSConfig{N: 5}},
		{"total exceeds caps", DRSConfig{N: 2, TotalUtilization: 3}},
		{"total below floors", DRSConfig{N: 4, TotalUtilization: 0.1, MinUtilization: 0.2}},
		{"inverted bounds", DRSConfig{N: 4, TotalUtilization: 1, MinUtilization: 0.9, MaxUtilization: 0.5}},
		{"bad deadline factor", DRSConfig{N: 4, TotalUtilization: 1, DeadlineFactor: 1.5}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DRSUtilizations(rng, tc.cfg); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestGenerateProducesValidSets(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{20, 60, 120} {
		for _, u := range []float64{0.2, 1.0, 2.0} {
			s, err := Generate(rng, DRSConfig{N: n, TotalUtilization: u})
			if err != nil {
				t.Fatalf("n=%d u=%g: %v", n, u, err)
			}
			if s.Len() != n {
				t.Fatalf("n=%d: got %d tasks", n, s.Len())
			}
			if err := s.Validate(); err != nil {
				t.Fatal(err)
			}
			got := s.TotalUtilization()
			// WCET quantisation to >=1µs and period rounding shift U slightly.
			if math.Abs(got-u) > 0.05*u+0.01 {
				t.Errorf("n=%d: total utilisation %g, want ~%g", n, got, u)
			}
			for i := range s.Tasks {
				tk := &s.Tasks[i]
				if tk.Period < 9*time.Millisecond || tk.Period > time.Second {
					t.Errorf("period %v out of expected range", tk.Period)
				}
				if tk.Deadline != tk.Period {
					t.Errorf("default deadlines must be implicit")
				}
			}
		}
	}
}

func TestGenerateConstrainedDeadlines(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s, err := Generate(rng, DRSConfig{N: 10, TotalUtilization: 1, DeadlineFactor: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Tasks {
		tk := &s.Tasks[i]
		if tk.Deadline >= tk.Period {
			t.Errorf("task %d: deadline %v not constrained vs period %v", i, tk.Deadline, tk.Period)
		}
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	gen := func() *Set {
		rng := rand.New(rand.NewSource(99))
		s, err := Generate(rng, DRSConfig{N: 30, TotalUtilization: 1.5})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := gen(), gen()
	for i := range a.Tasks {
		if !reflect.DeepEqual(a.Tasks[i], b.Tasks[i]) {
			t.Fatalf("task %d differs between identical seeds", i)
		}
	}
}
