package sar

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"time"

	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/spec"
)

// Figure 3b WCETs.
const (
	FetchWCET     = 44 * time.Microsecond
	ExtractWCET   = 168 * time.Microsecond
	AugmentWCET   = 57 * time.Microsecond
	StoreWCET     = 8 * time.Microsecond
	DetectGPUWCET = 130 * time.Millisecond
	DetectCPUWCET = 230 * time.Millisecond
	EstGPUWCET    = 108 * time.Millisecond
	EstCPUWCET    = 224 * time.Millisecond
	HlGPUWCET     = 170 * time.Millisecond
	HlCPUWCET     = 242 * time.Millisecond
	CreateWCET    = 10 * time.Microsecond
	EncPlainWCET  = 3 * time.Millisecond
	EncAESWCET    = 100 * time.Millisecond
	SendWCET      = 10 * time.Microsecond

	// FCHandlerWCET corrects the paper's "C: 170ms" label on the 100 Hz FC
	// message handler, which is infeasible as printed (utilisation 17); the
	// µs reading is consistent with the neighbouring micro-second-scale
	// labels and with the observed "misses only when the CPU is
	// overbooked" behaviour. Overridable via Params.FCWCET.
	FCHandlerWCET = 170 * time.Microsecond
)

// Default rates (Section 5: 2 fps frames, 100 Hz flight-control messages).
const (
	DefaultFramePeriod = 500 * time.Millisecond
	DefaultFCPeriod    = 10 * time.Millisecond
)

// Execution modes for the Encode task (the paper's normal/secure modes).
const (
	ModeNormal = 0
	ModeSecure = 1
)

// VersionMode selects which implementations the build declares — the
// paper's Fig. 4 exploration axis (CPU only / GPU only / both).
type VersionMode int

// Version modes.
const (
	CPUOnly VersionMode = iota + 1
	GPUOnly
	Both
)

func (m VersionMode) String() string {
	switch m {
	case CPUOnly:
		return "cpu"
	case GPUOnly:
		return "gpu"
	case Both:
		return "both"
	default:
		return fmt.Sprintf("VersionMode(%d)", int(m))
	}
}

// Params configures the application build.
type Params struct {
	Versions VersionMode
	// AccelName must match a declared platform accelerator (e.g. the
	// Apalis TK1's "kepler-gk20a").
	AccelName string
	// FramePeriod, FCPeriod, FCWCET override the defaults.
	FramePeriod time.Duration
	FCPeriod    time.Duration
	FCWCET      time.Duration
	// FrameW/FrameH/BoatProb/Seed configure the synthetic camera.
	FrameW, FrameH int
	BoatProb       float64
	Seed           int64
	// SecureOnDetect switches the app into ModeSecure while boats are in
	// frame, selecting the AES Encode version (the paper's secure mode).
	SecureOnDetect bool
	// VirtCore maps task names to virtual cores (partitioned mapping);
	// nil leaves every task on virtual core 0.
	VirtCore map[string]int
	// ChannelCap bounds each pipeline FIFO (default 8).
	ChannelCap int
}

func (p *Params) withDefaults() Params {
	out := *p
	if out.Versions == 0 {
		out.Versions = Both
	}
	if out.AccelName == "" {
		out.AccelName = "kepler-gk20a"
	}
	if out.FramePeriod == 0 {
		out.FramePeriod = DefaultFramePeriod
	}
	if out.FCPeriod == 0 {
		out.FCPeriod = DefaultFCPeriod
	}
	if out.FCWCET == 0 {
		out.FCWCET = FCHandlerWCET
	}
	if out.FrameW == 0 {
		out.FrameW = 64
	}
	if out.FrameH == 0 {
		out.FrameH = 48
	}
	if out.BoatProb == 0 {
		out.BoatProb = 0.3
	}
	if out.BoatProb < 0 { // explicit "no boats"
		out.BoatProb = 0
	}
	if out.ChannelCap == 0 {
		out.ChannelCap = 8
	}
	return out
}

// TaskNames lists the application tasks in pipeline order (the FC handler
// last).
var TaskNames = []string{
	"fetch", "extract_exif", "augment_exif", "store",
	"detect_objects", "estimate_speed", "highlight_objects",
	"create_packet", "encode", "send", "fc_msg_handler",
}

// Pipeline is the built application: task IDs, shared state, and the
// ground-station output.
type Pipeline struct {
	IDs map[string]core.TID
	GPU core.HID

	// Sent collects the packets radioed to the ground station (only frames
	// with detections are reported, per Section 5).
	Sent []*Packet
	// FramesProcessed counts completed pipeline instances.
	FramesProcessed int
	// BoatsDetected accumulates detections.
	BoatsDetected int
	// DecodeErrors counts malformed FC messages.
	DecodeErrors int

	source   *FrameSource
	mavgen   *MavGenerator
	gps      GlobalPos
	prevExif *Exif
	aesKey   []byte
	params   Params
}

type sendItem struct {
	pkt    *Packet
	wire   []byte
	secure bool
}

// Describe declares the Figure 3b application fluently and returns the
// description together with the pipeline state its version bodies share.
// Build the returned description on an environment (Builder.Build) or apply
// it to an existing App (Spec.Apply); the App must be configured with
// VersionSelect == SelectMode when SecureOnDetect is used (Encode's
// plain/AES versions are mode-gated; all other versions are mode-agnostic).
func Describe(params Params) (*spec.Builder, *Pipeline, error) {
	p := params.withDefaults()
	src, err := NewFrameSource(p.Seed, p.FrameW, p.FrameH, p.BoatProb)
	if err != nil {
		return nil, nil, err
	}
	key := sha256.Sum256([]byte("yasmin-sar-aes-key"))
	pl := &Pipeline{
		IDs:    make(map[string]core.TID, len(TaskNames)),
		GPU:    core.NoAccel,
		source: src,
		mavgen: NewMavGenerator(GlobalPos{LatE7: 527000000, LonE7: 47000000, AltMM: 120000}),
		aesKey: key[:16],
		params: p,
	}
	vc := func(name string) int {
		if p.VirtCore == nil {
			return 0
		}
		return p.VirtCore[name]
	}

	b := spec.NewApp("sar-drone")

	// Channels (fetch -> ... -> send). IDs are assigned deterministically,
	// so the version bodies below capture them before Build ever runs.
	chans := make([]core.CID, len(TaskNames)-2)
	for i := range chans {
		chans[i] = b.Channel(fmt.Sprintf("ch%d", i), p.ChannelCap)
		b.Connect(TaskNames[i], TaskNames[i+1], chans[i])
	}

	// Version bodies. GPU versions split pre/accel/post 5%/90%/5% — the
	// synchronous-accelerator limitation (Section 3.2) keeps the worker
	// busy throughout either way.
	gpuBody := func(wcet time.Duration, work func(x *core.ExecCtx) error) core.TaskFunc {
		pre := wcet / 20
		post := wcet / 20
		acc := wcet - pre - post
		return func(x *core.ExecCtx, _ any) error {
			if err := x.Compute(pre); err != nil {
				return err
			}
			if err := x.AccelSection(acc); err != nil {
				return err
			}
			if err := work(x); err != nil {
				return err
			}
			return x.Compute(post)
		}
	}
	cpuBody := func(wcet time.Duration, work func(x *core.ExecCtx) error) core.TaskFunc {
		return func(x *core.ExecCtx, _ any) error {
			if err := x.Compute(wcet); err != nil {
				return err
			}
			return work(x)
		}
	}
	// both adds the GPU and/or CPU versions of a pipeline stage to the
	// task under description, per the configured VersionMode.
	both := func(t *spec.TaskBuilder, gpuWCET, cpuWCET time.Duration, work func(x *core.ExecCtx) error) *spec.TaskBuilder {
		if p.Versions != CPUOnly {
			t = t.Version(gpuBody(gpuWCET, work), core.VSelect{WCET: gpuWCET, Quality: 2}).
				OnAccel(p.AccelName)
		}
		if p.Versions != GPUOnly {
			t = t.Version(cpuBody(cpuWCET, work), core.VSelect{WCET: cpuWCET, Quality: 1})
		}
		return t
	}

	// encode: plain (normal mode) vs AES (secure mode), mode-gated.
	encPlain := func(x *core.ExecCtx, _ any) error {
		v, err := x.Pop(chans[7])
		if err != nil {
			return err
		}
		pkt := v.(*Packet)
		if err := x.Compute(EncPlainWCET); err != nil {
			return err
		}
		return x.Push(chans[8], &sendItem{pkt: pkt, wire: pkt.Marshal()})
	}
	encAES := func(x *core.ExecCtx, _ any) error {
		v, err := x.Pop(chans[7])
		if err != nil {
			return err
		}
		pkt := v.(*Packet)
		if err := x.Compute(EncAESWCET); err != nil {
			return err
		}
		iv := make([]byte, 16)
		binary.LittleEndian.PutUint64(iv, uint64(pkt.FrameSeq))
		wire, err := EncryptAES(pl.aesKey, iv, pkt.Marshal())
		if err != nil {
			return err
		}
		pkt.Secure = true
		return x.Push(chans[8], &sendItem{pkt: pkt, wire: wire, secure: true})
	}

	// Tasks, in pipeline order. Only the graph root (fetch) and the
	// independent FC handler carry periods.
	tb := b.Task("fetch").Period(p.FramePeriod).Core(vc("fetch")).
		Version(func(x *core.ExecCtx, _ any) error {
			if err := x.Compute(FetchWCET); err != nil {
				return err
			}
			return x.Push(chans[0], pl.source.Next())
		}, core.VSelect{WCET: FetchWCET}).
		Task("extract_exif").Core(vc("extract_exif")).
		Version(func(x *core.ExecCtx, _ any) error {
			v, err := x.Pop(chans[0])
			if err != nil {
				return err
			}
			f := v.(*Frame)
			if err := x.Compute(ExtractWCET); err != nil {
				return err
			}
			f.Exif = Exif{Seq: f.Seq, Timestamp: int64(x.Now()), Camera: "elphel-353"}
			return x.Push(chans[1], f)
		}, core.VSelect{WCET: ExtractWCET}).
		Task("augment_exif").Core(vc("augment_exif")).
		// augment_exif merges the FC handler's GPS state.
		Version(func(x *core.ExecCtx, _ any) error {
			v, err := x.Pop(chans[1])
			if err != nil {
				return err
			}
			f := v.(*Frame)
			if err := x.Compute(AugmentWCET); err != nil {
				return err
			}
			f.Exif.Pos = pl.gps
			return x.Push(chans[2], f)
		}, core.VSelect{WCET: AugmentWCET}).
		Task("store").Core(vc("store")).
		Version(func(x *core.ExecCtx, _ any) error {
			v, err := x.Pop(chans[2])
			if err != nil {
				return err
			}
			if err := x.Compute(StoreWCET); err != nil {
				return err
			}
			return x.Push(chans[3], v)
		}, core.VSelect{WCET: StoreWCET})

	tb = both(tb.Task("detect_objects").Core(vc("detect_objects")),
		DetectGPUWCET, DetectCPUWCET, func(x *core.ExecCtx) error {
			v, err := x.Pop(chans[3])
			if err != nil {
				return err
			}
			f := v.(*Frame)
			d := DetectBoats(f)
			pl.BoatsDetected += d.Boats
			if pl.params.SecureOnDetect {
				if d.Boats > 0 {
					// Secure mode while boats are in frame (Section 5).
					appOf(x).SetMode(ModeSecure)
				} else {
					appOf(x).SetMode(ModeNormal)
				}
			}
			return x.Push(chans[4], d)
		})
	tb = both(tb.Task("estimate_speed").Core(vc("estimate_speed")),
		EstGPUWCET, EstCPUWCET, func(x *core.ExecCtx) error {
			v, err := x.Pop(chans[4])
			if err != nil {
				return err
			}
			d := v.(*Detection)
			d.SpeedMMS = EstimateSpeed(pl.prevExif, &d.Frame.Exif)
			cp := d.Frame.Exif
			pl.prevExif = &cp
			return x.Push(chans[5], d)
		})
	tb = both(tb.Task("highlight_objects").Core(vc("highlight_objects")),
		HlGPUWCET, HlCPUWCET, func(x *core.ExecCtx) error {
			v, err := x.Pop(chans[5])
			if err != nil {
				return err
			}
			d := v.(*Detection)
			HighlightBoats(d)
			return x.Push(chans[6], d)
		})

	tb.Task("create_packet").Core(vc("create_packet")).
		Version(func(x *core.ExecCtx, _ any) error {
			v, err := x.Pop(chans[6])
			if err != nil {
				return err
			}
			d := v.(*Detection)
			if err := x.Compute(CreateWCET); err != nil {
				return err
			}
			pkt := &Packet{
				FrameSeq: d.Frame.Seq,
				Boats:    d.Boats,
				Pos:      d.Frame.Exif.Pos,
				SpeedMMS: d.SpeedMMS,
				Image:    d.Frame.Pixels,
			}
			return x.Push(chans[7], pkt)
		}, core.VSelect{WCET: CreateWCET}).
		Task("encode").Core(vc("encode")).
		Version(encPlain, core.VSelect{WCET: EncPlainWCET, Modes: 1 << ModeNormal}).
		Version(encAES, core.VSelect{WCET: EncAESWCET, Modes: 1 << ModeSecure}).
		Task("send").Core(vc("send")).
		// send radios a report when boats were found.
		Version(func(x *core.ExecCtx, _ any) error {
			v, err := x.Pop(chans[8])
			if err != nil {
				return err
			}
			item := v.(*sendItem)
			if err := x.Compute(SendWCET); err != nil {
				return err
			}
			pl.FramesProcessed++
			if item.pkt.Boats > 0 {
				pl.Sent = append(pl.Sent, item.pkt)
			}
			return nil
		}, core.VSelect{WCET: SendWCET}).
		Task("fc_msg_handler").Period(p.FCPeriod).Core(vc("fc_msg_handler")).
		// fc_msg_handler decodes the Mavlink stream and tracks GPS.
		Version(func(x *core.ExecCtx, _ any) error {
			wire := pl.mavgen.Next()
			msg, err := DecodeMav(wire)
			if err != nil {
				pl.DecodeErrors++
				return nil // tolerate line noise, as the real handler must
			}
			if err := x.Compute(pl.params.FCWCET); err != nil {
				return err
			}
			if msg.MsgID == MsgGlobalPos {
				if pos, err := DecodeGlobalPos(msg); err == nil {
					pl.gps = pos
				}
			}
			return nil
		}, core.VSelect{WCET: p.FCWCET})

	// ID assignment is deterministic before Build, so the pipeline's ID map
	// can be resolved from a validated snapshot of the description.
	s, err := b.Spec()
	if err != nil {
		return nil, nil, err
	}
	for _, name := range TaskNames {
		pl.IDs[name] = s.TaskID(name)
	}
	pl.GPU = s.AccelID(p.AccelName)
	return b, pl, nil
}

// Build declares the Figure 3b application on the given App — the
// imperative entry point, kept for callers that configure the App
// themselves. It is Describe + Spec.Apply.
func Build(app *core.App, params Params) (*Pipeline, error) {
	b, pl, err := Describe(params)
	if err != nil {
		return nil, err
	}
	s, err := b.Spec()
	if err != nil {
		return nil, err
	}
	if err := s.Apply(app); err != nil {
		return nil, err
	}
	return pl, nil
}

// appOf extracts the App from an ExecCtx (internal helper; the builder
// closures need SetMode).
func appOf(x *core.ExecCtx) *core.App { return x.App() }
