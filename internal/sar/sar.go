package sar

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"time"

	"github.com/yasmin-rt/yasmin/internal/core"
)

// Figure 3b WCETs.
const (
	FetchWCET     = 44 * time.Microsecond
	ExtractWCET   = 168 * time.Microsecond
	AugmentWCET   = 57 * time.Microsecond
	StoreWCET     = 8 * time.Microsecond
	DetectGPUWCET = 130 * time.Millisecond
	DetectCPUWCET = 230 * time.Millisecond
	EstGPUWCET    = 108 * time.Millisecond
	EstCPUWCET    = 224 * time.Millisecond
	HlGPUWCET     = 170 * time.Millisecond
	HlCPUWCET     = 242 * time.Millisecond
	CreateWCET    = 10 * time.Microsecond
	EncPlainWCET  = 3 * time.Millisecond
	EncAESWCET    = 100 * time.Millisecond
	SendWCET      = 10 * time.Microsecond

	// FCHandlerWCET corrects the paper's "C: 170ms" label on the 100 Hz FC
	// message handler, which is infeasible as printed (utilisation 17); the
	// µs reading is consistent with the neighbouring micro-second-scale
	// labels and with the observed "misses only when the CPU is
	// overbooked" behaviour. Overridable via Params.FCWCET.
	FCHandlerWCET = 170 * time.Microsecond
)

// Default rates (Section 5: 2 fps frames, 100 Hz flight-control messages).
const (
	DefaultFramePeriod = 500 * time.Millisecond
	DefaultFCPeriod    = 10 * time.Millisecond
)

// Execution modes for the Encode task (the paper's normal/secure modes).
const (
	ModeNormal = 0
	ModeSecure = 1
)

// VersionMode selects which implementations the build declares — the
// paper's Fig. 4 exploration axis (CPU only / GPU only / both).
type VersionMode int

// Version modes.
const (
	CPUOnly VersionMode = iota + 1
	GPUOnly
	Both
)

func (m VersionMode) String() string {
	switch m {
	case CPUOnly:
		return "cpu"
	case GPUOnly:
		return "gpu"
	case Both:
		return "both"
	default:
		return fmt.Sprintf("VersionMode(%d)", int(m))
	}
}

// Params configures the application build.
type Params struct {
	Versions VersionMode
	// AccelName must match a declared platform accelerator (e.g. the
	// Apalis TK1's "kepler-gk20a").
	AccelName string
	// FramePeriod, FCPeriod, FCWCET override the defaults.
	FramePeriod time.Duration
	FCPeriod    time.Duration
	FCWCET      time.Duration
	// FrameW/FrameH/BoatProb/Seed configure the synthetic camera.
	FrameW, FrameH int
	BoatProb       float64
	Seed           int64
	// SecureOnDetect switches the app into ModeSecure while boats are in
	// frame, selecting the AES Encode version (the paper's secure mode).
	SecureOnDetect bool
	// VirtCore maps task names to virtual cores (partitioned mapping);
	// nil leaves every task on virtual core 0.
	VirtCore map[string]int
	// ChannelCap bounds each pipeline FIFO (default 8).
	ChannelCap int
}

func (p *Params) withDefaults() Params {
	out := *p
	if out.Versions == 0 {
		out.Versions = Both
	}
	if out.AccelName == "" {
		out.AccelName = "kepler-gk20a"
	}
	if out.FramePeriod == 0 {
		out.FramePeriod = DefaultFramePeriod
	}
	if out.FCPeriod == 0 {
		out.FCPeriod = DefaultFCPeriod
	}
	if out.FCWCET == 0 {
		out.FCWCET = FCHandlerWCET
	}
	if out.FrameW == 0 {
		out.FrameW = 64
	}
	if out.FrameH == 0 {
		out.FrameH = 48
	}
	if out.BoatProb == 0 {
		out.BoatProb = 0.3
	}
	if out.BoatProb < 0 { // explicit "no boats"
		out.BoatProb = 0
	}
	if out.ChannelCap == 0 {
		out.ChannelCap = 8
	}
	return out
}

// TaskNames lists the application tasks in pipeline order (the FC handler
// last).
var TaskNames = []string{
	"fetch", "extract_exif", "augment_exif", "store",
	"detect_objects", "estimate_speed", "highlight_objects",
	"create_packet", "encode", "send", "fc_msg_handler",
}

// Pipeline is the built application: task IDs, shared state, and the
// ground-station output.
type Pipeline struct {
	IDs map[string]core.TID
	GPU core.HID

	// Sent collects the packets radioed to the ground station (only frames
	// with detections are reported, per Section 5).
	Sent []*Packet
	// FramesProcessed counts completed pipeline instances.
	FramesProcessed int
	// BoatsDetected accumulates detections.
	BoatsDetected int
	// DecodeErrors counts malformed FC messages.
	DecodeErrors int

	source   *FrameSource
	mavgen   *MavGenerator
	gps      GlobalPos
	prevExif *Exif
	aesKey   []byte
	params   Params
}

type sendItem struct {
	pkt    *Packet
	wire   []byte
	secure bool
}

// Build declares the Figure 3b application on the given App. The App must
// be configured with VersionSelect == SelectMode when SecureOnDetect is
// used (Encode's plain/AES versions are mode-gated; all other versions are
// mode-agnostic).
func Build(app *core.App, params Params) (*Pipeline, error) {
	p := params.withDefaults()
	src, err := NewFrameSource(p.Seed, p.FrameW, p.FrameH, p.BoatProb)
	if err != nil {
		return nil, err
	}
	key := sha256.Sum256([]byte("yasmin-sar-aes-key"))
	pl := &Pipeline{
		IDs:    make(map[string]core.TID, len(TaskNames)),
		source: src,
		mavgen: NewMavGenerator(GlobalPos{LatE7: 527000000, LonE7: 47000000, AltMM: 120000}),
		aesKey: key[:16],
		params: p,
	}
	vc := func(name string) int {
		if p.VirtCore == nil {
			return 0
		}
		return p.VirtCore[name]
	}
	decl := func(name string, period time.Duration, deadline time.Duration) (core.TID, error) {
		tid, err := app.TaskDecl(core.TData{
			Name: name, Period: period, Deadline: deadline, VirtCore: vc(name),
		})
		if err != nil {
			return tid, fmt.Errorf("sar: declare %s: %w", name, err)
		}
		pl.IDs[name] = tid
		return tid, nil
	}

	// Tasks. Only the graph root (fetch) and the independent FC handler
	// carry periods.
	fetch, err := decl("fetch", p.FramePeriod, 0)
	if err != nil {
		return nil, err
	}
	extract, err := decl("extract_exif", 0, 0)
	if err != nil {
		return nil, err
	}
	augment, err := decl("augment_exif", 0, 0)
	if err != nil {
		return nil, err
	}
	store, err := decl("store", 0, 0)
	if err != nil {
		return nil, err
	}
	detect, err := decl("detect_objects", 0, 0)
	if err != nil {
		return nil, err
	}
	estimate, err := decl("estimate_speed", 0, 0)
	if err != nil {
		return nil, err
	}
	highlight, err := decl("highlight_objects", 0, 0)
	if err != nil {
		return nil, err
	}
	create, err := decl("create_packet", 0, 0)
	if err != nil {
		return nil, err
	}
	encode, err := decl("encode", 0, 0)
	if err != nil {
		return nil, err
	}
	send, err := decl("send", 0, 0)
	if err != nil {
		return nil, err
	}
	fc, err := decl("fc_msg_handler", p.FCPeriod, 0)
	if err != nil {
		return nil, err
	}

	// Channels (fetch -> ... -> send).
	mkCh := func(name string) (core.CID, error) {
		ch, err := app.ChannelDecl(name, p.ChannelCap)
		if err != nil {
			return ch, fmt.Errorf("sar: channel %s: %w", name, err)
		}
		return ch, nil
	}
	chain := []core.TID{fetch, extract, augment, store, detect, estimate, highlight, create, encode, send}
	chans := make([]core.CID, len(chain)-1)
	for i := 0; i < len(chain)-1; i++ {
		ch, err := mkCh(fmt.Sprintf("ch%d", i))
		if err != nil {
			return nil, err
		}
		chans[i] = ch
		if err := app.ChannelConnect(chain[i], chain[i+1], ch); err != nil {
			return nil, err
		}
	}

	// Accelerator.
	gpu := core.NoAccel
	if p.Versions != CPUOnly {
		g, err := app.HwAccelDecl(p.AccelName)
		if err != nil {
			return nil, err
		}
		gpu = g
		pl.GPU = g
	}

	// Version bodies. GPU versions split pre/accel/post 5%/90%/5% — the
	// synchronous-accelerator limitation (Section 3.2) keeps the worker
	// busy throughout either way.
	gpuBody := func(wcet time.Duration, work func(x *core.ExecCtx) error) core.TaskFunc {
		pre := wcet / 20
		post := wcet / 20
		acc := wcet - pre - post
		return func(x *core.ExecCtx, _ any) error {
			if err := x.Compute(pre); err != nil {
				return err
			}
			if err := x.AccelSection(acc); err != nil {
				return err
			}
			if err := work(x); err != nil {
				return err
			}
			return x.Compute(post)
		}
	}
	cpuBody := func(wcet time.Duration, work func(x *core.ExecCtx) error) core.TaskFunc {
		return func(x *core.ExecCtx, _ any) error {
			if err := x.Compute(wcet); err != nil {
				return err
			}
			return work(x)
		}
	}
	declareBoth := func(tid core.TID, gpuWCET, cpuWCET time.Duration, work func(x *core.ExecCtx) error) error {
		if p.Versions != CPUOnly {
			v, err := app.VersionDecl(tid, gpuBody(gpuWCET, work), nil,
				core.VSelect{WCET: gpuWCET, Quality: 2})
			if err != nil {
				return err
			}
			if err := app.HwAccelUse(tid, v, gpu); err != nil {
				return err
			}
		}
		if p.Versions != GPUOnly {
			if _, err := app.VersionDecl(tid, cpuBody(cpuWCET, work), nil,
				core.VSelect{WCET: cpuWCET, Quality: 1}); err != nil {
				return err
			}
		}
		return nil
	}

	// fetch: grab the next camera frame.
	_, err = app.VersionDecl(fetch, func(x *core.ExecCtx, _ any) error {
		if err := x.Compute(FetchWCET); err != nil {
			return err
		}
		return x.Push(chans[0], pl.source.Next())
	}, nil, core.VSelect{WCET: FetchWCET})
	if err != nil {
		return nil, err
	}
	// extract_exif.
	_, err = app.VersionDecl(extract, func(x *core.ExecCtx, _ any) error {
		v, err := x.Pop(chans[0])
		if err != nil {
			return err
		}
		f := v.(*Frame)
		if err := x.Compute(ExtractWCET); err != nil {
			return err
		}
		f.Exif = Exif{Seq: f.Seq, Timestamp: int64(x.Now()), Camera: "elphel-353"}
		return x.Push(chans[1], f)
	}, nil, core.VSelect{WCET: ExtractWCET})
	if err != nil {
		return nil, err
	}
	// augment_exif: merge the FC handler's GPS state.
	_, err = app.VersionDecl(augment, func(x *core.ExecCtx, _ any) error {
		v, err := x.Pop(chans[1])
		if err != nil {
			return err
		}
		f := v.(*Frame)
		if err := x.Compute(AugmentWCET); err != nil {
			return err
		}
		f.Exif.Pos = pl.gps
		return x.Push(chans[2], f)
	}, nil, core.VSelect{WCET: AugmentWCET})
	if err != nil {
		return nil, err
	}
	// store.
	_, err = app.VersionDecl(store, func(x *core.ExecCtx, _ any) error {
		v, err := x.Pop(chans[2])
		if err != nil {
			return err
		}
		if err := x.Compute(StoreWCET); err != nil {
			return err
		}
		return x.Push(chans[3], v)
	}, nil, core.VSelect{WCET: StoreWCET})
	if err != nil {
		return nil, err
	}
	// detect_objects (GPU/CPU).
	err = declareBoth(detect, DetectGPUWCET, DetectCPUWCET, func(x *core.ExecCtx) error {
		v, err := x.Pop(chans[3])
		if err != nil {
			return err
		}
		f := v.(*Frame)
		d := DetectBoats(f)
		pl.BoatsDetected += d.Boats
		if pl.params.SecureOnDetect {
			if d.Boats > 0 {
				// Secure mode while boats are in frame (Section 5).
				appOf(x).SetMode(ModeSecure)
			} else {
				appOf(x).SetMode(ModeNormal)
			}
		}
		return x.Push(chans[4], d)
	})
	if err != nil {
		return nil, err
	}
	// estimate_speed (GPU/CPU).
	err = declareBoth(estimate, EstGPUWCET, EstCPUWCET, func(x *core.ExecCtx) error {
		v, err := x.Pop(chans[4])
		if err != nil {
			return err
		}
		d := v.(*Detection)
		d.SpeedMMS = EstimateSpeed(pl.prevExif, &d.Frame.Exif)
		cp := d.Frame.Exif
		pl.prevExif = &cp
		return x.Push(chans[5], d)
	})
	if err != nil {
		return nil, err
	}
	// highlight_objects (GPU/CPU).
	err = declareBoth(highlight, HlGPUWCET, HlCPUWCET, func(x *core.ExecCtx) error {
		v, err := x.Pop(chans[5])
		if err != nil {
			return err
		}
		d := v.(*Detection)
		HighlightBoats(d)
		return x.Push(chans[6], d)
	})
	if err != nil {
		return nil, err
	}
	// create_packet.
	_, err = app.VersionDecl(create, func(x *core.ExecCtx, _ any) error {
		v, err := x.Pop(chans[6])
		if err != nil {
			return err
		}
		d := v.(*Detection)
		if err := x.Compute(CreateWCET); err != nil {
			return err
		}
		pkt := &Packet{
			FrameSeq: d.Frame.Seq,
			Boats:    d.Boats,
			Pos:      d.Frame.Exif.Pos,
			SpeedMMS: d.SpeedMMS,
			Image:    d.Frame.Pixels,
		}
		return x.Push(chans[7], pkt)
	}, nil, core.VSelect{WCET: CreateWCET})
	if err != nil {
		return nil, err
	}
	// encode: plain (normal mode) vs AES (secure mode), mode-gated.
	encPlain := func(x *core.ExecCtx, _ any) error {
		v, err := x.Pop(chans[7])
		if err != nil {
			return err
		}
		pkt := v.(*Packet)
		if err := x.Compute(EncPlainWCET); err != nil {
			return err
		}
		return x.Push(chans[8], &sendItem{pkt: pkt, wire: pkt.Marshal()})
	}
	encAES := func(x *core.ExecCtx, _ any) error {
		v, err := x.Pop(chans[7])
		if err != nil {
			return err
		}
		pkt := v.(*Packet)
		if err := x.Compute(EncAESWCET); err != nil {
			return err
		}
		iv := make([]byte, 16)
		binary.LittleEndian.PutUint64(iv, uint64(pkt.FrameSeq))
		wire, err := EncryptAES(pl.aesKey, iv, pkt.Marshal())
		if err != nil {
			return err
		}
		pkt.Secure = true
		return x.Push(chans[8], &sendItem{pkt: pkt, wire: wire, secure: true})
	}
	if _, err := app.VersionDecl(encode, encPlain, nil,
		core.VSelect{WCET: EncPlainWCET, Modes: 1 << ModeNormal}); err != nil {
		return nil, err
	}
	if _, err := app.VersionDecl(encode, encAES, nil,
		core.VSelect{WCET: EncAESWCET, Modes: 1 << ModeSecure}); err != nil {
		return nil, err
	}
	// send: radio a report when boats were found.
	_, err = app.VersionDecl(send, func(x *core.ExecCtx, _ any) error {
		v, err := x.Pop(chans[8])
		if err != nil {
			return err
		}
		item := v.(*sendItem)
		if err := x.Compute(SendWCET); err != nil {
			return err
		}
		pl.FramesProcessed++
		if item.pkt.Boats > 0 {
			pl.Sent = append(pl.Sent, item.pkt)
		}
		return nil
	}, nil, core.VSelect{WCET: SendWCET})
	if err != nil {
		return nil, err
	}
	// fc_msg_handler: decode the Mavlink stream, track GPS.
	_, err = app.VersionDecl(fc, func(x *core.ExecCtx, _ any) error {
		wire := pl.mavgen.Next()
		msg, err := DecodeMav(wire)
		if err != nil {
			pl.DecodeErrors++
			return nil // tolerate line noise, as the real handler must
		}
		if err := x.Compute(pl.params.FCWCET); err != nil {
			return err
		}
		if msg.MsgID == MsgGlobalPos {
			if pos, err := DecodeGlobalPos(msg); err == nil {
				pl.gps = pos
			}
		}
		return nil
	}, nil, core.VSelect{WCET: p.FCWCET})
	if err != nil {
		return nil, err
	}
	return pl, nil
}

// appOf extracts the App from an ExecCtx (internal helper; the builder
// closures need SetMode).
func appOf(x *core.ExecCtx) *core.App { return x.App() }
