//yasmin:deterministic package

package sar

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"
	"math/rand"
)

// Frame is one camera image with its metadata. Pixels are a synthetic
// grayscale sea surface with optional planted boat signatures.
type Frame struct {
	Seq    int
	W, H   int
	Pixels []byte
	// Boats is the ground-truth number of planted boats.
	Boats int
	// EXIF-ish metadata filled by the pipeline stages.
	Exif Exif
}

// Exif carries the metadata the pipeline extracts and augments.
type Exif struct {
	Seq       int
	Timestamp int64 // virtual ns at capture
	Pos       GlobalPos
	Camera    string
}

// boatPattern is the 4x4 high-intensity signature planted for each boat.
var boatPattern = [4][4]byte{
	{250, 251, 252, 250},
	{251, 255, 255, 252},
	{252, 255, 255, 251},
	{250, 252, 251, 250},
}

// detectThreshold is the pixel intensity that counts as "bright" during
// detection; sea texture stays well below it.
const detectThreshold = 240

// FrameSource generates deterministic frames: mostly empty sea, sometimes
// with boats (per BoatProb).
type FrameSource struct {
	rng      *rand.Rand
	w, h     int
	boatProb float64
	seq      int
}

// NewFrameSource creates a source of w x h frames; boatProb is the
// probability that a frame contains one or more boats.
func NewFrameSource(seed int64, w, h int, boatProb float64) (*FrameSource, error) {
	if w < 8 || h < 8 {
		return nil, fmt.Errorf("sar: frame size %dx%d too small", w, h)
	}
	if boatProb < 0 || boatProb > 1 {
		return nil, fmt.Errorf("sar: boat probability %g out of [0,1]", boatProb)
	}
	return &FrameSource{rng: rand.New(rand.NewSource(seed)), w: w, h: h, boatProb: boatProb}, nil
}

// Next produces the next frame.
func (s *FrameSource) Next() *Frame {
	s.seq++
	f := &Frame{Seq: s.seq, W: s.w, H: s.h, Pixels: make([]byte, s.w*s.h)}
	// Sea texture: dim noise.
	for i := range f.Pixels {
		f.Pixels[i] = byte(40 + s.rng.Intn(80))
	}
	if s.rng.Float64() < s.boatProb {
		f.Boats = 1 + s.rng.Intn(3)
		for b := 0; b < f.Boats; b++ {
			x := 2 + s.rng.Intn(s.w-8)
			y := 2 + s.rng.Intn(s.h-8)
			for dy := 0; dy < 4; dy++ {
				for dx := 0; dx < 4; dx++ {
					f.Pixels[(y+dy)*s.w+(x+dx)] = boatPattern[dy][dx]
				}
			}
		}
	}
	return f
}

// Detection is the object-detection result.
type Detection struct {
	Frame *Frame
	Boats int
	// Marks are the top-left corners of detected boats.
	Marks [][2]int
	// SpeedMMS is the estimated relative speed in mm/s (from EXIF deltas).
	SpeedMMS int
}

// DetectBoats scans the frame for the boat signature: a 4x4 block of pixels
// all above the detection threshold, greedily consumed left-to-right. It is
// the functional core of the "Detect objects" task (CPU and CUDA versions
// share it — they differ in WCET only).
func DetectBoats(f *Frame) *Detection {
	d := &Detection{Frame: f}
	taken := make([]bool, f.W*f.H)
	for y := 0; y+4 <= f.H; y++ {
		for x := 0; x+4 <= f.W; x++ {
			if taken[y*f.W+x] {
				continue
			}
			hit := true
		scan:
			for dy := 0; dy < 4; dy++ {
				for dx := 0; dx < 4; dx++ {
					p := (y+dy)*f.W + (x + dx)
					if taken[p] || f.Pixels[p] < detectThreshold {
						hit = false
						break scan
					}
				}
			}
			if hit {
				d.Boats++
				d.Marks = append(d.Marks, [2]int{x, y})
				for dy := 0; dy < 4; dy++ {
					for dx := 0; dx < 4; dx++ {
						taken[(y+dy)*f.W+(x+dx)] = true
					}
				}
			}
		}
	}
	return d
}

// EstimateSpeed derives a relative speed from consecutive EXIF positions;
// with a single frame it falls back to a nominal cruise speed.
func EstimateSpeed(prev, cur *Exif) int {
	if prev == nil || cur.Timestamp == prev.Timestamp {
		return 18000 // 18 m/s nominal cruise
	}
	dLat := int64(cur.Pos.LatE7 - prev.Pos.LatE7)
	dt := cur.Timestamp - prev.Timestamp
	if dt <= 0 {
		return 18000
	}
	// 1e-7 deg ~ 11.1 mm at the equator; speed in mm/s.
	mm := dLat * 111 / 10
	return int(mm * 1e9 / dt)
}

// HighlightBoats draws a bright box around each detection, in place — the
// "Highlight objects" task.
func HighlightBoats(d *Detection) {
	f := d.Frame
	for _, m := range d.Marks {
		x0, y0 := m[0]-1, m[1]-1
		x1, y1 := m[0]+4, m[1]+4
		for x := x0; x <= x1; x++ {
			setPx(f, x, y0, 255)
			setPx(f, x, y1, 255)
		}
		for y := y0; y <= y1; y++ {
			setPx(f, x0, y, 255)
			setPx(f, x1, y, 255)
		}
	}
}

func setPx(f *Frame, x, y int, v byte) {
	if x < 0 || y < 0 || x >= f.W || y >= f.H {
		return
	}
	f.Pixels[y*f.W+x] = v
}

// Packet is the ground-station report produced by "Create packet".
type Packet struct {
	FrameSeq int
	Boats    int
	Pos      GlobalPos
	SpeedMMS int
	Image    []byte // the (highlighted) frame
	Secure   bool   // AES-encrypted payload
}

// Marshal serialises the packet (header + image bytes).
func (p *Packet) Marshal() []byte {
	buf := make([]byte, 0, 24+len(p.Image))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.FrameSeq))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.Boats))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.Pos.LatE7))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.Pos.LonE7))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.Pos.AltMM))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.SpeedMMS))
	return append(buf, p.Image...)
}

// UnmarshalPacket parses a marshalled packet (plaintext form).
func UnmarshalPacket(b []byte) (*Packet, error) {
	if len(b) < 24 {
		return nil, fmt.Errorf("sar: packet too short (%d)", len(b))
	}
	p := &Packet{
		FrameSeq: int(binary.LittleEndian.Uint32(b[0:])),
		Boats:    int(binary.LittleEndian.Uint32(b[4:])),
		Pos: GlobalPos{
			LatE7: int32(binary.LittleEndian.Uint32(b[8:])),
			LonE7: int32(binary.LittleEndian.Uint32(b[12:])),
			AltMM: int32(binary.LittleEndian.Uint32(b[16:])),
		},
		SpeedMMS: int(binary.LittleEndian.Uint32(b[20:])),
	}
	p.Image = append(p.Image, b[24:]...)
	return p, nil
}

// EncryptAES encrypts data with AES-128-CTR — the real cryptographic work
// behind the "Encode" task's AES version (its WCET in Fig. 3b covers a full
// frame). The 16-byte IV is prepended.
func EncryptAES(key, iv, data []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("sar: %w", err)
	}
	if len(iv) != aes.BlockSize {
		return nil, fmt.Errorf("sar: IV must be %d bytes", aes.BlockSize)
	}
	out := make([]byte, len(iv)+len(data))
	copy(out, iv)
	cipher.NewCTR(block, iv).XORKeyStream(out[len(iv):], data)
	return out, nil
}

// DecryptAES reverses EncryptAES.
func DecryptAES(key, payload []byte) ([]byte, error) {
	if len(payload) < aes.BlockSize {
		return nil, fmt.Errorf("sar: ciphertext too short")
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("sar: %w", err)
	}
	out := make([]byte, len(payload)-aes.BlockSize)
	cipher.NewCTR(block, payload[:aes.BlockSize]).XORKeyStream(out, payload[aes.BlockSize:])
	return out, nil
}
