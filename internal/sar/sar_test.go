package sar

import (
	"bytes"
	"testing"
	"time"

	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/platform"
	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/sim"
)

func TestMavRoundTrip(t *testing.T) {
	msg := &MavMsg{Seq: 7, SysID: 1, CompID: 2, MsgID: MsgGlobalPos, Payload: []byte{1, 2, 3}}
	wire, err := EncodeMav(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMav(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 7 || got.MsgID != MsgGlobalPos || !bytes.Equal(got.Payload, msg.Payload) {
		t.Errorf("round trip = %+v", got)
	}
}

func TestMavDecodeErrors(t *testing.T) {
	good, _ := EncodeGlobalPos(1, GlobalPos{LatE7: 1, LonE7: 2, AltMM: 3})
	cases := map[string][]byte{
		"short":        {0xFE, 0},
		"bad magic":    append([]byte{0x55}, good[1:]...),
		"bad length":   append(append([]byte{}, good...), 0xFF),
		"bad checksum": flipLastBit(good),
	}
	for name, frame := range cases {
		if _, err := DecodeMav(frame); err == nil {
			t.Errorf("%s: want decode error", name)
		}
	}
}

func flipLastBit(b []byte) []byte {
	out := append([]byte{}, b...)
	out[len(out)-1] ^= 1
	return out
}

func TestGlobalPosRoundTrip(t *testing.T) {
	pos := GlobalPos{LatE7: 527000123, LonE7: -47000456, AltMM: 98000}
	wire, err := EncodeGlobalPos(3, pos)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := DecodeMav(wire)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeGlobalPos(msg)
	if err != nil {
		t.Fatal(err)
	}
	if got != pos {
		t.Errorf("got %+v, want %+v", got, pos)
	}
	// Wrong message type.
	hb, _ := EncodeMav(&MavMsg{MsgID: MsgHeartbeat})
	m2, _ := DecodeMav(hb)
	if _, err := DecodeGlobalPos(m2); err == nil {
		t.Error("want type error for heartbeat")
	}
}

func TestMavGeneratorStream(t *testing.T) {
	g := NewMavGenerator(GlobalPos{LatE7: 100})
	heartbeats, positions := 0, 0
	var lastLat int32 = 100
	for i := 0; i < 100; i++ {
		msg, err := DecodeMav(g.Next())
		if err != nil {
			t.Fatal(err)
		}
		switch msg.MsgID {
		case MsgHeartbeat:
			heartbeats++
		case MsgGlobalPos:
			positions++
			pos, err := DecodeGlobalPos(msg)
			if err != nil {
				t.Fatal(err)
			}
			if pos.LatE7 <= lastLat {
				t.Error("latitude not advancing")
			}
			lastLat = pos.LatE7
		}
	}
	if heartbeats != 10 || positions != 90 {
		t.Errorf("heartbeats=%d positions=%d, want 10/90", heartbeats, positions)
	}
}

func TestFrameSourceAndDetection(t *testing.T) {
	src, err := NewFrameSource(1, 64, 48, 1.0) // boats in every frame
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		f := src.Next()
		d := DetectBoats(f)
		if d.Boats < f.Boats {
			t.Errorf("frame %d: detected %d of %d boats", f.Seq, d.Boats, f.Boats)
		}
		// Overlapping plants can merge, but detection never exceeds plants
		// by more than the merge slack; require at least one mark per boat
		// found.
		if len(d.Marks) != d.Boats {
			t.Errorf("marks %d != boats %d", len(d.Marks), d.Boats)
		}
	}
}

func TestNoBoatsNoDetections(t *testing.T) {
	src, err := NewFrameSource(2, 64, 48, 0) // no boats ever
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		f := src.Next()
		if f.Boats != 0 {
			t.Fatal("source planted boats at zero probability")
		}
		if d := DetectBoats(f); d.Boats != 0 {
			t.Errorf("false positive: %d boats in empty sea", d.Boats)
		}
	}
}

func TestFrameSourceValidation(t *testing.T) {
	if _, err := NewFrameSource(1, 4, 48, 0.5); err == nil {
		t.Error("want error for tiny frame")
	}
	if _, err := NewFrameSource(1, 64, 48, 1.5); err == nil {
		t.Error("want error for probability > 1")
	}
}

func TestHighlightDrawsBoxes(t *testing.T) {
	src, _ := NewFrameSource(3, 64, 48, 1.0)
	f := src.Next()
	d := DetectBoats(f)
	if d.Boats == 0 {
		t.Skip("no boats this seed")
	}
	HighlightBoats(d)
	m := d.Marks[0]
	// Border above the boat must now be bright.
	if y := m[1] - 1; y >= 0 {
		if f.Pixels[y*f.W+m[0]] != 255 {
			t.Error("highlight box not drawn")
		}
	}
}

func TestEstimateSpeed(t *testing.T) {
	cur := &Exif{Timestamp: int64(time.Second), Pos: GlobalPos{LatE7: 1000}}
	if got := EstimateSpeed(nil, cur); got != 18000 {
		t.Errorf("no-prev speed = %d, want nominal 18000", got)
	}
	prev := &Exif{Timestamp: 0, Pos: GlobalPos{LatE7: 0}}
	got := EstimateSpeed(prev, cur)
	// 1000 * 11.1mm = 11100mm over 1s.
	if got < 11000 || got > 11200 {
		t.Errorf("speed = %d mm/s, want ~11100", got)
	}
}

func TestPacketAndAESRoundTrip(t *testing.T) {
	pkt := &Packet{FrameSeq: 9, Boats: 2, Pos: GlobalPos{LatE7: 5, LonE7: 6, AltMM: 7}, SpeedMMS: 18000, Image: []byte{1, 2, 3, 4}}
	plain := pkt.Marshal()
	back, err := UnmarshalPacket(plain)
	if err != nil {
		t.Fatal(err)
	}
	if back.FrameSeq != 9 || back.Boats != 2 || !bytes.Equal(back.Image, pkt.Image) {
		t.Errorf("round trip = %+v", back)
	}
	key := bytes.Repeat([]byte{7}, 16)
	iv := bytes.Repeat([]byte{9}, 16)
	ct, err := EncryptAES(key, iv, plain)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(ct, pkt.Image) {
		t.Error("ciphertext leaks plaintext")
	}
	pt, err := DecryptAES(key, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, plain) {
		t.Error("AES round trip failed")
	}
	if _, err := EncryptAES(key[:5], iv, plain); err == nil {
		t.Error("want error for short key")
	}
	if _, err := DecryptAES(key, []byte{1, 2}); err == nil {
		t.Error("want error for short ciphertext")
	}
	if _, err := UnmarshalPacket([]byte{1}); err == nil {
		t.Error("want error for short packet")
	}
}

// buildAndRun wires the SAR app onto a simulated TK1 and runs one mission.
func buildAndRun(t *testing.T, params Params, mission time.Duration, workers int) (*Pipeline, *core.App) {
	t.Helper()
	eng := sim.NewEngine(11)
	env, err := rt.NewSimEnv(eng, platform.ApalisTK1(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Workers:        workers,
		Mapping:        core.MappingGlobal,
		Priority:       core.PriorityEDF,
		VersionSelect:  core.SelectMode,
		Preemption:     true,
		MaxTasks:       16,
		MaxPendingJobs: 128,
	}
	app, err := core.New(cfg, env)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Build(app, params)
	if err != nil {
		t.Fatal(err)
	}
	env.Spawn("main", rt.UnpinnedCore, func(c rt.Ctx) {
		if err := app.Start(c); err != nil {
			t.Errorf("Start: %v", err)
			return
		}
		c.SleepUntil(mission)
		app.Stop(c)
		app.Cleanup(c)
	})
	if err := eng.Run(sim.Time(mission + 30*time.Second)); err != nil {
		t.Fatal(err)
	}
	return pl, app
}

func TestSARMissionGPUFasterThanCPU(t *testing.T) {
	mission := 10 * time.Second
	gpuPl, gpuApp := buildAndRun(t, Params{Versions: GPUOnly, Seed: 5}, mission, 3)
	cpuPl, cpuApp := buildAndRun(t, Params{Versions: CPUOnly, Seed: 5}, mission, 3)
	if gpuPl.FramesProcessed == 0 || cpuPl.FramesProcessed == 0 {
		t.Fatalf("frames: gpu=%d cpu=%d", gpuPl.FramesProcessed, cpuPl.FramesProcessed)
	}
	g := gpuApp.Recorder().Task("graph:send")
	c := cpuApp.Recorder().Task("graph:send")
	if g == nil || c == nil {
		t.Fatal("missing end-to-end records")
	}
	_, _, gAvg := g.Response.Summary()
	_, _, cAvg := c.Response.Summary()
	if gAvg >= cAvg {
		t.Errorf("GPU frame time %v not below CPU %v", gAvg, cAvg)
	}
	// CPU-only chain (~700ms) must overrun the 500ms frame deadline.
	if c.Misses == 0 {
		t.Error("CPU-only must miss frame deadlines (chain > period)")
	}
}

func TestSARDetectionsAreReported(t *testing.T) {
	pl, app := buildAndRun(t, Params{Versions: GPUOnly, Seed: 7, BoatProb: 1.0}, 8*time.Second, 3)
	if len(pl.Sent) == 0 {
		t.Fatal("boats in every frame but nothing was sent to the ground station")
	}
	for _, pkt := range pl.Sent {
		if pkt.Boats == 0 {
			t.Error("sent packet without boats")
		}
		if pkt.Pos.LatE7 == 0 {
			t.Error("packet lacks GPS augmentation from the FC handler")
		}
	}
	if pl.DecodeErrors != 0 {
		t.Errorf("decode errors: %d", pl.DecodeErrors)
	}
	if app.FirstError() != nil {
		t.Errorf("task error: %v", app.FirstError())
	}
}

func TestSARSecureModeSwitchesToAES(t *testing.T) {
	pl, _ := buildAndRun(t, Params{
		Versions: GPUOnly, Seed: 9, BoatProb: 1.0, SecureOnDetect: true,
	}, 8*time.Second, 3)
	if len(pl.Sent) == 0 {
		t.Fatal("nothing sent")
	}
	secure := 0
	for _, pkt := range pl.Sent {
		if pkt.Secure {
			secure++
		}
	}
	if secure == 0 {
		t.Error("no AES-encoded packets despite constant detections in secure mode")
	}
}

func TestSARFCHandlerKeepsUp(t *testing.T) {
	// With "both" versions the FC handler should meet (nearly all of) its
	// 10ms deadlines — the Fig. 4 headline.
	_, app := buildAndRun(t, Params{Versions: Both, Seed: 3}, 10*time.Second, 3)
	fc := app.Recorder().Task("fc_msg_handler")
	if fc == nil || fc.Jobs < 900 {
		t.Fatalf("fc stats = %+v", fc)
	}
	ratio := float64(fc.Misses) / float64(fc.Jobs)
	if ratio > 0.02 {
		t.Errorf("fc miss ratio %.3f with both versions, want ~0", ratio)
	}
}
