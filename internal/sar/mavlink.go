// Package sar implements the paper's Section 5 industrial use case: the
// Search & Rescue payload application of a fixed-wing UAV that detects life
// boats at sea. It provides a Mavlink-style message codec (the Flight
// Control link), a synthetic frame source (the Elphel camera), the image
// pipeline tasks of Figure 3b with their CPU/GPU/plain/AES versions and
// WCETs, and a builder that declares the whole application on a YASMIN App.
package sar

import (
	"encoding/binary"
	"fmt"
)

// Mavlink-style message IDs used by the payload application.
const (
	MsgHeartbeat     = 0
	MsgSystemTime    = 2
	MsgGlobalPos     = 33
	MsgTogglePayload = 76 // command: enable/disable SAR processing
)

// MavMsg is a decoded flight-control message.
type MavMsg struct {
	Seq     uint8
	SysID   uint8
	CompID  uint8
	MsgID   uint8
	Payload []byte
}

// GlobalPos is the payload of MsgGlobalPos.
type GlobalPos struct {
	LatE7 int32 // degrees * 1e7
	LonE7 int32
	AltMM int32 // millimetres above sea level
}

// mavMagic is the v1 frame start marker.
const mavMagic = 0xFE

// crcX25 computes the X.25 / CRC-16-CCITT checksum Mavlink uses.
func crcX25(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		tmp := b ^ byte(crc&0xFF)
		tmp ^= tmp << 4
		crc = (crc >> 8) ^ (uint16(tmp) << 8) ^ (uint16(tmp) << 3) ^ (uint16(tmp) >> 4)
	}
	return crc
}

// EncodeMav serialises a message into a Mavlink-v1-style frame:
// magic, len, seq, sysid, compid, msgid, payload, crc16.
func EncodeMav(m *MavMsg) ([]byte, error) {
	if len(m.Payload) > 255 {
		return nil, fmt.Errorf("sar: payload %d exceeds 255 bytes", len(m.Payload))
	}
	buf := make([]byte, 0, 8+len(m.Payload))
	buf = append(buf, mavMagic, byte(len(m.Payload)), m.Seq, m.SysID, m.CompID, m.MsgID)
	buf = append(buf, m.Payload...)
	crc := crcX25(buf[1:]) // magic excluded, like the real protocol
	buf = binary.LittleEndian.AppendUint16(buf, crc)
	return buf, nil
}

// DecodeMav parses one frame, verifying the marker and checksum.
func DecodeMav(frame []byte) (*MavMsg, error) {
	if len(frame) < 8 {
		return nil, fmt.Errorf("sar: frame too short (%d)", len(frame))
	}
	if frame[0] != mavMagic {
		return nil, fmt.Errorf("sar: bad start marker 0x%02x", frame[0])
	}
	plen := int(frame[1])
	if len(frame) != 8+plen {
		return nil, fmt.Errorf("sar: length mismatch: header says %d, frame has %d", plen, len(frame)-8)
	}
	want := binary.LittleEndian.Uint16(frame[len(frame)-2:])
	if got := crcX25(frame[1 : len(frame)-2]); got != want {
		return nil, fmt.Errorf("sar: checksum mismatch: %04x != %04x", got, want)
	}
	m := &MavMsg{
		Seq:    frame[2],
		SysID:  frame[3],
		CompID: frame[4],
		MsgID:  frame[5],
	}
	m.Payload = append(m.Payload, frame[6:6+plen]...)
	return m, nil
}

// EncodeGlobalPos builds a MsgGlobalPos message.
func EncodeGlobalPos(seq uint8, pos GlobalPos) ([]byte, error) {
	payload := make([]byte, 12)
	binary.LittleEndian.PutUint32(payload[0:], uint32(pos.LatE7))
	binary.LittleEndian.PutUint32(payload[4:], uint32(pos.LonE7))
	binary.LittleEndian.PutUint32(payload[8:], uint32(pos.AltMM))
	return EncodeMav(&MavMsg{Seq: seq, SysID: 1, CompID: 1, MsgID: MsgGlobalPos, Payload: payload})
}

// DecodeGlobalPos parses a MsgGlobalPos payload.
func DecodeGlobalPos(m *MavMsg) (GlobalPos, error) {
	if m.MsgID != MsgGlobalPos {
		return GlobalPos{}, fmt.Errorf("sar: message %d is not GLOBAL_POSITION", m.MsgID)
	}
	if len(m.Payload) != 12 {
		return GlobalPos{}, fmt.Errorf("sar: GLOBAL_POSITION payload has %d bytes, want 12", len(m.Payload))
	}
	return GlobalPos{
		LatE7: int32(binary.LittleEndian.Uint32(m.Payload[0:])),
		LonE7: int32(binary.LittleEndian.Uint32(m.Payload[4:])),
		AltMM: int32(binary.LittleEndian.Uint32(m.Payload[8:])),
	}, nil
}

// MavGenerator produces a deterministic flight-control message stream: a
// GLOBAL_POSITION update per tick with slowly advancing coordinates,
// heartbeats interleaved, and optional payload toggles.
type MavGenerator struct {
	seq uint8
	pos GlobalPos
	n   int
}

// NewMavGenerator starts a stream at the given position.
func NewMavGenerator(start GlobalPos) *MavGenerator {
	return &MavGenerator{pos: start}
}

// Next returns the next wire-format message. Every 10th message is a
// heartbeat; the rest are position updates (the drone advances northward at
// a fixed-wing-ish pace per 10ms tick).
func (g *MavGenerator) Next() []byte {
	g.n++
	g.seq++
	if g.n%10 == 0 {
		frame, _ := EncodeMav(&MavMsg{Seq: g.seq, SysID: 1, CompID: 1, MsgID: MsgHeartbeat})
		return frame
	}
	g.pos.LatE7 += 25 // ~2.8mm/tick * 1e7 scale: slow northbound drift
	g.pos.LonE7 += 3
	frame, _ := EncodeGlobalPos(g.seq, g.pos)
	return frame
}
