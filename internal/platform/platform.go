// Package platform models COTS heterogeneous hardware: CPU cores grouped in
// clusters (ARM big.LITTLE), hardware accelerators (GPU, crypto engines), and
// the per-primitive cost model that the simulation charges for middleware
// operations (context switches, queue manipulation, lock traffic, timer
// programming).
//
// Two presets mirror the paper's evaluation platforms: the Odroid-XU4
// (4 Cortex-A7 + 4 Cortex-A15 + Mali GPU, Section 4) and the Toradex Apalis
// TK1 (4 Cortex-A15 + NVIDIA Kepler GPU, Section 5).
package platform

import (
	"fmt"
	"time"
)

// CoreKind distinguishes energy-efficient from performance cores.
type CoreKind int

// Core kinds.
const (
	LittleCore CoreKind = iota + 1
	BigCore
)

func (k CoreKind) String() string {
	switch k {
	case LittleCore:
		return "LITTLE"
	case BigCore:
		return "big"
	default:
		return fmt.Sprintf("CoreKind(%d)", int(k))
	}
}

// Core describes one CPU core.
type Core struct {
	ID      int
	Kind    CoreKind
	Cluster int
	// Speed is the relative execution speed; task WCETs are divided by it.
	// The reference speed 1.0 is a big core of the preset platform.
	Speed float64
	// PowerActive and PowerIdle approximate the core's power draw in
	// milliwatts, used by the energy model.
	PowerActive float64
	PowerIdle   float64
}

// Scale converts a nominal duration into the core-local duration.
func (c *Core) Scale(d time.Duration) time.Duration {
	if c.Speed == 1.0 || c.Speed <= 0 {
		return d
	}
	return time.Duration(float64(d) / c.Speed)
}

// Accel describes a hardware accelerator (GPU, crypto engine, FPGA region).
// Accelerators are scarce: exactly one task version can hold one at a time,
// which is the contention that motivates multi-version tasks (Section 3.2).
type Accel struct {
	ID   int
	Name string
	// Speed is the relative speed factor applied to accelerator sections.
	Speed float64
	// PowerActive approximates the accelerator's active power draw in mW.
	PowerActive float64
}

// Platform is a description of a target board.
type Platform struct {
	Name   string
	Cores  []Core
	Accels []Accel
	Costs  CostModel
}

// NumCores returns the number of CPU cores.
func (pl *Platform) NumCores() int { return len(pl.Cores) }

// CoresOfKind returns the IDs of all cores of kind k, in ID order.
func (pl *Platform) CoresOfKind(k CoreKind) []int {
	var ids []int
	for i := range pl.Cores {
		if pl.Cores[i].Kind == k {
			ids = append(ids, pl.Cores[i].ID)
		}
	}
	return ids
}

// Core returns the core with the given ID.
func (pl *Platform) Core(id int) (*Core, error) {
	if id < 0 || id >= len(pl.Cores) {
		return nil, fmt.Errorf("platform %s: no core %d", pl.Name, id)
	}
	return &pl.Cores[id], nil
}

// AccelByName returns the accelerator with the given name.
func (pl *Platform) AccelByName(name string) (*Accel, error) {
	for i := range pl.Accels {
		if pl.Accels[i].Name == name {
			return &pl.Accels[i], nil
		}
	}
	return nil, fmt.Errorf("platform %s: no accelerator %q", pl.Name, name)
}

// Validate checks internal consistency of the description.
func (pl *Platform) Validate() error {
	if pl.Name == "" {
		return fmt.Errorf("platform: empty name")
	}
	if len(pl.Cores) == 0 {
		return fmt.Errorf("platform %s: no cores", pl.Name)
	}
	for i := range pl.Cores {
		c := &pl.Cores[i]
		if c.ID != i {
			return fmt.Errorf("platform %s: core %d has ID %d (must equal index)", pl.Name, i, c.ID)
		}
		if c.Speed <= 0 {
			return fmt.Errorf("platform %s: core %d has non-positive speed", pl.Name, i)
		}
	}
	for i := range pl.Accels {
		a := &pl.Accels[i]
		if a.ID != i {
			return fmt.Errorf("platform %s: accel %d has ID %d (must equal index)", pl.Name, i, a.ID)
		}
		if a.Name == "" {
			return fmt.Errorf("platform %s: accel %d has empty name", pl.Name, i)
		}
	}
	return pl.Costs.Validate()
}

// CostModel gives the virtual-time cost of the primitive operations that the
// middleware performs. The defaults are calibrated to the order of magnitude
// measured on ARMv7/ARMv8 COTS boards in the literature; the experiments only
// depend on their relative structure, not their absolute values.
type CostModel struct {
	// ContextSwitch is the cost of a full user-level context switch
	// (swapcontext: register save/restore, stack switch).
	ContextSwitch time.Duration
	// SignalDeliver is the cost for a pthread_kill signal to reach the
	// target thread and run its handler prologue.
	SignalDeliver time.Duration
	// ClockRead is the cost of clock_gettime(CLOCK_MONOTONIC).
	ClockRead time.Duration
	// TimerProgram is the cost of arming a timer / nanosleep syscall entry.
	TimerProgram time.Duration
	// QueueOpBase is the base cost of a ready-queue push or pop.
	QueueOpBase time.Duration
	// QueueOpPerItem is the additional cost per traversed/compared item
	// for dynamically allocated structures (pointer-chasing linked lists
	// and heap nodes: cache-miss-dominated).
	QueueOpPerItem time.Duration
	// StaticScanPerItem is the per-entry cost of scanning a statically
	// allocated contiguous array (YASMIN's MISRA-style task table):
	// prefetch-friendly, several times cheaper than QueueOpPerItem.
	StaticScanPerItem time.Duration
	// LockUncontended is the cost of acquiring a free mutex via syscall-less
	// fast path.
	LockUncontended time.Duration
	// SpinRetry is the cost of one failed test-and-set probe under
	// contention (cache-line bounce).
	SpinRetry time.Duration
	// FutexWait is the cost of a contended mutex acquisition that enters
	// the kernel (futex wait + wake).
	FutexWait time.Duration
	// MallocBase is the base cost of a dynamic allocation (the Mollison &
	// Anderson baseline allocates on the scheduling path; YASMIN does not).
	MallocBase time.Duration
	// MallocJitterMax bounds the extra, unpredictable allocation cost
	// (free-list walks, page faults). Sampled uniformly.
	MallocJitterMax time.Duration
	// DispatchIPI is the cost of kicking a remote core (inter-processor
	// interrupt / futex wake crossing clusters).
	DispatchIPI time.Duration
	// ChannelOp is the cost of one FIFO channel push or pop (also the base
	// cost of a topic publish or take).
	ChannelOp time.Duration
	// TopicFanoutPerSub is the additional publish cost per registered
	// subscriber of a topic: the per-cursor bookkeeping of fan-out delivery.
	// Fan-out shares one buffered entry among all subscribers, so this is a
	// cursor comparison, not a payload copy — an order of magnitude below
	// ChannelOp.
	TopicFanoutPerSub time.Duration
	// ReconfigBarrier is the fixed cost of committing a live reconfiguration
	// transaction: the quiescent barrier during which the application lock is
	// held while the task/topic/edge tables are rewritten. The per-entry scan
	// of those tables is charged on top via StaticScanPerItem.
	ReconfigBarrier time.Duration
}

// Validate rejects negative costs.
func (cm *CostModel) Validate() error {
	checks := []struct {
		name string
		d    time.Duration
	}{
		{"ContextSwitch", cm.ContextSwitch},
		{"SignalDeliver", cm.SignalDeliver},
		{"ClockRead", cm.ClockRead},
		{"TimerProgram", cm.TimerProgram},
		{"QueueOpBase", cm.QueueOpBase},
		{"QueueOpPerItem", cm.QueueOpPerItem},
		{"StaticScanPerItem", cm.StaticScanPerItem},
		{"LockUncontended", cm.LockUncontended},
		{"SpinRetry", cm.SpinRetry},
		{"FutexWait", cm.FutexWait},
		{"MallocBase", cm.MallocBase},
		{"MallocJitterMax", cm.MallocJitterMax},
		{"DispatchIPI", cm.DispatchIPI},
		{"ChannelOp", cm.ChannelOp},
		{"TopicFanoutPerSub", cm.TopicFanoutPerSub},
		{"ReconfigBarrier", cm.ReconfigBarrier},
	}
	for _, c := range checks {
		if c.d < 0 {
			return fmt.Errorf("cost model: %s is negative", c.name)
		}
	}
	return nil
}

// DefaultCosts returns the reference ARM COTS cost model.
func DefaultCosts() CostModel {
	return CostModel{
		ContextSwitch:     1200 * time.Nanosecond,
		SignalDeliver:     2500 * time.Nanosecond,
		ClockRead:         120 * time.Nanosecond,
		TimerProgram:      800 * time.Nanosecond,
		QueueOpBase:       150 * time.Nanosecond,
		QueueOpPerItem:    35 * time.Nanosecond,
		StaticScanPerItem: 7 * time.Nanosecond,
		LockUncontended:   60 * time.Nanosecond,
		SpinRetry:         80 * time.Nanosecond,
		FutexWait:         3500 * time.Nanosecond,
		MallocBase:        400 * time.Nanosecond,
		MallocJitterMax:   6000 * time.Nanosecond,
		DispatchIPI:       1800 * time.Nanosecond,
		ChannelOp:         90 * time.Nanosecond,
		TopicFanoutPerSub: 12 * time.Nanosecond,
		ReconfigBarrier:   4000 * time.Nanosecond,
	}
}

// OdroidXU4 returns the paper's Section 4 evaluation platform: a Samsung
// Exynos 5422 with 4 Cortex-A7 (LITTLE, cluster 0) + 4 Cortex-A15 (big,
// cluster 1) and a Mali-T628 GPU.
func OdroidXU4() *Platform {
	pl := &Platform{
		Name:  "odroid-xu4",
		Costs: DefaultCosts(),
	}
	for i := 0; i < 4; i++ {
		pl.Cores = append(pl.Cores, Core{
			ID: i, Kind: LittleCore, Cluster: 0,
			Speed: 0.45, PowerActive: 450, PowerIdle: 45,
		})
	}
	for i := 4; i < 8; i++ {
		pl.Cores = append(pl.Cores, Core{
			ID: i, Kind: BigCore, Cluster: 1,
			Speed: 1.0, PowerActive: 1550, PowerIdle: 95,
		})
	}
	pl.Accels = []Accel{{ID: 0, Name: "mali-t628", Speed: 1.0, PowerActive: 1800}}
	return pl
}

// ApalisTK1 returns the paper's Section 5 platform: a Toradex Apalis TK1
// Computer-on-Module (4 Cortex-A15 + NVIDIA Kepler GK20a GPU with 192 cores).
func ApalisTK1() *Platform {
	pl := &Platform{
		Name:  "apalis-tk1",
		Costs: DefaultCosts(),
	}
	for i := 0; i < 4; i++ {
		pl.Cores = append(pl.Cores, Core{
			ID: i, Kind: BigCore, Cluster: 0,
			Speed: 1.0, PowerActive: 1700, PowerIdle: 110,
		})
	}
	pl.Accels = []Accel{{ID: 0, Name: "kepler-gk20a", Speed: 1.0, PowerActive: 4000}}
	return pl
}

// Generic returns a homogeneous n-core platform with the default cost model,
// handy for unit tests and synthetic experiments.
func Generic(n int) *Platform {
	pl := &Platform{
		Name:  fmt.Sprintf("generic-%d", n),
		Costs: DefaultCosts(),
	}
	for i := 0; i < n; i++ {
		pl.Cores = append(pl.Cores, Core{
			ID: i, Kind: BigCore, Cluster: 0,
			Speed: 1.0, PowerActive: 1000, PowerIdle: 80,
		})
	}
	return pl
}

// GenericWithGPU returns a homogeneous n-core platform plus one GPU.
func GenericWithGPU(n int) *Platform {
	pl := Generic(n)
	pl.Name = fmt.Sprintf("generic-%d-gpu", n)
	pl.Accels = []Accel{{ID: 0, Name: "gpu0", Speed: 1.0, PowerActive: 2500}}
	return pl
}
