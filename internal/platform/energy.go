package platform

import (
	"fmt"
	"sync"
	"time"
)

// Battery models the platform's energy source for the energy-based version
// selector (Section 3.2, option 1: select the version "depending on the
// current energy capacity of the platform").
//
// Capacity is tracked in millijoules. Drain is applied explicitly by the
// runtime when a task version executes (WCET x core power) so the model works
// identically in virtual and wall-clock time. Battery is safe for concurrent
// use: the OS-backed runtime reads it from several worker threads.
type Battery struct {
	//yasmin:lockrank 6
	mu         sync.Mutex
	capacityMJ float64
	levelMJ    float64
}

// NewBattery creates a battery with the given capacity in millijoules,
// initially full.
func NewBattery(capacityMJ float64) (*Battery, error) {
	if capacityMJ <= 0 {
		return nil, fmt.Errorf("battery: capacity must be positive, got %g", capacityMJ)
	}
	return &Battery{capacityMJ: capacityMJ, levelMJ: capacityMJ}, nil
}

// Level returns the remaining charge as a percentage in [0,100].
func (b *Battery) Level() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return 100 * b.levelMJ / b.capacityMJ
}

// RemainingMJ returns the remaining charge in millijoules.
func (b *Battery) RemainingMJ() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.levelMJ
}

// Drain removes energy corresponding to running a consumer of powerMW for d.
func (b *Battery) Drain(powerMW float64, d time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.levelMJ -= powerMW * d.Seconds()
	if b.levelMJ < 0 {
		b.levelMJ = 0
	}
}

// DrainMJ removes an explicit amount of millijoules (e.g. a version's
// declared per-job energy budget).
func (b *Battery) DrainMJ(mj float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.levelMJ -= mj
	if b.levelMJ < 0 {
		b.levelMJ = 0
	}
}

// Recharge restores the battery to full.
func (b *Battery) Recharge() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.levelMJ = b.capacityMJ
}

// SetLevel forces the remaining charge to the given percentage in [0,100].
func (b *Battery) SetLevel(pct float64) error {
	if pct < 0 || pct > 100 {
		return fmt.Errorf("battery: level %g out of [0,100]", pct)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.levelMJ = b.capacityMJ * pct / 100
	return nil
}

// EnergyMeter accumulates consumed energy per consumer name, used to report
// per-version energy in experiments. Safe for concurrent use.
type EnergyMeter struct {
	//yasmin:lockrank 5
	mu       sync.Mutex
	perName  map[string]float64
	totalMJ  float64
	draining *Battery // optional: forward drains to a battery
}

// NewEnergyMeter creates an empty meter. If battery is non-nil, every Add is
// also drained from it.
func NewEnergyMeter(battery *Battery) *EnergyMeter {
	return &EnergyMeter{perName: make(map[string]float64), draining: battery}
}

// Add records that consumer name used powerMW for d.
func (m *EnergyMeter) Add(name string, powerMW float64, d time.Duration) {
	mj := powerMW * d.Seconds()
	m.mu.Lock()
	m.perName[name] += mj
	m.totalMJ += mj
	m.mu.Unlock()
	if m.draining != nil {
		m.draining.DrainMJ(mj)
	}
}

// TotalMJ returns the total energy recorded.
func (m *EnergyMeter) TotalMJ() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.totalMJ
}

// ByName returns a copy of the per-consumer totals.
func (m *EnergyMeter) ByName() map[string]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]float64, len(m.perName))
	for k, v := range m.perName {
		out[k] = v
	}
	return out
}
