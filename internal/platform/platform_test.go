package platform

import (
	"testing"
	"time"
)

func TestPresetsValidate(t *testing.T) {
	for _, pl := range []*Platform{OdroidXU4(), ApalisTK1(), Generic(4), GenericWithGPU(2)} {
		if err := pl.Validate(); err != nil {
			t.Errorf("%s: %v", pl.Name, err)
		}
	}
}

func TestOdroidTopology(t *testing.T) {
	pl := OdroidXU4()
	if got := pl.NumCores(); got != 8 {
		t.Fatalf("NumCores = %d, want 8", got)
	}
	little := pl.CoresOfKind(LittleCore)
	big := pl.CoresOfKind(BigCore)
	if len(little) != 4 || len(big) != 4 {
		t.Fatalf("little=%v big=%v, want 4+4", little, big)
	}
	for _, id := range big {
		c, err := pl.Core(id)
		if err != nil {
			t.Fatal(err)
		}
		if c.Cluster != 1 {
			t.Errorf("big core %d in cluster %d, want 1", id, c.Cluster)
		}
	}
	if _, err := pl.AccelByName("mali-t628"); err != nil {
		t.Error(err)
	}
	if _, err := pl.AccelByName("nope"); err == nil {
		t.Error("expected error for unknown accelerator")
	}
}

func TestTK1Topology(t *testing.T) {
	pl := ApalisTK1()
	if pl.NumCores() != 4 {
		t.Fatalf("NumCores = %d, want 4", pl.NumCores())
	}
	if len(pl.Accels) != 1 || pl.Accels[0].Name != "kepler-gk20a" {
		t.Fatalf("accels = %+v", pl.Accels)
	}
}

func TestCoreScale(t *testing.T) {
	tests := []struct {
		name  string
		speed float64
		in    time.Duration
		want  time.Duration
	}{
		{"unit speed", 1.0, 100 * time.Millisecond, 100 * time.Millisecond},
		{"half speed doubles", 0.5, 100 * time.Millisecond, 200 * time.Millisecond},
		{"double speed halves", 2.0, 100 * time.Millisecond, 50 * time.Millisecond},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			c := Core{Speed: tc.speed}
			if got := c.Scale(tc.in); got != tc.want {
				t.Errorf("Scale(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestCoreLookupErrors(t *testing.T) {
	pl := Generic(2)
	if _, err := pl.Core(-1); err == nil {
		t.Error("want error for core -1")
	}
	if _, err := pl.Core(2); err == nil {
		t.Error("want error for core 2")
	}
}

func TestValidateCatchesBadDescriptions(t *testing.T) {
	bad := Generic(2)
	bad.Cores[1].ID = 7
	if err := bad.Validate(); err == nil {
		t.Error("want error for mismatched core ID")
	}
	bad2 := Generic(2)
	bad2.Cores[0].Speed = 0
	if err := bad2.Validate(); err == nil {
		t.Error("want error for zero speed")
	}
	bad3 := Generic(1)
	bad3.Costs.SpinRetry = -time.Nanosecond
	if err := bad3.Validate(); err == nil {
		t.Error("want error for negative cost")
	}
	bad4 := GenericWithGPU(1)
	bad4.Accels[0].Name = ""
	if err := bad4.Validate(); err == nil {
		t.Error("want error for unnamed accelerator")
	}
}

func TestBattery(t *testing.T) {
	b, err := NewBattery(1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Level(); got != 100 {
		t.Fatalf("initial level = %g, want 100", got)
	}
	// 1 W for 100 s = 100 J... our unit is mW x s = mJ: 1000 mW x 0.5 s = 500 mJ.
	b.Drain(1000, 500*time.Millisecond)
	if got := b.Level(); got != 50 {
		t.Errorf("level after drain = %g, want 50", got)
	}
	b.DrainMJ(10000) // over-drain clamps at zero
	if got := b.Level(); got != 0 {
		t.Errorf("level = %g, want 0", got)
	}
	b.Recharge()
	if got := b.RemainingMJ(); got != 1000 {
		t.Errorf("remaining = %g, want 1000", got)
	}
	if err := b.SetLevel(25); err != nil {
		t.Fatal(err)
	}
	if got := b.Level(); got != 25 {
		t.Errorf("level = %g, want 25", got)
	}
	if err := b.SetLevel(150); err == nil {
		t.Error("want error for level > 100")
	}
	if _, err := NewBattery(0); err == nil {
		t.Error("want error for zero capacity")
	}
}

func TestEnergyMeter(t *testing.T) {
	b, _ := NewBattery(10000)
	m := NewEnergyMeter(b)
	m.Add("detect/gpu", 4000, 130*time.Millisecond)
	m.Add("detect/gpu", 4000, 130*time.Millisecond)
	m.Add("encode/aes", 1700, 100*time.Millisecond)
	per := m.ByName()
	if len(per) != 2 {
		t.Fatalf("ByName has %d entries, want 2", len(per))
	}
	wantGPU := 4000 * 0.130 * 2
	if got := per["detect/gpu"]; !approx(got, wantGPU) {
		t.Errorf("detect/gpu = %g, want %g", got, wantGPU)
	}
	if got := m.TotalMJ(); !approx(got, wantGPU+170) {
		t.Errorf("total = %g, want %g", got, wantGPU+170)
	}
	if got := b.RemainingMJ(); !approx(got, 10000-m.TotalMJ()) {
		t.Errorf("battery %g, want %g", got, 10000-m.TotalMJ())
	}
}

func approx(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-6
}
