package rt

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/yasmin-rt/yasmin/internal/lockfree"
	"github.com/yasmin-rt/yasmin/internal/platform"
)

// OSEnv is the wall-clock environment: threads are goroutines, optionally
// wired to OS threads and pinned to CPUs (Linux). It provides best-effort
// (soft) real-time behaviour: Go's garbage collector and scheduler can still
// interfere, which is precisely why the paper experiments run on SimEnv.
type OSEnv struct {
	start time.Time
	costs platform.CostModel // zeros: real time accrues by itself
	// PinThreads wires each spawned thread with a core >= 0 to an OS thread
	// (runtime.LockOSThread) and attempts a sched_setaffinity to that CPU.
	PinThreads bool
	// ComputeSlice is the polling granularity of Compute's interrupt checks
	// (default 50µs): the cooperative analogue of the paper's
	// signal-based preemption.
	ComputeSlice time.Duration
	// Spin selects busy-wait Compute (true, default: synthetic load really
	// burns CPU like the paper's benchmark tasks) versus sleeping Compute
	// (false: models the work without heating the machine).
	Spin bool

	wg sync.WaitGroup
}

// NewOSEnv creates a wall-clock environment starting "now".
func NewOSEnv() *OSEnv {
	return &OSEnv{start: time.Now(), ComputeSlice: 50 * time.Microsecond, Spin: true}
}

// Now returns the time elapsed since environment creation.
func (e *OSEnv) Now() time.Duration { return time.Since(e.start) }

// Costs returns an all-zero cost model: on real hardware the operations cost
// what they cost.
func (e *OSEnv) Costs() *platform.CostModel { return &e.costs }

// Platform returns nil: the OS backend runs on whatever hardware it runs on.
func (e *OSEnv) Platform() *platform.Platform { return nil }

// Wait blocks until every spawned thread has returned.
func (e *OSEnv) Wait() { e.wg.Wait() }

// Spawn starts a goroutine-backed thread.
func (e *OSEnv) Spawn(name string, core int, fn func(Ctx)) Thread {
	t := &osThread{env: e, name: name}
	t.core.Store(int64(core))
	t.unpark = make(chan struct{}, 1)
	t.intr = make(chan struct{}, 1)
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		defer t.done.Store(true)
		if e.PinThreads && core >= 0 {
			runtime.LockOSThread()
			defer runtime.UnlockOSThread()
			_ = setAffinity(core) // best effort; unsupported platforms ignore
		}
		fn(&osCtx{env: e, th: t})
	}()
	return t
}

// NewLock creates a lock of the requested kind.
func (e *OSEnv) NewLock(kind LockKind) Lock {
	if kind == LockSpin {
		return &osSpinLock{}
	}
	return &osMutexLock{}
}

// RunMain runs fn as a thread on the calling goroutine and returns when it
// finishes — the convenience entry point for programs using the middleware
// directly.
func (e *OSEnv) RunMain(fn func(Ctx)) {
	t := &osThread{env: e, name: "main"}
	t.core.Store(int64(UnpinnedCore))
	t.unpark = make(chan struct{}, 1)
	t.intr = make(chan struct{}, 1)
	fn(&osCtx{env: e, th: t})
	t.done.Store(true)
}

type osThread struct {
	env    *OSEnv
	name   string
	core   atomic.Int64
	unpark chan struct{}
	intr   chan struct{}
	done   atomic.Bool
}

func (t *osThread) Name() string     { return t.name }
func (t *osThread) Core() int        { return int(t.core.Load()) }
func (t *osThread) SetCore(core int) { t.core.Store(int64(core)) }
func (t *osThread) Done() bool       { return t.done.Load() }

func (t *osThread) Unpark() {
	select {
	case t.unpark <- struct{}{}:
	default: // token already buffered
	}
}

func (t *osThread) Interrupt() {
	select {
	case t.intr <- struct{}{}:
	default: // interrupt already pending; coalesce
	}
}

type osCtx struct {
	env *OSEnv
	th  *osThread
}

func (c *osCtx) Env() Env           { return c.env }
func (c *osCtx) Self() Thread       { return c.th }
func (c *osCtx) Now() time.Duration { return c.env.Now() }

func (c *osCtx) Sleep(d time.Duration) bool {
	if d <= 0 {
		runtime.Gosched()
		return c.pollInterrupt()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return false
	case <-c.th.intr:
		return true
	}
}

func (c *osCtx) SleepUntil(t time.Duration) bool {
	return c.Sleep(t - c.Now())
}

func (c *osCtx) Park() bool {
	select {
	case <-c.th.unpark:
		return false
	case <-c.th.intr:
		return true
	}
}

func (c *osCtx) ParkIdle() bool { return c.Park() }

func (c *osCtx) Yield() { runtime.Gosched() }

func (c *osCtx) pollInterrupt() bool {
	select {
	case <-c.th.intr:
		return true
	default:
		return false
	}
}

// Compute burns (or models) CPU time in slices, checking for the preemption
// interrupt at every slice boundary — the cooperative analogue of signal
// + swapcontext. Remaining work is returned on interrupt.
func (c *osCtx) Compute(d time.Duration) (time.Duration, bool) {
	slice := c.env.ComputeSlice
	if slice <= 0 {
		slice = 50 * time.Microsecond
	}
	deadline := time.Now().Add(d)
	for {
		now := time.Now()
		if !now.Before(deadline) {
			return 0, false
		}
		if c.pollInterrupt() {
			return deadline.Sub(now), true
		}
		step := deadline.Sub(now)
		if step > slice {
			step = slice
		}
		if c.env.Spin {
			spinFor(step)
		} else {
			time.Sleep(step)
		}
	}
}

// spinFor busy-waits for roughly d, touching the clock sparingly.
func spinFor(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
		for i := 0; i < 64; i++ {
			spinSink++
		}
	}
}

// spinSink defeats dead-code elimination of the spin loop.
var spinSink uint64

func (c *osCtx) Charge(time.Duration) {
	// Real operations already cost real time.
}

func (c *osCtx) ChargeLazy(time.Duration) {
	// Real operations already cost real time.
}

type osMutexLock struct{ mu sync.Mutex }

func (l *osMutexLock) Lock(Ctx)   { l.mu.Lock() }
func (l *osMutexLock) Unlock(Ctx) { l.mu.Unlock() }

type osSpinLock struct{ mu lockfree.TASLock }

func (l *osSpinLock) Lock(Ctx)   { l.mu.Lock() }
func (l *osSpinLock) Unlock(Ctx) { l.mu.Unlock() }
