// Package rt abstracts the execution environment underneath the YASMIN
// middleware. The middleware code (internal/core) is written once against
// the Env/Ctx/Thread interfaces and runs on two backends:
//
//   - SimEnv executes threads as deterministic discrete-event simulation
//     processes in virtual time, charging platform cost-model prices for
//     middleware operations. All paper experiments use this backend: Go's
//     garbage collector and goroutine scheduler never touch the measured
//     timings (the repro gate called out for this paper).
//   - OSEnv executes threads as goroutines (optionally wired to OS threads)
//     in wall-clock time. It makes the middleware usable as a real, albeit
//     soft-real-time, Go library.
//
// Time is represented as time.Duration since environment start, so the
// middleware never handles wall-clock instants directly.
package rt

import (
	"time"

	"github.com/yasmin-rt/yasmin/internal/platform"
)

// UnpinnedCore marks a thread not bound to any core (e.g. job fibers before
// dispatch).
const UnpinnedCore = -1

// LockKind selects the lock implementation, mirroring the paper's
// compile-time choice between POSIX (futex) locks and lock-free spinlocks
// (Section 3.5 "Locking").
type LockKind int

// Lock kinds.
const (
	// LockOS models a POSIX mutex: blocked threads sleep in the kernel.
	LockOS LockKind = iota + 1
	// LockSpin models a test-and-set spinlock: blocked threads burn CPU,
	// which is visible in overhead measurements but analysable.
	LockSpin
)

func (k LockKind) String() string {
	switch k {
	case LockOS:
		return "os"
	case LockSpin:
		return "spin"
	default:
		return "unknown"
	}
}

// Env is an execution environment.
type Env interface {
	// Now returns the time elapsed since environment start.
	//yasmin:noalloc
	Now() time.Duration
	// Spawn creates a thread pinned to the given core (or UnpinnedCore)
	// running fn. The thread starts immediately.
	Spawn(name string, core int, fn func(Ctx)) Thread
	// NewLock creates a lock of the requested kind.
	NewLock(kind LockKind) Lock
	// Costs returns the cost model threads should charge for middleware
	// operations. The OS backend returns zeros (real time accrues
	// naturally).
	//yasmin:noalloc
	Costs() *platform.CostModel
	// Platform returns the hardware description, or nil for the OS backend.
	Platform() *platform.Platform
}

// Thread is a handle on a spawned thread, usable from any other thread of
// the same environment.
type Thread interface {
	Name() string
	// Core returns the core the thread is currently bound to.
	Core() int
	// SetCore rebinds the thread. The simulation backend uses the core's
	// speed to scale Compute durations; the middleware calls this when it
	// dispatches a job fiber onto a virtual CPU.
	SetCore(core int)
	// Unpark wakes the thread from Park. A token is buffered if the thread
	// is not parked, preventing lost wakeups.
	Unpark()
	// Interrupt delivers an asynchronous interrupt (the preemption signal):
	// an ongoing Sleep/Compute/Park returns with interrupted=true.
	Interrupt()
	// Done reports whether the thread function has returned.
	Done() bool
}

// Ctx is the view a thread has of itself; all blocking primitives live here
// and must only be called from the owning thread.
type Ctx interface {
	Env() Env
	Self() Thread
	//yasmin:noalloc
	Now() time.Duration
	// Sleep blocks for d; returns true when interrupted early.
	//yasmin:blocking
	Sleep(d time.Duration) (interrupted bool)
	// SleepUntil blocks until the given instant; returns true on interrupt.
	//yasmin:blocking
	SleepUntil(t time.Duration) (interrupted bool)
	// Park blocks until Unpark or Interrupt; returns true on interrupt.
	// It models an in-process context handoff (the paper's swapcontext):
	// no kernel wake-up latency applies.
	//yasmin:blocking
	Park() (interrupted bool)
	// ParkIdle blocks like Park but models a kernel-level wait (futex):
	// the simulation backend charges the kernel model's futex wake-up
	// latency on resume. Idle workers use this; fiber handoffs use Park.
	//yasmin:blocking
	ParkIdle() (interrupted bool)
	// Yield lets same-instant work run first. Blocking: same-instant peers
	// may run arbitrarily long before this thread resumes.
	//yasmin:blocking
	Yield()
	// Compute consumes d of nominal CPU work (scaled by the bound core's
	// speed). Returns the unconsumed nominal work and whether an interrupt
	// cut it short.
	//yasmin:blocking
	Compute(d time.Duration) (remaining time.Duration, interrupted bool)
	// Charge consumes CPU time non-interruptibly (middleware bookkeeping):
	// it never deschedules the caller and is safe under the App lock.
	//yasmin:nonblocking
	//yasmin:noalloc
	Charge(d time.Duration)
	// ChargeLazy records d of bookkeeping cost without consuming it yet.
	// The accumulated cost is folded into the thread's next timed primitive
	// (Sleep/SleepUntil/Compute/Charge) or flushed as a plain Charge before
	// the next Park/ParkIdle/Yield, so dense bookkeeping sequences cost one
	// engine event instead of one per call. Pending cost folded into an
	// interruptible Compute is consumed before the nominal work: on an early
	// interrupt the remaining time is clamped to the nominal amount and the
	// pending bookkeeping is considered absorbed.
	//yasmin:nonblocking
	//yasmin:noalloc
	ChargeLazy(d time.Duration)
}

// Lock is a mutual-exclusion lock usable from thread context. Acquiring a
// lock may of course wait, but that is the lockorder analyzer's domain;
// for lockedblock/noalloc purposes the operations themselves are
// bookkeeping: they neither perform I/O nor heap-allocate (both backends
// park through preallocated waiter structures).
type Lock interface {
	//yasmin:nonblocking
	//yasmin:noalloc
	Lock(c Ctx)
	//yasmin:nonblocking
	//yasmin:noalloc
	Unlock(c Ctx)
}
