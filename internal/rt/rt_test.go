package rt

import (
	"sync/atomic"
	"testing"
	"time"

	"github.com/yasmin-rt/yasmin/internal/platform"
	"github.com/yasmin-rt/yasmin/internal/sim"
)

func newSim(t *testing.T) (*sim.Engine, *SimEnv) {
	t.Helper()
	eng := sim.NewEngine(1)
	env, err := NewSimEnv(eng, platform.OdroidXU4(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return eng, env
}

func TestSimEnvComputeScalesWithCoreSpeed(t *testing.T) {
	eng, env := newSim(t)
	var bigDone, littleDone time.Duration
	env.Spawn("big", 4, func(c Ctx) { // core 4 = big, speed 1.0
		c.Compute(10 * time.Millisecond)
		bigDone = c.Now()
	})
	env.Spawn("little", 0, func(c Ctx) { // core 0 = LITTLE, speed 0.45
		c.Compute(10 * time.Millisecond)
		littleDone = c.Now()
	})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if bigDone != 10*time.Millisecond {
		t.Errorf("big finished at %v, want 10ms", bigDone)
	}
	nominal := 10 * time.Millisecond
	want := time.Duration(float64(nominal) / 0.45)
	diff := littleDone - want
	if diff < -time.Microsecond || diff > time.Microsecond {
		t.Errorf("little finished at %v, want ~%v", littleDone, want)
	}
}

func TestSimEnvInterruptReturnsNominalRemaining(t *testing.T) {
	eng, env := newSim(t)
	var rem time.Duration
	var intr bool
	victim := env.Spawn("victim", 0, func(c Ctx) { // LITTLE core, speed 0.45
		rem, intr = c.Compute(9 * time.Millisecond)
	})
	env.Spawn("sig", 4, func(c Ctx) {
		c.Sleep(10 * time.Millisecond) // victim is half done (20ms to finish)
		victim.Interrupt()
	})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !intr {
		t.Fatal("not interrupted")
	}
	// 10ms wall on a 0.45-speed core = 4.5ms nominal consumed; 4.5ms left.
	want := 4500 * time.Microsecond
	diff := rem - want
	if diff < -10*time.Microsecond || diff > 10*time.Microsecond {
		t.Errorf("remaining = %v, want ~%v", rem, want)
	}
}

func TestSimEnvWakeLatencyCharged(t *testing.T) {
	eng := sim.NewEngine(1)
	env, err := NewSimEnv(eng, platform.Generic(2), func(reason WakeReason, core int) time.Duration {
		if reason == WakeTimer {
			return 100 * time.Microsecond
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	var woke time.Duration
	env.Spawn("t", 0, func(c Ctx) {
		c.Sleep(time.Millisecond)
		woke = c.Now()
	})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if woke != time.Millisecond+100*time.Microsecond {
		t.Errorf("woke at %v, want 1.1ms", woke)
	}
}

func TestSimEnvParkUnpark(t *testing.T) {
	eng, env := newSim(t)
	var order []string
	var worker Thread
	worker = env.Spawn("worker", 4, func(c Ctx) {
		if c.Park() {
			t.Error("unexpected interrupt")
		}
		order = append(order, "worker")
	})
	env.Spawn("boss", 5, func(c Ctx) {
		c.Sleep(time.Millisecond)
		order = append(order, "boss")
		worker.Unpark()
	})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "boss" || order[1] != "worker" {
		t.Errorf("order = %v", order)
	}
}

func TestSimEnvLocksProvideMutualExclusion(t *testing.T) {
	for _, kind := range []LockKind{LockOS, LockSpin} {
		t.Run(kind.String(), func(t *testing.T) {
			eng, env := newSim(t)
			lock := env.NewLock(kind)
			var inside, maxInside int
			for i := 0; i < 4; i++ {
				env.Spawn("t", 4+i%4, func(c Ctx) {
					for j := 0; j < 5; j++ {
						lock.Lock(c)
						inside++
						if inside > maxInside {
							maxInside = inside
						}
						c.Compute(100 * time.Microsecond)
						inside--
						lock.Unlock(c)
						c.Sleep(50 * time.Microsecond)
					}
				})
			}
			if err := eng.RunUntilIdle(); err != nil {
				t.Fatal(err)
			}
			if maxInside != 1 {
				t.Errorf("max threads in critical section = %d, want 1", maxInside)
			}
		})
	}
}

func TestSimEnvDeterministicAcrossRuns(t *testing.T) {
	run := func() time.Duration {
		eng := sim.NewEngine(7)
		env, err := NewSimEnv(eng, platform.OdroidXU4(), nil)
		if err != nil {
			t.Fatal(err)
		}
		lock := env.NewLock(LockSpin)
		var last time.Duration
		for i := 0; i < 3; i++ {
			env.Spawn("w", 4+i, func(c Ctx) {
				for j := 0; j < 10; j++ {
					lock.Lock(c)
					c.Compute(time.Duration(1+j%3) * 100 * time.Microsecond)
					lock.Unlock(c)
					c.Sleep(10 * time.Microsecond)
					last = c.Now()
				}
			})
		}
		if err := eng.RunUntilIdle(); err != nil {
			t.Fatal(err)
		}
		return last
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic: %v vs %v", a, b)
	}
}

func TestOSEnvBasicLifecycle(t *testing.T) {
	env := NewOSEnv()
	env.Spin = false // don't burn CPU in tests
	var ran atomic.Bool
	th := env.Spawn("t", UnpinnedCore, func(c Ctx) {
		c.Sleep(time.Millisecond)
		ran.Store(true)
	})
	env.Wait()
	if !ran.Load() || !th.Done() {
		t.Error("thread did not complete")
	}
}

func TestOSEnvParkUnparkInterrupt(t *testing.T) {
	env := NewOSEnv()
	env.Spin = false
	results := make(chan bool, 2)
	a := env.Spawn("a", UnpinnedCore, func(c Ctx) {
		results <- c.Park() // expect unpark: false
	})
	b := env.Spawn("b", UnpinnedCore, func(c Ctx) {
		results <- c.Park() // expect interrupt: true
	})
	time.Sleep(10 * time.Millisecond)
	a.Unpark()
	b.Interrupt()
	env.Wait()
	got := []bool{<-results, <-results}
	if !(got[0] != got[1]) {
		t.Errorf("park results = %v, want one false (unpark) and one true (interrupt)", got)
	}
}

func TestOSEnvComputeInterrupted(t *testing.T) {
	env := NewOSEnv()
	env.Spin = false
	var rem time.Duration
	var intr bool
	done := make(chan struct{})
	th := env.Spawn("t", UnpinnedCore, func(c Ctx) {
		rem, intr = c.Compute(500 * time.Millisecond)
		close(done)
	})
	time.Sleep(20 * time.Millisecond)
	th.Interrupt()
	<-done
	if !intr {
		t.Fatal("compute not interrupted")
	}
	if rem <= 0 || rem >= 500*time.Millisecond {
		t.Errorf("remaining = %v, want in (0, 500ms)", rem)
	}
}

func TestOSEnvSleepInterrupted(t *testing.T) {
	env := NewOSEnv()
	env.Spin = false
	intrCh := make(chan bool, 1)
	th := env.Spawn("t", UnpinnedCore, func(c Ctx) {
		intrCh <- c.Sleep(time.Second)
	})
	time.Sleep(5 * time.Millisecond)
	th.Interrupt()
	if !<-intrCh {
		t.Error("sleep not interrupted")
	}
	env.Wait()
}

func TestOSEnvUnparkTokenBuffered(t *testing.T) {
	env := NewOSEnv()
	env.Spin = false
	th := env.Spawn("t", UnpinnedCore, func(c Ctx) {
		c.Sleep(10 * time.Millisecond) // unpark arrives while sleeping? no: buffered for Park
		if c.Park() {
			t.Error("interrupted")
		}
	})
	th.Unpark() // before park: token must be buffered
	env.Wait()
}

func TestOSEnvRunMain(t *testing.T) {
	env := NewOSEnv()
	env.Spin = false
	ran := false
	env.RunMain(func(c Ctx) {
		c.Yield()
		ran = true
	})
	if !ran {
		t.Error("main did not run")
	}
}

func TestOSEnvLocks(t *testing.T) {
	env := NewOSEnv()
	for _, kind := range []LockKind{LockOS, LockSpin} {
		lock := env.NewLock(kind)
		counter := 0
		done := make(chan struct{}, 4)
		for i := 0; i < 4; i++ {
			env.Spawn("w", UnpinnedCore, func(c Ctx) {
				for j := 0; j < 1000; j++ {
					lock.Lock(c)
					counter++
					lock.Unlock(c)
				}
				done <- struct{}{}
			})
		}
		for i := 0; i < 4; i++ {
			<-done
		}
		if counter != 4000 {
			t.Errorf("%v: counter = %d, want 4000", kind, counter)
		}
	}
	env.Wait()
}

func TestLockKindString(t *testing.T) {
	if LockOS.String() != "os" || LockSpin.String() != "spin" || LockKind(0).String() != "unknown" {
		t.Error("LockKind strings wrong")
	}
}

func TestNewSimEnvValidation(t *testing.T) {
	if _, err := NewSimEnv(nil, platform.Generic(1), nil); err == nil {
		t.Error("want error for nil engine")
	}
	if _, err := NewSimEnv(sim.NewEngine(1), nil, nil); err == nil {
		t.Error("want error for nil platform")
	}
	bad := platform.Generic(1)
	bad.Cores[0].Speed = -1
	if _, err := NewSimEnv(sim.NewEngine(1), bad, nil); err == nil {
		t.Error("want error for invalid platform")
	}
}
