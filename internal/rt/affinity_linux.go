//go:build linux

package rt

import (
	"syscall"
	"unsafe"
)

// setAffinity pins the calling OS thread to the given CPU, mirroring the
// paper's use of pthread_setaffinity_np. Stdlib-only: it issues the raw
// sched_setaffinity syscall on the current thread (pid 0).
func setAffinity(cpu int) error {
	if cpu < 0 || cpu >= 1024 {
		return syscall.EINVAL
	}
	var set [1024 / 64]uint64
	set[cpu/64] = 1 << (uint(cpu) % 64)
	_, _, errno := syscall.RawSyscall(
		syscall.SYS_SCHED_SETAFFINITY,
		0,
		uintptr(unsafe.Sizeof(set)),
		uintptr(unsafe.Pointer(&set)),
	)
	if errno != 0 {
		return errno
	}
	return nil
}
