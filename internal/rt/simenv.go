package rt

import (
	"fmt"
	"time"

	"github.com/yasmin-rt/yasmin/internal/platform"
	"github.com/yasmin-rt/yasmin/internal/sim"
)

// WakeReason tells a kernel latency model why a thread woke up.
type WakeReason int

// Wake reasons.
const (
	// WakeTimer: a timed sleep expired (timer interrupt -> wakeup path).
	WakeTimer WakeReason = iota + 1
	// WakeUnpark: another thread unparked this one (futex wake path).
	WakeUnpark
)

// WakeLatencyFunc samples the OS-induced latency between the nominal wake
// instant and the thread actually running. Kernel models provide this.
type WakeLatencyFunc func(reason WakeReason, core int) time.Duration

// SimEnv is the virtual-time environment: every Thread is a deterministic
// simulation process and every timing is derived from the platform cost
// model plus an optional kernel wake-latency model.
type SimEnv struct {
	eng   *sim.Engine
	plat  *platform.Platform
	wake  WakeLatencyFunc
	costs platform.CostModel
}

// NewSimEnv creates a simulation environment on the given engine and
// platform. wake may be nil (no OS-induced wake latency: an idealised
// kernel).
func NewSimEnv(eng *sim.Engine, plat *platform.Platform, wake WakeLatencyFunc) (*SimEnv, error) {
	if eng == nil || plat == nil {
		return nil, fmt.Errorf("rt: SimEnv needs an engine and a platform")
	}
	if err := plat.Validate(); err != nil {
		return nil, fmt.Errorf("rt: SimEnv platform: %w", err)
	}
	return &SimEnv{eng: eng, plat: plat, wake: wake, costs: plat.Costs}, nil
}

// Engine exposes the underlying simulation engine (experiment harness use).
func (e *SimEnv) Engine() *sim.Engine { return e.eng }

// Now returns the current virtual time.
func (e *SimEnv) Now() time.Duration { return e.eng.Now().Duration() }

// Costs returns the platform cost model.
func (e *SimEnv) Costs() *platform.CostModel { return &e.costs }

// Platform returns the hardware description.
func (e *SimEnv) Platform() *platform.Platform { return e.plat }

// Spawn creates a simulated thread.
func (e *SimEnv) Spawn(name string, core int, fn func(Ctx)) Thread {
	t := &simThread{env: e, core: core}
	t.proc = e.eng.Spawn(name, func(p *sim.Proc) {
		fn(&simCtx{env: e, th: t})
	})
	return t
}

// NewLock creates a lock of the requested kind.
func (e *SimEnv) NewLock(kind LockKind) Lock {
	switch kind {
	case LockSpin:
		return &simSpinLock{
			env: e,
			mu: sim.SpinMutex{
				RetryCost:   e.costs.SpinRetry,
				AcquireCost: e.costs.LockUncontended,
			},
		}
	default:
		return &simOSLock{env: e}
	}
}

type simThread struct {
	env  *SimEnv
	proc *sim.Proc
	core int
}

func (t *simThread) Name() string { return t.proc.Name() }
func (t *simThread) Core() int    { return t.core }
func (t *simThread) SetCore(core int) {
	t.core = core
}
func (t *simThread) Unpark()    { t.env.eng.Unpark(t.proc) }
func (t *simThread) Interrupt() { t.env.eng.Interrupt(t.proc) }
func (t *simThread) Done() bool { return t.proc.Done() }

// speed returns the execution speed of the thread's current core (1.0 when
// unpinned: job fibers are always rebound before computing).
func (t *simThread) speed() float64 {
	if t.core < 0 || t.core >= len(t.env.plat.Cores) {
		return 1.0
	}
	s := t.env.plat.Cores[t.core].Speed
	if s <= 0 {
		return 1.0
	}
	return s
}

type simCtx struct {
	env *SimEnv
	th  *simThread
	// pending is bookkeeping cost recorded by ChargeLazy but not yet
	// consumed; it is folded into the next timed primitive or flushed as a
	// Charge before the thread blocks, so virtual time never runs ahead of
	// the work already accounted to this thread.
	pending time.Duration
}

func (c *simCtx) Env() Env           { return c.env }
func (c *simCtx) Self() Thread       { return c.th }
func (c *simCtx) Now() time.Duration { return c.env.Now() }

func (c *simCtx) Sleep(d time.Duration) bool {
	return c.SleepUntil(c.Now() + d)
}

func (c *simCtx) SleepUntil(t time.Duration) bool {
	c.flushLazy()
	intr, _ := c.th.proc.SleepUntil(sim.Time(t))
	if !intr {
		c.chargeWake(WakeTimer)
	}
	return intr
}

func (c *simCtx) Park() bool {
	c.flushLazy()
	return c.th.proc.Park()
}

func (c *simCtx) ParkIdle() bool {
	c.flushLazy()
	intr := c.th.proc.Park()
	if !intr {
		c.chargeWake(WakeUnpark)
	}
	return intr
}

func (c *simCtx) Yield() {
	c.flushLazy()
	c.th.proc.Yield()
}

func (c *simCtx) Compute(d time.Duration) (time.Duration, bool) {
	if d <= 0 && c.pending <= 0 {
		return 0, false
	}
	// Pending bookkeeping is consumed ahead of the nominal work inside one
	// engine event; on an early interrupt the remainder is clamped to the
	// nominal amount (the bookkeeping counts as absorbed).
	pend := c.pending
	c.pending = 0
	speed := c.th.speed()
	scaled := time.Duration(float64(pend+d) / speed)
	intr, remScaled := c.th.proc.Compute(scaled)
	if !intr {
		return 0, false
	}
	remNominal := time.Duration(float64(remScaled) * speed)
	if remNominal > d {
		remNominal = d
	}
	return remNominal, true
}

func (c *simCtx) Charge(d time.Duration) {
	d += c.pending
	c.pending = 0
	if d <= 0 {
		return
	}
	c.th.proc.Charge(time.Duration(float64(d) / c.th.speed()))
}

func (c *simCtx) ChargeLazy(d time.Duration) {
	if d > 0 {
		c.pending += d
	}
}

// flushLazy converts accumulated lazy cost into a real charge before the
// thread blocks.
func (c *simCtx) flushLazy() {
	if c.pending > 0 {
		d := c.pending
		c.pending = 0
		c.th.proc.Charge(time.Duration(float64(d) / c.th.speed()))
	}
}

// chargeWake applies the kernel model's wakeup latency after a normal wake.
func (c *simCtx) chargeWake(reason WakeReason) {
	if c.env.wake == nil {
		return
	}
	if lat := c.env.wake(reason, c.th.core); lat > 0 {
		c.th.proc.Charge(lat)
	}
}

// simOSLock models a POSIX mutex: an uncontended acquisition pays the
// user-space fast path; a contended one pays the futex round trip and sleeps
// until handoff.
type simOSLock struct {
	env *SimEnv
	mu  sim.Mutex
}

func (l *simOSLock) Lock(c Ctx) {
	sc := c.(*simCtx)
	if l.mu.TryLock(sc.th.proc) {
		sc.Charge(l.env.costs.LockUncontended)
		return
	}
	sc.Charge(l.env.costs.FutexWait)
	l.mu.Lock(sc.th.proc)
}

func (l *simOSLock) Unlock(c Ctx) {
	sc := c.(*simCtx)
	l.mu.Unlock(sc.th.proc)
}

// simSpinLock models a test-and-set spinlock with CPU burn under contention.
type simSpinLock struct {
	env *SimEnv
	mu  sim.SpinMutex
}

func (l *simSpinLock) Lock(c Ctx) {
	sc := c.(*simCtx)
	l.mu.Lock(sc.th.proc)
}

func (l *simSpinLock) Unlock(c Ctx) {
	sc := c.(*simCtx)
	l.mu.Unlock(sc.th.proc)
}
