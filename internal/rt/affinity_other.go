//go:build !linux

package rt

import "errors"

// setAffinity is unavailable off Linux; pinning silently degrades to
// LockOSThread only, like the paper's portability fallback.
func setAffinity(int) error {
	return errors.New("rt: CPU affinity not supported on this platform")
}
