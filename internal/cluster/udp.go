package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
)

// maxDatagram bounds one encoded frame on the wire. Frames are compact
// (a topic name plus a handful of integers), so this stays well under
// typical path MTUs; AppendFrame output beyond it is a configuration
// error (an absurd topic name), surfaced at send time.
const maxDatagram = 1400

// UDPTransport is the OSEnv data plane: one datagram socket per node,
// frames sent point-to-point to each peer's address. Best-effort by
// construction — exactly the delivery model the ingress discipline is
// built for (loss tolerated, reorder/duplication filtered).
type UDPTransport struct {
	node  *Node
	conn  *net.UDPConn
	peers map[int]*net.UDPAddr

	mu     sync.Mutex // serializes Send (publisher threads) and Close
	closed bool
	done   chan struct{}
}

// NewUDPTransport binds laddr (e.g. ":7070", or "" for an ephemeral
// port) for the given node and starts the receive loop feeding the
// node's ingress shards. peers maps node id -> "host:port" for every
// other cluster member; entries may be added for nodes that start later,
// but all must be present before traffic flows to them.
func NewUDPTransport(n *Node, laddr string, peers map[int]string) (*UDPTransport, error) {
	la, err := net.ResolveUDPAddr("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("cluster: udp: %w", err)
	}
	conn, err := net.ListenUDP("udp", la)
	if err != nil {
		return nil, fmt.Errorf("cluster: udp: %w", err)
	}
	t := &UDPTransport{
		node:  n,
		conn:  conn,
		peers: make(map[int]*net.UDPAddr, len(peers)),
		done:  make(chan struct{}),
	}
	for id, addr := range peers {
		ra, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("cluster: udp: peer %d: %w", id, err)
		}
		t.peers[id] = ra
	}
	n.SetTransport(t)
	go t.readLoop()
	return t, nil
}

// LocalAddr returns the bound address (useful with ephemeral ports).
func (t *UDPTransport) LocalAddr() *net.UDPAddr {
	return t.conn.LocalAddr().(*net.UDPAddr)
}

// AddPeer registers (or replaces) a peer's address after construction —
// the ephemeral-port bootstrap: bind everyone first, then exchange the
// addresses.
func (t *UDPTransport) AddPeer(id int, addr string) error {
	ra, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("cluster: udp: peer %d: %w", id, err)
	}
	t.mu.Lock()
	t.peers[id] = ra
	t.mu.Unlock()
	return nil
}

// readLoop is the receive goroutine: one datagram is one frame, parsed
// and queued before the next read — the buffer is reused, which is safe
// because Ingest copies the frame into the shard ring.
func (t *UDPTransport) readLoop() {
	defer close(t.done)
	buf := make([]byte, maxDatagram)
	for {
		sz, _, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			// Closed socket (shutdown) or transient error; either way the
			// loop ends only on close.
			if t.isClosed() {
				return
			}
			continue
		}
		// A malformed datagram is counted as ingress overflow would be:
		// dropped without ceremony. UDP delivers garbage sometimes; the
		// parser is the firewall.
		_ = t.node.Ingest(buf[:sz])
	}
}

func (t *UDPTransport) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

// Send transmits one frame to dst. Unknown destinations and oversized
// frames are dropped (best-effort plane; the counters on the receive
// side are the observability story, and a frame that cannot leave the
// node shows up there as a gap).
func (t *UDPTransport) Send(dst int, pkt []byte) {
	if len(pkt) > maxDatagram {
		return
	}
	t.mu.Lock()
	ra := t.peers[dst]
	closed := t.closed
	t.mu.Unlock()
	if ra == nil || closed {
		return
	}
	_, _ = t.conn.WriteToUDP(pkt, ra)
}

// Close shuts the socket and waits for the receive loop to exit.
func (t *UDPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	err := t.conn.Close()
	<-t.done
	if err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}
