// Package cluster distributes YASMIN across nodes: topics whose
// publishers and subscribers live on different middleware instances,
// carried by a broker-less datagram data plane, plus a cluster-wide
// two-phase reconfiguration protocol and PTP-style clock discipline.
//
// The layering mirrors the single-node design. The data plane rides the
// lock-free publish fast path: a per-topic forwarder installed into the
// commit-built topicView encodes each successful local publish into a
// compact wire frame on the publisher's own thread (no App lock, no
// allocation in steady state) and hands it to the Transport once per
// destination node. Ingress is sharded: frames hash by topic onto MPSC
// rings drained by dedicated workers that enforce epoch freshness and
// per-publisher FIFO before injecting into the local topic via
// core.RemotePublish. Loss is tolerated (gaps are legal), reordering and
// duplication are filtered — subscribers never observe a per-publisher
// order inversion.
//
// The control plane lifts the single-node admission-guarded transaction
// to the cluster: Reconfigure prepares on every involved node (running
// each node's full schedulability analysis while holding its admission
// guard), and only if all prepare steps admit does it commit everywhere
// at a single new cluster epoch; one infeasible node aborts the whole
// transaction with a typed per-node rejection. On SimEnv all nodes share
// one engine, so the protocol is exercised deterministically; on OSEnv
// each node is a process and the same code runs over UDP.
package cluster

import (
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/lockfree"
	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/telemetry"
)

// Transport moves encoded frames between nodes. Send must be safe to
// call from any publisher thread and must not retain pkt after it
// returns (senders reuse the buffer). Delivery is best-effort and
// unordered — the ingress discipline, not the transport, provides the
// ordering guarantees.
type Transport interface {
	Send(dst int, pkt []byte)
	Close() error
}

// ingressRing is the default per-shard receive ring capacity.
const ingressRing = 1024

// defaultShards is the default ingress shard count per node.
const defaultShards = 4

// Cluster is a set of Nodes sharing one epoch counter. Membership is
// static after Start (v1: no discovery or failure detection — the node
// set is configuration, as the task set is in the paper's model).
type Cluster struct {
	epoch atomic.Uint64
	nodes []*Node
}

// New creates an empty cluster at epoch 0.
func New() *Cluster { return &Cluster{} }

// Epoch returns the current cluster epoch (0 until the first
// cluster-wide reconfiguration commits).
func (cl *Cluster) Epoch() uint64 { return cl.epoch.Load() }

// Nodes returns the member nodes in id order.
func (cl *Cluster) Nodes() []*Node { return cl.nodes }

// Node returns the member with the given id.
func (cl *Cluster) Node(id int) *Node { return cl.nodes[id] }

// AddNode joins a new member; its id is its join order. Call for every
// node before any Topic wiring (routes validate destination ids against
// the final membership).
func (cl *Cluster) AddNode(cfg NodeConfig) (*Node, error) {
	if cfg.App == nil || cfg.Env == nil {
		return nil, errors.New("cluster: AddNode needs an App and an Env")
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = defaultShards
	}
	n := &Node{
		id:     len(cl.nodes),
		cl:     cl,
		app:    cfg.App,
		env:    cfg.Env,
		pipe:   cfg.Pipeline,
		cfg:    cfg,
		routes: make(map[string]*route),
		shards: make([]*shard, shards),
	}
	for i := range n.shards {
		ring, err := lockfree.NewMPSCRing[Frame](ingressRing)
		if err != nil {
			return nil, err
		}
		n.shards[i] = &shard{ring: ring, last: make(map[filterKey]uint64)}
	}
	cl.nodes = append(cl.nodes, n)
	return n, nil
}

// Start starts every node's ingress and clock-discipline threads.
func (cl *Cluster) Start() error {
	for _, n := range cl.nodes {
		if err := n.Start(); err != nil {
			return err
		}
	}
	return nil
}

// Close stops all cluster threads and closes each distinct transport.
// On SimEnv, call before draining the engine: parked shard workers do
// not keep the engine alive, but the periodic sync threads would.
func (cl *Cluster) Close() error {
	var firstErr error
	closed := make(map[Transport]bool)
	for _, n := range cl.nodes {
		n.close()
		if n.tr != nil && !closed[n.tr] {
			closed[n.tr] = true
			if err := n.tr.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// NodeError is a typed per-node rejection from a cluster reconfiguration:
// it names the node whose admission test failed and wraps the node-local
// error, so errors.Is(err, core.ErrNotSchedulable) still answers the
// policy question while the operator learns where capacity ran out.
type NodeError struct {
	Node int
	Err  error
}

func (e *NodeError) Error() string { return fmt.Sprintf("cluster: node %d: %v", e.Node, e.Err) }

// Unwrap exposes the node-local cause for errors.Is / errors.As.
func (e *NodeError) Unwrap() error { return e.Err }

// NodeTx is one node's share of a cluster-wide reconfiguration.
type NodeTx struct {
	Node int
	Fn   func(tx *core.Reconfig) error
}

// Reconfigure runs a cluster-wide reconfiguration as a two-phase commit
// over the per-node admission-guarded transactions:
//
//	prepare: on each involved node, in order, run the transaction body
//	         and the node's full schedulability analysis while holding
//	         its admission guard (core.App.PrepareReconfigure);
//	commit:  if every node admits, advance the cluster epoch once and
//	         commit every node at that common epoch;
//	abort:   if any node rejects, roll back the already-prepared nodes
//	         (reverse order) and return a *NodeError naming the rejecting
//	         node — no node is left changed.
//
// The caller's thread is the coordinator: sim locks are owner-checked,
// so prepare and commit/abort for a node must run on the same thread —
// which a single coordinator loop guarantees by construction. Nodes are
// prepared in ascending id order regardless of the order of txs, so
// concurrent coordinators cannot deadlock on admission guards.
//
// On success the new epoch is recorded on every member node's telemetry
// pipeline (not only the nodes touched by the transaction): the cluster
// epoch sequence is global state, and replay reconciliation demands that
// every node's export agree on it.
func (cl *Cluster) Reconfigure(c rt.Ctx, txs []NodeTx) error {
	byNode := make(map[int]NodeTx, len(txs))
	order := make([]int, 0, len(txs))
	for _, tx := range txs {
		if tx.Node < 0 || tx.Node >= len(cl.nodes) {
			return fmt.Errorf("cluster: Reconfigure: no node %d", tx.Node)
		}
		if _, dup := byNode[tx.Node]; dup {
			// Two transactions on one node would self-deadlock on its
			// admission guard; merge them in the caller instead.
			return fmt.Errorf("cluster: Reconfigure: duplicate transaction for node %d", tx.Node)
		}
		byNode[tx.Node] = tx
		order = append(order, tx.Node)
	}
	sortInts(order)

	prepared := make([]*core.PreparedReconfig, 0, len(order))
	abort := func() {
		for i := len(prepared) - 1; i >= 0; i-- {
			prepared[i].Abort(c)
		}
	}
	for _, id := range order {
		p, err := cl.nodes[id].app.PrepareReconfigure(c, byNode[id].Fn)
		if err != nil {
			abort()
			return &NodeError{Node: id, Err: err}
		}
		prepared = append(prepared, p)
	}

	epoch := cl.epoch.Add(1)
	for _, p := range prepared {
		p.Commit(c)
	}
	for _, n := range cl.nodes {
		if n.pipe != nil {
			n.pipe.Publish(telemetry.Event{Kind: telemetry.KindClusterEpoch,
				CEpoch: telemetry.ClusterEpochRecord{Epoch: epoch, At: n.NowNS()}})
		}
	}
	return nil
}

// sortInts is an insertion sort — transaction lists are a handful of
// nodes, not worth pulling in sort's interface machinery.
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
