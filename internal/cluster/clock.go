package cluster

import (
	"sync"
	"time"
)

// Clock is the per-node clock-discipline state: a PTP-style offset and
// drift estimator fed by two-way sync exchanges over the data plane's
// timestamped frames.
//
// The exchange is the classic one: the node sends a request carrying its
// local t1; the reference node answers with its receive time t2 and send
// time t3; the answer arrives at local t4. Assuming symmetric path
// delay, the node's offset to the reference clock is
//
//	offset = ((t2 - t1) + (t3 - t4)) / 2
//
// (positive: the reference clock is ahead of ours). Samples are smoothed
// with an EWMA, and consecutive smoothed samples yield a residual drift
// rate estimate. On SimEnv the node's "local clock" is env.Now() plus a
// configured skew, so tests can inject a known offset and assert the
// estimator recovers it.
type Clock struct {
	mu      sync.Mutex
	samples int
	offset  int64   // EWMA of the per-exchange offset, ns
	drift   float64 // residual drift, ns of offset change per second
	lastAt  int64   // local time of the previous sample, ns
	lastOff int64
}

// note folds one two-way exchange into the estimate. at is the node's
// local t4.
func (ck *Clock) note(offset, at int64) {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if ck.samples == 0 {
		ck.offset = offset
	} else {
		// EWMA with alpha = 1/4: jitter-resistant but still converging in
		// a handful of rounds after a step change.
		ck.offset += (offset - ck.offset) / 4
		if dt := at - ck.lastAt; dt > 0 {
			ck.drift = float64(ck.offset-ck.lastOff) / float64(dt) * float64(time.Second)
		}
	}
	ck.samples++
	ck.lastAt = at
	ck.lastOff = ck.offset
}

// Offset returns the estimated offset to the reference node's clock:
// add it to a local timestamp to express it in reference time. Zero
// until the first sync exchange completes.
func (ck *Clock) Offset() time.Duration {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return time.Duration(ck.offset)
}

// Drift returns the estimated residual drift in nanoseconds of offset
// change per second of local time (zero until two exchanges completed).
func (ck *Clock) Drift() float64 {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return ck.drift
}

// Samples returns the number of completed sync exchanges.
func (ck *Clock) Samples() int {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return ck.samples
}
