//yasmin:deterministic

package cluster

import (
	"math/rand"
	"sync"
)

// MemOpts configures the in-memory transport's fault injection.
type MemOpts struct {
	// Seed drives the loss/reorder decisions; the same seed over the same
	// send sequence reproduces the same faults (senders are serialized —
	// by the sim engine on SimEnv, by the transport's own lock otherwise).
	Seed int64
	// LossRate is the probability (0..1) of silently dropping a data
	// frame. Sync frames are never dropped — clock discipline tests its
	// estimator, not loss recovery.
	LossRate float64
	// ReorderRate is the probability (0..1) of holding a data frame back
	// one delivery: the next frame to the same destination jumps ahead of
	// it (a one-slot reorder, the minimal FIFO violation).
	ReorderRate float64
}

// MemTransport is the deterministic in-memory data plane for SimEnv
// clusters (all nodes share one engine, so "the network" is a function
// call). Delivery is synchronous on the sender's thread: the frame is
// parsed and pushed onto the destination's ingress shard ring, and the
// shard worker is unparked — from the sim's point of view the datagram
// arrives in the same instant it is sent, which keeps the virtual
// timeline honest while loss and reordering are injected above the
// rings.
//
// One MemTransport instance is shared by every node (NewMemTransport
// attaches itself), so injected faults are globally ordered by the
// transport lock and reproducible from the seed.
type MemTransport struct {
	mu   sync.Mutex
	cl   *Cluster
	rng  *rand.Rand
	opt  MemOpts
	held []*Frame // per-destination one-slot holdback, indexed by node id
}

// NewMemTransport builds the shared in-memory transport and attaches it
// to every node of the cluster. Call after all AddNode calls.
func NewMemTransport(cl *Cluster, opt MemOpts) *MemTransport {
	t := &MemTransport{
		cl:   cl,
		rng:  rand.New(rand.NewSource(opt.Seed)),
		opt:  opt,
		held: make([]*Frame, len(cl.nodes)),
	}
	for _, n := range cl.nodes {
		n.SetTransport(t)
	}
	return t
}

// Send delivers pkt to dst, applying the configured fault injection.
// The packet is parsed before returning (the caller reuses the buffer).
func (t *MemTransport) Send(dst int, pkt []byte) {
	f, err := ParseFrame(pkt)
	if err != nil {
		// Both ends of this transport are this process; a parse failure is
		// a codec bug, not a network condition.
		panic("cluster: mem transport: " + err.Error())
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	node := t.cl.nodes[dst]
	if f.Kind != FrameData {
		node.ingestFrame(f)
		return
	}
	if t.opt.LossRate > 0 && t.rng.Float64() < t.opt.LossRate {
		// The sim network is omniscient: the loss is recorded against the
		// destination so the replay checker can reconcile it, instead of
		// the frame simply never existing.
		node.noteInjectedLoss(&f)
		return
	}
	if held := t.held[dst]; held != nil {
		// A frame is waiting: the current one overtakes it, then the held
		// one follows — a one-slot reorder.
		t.held[dst] = nil
		node.ingestFrame(f)
		node.ingestFrame(*held)
		return
	}
	if t.opt.ReorderRate > 0 && t.rng.Float64() < t.opt.ReorderRate {
		hf := f
		t.held[dst] = &hf
		return
	}
	node.ingestFrame(f)
}

// Close accounts any still-held frames as injected losses: a frame in
// flight at shutdown never arrives, but it must not vanish from the
// books either (the replay checker reconciles every send against a
// receive or a recorded drop).
func (t *MemTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for dst, held := range t.held {
		if held != nil {
			t.held[dst] = nil
			t.cl.nodes[dst].noteInjectedLoss(held)
		}
	}
	return nil
}
