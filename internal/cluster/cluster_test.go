package cluster

import (
	"errors"
	"testing"
	"time"

	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/platform"
	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/sim"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// twoNodeRig co-hosts two independent App instances on one sim engine —
// the deterministic model of a 2-node cluster. Node i owns cores
// [i*(w+1), i*(w+1)+w): its scheduler core plus its workers, so the two
// middlewares never contend for a virtual CPU.
type twoNodeRig struct {
	eng  *sim.Engine
	env  *rt.SimEnv
	apps [2]*core.App
	cl   *Cluster
}

func newTwoNodeRig(t *testing.T, workers int) *twoNodeRig {
	t.Helper()
	eng := sim.NewEngine(42)
	env, err := rt.NewSimEnv(eng, platform.Generic(2*(workers+1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	r := &twoNodeRig{eng: eng, env: env, cl: New()}
	for i := 0; i < 2; i++ {
		base := i * (workers + 1)
		cores := make([]int, workers)
		for w := range cores {
			cores[w] = base + 1 + w
		}
		app, err := core.New(core.Config{
			Workers:       workers,
			SchedulerCore: base,
			WorkerCores:   cores,
			Priority:      core.PriorityEDF,
		}, env)
		if err != nil {
			t.Fatal(err)
		}
		r.apps[i] = app
	}
	return r
}

func (r *twoNodeRig) addNodes(t *testing.T, cfg func(i int) NodeConfig) [2]*Node {
	t.Helper()
	var nodes [2]*Node
	for i := 0; i < 2; i++ {
		c := cfg(i)
		c.App = r.apps[i]
		c.Env = r.env
		n, err := r.cl.AddNode(c)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	return nodes
}

// run drives both apps and the cluster from a single coordinator thread,
// stopping everything at the horizon. body runs right after both apps
// start.
func (r *twoNodeRig) run(t *testing.T, horizon time.Duration, body func(c rt.Ctx)) {
	t.Helper()
	if err := r.cl.Start(); err != nil {
		t.Fatal(err)
	}
	r.env.Spawn("coord", rt.UnpinnedCore, func(c rt.Ctx) {
		for _, app := range r.apps {
			if err := app.Start(c); err != nil {
				t.Errorf("Start: %v", err)
				return
			}
		}
		if body != nil {
			body(c)
		}
		c.SleepUntil(horizon)
		for _, app := range r.apps {
			app.Stop(c)
		}
		if err := r.cl.Close(); err != nil {
			t.Errorf("cluster close: %v", err)
		}
		for _, app := range r.apps {
			app.Cleanup(c)
		}
	})
	if err := r.eng.Run(sim.Time(horizon + 10*time.Second)); err != nil {
		t.Fatal(err)
	}
}

func TestFrameCodecRoundTrip(t *testing.T) {
	frames := []Frame{
		{Kind: FrameData, Origin: 3, Topic: "bus", Pub: 7, Seq: 42, Epoch: 2, SentAt: 123456789, Val: -99},
		{Kind: FrameData, Origin: 0, Topic: `odd"topic\n` + "\x01", Pub: 0, Seq: 1, Epoch: 0, SentAt: 0, Val: 0},
		{Kind: FrameSyncReq, Origin: 1, Epoch: 5, SentAt: 1_000_000},
		{Kind: FrameSyncResp, Origin: 0, Epoch: 5, SentAt: 1_000_500, T1: 1_000_000, T2: 1_000_400},
	}
	var buf []byte
	for i, f := range frames {
		buf = AppendFrame(buf[:0], &f)
		got, err := ParseFrame(buf)
		if err != nil {
			t.Fatalf("frame %d: parse: %v (wire %s)", i, err, buf)
		}
		if got != f {
			t.Errorf("frame %d: roundtrip\n got %+v\nwant %+v", i, got, f)
		}
	}
	if _, err := ParseFrame([]byte(`{"k":0,"zz":1}`)); err == nil {
		t.Error("unknown key must be an error")
	}
	if _, err := ParseFrame([]byte(`{"k":0,"o":`)); err == nil {
		t.Error("truncated frame must be an error")
	}
}

// declPub declares a periodic publisher pushing 1,2,3,... onto topic cid
// until quiesce, and returns a pointer to its publish count.
func declPub(t *testing.T, app *core.App, name string, cid core.CID, period, quiesce time.Duration) (core.TID, *int64) {
	t.Helper()
	count := new(int64)
	tid, err := app.TaskDecl(core.TData{Name: name, Period: period})
	if err != nil {
		t.Fatal(err)
	}
	_, err = app.VersionDecl(tid, func(x *core.ExecCtx, _ any) error {
		if x.Now() >= quiesce {
			return nil
		}
		*count++
		return x.Publish(cid, *count)
	}, nil, core.VSelect{})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.TopicPub(tid, cid); err != nil {
		t.Fatal(err)
	}
	return tid, count
}

// declSub declares a periodic draining subscriber on topic cid and
// returns a pointer to the values it took, in order.
func declSub(t *testing.T, app *core.App, name string, cid core.CID, period time.Duration) *[]int64 {
	t.Helper()
	got := new([]int64)
	tid, err := app.TaskDecl(core.TData{Name: name, Period: period})
	if err != nil {
		t.Fatal(err)
	}
	_, err = app.VersionDecl(tid, func(x *core.ExecCtx, _ any) error {
		for {
			v, ok, err := x.Take(cid)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			*got = append(*got, v.(int64))
		}
	}, nil, core.VSelect{})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.TopicSub(tid, cid); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestTwoNodeDataPlane: a publisher on node 0, subscribers on both
// nodes, lossless transport. Local and remote subscribers must both see
// every published value, in publish order.
func TestTwoNodeDataPlane(t *testing.T) {
	r := newTwoNodeRig(t, 1)
	tops := [2]core.CID{}
	for i, app := range r.apps {
		cid, err := app.TopicDecl("bus", core.TopicOpts{Capacity: 64, Policy: core.Reject})
		if err != nil {
			t.Fatal(err)
		}
		tops[i] = cid
	}
	_, published := declPub(t, r.apps[0], "pub", tops[0], ms(5), ms(400))
	local := declSub(t, r.apps[0], "sub-local", tops[0], ms(10))
	remote := declSub(t, r.apps[1], "sub-remote", tops[1], ms(10))

	nodes := r.addNodes(t, func(i int) NodeConfig {
		return NodeConfig{IngressCore: i * 2, Shards: 2}
	})
	NewMemTransport(r.cl, MemOpts{Seed: 1})
	if err := nodes[0].Topic("bus", []int{1}, false); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Topic("bus", nil, true); err != nil {
		t.Fatal(err)
	}
	r.run(t, ms(500), nil)

	if *published == 0 {
		t.Fatal("publisher never ran")
	}
	for name, got := range map[string]*[]int64{"local": local, "remote": remote} {
		if int64(len(*got)) != *published {
			t.Errorf("%s subscriber: %d values, want %d (lossless path)", name, len(*got), *published)
		}
		for i, v := range *got {
			if v != int64(i+1) {
				t.Fatalf("%s subscriber: value %d at position %d, want %d", name, v, i, i+1)
			}
		}
	}
	sa, sb := nodes[0].Stats(), nodes[1].Stats()
	if sa.FramesSent != uint64(*published) {
		t.Errorf("node 0 sent %d frames, want %d", sa.FramesSent, *published)
	}
	if sb.FramesReceived != uint64(*published) || sb.FramesDropped != 0 {
		t.Errorf("node 1 recv/drop = %d/%d, want %d/0", sb.FramesReceived, sb.FramesDropped, *published)
	}
	if sa.FramesRetransmitted != 0 {
		t.Errorf("retransmitted = %d on a best-effort plane", sa.FramesRetransmitted)
	}
}

// TestDataPlaneLossReorderFIFO: with injected loss and reordering, the
// remote subscriber may see gaps but never a per-publisher order
// inversion, and every sent frame is accounted as received or dropped.
func TestDataPlaneLossReorderFIFO(t *testing.T) {
	r := newTwoNodeRig(t, 1)
	tops := [2]core.CID{}
	for i, app := range r.apps {
		cid, err := app.TopicDecl("bus", core.TopicOpts{Capacity: 64, Policy: core.Reject})
		if err != nil {
			t.Fatal(err)
		}
		tops[i] = cid
	}
	_, published := declPub(t, r.apps[0], "pub", tops[0], ms(5), ms(400))
	// Drain the publisher's local buffer too, or it fills and rejects
	// publishes locally — this test is about the remote path.
	declSub(t, r.apps[0], "sub-local", tops[0], ms(10))
	remote := declSub(t, r.apps[1], "sub-remote", tops[1], ms(10))

	nodes := r.addNodes(t, func(i int) NodeConfig {
		return NodeConfig{IngressCore: i * 2}
	})
	NewMemTransport(r.cl, MemOpts{Seed: 7, LossRate: 0.2, ReorderRate: 0.2})
	if err := nodes[0].Topic("bus", []int{1}, false); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Topic("bus", nil, true); err != nil {
		t.Fatal(err)
	}
	r.run(t, ms(500), nil)

	if *published < 50 {
		t.Fatalf("published = %d, want ~80", *published)
	}
	prev := int64(0)
	for i, v := range *remote {
		if v <= prev {
			t.Fatalf("FIFO break at position %d: %d after %d", i, v, prev)
		}
		prev = v
	}
	sa, sb := nodes[0].Stats(), nodes[1].Stats()
	if sa.FramesSent != uint64(*published) {
		t.Errorf("node 0 sent %d frames, want %d published", sa.FramesSent, *published)
	}
	if got := sb.FramesReceived + sb.FramesDropped; got != sa.FramesSent {
		t.Errorf("node 1 accounts %d frames (recv %d + drop %d), want %d sent",
			got, sb.FramesReceived, sb.FramesDropped, sa.FramesSent)
	}
	if sb.InjectedLoss == 0 {
		t.Error("loss injection never fired at rate 0.2")
	}
	if int64(len(*remote)) != int64(sb.FramesReceived) {
		t.Errorf("subscriber took %d values, node delivered %d", len(*remote), sb.FramesReceived)
	}
	if int64(len(*remote)) >= *published {
		t.Errorf("no loss observed (%d of %d) despite 0.2 loss rate", len(*remote), *published)
	}
}

func declSpin(t *testing.T, app *core.App, name string, period, wcet time.Duration) {
	t.Helper()
	tid, err := app.TaskDecl(core.TData{Name: name, Period: period})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.VersionDecl(tid, func(x *core.ExecCtx, _ any) error {
		return x.Compute(wcet)
	}, nil, core.VSelect{WCET: wcet}); err != nil {
		t.Fatal(err)
	}
}

// TestClusterReconfigureTwoPhase: a cluster transaction infeasible on
// exactly one node must abort everywhere with a typed rejection naming
// that node; a feasible retry must commit everywhere at a common epoch.
func TestClusterReconfigureTwoPhase(t *testing.T) {
	r := newTwoNodeRig(t, 1)
	declSpin(t, r.apps[0], "base0", ms(10), ms(1))
	declSpin(t, r.apps[1], "base1", ms(10), ms(6))
	r.addNodes(t, func(i int) NodeConfig {
		return NodeConfig{IngressCore: i * 2}
	})
	NewMemTransport(r.cl, MemOpts{Seed: 1})

	addTask := func(name string, wcet time.Duration) func(tx *core.Reconfig) error {
		return func(tx *core.Reconfig) error {
			id, err := tx.AddTask(core.TData{Name: name, Period: ms(10)})
			if err != nil {
				return err
			}
			_, err = tx.AddVersion(id, func(x *core.ExecCtx, _ any) error {
				return x.Compute(wcet)
			}, nil, core.VSelect{WCET: wcet})
			return err
		}
	}

	r.run(t, ms(300), func(c rt.Ctx) {
		c.SleepUntil(ms(50))
		// Node 0 has headroom for 2ms/10ms; node 1 at 0.6 utilization
		// cannot absorb another 9ms/10ms. The whole transaction must
		// abort: node 0's prepared slot is released too.
		err := r.cl.Reconfigure(c, []NodeTx{
			{Node: 0, Fn: addTask("extra0", ms(2))},
			{Node: 1, Fn: addTask("greedy1", ms(9))},
		})
		if err == nil {
			t.Fatal("want cluster admission rejection")
		}
		var ne *NodeError
		if !errors.As(err, &ne) || ne.Node != 1 {
			t.Fatalf("err = %v, want *NodeError naming node 1", err)
		}
		if !errors.Is(err, core.ErrNotSchedulable) {
			t.Fatalf("err = %v, want ErrNotSchedulable through the node wrapper", err)
		}
		if r.cl.Epoch() != 0 {
			t.Errorf("cluster epoch = %d after abort, want 0", r.cl.Epoch())
		}
		for i, app := range r.apps {
			if app.Epoch() != 0 {
				t.Errorf("node %d app epoch = %d after abort, want 0", i, app.Epoch())
			}
		}
		if r.apps[0].TaskIDByName("extra0") >= 0 {
			t.Error("node 0's prepared task survived the cluster abort")
		}

		// Feasible everywhere: commits at a common new cluster epoch.
		err = r.cl.Reconfigure(c, []NodeTx{
			{Node: 0, Fn: addTask("extra0", ms(2))},
			{Node: 1, Fn: addTask("extra1", ms(1))},
		})
		if err != nil {
			t.Fatalf("feasible cluster reconfigure: %v", err)
		}
		if r.cl.Epoch() != 1 {
			t.Errorf("cluster epoch = %d after commit, want 1", r.cl.Epoch())
		}
		for i, app := range r.apps {
			if app.Epoch() != 1 {
				t.Errorf("node %d app epoch = %d after commit, want 1", i, app.Epoch())
			}
		}
	})

	for i, name := range []string{"extra0", "extra1"} {
		if st := r.apps[i].Recorder().Task(name); st == nil || st.Jobs == 0 {
			t.Errorf("%s never ran after cluster commit", name)
		}
	}
}

// TestClockDiscipline: node 1's simulated clock runs 3ms ahead of the
// reference; the estimator must recover the -3ms offset from two-way
// exchanges.
func TestClockDiscipline(t *testing.T) {
	r := newTwoNodeRig(t, 1)
	nodes := r.addNodes(t, func(i int) NodeConfig {
		cfg := NodeConfig{IngressCore: i * 2, SyncInterval: ms(5)}
		if i == 1 {
			cfg.ClockSkew = 3 * time.Millisecond
		}
		return cfg
	})
	NewMemTransport(r.cl, MemOpts{Seed: 1})
	r.run(t, ms(200), nil)

	ck := nodes[1].Clock()
	if ck.Samples() < 10 {
		t.Fatalf("only %d sync exchanges in 200ms at 5ms interval", ck.Samples())
	}
	off := ck.Offset()
	want := -3 * time.Millisecond
	if diff := off - want; diff < -100*time.Microsecond || diff > 100*time.Microsecond {
		t.Errorf("estimated offset %v, want %v ±100µs", off, want)
	}
	if d := ck.Drift(); d < -1e5 || d > 1e5 {
		t.Errorf("drift estimate %v ns/s, want ~0 (constant skew)", d)
	}
	if ref := nodes[0].Clock(); ref.Samples() != 0 {
		t.Errorf("reference node ran %d exchanges against itself", ref.Samples())
	}
}
