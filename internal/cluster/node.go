package cluster

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/lockfree"
	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/telemetry"
)

// NodeConfig describes one cluster member.
type NodeConfig struct {
	// App is the node's middleware instance (topics must be declared
	// before wiring; the app must not be started yet).
	App *core.App
	// Env is the node's execution environment. On SimEnv all nodes of a
	// cluster share one engine (one virtual timeline); on OSEnv each
	// node is its own process.
	Env rt.Env
	// Pipeline, when set, receives one telemetry event per frame action
	// (send/recv/drop) and per committed cluster epoch — the per-node
	// export stream scenario.CheckStreams reconciles.
	Pipeline *telemetry.Pipeline
	// IngressCore pins the ingress shard workers and the sync thread
	// (middleware overhead belongs next to the node's scheduler, not on
	// its worker cores). Use rt.UnpinnedCore on the OS backend.
	IngressCore int
	// Shards is the number of ingress receive workers (default 4). A
	// topic's frames always land on one shard, so per-publisher frame
	// order survives sharding.
	Shards int
	// ClockSkew is the simulated offset of this node's local clock from
	// the shared engine clock (SimEnv testing of clock discipline; leave
	// zero on OSEnv, where real clocks differ on their own).
	ClockSkew time.Duration
	// SyncInterval enables the clock-discipline thread: every interval
	// the node runs one two-way exchange against RefNode. Zero disables
	// (and RefNode itself never runs one).
	SyncInterval time.Duration
	// RefNode is the clock reference node id (default 0).
	RefNode int
}

// NodeStats is a snapshot of a node's data-plane counters.
type NodeStats struct {
	// FramesSent counts data frames handed to the transport (one per
	// destination node).
	FramesSent uint64 `json:"frames_sent"`
	// FramesReceived counts data frames delivered into local topics.
	FramesReceived uint64 `json:"frames_received"`
	// FramesDropped counts data frames rejected at ingress or lost by
	// the transport, in total; the Stale*/Injected/Rejected fields break
	// it down.
	FramesDropped uint64 `json:"frames_dropped"`
	// FramesRetransmitted counts retransmissions. The v1 data plane is
	// strictly best-effort (no retransmission protocol), so this is
	// always zero; the counter exists so the summary line and the JSON
	// schema stay stable when a reliability layer lands.
	FramesRetransmitted uint64 `json:"frames_retransmitted"`

	StaleSeq     uint64 `json:"stale_seq"`        // seq <= last delivered (loss/reorder/dup)
	StaleEpoch   uint64 `json:"stale_epoch"`      // frame from >= 2 epochs ago
	InjectedLoss uint64 `json:"injected_loss"`    // dropped by the transport's loss injection
	Rejected     uint64 `json:"rejected"`         // refused by the topic's overflow policy
	Unroutable   uint64 `json:"unroutable"`       // no local route for the topic
	NonInt64     uint64 `json:"non_int64"`        // local publishes not forwarded (payload type)
	Overflow     uint64 `json:"ingress_overflow"` // shard ring full

	// ClockOffsetNS is the estimated offset to the reference clock.
	ClockOffsetNS int64 `json:"clock_offset_ns"`
	// ClockSamples is the number of completed sync exchanges.
	ClockSamples int `json:"clock_samples"`
}

// route is one cross-node topic as seen from this node.
type route struct {
	name  string
	cid   core.CID
	dests []int    // remote nodes hosting subscribers (forwarding fan-out)
	seqs  []pubSeq // per-publisher frame state, indexed by local TID
}

// pubSeq is one local publisher's forwarding state. It is only ever
// touched on that publisher's thread (the forwarder runs on it), so the
// sequence counter and the encode scratch buffer need no lock.
type pubSeq struct {
	seq uint64
	buf []byte
}

// filterKey identifies one remote publisher stream at ingress.
type filterKey struct {
	origin int
	pub    int
	cid    core.CID
}

// shard is one ingress lane: an MPSC ring fed by the transport, drained
// by a dedicated worker thread. All frames of a topic hash to one shard,
// so the single-consumer worker can keep the per-publisher ordering
// filter in a plain map.
type shard struct {
	ring *lockfree.MPSCRing[Frame]
	th   rt.Thread
	last map[filterKey]uint64 // highest delivered seq per remote publisher
	buf  []byte               // sync-response encode scratch
}

// Node wires one core.App into the cluster: outbound, a forwarder on
// every cross-node topic turns successful local publishes into data
// frames; inbound, sharded ingress workers filter and inject received
// frames via core.RemotePublish. Steady-state forwarding runs on the
// publisher's own thread over the lock-free topicView — it never takes
// the app's lock.
type Node struct {
	id   int
	cl   *Cluster
	app  *core.App
	env  rt.Env
	pipe *telemetry.Pipeline
	cfg  NodeConfig

	tr     Transport
	routes map[string]*route
	shards []*shard
	clock  Clock

	closed  atomic.Bool
	started bool
	// running gates ingress. A wall-clock transport's read loop is live
	// from construction, so frames can arrive before Start has spawned the
	// shard workers; the Store in Start pairs with the Load in ingestFrame
	// to publish the shard-thread writes to the ingesting goroutine.
	running atomic.Bool

	sent, received, dropped                  atomic.Uint64
	staleSeq, staleEpoch, injected           atomic.Uint64
	rejected, unroutable, nonInt64, overflow atomic.Uint64
}

// ID returns the node id.
func (n *Node) ID() int { return n.id }

// App returns the node's middleware instance.
func (n *Node) App() *core.App { return n.app }

// Clock returns the node's clock-discipline state.
func (n *Node) Clock() *Clock { return &n.clock }

// NowNS returns the node-local clock: environment time plus the
// configured simulated skew.
func (n *Node) NowNS() int64 { return int64(n.env.Now() + n.cfg.ClockSkew) }

// SetTransport attaches the node's transport. Must happen before Start;
// NewMemTransport attaches itself to every node of the cluster.
func (n *Node) SetTransport(t Transport) { n.tr = t }

// Stats snapshots the node's data-plane counters.
func (n *Node) Stats() NodeStats {
	return NodeStats{
		FramesSent:     n.sent.Load(),
		FramesReceived: n.received.Load(),
		FramesDropped:  n.dropped.Load(),
		StaleSeq:       n.staleSeq.Load(),
		StaleEpoch:     n.staleEpoch.Load(),
		InjectedLoss:   n.injected.Load(),
		Rejected:       n.rejected.Load(),
		Unroutable:     n.unroutable.Load(),
		NonInt64:       n.nonInt64.Load(),
		Overflow:       n.overflow.Load(),
		ClockOffsetNS:  int64(n.clock.Offset()),
		ClockSamples:   n.clock.Samples(),
	}
}

// Topic wires one cross-node topic on this node. The topic must already
// be declared on the node's app under the same name (the cluster-wide
// namespace is by name; CIDs are node-local). dests lists the remote
// nodes hosting subscribers — every successful local publish is
// forwarded to each of them. remotePubs marks that other nodes publish
// into this topic, which provisions ingress (and, on the wall-clock
// backend, the topic's lock-free staging ring). Declaration-time only.
func (n *Node) Topic(name string, dests []int, remotePubs bool) error {
	if n.started {
		return fmt.Errorf("cluster: node %d: Topic after Start", n.id)
	}
	cid := n.app.TopicID(name)
	if cid < 0 {
		return fmt.Errorf("cluster: node %d: no local topic %q", n.id, name)
	}
	for _, d := range dests {
		if d < 0 || d >= len(n.cl.nodes) || d == n.id {
			return fmt.Errorf("cluster: node %d: topic %q: bad destination node %d", n.id, name, d)
		}
	}
	r := &route{
		name:  name,
		cid:   cid,
		dests: append([]int(nil), dests...),
		seqs:  make([]pubSeq, n.app.Config().MaxTasks),
	}
	n.routes[name] = r
	if len(dests) > 0 {
		if err := n.app.SetTopicForwarder(cid, func(pub core.TID, v any) {
			n.forward(r, pub, v)
		}); err != nil {
			return err
		}
	}
	if remotePubs {
		if err := n.app.MarkTopicRemote(cid); err != nil {
			return err
		}
	}
	return nil
}

// Start spawns the ingress shard workers and (when configured) the
// clock-sync thread. Call after every Topic wiring and after the
// transport is attached, before the environment runs.
func (n *Node) Start() error {
	if n.started {
		return fmt.Errorf("cluster: node %d already started", n.id)
	}
	if n.tr == nil {
		return fmt.Errorf("cluster: node %d has no transport", n.id)
	}
	n.started = true
	for i, sh := range n.shards {
		sh := sh
		sh.th = n.env.Spawn(fmt.Sprintf("cluster%d-shard%d", n.id, i), n.cfg.IngressCore,
			func(c rt.Ctx) { n.runShard(c, sh) })
	}
	if n.cfg.SyncInterval > 0 && n.id != n.cfg.RefNode {
		n.env.Spawn(fmt.Sprintf("cluster%d-sync", n.id), n.cfg.IngressCore,
			func(c rt.Ctx) { n.runSync(c) })
	}
	n.running.Store(true)
	return nil
}

// close stops the node's threads (idempotent; Cluster.Close drives it).
func (n *Node) close() {
	if n.closed.Swap(true) {
		return
	}
	n.running.Store(false)
	for _, sh := range n.shards {
		if sh.th != nil {
			sh.th.Interrupt()
			sh.th.Unpark()
		}
	}
}

// forward is the topic forwarder: runs on the publisher's thread, after
// a successful local publish, outside the app lock. Only int64 payloads
// cross nodes (see Frame); anything else is counted and stays local.
func (n *Node) forward(r *route, pub core.TID, v any) {
	iv, ok := v.(int64)
	if !ok {
		n.nonInt64.Add(1)
		return
	}
	ps := &r.seqs[pub]
	ps.seq++
	f := Frame{
		Kind:   FrameData,
		Origin: n.id,
		Topic:  r.name,
		Pub:    int(pub),
		Seq:    ps.seq,
		Epoch:  n.cl.epoch.Load(),
		SentAt: n.NowNS(),
		Val:    iv,
	}
	ps.buf = AppendFrame(ps.buf[:0], &f)
	for _, d := range r.dests {
		n.sent.Add(1)
		n.record(telemetry.FrameSend, &f, d, f.SentAt)
		n.tr.Send(d, ps.buf)
	}
}

// Ingest decodes one frame arriving from the transport and queues it on
// the responsible ingress shard. Callable from any thread or goroutine
// (the UDP reader, the sim transport's sending thread).
func (n *Node) Ingest(pkt []byte) error {
	f, err := ParseFrame(pkt)
	if err != nil {
		return err
	}
	n.ingestFrame(f)
	return nil
}

// ingestFrame routes a decoded frame onto its shard ring.
func (n *Node) ingestFrame(f Frame) {
	if !n.running.Load() {
		// Arrived before Start finished wiring the shards (or after close):
		// account it as a drop rather than touch half-built state.
		if f.Kind == FrameData {
			n.dropped.Add(1)
			n.record(telemetry.FrameDrop, &f, n.id, n.NowNS())
		}
		return
	}
	sh := n.shards[n.shardFor(f.Topic)]
	if !sh.ring.Push(f) {
		n.overflow.Add(1)
		if f.Kind == FrameData {
			n.dropped.Add(1)
			n.record(telemetry.FrameDrop, &f, n.id, n.NowNS())
		}
		return
	}
	sh.th.Unpark()
}

// shardFor maps a topic to its ingress shard. FNV-1a rather than
// hash/maphash: the per-process random maphash seed would make shard
// placement — and hence sim thread interleaving — differ between runs,
// breaking bit-for-bit scenario reproducibility.
func (n *Node) shardFor(topic string) int {
	if len(n.shards) == 1 {
		return 0
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(topic); i++ {
		h ^= uint64(topic[i])
		h *= 1099511628211
	}
	return int(h % uint64(len(n.shards)))
}

// runShard is one ingress worker: drain the ring, park when empty.
func (n *Node) runShard(c rt.Ctx, sh *shard) {
	for {
		for {
			f, ok := sh.ring.Pop()
			if !ok {
				break
			}
			n.deliver(c, sh, &f)
		}
		if n.closed.Load() {
			return
		}
		c.Park()
	}
}

// deliver applies the ingress discipline to one frame and hands data
// frames to the local topic.
//
//yasmin:noalloc
func (n *Node) deliver(c rt.Ctx, sh *shard, f *Frame) {
	switch f.Kind {
	case FrameSyncReq:
		// Reference side of the exchange: echo t1, stamp t2 (our receive
		// time) and t3 (our send time).
		now := n.NowNS()
		resp := Frame{
			Kind:   FrameSyncResp,
			Origin: n.id,
			Epoch:  n.cl.epoch.Load(),
			SentAt: now, // t3; receive-to-reply turnaround is zero-cost here
			T1:     f.SentAt,
			T2:     now,
		}
		sh.buf = AppendFrame(sh.buf[:0], &resp)
		n.tr.Send(f.Origin, sh.buf) //yasmin:alloc-ok transport egress is backend I/O
		return
	case FrameSyncResp:
		t4 := n.NowNS()
		offset := ((f.T2 - f.T1) + (f.SentAt - t4)) / 2
		n.clock.note(offset, t4)
		return
	}

	now := n.NowNS()
	// Epoch tolerance: the previous epoch's frames are still in flight
	// legitimately during a reconfiguration; anything older is stale
	// state from a configuration two commits ago and must not surface.
	if cur := n.cl.epoch.Load(); f.Epoch+1 < cur {
		n.staleEpoch.Add(1)
		n.dropped.Add(1)
		n.record(telemetry.FrameDrop, f, n.id, now)
		return
	}
	r := n.routes[f.Topic]
	if r == nil {
		n.unroutable.Add(1)
		n.dropped.Add(1)
		n.record(telemetry.FrameDrop, f, n.id, now)
		return
	}
	// Per-publisher ordering filter: deliveries are strictly monotonic
	// in the publisher's frame sequence. A lost frame's successors still
	// deliver (gaps are legal under loss); a reordered or duplicated
	// frame arriving behind a newer one is dropped here, so subscribers
	// never observe a per-publisher FIFO break.
	key := filterKey{origin: f.Origin, pub: f.Pub, cid: r.cid}
	if last, ok := sh.last[key]; ok && f.Seq <= last {
		n.staleSeq.Add(1)
		n.dropped.Add(1)
		n.record(telemetry.FrameDrop, f, n.id, now)
		return
	}
	sh.last[key] = f.Seq
	c.Charge(n.env.Costs().ChannelOp)
	if err := n.app.RemotePublish(c, r.cid, f.Val); err != nil {
		n.rejected.Add(1)
		n.dropped.Add(1)
		n.record(telemetry.FrameDrop, f, n.id, now)
		return
	}
	n.received.Add(1)
	n.record(telemetry.FrameRecv, f, n.id, now)
}

// noteInjectedLoss records a transport-level injected drop against this
// (destination) node — the sim transport is omniscient, so the loss is
// visible in the node's export instead of vanishing silently.
func (n *Node) noteInjectedLoss(f *Frame) {
	n.injected.Add(1)
	n.dropped.Add(1)
	n.record(telemetry.FrameDrop, f, n.id, n.NowNS())
}

// runSync is the clock-discipline thread: one two-way exchange per
// interval against the reference node.
func (n *Node) runSync(c rt.Ctx) {
	var buf []byte
	for {
		c.Sleep(n.cfg.SyncInterval)
		if n.closed.Load() {
			return
		}
		req := Frame{
			Kind:   FrameSyncReq,
			Origin: n.id,
			Epoch:  n.cl.epoch.Load(),
			SentAt: n.NowNS(), // t1
		}
		buf = AppendFrame(buf[:0], &req)
		n.tr.Send(n.cfg.RefNode, buf)
	}
}

// record publishes one frame telemetry event on the node's pipeline.
func (n *Node) record(dir telemetry.FrameDir, f *Frame, dst int, at int64) {
	if n.pipe == nil {
		return
	}
	n.pipe.Publish(telemetry.Event{Kind: telemetry.KindFrame, Frame: telemetry.FrameRecord{
		Dir:    dir,
		Origin: f.Origin,
		Dst:    dst,
		Topic:  f.Topic,
		Pub:    f.Pub,
		FSeq:   f.Seq,
		Epoch:  f.Epoch,
		SentAt: f.SentAt,
		At:     at,
	}})
}
