package cluster

import (
	"testing"
	"time"

	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/rt"
)

// TestUDPTransportLoopback runs the real datagram plane over localhost:
// two nodes on the OS environment, frame ingress through actual sockets,
// and a live clock-sync exchange recovering an injected skew. Timing
// assertions are loose — this is a wall-clock test.
func TestUDPTransportLoopback(t *testing.T) {
	env := rt.NewOSEnv()
	cl := New()
	var nodes [2]*Node
	for i := 0; i < 2; i++ {
		app, err := core.New(core.Config{Workers: 1}, env)
		if err != nil {
			t.Fatal(err)
		}
		cfg := NodeConfig{App: app, Env: env, IngressCore: rt.UnpinnedCore,
			Shards: 2, SyncInterval: 10 * time.Millisecond}
		if i == 1 {
			cfg.ClockSkew = 2 * time.Millisecond
		}
		n, err := cl.AddNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	var trs [2]*UDPTransport
	for i, n := range nodes {
		tr, err := NewUDPTransport(n, "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		trs[i] = tr
	}
	for i, tr := range trs {
		if err := tr.AddPeer(1-i, trs[1-i].LocalAddr().String()); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}

	// A data frame for an unwired topic must cross the socket, parse, and
	// be accounted as an unroutable drop on the receiver.
	f := Frame{Kind: FrameData, Origin: 0, Topic: "nowhere", Pub: 1, Seq: 1, Val: 7}
	trs[0].Send(1, AppendFrame(nil, &f))

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s := nodes[1].Stats()
		if s.Unroutable >= 1 && s.ClockSamples >= 3 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	s := nodes[1].Stats()
	if s.Unroutable != 1 || s.FramesDropped != 1 {
		t.Errorf("unroutable/dropped = %d/%d, want 1/1", s.Unroutable, s.FramesDropped)
	}
	if s.ClockSamples < 3 {
		t.Fatalf("only %d sync exchanges completed over UDP", s.ClockSamples)
	}
	// Node 1 runs 2ms ahead; loopback RTT is microseconds, so the
	// estimate should land near -2ms even on a loaded machine.
	off := time.Duration(s.ClockOffsetNS)
	if off > -500*time.Microsecond || off < -3500*time.Microsecond {
		t.Errorf("estimated offset %v, want ≈ -2ms", off)
	}

	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	env.Wait()
}
