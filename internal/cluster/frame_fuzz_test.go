package cluster

import (
	"bytes"
	"testing"
)

// FuzzParseFrame drives the hand-rolled wire codec with arbitrary bytes.
// Beyond crash-freedom, it checks that the canonical encoding is a fixed
// point: whatever ParseFrame accepts, re-encoding with AppendFrame and
// parsing again must produce byte-identical output. (Numeric overflow is
// covered too: decode wraps mod 2^64, which re-encoding preserves.)
func FuzzParseFrame(f *testing.F) {
	seeds := []Frame{
		{Kind: FrameData, Origin: 1, Topic: "sensor/a", Pub: 3, Seq: 7, Epoch: 2, SentAt: 123456, Val: -5},
		{Kind: FrameSyncReq, Origin: 0, Epoch: 1, SentAt: 999},
		{Kind: FrameSyncResp, Origin: 2, Epoch: 1, SentAt: 1500, T1: 1000, T2: 1200},
		{Kind: FrameData, Topic: "a\"b\\c\x01", Seq: 1},
	}
	for i := range seeds {
		f.Add(AppendFrame(nil, &seeds[i]))
	}
	f.Add([]byte(`{"k":`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"k":0,"zz":1}`))
	f.Add([]byte(`{"k":0,"t":"\u00zz"}`))
	f.Fuzz(func(t *testing.T, b []byte) {
		fr, err := ParseFrame(b)
		if err != nil {
			return
		}
		c1 := AppendFrame(nil, &fr)
		fr2, err := ParseFrame(c1)
		if err != nil {
			t.Fatalf("re-parse of canonical encoding %q failed: %v", c1, err)
		}
		c2 := AppendFrame(nil, &fr2)
		if !bytes.Equal(c1, c2) {
			t.Fatalf("canonical encoding is not a fixed point:\n c1=%q\n c2=%q", c1, c2)
		}
	})
}
