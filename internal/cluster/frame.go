package cluster

import (
	"fmt"

	"github.com/yasmin-rt/yasmin/internal/jsonenc"
)

// FrameKind tags the wire-frame variant.
type FrameKind uint8

// Frame kinds.
const (
	// FrameData carries one topic entry from its origin node to a node
	// hosting remote subscribers.
	FrameData FrameKind = iota
	// FrameSyncReq is a clock-discipline request: the sender's t1.
	FrameSyncReq
	// FrameSyncResp is the reference node's answer: the request's t1, the
	// server receive time t2, and the server send time t3 (SentAt).
	FrameSyncResp
)

// Frame is the compact wire unit of the data plane: one datagram (UDP
// transport) or one in-memory delivery (sim transport). Data frames
// carry the publisher's identity and a per-(origin,topic,pub) sequence
// number, so receivers can enforce per-publisher FIFO under loss and
// reordering without any retransmission protocol; the epoch stamp lets
// them reject deliveries from two reconfigurations ago; the send
// timestamp feeds the clock-discipline estimator. Payloads are int64 —
// the cluster data plane is a control/telemetry-grade channel, not a
// bulk serializer (richer payloads belong to an application codec above
// it).
type Frame struct {
	Kind   FrameKind
	Origin int    // origin node id
	Topic  string // topic name (cluster-wide namespace); data frames only
	Pub    int    // publisher task id on the origin node; data frames only
	Seq    uint64 // per-(origin,topic,pub) sequence, 1-based; data frames only
	Epoch  uint64 // cluster epoch at send time
	SentAt int64  // sender-local send timestamp (ns since env start)
	Val    int64  // payload (data); t1 rides SentAt for sync requests
	T1, T2 int64  // sync exchange echoes (FrameSyncResp only)
}

// AppendFrame appends f as one JSON object (no trailing newline) and
// returns the extended buffer — the same zero-alloc append style as the
// telemetry exporter, built on the shared internal/jsonenc helpers.
// Sync frames elide the topic fields; data frames elide t1/t2.
//
//yasmin:noalloc
func AppendFrame(b []byte, f *Frame) []byte {
	b = jsonenc.AppendDec(append(b, `{"k":`...), uint64(f.Kind))
	b = jsonenc.AppendSigned(append(b, `,"o":`...), int64(f.Origin))
	if f.Kind == FrameData {
		b = jsonenc.AppendString(append(b, `,"t":`...), f.Topic)
		b = jsonenc.AppendSigned(append(b, `,"p":`...), int64(f.Pub))
		b = jsonenc.AppendDec(append(b, `,"q":`...), f.Seq)
	}
	b = jsonenc.AppendDec(append(b, `,"e":`...), f.Epoch)
	b = jsonenc.AppendSigned(append(b, `,"s":`...), f.SentAt)
	if f.Kind == FrameData {
		b = jsonenc.AppendSigned(append(b, `,"v":`...), f.Val)
	}
	if f.Kind == FrameSyncResp {
		b = jsonenc.AppendSigned(append(b, `,"t1":`...), f.T1)
		b = jsonenc.AppendSigned(append(b, `,"t2":`...), f.T2)
	}
	return append(b, '}')
}

// ParseFrame decodes one encoded frame. The parser is hand-rolled
// against exactly the shape AppendFrame writes (flat object, known
// keys) so the ingress hot path never touches encoding/json; unknown
// keys are an error — the schema is versioned by construction.
func ParseFrame(b []byte) (Frame, error) {
	var f Frame
	p := frameParser{b: b}
	if err := p.expect('{'); err != nil {
		return f, err
	}
	for {
		key, err := p.str()
		if err != nil {
			return f, err
		}
		if err := p.expect(':'); err != nil {
			return f, err
		}
		switch key {
		case "k":
			n, err := p.num()
			if err != nil {
				return f, err
			}
			f.Kind = FrameKind(n)
		case "o":
			n, err := p.num()
			if err != nil {
				return f, err
			}
			f.Origin = int(n)
		case "t":
			s, err := p.str()
			if err != nil {
				return f, err
			}
			f.Topic = s
		case "p":
			n, err := p.num()
			if err != nil {
				return f, err
			}
			f.Pub = int(n)
		case "q":
			n, err := p.num()
			if err != nil {
				return f, err
			}
			f.Seq = uint64(n)
		case "e":
			n, err := p.num()
			if err != nil {
				return f, err
			}
			f.Epoch = uint64(n)
		case "s":
			n, err := p.num()
			if err != nil {
				return f, err
			}
			f.SentAt = n
		case "v":
			n, err := p.num()
			if err != nil {
				return f, err
			}
			f.Val = n
		case "t1":
			n, err := p.num()
			if err != nil {
				return f, err
			}
			f.T1 = n
		case "t2":
			n, err := p.num()
			if err != nil {
				return f, err
			}
			f.T2 = n
		default:
			return f, fmt.Errorf("cluster: frame: unknown key %q", key)
		}
		c, err := p.next()
		if err != nil {
			return f, err
		}
		if c == '}' {
			return f, nil
		}
		if c != ',' {
			return f, fmt.Errorf("cluster: frame: expected ',' or '}', got %q", c)
		}
	}
}

// frameParser is the minimal scanner behind ParseFrame. The encoder
// emits no whitespace, so none is skipped.
type frameParser struct {
	b []byte
	i int
}

func (p *frameParser) next() (byte, error) {
	if p.i >= len(p.b) {
		return 0, fmt.Errorf("cluster: frame: truncated at byte %d", p.i)
	}
	c := p.b[p.i]
	p.i++
	return c, nil
}

func (p *frameParser) expect(want byte) error {
	c, err := p.next()
	if err != nil {
		return err
	}
	if c != want {
		return fmt.Errorf("cluster: frame: expected %q at byte %d, got %q", want, p.i-1, c)
	}
	return nil
}

// str parses a JSON string literal, handling the escapes our encoder
// produces (\", \\, \u00XX). The unescaped common case returns a
// zero-copy slice view converted once.
func (p *frameParser) str() (string, error) {
	if err := p.expect('"'); err != nil {
		return "", err
	}
	start := p.i
	esc := false
	for p.i < len(p.b) {
		c := p.b[p.i]
		if c == '"' {
			raw := p.b[start:p.i]
			p.i++
			if !esc {
				return string(raw), nil
			}
			return unescape(raw)
		}
		if c == '\\' {
			esc = true
			p.i += 2
			continue
		}
		p.i++
	}
	return "", fmt.Errorf("cluster: frame: unterminated string")
}

func unescape(raw []byte) (string, error) {
	out := make([]byte, 0, len(raw))
	for i := 0; i < len(raw); i++ {
		c := raw[i]
		if c != '\\' {
			out = append(out, c)
			continue
		}
		i++
		if i >= len(raw) {
			return "", fmt.Errorf("cluster: frame: dangling escape")
		}
		switch raw[i] {
		case '"', '\\', '/':
			out = append(out, raw[i])
		case 'u':
			if i+4 >= len(raw) {
				return "", fmt.Errorf("cluster: frame: truncated \\u escape")
			}
			var v byte
			for _, h := range raw[i+1 : i+5] {
				v <<= 4
				switch {
				case h >= '0' && h <= '9':
					v |= h - '0'
				case h >= 'a' && h <= 'f':
					v |= h - 'a' + 10
				case h >= 'A' && h <= 'F':
					v |= h - 'A' + 10
				default:
					return "", fmt.Errorf("cluster: frame: bad \\u escape")
				}
			}
			out = append(out, v)
			i += 4
		default:
			return "", fmt.Errorf("cluster: frame: unknown escape \\%c", raw[i])
		}
	}
	return string(out), nil
}

// num parses a (possibly signed) decimal integer.
func (p *frameParser) num() (int64, error) {
	neg := false
	if p.i < len(p.b) && p.b[p.i] == '-' {
		neg = true
		p.i++
	}
	start := p.i
	var v int64
	for p.i < len(p.b) {
		c := p.b[p.i]
		if c < '0' || c > '9' {
			break
		}
		v = v*10 + int64(c-'0')
		p.i++
	}
	if p.i == start {
		return 0, fmt.Errorf("cluster: frame: expected number at byte %d", start)
	}
	if neg {
		v = -v
	}
	return v, nil
}
