package sim

import (
	"fmt"
	"testing"
	"time"
)

func TestSleepAdvancesTime(t *testing.T) {
	e := NewEngine(1)
	var woke Time
	e.Spawn("sleeper", func(p *Proc) {
		intr, rem := p.Sleep(10 * time.Millisecond)
		if intr {
			t.Error("unexpected interrupt")
		}
		if rem != 0 {
			t.Errorf("remaining = %v, want 0", rem)
		}
		woke = p.Now()
	})
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if woke != Time(10*time.Millisecond) {
		t.Errorf("woke at %v, want 10ms", woke)
	}
	if e.Now() != woke {
		t.Errorf("engine now %v, want %v", e.Now(), woke)
	}
}

func TestEventOrderingFIFOAtSameInstant(t *testing.T) {
	e := NewEngine(1)
	var order []string
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("p%d", i)
		e.Spawn(name, func(p *Proc) {
			p.Sleep(time.Millisecond) // all wake at the same instant
			order = append(order, p.Name())
		})
	}
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	want := []string{"p0", "p1", "p2", "p3", "p4"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		e := NewEngine(42)
		var log []string
		for i := 0; i < 4; i++ {
			e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
				for j := 0; j < 3; j++ {
					d := time.Duration(e.Rand().Intn(1000)) * time.Microsecond
					p.Sleep(d)
					log = append(log, fmt.Sprintf("%s@%v", p.Name(), p.Now()))
				}
			})
		}
		if err := e.RunUntilIdle(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestParkUnpark(t *testing.T) {
	e := NewEngine(1)
	var got Time
	var waiter *Proc
	waiter = e.Spawn("waiter", func(p *Proc) {
		if intr := p.Park(); intr {
			t.Error("park was interrupted")
		}
		got = p.Now()
	})
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		p.Unpark(waiter)
	})
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if got != Time(5*time.Millisecond) {
		t.Errorf("woken at %v, want 5ms", got)
	}
}

func TestStickyUnparkPreventsLostWakeup(t *testing.T) {
	e := NewEngine(1)
	var woke bool
	var worker *Proc
	worker = e.Spawn("worker", func(p *Proc) {
		p.Sleep(2 * time.Millisecond) // busy while the unpark arrives
		if intr := p.Park(); intr {
			t.Error("interrupted")
		}
		woke = true
	})
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(time.Millisecond)
		p.Unpark(worker) // worker still sleeping, token must stick
	})
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !woke {
		t.Error("worker never woke: unpark token lost")
	}
}

func TestInterruptCutsSleep(t *testing.T) {
	e := NewEngine(1)
	var rem time.Duration
	var intr bool
	var at Time
	var sleeper *Proc
	sleeper = e.Spawn("sleeper", func(p *Proc) {
		intr, rem = p.Sleep(100 * time.Millisecond)
		at = p.Now()
	})
	e.Spawn("killer", func(p *Proc) {
		p.Sleep(30 * time.Millisecond)
		p.Interrupt(sleeper)
	})
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !intr {
		t.Fatal("sleep was not interrupted")
	}
	if at != Time(30*time.Millisecond) {
		t.Errorf("interrupted at %v, want 30ms", at)
	}
	if rem != 70*time.Millisecond {
		t.Errorf("remaining = %v, want 70ms", rem)
	}
}

func TestInterruptCutsCompute(t *testing.T) {
	e := NewEngine(1)
	var rem time.Duration
	var intr bool
	var victim *Proc
	victim = e.Spawn("victim", func(p *Proc) {
		intr, rem = p.Compute(10 * time.Millisecond)
	})
	e.Spawn("preempter", func(p *Proc) {
		p.Sleep(4 * time.Millisecond)
		p.Interrupt(victim)
	})
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !intr || rem != 6*time.Millisecond {
		t.Errorf("intr=%v rem=%v, want true/6ms", intr, rem)
	}
}

func TestChargeIsNotInterruptible(t *testing.T) {
	e := NewEngine(1)
	var seq []string
	var victim *Proc
	victim = e.Spawn("victim", func(p *Proc) {
		p.Charge(10 * time.Millisecond)
		seq = append(seq, fmt.Sprintf("charge-done@%v", p.Now()))
		intr, _ := p.Sleep(time.Second)
		seq = append(seq, fmt.Sprintf("sleep-intr=%v@%v", intr, p.Now()))
	})
	e.Spawn("sig", func(p *Proc) {
		p.Sleep(3 * time.Millisecond)
		p.Interrupt(victim)
	})
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	want0 := "charge-done@10ms"
	want1 := "sleep-intr=true@10ms" // pending interrupt delivered at next wait
	if len(seq) != 2 || seq[0] != want0 || seq[1] != want1 {
		t.Errorf("seq = %v, want [%s %s]", seq, want0, want1)
	}
}

func TestInterruptPendingOnRunning(t *testing.T) {
	e := NewEngine(1)
	var intr bool
	target := e.Spawn("target", func(p *Proc) {
		// Immediately receive the pending interrupt at the first wait.
		intr, _ = p.Sleep(time.Hour)
	})
	// Interrupt before the process first runs: it is in StateNew.
	e.Interrupt(target)
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !intr {
		t.Error("pending interrupt not delivered at first wait")
	}
}

func TestEngineCallbacksAndStop(t *testing.T) {
	e := NewEngine(1)
	calls := 0
	e.At(Time(time.Millisecond), func() { calls++ })
	e.At(Time(2*time.Millisecond), func() { calls++; e.Stop() })
	e.At(Time(3*time.Millisecond), func() { calls++ })
	if err := e.Run(Infinity); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("calls = %d, want 2 (Stop must halt the run)", calls)
	}
	if e.Now() != Time(2*time.Millisecond) {
		t.Errorf("now = %v, want 2ms", e.Now())
	}
}

func TestRunUntilBound(t *testing.T) {
	e := NewEngine(1)
	var last Time
	e.Spawn("ticker", func(p *Proc) {
		for {
			p.Sleep(time.Millisecond)
			last = p.Now()
		}
	})
	if err := e.Run(Time(10*time.Millisecond + 500*time.Microsecond)); err != nil {
		t.Fatal(err)
	}
	if last != Time(10*time.Millisecond) {
		t.Errorf("last tick %v, want 10ms", last)
	}
}

func TestStepLimit(t *testing.T) {
	e := NewEngine(1)
	e.SetStepLimit(10)
	e.Spawn("spinner", func(p *Proc) {
		for {
			p.Sleep(time.Nanosecond)
		}
	})
	err := e.Run(Infinity)
	if err == nil {
		t.Fatal("expected step-limit error")
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("stuck", func(p *Proc) {
		p.Park() // never unparked
	})
	err := e.RunUntilIdle()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("bomber", func(p *Proc) {
		p.Sleep(time.Millisecond)
		panic("boom")
	})
	err := e.RunUntilIdle()
	if err == nil {
		t.Fatal("expected panic to surface as error")
	}
}

func TestSpawnFromProcess(t *testing.T) {
	e := NewEngine(1)
	var childAt Time
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(time.Millisecond)
		p.Spawn("child", func(c *Proc) {
			c.Sleep(time.Millisecond)
			childAt = c.Now()
		})
		p.Sleep(5 * time.Millisecond)
	})
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if childAt != Time(2*time.Millisecond) {
		t.Errorf("child finished at %v, want 2ms", childAt)
	}
}

func TestMutexFIFOHandoff(t *testing.T) {
	e := NewEngine(1)
	var mu Mutex
	var order []string
	hold := func(name string, start, dur time.Duration) {
		e.Spawn(name, func(p *Proc) {
			p.Sleep(start)
			mu.Lock(p)
			order = append(order, p.Name())
			p.Sleep(dur)
			mu.Unlock(p)
		})
	}
	hold("a", 0, 10*time.Millisecond)
	hold("b", 1*time.Millisecond, time.Millisecond)
	hold("c", 2*time.Millisecond, time.Millisecond)
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSpinMutexChargesContention(t *testing.T) {
	e := NewEngine(1)
	lock := &SpinMutex{}
	var spun time.Duration
	e.Spawn("holder", func(p *Proc) {
		lock.Lock(p)
		p.Sleep(time.Millisecond)
		lock.Unlock(p)
	})
	e.Spawn("contender", func(p *Proc) {
		p.Sleep(100 * time.Microsecond)
		spun = lock.Lock(p)
		lock.Unlock(p)
	})
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if spun < 800*time.Microsecond {
		t.Errorf("contender spun only %v, expected ~900µs of burn", spun)
	}
	spins, acquires := lock.Stats()
	if spins == 0 || acquires != 2 {
		t.Errorf("stats spins=%d acquires=%d", spins, acquires)
	}
}

func TestBarrier(t *testing.T) {
	e := NewEngine(1)
	b := NewBarrier(3)
	var releasedAt []Time
	for i := 0; i < 3; i++ {
		delay := time.Duration(i+1) * time.Millisecond
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(delay)
			b.Await(p)
			releasedAt = append(releasedAt, p.Now())
		})
	}
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(releasedAt) != 3 {
		t.Fatalf("released %d, want 3", len(releasedAt))
	}
	for _, at := range releasedAt {
		if at != Time(3*time.Millisecond) {
			t.Errorf("released at %v, want 3ms (all together)", at)
		}
	}
}

func TestWaitQSignalOrder(t *testing.T) {
	e := NewEngine(1)
	var q WaitQ
	var order []string
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(time.Duration(p.ID()) * time.Millisecond)
			q.Wait(p)
			order = append(order, p.Name())
		})
	}
	e.Spawn("signaller", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		for i := 0; i < 3; i++ {
			q.Signal(p.Engine())
			p.Sleep(time.Millisecond)
		}
	})
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	want := []string{"w0", "w1", "w2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestInterruptParked(t *testing.T) {
	e := NewEngine(1)
	var intr bool
	var target *Proc
	target = e.Spawn("parked", func(p *Proc) {
		intr = p.Park()
	})
	e.Spawn("sig", func(p *Proc) {
		p.Sleep(time.Millisecond)
		p.Interrupt(target)
	})
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !intr {
		t.Error("parked process not interrupted")
	}
}

func TestMaskedInterruptStaysPending(t *testing.T) {
	e := NewEngine(1)
	var first, second bool
	var target *Proc
	target = e.Spawn("masked", func(p *Proc) {
		p.MaskInterrupts()
		first, _ = p.Sleep(10 * time.Millisecond) // must not be interrupted
		p.UnmaskInterrupts()
		second, _ = p.Sleep(10 * time.Millisecond) // pending intr fires here
	})
	e.Spawn("sig", func(p *Proc) {
		p.Sleep(time.Millisecond)
		p.Interrupt(target)
	})
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if first {
		t.Error("masked sleep was interrupted")
	}
	if !second {
		t.Error("pending interrupt was lost after unmask")
	}
}

func TestTimeString(t *testing.T) {
	if got := Time(1500 * time.Microsecond).String(); got != "1.5ms" {
		t.Errorf("String() = %q, want 1.5ms", got)
	}
}
