// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine executes simulated processes in lock-step: exactly one process
// runs at any instant, and virtual time only advances when every process is
// blocked in a simulation primitive (Sleep, Park, Compute, ...). Processes
// are backed by goroutines, but the engine serialises them completely, so
// code running inside processes needs no synchronisation and every run with
// the same seed is bit-for-bit reproducible.
//
// The engine is the substrate for all virtual-time experiments in this
// repository: the YASMIN middleware, the Mollison & Anderson baseline, the
// kernel latency models, cyclictest and the SAR drone application all run as
// sim processes.
//yasmin:deterministic package

package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"time"
)

// Time is a virtual-time instant in nanoseconds since the start of the
// simulation. It is distinct from time.Time on purpose: virtual instants are
// unrelated to the wall clock.
type Time int64

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts the instant into the duration elapsed since time zero.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the instant as a duration since simulation start.
func (t Time) String() string { return time.Duration(t).String() }

// Infinity is a time later than any reachable simulation instant.
const Infinity Time = 1<<63 - 1

type resumeKind int

const (
	resumeNormal resumeKind = iota + 1
	resumeInterrupt
)

// event is a scheduled occurrence in the event heap. Exactly one of proc or
// fn is set: proc events resume a blocked process, fn events run a callback
// inline on the engine loop.
type event struct {
	at    Time
	seq   uint64 // tie-break: FIFO among same-instant events
	proc  *Proc
	kind  resumeKind
	fn    func()
	index int  // heap index, -1 when popped
	dead  bool // cancelled
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation engine. The zero value is not usable;
// create engines with NewEngine.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	rng     *rand.Rand
	procs   []*Proc
	live    int
	current *Proc
	yield   chan struct{} // process -> engine: "I am blocked again"
	failure error
	nsteps  uint64
	maxStep uint64
	running bool
	stopped bool
	tracer  func(t Time, format string, args ...any)

	// until is the bound of the Run call in progress; Charge may advance
	// e.now inline (no event) up to this instant when the heap cannot
	// observe the skip. fastCharges counts those inline advances so the
	// step limit still bounds total work.
	until       Time
	fastCharges uint64

	// free recycles event structs. An event leaves all reachable references
	// when it is popped from the heap (step) or removed by cancel — the
	// engine is single-threaded, and the only external holder, Proc.wake,
	// is cleared or overwritten before the next schedule call can reuse the
	// struct — so recycling there makes the event path allocation-free in
	// steady state.
	free []*event
}

// NewEngine creates an engine with a deterministic random source derived from
// seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rng:     rand.New(rand.NewSource(seed)),
		yield:   make(chan struct{}),
		maxStep: 1 << 40,
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. It must only be used
// from process context or between runs, never concurrently.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Steps returns the number of events dispatched so far.
func (e *Engine) Steps() uint64 { return e.nsteps }

// FastCharges returns the number of Charge calls that advanced virtual time
// inline without dispatching an event.
func (e *Engine) FastCharges() uint64 { return e.fastCharges }

// SetTracer installs a debug tracer invoked on engine-level events.
func (e *Engine) SetTracer(fn func(t Time, format string, args ...any)) { e.tracer = fn }

// Tracef emits a debug trace line if a tracer is installed.
func (e *Engine) Tracef(format string, args ...any) {
	if e.tracer != nil {
		e.tracer(e.now, format, args...)
	}
}

// SetStepLimit bounds the number of dispatched events; exceeding the bound
// makes Run return ErrStepLimit. It guards against runaway simulations.
func (e *Engine) SetStepLimit(n uint64) { e.maxStep = n }

func (e *Engine) schedule(at Time, p *Proc, kind resumeKind, fn func()) *event {
	if at < e.now {
		at = e.now
	}
	e.seq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		*ev = event{at: at, seq: e.seq, proc: p, kind: kind, fn: fn}
	} else {
		ev = &event{at: at, seq: e.seq, proc: p, kind: kind, fn: fn}
	}
	heap.Push(&e.events, ev)
	return ev
}

// recycle returns an event no longer referenced by the heap to the free
// list. Callers must guarantee the event was just popped or removed.
func (e *Engine) recycle(ev *event) {
	ev.proc = nil
	ev.fn = nil
	e.free = append(e.free, ev)
}

func (e *Engine) cancel(ev *event) {
	if ev == nil || ev.dead {
		return
	}
	ev.dead = true
	if ev.index >= 0 {
		heap.Remove(&e.events, ev.index)
		e.recycle(ev)
	}
}

// At schedules fn to run on the engine loop at instant t. fn runs outside any
// process; it must not block.
func (e *Engine) At(t Time, fn func()) { e.schedule(t, nil, resumeNormal, fn) }

// After schedules fn to run d after the current instant.
func (e *Engine) After(d time.Duration, fn func()) { e.At(e.now.Add(d), fn) }

// ProcState describes what a process is currently doing.
type ProcState int

// Process states.
const (
	StateNew ProcState = iota + 1
	StateRunning
	StateSleeping
	StateParked
	StateComputing
	StateDone
)

var procStateNames = map[ProcState]string{
	StateNew:       "new",
	StateRunning:   "running",
	StateSleeping:  "sleeping",
	StateParked:    "parked",
	StateComputing: "computing",
	StateDone:      "done",
}

func (s ProcState) String() string {
	if n, ok := procStateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("ProcState(%d)", int(s))
}

// Proc is a simulated process. Blocking methods (Sleep, Park, Compute, Yield)
// must be called from the process's own goroutine, i.e. from inside the
// function passed to Spawn. Name, State, Done, Unpark and Interrupt may be
// called from any simulation context (another process or an engine callback);
// nothing in this package may be called from goroutines outside the engine.
type Proc struct {
	eng        *Engine
	name       string
	resume     chan resumeKind
	state      ProcState
	wake       *event // the sole event allowed to resume this process
	interrupts int    // pending interrupt count
	intrMasked bool
	unparked   bool // sticky unpark token
	done       bool
	id         int
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// ID returns the process's creation index within its engine.
func (p *Proc) ID() int { return p.id }

// State returns the current process state. Only meaningful between engine
// steps (e.g. from engine callbacks or other processes).
func (p *Proc) State() ProcState { return p.state }

// Done reports whether the process function has returned.
func (p *Proc) Done() bool { return p.done }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// ErrStepLimit is returned by Run when the configured step limit is exceeded.
var ErrStepLimit = errors.New("sim: step limit exceeded")

// ErrDeadlock is returned by RunUntilIdle when live processes remain but no
// events are pending (every process is parked forever).
var ErrDeadlock = errors.New("sim: deadlock: live processes but no pending events")

// Spawn creates a process named name running fn, starting at the current
// instant (process-side variant).
func (p *Proc) Spawn(name string, fn func(p *Proc)) *Proc { return p.eng.Spawn(name, fn) }

// Spawn creates a process starting at the current instant.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, fn)
}

// SpawnAt creates a process that begins execution at instant t.
func (e *Engine) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan resumeKind),
		state:  StateNew,
		id:     len(e.procs),
	}
	e.procs = append(e.procs, p)
	e.live++
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if e.failure == nil {
					e.failure = fmt.Errorf("sim: process %q panicked: %v\n%s", p.name, r, debug.Stack())
				}
				p.state = StateDone
				p.done = true
				e.live--
				e.yield <- struct{}{}
			}
		}()
		<-p.resume
		p.state = StateRunning
		fn(p)
		p.state = StateDone
		p.done = true
		e.live--
		e.yield <- struct{}{}
	}()
	p.wake = e.schedule(t, p, resumeNormal, nil)
	return p
}

// step dispatches a single event. Returns false when the heap is empty.
func (e *Engine) step() (bool, error) {
	if e.failure != nil {
		return false, e.failure
	}
	if len(e.events) == 0 {
		return false, nil
	}
	e.nsteps++
	if e.nsteps > e.maxStep {
		return false, ErrStepLimit
	}
	ev := heap.Pop(&e.events).(*event)
	if ev.dead {
		// Cancelled events are removed (and recycled) by cancel itself, so a
		// dead event cannot reach here; do not recycle it twice.
		return true, nil
	}
	if ev.at > e.now {
		e.now = ev.at
	}
	if ev.fn != nil {
		fn := ev.fn
		e.recycle(ev)
		fn()
		return true, e.failure
	}
	p := ev.proc
	if p == nil || p.done || p.wake != ev {
		// Stale resume: the process has since blocked on something else
		// (or finished). Drop it.
		e.recycle(ev)
		return true, nil
	}
	p.wake = nil
	kind := ev.kind
	e.recycle(ev)
	e.current = p
	p.resume <- kind
	<-e.yield
	e.current = nil
	return true, e.failure
}

// Run executes events until the given instant (inclusive), until no events
// remain, or until Stop is called. It returns the first process failure, if
// any.
func (e *Engine) Run(until Time) error {
	if e.running {
		return errors.New("sim: Run called re-entrantly")
	}
	e.running = true
	e.stopped = false
	e.until = until
	defer func() { e.running = false }()
	for {
		if e.stopped {
			return e.failure
		}
		if len(e.events) == 0 {
			return e.failure
		}
		if e.events[0].at > until {
			if until != Infinity {
				e.now = until
			}
			return e.failure
		}
		ok, err := e.step()
		if err != nil {
			return err
		}
		if !ok {
			return e.failure
		}
	}
}

// RunUntilIdle executes events until none remain. If live processes remain
// parked with no pending events, it returns ErrDeadlock.
func (e *Engine) RunUntilIdle() error {
	if err := e.Run(Infinity); err != nil {
		return err
	}
	if e.live > 0 {
		return fmt.Errorf("%w (%d live)", ErrDeadlock, e.live)
	}
	return nil
}

// Stop makes Run return after the current event completes. Safe to call from
// process context.
func (e *Engine) Stop() { e.stopped = true }

// block parks the calling process goroutine and hands control back to the
// engine loop; it returns the resume kind delivered by the engine.
func (p *Proc) block() resumeKind {
	p.eng.yield <- struct{}{}
	return <-p.resume
}

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// checkPending consumes a pending interrupt, if any. Returns true when an
// interrupt was pending.
func (p *Proc) checkPending() bool {
	if p.interrupts > 0 && !p.intrMasked {
		p.interrupts--
		return true
	}
	return false
}

// MaskInterrupts suppresses interrupt delivery; interrupts stay pending.
func (p *Proc) MaskInterrupts() { p.intrMasked = true }

// UnmaskInterrupts re-enables interrupt delivery.
func (p *Proc) UnmaskInterrupts() { p.intrMasked = false }

// InterruptsPending reports whether an interrupt is queued on p.
func (p *Proc) InterruptsPending() bool { return p.interrupts > 0 }

// Sleep suspends the process for d of virtual time, modelling an idle wait.
// It returns interrupted=true if the sleep was cut short by an interrupt,
// with the remaining duration.
func (p *Proc) Sleep(d time.Duration) (interrupted bool, remaining time.Duration) {
	return p.sleepUntil(p.eng.now.Add(d), StateSleeping)
}

// SleepUntil suspends the process until instant t or until interrupted.
func (p *Proc) SleepUntil(t Time) (interrupted bool, remaining time.Duration) {
	return p.sleepUntil(t, StateSleeping)
}

// Compute consumes d of CPU time. It is interruptible exactly like Sleep but
// marks the process as computing (busy) rather than idle, which observers use
// for utilisation accounting and preemption decisions.
func (p *Proc) Compute(d time.Duration) (interrupted bool, remaining time.Duration) {
	return p.sleepUntil(p.eng.now.Add(d), StateComputing)
}

// Charge consumes d of CPU time non-interruptibly. Interrupts arriving during
// the charge stay pending and are observed by the next interruptible
// primitive. It models short critical sections of middleware code.
//
// When no other event could run before the charge completes — the heap is
// empty or its head is strictly later than the charge end, and the end is
// within the current Run bound — the engine advances virtual time inline
// without scheduling an event. The skip is unobservable: no process could
// have executed in the skipped window, interrupts stay pending exactly as
// in the event-based path, and same-instant FIFO is preserved because the
// heap head must be strictly later. This makes dense sequences of
// bookkeeping charges O(1) engine work instead of one dispatch each.
func (p *Proc) Charge(d time.Duration) {
	if d <= 0 {
		return
	}
	e := p.eng
	t := e.now.Add(d)
	if e.running && !e.stopped && e.tracer == nil && t <= e.until &&
		(len(e.events) == 0 || e.events[0].at > t) &&
		e.nsteps+e.fastCharges < e.maxStep {
		e.fastCharges++
		e.now = t
		return
	}
	masked := p.intrMasked
	p.intrMasked = true
	p.sleepUntil(t, StateComputing)
	p.intrMasked = masked
}

func (p *Proc) sleepUntil(t Time, st ProcState) (interrupted bool, remaining time.Duration) {
	if p.checkPending() {
		rem := t.Sub(p.eng.now)
		if rem < 0 {
			rem = 0
		}
		return true, rem
	}
	if t <= p.eng.now {
		// Yield even for zero-length waits so same-instant events run FIFO.
		p.Yield()
		return false, 0
	}
	p.state = st
	p.wake = p.eng.schedule(t, p, resumeNormal, nil)
	kind := p.block()
	p.state = StateRunning
	if kind == resumeInterrupt {
		rem := t.Sub(p.eng.now)
		if rem < 0 {
			rem = 0
		}
		return true, rem
	}
	return false, 0
}

// Yield reschedules the process at the current instant behind already-queued
// same-instant events.
func (p *Proc) Yield() {
	p.state = StateSleeping
	p.wake = p.eng.schedule(p.eng.now, p, resumeNormal, nil)
	kind := p.block()
	if kind == resumeInterrupt {
		// An interrupt raced with the yield; record it for the next wait.
		p.interrupts++
	}
	p.state = StateRunning
}

// Park suspends the process until Unpark or Interrupt. Returns true when
// resumed by an interrupt rather than an unpark. A sticky unpark token
// (delivered while the process was running) makes Park return immediately.
func (p *Proc) Park() (interrupted bool) {
	if p.checkPending() {
		return true
	}
	if p.unparked {
		p.unparked = false
		p.Yield()
		return false
	}
	p.state = StateParked
	kind := p.block()
	p.state = StateRunning
	return kind == resumeInterrupt
}

// Unpark makes target runnable at the current instant. Calling Unpark on a
// process that is not parked sets a sticky token consumed by its next Park,
// preventing lost wakeups. Process-side variant of Engine.Unpark.
func (p *Proc) Unpark(target *Proc) { p.eng.Unpark(target) }

// Unpark makes target runnable at the current instant.
func (e *Engine) Unpark(target *Proc) {
	if target == nil || target.done {
		return
	}
	if target.state == StateParked && target.wake == nil {
		target.wake = e.schedule(e.now, target, resumeNormal, nil)
		return
	}
	target.unparked = true
}

// Interrupt delivers an asynchronous interrupt to target, modelling a POSIX
// signal. A sleeping, computing or parked target wakes immediately with the
// interrupted flag; a running target observes the interrupt at its next
// blocking primitive. Masked interrupts stay pending.
func (e *Engine) Interrupt(target *Proc) {
	if target == nil || target.done {
		return
	}
	if target.intrMasked {
		target.interrupts++
		return
	}
	switch target.state {
	case StateSleeping, StateComputing, StateParked:
		if target.wake != nil && target.wake.kind == resumeInterrupt {
			// Already being interrupted at this instant; coalesce.
			target.interrupts++
			return
		}
		if target.wake != nil && target.wake.at <= e.now {
			// The process is already waking at this very instant (timer
			// expiry, park grant): the interrupt cannot beat the wake.
			// Cancelling the wake here would swallow a resume (and, for
			// waits queued behind a WaitQ, leak a sticky token); deliver
			// the interrupt as pending instead — it is observed at the
			// next interruptible primitive.
			target.interrupts++
			return
		}
		e.cancel(target.wake)
		target.wake = e.schedule(e.now, target, resumeInterrupt, nil)
	default:
		target.interrupts++
	}
}

// unparkNoToken wakes target only if it is parked and not already being
// resumed; otherwise the wake is dropped (no sticky token). WaitQ grants use
// this: a waiter that is concurrently interrupted re-checks its condition
// anyway, and a leaked token would poison unrelated later parks.
func (e *Engine) unparkNoToken(target *Proc) {
	if target == nil || target.done {
		return
	}
	if target.state == StateParked && target.wake == nil {
		target.wake = e.schedule(e.now, target, resumeNormal, nil)
	}
}

// Interrupt delivers an interrupt to target (process-side variant).
func (p *Proc) Interrupt(target *Proc) { p.eng.Interrupt(target) }
