package sim

import (
	"testing"
	"time"
)

// TestInterruptDoesNotCancelSameInstantWake is the regression test for the
// bug behind the Fig. 2 overload crash: an interrupt arriving while the
// target is already being resumed at the current instant (mutex grant,
// park handoff) must not cancel that wake — it is delivered as pending
// instead. Cancelling it both swallowed the resume and (via the WaitQ)
// leaked a sticky unpark token that poisoned a later, unrelated park.
func TestInterruptDoesNotCancelSameInstantWake(t *testing.T) {
	e := NewEngine(1)
	var waiterEvents []string
	var mu Mutex
	var waiter *Proc

	holder := e.Spawn("holder", func(p *Proc) {
		mu.Lock(p)
		p.Sleep(time.Millisecond)
		mu.Unlock(p) // grants the mutex to the waiter at t=1ms
		// Interrupt the waiter at the same instant its grant is pending.
		p.Interrupt(waiter)
	})
	_ = holder
	waiter = e.Spawn("waiter", func(p *Proc) {
		p.Yield() // let the holder grab the mutex first
		mu.Lock(p)
		waiterEvents = append(waiterEvents, "locked")
		mu.Unlock(p)
		// The interrupt must still be observable (pending), not lost.
		if intr, _ := p.Sleep(time.Millisecond); intr {
			waiterEvents = append(waiterEvents, "pending-interrupt-delivered")
		}
		// A subsequent park must NOT be poisoned by a leaked token: with
		// nobody unparking us, it can only end via the interrupt below.
		if p.Park() {
			waiterEvents = append(waiterEvents, "parked-then-interrupted")
		} else {
			waiterEvents = append(waiterEvents, "parked-self-resumed(BUG)")
		}
	})
	e.Spawn("closer", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		p.Interrupt(waiter)
	})
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	want := []string{"locked", "pending-interrupt-delivered", "parked-then-interrupted"}
	if len(waiterEvents) != len(want) {
		t.Fatalf("events = %v, want %v", waiterEvents, want)
	}
	for i := range want {
		if waiterEvents[i] != want[i] {
			t.Fatalf("events = %v, want %v", waiterEvents, want)
		}
	}
}

// TestWaitQSignalWithConcurrentInterrupt: a Signal landing on a waiter that
// is being interrupted at the same instant must not leave a sticky token,
// and the mutex must stay live (the interrupted waiter re-acquires it).
func TestWaitQSignalWithConcurrentInterrupt(t *testing.T) {
	e := NewEngine(1)
	var mu Mutex
	got := make([]string, 0, 4)
	var contender *Proc

	e.Spawn("holder", func(p *Proc) {
		mu.Lock(p)
		p.Sleep(time.Millisecond)
		// Interrupt the parked contender, then release: the unlock's
		// Signal sees a waiter that is already waking via the interrupt.
		p.Interrupt(contender)
		mu.Unlock(p)
	})
	contender = e.Spawn("contender", func(p *Proc) {
		p.Yield()
		mu.Lock(p) // must eventually succeed despite the interrupt collision
		got = append(got, "acquired")
		mu.Unlock(p)
		// No leaked token: this park blocks until the closer interrupt.
		if p.Park() {
			got = append(got, "clean-park")
		} else {
			got = append(got, "leaked-token(BUG)")
		}
	})
	e.Spawn("closer", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		p.Interrupt(contender)
	})
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "acquired" || got[1] != "clean-park" {
		t.Fatalf("events = %v", got)
	}
}

// TestInterruptStillCutsFutureWake: the same-instant rule must not weaken
// genuine preemption: a wake scheduled in the future is still cancelled.
func TestInterruptStillCutsFutureWake(t *testing.T) {
	e := NewEngine(1)
	var cut bool
	var victim *Proc
	victim = e.Spawn("victim", func(p *Proc) {
		intr, rem := p.Compute(10 * time.Millisecond)
		cut = intr && rem > 0
	})
	e.Spawn("sig", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		p.Interrupt(victim)
	})
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !cut {
		t.Error("interrupt failed to cut a mid-flight compute")
	}
}

// TestEngineCallbackAndProcInterleaving checks fn-events and proc wakes
// interleave in FIFO order at the same instant.
func TestEngineCallbackAndProcInterleaving(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.At(Time(time.Millisecond), func() { order = append(order, "cb1") })
	e.Spawn("p", func(p *Proc) {
		p.Sleep(time.Millisecond)
		order = append(order, "proc")
	})
	e.At(Time(time.Millisecond), func() { order = append(order, "cb2") })
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	// Spawn events precede: the proc was spawned before cb2 was scheduled,
	// but its wake at 1ms was scheduled when it slept (after cb1, before...
	// deterministic: cb1 (seq 1), proc-start (seq 2) -> sleep scheduled
	// during run; cb2 (seq 3). At t=1ms: cb1, cb2, then the proc wake.
	want := []string{"cb1", "cb2", "proc"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestMaskedSectionAccumulatesInterrupts: multiple interrupts during a
// masked section coalesce as pending and are delivered one per wait.
func TestMaskedSectionAccumulatesInterrupts(t *testing.T) {
	e := NewEngine(1)
	delivered := 0
	var target *Proc
	target = e.Spawn("t", func(p *Proc) {
		p.MaskInterrupts()
		p.Sleep(5 * time.Millisecond)
		p.UnmaskInterrupts()
		for i := 0; i < 3; i++ {
			if intr, _ := p.Sleep(time.Millisecond); intr {
				delivered++
			}
		}
	})
	e.Spawn("sig", func(p *Proc) {
		p.Sleep(time.Millisecond)
		p.Interrupt(target)
		p.Interrupt(target)
		p.Interrupt(target)
	})
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if delivered != 3 {
		t.Errorf("delivered = %d of 3 pending interrupts", delivered)
	}
}
