package sim

import "time"

// WaitQ is a FIFO queue of parked processes, the building block for
// condition-variable-like constructs inside the simulation.
// The zero value is ready to use.
type WaitQ struct {
	ps []*Proc
}

// Len returns the number of waiting processes.
func (q *WaitQ) Len() int { return len(q.ps) }

// Wait parks the calling process on the queue until signalled or interrupted.
// On interrupt the process is removed from the queue and Wait returns true.
func (q *WaitQ) Wait(p *Proc) (interrupted bool) {
	q.ps = append(q.ps, p)
	interrupted = p.Park()
	if interrupted {
		q.remove(p)
	}
	return interrupted
}

func (q *WaitQ) remove(p *Proc) {
	for i, w := range q.ps {
		if w == p {
			q.ps = append(q.ps[:i], q.ps[i+1:]...)
			return
		}
	}
}

// Signal unparks the longest-waiting process, if any. Returns the process
// woken, or nil. The wake bypasses sticky tokens: a waiter that is being
// interrupted at the same instant re-checks its condition on its own.
func (q *WaitQ) Signal(e *Engine) *Proc {
	if len(q.ps) == 0 {
		return nil
	}
	p := q.ps[0]
	q.ps = q.ps[1:]
	e.unparkNoToken(p)
	return p
}

// Broadcast unparks all waiting processes.
func (q *WaitQ) Broadcast(e *Engine) {
	for _, p := range q.ps {
		e.unparkNoToken(p)
	}
	q.ps = q.ps[:0]
}

// Mutex is a simulated sleeping mutex with FIFO handoff. Lock/Unlock must be
// called from process context. It models a kernel futex: blocked processes
// are descheduled (idle) while waiting.
// The zero value is an unlocked mutex.
type Mutex struct {
	owner   *Proc
	waiters WaitQ
}

// Lock acquires the mutex, blocking FIFO behind other waiters.
func (m *Mutex) Lock(p *Proc) {
	for m.owner != nil && m.owner != p {
		m.waiters.Wait(p)
	}
	if m.owner == p {
		panic("sim: recursive Mutex.Lock by " + p.Name())
	}
	m.owner = p
}

// TryLock acquires the mutex if free, returning whether it succeeded.
func (m *Mutex) TryLock(p *Proc) bool {
	if m.owner != nil {
		return false
	}
	m.owner = p
	return true
}

// Unlock releases the mutex and wakes the longest-waiting process.
func (m *Mutex) Unlock(p *Proc) {
	if m.owner != p {
		panic("sim: Mutex.Unlock by non-owner " + p.Name())
	}
	m.owner = nil
	m.waiters.Signal(p.eng)
}

// Owner returns the current holder, or nil.
func (m *Mutex) Owner() *Proc { return m.owner }

// SpinMutex models a test-and-set spinlock: waiting burns CPU time
// (Compute) in slices of spinQuantum until the lock frees up, which is how
// contention becomes visible in overhead measurements.
type SpinMutex struct {
	owner *Proc
	// RetryCost is the CPU time burned per failed test-and-set attempt.
	RetryCost time.Duration
	// AcquireCost is the CPU time of a successful test-and-set.
	AcquireCost time.Duration
	spins       uint64
	acquires    uint64
}

// DefaultSpinRetry is the default cost of a failed TAS probe (cache-line
// bounce on a COTS ARM part).
const DefaultSpinRetry = 80 * time.Nanosecond

// DefaultSpinAcquire is the default cost of a successful TAS.
const DefaultSpinAcquire = 40 * time.Nanosecond

func (m *SpinMutex) retryCost() time.Duration {
	if m.RetryCost <= 0 {
		return DefaultSpinRetry
	}
	return m.RetryCost
}

func (m *SpinMutex) acquireCost() time.Duration {
	if m.AcquireCost <= 0 {
		return DefaultSpinAcquire
	}
	return m.AcquireCost
}

// Lock spins until the lock is free, charging CPU time per probe. It returns
// the total time spent spinning (the measurable contention overhead).
func (m *SpinMutex) Lock(p *Proc) (spun time.Duration) {
	start := p.Now()
	for m.owner != nil {
		m.spins++
		p.Charge(m.retryCost())
	}
	m.owner = p
	m.acquires++
	p.Charge(m.acquireCost())
	return p.Now().Sub(start)
}

// TryLock attempts a single test-and-set.
func (m *SpinMutex) TryLock(p *Proc) bool {
	if m.owner != nil {
		m.spins++
		p.Charge(m.retryCost())
		return false
	}
	m.owner = p
	m.acquires++
	p.Charge(m.acquireCost())
	return true
}

// Unlock releases the spinlock.
func (m *SpinMutex) Unlock(p *Proc) {
	if m.owner != p {
		panic("sim: SpinMutex.Unlock by non-owner " + p.Name())
	}
	m.owner = nil
}

// Owner returns the current holder, or nil.
func (m *SpinMutex) Owner() *Proc { return m.owner }

// Stats returns the number of failed probes and successful acquisitions.
func (m *SpinMutex) Stats() (spins, acquires uint64) { return m.spins, m.acquires }

// Barrier is a simulated sense-reversing barrier for a fixed party count.
type Barrier struct {
	parties int
	arrived int
	waiters WaitQ
}

// NewBarrier creates a barrier for n parties.
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("sim: barrier needs at least one party")
	}
	return &Barrier{parties: n}
}

// Await blocks until all parties have arrived. The last arriver releases
// everyone and does not block.
func (b *Barrier) Await(p *Proc) {
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.waiters.Broadcast(p.eng)
		return
	}
	b.waiters.Wait(p)
}
