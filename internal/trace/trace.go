// Package trace collects execution metrics from middleware runs: per-job
// records (release, start, finish, deadline), per-task deadline-miss
// statistics, scheduling-overhead samples, and latency histograms with the
// min/max/avg summaries the paper reports in Fig. 2, Table 2 and Fig. 4.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Stat is an online summary of duration samples: count, min, max, mean, and
// optionally the full sample set for percentiles. The zero value is ready to
// use (unbounded sample retention disabled). Safe for concurrent use.
type Stat struct {
	//yasmin:lockrank 6
	mu      sync.Mutex
	name    string
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	samples []time.Duration
	keep    bool
}

// NewStat creates a named stat. If keepSamples is true every sample is
// retained for percentile queries (capacity grows as needed).
func NewStat(name string, keepSamples bool) *Stat {
	return &Stat{name: name, keep: keepSamples}
}

// Name returns the stat's label.
func (s *Stat) Name() string { return s.name }

// Add records one sample.
func (s *Stat) Add(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 || d < s.min {
		s.min = d
	}
	if s.count == 0 || d > s.max {
		s.max = d
	}
	s.count++
	s.sum += d
	if s.keep {
		s.samples = append(s.samples, d)
	}
}

// Count returns the number of samples.
func (s *Stat) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Min returns the smallest sample (0 if empty).
func (s *Stat) Min() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.min
}

// Max returns the largest sample (0 if empty).
func (s *Stat) Max() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.max
}

// Mean returns the average sample (0 if empty).
func (s *Stat) Mean() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return 0
	}
	return s.sum / time.Duration(s.count)
}

// Percentile returns the p-th percentile (0 < p <= 100) of retained samples.
// It returns an error when samples were not retained or p is out of range.
func (s *Stat) Percentile(p float64) (time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.keep {
		return 0, fmt.Errorf("trace: stat %q does not retain samples", s.name)
	}
	if p <= 0 || p > 100 {
		return 0, fmt.Errorf("trace: percentile %g out of (0,100]", p)
	}
	if len(s.samples) == 0 {
		return 0, nil
	}
	sorted := make([]time.Duration, len(s.samples))
	copy(sorted, s.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(float64(len(sorted))*p/100) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx], nil
}

// Summary returns the paper-style "<min, max, avg>" triple.
func (s *Stat) Summary() (min, max, mean time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return 0, 0, 0
	}
	return s.min, s.max, s.sum / time.Duration(s.count)
}

// String formats the triple in microseconds, like Table 2.
func (s *Stat) String() string {
	min, max, mean := s.Summary()
	return fmt.Sprintf("%s <%d, %d, %d> µs", s.name,
		min.Microseconds(), max.Microseconds(), mean.Microseconds())
}

// JobRecord captures one job execution.
type JobRecord struct {
	Task     string
	TaskID   int
	Job      int64  // job index of the task
	Version  int    // selected version
	Core     int    // executing virtual core
	Accel    string // accelerator instance held ("" for CPU-only jobs)
	Release  time.Duration
	Start    time.Duration
	Finish   time.Duration
	Deadline time.Duration // absolute
	Missed   bool
	Preempts int // times this job was preempted
}

// ResponseTime returns finish - release.
func (r *JobRecord) ResponseTime() time.Duration { return r.Finish - r.Release }

// ReconfigRecord captures one committed live-reconfiguration epoch: which
// tasks the transaction admitted, retuned and started draining, the mode
// word installed, and how long the quiescent barrier (the application lock
// hold while the tables were rewritten) paused middleware interactions.
type ReconfigRecord struct {
	Epoch    int
	At       time.Duration
	Admitted []string // task names added by the transaction
	Retuned  []string // task names whose timing changed
	Retiring []string // task names draining towards retirement
	Mode     uint32   // execution-mode word after the commit
	Pause    time.Duration
}

// RetireEvent records the completion of a task's drain: the instant its last
// in-flight job finished and the slot was reclaimed.
type RetireEvent struct {
	Task  string
	Epoch int // epoch whose transaction started the drain
	At    time.Duration
}

// AccelEventKind labels one accelerator-arbitration action.
type AccelEventKind int

// Accelerator arbitration actions (Section 3.2 of the paper: shared
// accelerators with priority inheritance).
const (
	// AccelAcquire: a job took a free instance during version selection.
	AccelAcquire AccelEventKind = iota + 1
	// AccelPark: a job parked on a pool's waiter list (all instances busy).
	AccelPark
	// AccelBoost: a holder inherited a more urgent waiter's priority (PIP),
	// possibly transitively along a holder chain.
	AccelBoost
	// AccelGrant: a freed instance was handed directly to the most urgent
	// parked waiter.
	AccelGrant
	// AccelRequeue: a parked waiter was pushed back to the ready queues for
	// a fresh version-selection pass (it may now pick the freed accelerator
	// or a CPU version).
	AccelRequeue
	// AccelRelease: a holder released its instance.
	AccelRelease
)

var accelEventNames = map[AccelEventKind]string{
	AccelAcquire: "acquire",
	AccelPark:    "park",
	AccelBoost:   "boost",
	AccelGrant:   "grant",
	AccelRequeue: "requeue",
	AccelRelease: "release",
}

//yasmin:noalloc
func (k AccelEventKind) String() string {
	if n, ok := accelEventNames[k]; ok {
		return n
	}
	return fmt.Sprintf("AccelEventKind(%d)", int(k)) //yasmin:alloc-ok unknown-kind fallback, cold
}

// AccelEvent records one accelerator-arbitration action: which job touched
// which instance of which pool, at what effective priority (after the
// action). The scenario checker replays these to verify the PIP invariants
// (priority-ordered grants, bounded inversion); park events carry the pool
// head as Accel since no instance is assigned yet.
type AccelEvent struct {
	Kind  AccelEventKind
	Accel string // instance name ("gpu", "gpu#1", ...); pool head for parks
	Pool  string // pool (head) name
	Task  string
	Job   int64 // job index within the task
	Prio  int64 // effective priority after the event (lower = more urgent)
	At    time.Duration
}

// Stream receives every record the instant it is recorded — the streaming
// hook behind the telemetry export pipeline (internal/telemetry implements
// it with a lock-free ring). Implementations must not block: they run on
// the record hot path, before the Recorder takes its own mutex. Methods may
// be called concurrently.
type Stream interface {
	StreamJob(JobRecord)
	StreamReconfig(ReconfigRecord)
	StreamRetire(RetireEvent)
	StreamAccel(AccelEvent)
}

// streamBox wraps the Stream interface so it can live in an atomic.Pointer
// (record paths load it without taking the Recorder mutex).
type streamBox struct{ s Stream }

// Recorder accumulates job records and per-task statistics. Safe for
// concurrent use. With a Stream attached (SetStream), every record is
// additionally forwarded lock-free before local aggregation.
type Recorder struct {
	//yasmin:lockrank 5
	mu        sync.Mutex
	jobs      []JobRecord
	keepJobs  bool
	perTask   map[string]*TaskStats
	reconfigs []ReconfigRecord
	retires   []RetireEvent
	accels    []AccelEvent

	stream atomic.Pointer[streamBox]
}

// TaskStats aggregates per-task outcomes.
type TaskStats struct {
	Task      string
	Jobs      int64
	Misses    int64
	Preempts  int64
	Response  *Stat
	Versions  map[int]int64 // jobs per version
	WorstLate time.Duration // worst (finish - deadline), > 0 means tardiness
}

// NewRecorder creates a recorder. keepJobs retains every JobRecord (needed
// for Gantt export); per-task stats are always kept.
func NewRecorder(keepJobs bool) *Recorder {
	return &Recorder{keepJobs: keepJobs, perTask: make(map[string]*TaskStats)}
}

// SetStream attaches (or, with nil, detaches) a streaming consumer. From
// then on every record is forwarded to it on the recording goroutine,
// without the Recorder mutex, before being aggregated locally. Retention
// semantics (keepJobs, reconfig/retire/accel lists) are unchanged —
// streaming is additive, and callers that only want the stream simply
// leave retention off.
func (r *Recorder) SetStream(s Stream) {
	if s == nil {
		r.stream.Store(nil)
		return
	}
	r.stream.Store(&streamBox{s: s})
}

// Record adds a completed job.
func (r *Recorder) Record(j JobRecord) {
	if b := r.stream.Load(); b != nil {
		b.s.StreamJob(j)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.keepJobs {
		r.jobs = append(r.jobs, j)
	}
	ts := r.perTask[j.Task]
	if ts == nil {
		ts = &TaskStats{
			Task:     j.Task,
			Response: NewStat(j.Task+"/response", false),
			Versions: make(map[int]int64),
		}
		r.perTask[j.Task] = ts
	}
	ts.Jobs++
	ts.Preempts += int64(j.Preempts)
	if j.Missed {
		ts.Misses++
	}
	if late := j.Finish - j.Deadline; late > ts.WorstLate {
		ts.WorstLate = late
	}
	ts.Response.Add(j.ResponseTime())
	ts.Versions[j.Version]++
}

// RecordReconfig adds one committed reconfiguration epoch.
func (r *Recorder) RecordReconfig(rec ReconfigRecord) {
	if b := r.stream.Load(); b != nil {
		b.s.StreamReconfig(rec)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reconfigs = append(r.reconfigs, rec)
}

// RecordRetire adds one completed task retirement.
func (r *Recorder) RecordRetire(e RetireEvent) {
	if b := r.stream.Load(); b != nil {
		b.s.StreamRetire(e)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.retires = append(r.retires, e)
}

// RecordAccel adds one accelerator-arbitration event.
func (r *Recorder) RecordAccel(e AccelEvent) {
	if b := r.stream.Load(); b != nil {
		b.s.StreamAccel(e)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.accels = append(r.accels, e)
}

// AccelEvents returns a copy of the recorded accelerator events, in the
// order the arbitration actions happened.
func (r *Recorder) AccelEvents() []AccelEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]AccelEvent, len(r.accels))
	copy(out, r.accels)
	return out
}

// Reconfigs returns a copy of the recorded reconfiguration epochs.
func (r *Recorder) Reconfigs() []ReconfigRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ReconfigRecord, len(r.reconfigs))
	copy(out, r.reconfigs)
	return out
}

// Retires returns a copy of the recorded retirement completions.
func (r *Recorder) Retires() []RetireEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RetireEvent, len(r.retires))
	copy(out, r.retires)
	return out
}

// Jobs returns a copy of the retained job records.
func (r *Recorder) Jobs() []JobRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]JobRecord, len(r.jobs))
	copy(out, r.jobs)
	return out
}

// Task returns the stats for one task (nil if unknown).
func (r *Recorder) Task(name string) *TaskStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.perTask[name]
}

// TaskNames returns all task names, sorted.
func (r *Recorder) TaskNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.perTask))
	for n := range r.perTask {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalJobs returns the number of recorded jobs across tasks.
func (r *Recorder) TotalJobs() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for _, ts := range r.perTask {
		n += ts.Jobs
	}
	return n
}

// TotalMisses returns the number of missed deadlines across tasks.
func (r *Recorder) TotalMisses() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for _, ts := range r.perTask {
		n += ts.Misses
	}
	return n
}

// MissRatio returns misses/jobs (0 when no jobs ran).
func (r *Recorder) MissRatio() float64 {
	jobs := r.TotalJobs()
	if jobs == 0 {
		return 0
	}
	return float64(r.TotalMisses()) / float64(jobs)
}

// WriteSummary prints a per-task table, sorted by task name so the output
// is byte-stable across runs and record interleavings (CI diffs the
// summaries). The whole table is one consistent snapshot: the task list and
// every row come from a single lock acquisition, so concurrent Record calls
// cannot tear the view mid-print.
func (r *Recorder) WriteSummary(w io.Writer) error {
	type row struct {
		task           string
		jobs, misses   int64
		preempts       int64
		min, max, mean time.Duration
	}
	r.mu.Lock()
	rows := make([]row, 0, len(r.perTask))
	for _, ts := range r.perTask {
		min, max, mean := ts.Response.Summary()
		rows = append(rows, row{
			task: ts.Task, jobs: ts.Jobs, misses: ts.Misses,
			preempts: ts.Preempts, min: min, max: max, mean: mean,
		})
	}
	r.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].task < rows[j].task })
	for _, ts := range rows {
		_, err := fmt.Fprintf(w, "%-24s jobs=%-6d misses=%-5d resp<%v,%v,%v> preempts=%d\n",
			ts.task, ts.jobs, ts.misses, ts.min, ts.max, ts.mean, ts.preempts)
		if err != nil {
			return fmt.Errorf("trace: write summary: %w", err)
		}
	}
	return nil
}

// Gantt renders a crude text Gantt chart of the retained jobs over
// [0, horizon) with the given number of character columns per core line.
func (r *Recorder) Gantt(w io.Writer, horizon time.Duration, cols int) error {
	if cols <= 0 {
		return fmt.Errorf("trace: gantt needs positive cols")
	}
	jobs := r.Jobs()
	if len(jobs) == 0 {
		return fmt.Errorf("trace: gantt needs retained jobs (NewRecorder(true))")
	}
	maxCore := 0
	for _, j := range jobs {
		if j.Core > maxCore {
			maxCore = j.Core
		}
	}
	lines := make([][]byte, maxCore+1)
	for i := range lines {
		lines[i] = []byte(strings.Repeat(".", cols))
	}
	for _, j := range jobs {
		if j.Start >= horizon {
			continue
		}
		from := int(int64(j.Start) * int64(cols) / int64(horizon))
		to := int(int64(j.Finish) * int64(cols) / int64(horizon))
		if to >= cols {
			to = cols - 1
		}
		ch := byte('a' + j.TaskID%26)
		for c := from; c <= to; c++ {
			lines[j.Core][c] = ch
		}
	}
	for core, ln := range lines {
		if _, err := fmt.Fprintf(w, "core%-2d |%s|\n", core, ln); err != nil {
			return fmt.Errorf("trace: write gantt: %w", err)
		}
	}
	return nil
}

// OverheadKind labels an overhead sample's origin.
type OverheadKind int

// Overhead sample origins.
const (
	OverheadSchedule OverheadKind = iota + 1 // scheduler-thread activation work
	OverheadDispatch                         // pushing/popping ready queues + wakeups
	OverheadPreempt                          // signal + context switch costs
	OverheadLock                             // lock contention (spinning/futex)
	OverheadRelease                          // job release bookkeeping
)

var overheadNames = map[OverheadKind]string{
	OverheadSchedule: "schedule",
	OverheadDispatch: "dispatch",
	OverheadPreempt:  "preempt",
	OverheadLock:     "lock",
	OverheadRelease:  "release",
}

func (k OverheadKind) String() string {
	if n, ok := overheadNames[k]; ok {
		return n
	}
	return fmt.Sprintf("OverheadKind(%d)", int(k))
}

// Overheads aggregates overhead samples by kind plus a global stat — the
// measurement behind Fig. 2. Safe for concurrent use.
type Overheads struct {
	//yasmin:lockrank 5
	mu     sync.Mutex
	all    *Stat
	byKind map[OverheadKind]*Stat
}

// NewOverheads creates an empty overhead aggregate.
func NewOverheads() *Overheads {
	return &Overheads{
		all:    NewStat("overhead", false),
		byKind: make(map[OverheadKind]*Stat),
	}
}

// Add records one overhead sample.
func (o *Overheads) Add(k OverheadKind, d time.Duration) {
	o.mu.Lock()
	st := o.byKind[k]
	if st == nil {
		st = NewStat(k.String(), false)
		o.byKind[k] = st
	}
	o.mu.Unlock()
	st.Add(d)
	o.all.Add(d)
}

// Total returns the global stat across kinds.
func (o *Overheads) Total() *Stat { return o.all }

// Kind returns the stat for one kind (nil if no samples).
func (o *Overheads) Kind(k OverheadKind) *Stat {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.byKind[k]
}

// Kinds returns the kinds that have samples, in ascending order.
func (o *Overheads) Kinds() []OverheadKind {
	o.mu.Lock()
	defer o.mu.Unlock()
	ks := make([]OverheadKind, 0, len(o.byKind))
	for k := range o.byKind {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// SchedStats is the sharded scheduler core's counter snapshot: work-stealing
// traffic, cross-shard preemption migrations, idle-list wakes, preemption
// signalling (with per-dispatch-pass dedup hits) and epoch snapshot
// publications. All counters are cumulative since Start.
type SchedStats struct {
	// Steals counts jobs a worker popped from a sibling shard's queue
	// (global mapping only; partitioned placements never steal).
	Steals int64 `json:"steals"`
	// StealMisses counts steal attempts that found the victim's queue
	// empty after locking it (the lock-free load mirror was stale).
	StealMisses int64 `json:"steal_misses"`
	// Migrations counts queued jobs the dispatcher moved into a preemption
	// victim's shard to preserve global priority order.
	Migrations int64 `json:"migrations"`
	// IdleWakes counts workers woken off the idle list by the dispatcher.
	IdleWakes int64 `json:"idle_wakes"`
	// Signals counts preemption signals delivered to running fibers.
	Signals int64 `json:"signals"`
	// SignalsDeduped counts preemption signals suppressed because the
	// worker was already signalled in the same dispatch pass.
	SignalsDeduped int64 `json:"signals_deduped"`
	// ViewPublishes counts schedView epoch snapshot publications (Start
	// plus one per reconfiguration commit).
	ViewPublishes int64 `json:"view_publishes"`
}

// Add accumulates o into s; cluster reports sum the per-node snapshots.
func (s *SchedStats) Add(o SchedStats) {
	s.Steals += o.Steals
	s.StealMisses += o.StealMisses
	s.Migrations += o.Migrations
	s.IdleWakes += o.IdleWakes
	s.Signals += o.Signals
	s.SignalsDeduped += o.SignalsDeduped
	s.ViewPublishes += o.ViewPublishes
}
