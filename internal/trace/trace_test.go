package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestStatSummary(t *testing.T) {
	s := NewStat("lat", false)
	for _, d := range []time.Duration{ms(5), ms(1), ms(9), ms(5)} {
		s.Add(d)
	}
	min, max, mean := s.Summary()
	if min != ms(1) || max != ms(9) || mean != ms(5) {
		t.Errorf("summary = %v,%v,%v, want 1ms,9ms,5ms", min, max, mean)
	}
	if s.Count() != 4 {
		t.Errorf("count = %d, want 4", s.Count())
	}
	if got := s.String(); !strings.Contains(got, "<1000, 9000, 5000>") {
		t.Errorf("String() = %q", got)
	}
}

func TestStatEmpty(t *testing.T) {
	s := NewStat("empty", false)
	min, max, mean := s.Summary()
	if min != 0 || max != 0 || mean != 0 {
		t.Error("empty stat must summarise to zeros")
	}
}

func TestStatPercentiles(t *testing.T) {
	s := NewStat("p", true)
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i) * time.Microsecond)
	}
	p50, err := s.Percentile(50)
	if err != nil {
		t.Fatal(err)
	}
	if p50 != 50*time.Microsecond {
		t.Errorf("p50 = %v, want 50µs", p50)
	}
	p99, err := s.Percentile(99)
	if err != nil {
		t.Fatal(err)
	}
	if p99 != 99*time.Microsecond {
		t.Errorf("p99 = %v, want 99µs", p99)
	}
	if _, err := s.Percentile(0); err == nil {
		t.Error("want error for p=0")
	}
	noKeep := NewStat("nk", false)
	noKeep.Add(ms(1))
	if _, err := noKeep.Percentile(50); err == nil {
		t.Error("want error when samples not retained")
	}
}

func TestRecorderPerTaskStats(t *testing.T) {
	r := NewRecorder(false)
	r.Record(JobRecord{Task: "a", TaskID: 0, Release: 0, Start: ms(1), Finish: ms(5), Deadline: ms(10), Version: 0})
	r.Record(JobRecord{Task: "a", TaskID: 0, Release: ms(10), Start: ms(11), Finish: ms(25), Deadline: ms(20), Missed: true, Version: 1, Preempts: 2})
	r.Record(JobRecord{Task: "b", TaskID: 1, Release: 0, Start: 0, Finish: ms(2), Deadline: ms(4), Version: 0})

	if got := r.TotalJobs(); got != 3 {
		t.Errorf("TotalJobs = %d, want 3", got)
	}
	if got := r.TotalMisses(); got != 1 {
		t.Errorf("TotalMisses = %d, want 1", got)
	}
	if got := r.MissRatio(); got < 0.33 || got > 0.34 {
		t.Errorf("MissRatio = %g, want ~1/3", got)
	}
	a := r.Task("a")
	if a.Jobs != 2 || a.Misses != 1 || a.Preempts != 2 {
		t.Errorf("task a stats = %+v", a)
	}
	if a.WorstLate != ms(5) {
		t.Errorf("WorstLate = %v, want 5ms", a.WorstLate)
	}
	if a.Versions[0] != 1 || a.Versions[1] != 1 {
		t.Errorf("version histogram = %v", a.Versions)
	}
	names := r.TaskNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names = %v", names)
	}
	if r.Task("missing") != nil {
		t.Error("unknown task must return nil")
	}
}

func TestRecorderSummaryOutput(t *testing.T) {
	r := NewRecorder(false)
	r.Record(JobRecord{Task: "x", Finish: ms(3), Deadline: ms(5)})
	var buf bytes.Buffer
	if err := r.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "x") || !strings.Contains(buf.String(), "jobs=1") {
		t.Errorf("summary = %q", buf.String())
	}
}

func TestGantt(t *testing.T) {
	r := NewRecorder(true)
	r.Record(JobRecord{Task: "a", TaskID: 0, Core: 0, Start: 0, Finish: ms(50), Deadline: ms(100)})
	r.Record(JobRecord{Task: "b", TaskID: 1, Core: 1, Start: ms(50), Finish: ms(100), Deadline: ms(100)})
	var buf bytes.Buffer
	if err := r.Gantt(&buf, ms(100), 20); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "core0") || !strings.Contains(out, "core1") {
		t.Errorf("gantt = %q", out)
	}
	if !strings.Contains(out, "aaaa") || !strings.Contains(out, "bbbb") {
		t.Errorf("gantt missing bars: %q", out)
	}
}

func TestGanttErrors(t *testing.T) {
	r := NewRecorder(false)
	var buf bytes.Buffer
	if err := r.Gantt(&buf, ms(10), 10); err == nil {
		t.Error("want error without retained jobs")
	}
	r2 := NewRecorder(true)
	r2.Record(JobRecord{Task: "a"})
	if err := r2.Gantt(&buf, ms(10), 0); err == nil {
		t.Error("want error for zero cols")
	}
}

func TestOverheads(t *testing.T) {
	o := NewOverheads()
	o.Add(OverheadSchedule, 10*time.Microsecond)
	o.Add(OverheadSchedule, 20*time.Microsecond)
	o.Add(OverheadLock, 5*time.Microsecond)
	if got := o.Total().Count(); got != 3 {
		t.Errorf("total count = %d, want 3", got)
	}
	if got := o.Kind(OverheadSchedule).Mean(); got != 15*time.Microsecond {
		t.Errorf("schedule mean = %v, want 15µs", got)
	}
	if o.Kind(OverheadPreempt) != nil {
		t.Error("unsampled kind must be nil")
	}
	kinds := o.Kinds()
	if len(kinds) != 2 || kinds[0] != OverheadSchedule || kinds[1] != OverheadLock {
		t.Errorf("kinds = %v", kinds)
	}
	if OverheadDispatch.String() != "dispatch" {
		t.Errorf("kind name = %q", OverheadDispatch)
	}
}

func TestJobRecordResponseTime(t *testing.T) {
	j := JobRecord{Release: ms(10), Finish: ms(35)}
	if got := j.ResponseTime(); got != ms(25) {
		t.Errorf("response = %v, want 25ms", got)
	}
}

func TestWriteSummaryByteStable(t *testing.T) {
	// Two recorders fed the same records in different orders must print
	// byte-identical summaries (CI diffs them).
	recs := []JobRecord{
		{Task: "zeta", Finish: ms(3), Deadline: ms(5)},
		{Task: "alpha", Finish: ms(2), Deadline: ms(5)},
		{Task: "mid", Finish: ms(9), Deadline: ms(5), Missed: true, Preempts: 1},
		{Task: "alpha", Finish: ms(4), Deadline: ms(5)},
	}
	r1, r2 := NewRecorder(false), NewRecorder(false)
	for _, j := range recs {
		r1.Record(j)
	}
	for i := len(recs) - 1; i >= 0; i-- {
		r2.Record(recs[i])
	}
	var b1, b2 bytes.Buffer
	if err := r1.WriteSummary(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r2.WriteSummary(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("summaries differ by record order:\n%s\n---\n%s", b1.String(), b2.String())
	}
	// Tasks must appear in sorted order.
	out := b1.String()
	if !(strings.Index(out, "alpha") < strings.Index(out, "mid") &&
		strings.Index(out, "mid") < strings.Index(out, "zeta")) {
		t.Fatalf("tasks not sorted:\n%s", out)
	}
	// And repeated prints are stable too.
	var b3 bytes.Buffer
	if err := r1.WriteSummary(&b3); err != nil {
		t.Fatal(err)
	}
	if b3.String() != b1.String() {
		t.Fatal("repeated WriteSummary not byte-identical")
	}
}

// countingStream counts forwarded records, per kind.
type countingStream struct {
	jobs, reconfigs, retires, accels int
	lastJob                          JobRecord
}

func (c *countingStream) StreamJob(j JobRecord)         { c.jobs++; c.lastJob = j }
func (c *countingStream) StreamReconfig(ReconfigRecord) { c.reconfigs++ }
func (c *countingStream) StreamRetire(RetireEvent)      { c.retires++ }
func (c *countingStream) StreamAccel(AccelEvent)        { c.accels++ }

func TestRecorderForwardsToStream(t *testing.T) {
	r := NewRecorder(false)
	cs := &countingStream{}
	r.SetStream(cs)
	r.Record(JobRecord{Task: "a", Job: 7, Finish: ms(1), Deadline: ms(2)})
	r.RecordReconfig(ReconfigRecord{Epoch: 1})
	r.RecordRetire(RetireEvent{Task: "a"})
	r.RecordAccel(AccelEvent{Kind: AccelAcquire, Pool: "gpu"})
	if cs.jobs != 1 || cs.reconfigs != 1 || cs.retires != 1 || cs.accels != 1 {
		t.Fatalf("stream saw %+v", *cs)
	}
	if cs.lastJob.Job != 7 {
		t.Fatalf("job record mangled in forwarding: %+v", cs.lastJob)
	}
	// Retention is unchanged by streaming.
	if r.TotalJobs() != 1 || len(r.Reconfigs()) != 1 || len(r.Retires()) != 1 || len(r.AccelEvents()) != 1 {
		t.Fatal("streaming replaced retention instead of adding to it")
	}
	// Detach: no further forwards.
	r.SetStream(nil)
	r.Record(JobRecord{Task: "a"})
	if cs.jobs != 1 {
		t.Fatal("detached stream still receives records")
	}
}

// nopStream does nothing — the alloc-measurement stand-in for a pipeline.
type nopStream struct{}

func (nopStream) StreamJob(JobRecord)           {}
func (nopStream) StreamReconfig(ReconfigRecord) {}
func (nopStream) StreamRetire(RetireEvent)      {}
func (nopStream) StreamAccel(AccelEvent)        {}

func TestRecordWithStreamAllocationFree(t *testing.T) {
	r := NewRecorder(false)
	r.SetStream(nopStream{})
	j := JobRecord{Task: "steady", Finish: ms(1), Deadline: ms(2)}
	if avg := testing.AllocsPerRun(1000, func() { r.Record(j) }); avg != 0 {
		t.Fatalf("steady-state Record with a stream allocates %.1f times per call", avg)
	}
}
