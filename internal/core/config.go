package core

import (
	"fmt"
	"time"

	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/trace"
)

// MappingScheme selects where ready jobs live (paper Section 3.3/3.4).
type MappingScheme int

// Mapping schemes.
const (
	// MappingGlobal shares one ready queue among all worker threads.
	MappingGlobal MappingScheme = iota + 1
	// MappingPartitioned gives each worker thread its own ready queue; every
	// task is bound to a virtual core (TData.VirtCore).
	MappingPartitioned
	// MappingOffline runs a pre-computed time-triggered table per worker
	// (Section 3.4); no scheduler thread is spawned.
	MappingOffline
)

func (m MappingScheme) String() string {
	switch m {
	case MappingGlobal:
		return "global"
	case MappingPartitioned:
		return "partitioned"
	case MappingOffline:
		return "offline"
	default:
		return fmt.Sprintf("MappingScheme(%d)", int(m))
	}
}

// PriorityAssignment selects the priority ordering of the ready queues.
type PriorityAssignment int

// Priority assignments (Section 3.3).
const (
	// PriorityRM orders by period (rate monotonic, static).
	PriorityRM PriorityAssignment = iota + 1
	// PriorityDM orders by relative deadline (deadline monotonic, static).
	PriorityDM
	// PriorityEDF orders by absolute deadline (dynamic).
	PriorityEDF
	// PriorityUser orders by TData.Priority (static, user-defined).
	PriorityUser
)

func (p PriorityAssignment) String() string {
	switch p {
	case PriorityRM:
		return "RM"
	case PriorityDM:
		return "DM"
	case PriorityEDF:
		return "EDF"
	case PriorityUser:
		return "user"
	default:
		return fmt.Sprintf("PriorityAssignment(%d)", int(p))
	}
}

// VersionSelectMethod selects how the runtime picks among a task's versions
// (Section 3.2: five options, chosen at compile time).
type VersionSelectMethod int

// Version-selection methods.
const (
	// SelectFirst always picks the first declared runnable version (the
	// degenerate single-version behaviour).
	SelectFirst VersionSelectMethod = iota + 1
	// SelectEnergy picks the best-quality version whose energy budget the
	// current battery level affords.
	SelectEnergy
	// SelectTradeoff minimises alpha*WCET + (1-alpha)*energy.
	SelectTradeoff
	// SelectMode picks the first version whose mode mask matches the
	// application's current execution mode.
	SelectMode
	// SelectBitmask picks the first version whose permission mask intersects
	// the application's current permission mask.
	SelectBitmask
	// SelectUser delegates to a user callback.
	SelectUser
)

func (v VersionSelectMethod) String() string {
	switch v {
	case SelectFirst:
		return "first"
	case SelectEnergy:
		return "energy"
	case SelectTradeoff:
		return "tradeoff"
	case SelectMode:
		return "mode"
	case SelectBitmask:
		return "bitmask"
	case SelectUser:
		return "user"
	default:
		return fmt.Sprintf("VersionSelectMethod(%d)", int(v))
	}
}

// WaitStrategy selects how idle threads wait (Section 3.5 "Waiting"):
// sleeping enters the (hard to analyse) kernel, spinning wastes energy but
// wakes instantly.
type WaitStrategy int

// Wait strategies.
const (
	WaitSleep WaitStrategy = iota + 1
	WaitSpin
)

func (w WaitStrategy) String() string {
	switch w {
	case WaitSleep:
		return "sleep"
	case WaitSpin:
		return "spin"
	default:
		return fmt.Sprintf("WaitStrategy(%d)", int(w))
	}
}

// LockChoice selects the internal lock implementation (Section 3.5
// "Locking"): POSIX mutexes or lock-free/spin algorithms.
type LockChoice int

// Lock choices.
const (
	LockPOSIX LockChoice = iota + 1
	LockFree
)

func (l LockChoice) String() string {
	switch l {
	case LockPOSIX:
		return "posix"
	case LockFree:
		return "lockfree"
	default:
		return fmt.Sprintf("LockChoice(%d)", int(l))
	}
}

func (l LockChoice) rtKind() rt.LockKind {
	if l == LockFree {
		return rt.LockSpin
	}
	return rt.LockOS
}

// Config is the static middleware configuration — the Go analogue of the
// paper's config.h (Listing 1). One policy per App; switching policies means
// building a new App, as recompilation does in C.
type Config struct {
	Mapping       MappingScheme
	Priority      PriorityAssignment
	VersionSelect VersionSelectMethod
	Wait          WaitStrategy
	Lock          LockChoice

	// Workers is the number of worker threads (virtual CPUs); THREADS_SIZE.
	Workers int
	// WorkerCores pins each worker to a platform core; len == Workers.
	// Leave nil to pin workers to cores 1..Workers with the scheduler on 0.
	WorkerCores []int
	// SchedulerCore pins the scheduler thread (online mappings only).
	SchedulerCore int

	// Static sizes, mirroring *_SIZE macros.
	MaxTasks           int // PERIODIC_TASK_SIZE + NONPERIODIC_TASK_SIZE
	MaxVersionsPerTask int // VERSION_MAX_SIZE
	MaxChannels        int // CHANNEL_SIZE
	MaxAccels          int // HWACCEL_SIZE
	// MaxPendingJobs bounds simultaneously live jobs (ready + running +
	// preempted). Releases beyond it are dropped and counted as overruns.
	MaxPendingJobs int
	// GraphInstanceCap bounds in-flight activations per graph edge.
	GraphInstanceCap int

	// TradeoffAlpha weights WCET vs energy for SelectTradeoff, in [0,1].
	TradeoffAlpha float64
	// UserSelect is the SelectUser callback.
	UserSelect SelectFunc
	// Preemption enables signal-based preemption (online mappings).
	Preemption bool
	// AsyncAccel enables the asynchronous-accelerator extension (the
	// paper's "future work" in Section 3.2): while a job's accelerator
	// section runs, the CPU worker is released to execute other jobs.
	AsyncAccel bool
	// SchedulerPeriod overrides the scheduler thread period; 0 derives the
	// GCD of all task periods, as the paper specifies.
	SchedulerPeriod time.Duration
	// RecordAccel retains every accelerator-arbitration event
	// (acquire/park/boost/grant/requeue/release; memory grows with run
	// length). The scenario checker, yasmin-sim's per-pool report and the
	// contention benchmarks need it; steady production runs leave it off so
	// the arbitration path stays allocation-free.
	RecordAccel bool
	// RecordJobs retains every job record (memory grows with run length);
	// per-task aggregates are always kept.
	RecordJobs bool
	// Telemetry, when set, streams every trace record (jobs, reconfig
	// epochs, retirements, accel events — the latter still gated on
	// RecordAccel) into the given consumer as it is produced, without
	// taking the recorder mutex. Wire a *telemetry.Pipeline here for
	// batched JSONL export with backpressure; retention flags above are
	// unaffected (streaming replaces retention only if you turn retention
	// off). The consumer must not block: it runs on the record hot path.
	Telemetry trace.Stream
}

// Validate checks the configuration and fills defaulted fields in place.
func (c *Config) Validate() error {
	if c.Mapping == 0 {
		c.Mapping = MappingGlobal
	}
	if c.Priority == 0 {
		c.Priority = PriorityEDF
	}
	if c.VersionSelect == 0 {
		c.VersionSelect = SelectFirst
	}
	if c.Wait == 0 {
		c.Wait = WaitSleep
	}
	if c.Lock == 0 {
		c.Lock = LockPOSIX
	}
	if c.Workers <= 0 {
		return fmt.Errorf("core: config needs Workers >= 1, got %d", c.Workers)
	}
	if c.WorkerCores == nil {
		c.WorkerCores = make([]int, c.Workers)
		for i := range c.WorkerCores {
			c.WorkerCores[i] = i + 1
		}
		c.SchedulerCore = 0
	}
	if len(c.WorkerCores) != c.Workers {
		return fmt.Errorf("core: WorkerCores has %d entries for %d workers",
			len(c.WorkerCores), c.Workers)
	}
	if c.MaxTasks <= 0 {
		c.MaxTasks = 64
	}
	if c.MaxVersionsPerTask <= 0 {
		c.MaxVersionsPerTask = 4
	}
	if c.MaxChannels < 0 {
		return fmt.Errorf("core: negative MaxChannels")
	}
	if c.MaxChannels == 0 {
		c.MaxChannels = 64
	}
	if c.MaxAccels < 0 {
		return fmt.Errorf("core: negative MaxAccels")
	}
	if c.MaxAccels == 0 {
		c.MaxAccels = 4
	}
	if c.MaxPendingJobs <= 0 {
		c.MaxPendingJobs = 4 * c.MaxTasks
	}
	if c.GraphInstanceCap <= 0 {
		c.GraphInstanceCap = 16
	}
	if c.TradeoffAlpha < 0 || c.TradeoffAlpha > 1 {
		return fmt.Errorf("core: TradeoffAlpha %g out of [0,1]", c.TradeoffAlpha)
	}
	if c.VersionSelect == SelectUser && c.UserSelect == nil {
		return fmt.Errorf("core: SelectUser requires a UserSelect callback")
	}
	if c.SchedulerPeriod < 0 {
		return fmt.Errorf("core: negative SchedulerPeriod")
	}
	switch c.Mapping {
	case MappingGlobal, MappingPartitioned, MappingOffline:
	default:
		return fmt.Errorf("core: unknown mapping scheme %v", c.Mapping)
	}
	switch c.Priority {
	case PriorityRM, PriorityDM, PriorityEDF, PriorityUser:
	default:
		return fmt.Errorf("core: unknown priority assignment %v", c.Priority)
	}
	return nil
}
