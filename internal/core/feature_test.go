package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/yasmin-rt/yasmin/internal/platform"
	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/sim"
)

// versionMarker returns a TaskFunc that records which version ran.
func versionMarker(log *[]string, name string, d time.Duration) TaskFunc {
	return func(x *ExecCtx, _ any) error {
		*log = append(*log, name)
		return x.Compute(d)
	}
}

func TestEnergyVersionSelection(t *testing.T) {
	// High battery -> high-quality (GPU) version; low battery -> cheap one.
	for _, tc := range []struct {
		name    string
		level   float64
		wantVer string
	}{
		{"full battery picks quality", 90, "gpu"},
		{"low battery picks cheap", 10, "cpu"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(t, Config{Workers: 1, VersionSelect: SelectEnergy}, platform.GenericWithGPU(2))
			bat, err := platform.NewBattery(1000)
			if err != nil {
				t.Fatal(err)
			}
			if err := bat.SetLevel(tc.level); err != nil {
				t.Fatal(err)
			}
			r.app.SetBattery(bat)
			var log []string
			tid, _ := r.app.TaskDecl(TData{Name: "multi", Period: ms(10)})
			r.app.VersionDecl(tid, versionMarker(&log, "cpu", ms(1)), nil,
				VSelect{Quality: 1, EnergyBudget: 1, MinBattery: 0})
			r.app.VersionDecl(tid, versionMarker(&log, "gpu", ms(1)), nil,
				VSelect{Quality: 5, EnergyBudget: 10, MinBattery: 50})
			r.runMain(t, ms(25), nil)
			if len(log) == 0 {
				t.Fatal("no jobs ran")
			}
			for _, got := range log {
				if got != tc.wantVer {
					t.Errorf("ran %q, want %q", got, tc.wantVer)
				}
			}
		})
	}
}

func TestEnergySelectionUsesUserCallback(t *testing.T) {
	// The paper's Listing 2 wires a user battery callback into VSelect.
	r := newRig(t, Config{Workers: 1, VersionSelect: SelectEnergy}, nil)
	level := 100.0
	batt := func() float64 { return level }
	var log []string
	tid, _ := r.app.TaskDecl(TData{Name: "left", Period: ms(10)})
	r.app.VersionDecl(tid, versionMarker(&log, "v1", ms(1)), nil,
		VSelect{Quality: 1, EnergyBudget: 5, GetBatteryStatus: batt})
	r.app.VersionDecl(tid, versionMarker(&log, "v2", ms(1)), nil,
		VSelect{Quality: 9, EnergyBudget: 12, MinBattery: 40, GetBatteryStatus: batt})
	r.runMain(t, ms(45), func(c rt.Ctx) {
		c.Sleep(ms(18))
		level = 20 // battery collapses mid-run
	})
	if len(log) < 3 {
		t.Fatalf("only %d jobs", len(log))
	}
	if log[0] != "v2" {
		t.Errorf("first job ran %q, want v2 (battery full)", log[0])
	}
	last := log[len(log)-1]
	if last != "v1" {
		t.Errorf("last job ran %q, want v1 (battery low)", last)
	}
}

func TestTradeoffSelection(t *testing.T) {
	// alpha=1: pure WCET minimisation; alpha=0: pure energy minimisation.
	for _, tc := range []struct {
		alpha float64
		want  string
	}{
		{1.0, "fast"},
		{0.0, "frugal"},
	} {
		t.Run(fmt.Sprintf("alpha=%g", tc.alpha), func(t *testing.T) {
			r := newRig(t, Config{Workers: 1, VersionSelect: SelectTradeoff, TradeoffAlpha: tc.alpha}, nil)
			var log []string
			tid, _ := r.app.TaskDecl(TData{Name: "m", Period: ms(10)})
			r.app.VersionDecl(tid, versionMarker(&log, "fast", ms(1)), nil,
				VSelect{WCET: ms(1), EnergyBudget: 100})
			r.app.VersionDecl(tid, versionMarker(&log, "frugal", ms(3)), nil,
				VSelect{WCET: ms(3), EnergyBudget: 5})
			r.runMain(t, ms(25), nil)
			if len(log) == 0 || log[0] != tc.want {
				t.Errorf("log = %v, want %q first", log, tc.want)
			}
		})
	}
}

func TestModeSelection(t *testing.T) {
	// The paper's multi-security-mode example: switch encodings at runtime.
	r := newRig(t, Config{Workers: 1, VersionSelect: SelectMode}, nil)
	var log []string
	tid, _ := r.app.TaskDecl(TData{Name: "encode", Period: ms(10)})
	r.app.VersionDecl(tid, versionMarker(&log, "plain", ms(1)), nil, VSelect{Modes: 1 << 0})
	r.app.VersionDecl(tid, versionMarker(&log, "aes", ms(2)), nil, VSelect{Modes: 1 << 1})
	r.runMain(t, ms(55), func(c rt.Ctx) {
		c.Sleep(ms(25))
		r.app.SetMode(1) // switch to secure mode mid-run
	})
	if len(log) < 4 {
		t.Fatalf("only %d jobs", len(log))
	}
	if log[0] != "plain" {
		t.Errorf("mode 0 ran %q, want plain", log[0])
	}
	if last := log[len(log)-1]; last != "aes" {
		t.Errorf("mode 1 ran %q, want aes", last)
	}
}

func TestBitmaskSelection(t *testing.T) {
	r := newRig(t, Config{Workers: 1, VersionSelect: SelectBitmask}, nil)
	var log []string
	tid, _ := r.app.TaskDecl(TData{Name: "t", Period: ms(10)})
	r.app.VersionDecl(tid, versionMarker(&log, "a", ms(1)), nil, VSelect{Mask: 0b01})
	r.app.VersionDecl(tid, versionMarker(&log, "b", ms(1)), nil, VSelect{Mask: 0b10})
	r.app.SetPermissionMask(0b10)
	r.runMain(t, ms(25), nil)
	for _, got := range log {
		if got != "b" {
			t.Errorf("ran %q, want b (mask selects it)", got)
		}
	}
}

func TestUserSelection(t *testing.T) {
	picked := VID(-1)
	cfg := Config{
		Workers:       1,
		VersionSelect: SelectUser,
		UserSelect: func(tid TID, vs []VersionInfo, st SelectState) VID {
			picked = vs[len(vs)-1].ID // always the last version
			return picked
		},
	}
	r := newRig(t, cfg, nil)
	var log []string
	tid, _ := r.app.TaskDecl(TData{Name: "t", Period: ms(10)})
	r.app.VersionDecl(tid, versionMarker(&log, "first", ms(1)), nil, VSelect{})
	r.app.VersionDecl(tid, versionMarker(&log, "second", ms(1)), nil, VSelect{})
	r.runMain(t, ms(25), nil)
	if picked != 1 {
		t.Errorf("callback picked %d, want 1", picked)
	}
	for _, got := range log {
		if got != "second" {
			t.Errorf("ran %q, want second", got)
		}
	}
}

func TestAccelContentionPrefersFreeVersion(t *testing.T) {
	// Two tasks, both with GPU and CPU versions, same release: only one GPU
	// exists, so one must take the CPU version — the paper's Section 2
	// motivating example.
	pl := platform.GenericWithGPU(4)
	r := newRig(t, Config{Workers: 2, VersionSelect: SelectFirst}, pl)
	gpu, err := r.app.HwAccelDecl("gpu0")
	if err != nil {
		t.Fatal(err)
	}
	var log []string
	mk := func(name string) TID {
		tid, _ := r.app.TaskDecl(TData{Name: name, Period: ms(20)})
		// GPU version declared first: preferred when free.
		gv, _ := r.app.VersionDecl(tid, versionMarker(&log, name+"/gpu", ms(8)), nil, VSelect{})
		r.app.VersionDecl(tid, versionMarker(&log, name+"/cpu", ms(8)), nil, VSelect{})
		if err := r.app.HwAccelUse(tid, gv, gpu); err != nil {
			t.Fatal(err)
		}
		return tid
	}
	mk("A")
	mk("B")
	r.runMain(t, ms(19), nil)
	if len(log) != 2 {
		t.Fatalf("log = %v, want 2 jobs", log)
	}
	gpuRuns, cpuRuns := 0, 0
	for _, e := range log {
		switch e[2:] {
		case "gpu":
			gpuRuns++
		case "cpu":
			cpuRuns++
		}
	}
	if gpuRuns != 1 || cpuRuns != 1 {
		t.Errorf("log = %v, want exactly one GPU and one CPU run in parallel", log)
	}
}

func TestAccelWaitAndPIP(t *testing.T) {
	// Single worker variant is hard to arrange; use 2 workers and GPU-only
	// versions: the second job must wait for the accelerator, and since it
	// is more urgent, the holder is boosted (observable via completion
	// order and the waiter eventually running).
	pl := platform.GenericWithGPU(4)
	r := newRig(t, Config{Workers: 2, Priority: PriorityEDF, Preemption: true}, pl)
	gpu, _ := r.app.HwAccelDecl("gpu0")
	var log []string
	// holder: long GPU job, loose deadline, released first.
	holder, _ := r.app.TaskDecl(TData{Name: "holder", Period: ms(100), Deadline: ms(90)})
	hv, _ := r.app.VersionDecl(holder, versionMarker(&log, "holder", ms(20)), nil, VSelect{})
	r.app.HwAccelUse(holder, hv, gpu)
	// urgent: GPU-only job, tight deadline, released shortly after.
	urgent, _ := r.app.TaskDecl(TData{Name: "urgent", Period: ms(100), Deadline: ms(40), ReleaseOffset: ms(5)})
	uv, _ := r.app.VersionDecl(urgent, versionMarker(&log, "urgent", ms(5)), nil, VSelect{})
	r.app.HwAccelUse(urgent, uv, gpu)
	r.runMain(t, ms(95), nil)

	if len(log) < 2 {
		t.Fatalf("log = %v", log)
	}
	if log[0] != "holder" || log[1] != "urgent" {
		t.Errorf("order = %v, want holder then urgent (PIP: no deadlock, waiter runs after release)", log)
	}
	urgentSt := r.app.Recorder().Task("urgent")
	if urgentSt == nil || urgentSt.Jobs == 0 {
		t.Fatal("urgent never ran: accelerator waiter lost")
	}
	// holder ran 20ms from ~0; urgent finished by ~30ms < its 45ms deadline.
	if urgentSt.Misses != 0 {
		t.Errorf("urgent missed %d deadlines", urgentSt.Misses)
	}
}

func TestAsyncAccelFreesWorker(t *testing.T) {
	// With AsyncAccel, a CPU-bound task can run while another task's
	// accelerator section is in flight on the same single worker.
	pl := platform.GenericWithGPU(2)
	mkApp := func(async bool) (time.Duration, int64) {
		r := newRig(t, Config{Workers: 1, VersionSelect: SelectFirst, AsyncAccel: async, Preemption: true}, pl)
		gpu, _ := r.app.HwAccelDecl("gpu0")
		gt, _ := r.app.TaskDecl(TData{Name: "gputask", Period: ms(100)})
		gv, _ := r.app.VersionDecl(gt, func(x *ExecCtx, _ any) error {
			if err := x.Compute(ms(1)); err != nil { // CPU prologue
				return err
			}
			if err := x.AccelSection(ms(30)); err != nil { // GPU part
				return err
			}
			return x.Compute(ms(1)) // CPU epilogue
		}, nil, VSelect{})
		r.app.HwAccelUse(gt, gv, gpu)
		ct, _ := r.app.TaskDecl(TData{Name: "cputask", Period: ms(100), Deadline: ms(20), ReleaseOffset: ms(2)})
		r.app.VersionDecl(ct, spin(ms(5)), nil, VSelect{})
		r.runMain(t, ms(95), nil)
		st := r.app.Recorder().Task("cputask")
		if st == nil {
			t.Fatal("cputask never ran")
		}
		_, max, _ := st.Response.Summary()
		return max, st.Misses
	}
	syncMax, syncMisses := mkApp(false)
	asyncMax, asyncMisses := mkApp(true)
	// Synchronous: worker blocked ~32ms; cputask (D=20ms) misses.
	if syncMisses == 0 {
		t.Errorf("sync: expected cputask misses behind the blocking GPU section (max resp %v)", syncMax)
	}
	// Asynchronous: worker freed during the 30ms GPU section; cputask fits.
	if asyncMisses != 0 {
		t.Errorf("async: cputask missed %d deadlines (max resp %v), worker not freed", asyncMisses, asyncMax)
	}
	if asyncMax >= syncMax {
		t.Errorf("async max response %v not better than sync %v", asyncMax, syncMax)
	}
}

func TestMultiModeStopAlterRestart(t *testing.T) {
	// The paper: the task set may be altered while the schedule is stopped
	// (multi-mode scheduling), then resumed with a new Start.
	r := newRig(t, Config{Workers: 1}, nil)
	tid, _ := r.app.TaskDecl(TData{Name: "phase1", Period: ms(10)})
	r.app.VersionDecl(tid, spin(ms(1)), nil, VSelect{})
	r.env.Spawn("main", rt.UnpinnedCore, func(c rt.Ctx) {
		if err := r.app.Start(c); err != nil {
			t.Errorf("Start 1: %v", err)
			return
		}
		// While running, declarations must fail.
		if _, err := r.app.TaskDecl(TData{Name: "nope", Period: ms(5)}); err == nil {
			t.Error("TaskDecl while running must fail")
		}
		c.Sleep(ms(35))
		r.app.Stop(c)
		// Wait out the drain, then alter the set.
		for !r.app.drained() {
			c.Sleep(ms(1))
		}
		for r.app.workersLive.Load() > 0 || r.app.schedLive.Load() > 0 {
			c.Sleep(ms(1))
		}
		r.app.started.Store(false) // stopped: allow declarations
		t2, err := r.app.TaskDecl(TData{Name: "phase2", Period: ms(5)})
		if err != nil {
			t.Errorf("TaskDecl after stop: %v", err)
			return
		}
		r.app.VersionDecl(t2, spin(ms(1)), nil, VSelect{})
		if err := r.app.Start(c); err != nil {
			t.Errorf("Start 2: %v", err)
			return
		}
		c.Sleep(ms(35))
		r.app.Stop(c)
		r.app.Cleanup(c)
	})
	if err := r.eng.Run(sim.Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	p1 := r.app.Recorder().Task("phase1")
	p2 := r.app.Recorder().Task("phase2")
	if p1 == nil || p1.Jobs < 4 {
		t.Errorf("phase1 stats = %+v", p1)
	}
	if p2 == nil || p2.Jobs < 4 {
		t.Errorf("phase2 stats = %+v (restart failed)", p2)
	}
}

func TestOfflineDispatch(t *testing.T) {
	r := newRig(t, Config{Workers: 2, Mapping: MappingOffline, RecordJobs: true}, nil)
	a, _ := r.app.TaskDecl(TData{Name: "a", Period: ms(20)})
	b, _ := r.app.TaskDecl(TData{Name: "b", Period: ms(20)})
	c0, _ := r.app.TaskDecl(TData{Name: "c", Period: ms(20)})
	r.app.VersionDecl(a, spin(ms(3)), nil, VSelect{})
	r.app.VersionDecl(b, spin(ms(3)), nil, VSelect{})
	r.app.VersionDecl(c0, spin(ms(3)), nil, VSelect{})
	tbl := &OfflineTable{
		Cycle: ms(20),
		PerWorker: [][]TableEntry{
			{{Offset: 0, Task: a, Version: 0}, {Offset: ms(10), Task: c0, Version: 0}},
			{{Offset: ms(2), Task: b, Version: 0}},
		},
	}
	if err := r.app.SetOfflineTable(tbl); err != nil {
		t.Fatal(err)
	}
	r.runMain(t, ms(60), nil)
	jobs := r.app.Recorder().Jobs()
	if len(jobs) < 7 {
		t.Fatalf("jobs = %d, want ~9 over 3 cycles", len(jobs))
	}
	for _, j := range jobs {
		var wantOff time.Duration
		switch j.Task {
		case "a":
			wantOff = 0
		case "b":
			wantOff = ms(2)
		case "c":
			wantOff = ms(10)
		}
		phase := j.Start % ms(20)
		slack := phase - wantOff
		if slack < 0 || slack > ms(1) {
			t.Errorf("%s job started at %v (phase %v), want table offset %v",
				j.Task, j.Start, phase, wantOff)
		}
		if j.Missed {
			t.Errorf("%s missed its deadline in the static schedule", j.Task)
		}
	}
}

func TestOfflineDispatchRecordsTaskErrors(t *testing.T) {
	r := newRig(t, Config{Workers: 1, Mapping: MappingOffline}, nil)
	boom := errors.New("sensor fault")
	a, _ := r.app.TaskDecl(TData{Name: "a", Period: ms(10)})
	r.app.VersionDecl(a, func(x *ExecCtx, _ any) error {
		if err := x.Compute(ms(1)); err != nil {
			return err
		}
		return boom
	}, nil, VSelect{})
	tbl := &OfflineTable{
		Cycle:     ms(10),
		PerWorker: [][]TableEntry{{{Offset: 0, Task: a, Version: 0}}},
	}
	if err := r.app.SetOfflineTable(tbl); err != nil {
		t.Fatal(err)
	}
	r.runMain(t, ms(35), nil)
	if n := r.app.TaskErrors(); n < 3 {
		t.Errorf("TaskErrors = %d, want one per dispatched job", n)
	}
	if err := r.app.FirstError(); !errors.Is(err, boom) {
		t.Errorf("FirstError = %v, want %v", err, boom)
	}
}

func TestOfflineTableValidation(t *testing.T) {
	r := newRig(t, Config{Workers: 1, Mapping: MappingOffline}, nil)
	a, _ := r.app.TaskDecl(TData{Name: "a", Period: ms(10)})
	r.app.VersionDecl(a, spin(ms(1)), nil, VSelect{})
	bad := []*OfflineTable{
		{Cycle: 0, PerWorker: [][]TableEntry{{}}},
		{Cycle: ms(10), PerWorker: [][]TableEntry{{}, {}}},
		{Cycle: ms(10), PerWorker: [][]TableEntry{{{Offset: ms(15), Task: a}}}},
		{Cycle: ms(10), PerWorker: [][]TableEntry{{{Offset: ms(5), Task: a}, {Offset: ms(2), Task: a}}}},
		{Cycle: ms(10), PerWorker: [][]TableEntry{{{Offset: 0, Task: TID(9)}}}},
		{Cycle: ms(10), PerWorker: [][]TableEntry{{{Offset: 0, Task: a, Version: 3}}}},
	}
	for i, tbl := range bad {
		if err := r.app.SetOfflineTable(tbl); err == nil {
			t.Errorf("table %d accepted, want error", i)
		}
	}
	// Offline start without table must fail.
	r2 := newRig(t, Config{Workers: 1, Mapping: MappingOffline}, nil)
	x, _ := r2.app.TaskDecl(TData{Name: "x", Period: ms(10)})
	r2.app.VersionDecl(x, spin(ms(1)), nil, VSelect{})
	r2.env.Spawn("main", rt.UnpinnedCore, func(c rt.Ctx) {
		if err := r2.app.Start(c); err == nil {
			t.Error("offline Start without table must fail")
			r2.app.Stop(c)
			r2.app.Cleanup(c)
		}
	})
	if err := r2.eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
}

func TestOverrunsOnPoolExhaustion(t *testing.T) {
	// 1 worker, long jobs, tiny pool: releases must be dropped and counted.
	r := newRig(t, Config{Workers: 1, MaxPendingJobs: 2}, nil)
	tid, _ := r.app.TaskDecl(TData{Name: "hog", Period: ms(5)})
	r.app.VersionDecl(tid, spin(ms(30)), nil, VSelect{})
	r.runMain(t, ms(100), nil)
	if r.app.Overruns() == 0 {
		t.Error("expected overruns with a 2-job pool and 6x overload")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int64, time.Duration, time.Duration) {
		r := newRig(t, Config{Workers: 2, Priority: PriorityEDF, Preemption: true}, platform.OdroidXU4())
		for i := 0; i < 5; i++ {
			tid, _ := r.app.TaskDecl(TData{
				Name:   fmt.Sprintf("t%d", i),
				Period: time.Duration(10+3*i) * time.Millisecond,
			})
			r.app.VersionDecl(tid, spin(time.Duration(1+i)*time.Millisecond), nil, VSelect{})
		}
		r.runMain(t, ms(300), nil)
		rec := r.app.Recorder()
		var totResp time.Duration
		for _, n := range rec.TaskNames() {
			totResp += rec.Task(n).Response.Mean()
		}
		return rec.TotalJobs(), totResp, r.app.Overheads().Total().Max()
	}
	j1, r1, o1 := run()
	j2, r2, o2 := run()
	if j1 != j2 || r1 != r2 || o1 != o2 {
		t.Errorf("non-deterministic: (%d,%v,%v) vs (%d,%v,%v)", j1, r1, o1, j2, r2, o2)
	}
	if j1 == 0 {
		t.Error("no jobs ran")
	}
}

func TestOverheadsAreRecorded(t *testing.T) {
	r := newRig(t, Config{Workers: 2}, nil)
	tid, _ := r.app.TaskDecl(TData{Name: "t", Period: ms(10)})
	r.app.VersionDecl(tid, spin(ms(1)), nil, VSelect{})
	r.runMain(t, ms(100), nil)
	if r.app.Overheads().Total().Count() == 0 {
		t.Error("no overhead samples recorded")
	}
	if st := r.app.Overheads().Kind(2); st == nil { // OverheadDispatch
		t.Error("no dispatch overhead recorded")
	}
}

func TestLockFreeConfigRuns(t *testing.T) {
	r := newRig(t, Config{Workers: 2, Lock: LockFree, Wait: WaitSpin}, nil)
	tid, _ := r.app.TaskDecl(TData{Name: "t", Period: ms(10)})
	r.app.VersionDecl(tid, spin(ms(2)), nil, VSelect{})
	r.runMain(t, ms(60), nil)
	st := r.app.Recorder().Task("t")
	if st == nil || st.Jobs < 5 {
		t.Errorf("stats = %+v", st)
	}
	if st != nil && st.Misses != 0 {
		t.Errorf("misses = %d", st.Misses)
	}
}

func TestOSEnvSmoke(t *testing.T) {
	// The middleware as a real wall-clock Go library: short smoke run.
	env := rt.NewOSEnv()
	env.Spin = false
	app, err := New(Config{Workers: 2}, env)
	if err != nil {
		t.Fatal(err)
	}
	tid, err := app.TaskDecl(TData{Name: "tick", Period: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.VersionDecl(tid, spin(time.Millisecond), nil, VSelect{}); err != nil {
		t.Fatal(err)
	}
	env.RunMain(func(c rt.Ctx) {
		if err := app.Start(c); err != nil {
			t.Errorf("Start: %v", err)
			return
		}
		c.Sleep(150 * time.Millisecond)
		app.Stop(c)
		app.Cleanup(c)
	})
	env.Wait()
	st := app.Recorder().Task("tick")
	if st == nil || st.Jobs < 3 {
		t.Fatalf("wall-clock run produced %+v", st)
	}
}
