package core

import (
	"fmt"
	"time"

	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/trace"
)

// Start begins executing the task set — yas_start. It spawns the worker
// threads (and, for online mappings, the dedicated scheduler thread) and
// returns immediately; call it from a thread context (ctx) of the same
// environment. A stopped App can be started again after altering the task
// set (multi-mode scheduling).
func (a *App) Start(c rt.Ctx) error {
	if a.started.Load() {
		return ErrStarted
	}
	// Serialise against live-reconfiguration transactions: a Reconfigure
	// racing Start must observe either the stopped or the fully started
	// application, never the half-initialised tables.
	a.reconfigMu.Lock(c)
	defer a.reconfigMu.Unlock(c)
	// A previous run's threads may still be draining; wait them out before
	// mutating shared state and so the stopping flag can be reset safely.
	for a.workersLive.Load() > 0 || a.schedLive.Load() > 0 {
		c.Sleep(100 * time.Microsecond)
	}
	if err := a.resolve(); err != nil {
		return err
	}
	if a.cfg.Mapping == MappingOffline && a.offTable == nil {
		return fmt.Errorf("core: MappingOffline needs SetOfflineTable before Start")
	}
	a.stopping.Store(false)
	a.terminating.Store(false)
	a.startTime = c.Now()
	if a.cfg.SchedulerPeriod != 0 {
		a.schedPeriodNs.Store(int64(a.cfg.SchedulerPeriod))
	} else {
		a.schedPeriodNs.Store(int64(a.schedGCD()))
	}
	// Fresh release shards for this run: wheel granularity is the scheduler
	// grid, so every periodic release instant falls exactly on a wheel tick.
	gran := a.schedPeriodNow()
	for _, sh := range a.shards {
		sh.wheel = newTimerWheel(gran, a.startTime)
		sh.due = sh.due[:0]
	}
	a.dataPending = a.dataPending[:0]
	for i := 0; i < a.ntasks; i++ {
		t := &a.tasks[i]
		t.wheelLive = false
		t.wheelGen++
		t.pendingData = false
		if t.state == taskRetired {
			continue
		}
		t.state = taskRunning
		t.nextRelease = a.startTime + t.d.ReleaseOffset
		t.lastActivation = 0
		t.everActivated = false
		if t.root && t.d.Period > 0 && !t.d.Sporadic {
			a.wheelInsertLocked(t)
		}
	}
	// Reset graph edges and pre-seed delay tokens (feedback loops fire
	// their first `initial` iterations on the seeds).
	for i := 0; i < a.nedges; i++ {
		e := &a.edges[i]
		if e.dead {
			continue
		}
		e.head, e.count, e.tokens = 0, 0, 0
		for k := 0; k < e.initial; k++ {
			e.pushStamp(a.startTime)
		}
	}
	// Data-activated tasks whose seeded delay tokens already satisfy every
	// input fire on the first tick via the catch-up queue.
	for i := 0; i < a.ntasks; i++ {
		a.noteDataReadyLocked(&a.tasks[i])
	}
	// Reset runtime queues and pools.
	for _, q := range a.queues {
		for q.len() > 0 {
			q.pop()
		}
	}
	for i := 0; i < a.naccels; i++ {
		a.accels[i].busy = false
		a.accels[i].holder = nil
		a.accels[i].waiters = a.accels[i].waiters[:0]
	}
	for _, w := range a.workers {
		w.idle = false
		w.current = nil
		w.preempted = w.preempted[:0]
		w.wakeReason = wakeNone
	}
	a.freeFib = a.freeFib[:0]
	a.started.Store(true)

	// Spawn fibers (execution contexts, preallocated as the paper's
	// swapcontext stacks are). Fibers survive Stop/Start cycles; Cleanup
	// terminates them.
	if !a.fibersSpawned {
		a.fibersSpawned = true
		for i := range a.fibers {
			f := &fiber{idx: i, app: a}
			a.fibers[i] = f
			a.liveThreads.Add(1)
			f.th = a.env.Spawn(fmt.Sprintf("yas-fiber-%d", i), rt.UnpinnedCore, f.loop)
			a.freeFib = append(a.freeFib, i)
		}
	} else {
		for i := range a.fibers {
			a.freeFib = append(a.freeFib, i)
		}
	}
	// Spawn workers.
	for _, w := range a.workers {
		w := w
		a.liveThreads.Add(1)
		a.workersLive.Add(1)
		if a.cfg.Mapping == MappingOffline {
			w.th = a.env.Spawn(fmt.Sprintf("yas-worker-%d", w.idx), w.core, func(tc rt.Ctx) {
				defer a.workersLive.Add(-1)
				a.offlineWorkerLoop(tc, w)
			})
		} else {
			w.th = a.env.Spawn(fmt.Sprintf("yas-worker-%d", w.idx), w.core, func(tc rt.Ctx) {
				defer a.workersLive.Add(-1)
				a.workerLoop(tc, w)
			})
		}
	}
	// Spawn the scheduler thread on its private core (online mappings).
	if a.cfg.Mapping != MappingOffline {
		a.liveThreads.Add(1)
		a.schedLive.Add(1)
		a.schedTh = a.env.Spawn("yas-sched", a.cfg.SchedulerCore, func(tc rt.Ctx) {
			defer a.schedLive.Add(-1)
			a.schedulerLoop(tc)
		})
	}
	return nil
}

// Stop stops releasing new jobs — yas_stop. Jobs already released are still
// executed; workers then become idle. The App can be re-started.
func (a *App) Stop(c rt.Ctx) {
	if !a.started.Load() {
		return
	}
	a.stopping.Store(true)
	// Nudge the scheduler and the *idle* workers so loops observe the
	// flag. Workers waiting on a running fiber must not be woken: their
	// park is the job-completion handshake.
	if a.schedTh != nil {
		a.schedTh.Interrupt()
	}
	a.mu.Lock(c)
	for _, w := range a.workers {
		if w.th != nil && w.idle {
			w.th.Unpark()
		}
	}
	a.mu.Unlock(c)
}

// Cleanup waits for all middleware threads to finish and shuts the instance
// down — yas_cleanup. Call after Stop. The App may be re-initialised with
// Init and reused.
func (a *App) Cleanup(c rt.Ctx) {
	if !a.started.Load() {
		return
	}
	a.stopping.Store(true)
	// Let in-flight jobs drain: wait until all workers are idle and queues
	// empty, then terminate. Poll at tick granularity but no slower than a
	// millisecond — an application of hour-long periods (or one retuned to
	// them) must not stall its own teardown by a scheduler period.
	drainPoll := a.schedPeriodOr(time.Millisecond)
	if drainPoll > time.Millisecond {
		drainPoll = time.Millisecond
	}
	for !a.drained(c) {
		c.Sleep(drainPoll)
	}
	a.terminating.Store(true)
	for _, w := range a.workers {
		if w.th != nil {
			w.th.Interrupt()
			w.th.Unpark()
		}
	}
	for _, f := range a.fibers {
		if f != nil && f.th != nil {
			f.th.Interrupt()
			f.th.Unpark()
		}
	}
	for a.liveThreads.Load() > 0 {
		c.Sleep(100 * time.Microsecond)
	}
	// Every middleware thread is gone; serialise the final teardown against
	// reconfiguration transactions (which read schedTh to nudge the
	// scheduler).
	a.reconfigMu.Lock(c)
	a.started.Store(false)
	a.fibersSpawned = false
	a.schedTh = nil
	a.reconfigMu.Unlock(c)
}

// schedPeriodNow returns the current scheduler tick period; a committed
// reconfiguration may retune it while the scheduler loop runs.
func (a *App) schedPeriodNow() time.Duration {
	return time.Duration(a.schedPeriodNs.Load())
}

func (a *App) schedPeriodOr(d time.Duration) time.Duration {
	if p := a.schedPeriodNow(); p > 0 {
		return p
	}
	return d
}

// drained reports whether no job is ready, running or suspended.
func (a *App) drained(c rt.Ctx) bool {
	a.mu.Lock(c)
	defer a.mu.Unlock(c)
	return a.drainedLocked()
}

// drainedLocked is drained for callers already holding the lock.
func (a *App) drainedLocked() bool {
	for _, q := range a.queues {
		if q.len() > 0 {
			return false
		}
	}
	for _, w := range a.workers {
		if w.current != nil || len(w.preempted) > 0 {
			return false
		}
	}
	for i := 0; i < a.naccels; i++ {
		if a.accels[i].busy || len(a.accels[i].waiters) > 0 {
			return false
		}
	}
	return true
}

func (a *App) threadExit() { a.liveThreads.Add(-1) }

// schedulerLoop is the dedicated scheduler thread (Section 3.3): it wakes on
// the activation grid (the GCD of all task periods), releases due jobs,
// dispatches them to worker queues, wakes idle workers and sends preemption
// signals. Between ticks it sleeps (WaitSleep) — unlike Mollison & Anderson,
// it never contends with workers for CPU time. Grid points at which the
// release wheels hold nothing due are skipped entirely: the thread sleeps
// straight to the next populated instant, so an idle or sparse schedule
// costs nothing per empty tick.
func (a *App) schedulerLoop(c rt.Ctx) {
	defer a.threadExit()
	costs := a.env.Costs()
	for {
		if a.stopping.Load() || a.terminating.Load() {
			return
		}
		t0 := c.Now()
		c.Charge(costs.ClockRead)
		a.mu.Lock(c)
		// Re-check under the lock: Stop may have flipped the flag after the
		// loop-top check. Workers retire the moment they observe stopping
		// with everything drained, so a release slipping in here would push
		// a job no worker is left to run — Cleanup would then wait on a
		// queue that can never drain. Checking under the same lock the
		// retire decision takes makes release-vs-retire atomic: either the
		// job lands while workers are still obliged to drain it, or it is
		// never released.
		if a.stopping.Load() || a.terminating.Load() {
			a.mu.Unlock(c)
			return
		}
		released := a.releaseDue(c, t0)
		if released > 0 {
			a.dispatch(c)
		}
		wheelNext, wheelOK := a.nextWheelDueLocked()
		a.mu.Unlock(c)
		a.ovh.Add(trace.OverheadSchedule, c.Now()-t0)
		// Next grid point, recomputed from the activation grid every tick:
		// a reconfiguration commit may retune the period (it interrupts the
		// sleep below so a shorter grid takes effect immediately), and an
		// overrun snaps forward to the next point without drifting.
		period := a.schedPeriodNow()
		next := a.startTime + ((c.Now()-a.startTime)/period+1)*period
		if wheelOK && wheelNext > next {
			// Nothing can fire before wheelNext: snap it up to the grid and
			// sleep through the empty ticks. Commits that admit or retune
			// tasks interrupt the sleep, so a new earlier release is never
			// missed.
			k := (wheelNext - a.startTime + period - 1) / period
			next = a.startTime + k*period
		}
		c.Charge(costs.TimerProgram)
		if interrupted := c.SleepUntil(next); interrupted {
			if a.terminating.Load() {
				return
			}
		}
	}
}

// releaseDue releases every periodic job due at or before now, pulling due
// tasks from the per-shard release wheels instead of scanning the task
// table: the tick costs O(jobs released), independent of how many tasks are
// declared (the paper's static full scan — and its per-task charge — only
// paid off for small task sets). Caller holds the lock.
//
//yasmin:noalloc
func (a *App) releaseDue(c rt.Ctx, now time.Duration) int {
	costs := a.env.Costs()
	released := 0
	for _, sh := range a.shards {
		if sh.wheel == nil {
			continue
		}
		sh.due = sh.due[:0]
		sh.wheel.advanceTo(sh.wheel.tickAt(now), &sh.due)
		for _, t := range sh.due {
			// The modelled scan now prices exactly the entries touched.
			c.Charge(costs.StaticScanPerItem)
			if t.state != taskRunning || t.d.Period <= 0 || t.d.Sporadic || !t.root {
				continue
			}
			for t.nextRelease <= now {
				rel := t.nextRelease
				t.nextRelease += t.d.Period
				// A periodic root with (delayed) feedback in-edges only fires
				// when every feedback token is present: a missing token means
				// the previous loop iteration has not completed, and the
				// activation is dropped (counted as an overrun).
				if len(t.inEdges) > 0 {
					if !a.allInputsReady(t) {
						a.overruns.Add(1)
						continue
					}
					a.consumeInputs(t)
				}
				c.Charge(costs.QueueOpBase)
				a.releaseJob(c, t, rel, rel)
				released++
			}
			a.wheelInsertLocked(t) // re-arm for the next period
		}
	}
	released += a.releasePendingDataLocked(c, now)
	return released
}

// releasePendingDataLocked fires queued data-activated tasks whose inputs
// are complete (seeded delay tokens at Start, input backlogs exposed by a
// reconfiguration commit). The common case — a producer completing — still
// releases successors inline; this queue only catches activations that have
// no future producer completion to ride on. Caller holds the lock.
func (a *App) releasePendingDataLocked(c rt.Ctx, now time.Duration) int {
	costs := a.env.Costs()
	released := 0
	for len(a.dataPending) > 0 {
		n := len(a.dataPending) - 1
		t := a.dataPending[n]
		a.dataPending = a.dataPending[:n]
		t.pendingData = false
		if t.state != taskRunning || t.root {
			continue
		}
		for a.allInputsReady(t) {
			stamp := a.consumeInputs(t)
			c.Charge(costs.QueueOpBase)
			if a.releaseJob(c, t, now, stamp) == nil {
				break
			}
			released++
		}
	}
	return released
}

// noteDataReadyLocked queues a data-activated task on the scheduler's
// catch-up list if its inputs are complete. Caller holds the lock (or runs
// during a quiescent Start).
func (a *App) noteDataReadyLocked(t *task) {
	if t.pendingData || t.root || t.state != taskRunning || !a.allInputsReady(t) {
		return
	}
	t.pendingData = true
	a.dataPending = append(a.dataPending, t)
}

// wheelInsertLocked buckets a periodic root for its next release on its
// shard's wheel. Caller holds the lock (or runs during a quiescent Start).
func (a *App) wheelInsertLocked(t *task) {
	sh := a.shardForTask(t)
	t.wheelShard = sh
	a.shards[sh].wheel.insert(t, t.nextRelease)
}

// wheelRemoveLocked drops a task's pending release entry, if any.
func (a *App) wheelRemoveLocked(t *task) {
	if !t.wheelLive {
		return
	}
	a.shards[t.wheelShard].wheel.remove(t)
}

// shardForTask returns the release shard a task belongs to: its virtual
// core under the partitioned mapping, the single global shard otherwise.
func (a *App) shardForTask(t *task) int {
	if a.cfg.Mapping == MappingPartitioned {
		return t.d.VirtCore
	}
	return 0
}

// nextWheelDueLocked returns the earliest instant any shard's wheel can
// fire. Caller holds the lock.
func (a *App) nextWheelDueLocked() (time.Duration, bool) {
	var best time.Duration
	ok := false
	for _, sh := range a.shards {
		if sh.wheel == nil {
			continue
		}
		if tick, live := sh.wheel.nextDueTick(); live {
			at := sh.wheel.epoch + time.Duration(tick)*sh.wheel.gran
			if !ok || at < best {
				best, ok = at, true
			}
		}
	}
	return best, ok
}

// rebuildWheelsLocked rebuilds every shard wheel from scratch — needed when
// the activation grid itself changes (a reconfiguration retuned the GCD), so
// release instants stay exactly representable at the new granularity. Caller
// holds the lock; the schedule is running.
func (a *App) rebuildWheelsLocked(now time.Duration) {
	gran := a.schedPeriodNow()
	for _, sh := range a.shards {
		sh.wheel = newTimerWheel(gran, a.startTime)
		sh.wheel.advanceTo(sh.wheel.tickAt(now), &sh.due) // cursor to "now"; nothing due in an empty wheel
		sh.due = sh.due[:0]
	}
	for i := 0; i < a.ntasks; i++ {
		t := &a.tasks[i]
		t.wheelLive = false
		t.wheelGen++
		if t.state == taskRunning && t.root && t.d.Period > 0 && !t.d.Sporadic {
			a.wheelInsertLocked(t)
		}
	}
}

// releaseJob creates and enqueues one job of t. stamp is the graph-instance
// root release. Caller holds the lock.
func (a *App) releaseJob(c rt.Ctx, t *task, release, stamp time.Duration) *job {
	j := a.allocJob()
	if j == nil {
		a.overruns.Add(1)
		return nil
	}
	j.t = t
	a.jobSeq++
	j.seq = a.jobSeq
	t.jobSeq++
	j.taskSeq = t.jobSeq
	j.release = release
	j.stamp = stamp
	j.absDL = stamp + t.effDeadline
	if len(t.inEdges) > 0 {
		// Data-activated node with its own deadline: relative to activation.
		if t.d.Deadline > 0 {
			j.absDL = release + t.d.Deadline
		}
	}
	if a.cfg.Priority == PriorityEDF {
		j.basePrio = int64(j.absDL)
	} else {
		j.basePrio = t.staticPrio
	}
	j.effPrio = j.basePrio
	j.state = jobReady
	t.live++
	q := a.queueForTask(t)
	a.chargeQueueOp(c, q)
	if err := q.push(j); err != nil {
		a.overruns.Add(1)
		a.freeJob(c, j) //yasmin:alloc-ok overrun recovery may retire the task, a reconfiguration event
		return nil
	}
	return j
}

// queueForTask returns the ready queue a task's jobs go to.
func (a *App) queueForTask(t *task) *readyQueue {
	if a.cfg.Mapping == MappingPartitioned {
		return a.queues[t.d.VirtCore]
	}
	return a.queues[0]
}

// queueForWorker returns the queue a worker serves.
func (a *App) queueForWorker(w *workerState) *readyQueue {
	if a.cfg.Mapping == MappingPartitioned {
		return a.queues[w.idx]
	}
	return a.queues[0]
}

func (a *App) chargeQueueOp(c rt.Ctx, q *readyQueue) {
	costs := a.env.Costs()
	c.Charge(costs.QueueOpBase + time.Duration(q.opCost())*costs.QueueOpPerItem)
}

// dispatch wakes idle workers for ready jobs and raises preemption signals —
// the scheduler-side half of Figure 1a/1b. Caller holds the lock.
func (a *App) dispatch(c rt.Ctx) {
	costs := a.env.Costs()
	t0 := c.Now()
	if a.cfg.Mapping == MappingPartitioned {
		for _, w := range a.workers {
			q := a.queues[w.idx]
			if q.len() == 0 {
				continue
			}
			a.wakeOrPreempt(c, w, q)
		}
	} else {
		q := a.queues[0]
		// Wake one idle worker per ready job.
		for _, w := range a.workers {
			if q.len() == 0 {
				break
			}
			if w.idle {
				w.idle = false
				c.Charge(costs.DispatchIPI)
				w.th.Unpark()
			}
		}
		// All busy: preempt the lowest-priority runner(s) if the queue head
		// beats them.
		if a.cfg.Preemption {
			a.signalPreemptions(c, q)
		}
	}
	a.ovh.Add(trace.OverheadDispatch, c.Now()-t0)
}

// wakeOrPreempt handles one partitioned worker's queue.
func (a *App) wakeOrPreempt(c rt.Ctx, w *workerState, q *readyQueue) {
	costs := a.env.Costs()
	if w.idle {
		w.idle = false
		c.Charge(costs.DispatchIPI)
		w.th.Unpark()
		return
	}
	if !a.cfg.Preemption {
		return
	}
	head := q.peek()
	if head == nil {
		return
	}
	if w.current != nil && w.current.state == jobRunning && head.before(w.current) {
		a.signalWorker(c, w)
	}
}

// signalPreemptions sends the preemption signal to every worker running a
// job with lower priority than the global queue head (Section 3.5
// "Pre-emption").
func (a *App) signalPreemptions(c rt.Ctx, q *readyQueue) {
	head := q.peek()
	if head == nil {
		return
	}
	for _, w := range a.workers {
		if w.current != nil && w.current.state == jobRunning && head.before(w.current) {
			a.signalWorker(c, w)
		}
	}
}

func (a *App) signalWorker(c rt.Ctx, w *workerState) {
	costs := a.env.Costs()
	if w.current == nil || w.current.fib == nil {
		return
	}
	t0 := c.Now()
	c.Charge(costs.SignalDeliver)
	w.current.fib.th.Interrupt()
	a.ovh.Add(trace.OverheadPreempt, c.Now()-t0)
}

// TaskActivate activates a non-recurring task for immediate scheduling —
// yas_task_activate. For sporadic tasks the minimum inter-arrival time is
// enforced. Unlike periodic releases, activation bypasses the scheduler
// tick: the job is pushed and dispatched from the caller's context.
func (a *App) TaskActivate(c rt.Ctx, id TID) error {
	if !a.started.Load() || a.stopping.Load() {
		return fmt.Errorf("core: TaskActivate outside a running schedule")
	}
	a.mu.Lock(c)
	t, err := a.taskByID(id)
	if err != nil {
		a.mu.Unlock(c)
		return err
	}
	if t.state != taskRunning {
		a.mu.Unlock(c)
		return fmt.Errorf("core: task %s is %s; cannot TaskActivate", t.d.Name, t.state)
	}
	if len(t.inEdges) > 0 {
		a.mu.Unlock(c)
		return fmt.Errorf("core: task %s is data-activated; cannot TaskActivate", t.d.Name)
	}
	if t.d.Period > 0 && !t.d.Sporadic {
		a.mu.Unlock(c)
		return fmt.Errorf("core: task %s is periodic; the scheduler activates it", t.d.Name)
	}
	now := c.Now()
	if t.d.Sporadic && t.everActivated && now-t.lastActivation < t.d.Period {
		a.mu.Unlock(c)
		return fmt.Errorf("%w: task %s, %v since last", ErrMinInterarrival, t.d.Name, now-t.lastActivation)
	}
	t.lastActivation = now
	t.everActivated = true
	j := a.releaseJob(c, t, now, now)
	if j != nil {
		a.dispatch(c)
	}
	a.mu.Unlock(c)
	if j == nil {
		return fmt.Errorf("core: task %s activation dropped (pool exhausted)", t.d.Name)
	}
	return nil
}
