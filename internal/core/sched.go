package core

import (
	"fmt"
	"time"

	"github.com/yasmin-rt/yasmin/internal/platform"
	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/trace"
)

// slowRelease is one feedback-root release instance deferred from the
// shard-locked phase of the tick to the App.mu phase (its delay-token state
// is graph state).
type slowRelease struct {
	t   *task
	rel time.Duration
}

// Start begins executing the task set — yas_start. It spawns the worker
// threads (and, for online mappings, the dedicated scheduler thread) and
// returns immediately; call it from a thread context (ctx) of the same
// environment. A stopped App can be started again after altering the task
// set (multi-mode scheduling).
func (a *App) Start(c rt.Ctx) error {
	if a.started.Load() {
		return ErrStarted
	}
	// Serialise against live-reconfiguration transactions: a Reconfigure
	// racing Start must observe either the stopped or the fully started
	// application, never the half-initialised tables.
	a.reconfigMu.Lock(c)
	defer a.reconfigMu.Unlock(c)
	// A previous run's threads may still be draining; wait them out before
	// mutating shared state and so the stopping flag can be reset safely.
	for a.workersLive.Load() > 0 || a.schedLive.Load() > 0 {
		c.Sleep(100 * time.Microsecond)
	}
	if err := a.resolve(); err != nil {
		return err
	}
	if a.cfg.Mapping == MappingOffline && a.offTable == nil {
		return fmt.Errorf("core: MappingOffline needs SetOfflineTable before Start")
	}
	a.stopping.Store(false)
	a.terminating.Store(false)
	a.startTime = c.Now()
	if a.cfg.SchedulerPeriod != 0 {
		a.schedPeriodNs.Store(int64(a.cfg.SchedulerPeriod))
	} else {
		a.schedPeriodNs.Store(int64(a.schedGCD()))
	}
	// Fresh release shards for this run: wheel granularity is the scheduler
	// grid, so every periodic release instant falls exactly on a wheel tick.
	// Everything here runs quiescent (no worker/scheduler threads yet), so
	// no shard locks are needed.
	gran := a.schedPeriodNow()
	for _, sh := range a.shards {
		sh.wheel = newTimerWheel(gran, a.startTime)
		sh.due = sh.due[:0]
		for sh.q.len() > 0 {
			sh.q.pop()
		}
		sh.nready.Store(0)
		sh.headPrio.Store(noRunPrio)
		sh.headSeq.Store(0)
	}
	for i := range a.schedDueOK {
		a.schedDueOK[i] = false
	}
	a.slowDue = a.slowDue[:0]
	a.dataPending = a.dataPending[:0]
	a.dataPendingN.Store(0)
	a.ticking.Store(0)
	a.tickSeq.Store(0)
	a.jobsLive.Store(0)
	for i := 0; i < a.ntasks; i++ {
		t := &a.tasks[i]
		t.wheelLive = false
		t.wheelGen.Add(1)
		t.pendingData = false
		if t.state == taskRetired {
			continue
		}
		t.state = taskRunning
		t.nextRelease = a.startTime + t.d.ReleaseOffset
		t.lastActivation = 0
		t.everActivated = false
		if t.root && t.d.Period > 0 && !t.d.Sporadic {
			si := int(t.shard.Load())
			a.wheelInsertShardLocked(a.shards[si], si, t)
		}
	}
	// Reset graph edges and pre-seed delay tokens (feedback loops fire
	// their first `initial` iterations on the seeds).
	for i := 0; i < a.nedges; i++ {
		e := &a.edges[i]
		if e.dead {
			continue
		}
		e.head, e.count, e.tokens = 0, 0, 0
		for k := 0; k < e.initial; k++ {
			e.pushStamp(a.startTime)
		}
	}
	// Data-activated tasks whose seeded delay tokens already satisfy every
	// input fire on the first tick via the catch-up queue.
	for i := 0; i < a.ntasks; i++ {
		a.noteDataReadyLocked(&a.tasks[i])
	}
	for i := 0; i < a.naccels; i++ {
		a.accels[i].busy = false
		a.accels[i].holder = nil
		a.accels[i].waiters = a.accels[i].waiters[:0]
	}
	a.idleHead = nil
	for _, w := range a.workers {
		w.current = nil
		w.preempted = w.preempted[:0]
		w.wakeReason = wakeNone
		w.wakeJob = nil
		w.onIdle = false
		w.idlePrev, w.idleNext = nil, nil
		w.pendingCost = 0
		w.lastSignalTick = 0
		w.curPrio.Store(noRunPrio)
		w.curSeq.Store(0)
	}
	a.started.Store(true)
	// Publish the epoch-0 scheduling snapshot for lock-free readers.
	a.publishViewLocked()

	// Spawn fibers (execution contexts, preallocated as the paper's
	// swapcontext stacks are). Fibers survive Stop/Start cycles; Cleanup
	// terminates them. The freelist is rebuilt each run: all fibers idle.
	a.freeFibHead.Store(0)
	if !a.fibersSpawned {
		a.fibersSpawned = true
		for i := len(a.fibers) - 1; i >= 0; i-- {
			f := &fiber{idx: i, app: a}
			a.fibers[i] = f
			a.liveThreads.Add(1)
			f.th = a.env.Spawn(fmt.Sprintf("yas-fiber-%d", i), rt.UnpinnedCore, f.loop)
			a.pushFreeFib(f)
		}
	} else {
		for i := len(a.fibers) - 1; i >= 0; i-- {
			a.pushFreeFib(a.fibers[i])
		}
	}
	// Spawn workers.
	for _, w := range a.workers {
		w := w
		a.liveThreads.Add(1)
		a.workersLive.Add(1)
		if a.cfg.Mapping == MappingOffline {
			w.th = a.env.Spawn(fmt.Sprintf("yas-worker-%d", w.idx), w.core, func(tc rt.Ctx) {
				defer a.workersLive.Add(-1)
				a.offlineWorkerLoop(tc, w)
			})
		} else {
			w.th = a.env.Spawn(fmt.Sprintf("yas-worker-%d", w.idx), w.core, func(tc rt.Ctx) {
				defer a.workersLive.Add(-1)
				a.workerLoop(tc, w)
			})
		}
	}
	// Spawn the scheduler thread on its private core (online mappings).
	if a.cfg.Mapping != MappingOffline {
		a.liveThreads.Add(1)
		a.schedLive.Add(1)
		a.schedTh = a.env.Spawn("yas-sched", a.cfg.SchedulerCore, func(tc rt.Ctx) {
			defer a.schedLive.Add(-1)
			a.schedulerLoop(tc)
		})
	}
	return nil
}

// Stop stops releasing new jobs — yas_stop. Jobs already released are still
// executed; workers then become idle. The App can be re-started. Stop is
// lock-free: it nudges the scheduler and wakes every worker (a token
// buffered on a busy worker surfaces as one benign spurious wake).
func (a *App) Stop(c rt.Ctx) {
	if !a.started.Load() {
		return
	}
	a.stopping.Store(true)
	if a.schedTh != nil {
		a.schedTh.Interrupt()
	}
	a.wakeAllWorkers()
}

// Cleanup waits for all middleware threads to finish and shuts the instance
// down — yas_cleanup. Call after Stop. The App may be re-initialised with
// Init and reused.
func (a *App) Cleanup(c rt.Ctx) {
	if !a.started.Load() {
		return
	}
	a.stopping.Store(true)
	// Let in-flight jobs drain: wait until every released job has completed,
	// then terminate. Poll at tick granularity but no slower than a
	// millisecond — an application of hour-long periods (or one retuned to
	// them) must not stall its own teardown by a scheduler period.
	drainPoll := a.schedPeriodOr(time.Millisecond)
	if drainPoll > time.Millisecond {
		drainPoll = time.Millisecond
	}
	for !a.drained() {
		c.Sleep(drainPoll)
	}
	a.terminating.Store(true)
	for _, w := range a.workers {
		if w.th != nil {
			w.th.Interrupt()
			w.th.Unpark()
		}
	}
	for _, f := range a.fibers {
		if f != nil && f.th != nil {
			f.th.Interrupt()
			f.th.Unpark()
		}
	}
	for a.liveThreads.Load() > 0 {
		c.Sleep(100 * time.Microsecond)
	}
	// Every middleware thread is gone; serialise the final teardown against
	// reconfiguration transactions (which read schedTh to nudge the
	// scheduler).
	a.reconfigMu.Lock(c)
	a.started.Store(false)
	a.fibersSpawned = false
	a.schedTh = nil
	a.reconfigMu.Unlock(c)
}

// schedPeriodNow returns the current scheduler tick period; a committed
// reconfiguration may retune it while the scheduler loop runs.
func (a *App) schedPeriodNow() time.Duration {
	return time.Duration(a.schedPeriodNs.Load())
}

func (a *App) schedPeriodOr(d time.Duration) time.Duration {
	if p := a.schedPeriodNow(); p > 0 {
		return p
	}
	return d
}

// drained reports whether every released job has completed and no release
// pass is in flight — pure atomics, no locks. Ready queues, worker stacks
// and accelerator waiter lists all hold live (allocated) jobs, so jobsLive
// covers every place a job can hide; the tick seqlock covers releases still
// being pushed.
//
//yasmin:noalloc
func (a *App) drained() bool {
	if a.ticking.Load()%2 != 0 {
		return false
	}
	return a.jobsLive.Load() == 0
}

func (a *App) threadExit() { a.liveThreads.Add(-1) }

// schedulerLoop is the dedicated scheduler thread (Section 3.3): it wakes on
// the activation grid (the GCD of all task periods), releases due jobs,
// dispatches them to worker queues, wakes idle workers and sends preemption
// signals. Between ticks it sleeps (WaitSleep) — unlike Mollison & Anderson,
// it never contends with workers for CPU time. Grid points at which the
// release wheels hold nothing due are skipped entirely: the thread sleeps
// straight to the next populated instant, so an idle or sparse schedule
// costs nothing per empty tick.
//
// The loop never takes App.mu in steady state: releases run per shard under
// the leaf locks (phase 1), and only feedback roots or pending data
// activations open an App.mu phase 2. Release-vs-retire atomicity — a Stop
// racing a release must not strand a job with no worker left to run it — is
// the tick seqlock's job: ticking goes odd before the stopping re-check, and
// workers refuse to retire while it is odd (see workerLoop).
func (a *App) schedulerLoop(c rt.Ctx) {
	defer a.threadExit()
	costs := a.env.Costs()
	for {
		if a.stopping.Load() || a.terminating.Load() {
			a.wakeAllWorkers()
			return
		}
		t0 := c.Now()
		c.Charge(costs.ClockRead)
		a.ticking.Add(1) // open the tick window (odd)
		if a.stopping.Load() || a.terminating.Load() {
			a.ticking.Add(1)
			a.wakeAllWorkers()
			return
		}
		released := a.releaseDue(c, t0)
		a.ticking.Add(1) // close the window (even)
		if released > 0 {
			a.dispatch(c)
		}
		a.ovh.Add(trace.OverheadSchedule, c.Now()-t0)
		// Next grid point, recomputed from the activation grid every tick:
		// a reconfiguration commit may retune the period (it interrupts the
		// sleep below so a shorter grid takes effect immediately), and an
		// overrun snaps forward to the next point without drifting.
		period := a.schedPeriodNow()
		next := a.startTime + ((c.Now()-a.startTime)/period+1)*period
		if wheelNext, ok := a.nextWheelDue(); ok && wheelNext > next {
			// Nothing can fire before wheelNext: snap it up to the grid and
			// sleep through the empty ticks. Commits that admit or retune
			// tasks interrupt the sleep, so a new earlier release is never
			// missed.
			k := (wheelNext - a.startTime + period - 1) / period
			next = a.startTime + k*period
		}
		c.Charge(costs.TimerProgram)
		if interrupted := c.SleepUntil(next); interrupted {
			if a.terminating.Load() {
				return
			}
		}
	}
}

// releaseDue runs the two-phase release pass. Phase 1 visits each shard
// under its own leaf lock: the wheel advances, pure periodic roots release
// inline into the shard's queue, feedback roots (in-edges = graph state)
// defer to phase 2, and the shard's next-due instant is snapshotted for the
// sleep computation. Modelled bookkeeping cost accumulates per shard and is
// charged after the lock drops. Phase 2 runs under App.mu only when
// feedback roots or pending data activations exist — the steady state skips
// it entirely, keeping App.mu off the release path.
func (a *App) releaseDue(c rt.Ctx, now time.Duration) int {
	costs := a.env.Costs()
	released := 0
	a.slowDue = a.slowDue[:0]
	for si, sh := range a.shards {
		var cost time.Duration
		sh.mu.Lock()
		if sh.wheel != nil {
			sh.due = sh.due[:0]
			sh.wheel.advanceTo(sh.wheel.tickAt(now), &sh.due)
			for _, t := range sh.due {
				// The modelled scan prices exactly the entries touched.
				cost += costs.StaticScanPerItem
				if t.state != taskRunning || t.d.Period <= 0 || t.d.Sporadic || !t.root {
					continue
				}
				for t.nextRelease <= now {
					rel := t.nextRelease
					t.nextRelease += t.d.Period
					if t.hasIns {
						// A periodic root with (delayed) feedback in-edges
						// only fires when every feedback token is present —
						// token state is graph state, so defer to phase 2.
						a.slowDue = append(a.slowDue, slowRelease{t: t, rel: rel})
						continue
					}
					cost += costs.QueueOpBase
					if a.releaseJobShardLocked(sh, si, t, rel, rel) != nil {
						cost += queueOpCost(costs, sh.q)
						released++
					}
				}
				a.wheelInsertShardLocked(sh, si, t) // re-arm for the next period
			}
			if tick, live := sh.wheel.nextDueTick(); live {
				a.schedDue[si] = sh.wheel.epoch + time.Duration(tick)*sh.wheel.gran
				a.schedDueOK[si] = true
			} else {
				a.schedDueOK[si] = false
			}
		}
		sh.mu.Unlock()
		if cost > 0 {
			c.Charge(cost)
		}
	}
	if len(a.slowDue) > 0 || a.dataPendingN.Load() > 0 {
		a.mu.Lock(c)
		for _, sr := range a.slowDue {
			t := sr.t
			if t.state != taskRunning {
				continue
			}
			if !a.allInputsReady(t) {
				// The previous loop iteration has not completed: the
				// activation is dropped (counted as an overrun).
				a.overruns.Add(1)
				continue
			}
			a.consumeInputs(t)
			c.Charge(costs.QueueOpBase)
			if a.releaseJobApp(c, t, sr.rel, sr.rel) != nil {
				released++
			}
		}
		released += a.releasePendingDataLocked(c, now)
		a.mu.Unlock(c)
	}
	return released
}

// releasePendingDataLocked fires queued data-activated tasks whose inputs
// are complete (seeded delay tokens at Start, input backlogs exposed by a
// reconfiguration commit). The common case — a producer completing — still
// releases successors inline; this queue only catches activations that have
// no future producer completion to ride on. Caller holds App.mu.
func (a *App) releasePendingDataLocked(c rt.Ctx, now time.Duration) int {
	costs := a.env.Costs()
	released := 0
	for len(a.dataPending) > 0 {
		n := len(a.dataPending) - 1
		t := a.dataPending[n]
		a.dataPending = a.dataPending[:n]
		a.dataPendingN.Store(int32(n))
		t.pendingData = false
		if t.state != taskRunning || t.root {
			continue
		}
		for a.allInputsReady(t) {
			stamp := a.consumeInputs(t)
			c.Charge(costs.QueueOpBase)
			if a.releaseJobApp(c, t, now, stamp) == nil {
				break
			}
			released++
		}
	}
	return released
}

// noteDataReadyLocked queues a data-activated task on the scheduler's
// catch-up list if its inputs are complete. Caller holds App.mu (or runs
// during a quiescent Start).
func (a *App) noteDataReadyLocked(t *task) {
	if t.pendingData || t.root || t.state != taskRunning || !a.allInputsReady(t) {
		return
	}
	t.pendingData = true
	a.dataPending = append(a.dataPending, t)
	a.dataPendingN.Store(int32(len(a.dataPending)))
}

// wheelInsertShardLocked buckets a periodic root for its next release on
// sh's wheel. Caller holds sh.mu (or runs quiescent) with si == t.shard.
//
//yasmin:noalloc
func (a *App) wheelInsertShardLocked(sh *releaseShard, si int, t *task) {
	t.wheelShard = si
	sh.wheel.insert(t, t.nextRelease)
}

// wheelRemoveShardLocked drops a task's pending release entry, if any.
// Caller holds the lock of the shard recorded in t.wheelShard.
//
//yasmin:noalloc
func (a *App) wheelRemoveShardLocked(t *task) {
	if !t.wheelLive {
		return
	}
	a.shards[t.wheelShard].wheel.remove(t)
}

// nextWheelDue folds the per-shard next-due snapshots taken by the last
// phase-1 pass. Scheduler-thread private; no locks.
//
//yasmin:noalloc
func (a *App) nextWheelDue() (time.Duration, bool) {
	var best time.Duration
	ok := false
	for i := range a.shards {
		if a.schedDueOK[i] {
			if !ok || a.schedDue[i] < best {
				best, ok = a.schedDue[i], true
			}
		}
	}
	return best, ok
}

// rebuildWheelsLocked rebuilds every shard wheel from scratch — needed when
// the activation grid itself changes (a reconfiguration retuned the GCD), so
// release instants stay exactly representable at the new granularity. Caller
// holds App.mu; each shard is quiesced one leaf lock at a time (never two at
// once).
func (a *App) rebuildWheelsLocked(now time.Duration) {
	gran := a.schedPeriodNow()
	for _, sh := range a.shards {
		sh.mu.Lock()
		sh.wheel = newTimerWheel(gran, a.startTime)
		sh.wheel.advanceTo(sh.wheel.tickAt(now), &sh.due) // cursor to "now"; nothing due in an empty wheel
		sh.due = sh.due[:0]
		sh.mu.Unlock()
	}
	for i := 0; i < a.ntasks; i++ {
		t := &a.tasks[i]
		si := int(t.shard.Load())
		sh := a.shards[si]
		sh.mu.Lock()
		t.wheelLive = false
		t.wheelGen.Add(1)
		if t.state == taskRunning && t.root && t.d.Period > 0 && !t.d.Sporadic {
			a.wheelInsertShardLocked(sh, si, t)
		}
		sh.mu.Unlock()
	}
}

// fillJob initialises a freshly allocated job of t. Caller holds the sync
// domain guarding t's scheduling fields: the home shard lock (phase 1,
// TaskActivate) or App.mu (phase 2, successor releases — commits write
// those tasks' fields under App.mu too).
//
//yasmin:noalloc
func (a *App) fillJob(j *job, t *task, release, stamp time.Duration) {
	j.t = t
	j.name = t.d.Name
	j.seq = a.jobSeq.Add(1)
	t.jobSeq++
	j.taskSeq = t.jobSeq
	j.release = release
	j.stamp = stamp
	j.absDL = stamp + t.effDeadline
	if t.hasIns && t.d.Deadline > 0 {
		// Data-activated node with its own deadline: relative to activation.
		j.absDL = release + t.d.Deadline
	}
	if a.cfg.Priority == PriorityEDF {
		j.basePrio = int64(j.absDL)
	} else {
		j.basePrio = t.staticPrio
	}
	j.effPrio.Store(j.basePrio)
	j.state.Store(jobReady)
	j.fastSel = t.fastSel
	j.fastPath = t.fastDone
}

// releaseJobShardLocked creates and enqueues one job of t directly on sh.
// Caller holds sh.mu with si == t.shard.
//
//yasmin:noalloc
func (a *App) releaseJobShardLocked(sh *releaseShard, si int, t *task, release, stamp time.Duration) *job {
	j := a.allocJob()
	if j == nil {
		a.overruns.Add(1)
		return nil
	}
	a.fillJob(j, t, release, stamp)
	t.live.Add(1)
	if err := sh.q.push(j); err != nil {
		t.live.Add(-1)
		a.overruns.Add(1)
		a.recycleJobUnreleased(j)
		return nil
	}
	j.shardIdx.Store(int32(si))
	sh.nready.Add(1)
	sh.updateHeadLocked()
	return j
}

// releaseJobApp creates one job of t and routes it to the home shard.
// Caller holds App.mu (and no shard lock).
func (a *App) releaseJobApp(c rt.Ctx, t *task, release, stamp time.Duration) *job {
	j := a.allocJob()
	if j == nil {
		a.overruns.Add(1)
		return nil
	}
	a.fillJob(j, t, release, stamp)
	t.live.Add(1)
	if !a.pushReady(c, j) {
		t.live.Add(-1)
		a.overruns.Add(1)
		a.recycleJobUnreleased(j) //yasmin:alloc-ok overrun recovery, a reconfiguration-scale event
		return nil
	}
	return j
}

// queueOpCost prices one ready-queue operation by current heap depth.
//
//yasmin:noalloc
func queueOpCost(costs *platform.CostModel, q *readyQueue) time.Duration {
	return costs.QueueOpBase + time.Duration(q.opCost())*costs.QueueOpPerItem
}

// dispatch wakes idle workers for ready jobs and raises preemption signals —
// the scheduler-side half of Figure 1a/1b. It takes only shard locks and
// idleMu, so it is callable with or without App.mu held. Idle workers come
// off the intrusive idle list: waking is O(jobs dispatched), never a scan of
// all workers.
func (a *App) dispatch(c rt.Ctx) {
	costs := a.env.Costs()
	t0 := c.Now()
	tick := a.tickSeq.Add(1)
	if a.cfg.Mapping == MappingPartitioned {
		for i, sh := range a.shards {
			if sh.nready.Load() == 0 {
				continue
			}
			w := a.workers[i]
			if a.claimIdle(w) {
				a.idleWakes.Add(1)
				c.Charge(costs.DispatchIPI)
				w.th.Unpark()
			} else if a.cfg.Preemption {
				a.preemptShard(c, i, tick)
			}
		}
	} else {
		// Wake one idle worker per ready job; any still-unserved surplus is
		// the preemption pass's problem.
		want := 0
		for _, sh := range a.shards {
			want += int(sh.nready.Load())
		}
		if want == 0 {
			a.ovh.Add(trace.OverheadDispatch, c.Now()-t0)
			return
		}
		woken := 0
		for want > 0 {
			w := a.popIdle()
			if w == nil {
				break
			}
			woken++
			want--
			a.idleWakes.Add(1)
			w.th.Unpark()
		}
		if woken > 0 {
			c.Charge(time.Duration(woken) * costs.DispatchIPI)
		}
		if want > 0 && a.cfg.Preemption {
			a.signalPreemptions(c, tick)
		}
	}
	a.ovh.Add(trace.OverheadDispatch, c.Now()-t0)
}

// preemptShard checks one partitioned worker's shard: if the queue head
// beats the running job, the worker's fiber is signalled (deduped per
// dispatch pass). Returns true when a fresh signal was sent.
func (a *App) preemptShard(c rt.Ctx, i int, tick int64) bool {
	sh := a.shards[i]
	w := a.workers[i]
	var fib *fiber
	deduped := false
	sh.mu.Lock()
	head := sh.q.peek()
	cur := w.current
	if head != nil && cur != nil && cur.state.Load() == jobRunning && head.before(cur) && cur.fib != nil {
		if w.lastSignalTick == tick {
			deduped = true
		} else {
			w.lastSignalTick = tick
			fib = cur.fib
		}
	}
	sh.mu.Unlock()
	if deduped {
		a.signalsDeduped.Add(1)
		return false
	}
	if fib == nil {
		return false
	}
	a.signalFiber(c, fib)
	return true
}

// signalPreemptions closes cross-shard priority inversions under the global
// mapping (Section 3.5 "Pre-emption", sharded): while the most urgent queued
// head beats the least urgent running job, the head MIGRATES to the victim
// worker's shard and that worker is signalled — preserving the old global
// semantics (the queue head beats any lower-priority runner) without a
// global queue. The scans read lock-free mirrors that may tear; every
// decision is re-validated under the one shard lock it commits on, and the
// pass is bounded by the worker count.
func (a *App) signalPreemptions(c rt.Ctx, tick int64) {
	for round := 0; round < len(a.workers); round++ {
		// Most urgent queued head across shards (mirror scan).
		hs := -1
		var hp, hseq int64
		for i, sh := range a.shards {
			p := sh.headPrio.Load()
			if p == noRunPrio {
				continue
			}
			s := sh.headSeq.Load()
			if hs < 0 || p < hp || (p == hp && s < hseq) {
				hs, hp, hseq = i, p, s
			}
		}
		if hs < 0 {
			return
		}
		// Least urgent running job (mirror scan).
		li := -1
		var lp, lseq int64
		for i, w := range a.workers {
			p := w.curPrio.Load()
			if p == noRunPrio {
				continue
			}
			s := w.curSeq.Load()
			if li < 0 || p > lp || (p == lp && s > lseq) {
				li, lp, lseq = i, p, s
			}
		}
		if li < 0 {
			return
		}
		if !(hp < lp || (hp == lp && hseq < lseq)) {
			return
		}
		if li == hs {
			// The urgent head already sits on the victim's own shard.
			if !a.preemptShard(c, li, tick) {
				return // dedup or stale mirrors: no progress possible
			}
			continue
		}
		// Migrate the head into the victim's shard, one lock at a time.
		src := a.shards[hs]
		src.mu.Lock()
		j := src.q.peek()
		if j == nil || j.effPrio.Load() != hp || j.seq != hseq {
			src.mu.Unlock()
			continue // head changed under us; rescan
		}
		src.q.pop()
		j.shardIdx.Store(-1)
		src.nready.Add(-1)
		src.updateHeadLocked()
		src.mu.Unlock()
		dst := a.shards[li]
		w := a.workers[li]
		var fib *fiber
		dst.mu.Lock()
		if err := dst.q.push(j); err != nil {
			// Structurally impossible: every queue holds the whole pool.
			dst.mu.Unlock()
			panic(fmt.Sprintf("core: migration push failed: %v", err))
		}
		j.shardIdx.Store(int32(li))
		dst.nready.Add(1)
		dst.updateHeadLocked()
		cur := w.current
		if cur != nil && cur.state.Load() == jobRunning && j.before(cur) && cur.fib != nil {
			if w.lastSignalTick == tick {
				a.signalsDeduped.Add(1)
			} else {
				w.lastSignalTick = tick
				fib = cur.fib
			}
		}
		dst.mu.Unlock()
		a.migrations.Add(1)
		if fib != nil {
			a.signalFiber(c, fib)
		}
	}
}

// signalFiber delivers the preemption signal to a running job's fiber.
func (a *App) signalFiber(c rt.Ctx, fib *fiber) {
	costs := a.env.Costs()
	t0 := c.Now()
	c.Charge(costs.SignalDeliver)
	fib.th.Interrupt()
	a.signalsSent.Add(1)
	a.ovh.Add(trace.OverheadPreempt, c.Now()-t0)
}

// TaskActivate activates a non-recurring task for immediate scheduling —
// yas_task_activate. For sporadic tasks the minimum inter-arrival time is
// enforced. Unlike periodic releases, activation bypasses the scheduler
// tick: the job is pushed and dispatched from the caller's context — and
// since the sharded core it never takes App.mu: the schedView snapshot
// pre-validates the slot lock-free, then the home shard lock is the
// authority for the shard-guarded task fields.
func (a *App) TaskActivate(c rt.Ctx, id TID) error {
	if !a.started.Load() || a.stopping.Load() {
		return fmt.Errorf("core: TaskActivate outside a running schedule")
	}
	v := a.view.Load()
	if v == nil {
		return fmt.Errorf("core: TaskActivate outside a running schedule")
	}
	if int(id) < 0 || int(id) >= int(v.ntasks) {
		return fmt.Errorf("core: no task %d", id)
	}
	if !v.liveBit(int(id)) {
		// Retired/staged in this epoch (or racing a commit): take App.mu for
		// the precise legacy diagnosis.
		a.mu.Lock(c)
		_, err := a.taskByID(id)
		a.mu.Unlock(c)
		if err == nil {
			err = fmt.Errorf("core: task %d changed state; retry", id)
		}
		return err
	}
	t := &a.tasks[id]
	// Home shard lock via load/lock/re-validate (a commit may move the task).
	var sh *releaseShard
	var si int32
	for {
		si = t.shard.Load()
		sh = a.shards[si]
		sh.mu.Lock()
		if t.shard.Load() == si {
			break
		}
		sh.mu.Unlock()
	}
	if t.state != taskRunning {
		st := t.state
		name := t.d.Name
		sh.mu.Unlock()
		return fmt.Errorf("core: task %s is %s; cannot TaskActivate", name, st)
	}
	if t.hasIns {
		name := t.d.Name
		sh.mu.Unlock()
		return fmt.Errorf("core: task %s is data-activated; cannot TaskActivate", name)
	}
	if t.d.Period > 0 && !t.d.Sporadic {
		name := t.d.Name
		sh.mu.Unlock()
		return fmt.Errorf("core: task %s is periodic; the scheduler activates it", name)
	}
	now := c.Now()
	if t.d.Sporadic && t.everActivated && now-t.lastActivation < t.d.Period {
		name := t.d.Name
		since := now - t.lastActivation
		sh.mu.Unlock()
		return fmt.Errorf("%w: task %s, %v since last", ErrMinInterarrival, name, since)
	}
	t.lastActivation = now
	t.everActivated = true
	costs := a.env.Costs()
	j := a.releaseJobShardLocked(sh, int(si), t, now, now)
	cost := costs.QueueOpBase
	if j != nil {
		cost += queueOpCost(costs, sh.q)
	}
	name := t.d.Name
	sh.mu.Unlock()
	c.Charge(cost)
	if j == nil {
		return fmt.Errorf("core: task %s activation dropped (pool exhausted)", name)
	}
	a.dispatch(c)
	return nil
}
