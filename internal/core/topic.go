package core

import (
	"fmt"
	"sync/atomic"

	"github.com/yasmin-rt/yasmin/internal/lockfree"
)

// OverflowPolicy selects what a topic does when a publish finds the buffer
// full (full = the slowest subscriber's backlog reached the capacity).
type OverflowPolicy int

// Overflow policies.
const (
	// Reject fails the publish when full — the Table-1 channel semantics
	// (push-fails-when-full), and the zero value so legacy channels keep
	// their behaviour without saying so.
	Reject OverflowPolicy = iota
	// DropOldest overwrites the oldest retained entry; subscribers that had
	// not consumed it lose it. Bounded-lag streaming.
	DropOldest
	// Latest conflates: publishes never fail, and a take returns only the
	// newest entry, skipping everything older — the sensor-stream register.
	Latest
)

func (p OverflowPolicy) String() string {
	switch p {
	case Reject:
		return "reject"
	case DropOldest:
		return "drop_oldest"
	case Latest:
		return "latest"
	default:
		return fmt.Sprintf("OverflowPolicy(%d)", int(p))
	}
}

// ParsePolicy converts the spec-layer spelling of a policy.
func ParsePolicy(s string) (OverflowPolicy, error) {
	switch s {
	case "", "reject":
		return Reject, nil
	case "drop_oldest", "drop-oldest":
		return DropOldest, nil
	case "latest":
		return Latest, nil
	default:
		return 0, fmt.Errorf("core: unknown overflow policy %q", s)
	}
}

// TopicOpts configures a topic at declaration.
type TopicOpts struct {
	// Capacity is the shared buffer depth (>= 1): the maximum backlog of the
	// slowest subscriber.
	Capacity int
	// Policy selects the overflow behaviour; the zero value is Reject.
	Policy OverflowPolicy
	// Priority ranks the topic against other topics (lower = more urgent).
	// TakeAny drains a task's subscriptions in this order; analysis tools
	// may use it for channel prioritization à la Paikan et al.
	Priority int
}

// subscription is one subscriber's view of a topic: a cursor into the shared
// buffer. Fan-out is zero-copy — M subscribers share one buffered entry and
// advance their own cursors over it.
type subscription struct {
	task   TID
	cursor uint64 // absolute sequence of the next entry to take
}

// topicView is the immutable snapshot of the topic state that lock-free
// readers (the Publish fast path) need: endpoint registration, fan-out
// size for cost accounting, the staging ring, and liveness. A live
// reconfiguration swaps in a fresh snapshot under the App lock; publishers
// racing the swap observe either the old or the new consistent view.
type topicView struct {
	name     string
	pubs     []TID // immutable after publication
	nsubs    int
	staging  *lockfree.MPSCRing[any]
	policy   OverflowPolicy
	capacity int
	dead     bool
	// fwd is the remote-subscriber forwarder (internal/cluster): a
	// successful local Publish also hands the value to fwd, on the
	// publisher's own thread, without ever taking the App lock. Nil on
	// purely local topics — the common case costs one pointer test.
	fwd func(pub TID, v any)
	// remote marks a topic with remote publishers: cluster ingress
	// injects entries via RemotePublish from a non-task thread, so the
	// wall-clock backend needs the staging ring even with a single
	// local publisher.
	remote bool
}

func (v *topicView) isPub(t TID) bool {
	for _, p := range v.pubs {
		if p == t {
			return true
		}
	}
	return false
}

// topic is the runtime pub-sub channel: one shared ring buffer with absolute
// sequence numbers, N registered publishers, M subscriber cursors. A legacy
// channel is a topic with no registered endpoints and a single anonymous
// cursor, which collapses to the Table-1 bounded FIFO.
//
// All fields are guarded by the App lock, except staging (the wall-clock
// fan-in ring) whose producer side is intentionally lock-free, and view,
// the atomic snapshot lock-free readers go through.
type topic struct {
	id   CID
	name string
	opts TopicOpts

	buf  []any  // len == opts.Capacity; nil for capacity-0 precedence channels
	head uint64 // oldest retained absolute sequence
	tail uint64 // next absolute sequence to write

	pubs []TID
	subs []subscription
	// anon is the anonymous cursor used when no subscriber is registered
	// (legacy Pop, and Take from non-declared tasks on endpoint-less topics).
	anon uint64

	// staging is the lock-free MPSC fan-in ring for the wall-clock path:
	// publishers of a multi-publisher topic on the OS backend push here
	// without taking the App lock; any consumer-side operation drains it
	// into the shared buffer under the lock. Nil on the simulation backend
	// (determinism) and for legacy channels (byte-identical traces).
	staging *lockfree.MPSCRing[any]

	// dead marks a removed topic (its slot recycles once redeclared).
	dead bool

	// fwd/remote are the cluster attachment points (see topicView).
	fwd    func(pub TID, v any)
	remote bool

	// view is the lock-free reader snapshot; refreshed by publishView
	// whenever an App-lock holder changes endpoints, staging or liveness.
	view atomic.Pointer[topicView]

	dropped int64 // entries lost to DropOldest/Latest overwrites
}

// publishView refreshes the lock-free reader snapshot. Caller holds the App
// lock (or runs single-threaded at declaration time).
func (tp *topic) publishView() {
	tp.view.Store(&topicView{
		name:     tp.name,
		pubs:     append([]TID(nil), tp.pubs...),
		nsubs:    len(tp.subs),
		staging:  tp.staging,
		policy:   tp.opts.Policy,
		capacity: tp.opts.Capacity,
		dead:     tp.dead,
		fwd:      tp.fwd,
		remote:   tp.remote,
	})
}

// minCursor returns the slowest consumer position. With no subscribers the
// anonymous cursor is the consumer. Cursors ahead of the tail (a subscriber
// admitted mid-epoch that skips staged pre-epoch residue) count as tail.
func (tp *topic) minCursor() uint64 {
	min := tp.anon
	if len(tp.subs) > 0 {
		min = tp.subs[0].cursor
		for i := 1; i < len(tp.subs); i++ {
			if tp.subs[i].cursor < min {
				min = tp.subs[i].cursor
			}
		}
	}
	if min > tp.tail {
		min = tp.tail
	}
	return min
}

// gc advances head to the slowest cursor, releasing entry references.
func (tp *topic) gc() {
	min := tp.minCursor()
	for tp.head < min {
		tp.buf[tp.head%uint64(len(tp.buf))] = nil
		tp.head++
	}
}

// publish appends v under the topic's overflow policy. Caller holds the App
// lock. ok is false only under Reject when the slowest subscriber's backlog
// is at capacity.
func (tp *topic) publish(v any) (ok bool) {
	if tp.opts.Capacity == 0 {
		return true // pure precedence channel: activations only, no data
	}
	c := uint64(len(tp.buf))
	if tp.tail-tp.minCursor() >= c {
		if tp.opts.Policy == Reject {
			return false
		}
		// DropOldest / Latest: sacrifice the oldest retained entry and drag
		// the cursors that still pointed at it past the loss.
		tp.buf[tp.head%c] = nil
		tp.head++
		tp.dropped++
		if len(tp.subs) == 0 {
			if tp.anon < tp.head {
				tp.anon = tp.head
			}
		}
		for i := range tp.subs {
			if tp.subs[i].cursor < tp.head {
				tp.subs[i].cursor = tp.head
			}
		}
	}
	tp.buf[tp.tail%c] = v
	tp.tail++
	return true
}

// take removes the next entry for the given cursor. Under Latest it
// conflates: the newest entry is returned and everything older is skipped.
// Caller holds the App lock.
func (tp *topic) take(cursor *uint64) (v any, ok bool) {
	if tp.opts.Capacity == 0 {
		return nil, false
	}
	if *cursor < tp.head {
		*cursor = tp.head // entries lost to DropOldest: resume at the oldest retained
	}
	if *cursor >= tp.tail {
		return nil, false // drained — or parked ahead of staged pre-epoch residue
	}
	c := uint64(len(tp.buf))
	if tp.opts.Policy == Latest {
		v = tp.buf[(tp.tail-1)%c]
		*cursor = tp.tail
	} else {
		v = tp.buf[*cursor%c]
		*cursor++
	}
	tp.gc()
	return v, true
}

// backlog returns the number of entries the cursor has not consumed.
func (tp *topic) backlog(cursor uint64) int {
	if cursor >= tp.tail {
		return 0
	}
	if cursor < tp.head {
		cursor = tp.head
	}
	return int(tp.tail - cursor)
}

// drainStaging moves staged wall-clock publishes into the shared buffer,
// honouring the overflow policy. Under Reject it stops when the buffer is
// full — staged entries are never lost, they wait for the next drain.
// Caller holds the App lock (the single-consumer side of the MPSC ring).
func (tp *topic) drainStaging() {
	if tp.staging == nil {
		return
	}
	for {
		if tp.opts.Policy == Reject &&
			tp.tail-tp.minCursor() >= uint64(len(tp.buf)) {
			return
		}
		v, ok := tp.staging.Pop()
		if !ok {
			return
		}
		tp.publish(v)
	}
}

// subFor returns the subscription cursor for task t, or nil.
func (tp *topic) subFor(t TID) *subscription {
	for i := range tp.subs {
		if tp.subs[i].task == t {
			return &tp.subs[i]
		}
	}
	return nil
}

// isPub reports whether task t is a registered publisher.
func (tp *topic) isPub(t TID) bool {
	for _, p := range tp.pubs {
		if p == t {
			return true
		}
	}
	return false
}

// TopicDecl declares a pub-sub topic: N publishers, M subscribers, a shared
// buffer of opts.Capacity entries delivered by per-subscriber cursors (one
// buffered copy regardless of M), and an overflow policy. Topics share the
// CID space and the MaxChannels budget with Table-1 channels; a channel is
// exactly a Reject topic with a single anonymous cursor.
func (a *App) TopicDecl(name string, opts TopicOpts) (CID, error) {
	if a.started.Load() {
		return -1, ErrStarted
	}
	if name == "" {
		return -1, fmt.Errorf("core: topic needs a name")
	}
	if opts.Capacity < 1 {
		return -1, fmt.Errorf("core: topic %s: capacity must be >= 1, got %d", name, opts.Capacity)
	}
	switch opts.Policy {
	case Reject, DropOldest, Latest:
	default:
		return -1, fmt.Errorf("core: topic %s: unknown overflow policy %d", name, int(opts.Policy))
	}
	return a.declTopic(name, opts)
}

// declTopic is the shared declaration path of ChannelDecl and TopicDecl,
// recycling slots of removed topics before growing the high-water mark.
// The topic struct embeds an atomic snapshot and is reset field by field.
func (a *App) declTopic(name string, opts TopicOpts) (CID, error) {
	var id CID
	if n := len(a.freeTopicSlots); n > 0 {
		id = CID(a.freeTopicSlots[n-1])
		a.freeTopicSlots = a.freeTopicSlots[:n-1]
	} else {
		if a.ntopics == len(a.topics) {
			return -1, fmt.Errorf("%w: MaxChannels=%d", ErrTooMany, len(a.topics))
		}
		id = CID(a.ntopics)
		a.ntopics++
		a.ntopicsA.Store(int32(a.ntopics))
	}
	tp := &a.topics[id]
	// Storage survives the wipe: Init+redeclare cycles reuse the buffer and
	// the staging ring (resolveTopics drops or resizes staging as needed).
	for tp.staging != nil { // discard any entries of the previous incarnation
		if _, ok := tp.staging.Pop(); !ok {
			break
		}
	}
	tp.id = id
	tp.name = name
	tp.opts = opts
	tp.pubs = tp.pubs[:0]
	tp.subs = tp.subs[:0]
	tp.head, tp.tail, tp.anon = 0, 0, 0
	tp.dead = false
	tp.dropped = 0
	tp.fwd = nil
	tp.remote = false
	buf := tp.buf
	tp.buf = nil
	if opts.Capacity > 0 {
		if cap(buf) < opts.Capacity {
			buf = make([]any, opts.Capacity)
		} else {
			buf = buf[:opts.Capacity]
			for i := range buf {
				buf[i] = nil
			}
		}
		tp.buf = buf
	}
	tp.publishView()
	return id, nil
}

// killTopicLocked marks a topic removed, releases its storage references and
// recycles the slot. Caller holds the App lock; every registered endpoint
// task has already retired.
func (a *App) killTopicLocked(tp *topic) {
	tp.dead = true
	tp.pubs = tp.pubs[:0]
	tp.subs = tp.subs[:0]
	for tp.staging != nil {
		if _, ok := tp.staging.Pop(); !ok {
			break
		}
	}
	for i := range tp.buf {
		tp.buf[i] = nil
	}
	tp.head, tp.tail, tp.anon = 0, 0, 0
	tp.fwd = nil
	tp.remote = false
	tp.publishView()
	a.freeTopicSlots = append(a.freeTopicSlots, int(tp.id))
}

// TopicPub registers task t as a publisher on topic c — its outbound Port.
// Once a topic has registered publishers, only they may Publish on it; on
// the wall-clock backend a multi-publisher topic gets a lock-free MPSC
// fan-in ring so publishers never contend on the App lock.
func (a *App) TopicPub(t TID, c CID) error {
	if a.started.Load() {
		return ErrStarted
	}
	if _, err := a.taskByID(t); err != nil {
		return err
	}
	tp, err := a.topicByID(c)
	if err != nil {
		return err
	}
	if tp.isPub(t) {
		return fmt.Errorf("core: task %d already publishes on topic %s", t, tp.name)
	}
	tp.pubs = append(tp.pubs, t)
	a.tasks[t].pubTopics = append(a.tasks[t].pubTopics, c)
	tp.publishView()
	return nil
}

// TopicSub registers task t as a subscriber on topic c — its inbound Port.
// The subscriber gets a private cursor over the topic's shared buffer;
// entries are retained until the slowest subscriber consumed them (Reject)
// or overwritten per the overflow policy.
func (a *App) TopicSub(t TID, c CID) error {
	if a.started.Load() {
		return ErrStarted
	}
	if _, err := a.taskByID(t); err != nil {
		return err
	}
	tp, err := a.topicByID(c)
	if err != nil {
		return err
	}
	if tp.opts.Capacity == 0 {
		return fmt.Errorf("core: topic %s has no buffer (capacity 0); nothing to subscribe to", tp.name)
	}
	if tp.subFor(t) != nil {
		return fmt.Errorf("core: task %d already subscribes to topic %s", t, tp.name)
	}
	tp.subs = append(tp.subs, subscription{task: t})
	a.addSubTopicLocked(&a.tasks[t], c)
	tp.publishView()
	return nil
}

// addSubTopicLocked inserts topic c into a task's priority-ordered
// subscription list (stable: declaration order breaks ties). Caller holds
// the lock or runs at declaration time.
func (a *App) addSubTopicLocked(t *task, c CID) {
	st := append(t.subTopics, c)
	for y := len(st) - 1; y > 0 && a.topics[st[y]].opts.Priority < a.topics[st[y-1]].opts.Priority; y-- {
		st[y], st[y-1] = st[y-1], st[y]
	}
	t.subTopics = st
}

// TopicID returns the CID of the named topic or channel, or -1.
func (a *App) TopicID(name string) CID {
	for i := 0; i < a.ntopics; i++ {
		if a.topics[i].name == name && !a.topics[i].dead {
			return a.topics[i].id
		}
	}
	return -1
}

// TopicDropped returns the number of entries the topic overwrote under
// DropOldest/Latest so far (0 under Reject). Like Recorder, it is a
// post-run metric: read it after Stop for an exact count.
func (a *App) TopicDropped(c CID) int64 {
	if int(c) < 0 || int(c) >= a.ntopics {
		return 0
	}
	return a.topics[c].dropped
}

func (a *App) topicByID(c CID) (*topic, error) {
	if int(c) < 0 || int(c) >= a.ntopics {
		return nil, fmt.Errorf("core: no channel %d", c)
	}
	if a.topics[c].dead {
		return nil, fmt.Errorf("core: channel %d was removed", c)
	}
	return &a.topics[c], nil
}

// resolveTopics finishes topic setup at Start: wall-clock fan-in staging
// rings and the per-task endpoint lists that drive TakeAny and retirement
// scrubbing. Called by resolve with the declaration phase closed.
func (a *App) resolveTopics() { a.refreshTopicsLocked() }

// refreshTopicsLocked fully rebuilds staging rings, per-task endpoint lists
// and the lock-free reader snapshots — the cold-path (Start) variant.
// Reconfiguration commits use refreshTopicsAfterCommitLocked, which touches
// only the topics and tasks the transaction changed.
func (a *App) refreshTopicsLocked() {
	wallClock := a.env.Platform() == nil // OS backend: no cost model, real threads
	for i := 0; i < a.ntasks; i++ {
		a.tasks[i].subTopics = a.tasks[i].subTopics[:0]
		a.tasks[i].pubTopics = a.tasks[i].pubTopics[:0]
	}
	// Buffer contents and cursors survive Stop/Start on purpose, exactly as
	// the Table-1 channel buffers always did (multi-mode scheduling hands
	// buffered data across the mode switch); Init clears everything.
	for i := 0; i < a.ntopics; i++ {
		tp := &a.topics[i]
		if tp.dead {
			continue
		}
		// Lock-free fan-in only where it pays: real threads and more than
		// one registered publisher. The simulation backend keeps the locked
		// path so traces stay deterministic and cost-accounted.
		if wallClock && (len(tp.pubs) > 1 || tp.remote) && tp.opts.Capacity > 0 {
			if tp.staging == nil || tp.staging.Cap() < tp.opts.Capacity {
				tp.staging, _ = lockfree.NewMPSCRing[any](tp.opts.Capacity)
			}
		} else {
			tp.staging = nil
		}
		tp.publishView()
		for _, p := range tp.pubs {
			a.tasks[p].pubTopics = append(a.tasks[p].pubTopics, tp.id)
		}
		for _, s := range tp.subs {
			a.tasks[s.task].subTopics = append(a.tasks[s.task].subTopics, tp.id)
		}
	}
	// Priority-order each task's subscriptions (stable: declaration order
	// breaks ties).
	for i := 0; i < a.ntasks; i++ {
		st := a.tasks[i].subTopics
		for x := 1; x < len(st); x++ {
			for y := x; y > 0 && a.topics[st[y]].opts.Priority < a.topics[st[y-1]].opts.Priority; y-- {
				st[y], st[y-1] = st[y-1], st[y]
			}
		}
	}
}

// refreshTopicsAfterCommitLocked is the reconfiguration-commit variant of
// refreshTopicsLocked: it refreshes exactly the topics the transaction
// touched (new topics, topics with staged endpoints) and the endpoint lists
// of the tasks it registered, so the commit pause is O(changes) rather than
// O(topics + tasks). Existing staging rings are never discarded or resized:
// they may hold staged wall-clock publishes whose per-publisher FIFO order
// must survive the epoch. Caller holds the lock.
func (a *App) refreshTopicsAfterCommitLocked(tx *Reconfig) {
	wallClock := a.env.Platform() == nil
	refresh := func(c CID) {
		tp := &a.topics[c]
		if tp.dead {
			return
		}
		if wallClock && (len(tp.pubs) > 1 || tp.remote) && tp.opts.Capacity > 0 && tp.staging == nil {
			tp.staging, _ = lockfree.NewMPSCRing[any](tp.opts.Capacity)
		}
		tp.publishView()
	}
	for _, id := range tx.addedTopics {
		refresh(id)
	}
	for _, ep := range tx.pubs {
		a.tasks[ep.t].pubTopics = append(a.tasks[ep.t].pubTopics, ep.c)
		refresh(ep.c)
	}
	for _, ep := range tx.subs {
		a.addSubTopicLocked(&a.tasks[ep.t], ep.c)
		refresh(ep.c)
	}
}
