package core

import "time"

// The scheduler hot path keeps periodic root tasks in hierarchical timing
// wheels instead of scanning the whole task table every tick: a task is
// bucketed by its next release instant, a tick advances the wheel cursor and
// touches only the slots the elapsed time crossed, and the cost of a tick is
// O(jobs released) — independent of how many tasks are declared. One wheel
// exists per release shard (one per ready queue: a single shard under the
// global mapping, one per virtual core under the partitioned mapping).
//
// Geometry: wheelLevels levels of wheelSlots slots. Level 0 buckets releases
// less than wheelSlots granules away, level l covers wheelSlots^(l+1)
// granules; releases beyond the top level wait in an overflow list that is
// re-bucketed when the cursor crosses a top-level slot boundary. With the
// granularity set to the scheduler grid (the GCD of all periods), every
// release instant falls exactly on a tick boundary, so wheel firing instants
// equal the legacy full-scan grid instants and traces are unchanged.
const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 4
	// wheelHorizon is the number of granules the hierarchical levels cover;
	// releases further out sit in the overflow list.
	wheelHorizon = int64(1) << (wheelBits * wheelLevels)
)

// releaseShard is one ready queue's share of the release machinery: the
// timer wheel bucketing its periodic roots and a preallocated scratch
// buffer the tick drains due tasks into. Shards are only ever touched by
// the scheduler thread (and by commits) under the App lock; the sharding
// exists so a release only walks state of the core it lands on.
type releaseShard struct {
	wheel *timerWheel
	due   []*task
}

// wheelEntry is one bucketed task. Entries are invalidated lazily: each
// (re-)insertion bumps the task's wheelGen, and entries whose recorded
// generation no longer matches are dropped when their slot is next visited —
// removal never searches a slot.
type wheelEntry struct {
	t   *task
	gen uint64
}

// timerWheel buckets periodic root tasks by next-release tick. It is not
// synchronised; the caller holds the App lock.
type timerWheel struct {
	gran     time.Duration // granule; release instants quantise up to it
	epoch    time.Duration // instant of tick 0 (the schedule's start time)
	base     int64         // current cursor tick: slots <= base are flushed
	slots    [wheelLevels][wheelSlots][]wheelEntry
	overflow []wheelEntry
	live     int // live (non-stale) entries, overflow included
}

// newTimerWheel creates a wheel with the given granularity anchored at
// epoch. gran must be positive. The cursor starts one tick before the
// epoch so releases at the epoch itself (offset-zero tasks on the first
// tick) are not clamped into the future.
func newTimerWheel(gran, epoch time.Duration) *timerWheel {
	return &timerWheel{gran: gran, epoch: epoch, base: -1}
}

// tickOf converts an instant to the wheel tick that fires at or after it
// (insertion rounding: a release never fires early).
func (w *timerWheel) tickOf(at time.Duration) int64 {
	if at <= w.epoch {
		return 0
	}
	d := at - w.epoch
	return int64((d + w.gran - 1) / w.gran)
}

// tickAt converts the current instant to the newest tick that has already
// fired (advance rounding: the cursor never overtakes real time).
func (w *timerWheel) tickAt(now time.Duration) int64 {
	if now <= w.epoch {
		return 0
	}
	return int64((now - w.epoch) / w.gran)
}

// insert buckets t for its release instant at. A task lives in at most one
// slot: inserting again first invalidates the previous entry.
func (w *timerWheel) insert(t *task, at time.Duration) {
	if t.wheelLive {
		w.live--
	}
	t.wheelGen++
	t.wheelLive = true
	tick := w.tickOf(at)
	if tick <= w.base {
		tick = w.base + 1 // already due: fire at the next advance
	}
	t.wheelTick = tick
	w.live++
	delta := tick - w.base
	if delta >= wheelHorizon {
		w.overflow = append(w.overflow, wheelEntry{t: t, gen: t.wheelGen})
		return
	}
	lvl := 0
	for delta >= int64(wheelSlots)<<(wheelBits*lvl) {
		lvl++
	}
	slot := (tick >> (wheelBits * lvl)) & wheelMask
	w.slots[lvl][slot] = append(w.slots[lvl][slot], wheelEntry{t: t, gen: t.wheelGen})
}

// remove invalidates t's pending entry (lazily: the slot is cleaned when
// next visited).
func (w *timerWheel) remove(t *task) {
	if !t.wheelLive {
		return
	}
	t.wheelGen++
	t.wheelLive = false
	w.live--
}

// advanceTo moves the cursor to nowTick, appending every due task to *due.
// Entries that merely moved closer cascade down to finer levels. The cost is
// O(slots crossed + entries touched): each entry cascades at most
// wheelLevels times over its lifetime.
func (w *timerWheel) advanceTo(nowTick int64, due *[]*task) {
	if nowTick <= w.base {
		return
	}
	oldBase := w.base
	// Move the cursor first: cascading entries re-bucket relative to the NEW
	// cursor, or a still-pending entry could land back in a coarse slot that
	// was already crossed and not fire until a full wheel lap later.
	w.base = nowTick
	for lvl := 0; lvl < wheelLevels; lvl++ {
		shift := uint(wheelBits * lvl)
		from, to := oldBase>>shift, nowTick>>shift
		if from == to {
			break // this and all coarser levels are untouched
		}
		n := to - from
		if n > wheelSlots {
			n = wheelSlots
		}
		for i := int64(1); i <= n; i++ {
			w.flushSlot(lvl, int((from+i)&wheelMask), nowTick, due)
		}
	}
	crossedTop := (oldBase >> (wheelBits * (wheelLevels - 1))) != (nowTick >> (wheelBits * (wheelLevels - 1)))
	if crossedTop && len(w.overflow) > 0 {
		w.rebucketOverflow(due)
	}
}

// flushSlot empties one slot: stale entries are dropped, due tasks are
// emitted, the rest re-bucket relative to the new cursor.
func (w *timerWheel) flushSlot(lvl, slot int, nowTick int64, due *[]*task) {
	entries := w.slots[lvl][slot]
	if len(entries) == 0 {
		return
	}
	w.slots[lvl][slot] = entries[:0]
	for _, e := range entries {
		if e.gen != e.t.wheelGen {
			continue // invalidated by remove or re-insert
		}
		if e.t.wheelTick <= nowTick {
			e.t.wheelLive = false
			e.t.wheelGen++
			w.live--
			*due = append(*due, e.t)
			continue
		}
		w.reinsert(e)
	}
}

// reinsert buckets a still-pending entry relative to the current cursor,
// keeping its generation (the task was not rescheduled, only cascaded).
func (w *timerWheel) reinsert(e wheelEntry) {
	delta := e.t.wheelTick - w.base
	if delta < 1 {
		delta = 1
	}
	if delta >= wheelHorizon {
		w.overflow = append(w.overflow, e)
		return
	}
	lvl := 0
	for delta >= int64(wheelSlots)<<(wheelBits*lvl) {
		lvl++
	}
	slot := (e.t.wheelTick >> (wheelBits * lvl)) & wheelMask
	w.slots[lvl][slot] = append(w.slots[lvl][slot], wheelEntry{t: e.t, gen: e.gen})
}

// rebucketOverflow re-buckets overflow entries that came within the
// hierarchical horizon (and emits any that became due).
func (w *timerWheel) rebucketOverflow(due *[]*task) {
	kept := w.overflow[:0]
	for _, e := range w.overflow {
		if e.gen != e.t.wheelGen {
			continue
		}
		switch {
		case e.t.wheelTick <= w.base:
			e.t.wheelLive = false
			e.t.wheelGen++
			w.live--
			*due = append(*due, e.t)
		case e.t.wheelTick-w.base < wheelHorizon:
			w.reinsert(e)
		default:
			kept = append(kept, e)
		}
	}
	w.overflow = kept
}

// nextDueTick returns a lower bound on the next tick at which an entry can
// fire, and whether any live entry exists. Every level contributes a
// candidate — the first live slot's boundary — and the minimum across
// levels (and the overflow horizon) is returned: a coarse-level entry that
// re-armed from an earlier cursor can be nearer in time than every
// finer-level entry, so levels must not be short-circuited in order. The
// bound is exact for level-0 entries; coarser levels report their slot
// boundary (the scheduler wakes there, cascades the slot down, and
// re-queries — at most wheelLevels wakes per entry, amortised O(1)).
func (w *timerWheel) nextDueTick() (int64, bool) {
	if w.live == 0 {
		return 0, false
	}
	best := int64(0)
	ok := false
	consider := func(at int64) {
		if at <= w.base {
			at = w.base + 1
		}
		if !ok || at < best {
			best, ok = at, true
		}
	}
	for lvl := 0; lvl < wheelLevels; lvl++ {
		shift := uint(wheelBits * lvl)
		cur := w.base >> shift
		for i := int64(1); i <= wheelSlots; i++ {
			q := cur + i
			if w.slotLive(lvl, int(q&wheelMask)) {
				// Earliest instant any entry in this slot can fire: the
				// slot's first tick. Within a level, slots scan in time
				// order, so the first live one is the level's candidate.
				consider(q << shift)
				break
			}
		}
	}
	if len(w.overflow) > 0 {
		// Far future: the overflow re-buckets when the cursor crosses the
		// horizon boundary.
		consider(w.base + wheelHorizon)
	}
	return best, ok
}

// slotLive reports whether a slot holds at least one non-stale entry,
// compacting stale ones away as a side effect.
func (w *timerWheel) slotLive(lvl, slot int) bool {
	entries := w.slots[lvl][slot]
	if len(entries) == 0 {
		return false
	}
	kept := entries[:0]
	for _, e := range entries {
		if e.gen == e.t.wheelGen {
			kept = append(kept, e)
		}
	}
	w.slots[lvl][slot] = kept
	return len(kept) > 0
}
