package core

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// The scheduler hot path keeps periodic root tasks in hierarchical timing
// wheels instead of scanning the whole task table every tick: a task is
// bucketed by its next release instant, a tick advances the wheel cursor and
// touches only the slots the elapsed time crossed, and the cost of a tick is
// O(jobs released) — independent of how many tasks are declared. One wheel
// exists per release shard (one per ready queue: a single shard under the
// global mapping, one per virtual core under the partitioned mapping).
//
// Geometry: wheelLevels levels of wheelSlots slots. Level 0 buckets releases
// less than wheelSlots granules away, level l covers wheelSlots^(l+1)
// granules; releases beyond the top level wait in an overflow list that is
// re-bucketed when the cursor crosses a top-level slot boundary. With the
// granularity set to the scheduler grid (the GCD of all periods), every
// release instant falls exactly on a tick boundary, so wheel firing instants
// equal the legacy full-scan grid instants and traces are unchanged.
const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 4
	// wheelHorizon is the number of granules the hierarchical levels cover;
	// releases further out sit in the overflow list.
	wheelHorizon = int64(1) << (wheelBits * wheelLevels)
)

// releaseShard is one leaf of the sharded scheduler core: a ready queue,
// the timer wheel bucketing the shard's periodic roots, and a preallocated
// scratch buffer the tick drains due tasks into — all guarded by one leaf
// lock. Worker i owns shard i: it pops its own queue under the shard lock
// and, under the global mapping, steals from a sibling's shard by taking
// only that sibling's lock. App.mu is never required on this path.
//
// Lock discipline: queueMu ranks BELOW App.mu (reconfigMu(1) -> App.mu(2) ->
// queueMu(3) -> idleMu(4)), so commit paths holding App.mu may take a shard
// lock, but no code path may ever hold two shard locks at once (the analyzer
// models all shard locks as one identity; stealing and migration lock the
// source and destination shards strictly in sequence).
type releaseShard struct {
	//yasmin:lockrank 3 nosleep
	mu    sync.Mutex
	q     *readyQueue
	wheel *timerWheel
	due   []*task
	// nready mirrors q.len() for lock-free load probing (steal victim
	// selection, dispatch wake counts, idle workers' pre-park re-check).
	nready atomic.Int32
	// headPrio/headSeq mirror the queue head's priority key for the lock-free
	// preemption scan; they may tear relative to each other, so decisions
	// based on them are re-validated under the shard lock.
	headPrio atomic.Int64
	headSeq  atomic.Int64
}

// noRunPrio is the head/current mirror sentinel for "nothing here".
const noRunPrio = int64(math.MaxInt64)

// updateHeadLocked refreshes the head mirrors; caller holds sh.mu.
//
//yasmin:noalloc
func (sh *releaseShard) updateHeadLocked() {
	if h := sh.q.peek(); h != nil {
		sh.headPrio.Store(h.effPrio.Load())
		sh.headSeq.Store(h.seq)
	} else {
		sh.headPrio.Store(noRunPrio)
		sh.headSeq.Store(0)
	}
}

// wheelEntry is one bucketed task. Entries are invalidated lazily: each
// (re-)insertion bumps the task's wheelGen, and entries whose recorded
// generation no longer matches are dropped when their slot is next visited —
// removal never searches a slot.
type wheelEntry struct {
	t   *task
	gen uint64
}

// timerWheel buckets periodic root tasks by next-release tick. It is not
// synchronised; the caller holds the owning shard's lock.
type timerWheel struct {
	gran     time.Duration // granule; release instants quantise up to it
	epoch    time.Duration // instant of tick 0 (the schedule's start time)
	base     int64         // current cursor tick: slots <= base are flushed
	slots    [wheelLevels][wheelSlots][]wheelEntry
	overflow []wheelEntry
	live     int // live (non-stale) entries, overflow included
	// count tracks live entries per slot and occ mirrors count>0 as one
	// occupancy bit per slot, so nextDueTick finds the first live slot of a
	// level with a single rotate+trailing-zeros instead of walking slot
	// contents (a hot-path sin when thousands of far-future tasks share one
	// coarse slot).
	count [wheelLevels][wheelSlots]int32
	occ   [wheelLevels]uint64
}

// slotEnter/slotLeave maintain the per-slot live counters and the occupancy
// bitmaps as an entry's live position moves (lvl -1 = overflow list, which
// has no counter: len(overflow) > 0 is its conservative occupancy bound).
func (w *timerWheel) slotEnter(t *task, lvl, slot int) {
	t.wheelLvl, t.wheelSlot = int8(lvl), int16(slot)
	if lvl < 0 {
		return
	}
	if w.count[lvl][slot]++; w.count[lvl][slot] == 1 {
		w.occ[lvl] |= 1 << uint(slot)
	}
}

func (w *timerWheel) slotLeave(t *task) {
	lvl, slot := int(t.wheelLvl), int(t.wheelSlot)
	if lvl < 0 {
		return
	}
	if w.count[lvl][slot]--; w.count[lvl][slot] == 0 {
		w.occ[lvl] &^= 1 << uint(slot)
	}
}

// newTimerWheel creates a wheel with the given granularity anchored at
// epoch. gran must be positive. The cursor starts one tick before the
// epoch so releases at the epoch itself (offset-zero tasks on the first
// tick) are not clamped into the future.
func newTimerWheel(gran, epoch time.Duration) *timerWheel {
	return &timerWheel{gran: gran, epoch: epoch, base: -1}
}

// tickOf converts an instant to the wheel tick that fires at or after it
// (insertion rounding: a release never fires early).
func (w *timerWheel) tickOf(at time.Duration) int64 {
	if at <= w.epoch {
		return 0
	}
	d := at - w.epoch
	return int64((d + w.gran - 1) / w.gran)
}

// tickAt converts the current instant to the newest tick that has already
// fired (advance rounding: the cursor never overtakes real time).
func (w *timerWheel) tickAt(now time.Duration) int64 {
	if now <= w.epoch {
		return 0
	}
	return int64((now - w.epoch) / w.gran)
}

// insert buckets t for its release instant at. A task lives in at most one
// slot: inserting again first invalidates the previous entry.
func (w *timerWheel) insert(t *task, at time.Duration) {
	if t.wheelLive {
		w.slotLeave(t)
		w.live--
	}
	t.wheelGen.Add(1)
	t.wheelLive = true
	tick := w.tickOf(at)
	if tick <= w.base {
		tick = w.base + 1 // already due: fire at the next advance
	}
	t.wheelTick = tick
	w.live++
	delta := tick - w.base
	if delta >= wheelHorizon {
		w.overflow = append(w.overflow, wheelEntry{t: t, gen: t.wheelGen.Load()})
		w.slotEnter(t, -1, 0)
		return
	}
	lvl := 0
	for delta >= int64(wheelSlots)<<(wheelBits*lvl) {
		lvl++
	}
	slot := int((tick >> (wheelBits * lvl)) & wheelMask)
	w.slots[lvl][slot] = append(w.slots[lvl][slot], wheelEntry{t: t, gen: t.wheelGen.Load()})
	w.slotEnter(t, lvl, slot)
}

// remove invalidates t's pending entry (lazily: the slot is cleaned when
// next visited).
func (w *timerWheel) remove(t *task) {
	if !t.wheelLive {
		return
	}
	w.slotLeave(t)
	t.wheelGen.Add(1)
	t.wheelLive = false
	w.live--
}

// advanceTo moves the cursor to nowTick, appending every due task to *due.
// Entries that merely moved closer cascade down to finer levels. The cost is
// O(slots crossed + entries touched): each entry cascades at most
// wheelLevels times over its lifetime.
func (w *timerWheel) advanceTo(nowTick int64, due *[]*task) {
	if nowTick <= w.base {
		return
	}
	oldBase := w.base
	// Move the cursor first: cascading entries re-bucket relative to the NEW
	// cursor, or a still-pending entry could land back in a coarse slot that
	// was already crossed and not fire until a full wheel lap later.
	w.base = nowTick
	for lvl := 0; lvl < wheelLevels; lvl++ {
		shift := uint(wheelBits * lvl)
		from, to := oldBase>>shift, nowTick>>shift
		if from == to {
			break // this and all coarser levels are untouched
		}
		n := to - from
		if n > wheelSlots {
			n = wheelSlots
		}
		for i := int64(1); i <= n; i++ {
			w.flushSlot(lvl, int((from+i)&wheelMask), nowTick, due)
		}
	}
	crossedTop := (oldBase >> (wheelBits * (wheelLevels - 1))) != (nowTick >> (wheelBits * (wheelLevels - 1)))
	if crossedTop && len(w.overflow) > 0 {
		w.rebucketOverflow(due)
	}
}

// flushSlot empties one slot: stale entries are dropped, due tasks are
// emitted, the rest re-bucket relative to the new cursor.
func (w *timerWheel) flushSlot(lvl, slot int, nowTick int64, due *[]*task) {
	entries := w.slots[lvl][slot]
	if len(entries) == 0 {
		return
	}
	w.slots[lvl][slot] = entries[:0]
	for _, e := range entries {
		if e.gen != e.t.wheelGen.Load() {
			continue // invalidated by remove or re-insert
		}
		w.slotLeave(e.t)
		if e.t.wheelTick <= nowTick {
			e.t.wheelLive = false
			e.t.wheelGen.Add(1)
			w.live--
			*due = append(*due, e.t)
			continue
		}
		w.reinsert(e)
	}
}

// reinsert buckets a still-pending entry relative to the current cursor,
// keeping its generation (the task was not rescheduled, only cascaded).
func (w *timerWheel) reinsert(e wheelEntry) {
	delta := e.t.wheelTick - w.base
	if delta < 1 {
		delta = 1
	}
	if delta >= wheelHorizon {
		w.overflow = append(w.overflow, e)
		w.slotEnter(e.t, -1, 0)
		return
	}
	lvl := 0
	for delta >= int64(wheelSlots)<<(wheelBits*lvl) {
		lvl++
	}
	slot := int((e.t.wheelTick >> (wheelBits * lvl)) & wheelMask)
	w.slots[lvl][slot] = append(w.slots[lvl][slot], wheelEntry{t: e.t, gen: e.gen})
	w.slotEnter(e.t, lvl, slot)
}

// rebucketOverflow re-buckets overflow entries that came within the
// hierarchical horizon (and emits any that became due).
func (w *timerWheel) rebucketOverflow(due *[]*task) {
	kept := w.overflow[:0]
	for _, e := range w.overflow {
		if e.gen != e.t.wheelGen.Load() {
			continue
		}
		switch {
		case e.t.wheelTick <= w.base:
			e.t.wheelLive = false
			e.t.wheelGen.Add(1)
			w.live--
			*due = append(*due, e.t)
		case e.t.wheelTick-w.base < wheelHorizon:
			w.reinsert(e)
		default:
			kept = append(kept, e)
		}
	}
	w.overflow = kept
}

// nextDueTick returns a lower bound on the next tick at which an entry can
// fire, and whether any live entry exists. Every level contributes a
// candidate — the first live slot's boundary — and the minimum across
// levels (and the overflow horizon) is returned: a coarse-level entry that
// re-armed from an earlier cursor can be nearer in time than every
// finer-level entry, so levels must not be short-circuited in order. The
// bound is exact for level-0 entries; coarser levels report their slot
// boundary (the scheduler wakes there, cascades the slot down, and
// re-queries — at most wheelLevels wakes per entry, amortised O(1)).
func (w *timerWheel) nextDueTick() (int64, bool) {
	if w.live == 0 {
		return 0, false
	}
	best := int64(0)
	ok := false
	consider := func(at int64) {
		if at <= w.base {
			at = w.base + 1
		}
		if !ok || at < best {
			best, ok = at, true
		}
	}
	for lvl := 0; lvl < wheelLevels; lvl++ {
		if w.occ[lvl] == 0 {
			continue
		}
		shift := uint(wheelBits * lvl)
		cur := w.base >> shift
		// Earliest instant any entry in a slot can fire is the slot's first
		// tick, and within a level slots advance in time order — so the
		// level's candidate is the first occupied slot at or after cur+1,
		// found by rotating the occupancy bitmap to put cur+1 at bit 0.
		rot := bits.RotateLeft64(w.occ[lvl], -int((cur+1)&wheelMask))
		q := cur + 1 + int64(bits.TrailingZeros64(rot))
		consider(q << shift)
	}
	if len(w.overflow) > 0 {
		// Far future: the overflow re-buckets when the cursor crosses the
		// horizon boundary.
		consider(w.base + wheelHorizon)
	}
	return best, ok
}
