// Live, transactional reconfiguration — the runtime counterpart of the
// paper's multi-mode scheduling. Instead of the stop-the-world cycle
// (Stop, re-declare, Start) that pauses every task and discards in-flight
// topic state, App.Reconfigure batches add/remove/retune operations in a
// transaction, validates the batch, runs an online admission test (the
// internal/analysis schedulability tests keyed on Config.Mapping and
// Config.Priority) and applies the admitted plan at a quiescent point:
// the task tables are rewritten under the App lock between job boundaries,
// removed tasks drain (their in-flight jobs finish — nothing is killed
// mid-job) and unaffected tasks never stop.
package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/yasmin-rt/yasmin/internal/analysis"
	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/taskset"
	"github.com/yasmin-rt/yasmin/internal/trace"
)

// ErrNotSchedulable is the sentinel every admission rejection matches
// (errors.Is). The concrete error is a *NotSchedulableError carrying the
// offending task.
var ErrNotSchedulable = errors.New("core: transaction not schedulable")

// NotSchedulableError rejects a reconfiguration transaction whose target
// configuration fails the online admission test. Task names the task the
// failing test pins the violation on, Test the criterion that failed.
type NotSchedulableError struct {
	Task   string
	Test   string
	Detail string
}

func (e *NotSchedulableError) Error() string {
	return fmt.Sprintf("core: transaction not schedulable: task %s fails %s (%s)",
		e.Task, e.Test, e.Detail)
}

// Is matches the ErrNotSchedulable sentinel.
func (e *NotSchedulableError) Is(target error) bool { return target == ErrNotSchedulable }

// ModePreset is a named reconfiguration recipe installed with InstallMode
// and driven by SwitchMode: Build stages the task-set changes onto the
// transaction and Mode is the execution-mode word (SelectMode) installed at
// commit.
type ModePreset struct {
	Mode  uint32
	Build func(tx *Reconfig) error
}

// reconfigEndpoint stages a publisher/subscriber registration.
type reconfigEndpoint struct {
	t TID
	c CID
}

// stagedEdge stages a channel connection (or identifies one to sever).
type stagedEdge struct {
	src, dst TID
	ch       CID
	delay    int
}

// mergedTask is the validation/admission view of one task of the target
// configuration (post-drain steady state). accels carries the task's worst
// critical section per accelerator pool for the blocking-aware admission
// test.
type mergedTask struct {
	id     TID
	d      TData
	wcet   time.Duration
	nver   int
	staged bool
	accels []taskset.AccelUse
}

// Reconfig is a live-reconfiguration transaction. All operations stage
// changes; nothing is visible to the scheduler until Reconfigure validates
// the batch, admits it, and commits — or rolls every staged slot back.
// A Reconfig is only valid inside its Reconfigure callback.
type Reconfig struct {
	a *App
	c rt.Ctx

	addedTasks  []TID
	addedTopics []CID
	stagedEdges []stagedEdge
	disconnects []stagedEdge
	// removeTasks/removeTopics/retunes are lookup sets; the *Order slices
	// keep staging order so commits iterate deterministically (map order
	// would randomise slot recycling and the trace).
	removeTasks      map[TID]bool
	removeOrder      []TID
	removeTopics     map[CID]bool
	removeTopicOrder []CID
	retunes          map[TID]TData
	retuneOrder      []TID
	pubs, subs       []reconfigEndpoint
	mode             *uint32

	// merged model built by validate, reused by admit.
	merged []mergedTask
	preds  [][]int // indices into merged
}

// Reconfigure runs one transactional reconfiguration: fn stages the changes,
// the batch is validated as a whole, the target configuration passes the
// online admission test, and only then is the plan applied — at a quiescent
// point, under the App lock, between job boundaries. On any error nothing
// changes: staged slots are rolled back and the running application
// continues untouched. Admission rejections are typed *NotSchedulableError
// values matching ErrNotSchedulable and naming the offending task.
//
// Removed tasks drain: they release no new jobs but their in-flight jobs run
// to completion, after which their slots (and any topics removed with them)
// are reclaimed. Unaffected tasks keep running throughout — their released
// jobs, topic buffers and subscription cursors survive the epoch.
//
// Reconfigure also works on a stopped App (the changes simply wait for
// Start), but not under MappingOffline, whose dispatch table is inherently
// static. Transactions serialise against each other; callers may invoke it
// from any environment thread or from task code via ExecCtx.Reconfigure.
func (a *App) Reconfigure(c rt.Ctx, fn func(tx *Reconfig) error) error {
	p, err := a.PrepareReconfigure(c, fn)
	if err != nil {
		return err
	}
	p.Commit(c)
	return nil
}

// PreparedReconfig is a staged, validated and admitted — but not yet
// applied — reconfiguration transaction: the outcome of phase one of a
// two-phase (cluster-wide) reconfiguration. While prepared it holds the
// app's reconfiguration lock, so the admitted headroom cannot be claimed
// by a competing transaction; exactly one of Commit or Abort must follow,
// from the same environment thread that prepared (lock ownership).
type PreparedReconfig struct {
	a    *App
	tx   *Reconfig
	done bool
}

// PrepareReconfigure runs phase one of a reconfiguration: fn stages the
// changes, the batch is validated as a whole, and the target
// configuration passes the online admission test — but nothing is
// applied. On success the returned transaction holds the staged slots
// and the reconfiguration lock until Commit or Abort. On any error
// nothing changes: staged slots are rolled back, the lock is released,
// and the running application continues untouched. Admission rejections
// are typed *NotSchedulableError values matching ErrNotSchedulable.
func (a *App) PrepareReconfigure(c rt.Ctx, fn func(tx *Reconfig) error) (*PreparedReconfig, error) {
	if a.cfg.Mapping == MappingOffline {
		return nil, fmt.Errorf("core: live reconfiguration requires an online mapping (the offline dispatch table is static)")
	}
	a.reconfigMu.Lock(c)
	tx := &Reconfig{
		a:            a,
		c:            c,
		removeTasks:  make(map[TID]bool),
		removeTopics: make(map[CID]bool),
		retunes:      make(map[TID]TData),
	}
	// Roll back on every failed exit — including a panic inside fn — so
	// staged slots never leak from an abandoned transaction.
	prepared := false
	defer func() {
		if !prepared {
			tx.rollback()
			a.reconfigMu.Unlock(c)
		}
	}()
	if err := fn(tx); err != nil {
		return nil, err
	}
	if err := tx.validate(); err != nil {
		return nil, err
	}
	if err := tx.admit(); err != nil {
		return nil, err
	}
	prepared = true
	return &PreparedReconfig{a: a, tx: tx}, nil
}

// Commit applies the prepared transaction — at a quiescent point, under
// the App lock, between job boundaries — and releases the
// reconfiguration lock. Safe to call at most once; a second call (or one
// after Abort) is a no-op.
func (p *PreparedReconfig) Commit(c rt.Ctx) {
	if p.done {
		return
	}
	p.done = true
	p.tx.commit()
	p.a.reconfigMu.Unlock(c)
}

// Abort rolls the prepared transaction back — staged slots are released,
// nothing the application runs changes — and releases the
// reconfiguration lock. Safe to call at most once; a second call (or one
// after Commit) is a no-op.
func (p *PreparedReconfig) Abort(c rt.Ctx) {
	if p.done {
		return
	}
	p.done = true
	p.tx.rollback()
	p.a.reconfigMu.Unlock(c)
}

// InstallMode registers a named mode preset; SwitchMode(name) later runs it
// as a transaction. Install modes at declaration time (the spec layer does
// this for AppSpec.Modes).
func (a *App) InstallMode(name string, p ModePreset) error {
	if name == "" {
		return fmt.Errorf("core: mode preset needs a name")
	}
	if a.modes == nil {
		a.modes = make(map[string]ModePreset)
	}
	a.modes[name] = p
	return nil
}

// ModeNames returns the installed mode preset names, sorted (errors that
// embed the list must stay deterministic for byte-identical sim reports).
func (a *App) ModeNames() []string {
	names := make([]string, 0, len(a.modes))
	for n := range a.modes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SwitchMode runs the named mode preset as a reconfiguration transaction:
// its Build callback stages the task-set changes and its Mode word is
// installed for SelectMode version selection. The same admission guard and
// quiescent application as Reconfigure apply; on rejection the current mode
// keeps running unchanged.
func (a *App) SwitchMode(c rt.Ctx, name string) error {
	p, ok := a.modes[name]
	if !ok {
		return fmt.Errorf("core: no mode preset %q (installed: %v)", name, a.ModeNames())
	}
	err := a.Reconfigure(c, func(tx *Reconfig) error {
		if p.Build != nil {
			if err := p.Build(tx); err != nil {
				return err
			}
		}
		tx.SetMode(p.Mode)
		return nil
	})
	if err == nil {
		n := name
		a.modeName.Store(&n)
	}
	return err
}

// --- transaction operations -------------------------------------------------

func (tx *Reconfig) isStagedTask(t TID) bool {
	for _, id := range tx.addedTasks {
		if id == t {
			return true
		}
	}
	return false
}

func (tx *Reconfig) isStagedTopic(c CID) bool {
	for _, id := range tx.addedTopics {
		if id == c {
			return true
		}
	}
	return false
}

// liveTask returns an alive (running/admitted, not removed-by-this-tx) task.
// Caller holds a.mu.
func (tx *Reconfig) liveTask(t TID) (*task, error) {
	tk, err := tx.a.taskByID(t)
	if err != nil {
		return nil, err
	}
	if tk.state == taskDraining {
		return nil, fmt.Errorf("core: task %s is draining", tk.d.Name)
	}
	if tx.removeTasks[t] {
		return nil, fmt.Errorf("core: task %s is removed by this transaction", tk.d.Name)
	}
	return tk, nil
}

// refTask returns a task usable as a reference in this transaction: alive or
// staged by it. Caller holds a.mu.
func (tx *Reconfig) refTask(t TID) (*task, error) {
	if tx.isStagedTask(t) {
		return &tx.a.tasks[t], nil
	}
	return tx.liveTask(t)
}

// refTopic returns a topic usable as a reference: alive (not removed by this
// tx) or staged by it. Caller holds a.mu.
func (tx *Reconfig) refTopic(c CID) (*topic, error) {
	if tx.isStagedTopic(c) {
		return &tx.a.topics[c], nil
	}
	tp, err := tx.a.topicByID(c)
	if err != nil {
		return nil, err
	}
	if tx.removeTopics[c] {
		return nil, fmt.Errorf("core: topic %s is removed by this transaction", tp.name)
	}
	return tp, nil
}

// AddTask stages a new task. The returned TID is final on commit; stage at
// least one version with AddVersion before the transaction ends.
func (tx *Reconfig) AddTask(d TData) (TID, error) {
	if err := validateTData(d); err != nil {
		return -1, err
	}
	a := tx.a
	a.mu.Lock(tx.c)
	defer a.mu.Unlock(tx.c)
	if id := a.taskIDByName(d.Name); id >= 0 {
		st := a.tasks[id].state
		if (st == taskRunning || st == taskAdmitted) && !tx.removeTasks[id] {
			return -1, fmt.Errorf("core: task %q already declared", d.Name)
		}
	}
	for _, id := range tx.addedTasks {
		if a.tasks[id].d.Name == d.Name {
			return -1, fmt.Errorf("core: task %q staged twice", d.Name)
		}
	}
	t, id, err := a.allocTaskSlot()
	if err != nil {
		return -1, err
	}
	t.d = d
	a.setTaskStateLocked(t, taskStaged)
	tx.addedTasks = append(tx.addedTasks, id)
	return id, nil
}

// AddVersion stages an implementation for a task added in this transaction
// (versions of running tasks are immutable: retire and re-admit instead).
func (tx *Reconfig) AddVersion(t TID, fn TaskFunc, args any, props VSelect) (VID, error) {
	if !tx.isStagedTask(t) {
		return -1, fmt.Errorf("core: AddVersion targets a task not added by this transaction")
	}
	tk := &tx.a.tasks[t]
	if fn == nil {
		return -1, fmt.Errorf("core: task %s: nil version function", tk.d.Name)
	}
	if len(tk.versions) == cap(tk.versions) {
		return -1, fmt.Errorf("%w: MaxVersionsPerTask=%d", ErrTooMany, cap(tk.versions))
	}
	id := VID(len(tk.versions))
	tk.versions = append(tk.versions, version{id: id, fn: fn, args: args, props: props, accel: NoAccel})
	return id, nil
}

// UseAccel stages an accelerator binding for a staged task's version.
// Accelerators themselves are hardware and not reconfigurable.
func (tx *Reconfig) UseAccel(t TID, v VID, h HID) error {
	if !tx.isStagedTask(t) {
		return fmt.Errorf("core: UseAccel targets a task not added by this transaction")
	}
	tk := &tx.a.tasks[t]
	if int(v) < 0 || int(v) >= len(tk.versions) {
		return fmt.Errorf("core: task %s has no version %d", tk.d.Name, v)
	}
	if int(h) < 0 || int(h) >= tx.a.naccels {
		return fmt.Errorf("core: no accelerator %d", h)
	}
	// Normalised to the pool head, matching HwAccelUse.
	tk.versions[v].accel = tx.a.poolHead(h)
	return nil
}

// AddTopic stages a new pub-sub topic; it becomes addressable at commit.
func (tx *Reconfig) AddTopic(name string, opts TopicOpts) (CID, error) {
	if name == "" {
		return -1, fmt.Errorf("core: topic needs a name")
	}
	if opts.Capacity < 1 {
		return -1, fmt.Errorf("core: topic %s: capacity must be >= 1, got %d", name, opts.Capacity)
	}
	switch opts.Policy {
	case Reject, DropOldest, Latest:
	default:
		return -1, fmt.Errorf("core: topic %s: unknown overflow policy %d", name, int(opts.Policy))
	}
	return tx.stageTopic(name, opts)
}

// AddChannel stages a new FIFO channel (capacity 0 declares a pure
// precedence channel), the Table-1 degenerate topic.
func (tx *Reconfig) AddChannel(name string, capacity int) (CID, error) {
	if capacity < 0 {
		return -1, fmt.Errorf("core: channel %s: negative capacity", name)
	}
	return tx.stageTopic(name, TopicOpts{Capacity: capacity, Policy: Reject})
}

func (tx *Reconfig) stageTopic(name string, opts TopicOpts) (CID, error) {
	a := tx.a
	a.mu.Lock(tx.c)
	defer a.mu.Unlock(tx.c)
	if id := a.TopicID(name); id >= 0 && !tx.removeTopics[id] {
		return -1, fmt.Errorf("core: topic %q already declared", name)
	}
	id, err := a.declTopic(name, opts)
	if err != nil {
		return -1, err
	}
	// Staged topics stay invisible (dead) until commit flips them live.
	a.topics[id].dead = true
	a.topics[id].publishView()
	tx.addedTopics = append(tx.addedTopics, id)
	return id, nil
}

// RemoveTask stages the retirement of a running task: at commit it stops
// releasing jobs and drains — in-flight jobs finish, then the slot (and its
// topic cursors) are reclaimed.
func (tx *Reconfig) RemoveTask(t TID) error {
	a := tx.a
	a.mu.Lock(tx.c)
	defer a.mu.Unlock(tx.c)
	if tx.isStagedTask(t) {
		return fmt.Errorf("core: cannot remove a task staged by the same transaction")
	}
	tk, err := tx.liveTask(t)
	if err != nil {
		return err
	}
	if _, retuned := tx.retunes[t]; retuned {
		return fmt.Errorf("core: task %s both retuned and removed", tk.d.Name)
	}
	if !tx.removeTasks[t] {
		tx.removeTasks[t] = true
		tx.removeOrder = append(tx.removeOrder, t)
	}
	return nil
}

// RemoveTaskByName is RemoveTask resolving the live task by name.
func (tx *Reconfig) RemoveTaskByName(name string) error {
	a := tx.a
	a.mu.Lock(tx.c)
	id := a.taskIDByName(name)
	a.mu.Unlock(tx.c)
	if id < 0 {
		return fmt.Errorf("core: no task %q", name)
	}
	return tx.RemoveTask(id)
}

// RemoveTopic stages the removal of a topic. Every registered endpoint task
// must be removed in the same transaction (or already draining): the topic
// dies once they have all retired, so draining jobs still publish and take
// normally.
func (tx *Reconfig) RemoveTopic(c CID) error {
	a := tx.a
	a.mu.Lock(tx.c)
	defer a.mu.Unlock(tx.c)
	if tx.isStagedTopic(c) {
		return fmt.Errorf("core: cannot remove a topic staged by the same transaction")
	}
	if _, err := a.topicByID(c); err != nil {
		return err
	}
	if !tx.removeTopics[c] {
		tx.removeTopics[c] = true
		tx.removeTopicOrder = append(tx.removeTopicOrder, c)
	}
	return nil
}

// RemoveTopicByName is RemoveTopic resolving the topic by name.
func (tx *Reconfig) RemoveTopicByName(name string) error {
	a := tx.a
	a.mu.Lock(tx.c)
	id := a.TopicID(name)
	a.mu.Unlock(tx.c)
	if id < 0 {
		return fmt.Errorf("core: no topic %q", name)
	}
	return tx.RemoveTopic(id)
}

// Retune stages a timing change of a running task: period, deadline, offset,
// priority, sporadic flag and virtual core may change; the name is kept when
// d.Name is empty. The new parameters take effect from the task's next
// release — jobs already released keep their deadlines and priorities.
func (tx *Reconfig) Retune(t TID, d TData) error {
	a := tx.a
	a.mu.Lock(tx.c)
	defer a.mu.Unlock(tx.c)
	tk, err := tx.liveTask(t)
	if err != nil {
		return err
	}
	if d.Name == "" {
		d.Name = tk.d.Name
	}
	if d.Name != tk.d.Name {
		return fmt.Errorf("core: retune cannot rename task %s to %s", tk.d.Name, d.Name)
	}
	if err := validateTData(d); err != nil {
		return err
	}
	if _, dup := tx.retunes[t]; !dup {
		tx.retuneOrder = append(tx.retuneOrder, t)
	}
	tx.retunes[t] = d
	return nil
}

// Connect stages a precedence/data edge from src to dst through channel c;
// src, dst and c may be existing or staged by this transaction.
func (tx *Reconfig) Connect(src, dst TID, c CID) error {
	return tx.ConnectDelayed(src, dst, c, 0)
}

// ConnectDelayed is Connect with delay initial tokens pre-seeded on the edge
// (the SDF feedback construction), seeded at commit time.
func (tx *Reconfig) ConnectDelayed(src, dst TID, c CID, delay int) error {
	a := tx.a
	if delay < 0 {
		return fmt.Errorf("core: negative delay token count %d", delay)
	}
	if delay >= a.cfg.GraphInstanceCap {
		return fmt.Errorf("%w: %d delay tokens with GraphInstanceCap=%d",
			ErrTooMany, delay, a.cfg.GraphInstanceCap)
	}
	if src == dst {
		return fmt.Errorf("core: channel self-loop on task %d", src)
	}
	a.mu.Lock(tx.c)
	defer a.mu.Unlock(tx.c)
	if _, err := tx.refTask(src); err != nil {
		return err
	}
	if _, err := tx.refTask(dst); err != nil {
		return err
	}
	if _, err := tx.refTopic(c); err != nil {
		return err
	}
	tx.stagedEdges = append(tx.stagedEdges, stagedEdge{src: src, dst: dst, ch: c, delay: delay})
	return nil
}

// Disconnect stages the severing of an existing edge; in-flight tokens on it
// are discarded at commit.
func (tx *Reconfig) Disconnect(src, dst TID, c CID) error {
	a := tx.a
	a.mu.Lock(tx.c)
	defer a.mu.Unlock(tx.c)
	for i := 0; i < a.nedges; i++ {
		e := &a.edges[i]
		if !e.dead && e.src == src && e.dst == dst && e.ch == c {
			tx.disconnects = append(tx.disconnects, stagedEdge{src: src, dst: dst, ch: c})
			return nil
		}
	}
	return fmt.Errorf("core: no edge %d->%d through channel %d", src, dst, c)
}

// PubOn stages a publisher registration: task t (existing or staged) will
// publish on topic c (existing or staged).
func (tx *Reconfig) PubOn(t TID, c CID) error {
	a := tx.a
	a.mu.Lock(tx.c)
	defer a.mu.Unlock(tx.c)
	if _, err := tx.refTask(t); err != nil {
		return err
	}
	tp, err := tx.refTopic(c)
	if err != nil {
		return err
	}
	if tp.isPub(t) {
		return fmt.Errorf("core: task %d already publishes on topic %s", t, tp.name)
	}
	for _, ep := range tx.pubs {
		if ep.t == t && ep.c == c {
			return fmt.Errorf("core: publisher %d on topic %s staged twice", t, tp.name)
		}
	}
	tx.pubs = append(tx.pubs, reconfigEndpoint{t: t, c: c})
	return nil
}

// SubOn stages a subscriber registration. A subscriber added to a running
// topic starts at the topic tail: it sees entries published after the
// commit, never the history before its epoch.
func (tx *Reconfig) SubOn(t TID, c CID) error {
	a := tx.a
	a.mu.Lock(tx.c)
	defer a.mu.Unlock(tx.c)
	if _, err := tx.refTask(t); err != nil {
		return err
	}
	tp, err := tx.refTopic(c)
	if err != nil {
		return err
	}
	if tp.opts.Capacity == 0 {
		return fmt.Errorf("core: topic %s has no buffer (capacity 0); nothing to subscribe to", tp.name)
	}
	if tp.subFor(t) != nil {
		return fmt.Errorf("core: task %d already subscribes to topic %s", t, tp.name)
	}
	for _, ep := range tx.subs {
		if ep.t == t && ep.c == c {
			return fmt.Errorf("core: subscriber %d on topic %s staged twice", t, tp.name)
		}
	}
	tx.subs = append(tx.subs, reconfigEndpoint{t: t, c: c})
	return nil
}

// SetMode stages the execution-mode word installed at commit (SelectMode).
func (tx *Reconfig) SetMode(mode uint32) { tx.mode = &mode }

// HasTask reports whether a running (not draining, not removed-by-this-tx)
// or staged task holds the name.
func (tx *Reconfig) HasTask(name string) bool { return tx.TaskID(name) >= 0 }

// TaskID resolves a name against the transaction's merged view: staged
// tasks first, then alive tasks not removed by the transaction.
func (tx *Reconfig) TaskID(name string) TID {
	a := tx.a
	a.mu.Lock(tx.c)
	defer a.mu.Unlock(tx.c)
	for _, id := range tx.addedTasks {
		if a.tasks[id].d.Name == name {
			return id
		}
	}
	if id := a.taskIDByName(name); id >= 0 && !tx.removeTasks[id] &&
		(a.tasks[id].state == taskRunning || a.tasks[id].state == taskAdmitted) {
		return id
	}
	return -1
}

// TopicID resolves a topic/channel name against the merged view.
func (tx *Reconfig) TopicID(name string) CID {
	a := tx.a
	a.mu.Lock(tx.c)
	defer a.mu.Unlock(tx.c)
	for _, id := range tx.addedTopics {
		if a.topics[id].name == name {
			return id
		}
	}
	if id := a.TopicID(name); id >= 0 && !tx.removeTopics[id] {
		return id
	}
	return -1
}

// --- rollback / validate / admit / commit -----------------------------------

// severs reports whether the transaction kills this edge: one of its
// endpoints is removed or it is explicitly disconnected. The single source
// of truth for both validate and commit.
func (tx *Reconfig) severs(e *edge) bool {
	if tx.removeTasks[e.src] || tx.removeTasks[e.dst] {
		return true
	}
	for _, de := range tx.disconnects {
		if de.src == e.src && de.dst == e.dst && de.ch == e.ch {
			return true
		}
	}
	return false
}

// rollback releases every staged slot; the application is untouched.
func (tx *Reconfig) rollback() {
	a := tx.a
	a.mu.Lock(tx.c)
	defer a.mu.Unlock(tx.c)
	for _, id := range tx.addedTasks {
		t := &a.tasks[id]
		a.setTaskStateLocked(t, taskRetired)
		t.versions = t.versions[:0]
		a.freeTaskSlots = append(a.freeTaskSlots, int(id))
	}
	for _, id := range tx.addedTopics {
		a.killTopicLocked(&a.topics[id])
	}
	tx.addedTasks, tx.addedTopics = nil, nil
}

// validate checks the whole batch against the merged target configuration:
// structural rules (the same ones Start's resolve enforces), removal
// coverage and static capacity. It also builds the merged model admission
// reuses.
func (tx *Reconfig) validate() error {
	a := tx.a
	a.mu.Lock(tx.c)
	defer a.mu.Unlock(tx.c)

	// Merged task list: alive tasks (with retunes applied) minus removals,
	// plus staged ones.
	index := make(map[TID]int)
	for i := 0; i < a.ntasks; i++ {
		t := &a.tasks[i]
		if t.state != taskRunning && t.state != taskAdmitted {
			continue
		}
		if tx.removeTasks[t.id] {
			continue
		}
		d := t.d
		if rd, ok := tx.retunes[t.id]; ok {
			d = rd
		}
		var wcet time.Duration
		for vi := range t.versions {
			if w := t.versions[vi].props.WCET; w > wcet {
				wcet = w
			}
		}
		index[t.id] = len(tx.merged)
		tx.merged = append(tx.merged, mergedTask{id: t.id, d: d, wcet: wcet, nver: len(t.versions),
			accels: a.accelUsesLocked(t)})
	}
	for _, id := range tx.addedTasks {
		t := &a.tasks[id]
		var wcet time.Duration
		for vi := range t.versions {
			if w := t.versions[vi].props.WCET; w > wcet {
				wcet = w
			}
		}
		index[id] = len(tx.merged)
		tx.merged = append(tx.merged, mergedTask{id: id, d: t.d, wcet: wcet, nver: len(t.versions), staged: true,
			accels: a.accelUsesLocked(t)})
	}

	// Merged edge relation: alive edges not severed by the transaction,
	// plus staged ones.
	type medge struct{ src, dst, delay int }
	var edges []medge
	dying := 0
	for i := 0; i < a.nedges; i++ {
		e := &a.edges[i]
		if e.dead {
			continue
		}
		if tx.severs(e) {
			dying++
			continue
		}
		si, sok := index[e.src]
		di, dok := index[e.dst]
		if !sok || !dok {
			continue // endpoints draining from an earlier epoch
		}
		edges = append(edges, medge{src: si, dst: di, delay: e.initial})
	}
	for _, se := range tx.stagedEdges {
		si, sok := index[se.src]
		di, dok := index[se.dst]
		if !sok || !dok {
			return fmt.Errorf("core: staged edge %d->%d references a task outside the target configuration", se.src, se.dst)
		}
		edges = append(edges, medge{src: si, dst: di, delay: se.delay})
	}

	// Static capacity: staged edges must fit the recycled + unused slots.
	freeEdges := len(tx.a.freeEdgeSlots) + (len(a.edges) - a.nedges) + dying
	if len(tx.stagedEdges) > freeEdges {
		return fmt.Errorf("%w: %d staged edges, %d edge slots free (MaxChannels=%d)",
			ErrTooMany, len(tx.stagedEdges), freeEdges, len(a.edges))
	}

	// Per-task structural rules on the target configuration.
	tx.preds = make([][]int, len(tx.merged))
	succ := make([][]int, len(tx.merged))
	zeroDelayIn := make([]bool, len(tx.merged))
	hasIn := make([]bool, len(tx.merged))
	for _, e := range edges {
		tx.preds[e.dst] = append(tx.preds[e.dst], e.src)
		hasIn[e.dst] = true
		if e.delay == 0 {
			succ[e.src] = append(succ[e.src], e.dst)
			zeroDelayIn[e.dst] = true
		}
	}
	for i := range tx.merged {
		m := &tx.merged[i]
		if m.nver == 0 {
			return fmt.Errorf("core: task %s has no version", m.d.Name)
		}
		if m.d.Period > 0 && zeroDelayIn[i] {
			return fmt.Errorf("core: task %s is data-activated but has a period; only root nodes carry periods (feedback into a periodic root needs delay tokens)", m.d.Name)
		}
		// Every rule deriveTaskLocked re-checks at commit must be caught
		// here, or an admitted transaction would panic mid-commit. A
		// sporadic task without a minimum inter-arrival time has no implicit
		// deadline to fall back on, exactly like an aperiodic one.
		if m.d.Period == 0 && !hasIn[i] && m.d.Deadline == 0 {
			if m.d.Sporadic {
				return fmt.Errorf("core: sporadic task %s needs a minimum inter-arrival time (Period) or an explicit deadline", m.d.Name)
			}
			return fmt.Errorf("core: aperiodic task %s needs an explicit deadline (did a removal orphan it?)", m.d.Name)
		}
		if a.cfg.Mapping == MappingPartitioned {
			if m.d.VirtCore < 0 || m.d.VirtCore >= a.cfg.Workers {
				return fmt.Errorf("core: task %s: VirtCore %d out of [0,%d) for partitioned mapping",
					m.d.Name, m.d.VirtCore, a.cfg.Workers)
			}
		}
	}

	// Cycle check over zero-delay edges.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, len(tx.merged))
	var visit func(i int) error
	visit = func(i int) error {
		color[i] = grey
		for _, d := range succ[i] {
			switch color[d] {
			case grey:
				return fmt.Errorf("core: channel graph has a cycle through task %s", tx.merged[d].d.Name)
			case white:
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		color[i] = black
		return nil
	}
	for i := range tx.merged {
		if color[i] == white {
			if err := visit(i); err != nil {
				return err
			}
		}
	}

	// Removal coverage: a removed topic's registered endpoints must all be
	// leaving (removed now or draining already), and no surviving edge may
	// carry it.
	for _, c := range tx.removeTopicOrder {
		tp := &a.topics[c]
		leaving := func(t TID) bool {
			if tx.removeTasks[t] {
				return true
			}
			st := a.tasks[t].state
			return st == taskDraining || st == taskRetired
		}
		for _, p := range tp.pubs {
			if !leaving(p) {
				return fmt.Errorf("core: topic %s still has publisher %s; remove it in the same transaction", tp.name, a.tasks[p].d.Name)
			}
		}
		for _, s := range tp.subs {
			if !leaving(s.task) {
				return fmt.Errorf("core: topic %s still has subscriber %s; remove it in the same transaction", tp.name, a.tasks[s.task].d.Name)
			}
		}
		for i := 0; i < a.nedges; i++ {
			e := &a.edges[i]
			if !e.dead && e.ch == c && !tx.severs(e) {
				return fmt.Errorf("core: topic %s still connects %s->%s", tp.name,
					a.tasks[e.src].d.Name, a.tasks[e.dst].d.Name)
			}
		}
		for _, se := range tx.stagedEdges {
			if se.ch == c {
				return fmt.Errorf("core: topic %s is removed but a staged edge uses it", tp.name)
			}
		}
	}
	return nil
}

// admit runs the online admission test over the target configuration,
// keyed on Config.Mapping and Config.Priority. Tasks without WCET
// information contribute no demand (they are admitted blindly — declare
// version WCETs to make admission meaningful). The test covers the
// post-drain steady state; the transient overlap while removed tasks drain
// is bounded by one in-flight job per retiring task.
func (tx *Reconfig) admit() error {
	a := tx.a
	set := &taskset.Set{}
	var keys []int64
	var cores []int
	pl := a.env.Platform()
	globalSpeed := 1.0
	if pl != nil {
		for i, wc := range a.cfg.WorkerCores {
			if wc >= 0 && wc < len(pl.Cores) {
				s := pl.Cores[wc].Speed
				if i == 0 || s < globalSpeed {
					globalSpeed = s
				}
			}
		}
	}
	seen := make([]bool, len(tx.merged))
	for i := range tx.merged {
		m := &tx.merged[i]
		if m.wcet <= 0 {
			continue
		}
		period := m.d.Period
		deadline := m.d.Deadline
		if period == 0 {
			for k := range seen {
				seen[k] = false
			}
			rp, rd := tx.rootTiming(i, seen)
			if rp == 0 {
				continue // aperiodic with no periodic root: unanalysable, admitted blindly
			}
			period = rp
			if deadline == 0 {
				deadline = rd
			}
		}
		if deadline == 0 {
			deadline = period
		}
		speed := globalSpeed
		if a.cfg.Mapping == MappingPartitioned && pl != nil {
			wc := a.cfg.WorkerCores[m.d.VirtCore]
			if wc >= 0 && wc < len(pl.Cores) {
				speed = pl.Cores[wc].Speed
			}
		}
		wcet := m.wcet
		if speed > 0 && speed != 1.0 {
			wcet = time.Duration(float64(wcet) / speed)
		}
		// Accelerator sections run at the accelerator's speed, not the
		// core's: the critical-section lengths stay nominal.
		set.Tasks = append(set.Tasks, taskset.Task{
			ID:       int(m.id),
			Name:     m.d.Name,
			Period:   period,
			Deadline: deadline,
			Offset:   m.d.ReleaseOffset,
			WCET:     wcet,
			Sporadic: m.d.Sporadic,
			Accels:   m.accels,
		})
		switch a.cfg.Priority {
		case PriorityRM:
			keys = append(keys, int64(period))
		case PriorityDM:
			keys = append(keys, int64(deadline))
		case PriorityUser:
			keys = append(keys, int64(m.d.Priority))
		default:
			// EDF: dynamic priorities; the key is only consumed by the
			// blocking analysis, whose preemption levels are the relative
			// deadlines.
			keys = append(keys, int64(deadline))
		}
		cores = append(cores, m.d.VirtCore)
	}
	adm := analysis.Admission{
		Workers:       a.cfg.Workers,
		Partitioned:   a.cfg.Mapping == MappingPartitioned,
		FixedPriority: a.cfg.Priority != PriorityEDF,
		Cores:         cores,
	}
	if adm.FixedPriority {
		adm.PrioKey = keys
	}
	// Accelerator contention is priced into admission: the per-task PIP
	// blocking bounds (worst lower-priority critical section per shared
	// pool) join the schedulability test. Under EDF the blocking priority
	// order is the deadline order (preemption levels).
	terms := analysis.PIPBlocking(set, keys)
	blocking := analysis.Durations(terms)
	adm.Blocking = blocking
	res, err := analysis.Admit(set, adm)
	if err != nil {
		return err
	}
	if !res.Schedulable {
		offender := res.Offender
		if offender == "" && len(tx.addedTasks) > 0 {
			offender = tx.a.tasks[tx.addedTasks[0]].d.Name
		}
		detail := res.Detail
		test := res.Test
		// When the set is schedulable ignoring blocking, the accelerator
		// contention alone is the reason for rejection: say so, naming the
		// blocking term the offender pays.
		if anyBlocking(blocking) {
			noBlock := adm
			noBlock.Blocking = nil
			if res2, err2 := analysis.Admit(set, noBlock); err2 == nil && res2.Schedulable {
				test += "+accel-blocking"
				for i := range set.Tasks {
					if set.Tasks[i].Name == offender && terms[i].Dur > 0 {
						detail = fmt.Sprintf("%s; schedulable without accelerator contention — blocking term %s",
							detail, terms[i])
						break
					}
				}
			}
		}
		return &NotSchedulableError{Task: offender, Test: test, Detail: detail}
	}
	return nil
}

// anyBlocking reports whether at least one blocking term is non-zero.
func anyBlocking(blocking []time.Duration) bool {
	for _, b := range blocking {
		if b > 0 {
			return true
		}
	}
	return false
}

// rootTiming walks the merged predecessor relation back to periodic roots
// and returns the smallest root period with its matching effective deadline.
func (tx *Reconfig) rootTiming(i int, seen []bool) (time.Duration, time.Duration) {
	if seen[i] {
		return 0, 0
	}
	seen[i] = true
	var bestP, bestD time.Duration
	consider := func(p, d time.Duration) {
		if p > 0 && (bestP == 0 || p < bestP) {
			bestP, bestD = p, d
		}
	}
	for _, pi := range tx.preds[i] {
		m := &tx.merged[pi]
		if m.d.Period > 0 {
			d := m.d.Deadline
			if d == 0 {
				d = m.d.Period
			}
			consider(m.d.Period, d)
		} else {
			consider(tx.rootTiming(pi, seen))
		}
	}
	return bestP, bestD
}

// commit applies the admitted plan at the quiescent barrier: the App lock is
// held while the declaration tables and derived scheduling state are
// rewritten, so every job observes either the old or the new epoch, never a
// mix. Running jobs are untouched; the scheduler is nudged so retuned grids
// take effect immediately.
func (tx *Reconfig) commit() {
	a := tx.a
	started := a.started.Load()
	rec := tx.commitTables(started)
	a.rec.RecordReconfig(rec)
	// Nudge the scheduler so admitted tasks and retuned grids take effect
	// now, not at the old grid's next tick.
	if started && a.schedTh != nil {
		a.schedTh.Interrupt()
	}
}

// commitTables is the locked half of commit. The App lock is released by
// defer so that an invariant-violation panic (a validated transaction
// failing derivation — a bug, not a user error) crashes loudly instead of
// deadlocking the deferred rollback on the still-held lock.
func (tx *Reconfig) commitTables(started bool) trace.ReconfigRecord {
	a := tx.a
	c := tx.c
	costs := a.env.Costs()

	a.mu.Lock(c)
	defer a.mu.Unlock(c)
	t0 := c.Now()
	now := t0
	epoch := int(a.epoch.Load()) + 1
	rec := trace.ReconfigRecord{Epoch: epoch, At: now}
	liveWheels := started && a.shards[0].wheel != nil

	// Removed tasks start draining; their pending releases leave the wheel.
	// Task lifecycle and wheel writes go under the home shard lock (rank
	// 2 -> 3): the release tick runs under shard locks alone and may be
	// mid-pass on another shard right now.
	for _, id := range tx.removeOrder {
		t := &a.tasks[id]
		sh := a.shards[t.shard.Load()]
		sh.mu.Lock()
		t.state = taskDraining
		t.retireEpoch = epoch
		if liveWheels {
			a.wheelRemoveShardLocked(t)
		}
		sh.mu.Unlock()
		t.draining.Store(true)
		rec.Retiring = append(rec.Retiring, t.d.Name)
	}
	// Severed edges die and their slots recycle. Their consumers are
	// remembered: losing an in-edge can complete a surviving task's input
	// set (its other edges already hold tokens), which must then fire via
	// the scheduler's catch-up queue, not wait for a producer that may
	// never complete again.
	var severedDsts []TID
	for i := 0; i < a.nedges; i++ {
		e := &a.edges[i]
		if !e.dead && tx.severs(e) {
			e.dead = true
			a.freeEdgeSlots = append(a.freeEdgeSlots, i)
			severedDsts = append(severedDsts, e.dst)
		}
	}
	// Staged edges materialise, delay tokens seeded at the commit instant.
	for _, se := range tx.stagedEdges {
		e := a.allocEdgeSlot()
		e.src, e.dst, e.ch, e.initial = se.src, se.dst, se.ch, se.delay
		if cap(e.stamps) < a.cfg.GraphInstanceCap {
			e.stamps = make([]time.Duration, a.cfg.GraphInstanceCap)
		} else {
			e.stamps = e.stamps[:a.cfg.GraphInstanceCap]
		}
		e.head, e.count, e.tokens = 0, 0, 0
		e.dead = false
		for k := 0; k < se.delay; k++ {
			e.pushStamp(now)
		}
	}
	// Retunes take effect from the next release; a shortened period pulls
	// the next release in so activation latency is bounded by the new
	// period, not the old one.
	for _, id := range tx.retuneOrder {
		t := &a.tasks[id]
		sh := a.shards[t.shard.Load()]
		sh.mu.Lock()
		t.d = tx.retunes[id]
		if started && t.d.Period > 0 && !t.d.Sporadic && t.nextRelease > now+t.d.Period {
			t.nextRelease = now + t.d.Period
		}
		sh.mu.Unlock()
		rec.Retuned = append(rec.Retuned, t.d.Name)
	}
	// Staged tasks are admitted.
	for _, id := range tx.addedTasks {
		t := &a.tasks[id]
		sh := a.shards[t.shard.Load()]
		sh.mu.Lock()
		if started {
			t.state = taskRunning
		} else {
			t.state = taskAdmitted
		}
		t.nextRelease = now + t.d.ReleaseOffset
		t.lastActivation = 0
		t.everActivated = false
		t.jobSeq = 0
		sh.mu.Unlock()
		t.live.Store(0)
		t.draining.Store(false)
		rec.Admitted = append(rec.Admitted, t.d.Name)
	}
	// Staged topics go live; staged endpoints register. New subscribers
	// start at the tail: surviving subscribers' cursors are untouched.
	for _, id := range tx.addedTopics {
		a.topics[id].dead = false
	}
	for _, ep := range tx.pubs {
		tp := &a.topics[ep.c]
		tp.pubs = append(tp.pubs, ep.t)
	}
	for _, ep := range tx.subs {
		tp := &a.topics[ep.c]
		// Pre-epoch history must stay invisible to the new subscriber: fold
		// staged wall-clock publishes into the buffer first, and skip past
		// any residue a full buffer kept staged (those entries were pushed
		// before this commit too).
		tp.drainStaging()
		cursor := tp.tail
		if tp.staging != nil {
			cursor += uint64(tp.staging.Len())
		}
		tp.subs = append(tp.subs, subscription{task: ep.t, cursor: cursor})
	}
	a.pendingDeadTopics = append(a.pendingDeadTopics, tx.removeTopicOrder...)
	// Derived scheduling state for the new epoch.
	if err := a.rebuildGraphLocked(); err != nil {
		panic(fmt.Sprintf("core: validated transaction failed graph rebuild: %v", err))
	}
	for i := 0; i < a.ntasks; i++ {
		t := &a.tasks[i]
		if t.state != taskRunning && t.state != taskAdmitted {
			continue
		}
		if err := a.deriveTaskLocked(t); err != nil {
			panic(fmt.Sprintf("core: validated transaction failed derivation: %v", err))
		}
	}
	a.refreshTopicsAfterCommitLocked(tx)
	// Instant retirements (removed tasks with no in-flight jobs) and topic
	// reaping.
	for _, id := range tx.removeOrder {
		t := &a.tasks[id]
		if t.state == taskDraining && t.live.Load() == 0 {
			a.finishRetireLocked(t, now)
		}
	}
	a.reapDeadTopicsLocked()
	// Scheduler grid: the GCD may have changed. The release wheels are
	// granular at the grid, so a changed grid rebuilds them (O(tasks), only
	// on grid-changing commits); an unchanged grid updates them
	// incrementally below (O(changes)).
	oldGrid := a.schedPeriodNow()
	if a.cfg.SchedulerPeriod == 0 && started {
		a.schedPeriodNs.Store(int64(a.schedGCD()))
	}
	if liveWheels && a.schedPeriodNow() != oldGrid {
		a.rebuildWheelsLocked(now)
	} else if liveWheels {
		// Retuned tasks re-arm at their (possibly pulled-in) next release;
		// admitted periodic roots arm for the first time. A retune that moved
		// the task's home already dropped the old shard's entry (derivation
		// removes it under the OLD home lock before publishing the move), so
		// locking the current home covers both remove and insert here.
		for _, id := range tx.retuneOrder {
			t := &a.tasks[id]
			si := int(t.shard.Load())
			sh := a.shards[si]
			sh.mu.Lock()
			a.wheelRemoveShardLocked(t)
			if t.state == taskRunning && t.root && t.d.Period > 0 && !t.d.Sporadic {
				a.wheelInsertShardLocked(sh, si, t)
			}
			sh.mu.Unlock()
		}
		for _, id := range tx.addedTasks {
			t := &a.tasks[id]
			si := int(t.shard.Load())
			sh := a.shards[si]
			sh.mu.Lock()
			if t.state == taskRunning && t.root && t.d.Period > 0 && !t.d.Sporadic {
				a.wheelInsertShardLocked(sh, si, t)
			}
			sh.mu.Unlock()
		}
	}
	// Input backlogs the transaction exposed (delay-token seeds on staged
	// edges, a severed edge completing a surviving consumer's input set)
	// queue their consumers for the scheduler's catch-up release.
	for _, se := range tx.stagedEdges {
		if int(se.dst) < a.ntasks {
			a.noteDataReadyLocked(&a.tasks[se.dst])
		}
	}
	for _, dst := range severedDsts {
		if int(dst) < a.ntasks {
			a.noteDataReadyLocked(&a.tasks[dst])
		}
	}
	if tx.mode != nil {
		a.mode.Store(*tx.mode)
	}
	rec.Mode = a.mode.Load()
	a.epoch.Store(int64(epoch))
	// Publish the new epoch's scheduling snapshot: lock-free readers
	// (TaskActivate's fast path, steal victim scans) flip to the new tables
	// with one atomic pointer swap.
	if started {
		a.publishViewLocked()
	}
	// The quiescent barrier's modelled price: a fixed commit cost plus the
	// table scans the rebuild performed.
	c.Charge(costs.ReconfigBarrier +
		time.Duration(a.ntasks+a.nedges+a.ntopics)*costs.StaticScanPerItem)
	rec.Pause = c.Now() - t0
	return rec
}

// allocEdgeSlot reserves an edge slot, recycling severed ones first. Caller
// holds the lock; capacity was validated.
func (a *App) allocEdgeSlot() *edge {
	if n := len(a.freeEdgeSlots); n > 0 {
		idx := a.freeEdgeSlots[n-1]
		a.freeEdgeSlots = a.freeEdgeSlots[:n-1]
		return &a.edges[idx]
	}
	e := &a.edges[a.nedges]
	a.nedges++
	return e
}
