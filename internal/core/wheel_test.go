package core

import (
	"math/rand"
	"testing"
	"time"
)

// collect advances the wheel to nowTick and returns the due tasks.
func collect(w *timerWheel, nowTick int64) []*task {
	var due []*task
	w.advanceTo(nowTick, &due)
	return due
}

func TestWheelFiresAtExactTicks(t *testing.T) {
	w := newTimerWheel(time.Millisecond, 0)
	tasks := make([]*task, 5)
	at := []time.Duration{0, time.Millisecond, 5 * time.Millisecond, 64 * time.Millisecond, 4096 * time.Millisecond}
	for i := range tasks {
		tasks[i] = &task{id: TID(i)}
		w.insert(tasks[i], at[i])
	}
	if w.live != 5 {
		t.Fatalf("live = %d, want 5", w.live)
	}
	fired := map[TID]int64{}
	for tick := int64(0); tick <= 4096; tick++ {
		for _, tk := range collect(w, tick) {
			fired[tk.id] = tick
		}
	}
	for i, want := range []int64{0, 1, 5, 64, 4096} {
		if got, ok := fired[TID(i)]; !ok || got != want {
			t.Errorf("task %d fired at tick %d (ok=%v), want %d", i, got, ok, want)
		}
	}
	if w.live != 0 {
		t.Errorf("live = %d after firing everything", w.live)
	}
}

func TestWheelBigJumpsDoNotLoseEntries(t *testing.T) {
	w := newTimerWheel(time.Microsecond, 0)
	// Entries across all levels plus overflow.
	offsets := []int64{1, 3, 63, 64, 100, 4095, 4096, 70000, 262143, 262144, 1 << 20, wheelHorizon + 5}
	tasks := make([]*task, len(offsets))
	for i, off := range offsets {
		tasks[i] = &task{id: TID(i)}
		w.insert(tasks[i], time.Duration(off)*time.Microsecond)
	}
	// Jump straight past everything in a few coarse strides.
	seen := map[TID]bool{}
	for _, tick := range []int64{2, 70, 5000, 100000, 300000, wheelHorizon + 10} {
		for _, tk := range collect(w, tick) {
			if seen[tk.id] {
				t.Errorf("task %d fired twice", tk.id)
			}
			seen[tk.id] = true
			if tk.wheelTick > tick {
				t.Errorf("task %d fired early (due tick %d, now %d)", tk.id, tk.wheelTick, tick)
			}
		}
	}
	for i := range tasks {
		if !seen[TID(i)] {
			t.Errorf("task %d (offset %d) never fired", i, offsets[i])
		}
	}
	if w.live != 0 {
		t.Errorf("live = %d after firing everything", w.live)
	}
}

func TestWheelRemoveAndReinsert(t *testing.T) {
	w := newTimerWheel(time.Millisecond, 0)
	tk := &task{id: 1}
	w.insert(tk, 10*time.Millisecond)
	w.remove(tk)
	if due := collect(w, 20); len(due) != 0 {
		t.Fatalf("removed task fired: %v", due)
	}
	// Re-insert after removal: exactly one firing, at the new instant.
	w.insert(tk, 30*time.Millisecond)
	var fired int
	for tick := int64(21); tick <= 40; tick++ {
		for range collect(w, tick) {
			fired++
			if tick != 30 {
				t.Errorf("fired at tick %d, want 30", tick)
			}
		}
	}
	if fired != 1 {
		t.Fatalf("fired %d times, want 1", fired)
	}
}

func TestWheelReinsertSupersedesPending(t *testing.T) {
	w := newTimerWheel(time.Millisecond, 0)
	tk := &task{id: 1}
	w.insert(tk, 5*time.Millisecond)
	w.insert(tk, 9*time.Millisecond) // retune: earlier entry must not fire
	var ticks []int64
	for tick := int64(0); tick <= 20; tick++ {
		for range collect(w, tick) {
			ticks = append(ticks, tick)
		}
	}
	if len(ticks) != 1 || ticks[0] != 9 {
		t.Fatalf("fired at %v, want exactly [9]", ticks)
	}
}

func TestWheelNextDueNeverLate(t *testing.T) {
	// Property: sleeping to nextDueTick and advancing there must fire every
	// entry no later than its due tick would be reached by 1-tick stepping.
	rng := rand.New(rand.NewSource(7))
	w := newTimerWheel(time.Microsecond, 0)
	type exp struct {
		t    *task
		tick int64
	}
	var pending []exp
	for i := 0; i < 500; i++ {
		tk := &task{id: TID(i)}
		off := rng.Int63n(1 << 21)
		w.insert(tk, time.Duration(off+1)*time.Microsecond)
		pending = append(pending, exp{tk, tk.wheelTick})
	}
	fired := map[TID]int64{}
	now := int64(0)
	for steps := 0; w.live > 0 && steps < 100000; steps++ {
		next, ok := w.nextDueTick()
		if !ok {
			break
		}
		if next <= now {
			next = now + 1
		}
		now = next
		for _, tk := range collect(w, now) {
			fired[tk.id] = now
		}
	}
	for _, e := range pending {
		got, ok := fired[e.t.id]
		if !ok {
			t.Fatalf("task %d never fired (due %d)", e.t.id, e.tick)
		}
		if got != e.tick {
			t.Errorf("task %d fired at %d, want exactly %d (nextDue must not skip past a due tick)", e.t.id, got, e.tick)
		}
	}
}

// TestWheelNextDueAcrossLevels is the regression test for the
// first-live-slot bug: nextDueTick must return the minimum over ALL
// levels, not the first level with a live slot. A coarse-level entry that
// re-armed from an earlier cursor can be due before every finer-level
// entry; returning the finer bound made the scheduler sleep 62 ticks past
// a due release.
func TestWheelNextDueAcrossLevels(t *testing.T) {
	w := newTimerWheel(time.Millisecond, 0)
	tA := &task{id: 1}
	tC := &task{id: 2}
	// From the initial cursor, tick 64 lands in level 1.
	w.insert(tA, 64*time.Millisecond)
	// Advance to tick 63 without crossing level-1 slot 1 (tA stays coarse).
	if due := collect(w, 63); len(due) != 0 {
		t.Fatalf("premature firing: %v", due)
	}
	// Re-arm a second task from the new cursor: tick 126 is delta 63 away,
	// so it lands in level 0 — nearer in level, farther in time.
	w.insert(tC, 126*time.Millisecond)
	next, ok := w.nextDueTick()
	if !ok {
		t.Fatal("no due tick with two live entries")
	}
	if next != 64 {
		t.Fatalf("nextDueTick = %d, want 64 (level-1 entry is due before the level-0 one)", next)
	}
	// And the entries fire at their exact ticks.
	if due := collect(w, 64); len(due) != 1 || due[0] != tA {
		t.Fatalf("tick 64 fired %v, want tA", due)
	}
	if due := collect(w, 126); len(due) != 1 || due[0] != tC {
		t.Fatalf("tick 126 fired %v, want tC", due)
	}
}

// TestWheelNextDueNeverLateAfterRearm extends the property test with
// continuous re-arming (the real scheduler's pattern): tasks re-insert
// from ever-later cursors, so coarse and fine levels interleave in time.
func TestWheelNextDueNeverLateAfterRearm(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	w := newTimerWheel(time.Millisecond, 0)
	type periodic struct {
		t      *task
		period int64
		next   int64
	}
	var tasks []periodic
	for i := 0; i < 40; i++ {
		p := []int64{1, 3, 63, 64, 65, 100, 4095, 4096, 5000}[rng.Intn(9)]
		pt := periodic{t: &task{id: TID(i)}, period: p, next: p}
		w.insert(pt.t, time.Duration(p)*time.Millisecond)
		tasks = append(tasks, pt)
	}
	now := int64(0)
	fired := 0
	for steps := 0; steps < 20000 && now < 20000; steps++ {
		next, ok := w.nextDueTick()
		if !ok {
			t.Fatal("wheel empty while tasks are armed")
		}
		if next <= now {
			next = now + 1
		}
		now = next
		var due []*task
		w.advanceTo(now, &due)
		for _, tk := range due {
			pt := &tasks[tk.id]
			if pt.next != now {
				t.Fatalf("task %d (period %d) fired at %d, want exactly %d (late by %d)",
					tk.id, pt.period, now, pt.next, now-pt.next)
			}
			fired++
			pt.next += pt.period
			w.insert(pt.t, time.Duration(pt.next)*time.Millisecond)
		}
	}
	if fired == 0 {
		t.Fatal("nothing fired")
	}
}

// TestSchedTickCostIndependentOfDeclaredTasks pins the O(ready) property at
// the unit level: advancing a wheel holding many far-future tasks must not
// walk them when nothing is due.
func TestSchedTickCostIndependentOfDeclaredTasks(t *testing.T) {
	w := newTimerWheel(time.Millisecond, 0)
	for i := 0; i < 100000; i++ {
		tk := &task{id: TID(i)}
		// All due at the same far-future tick.
		w.insert(tk, 50000*time.Millisecond)
	}
	var due []*task
	touched := 0
	for tick := int64(1); tick <= 1000; tick++ {
		due = due[:0]
		w.advanceTo(tick, &due)
		touched += len(due)
	}
	if touched != 0 {
		t.Fatalf("%d tasks touched while nothing was due", touched)
	}
}
