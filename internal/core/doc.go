// Package core implements the YASMIN middleware: user-space real-time
// scheduling of multi-version task sets on COTS heterogeneous platforms
// (Rouxel, Altmeyer, Grelck — MIDDLEWARE 2021).
//
// The package mirrors the paper's C API (Table 1) in Go: an App is
// configured statically (Config ~ the config.h header), tasks and their
// versions are declared before Start, worker threads ("virtual CPUs") are
// pinned to cores, a dedicated scheduler thread releases jobs on the
// activation grid (the GCD of all task periods), and preemption is
// delivered by signals (rt.Thread.Interrupt) that suspend the running
// job's execution context. All structures are sized by the Config at New:
// nothing on the scheduling path allocates, following the paper's
// MISRA-style discipline.
//
// # Scheduler hot path
//
// Periodic releases are organised in hierarchical timing wheels (wheel.go),
// one per release shard (one shard per ready queue: a single global shard,
// or one per virtual core under the partitioned mapping). A scheduler tick
// advances each wheel to the current grid point and touches only the due
// tasks, so tick cost is O(jobs released) — independent of the declared
// task count — and grid points at which nothing can fire are slept over
// entirely. Data-activated (DAG successor) jobs are released inline when
// their producer completes; seeded delay tokens and input backlogs exposed
// by reconfigurations go through a small catch-up queue drained each tick.
//
// # Extensions beyond the paper
//
// Three subsystems generalise the paper's lifecycle:
//
//   - Topics (topic.go): the Table-1 point-to-point FIFO generalised to
//     N-publisher/M-subscriber pub-sub over one shared buffer with
//     per-subscriber cursors and per-topic overflow policies. A legacy
//     channel IS a 1x1 Reject topic.
//   - Live reconfiguration (reconfig.go): transactional add/remove/retune
//     of tasks, topics and edges against a running schedule, guarded by an
//     online admission test (internal/analysis) and applied at a quiescent
//     barrier; removed tasks drain at job boundaries.
//   - Off-line dispatch (offline.go): pre-computed time-triggered tables
//     (paper Section 3.4), synthesised by internal/offline.
//
// # Locking
//
// One App lock (App.mu) guards all mutable scheduling state; it is held
// for table-bounded work only, never across job execution. Outside it live
// the deliberately lock-free paths: Publish through the atomic topicView
// snapshot and the MPSC staging ring (internal/lockfree), the atomic
// lifecycle flags (started/stopping/terminating), and the counters.
// Reconfiguration transactions serialise on App.reconfigMu and take App.mu
// only to stage and to commit. docs/ARCHITECTURE.md maps the boundary in
// detail.
package core
