package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/yasmin-rt/yasmin/internal/platform"
	"github.com/yasmin-rt/yasmin/internal/rt"
)

func TestUserPriorityAssignment(t *testing.T) {
	r := newRig(t, Config{Workers: 1, Priority: PriorityUser}, nil)
	var order []string
	mk := func(name string, prio int) {
		tid, err := r.app.TaskDecl(TData{Name: name, Period: ms(50), Priority: prio})
		if err != nil {
			t.Fatal(err)
		}
		r.app.VersionDecl(tid, func(x *ExecCtx, _ any) error {
			order = append(order, name)
			return x.Compute(ms(1))
		}, nil, VSelect{})
	}
	mk("lowprio", 30)
	mk("midprio", 20)
	mk("topprio", 10)
	r.runMain(t, ms(45), nil)
	if len(order) < 3 {
		t.Fatalf("order = %v", order)
	}
	if order[0] != "topprio" || order[1] != "midprio" || order[2] != "lowprio" {
		t.Errorf("order = %v, want user-priority order", order)
	}
}

func TestArbitraryDeadlines(t *testing.T) {
	// D > T (arbitrary): consecutive jobs may overlap in their deadline
	// windows; the runtime must accept and track them.
	r := newRig(t, Config{Workers: 2, Priority: PriorityEDF}, nil)
	tid, err := r.app.TaskDecl(TData{Name: "arb", Period: ms(10), Deadline: ms(25)})
	if err != nil {
		t.Fatal(err)
	}
	r.app.VersionDecl(tid, spin(ms(8)), nil, VSelect{})
	r.runMain(t, ms(100), nil)
	st := r.app.Recorder().Task("arb")
	if st == nil || st.Jobs < 9 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Misses != 0 {
		t.Errorf("misses = %d: 8ms job with 25ms deadline must fit", st.Misses)
	}
}

func TestAperiodicTaskActivation(t *testing.T) {
	// Non-sporadic, non-periodic task: activated ad hoc, needs a deadline.
	r := newRig(t, Config{Workers: 1}, nil)
	tid, err := r.app.TaskDecl(TData{Name: "aper", Deadline: ms(15)})
	if err != nil {
		t.Fatal(err)
	}
	r.app.VersionDecl(tid, spin(ms(2)), nil, VSelect{})
	// Another periodic task so the scheduler has something to derive its
	// period from.
	p, _ := r.app.TaskDecl(TData{Name: "p", Period: ms(10)})
	r.app.VersionDecl(p, spin(ms(1)), nil, VSelect{})
	r.runMain(t, ms(100), func(c rt.Ctx) {
		for i := 0; i < 3; i++ {
			c.Sleep(ms(20))
			if err := r.app.TaskActivate(c, tid); err != nil {
				t.Errorf("activate %d: %v", i, err)
			}
		}
	})
	st := r.app.Recorder().Task("aper")
	if st == nil || st.Jobs != 3 {
		t.Fatalf("aper stats = %+v, want 3 jobs", st)
	}
	if st.Misses != 0 {
		t.Errorf("aper missed %d deadlines", st.Misses)
	}
}

func TestChannelFullAndEmptyErrors(t *testing.T) {
	r := newRig(t, Config{Workers: 1}, nil)
	ch, _ := r.app.ChannelDecl("tiny", 1)
	src, _ := r.app.TaskDecl(TData{Name: "src", Period: ms(10)})
	dst, _ := r.app.TaskDecl(TData{Name: "dst"})
	var pushErr, popErr error
	r.app.VersionDecl(src, func(x *ExecCtx, _ any) error {
		if err := x.Push(ch, 1); err != nil {
			return err
		}
		pushErr = x.Push(ch, 2) // capacity 1: must fail
		return nil
	}, nil, VSelect{})
	r.app.VersionDecl(dst, func(x *ExecCtx, _ any) error {
		if _, err := x.Pop(ch); err != nil {
			return err
		}
		_, popErr = x.Pop(ch) // drained: must fail
		if n, err := x.ChannelLen(ch); err != nil || n != 0 {
			t.Errorf("len = %d,%v", n, err)
		}
		return nil
	}, nil, VSelect{})
	r.app.ChannelConnect(src, dst, ch)
	r.runMain(t, ms(25), nil)
	if pushErr == nil {
		t.Error("push into a full channel must fail")
	}
	if popErr == nil {
		t.Error("pop from an empty channel must fail")
	}
	if r.app.FirstError() != nil {
		t.Errorf("unexpected task error: %v", r.app.FirstError())
	}
}

func TestChannelBadIDs(t *testing.T) {
	r := newRig(t, Config{Workers: 1}, nil)
	tid, _ := r.app.TaskDecl(TData{Name: "t", Period: ms(10)})
	var errs [3]error
	r.app.VersionDecl(tid, func(x *ExecCtx, _ any) error {
		errs[0] = x.Push(CID(99), 1)
		_, errs[1] = x.Pop(CID(99))
		_, errs[2] = x.ChannelLen(CID(99))
		return nil
	}, nil, VSelect{})
	r.runMain(t, ms(15), nil)
	for i, err := range errs {
		if err == nil {
			t.Errorf("op %d on unknown channel must fail", i)
		}
	}
}

func TestEnergyMeteringOfJobs(t *testing.T) {
	pl := platform.OdroidXU4()
	r := newRig(t, Config{Workers: 1, WorkerCores: []int{4}, SchedulerCore: 5}, pl)
	meter := platform.NewEnergyMeter(nil)
	r.app.SetMeter(meter)
	tid, _ := r.app.TaskDecl(TData{Name: "worker-task", Period: ms(10)})
	r.app.VersionDecl(tid, spin(ms(5)), nil, VSelect{})
	r.runMain(t, ms(100), nil)
	total := meter.TotalMJ()
	// 10 jobs x 5ms on a 1550mW big core ~ 77.5 mJ.
	if total < 50 || total > 110 {
		t.Errorf("metered %g mJ, want ~77", total)
	}
	per := meter.ByName()
	if per["worker-task"] != total {
		t.Errorf("per-task energy %v", per)
	}
}

func TestBatteryDrainsPerVersionBudget(t *testing.T) {
	r := newRig(t, Config{Workers: 1}, nil)
	bat, err := platform.NewBattery(100)
	if err != nil {
		t.Fatal(err)
	}
	r.app.SetBattery(bat)
	tid, _ := r.app.TaskDecl(TData{Name: "t", Period: ms(10)})
	r.app.VersionDecl(tid, spin(ms(1)), nil, VSelect{EnergyBudget: 2})
	r.runMain(t, ms(55), nil)
	// ~6 jobs x 2mJ declared budget (+ compute drain on the generic core).
	if got := bat.RemainingMJ(); got > 90 {
		t.Errorf("battery at %g mJ; version budgets not drained", got)
	}
}

func TestGanttFromRecordedJobs(t *testing.T) {
	r := newRig(t, Config{Workers: 2, RecordJobs: true}, nil)
	a, _ := r.app.TaskDecl(TData{Name: "a", Period: ms(20)})
	b, _ := r.app.TaskDecl(TData{Name: "b", Period: ms(20)})
	r.app.VersionDecl(a, spin(ms(5)), nil, VSelect{})
	r.app.VersionDecl(b, spin(ms(5)), nil, VSelect{})
	r.runMain(t, ms(60), nil)
	var buf bytes.Buffer
	if err := r.app.Recorder().Gantt(&buf, ms(60), 60); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "core1") || !strings.Contains(out, "core2") {
		t.Errorf("gantt lacks worker cores:\n%s", out)
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Errorf("gantt lacks task bars:\n%s", out)
	}
}

func TestDeclarationsRejectedWhileRunning(t *testing.T) {
	r := newRig(t, Config{Workers: 1}, nil)
	tid, _ := r.app.TaskDecl(TData{Name: "t", Period: ms(10)})
	r.app.VersionDecl(tid, spin(ms(1)), nil, VSelect{})
	r.runMain(t, ms(30), func(c rt.Ctx) {
		if _, err := r.app.TaskDecl(TData{Name: "x", Period: ms(5)}); err == nil {
			t.Error("TaskDecl while running must fail")
		}
		if _, err := r.app.VersionDecl(tid, spin(ms(1)), nil, VSelect{}); err == nil {
			t.Error("VersionDecl while running must fail")
		}
		if _, err := r.app.ChannelDecl("c", 1); err == nil {
			t.Error("ChannelDecl while running must fail")
		}
		if _, err := r.app.HwAccelDecl("acc"); err == nil {
			t.Error("HwAccelDecl while running must fail")
		}
		if err := r.app.HwAccelUse(tid, 0, 0); err == nil {
			t.Error("HwAccelUse while running must fail")
		}
	})
}

func TestLittleCoreSlowsExecution(t *testing.T) {
	// The same task pinned (partitioned) to a LITTLE core responds slower
	// than on a big core — the big.LITTLE heterogeneity is visible.
	run := func(core int) time.Duration {
		pl := platform.OdroidXU4()
		r := newRig(t, Config{
			Workers: 1, WorkerCores: []int{core}, SchedulerCore: 7,
			Mapping: MappingPartitioned,
		}, pl)
		tid, _ := r.app.TaskDecl(TData{Name: "t", Period: ms(50), VirtCore: 0})
		r.app.VersionDecl(tid, spin(ms(10)), nil, VSelect{})
		r.runMain(t, ms(200), nil)
		st := r.app.Recorder().Task("t")
		if st == nil {
			t.Fatal("no stats")
		}
		_, _, avg := st.Response.Summary()
		return avg
	}
	big := run(4)    // Cortex-A15, speed 1.0
	little := run(0) // Cortex-A7, speed 0.45
	if little <= big {
		t.Errorf("LITTLE response %v not above big %v", little, big)
	}
	ratio := float64(little) / float64(big)
	if ratio < 1.8 || ratio > 2.8 {
		t.Errorf("LITTLE/big ratio %.2f, want ~1/0.45", ratio)
	}
}

func TestExecCtxAccessors(t *testing.T) {
	r := newRig(t, Config{Workers: 1}, nil)
	tid, _ := r.app.TaskDecl(TData{Name: "acc", Period: ms(10), Deadline: ms(8)})
	checked := false
	r.app.VersionDecl(tid, func(x *ExecCtx, args any) error {
		if x.Task() != tid || x.TaskName() != "acc" {
			t.Errorf("identity: %v %q", x.Task(), x.TaskName())
		}
		if x.Version() != 0 {
			t.Errorf("version = %d", x.Version())
		}
		if x.JobIndex() < 1 {
			t.Errorf("job index = %d", x.JobIndex())
		}
		if x.AbsoluteDeadline() != x.Release()+ms(8) {
			t.Errorf("deadline math: rel=%v dl=%v", x.Release(), x.AbsoluteDeadline())
		}
		if x.Battery() != -1 {
			t.Errorf("battery = %g without a battery", x.Battery())
		}
		if args != any("static") {
			t.Errorf("args = %v", args)
		}
		if x.App() != r.app {
			t.Error("App() mismatch")
		}
		checked = true
		return nil
	}, "static", VSelect{})
	r.runMain(t, ms(25), nil)
	if !checked {
		t.Fatal("task never ran")
	}
}
