package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/trace"
)

// workerWake tells a worker why its fiber woke it.
type workerWake int

const (
	wakeNone workerWake = iota
	wakeCompleted
	wakeSuspended // preemption signal accepted: job parked on the fiber
	wakeAsyncFree // job entered an asynchronous accelerator section
)

// workerState is one virtual CPU (Figure 1): a thread pinned to a shielded
// core executing jobs, with a stack of preempted jobs. Worker i owns release
// shard i; the handshake fields (current, preempted, wakeReason, wakeJob,
// lastSignalTick) are guarded by that shard's lock, the idle-list links by
// idleMu, and pendingCost is worker-thread private.
type workerState struct {
	idx        int
	core       int
	th         rt.Thread
	current    *job
	preempted  []*job // LIFO of suspended jobs (incl. async-resumed ones)
	wakeReason workerWake
	wakeJob    *job // the job the notification refers to (debug invariant)

	// Intrusive idle-list links (guarded by idleMu). List membership is the
	// single source of truth for idleness; see enqueueIdle/claimIdle.
	onIdle   bool
	idlePrev *workerState
	idleNext *workerState

	// pendingCost accumulates modelled queue-op cost incurred under the
	// shard lock; it is folded into the next job's start charge (or flushed
	// before parking) so the lock itself never pays a timing event.
	pendingCost time.Duration

	// lastSignalTick dedups preemption signals per dispatch pass (guarded by
	// the worker's own shard lock).
	lastSignalTick int64

	// curPrio/curSeq mirror the running job's priority key for the lock-free
	// preemption victim scan; noRunPrio when not running. They may tear
	// relative to each other — decisions are re-validated under the shard
	// lock.
	curPrio atomic.Int64
	curSeq  atomic.Int64

	// vselOrder/vselRest are the worker-private version-selection scratch
	// slices used by the lock-free selection fast path (selectVersionFast).
	vselOrder []VID
	vselRest  []VID
}

// stackTop returns the most urgent resumable job on the worker's stack
// (the stack is LIFO but async-resumed jobs make priorities non-monotonic,
// so scan). Only jobs not still inside their accelerator section count.
// Caller holds the worker's shard lock.
func (w *workerState) stackTop() (int, *job) {
	bestIdx := -1
	var best *job
	for i, j := range w.preempted {
		if st := j.state.Load(); st == jobAccelAsync || st == jobAccelWait {
			// Still on the accelerator, or parked mid-job on a busy pool's
			// waiter list (AccelSectionOn); not resumable until the section
			// ends / the instance is granted.
			continue
		}
		if best == nil || j.before(best) {
			best, bestIdx = j, i
		}
	}
	return bestIdx, best
}

func (w *workerState) removeStack(i int) {
	w.preempted = append(w.preempted[:i], w.preempted[i+1:]...)
}

// workerLoop is the online-scheduling worker body: pick the most urgent of
// (own shard head, preempted stack), steal from a loaded sibling when both
// are empty (global mapping), run or resume the job, handle
// completion/suspension, park when idle. App.mu never appears on this loop's
// steady path — only the worker's own shard lock (and a victim's, one at a
// time, while stealing).
func (a *App) workerLoop(c rt.Ctx, w *workerState) {
	defer a.threadExit()
	costs := a.env.Costs()
	sh := a.shards[w.idx]
	for {
		if a.terminating.Load() {
			return
		}
		j, fresh := a.takeWork(w, sh)
		if j == nil && a.cfg.Mapping != MappingPartitioned {
			j, fresh = a.trySteal(w)
		}
		if j == nil {
			if w.pendingCost > 0 {
				c.Charge(w.pendingCost)
				w.pendingCost = 0
			}
			// Retire protocol: only when the whole system is drained —
			// another worker's running job can still release DAG successors.
			// The tick seqlock closes the race against an in-flight release
			// pass: jobsLive must read zero with the SAME even ticking value
			// on both sides.
			if a.stopping.Load() {
				tk := a.ticking.Load()
				if tk%2 == 0 && a.jobsLive.Load() == 0 && a.ticking.Load() == tk {
					a.wakeAllWorkers()
					return
				}
			}
			// Publish idleness, then re-check for work that raced the
			// enqueue: a dispatcher that missed us on the list owns no wake.
			a.enqueueIdle(w)
			if !a.workVisible(w, sh) {
				// Idle wait: a real kernel-level wait under WaitSleep;
				// WaitSpin wakes instantly at the cost of burning the core
				// (the paper's predictability/energy trade-off, Section 3.5).
				var intr bool
				if a.cfg.Wait == WaitSpin {
					intr = c.Park()
				} else {
					intr = c.ParkIdle()
				}
				if intr && a.terminating.Load() {
					a.claimIdle(w)
					return
				}
			}
			// Self-claim on any wake: exactly one of (dispatch, self) wins
			// the claim, so a consumed wake token always maps to a worker
			// that actually rechecks its queues.
			a.claimIdle(w)
			continue
		}
		// Fresh jobs need version selection and accelerator acquisition;
		// both can park the job on an accelerator waitlist.
		if fresh && !a.prepareRun(c, w, j) {
			continue
		}
		// Run handshake under the own shard lock: state, owner, mirrors.
		sh.mu.Lock()
		newRun := j.state.Load() == jobReady
		j.worker.Store(int32(w.idx))
		j.state.Store(jobRunning)
		w.current = j
		w.curPrio.Store(j.effPrio.Load())
		w.curSeq.Store(j.seq)
		sh.mu.Unlock()
		fib := j.fib

		// Context switch to the job's fiber (swapcontext analogue). For a
		// fresh run the switch cost (plus any accumulated queue-op cost)
		// rides lazily on the fiber's first Compute; resumes charge inline
		// (the fiber re-enters mid-body, not at its loop top).
		if newRun {
			j.pendingCharge = w.pendingCost + costs.ContextSwitch
			w.pendingCost = 0
		} else {
			cost := costs.ContextSwitch + w.pendingCost
			w.pendingCost = 0
			c.Charge(cost)
		}
		fib.th.SetCore(w.core)
		fib.th.Unpark()
		// Wait for the fiber's notification; tolerate spurious unparks
		// (they would otherwise corrupt the completion handshake).
		var reason workerWake
		for {
			intr := c.Park()
			if intr && a.terminating.Load() {
				return
			}
			sh.mu.Lock()
			reason = w.wakeReason
			if reason != wakeNone {
				break // handle below, still holding sh.mu
			}
			sh.mu.Unlock()
			if a.terminating.Load() {
				return
			}
		}
		w.wakeReason = wakeNone
		if w.wakeJob != j {
			wj := "<nil>"
			if w.wakeJob != nil {
				wj = fmt.Sprintf("%s(seq %d, state %d, fnDone %v)", w.wakeJob.name, w.wakeJob.seq, w.wakeJob.state.Load(), w.wakeJob.fnDone)
			}
			panic(fmt.Sprintf("worker %d: notification for %s but dispatched %s(seq %d) reason=%d",
				w.idx, wj, j.name, j.seq, reason))
		}
		w.wakeJob = nil
		switch reason {
		case wakeCompleted:
			w.current = nil
			w.curPrio.Store(noRunPrio)
			w.curSeq.Store(0)
			sh.mu.Unlock()
			// Completion bookkeeping runs with no shard lock held: the fast
			// path is lock-free, the slow path takes App.mu (rank 2 < 3).
			a.completeJob(c, w, j)
		case wakeSuspended:
			j.state.Store(jobPreempted)
			j.preempts++
			w.preempted = append(w.preempted, j)
			w.current = nil
			w.curPrio.Store(noRunPrio)
			w.curSeq.Store(0)
			sh.mu.Unlock()
		case wakeAsyncFree:
			// Job computes on the accelerator; the worker is free. The
			// fiber re-attaches through the preempted stack when done.
			w.preempted = append(w.preempted, j)
			w.current = nil
			w.curPrio.Store(noRunPrio)
			w.curSeq.Store(0)
			sh.mu.Unlock()
		default:
			sh.mu.Unlock()
			panic(fmt.Sprintf("worker %d: unknown wake reason %d", w.idx, reason))
		}
	}
}

// takeWork pops the most urgent of (own shard head, preempted stack) under
// the worker's own shard lock. fresh reports that the job came off the queue
// and still needs prepareRun (version selection / accelerator acquisition).
//
//yasmin:noalloc
func (a *App) takeWork(w *workerState, sh *releaseShard) (j *job, fresh bool) {
	sh.mu.Lock()
	head := sh.q.peek()
	si, st := w.stackTop()
	switch {
	case head == nil && st == nil:
		sh.mu.Unlock()
		return nil, false
	case head == nil:
		j = st
		w.removeStack(si)
	case st == nil || head.before(st):
		j = sh.q.pop()
		j.shardIdx.Store(-1)
		sh.nready.Add(-1)
		sh.updateHeadLocked()
		w.pendingCost += queueOpCost(a.env.Costs(), sh.q)
		fresh = true
	default:
		j = st
		w.removeStack(si)
	}
	sh.mu.Unlock()
	return j, fresh
}

// trySteal claims the head of the most loaded sibling shard (global mapping
// only; partitioned placements are fixed by definition). Victim selection
// reads the lock-free nready mirrors; exactly one shard lock is held at a
// time, and the pop re-validates under it.
//
//yasmin:noalloc
func (a *App) trySteal(w *workerState) (*job, bool) {
	best, bestLoad := -1, int32(0)
	for i, sh := range a.shards {
		if i == w.idx {
			continue
		}
		if n := sh.nready.Load(); n > bestLoad {
			best, bestLoad = i, n
		}
	}
	if best < 0 {
		return nil, false
	}
	sh := a.shards[best]
	sh.mu.Lock()
	j := sh.q.peek()
	if j == nil {
		sh.mu.Unlock()
		a.stealMisses.Add(1)
		return nil, false
	}
	sh.q.pop()
	j.shardIdx.Store(-1)
	sh.nready.Add(-1)
	sh.updateHeadLocked()
	w.pendingCost += queueOpCost(a.env.Costs(), sh.q)
	sh.mu.Unlock()
	a.steals.Add(1)
	return j, true
}

// workVisible re-checks for work after enqueueIdle and before parking — the
// idle-list analogue of the classic re-check-after-subscribe pattern. The
// happens-before chain through idleMu (a dispatcher's failed claim orders
// after our enqueue, which orders after this check's loads) guarantees that
// work enqueued concurrently is seen either here or by a dispatcher that
// then finds us on the list.
//
//yasmin:noalloc
func (a *App) workVisible(w *workerState, sh *releaseShard) bool {
	// Note: stopping alone must NOT short-circuit to true — the retire check
	// runs before every park, and freeJob wakes all workers when the last
	// live job frees during a stop, so parking here is wake-safe. Returning
	// true on stopping would spin the worker (never parking, never charging)
	// while another worker's in-flight job keeps jobsLive above zero.
	if a.terminating.Load() {
		return true
	}
	sh.mu.Lock()
	_, st := w.stackTop()
	sh.mu.Unlock()
	if st != nil || sh.nready.Load() > 0 {
		return true
	}
	if a.cfg.Mapping != MappingPartitioned {
		for _, osh := range a.shards {
			if osh.nready.Load() > 0 {
				return true
			}
		}
	}
	return false
}

// prepareRun selects the version, acquires the accelerator (possibly parking
// the job on its waitlist with PIP) and binds a fiber. Returns false when
// the job was parked (or dropped) instead of made runnable. Runs with no
// locks held: the selection fast path (no accelerator-bound versions,
// non-user policy) stays lock-free; everything else takes App.mu.
func (a *App) prepareRun(c rt.Ctx, w *workerState, j *job) bool {
	if st := j.state.Load(); st == jobAccelResumed || st == jobPreempted {
		return true // resuming: version and fiber already bound
	}
	if j.fastSel {
		j.version = a.selectVersionFast(c, w, j)
		return a.bindFiber(c, j)
	}
	a.mu.Lock(c)
	vid, blockedOn := a.selectVersion(c, j)
	if blockedOn != NoAccel {
		a.parkOnAccel(c, j, blockedOn)
		a.mu.Unlock(c)
		return false
	}
	j.version = vid
	v := &j.t.versions[vid]
	if v.accel != NoAccel {
		inst := a.poolAvailableForLocked(j, v.accel)
		if inst == NoAccel {
			// The pool filled (or a more urgent waiter holds the admission
			// slot) since selection looked: park like any other contender.
			a.parkOnAccel(c, j, v.accel)
			a.mu.Unlock(c)
			return false
		}
		a.acquireInstanceLocked(c, inst, j)
		j.accel = inst
	}
	a.mu.Unlock(c)
	return a.bindFiber(c, j)
}

// bindFiber attaches a free execution context to a fresh job — lock-free
// (Treiber pool). Returns false when the pool is exhausted, which is
// structurally impossible (pool >= workers + jobs); dropped defensively.
func (a *App) bindFiber(c rt.Ctx, j *job) bool {
	f := a.allocFib()
	if f == nil {
		a.overruns.Add(1)
		a.freeJob(c, j)
		return false
	}
	f.job = j
	j.fib = f
	if !j.started {
		j.started = true
		j.start = c.Now()
	}
	return true
}

// completeJob performs completion bookkeeping: accelerator release,
// successor activation, recording, energy accounting, pool recycling.
// Called with no locks held. Isolated jobs (no graph edges, no accelerator)
// take the lock-free fast path; everything else takes App.mu.
func (a *App) completeJob(c rt.Ctx, w *workerState, j *job) {
	if !j.fnDone || j.state.Load() != jobRunning || (j.fib != nil && j.fib.job != j) {
		panic(fmt.Sprintf("completeJob: job %q fnDone=%v state=%d fib-job-match=%v worker=%d/%d",
			j.name, j.fnDone, j.state.Load(), j.fib == nil || j.fib.job == j, j.worker.Load(), w.idx))
	}
	if j.fastPath && j.accel == NoAccel && j.nested == NoAccel {
		a.completeJobFast(c, w, j)
		return
	}
	now := c.Now()
	costs := a.env.Costs()
	a.recordTaskError(j.err)
	a.mu.Lock(c)
	heldInst := j.accel
	accelName := ""
	if heldInst != NoAccel {
		accelName = a.accels[heldInst].name
	}
	// Release held accelerators and reschedule their waiters. A nested
	// instance (AccelSectionOn) is normally released by the section itself;
	// an error return from inside the section must not leak it.
	if j.nested != NoAccel {
		inst := j.nested
		j.nested = NoAccel
		a.releaseInstanceLocked(c, inst, j)
	}
	if j.accel != NoAccel {
		a.releaseAccel(c, j)
	}
	j.effPrio.Store(j.basePrio)
	// Activate successors whose inputs are all present.
	moreWork := false
	for _, e := range j.t.outEdges {
		if !e.pushStamp(j.stamp) {
			a.overruns.Add(1)
			continue
		}
		dst := &a.tasks[e.dst]
		// Periodic/sporadic roots are released by the scheduler (or
		// TaskActivate); a token arriving on their feedback edge only
		// enables the next timed release. Draining successors get no new
		// activations: their in-flight jobs finish, nothing more.
		if !dst.root && dst.state == taskRunning && a.allInputsReady(dst) {
			stamp := a.consumeInputs(dst)
			c.Charge(costs.QueueOpBase)
			if a.releaseJobApp(c, dst, now, stamp) != nil {
				moreWork = true
			}
		}
	}
	a.recordCompletion(j, w, now, accelName,
		len(j.t.inEdges) > 0 && len(j.t.outEdges) == 0)
	a.accountEnergy(j, heldInst)
	// Recycle fiber and job.
	if f := j.fib; f != nil {
		j.fib = nil
		f.job = nil
		a.pushFreeFib(f)
	}
	a.freeJobLocked(c, j)
	a.mu.Unlock(c)
	if moreWork {
		a.dispatch(c)
	}
}

// completeJobFast retires an isolated job without App.mu: recording, energy
// accounting and pool recycling all run on lock-free or leaf-locked
// structures. Eligibility (fastPath) is derived at release time: the task
// has no in- or out-edges, so no successor activation and no graph record.
func (a *App) completeJobFast(c rt.Ctx, w *workerState, j *job) {
	now := c.Now()
	a.recordTaskError(j.err)
	j.effPrio.Store(j.basePrio)
	a.recordCompletion(j, w, now, "", false)
	a.accountEnergy(j, NoAccel)
	if f := j.fib; f != nil {
		j.fib = nil
		f.job = nil
		a.pushFreeFib(f)
	}
	a.freeJob(c, j)
}

// recordCompletion emits the job record (and, when sink is set, the
// end-to-end graph record). Safe with or without App.mu: the recorder has
// its own leaf lock, and sink is the caller's fact — the slow path derives
// it from the adjacency lists it already holds App.mu for, the fast path is
// structurally edge-free. recordCompletion must not touch the lists itself:
// reconfiguration commits rebuild them while lock-free completions run.
func (a *App) recordCompletion(j *job, w *workerState, now time.Duration, accelName string, sink bool) {
	rec := trace.JobRecord{
		Task:     j.name,
		TaskID:   int(j.t.id),
		Job:      int64(j.taskSeq),
		Version:  int(j.version),
		Core:     w.core,
		Accel:    accelName,
		Release:  j.release,
		Start:    j.start,
		Finish:   now,
		Deadline: j.absDL,
		Missed:   now > j.absDL,
		Preempts: j.preempts,
	}
	a.rec.Record(rec)
	// Sink nodes additionally record the end-to-end graph metric.
	if sink {
		graphDL := j.stamp + j.t.effDeadline
		a.rec.Record(trace.JobRecord{
			Task:     "graph:" + j.name,
			TaskID:   int(j.t.id),
			Job:      int64(j.taskSeq),
			Version:  int(j.version),
			Core:     w.core,
			Release:  j.stamp,
			Start:    j.start,
			Finish:   now,
			Deadline: graphDL,
			Missed:   now > graphDL,
			Preempts: j.preempts,
		})
	}
}

// allInputsReady reports whether every input edge of t has a pending token.
// Caller holds App.mu.
func (a *App) allInputsReady(t *task) bool {
	for _, e := range t.inEdges {
		if e.count == 0 {
			return false
		}
	}
	return len(t.inEdges) > 0
}

// consumeInputs pops one token per input edge and returns the newest stamp
// (the graph-instance root release). Caller holds App.mu.
func (a *App) consumeInputs(t *task) time.Duration {
	var stamp time.Duration
	for _, e := range t.inEdges {
		if s, ok := e.popStamp(); ok && s > stamp {
			stamp = s
		}
	}
	return stamp
}

// accountEnergy drains the battery / meter for the finished job. accel is
// the instance the job held while executing (already released by the
// caller, so it is passed explicitly).
func (a *App) accountEnergy(j *job, accel HID) {
	if a.battery == nil && a.meter == nil {
		return
	}
	var powerMW float64 = 1000
	if pl := a.env.Platform(); pl != nil {
		w := a.workers[j.worker.Load()]
		if w != nil && w.core >= 0 && w.core < len(pl.Cores) {
			powerMW = pl.Cores[w.core].PowerActive
		}
		if accel != NoAccel {
			ai := a.accels[accel].platIdx
			if ai >= 0 && ai < len(pl.Accels) {
				powerMW += pl.Accels[ai].PowerActive
			}
		}
	}
	name := j.name
	if a.meter != nil {
		a.meter.Add(name, powerMW, j.computed)
	} else if a.battery != nil {
		a.battery.Drain(powerMW, j.computed)
	}
	// Explicit per-version budgets drain in addition, if declared.
	if a.battery != nil {
		if b := j.t.versions[j.version].props.EnergyBudget; b > 0 {
			a.battery.DrainMJ(b)
		}
	}
}

// fiber is a preallocated execution context for one job at a time — the
// analogue of the paper's swapcontext stacks. The fiber thread parks until a
// worker hands it a job, runs the selected version function, then notifies
// the worker. Fibers recycle through the same lock-free Treiber freelist
// scheme as jobs.
type fiber struct {
	idx      int
	app      *App
	th       rt.Thread
	job      *job
	nextFree atomic.Int32
	// ectx is the reusable execution context handed to version functions:
	// one fiber runs one job at a time, so reusing it keeps the dispatch
	// path allocation-free even though the pointer escapes into user code.
	ectx ExecCtx
}

// pushFreeFib returns a fiber to the lock-free pool freelist.
//
//yasmin:noalloc
func (a *App) pushFreeFib(f *fiber) {
	idx := uint64(uint32(f.idx + 1))
	for {
		h := a.freeFibHead.Load()
		f.nextFree.Store(int32(uint32(h)) - 1)
		nh := (h>>32+1)<<32 | idx
		if a.freeFibHead.CompareAndSwap(h, nh) {
			return
		}
	}
}

// allocFib pops a free fiber lock-free; nil when exhausted (structurally
// impossible: the pool is sized workers + jobs).
//
//yasmin:noalloc
func (a *App) allocFib() *fiber {
	for {
		h := a.freeFibHead.Load()
		idx := int(int32(uint32(h))) - 1
		if idx < 0 {
			return nil
		}
		f := a.fibers[idx]
		next := uint64(uint32(f.nextFree.Load() + 1))
		nh := (h>>32+1)<<32 | next
		if a.freeFibHead.CompareAndSwap(h, nh) {
			return f
		}
	}
}

// loop is the fiber thread body.
func (f *fiber) loop(c rt.Ctx) {
	a := f.app
	defer a.threadExit()
	for {
		if intr := c.Park(); intr || a.terminating.Load() {
			if a.terminating.Load() {
				return
			}
			continue
		}
		// Plain reads: the dispatching worker wrote job/state/pendingCharge
		// before its Unpark, which orders the handoff.
		j := f.job
		if j == nil {
			continue // spurious wake
		}
		if j.state.Load() != jobRunning || j.fib != f {
			panic(fmt.Sprintf("fiber %d woke with job %q state=%d fib-match=%v worker=%d",
				f.idx, j.name, j.state.Load(), j.fib == f, j.worker.Load()))
		}
		// The context-switch (and any queue-op) cost rides lazily on the
		// job's first Compute instead of paying a timing event here.
		c.ChargeLazy(j.pendingCharge)
		j.pendingCharge = 0
		v := &j.t.versions[j.version]
		f.ectx = ExecCtx{app: a, j: j, c: c, f: f}
		j.err = v.fn(&f.ectx, v.args)
		// Notify the owning worker under its shard lock.
		w := a.workers[j.worker.Load()]
		sh := a.shards[w.idx]
		sh.mu.Lock()
		j.fnDone = true
		w.wakeReason = wakeCompleted
		w.wakeJob = j
		sh.mu.Unlock()
		w.th.Unpark()
		// Park until reused; the completion path recycles f lock-free.
	}
}
