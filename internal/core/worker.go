package core

import (
	"fmt"
	"time"

	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/trace"
)

// workerWake tells a worker why its fiber woke it.
type workerWake int

const (
	wakeNone workerWake = iota
	wakeCompleted
	wakeSuspended // preemption signal accepted: job parked on the fiber
	wakeAsyncFree // job entered an asynchronous accelerator section
)

// workerState is one virtual CPU (Figure 1): a thread pinned to a shielded
// core executing jobs, with a stack of preempted jobs.
type workerState struct {
	idx        int
	core       int
	th         rt.Thread
	idle       bool
	current    *job
	preempted  []*job // LIFO of suspended jobs (incl. async-resumed ones)
	wakeReason workerWake
	wakeJob    *job // the job the notification refers to (debug invariant)
}

// stackTop returns the most urgent resumable job on the worker's stack
// (the stack is LIFO but async-resumed jobs make priorities non-monotonic,
// so scan). Only jobs not still inside their accelerator section count.
func (w *workerState) stackTop() (int, *job) {
	bestIdx := -1
	var best *job
	for i, j := range w.preempted {
		if j.state == jobAccelAsync || j.state == jobAccelWait {
			// Still on the accelerator, or parked mid-job on a busy pool's
			// waiter list (AccelSectionOn); not resumable until the section
			// ends / the instance is granted.
			continue
		}
		if best == nil || j.before(best) {
			best, bestIdx = j, i
		}
	}
	return bestIdx, best
}

func (w *workerState) removeStack(i int) {
	w.preempted = append(w.preempted[:i], w.preempted[i+1:]...)
}

// workerLoop is the online-scheduling worker body: pick the most urgent of
// (queue head, preempted stack), run or resume it, handle
// completion/suspension, park when idle.
func (a *App) workerLoop(c rt.Ctx, w *workerState) {
	defer a.threadExit()
	costs := a.env.Costs()
	for {
		if a.terminating.Load() {
			return
		}
		a.mu.Lock(c)
		j, fromStack, stackIdx := a.nextForWorker(c, w)
		if j == nil {
			// A worker may only retire when the whole system is drained:
			// another worker's running job can still release DAG
			// successors that need executing.
			if a.stopping.Load() && a.drainedLocked() {
				a.wakeIdleWorkersLocked(w)
				a.mu.Unlock(c)
				return
			}
			w.idle = true
			a.mu.Unlock(c)
			// Idle wait: a real kernel-level wait under WaitSleep; WaitSpin
			// wakes instantly at the cost of burning the core (the paper's
			// predictability/energy trade-off, Section 3.5).
			var intr bool
			if a.cfg.Wait == WaitSpin {
				intr = c.Park()
			} else {
				intr = c.ParkIdle()
			}
			if intr && a.terminating.Load() {
				return
			}
			continue
		}
		// Fresh jobs need version selection and accelerator acquisition;
		// both can park the job on an accelerator waitlist.
		if !fromStack {
			if !a.prepareRun(c, w, j) {
				a.mu.Unlock(c)
				continue
			}
		} else {
			w.removeStack(stackIdx)
		}
		j.worker = w.idx
		j.state = jobRunning
		w.current = j
		fib := j.fib
		a.mu.Unlock(c)

		// Context switch to the job's fiber (swapcontext analogue).
		c.Charge(costs.ContextSwitch)
		fib.th.SetCore(w.core)
		fib.th.Unpark()
		// Wait for the fiber's notification; tolerate spurious unparks
		// (they would otherwise corrupt the completion handshake).
		for {
			intr := c.Park()
			if intr && a.terminating.Load() {
				return
			}
			a.mu.Lock(c)
			if w.wakeReason != wakeNone || a.terminating.Load() {
				break
			}
			a.mu.Unlock(c)
		}
		if a.terminating.Load() && w.wakeReason == wakeNone {
			a.mu.Unlock(c)
			return
		}
		reason := w.wakeReason
		w.wakeReason = wakeNone
		if w.wakeJob != j {
			wj := "<nil>"
			if w.wakeJob != nil {
				wj = fmt.Sprintf("%s(seq %d, state %d, fnDone %v)", w.wakeJob.t.d.Name, w.wakeJob.seq, w.wakeJob.state, w.wakeJob.fnDone)
			}
			panic(fmt.Sprintf("worker %d: notification for %s but dispatched %s(seq %d) reason=%d",
				w.idx, wj, j.t.d.Name, j.seq, reason))
		}
		w.wakeJob = nil
		switch reason {
		case wakeCompleted:
			a.completeJob(c, w, j)
		case wakeSuspended:
			j.state = jobPreempted
			j.preempts++
			w.preempted = append(w.preempted, j)
		case wakeAsyncFree:
			// Job computes on the accelerator; the worker is free. The
			// fiber re-attaches through the preempted stack when done.
			w.preempted = append(w.preempted, j)
		}
		w.current = nil
		if a.stopping.Load() {
			// Wake parked peers so they can re-evaluate the drain state.
			a.wakeIdleWorkersLocked(w)
		}
		a.mu.Unlock(c)
	}
}

// wakeIdleWorkersLocked unparks all idle workers except self. Caller holds
// the lock.
func (a *App) wakeIdleWorkersLocked(self *workerState) {
	for _, ow := range a.workers {
		if ow != self && ow.idle && ow.th != nil {
			ow.th.Unpark()
		}
	}
}

// nextForWorker picks the next job: the queue head or the most urgent
// suspended job, whichever is more urgent. Caller holds the lock.
func (a *App) nextForWorker(c rt.Ctx, w *workerState) (j *job, fromStack bool, stackIdx int) {
	q := a.queueForWorker(w)
	head := q.peek()
	si, st := w.stackTop()
	switch {
	case head == nil && st == nil:
		return nil, false, -1
	case head == nil:
		return st, true, si
	case st == nil || head.before(st):
		a.chargeQueueOp(c, q)
		return q.pop(), false, -1
	default:
		return st, true, si
	}
}

// prepareRun selects the version, acquires the accelerator (possibly parking
// the job on its waitlist with PIP) and binds a fiber. Returns false when
// the job was parked instead of made runnable. Caller holds the lock.
func (a *App) prepareRun(c rt.Ctx, w *workerState, j *job) bool {
	if j.state == jobAccelResumed || j.state == jobPreempted {
		return true // resuming: version and fiber already bound
	}
	vid, blockedOn := a.selectVersion(c, j)
	if blockedOn != NoAccel {
		a.parkOnAccel(c, j, blockedOn)
		return false
	}
	j.version = vid
	v := &j.t.versions[vid]
	if v.accel != NoAccel {
		inst := a.poolAvailableForLocked(j, v.accel)
		if inst == NoAccel {
			// The pool filled (or a more urgent waiter holds the admission
			// slot) since selection looked: park like any other contender.
			a.parkOnAccel(c, j, v.accel)
			return false
		}
		a.acquireInstanceLocked(c, inst, j)
		j.accel = inst
	}
	// Bind a fiber.
	n := len(a.freeFib)
	if n == 0 {
		// Cannot happen: fiber pool >= workers + jobs. Drop defensively.
		a.overruns.Add(1)
		a.freeJob(c, j)
		return false
	}
	fi := a.freeFib[n-1]
	a.freeFib = a.freeFib[:n-1]
	f := a.fibers[fi]
	f.job = j
	j.fib = f
	if !j.started {
		j.started = true
		j.start = c.Now()
	}
	return true
}

// completeJob performs completion bookkeeping: accelerator release,
// successor activation, recording, energy accounting, pool recycling.
// Caller holds the lock.
func (a *App) completeJob(c rt.Ctx, w *workerState, j *job) {
	if !j.fnDone || j.state != jobRunning || w.current != j || (j.fib != nil && j.fib.job != j) {
		panic(fmt.Sprintf("completeJob: job %q fnDone=%v state=%d current-match=%v fib-job-match=%v worker=%d/%d",
			j.t.d.Name, j.fnDone, j.state, w.current == j, j.fib == nil || j.fib.job == j, j.worker, w.idx))
	}
	now := c.Now()
	costs := a.env.Costs()
	a.recordTaskError(j.err)
	heldInst := j.accel
	accelName := ""
	if heldInst != NoAccel {
		accelName = a.accels[heldInst].name
	}
	// Release held accelerators and reschedule their waiters. A nested
	// instance (AccelSectionOn) is normally released by the section itself;
	// an error return from inside the section must not leak it.
	if j.nested != NoAccel {
		inst := j.nested
		j.nested = NoAccel
		a.releaseInstanceLocked(c, inst, j)
	}
	if j.accel != NoAccel {
		a.releaseAccel(c, j)
	}
	j.effPrio = j.basePrio
	// Activate successors whose inputs are all present.
	moreWork := false
	for _, e := range j.t.outEdges {
		if !e.pushStamp(j.stamp) {
			a.overruns.Add(1)
			continue
		}
		dst := &a.tasks[e.dst]
		// Periodic/sporadic roots are released by the scheduler (or
		// TaskActivate); a token arriving on their feedback edge only
		// enables the next timed release. Draining successors get no new
		// activations: their in-flight jobs finish, nothing more.
		if !dst.root && dst.state == taskRunning && a.allInputsReady(dst) {
			stamp := a.consumeInputs(dst)
			c.Charge(costs.QueueOpBase)
			if a.releaseJob(c, dst, now, stamp) != nil {
				moreWork = true
			}
		}
	}
	// Record.
	missed := now > j.absDL
	rec := trace.JobRecord{
		Task:     j.t.d.Name,
		TaskID:   int(j.t.id),
		Job:      int64(j.taskSeq),
		Version:  int(j.version),
		Core:     w.core,
		Accel:    accelName,
		Release:  j.release,
		Start:    j.start,
		Finish:   now,
		Deadline: j.absDL,
		Missed:   missed,
		Preempts: j.preempts,
	}
	a.rec.Record(rec)
	// Sink nodes additionally record the end-to-end graph metric.
	if len(j.t.inEdges) > 0 && len(j.t.outEdges) == 0 {
		graphDL := j.stamp + j.t.effDeadline
		a.rec.Record(trace.JobRecord{
			Task:     "graph:" + j.t.d.Name,
			TaskID:   int(j.t.id),
			Job:      int64(j.taskSeq),
			Version:  int(j.version),
			Core:     w.core,
			Release:  j.stamp,
			Start:    j.start,
			Finish:   now,
			Deadline: graphDL,
			Missed:   now > graphDL,
			Preempts: j.preempts,
		})
	}
	// Energy accounting.
	a.accountEnergy(j, heldInst)
	// Recycle fiber and job.
	if j.fib != nil {
		j.fib.job = nil
		a.freeFib = append(a.freeFib, j.fib.idx)
	}
	a.freeJob(c, j)
	if moreWork {
		a.dispatch(c)
	}
}

// allInputsReady reports whether every input edge of t has a pending token.
// Caller holds the lock.
func (a *App) allInputsReady(t *task) bool {
	for _, e := range t.inEdges {
		if e.count == 0 {
			return false
		}
	}
	return len(t.inEdges) > 0
}

// consumeInputs pops one token per input edge and returns the newest stamp
// (the graph-instance root release). Caller holds the lock.
func (a *App) consumeInputs(t *task) time.Duration {
	var stamp time.Duration
	for _, e := range t.inEdges {
		if s, ok := e.popStamp(); ok && s > stamp {
			stamp = s
		}
	}
	return stamp
}

// accountEnergy drains the battery / meter for the finished job. accel is
// the instance the job held while executing (already released by the
// caller, so it is passed explicitly).
func (a *App) accountEnergy(j *job, accel HID) {
	if a.battery == nil && a.meter == nil {
		return
	}
	var powerMW float64 = 1000
	if pl := a.env.Platform(); pl != nil {
		w := a.workers[j.worker]
		if w != nil && w.core >= 0 && w.core < len(pl.Cores) {
			powerMW = pl.Cores[w.core].PowerActive
		}
		if accel != NoAccel {
			ai := a.accels[accel].platIdx
			if ai >= 0 && ai < len(pl.Accels) {
				powerMW += pl.Accels[ai].PowerActive
			}
		}
	}
	name := j.t.d.Name
	if a.meter != nil {
		a.meter.Add(name, powerMW, j.computed)
	} else if a.battery != nil {
		a.battery.Drain(powerMW, j.computed)
	}
	// Explicit per-version budgets drain in addition, if declared.
	if a.battery != nil {
		if b := j.t.versions[j.version].props.EnergyBudget; b > 0 {
			a.battery.DrainMJ(b)
		}
	}
}

// fiber is a preallocated execution context for one job at a time — the
// analogue of the paper's swapcontext stacks. The fiber thread parks until a
// worker hands it a job, runs the selected version function, then notifies
// the worker.
type fiber struct {
	idx int
	app *App
	th  rt.Thread
	job *job
}

// loop is the fiber thread body.
func (f *fiber) loop(c rt.Ctx) {
	a := f.app
	defer a.threadExit()
	for {
		if intr := c.Park(); intr || a.terminating.Load() {
			if a.terminating.Load() {
				return
			}
			continue
		}
		a.mu.Lock(c)
		j := f.job
		a.mu.Unlock(c)
		if j == nil {
			continue // spurious wake
		}
		if j.state != jobRunning || j.fib != f {
			panic(fmt.Sprintf("fiber %d woke with job %q state=%d fib-match=%v worker=%d",
				f.idx, j.t.d.Name, j.state, j.fib == f, j.worker))
		}
		v := &j.t.versions[j.version]
		x := &ExecCtx{app: a, j: j, c: c, f: f}
		j.err = v.fn(x, v.args)
		// Notify the worker that owns the job.
		a.mu.Lock(c)
		j.fnDone = true
		w := a.workers[j.worker]
		w.wakeReason = wakeCompleted
		w.wakeJob = j
		a.mu.Unlock(c)
		w.th.Unpark()
		// Park until reused; the worker recycles f under the lock.
	}
}
