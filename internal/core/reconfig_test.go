package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/yasmin-rt/yasmin/internal/rt"
)

// declSpin declares a single-version periodic task with a WCET the admission
// test can see.
func declSpin(t *testing.T, app *App, name string, period, wcet time.Duration) TID {
	t.Helper()
	tid, err := app.TaskDecl(TData{Name: name, Period: period})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.VersionDecl(tid, spin(wcet), nil, VSelect{WCET: wcet}); err != nil {
		t.Fatal(err)
	}
	return tid
}

func TestReconfigureAddTaskLive(t *testing.T) {
	r := newRig(t, Config{Workers: 2, Priority: PriorityEDF}, nil)
	declSpin(t, r.app, "base", ms(10), ms(1))
	r.runMain(t, ms(200), func(c rt.Ctx) {
		c.SleepUntil(ms(100))
		err := r.app.Reconfigure(c, func(tx *Reconfig) error {
			id, err := tx.AddTask(TData{Name: "late", Period: ms(10)})
			if err != nil {
				return err
			}
			_, err = tx.AddVersion(id, spin(ms(1)), nil, VSelect{WCET: ms(1)})
			return err
		})
		if err != nil {
			t.Errorf("Reconfigure: %v", err)
		}
	})
	if got := r.app.Epoch(); got != 1 {
		t.Errorf("epoch = %d, want 1", got)
	}
	rec := r.app.Recorder()
	base := rec.Task("base")
	if base == nil || base.Jobs < 19 {
		t.Fatalf("base ran %v jobs, want ~20 (uninterrupted)", base)
	}
	late := rec.Task("late")
	if late == nil || late.Jobs < 9 {
		t.Fatalf("late ran %v jobs, want ~10 (admitted at 100ms)", late)
	}
	recs := rec.Reconfigs()
	if len(recs) != 1 || len(recs[0].Admitted) != 1 || recs[0].Admitted[0] != "late" {
		t.Errorf("reconfig records = %+v", recs)
	}
	if recs[0].Pause <= 0 {
		t.Errorf("pause = %v, want > 0 (barrier charged)", recs[0].Pause)
	}
}

func TestReconfigureRemoveTaskDrains(t *testing.T) {
	r := newRig(t, Config{Workers: 1, Priority: PriorityEDF}, nil)
	declSpin(t, r.app, "keep", ms(10), ms(1))
	victim := declSpin(t, r.app, "victim", ms(10), ms(4))
	r.runMain(t, ms(200), func(c rt.Ctx) {
		c.SleepUntil(ms(102)) // mid-period: a victim job released at 100ms is in flight
		if err := r.app.Reconfigure(c, func(tx *Reconfig) error {
			return tx.RemoveTask(victim)
		}); err != nil {
			t.Errorf("Reconfigure: %v", err)
		}
	})
	rec := r.app.Recorder()
	vic := rec.Task("victim")
	if vic == nil {
		t.Fatal("victim never ran")
	}
	// Jobs released at 0..100ms all complete (drain, not kill): 11 jobs.
	if vic.Jobs != 11 {
		t.Errorf("victim jobs = %d, want 11 (drained, not killed; none released after removal)", vic.Jobs)
	}
	keep := rec.Task("keep")
	if keep == nil || keep.Jobs < 19 {
		t.Errorf("keep = %+v, want ~20 jobs (uninterrupted)", keep)
	}
	retires := rec.Retires()
	if len(retires) != 1 || retires[0].Task != "victim" || retires[0].Epoch != 1 {
		t.Errorf("retires = %+v", retires)
	}
}

func TestReconfigureAdmissionRejectsTyped(t *testing.T) {
	r := newRig(t, Config{Workers: 1, Priority: PriorityEDF}, nil)
	declSpin(t, r.app, "base", ms(10), ms(6))
	r.runMain(t, ms(100), func(c rt.Ctx) {
		c.SleepUntil(ms(50))
		err := r.app.Reconfigure(c, func(tx *Reconfig) error {
			id, err := tx.AddTask(TData{Name: "intruder", Period: ms(10)})
			if err != nil {
				return err
			}
			_, err = tx.AddVersion(id, spin(ms(9)), nil, VSelect{WCET: ms(9)})
			return err
		})
		if !errors.Is(err, ErrNotSchedulable) {
			t.Errorf("err = %v, want ErrNotSchedulable", err)
		}
		var nse *NotSchedulableError
		if !errors.As(err, &nse) || nse.Task != "intruder" {
			t.Errorf("offender = %+v, want intruder", nse)
		}
	})
	if got := r.app.Epoch(); got != 0 {
		t.Errorf("epoch = %d, want 0 (rejected transaction committed nothing)", got)
	}
	rec := r.app.Recorder()
	if it := rec.Task("intruder"); it != nil {
		t.Errorf("intruder ran %d jobs after rejection", it.Jobs)
	}
	if base := rec.Task("base"); base == nil || base.Jobs < 9 {
		t.Errorf("base = %+v, want ~10 jobs (app continues unchanged)", base)
	}
	if base := rec.Task("base"); base != nil && base.Misses != 0 {
		t.Errorf("base missed %d deadlines", base.Misses)
	}
}

func TestReconfigureRetune(t *testing.T) {
	r := newRig(t, Config{Workers: 1, Priority: PriorityEDF}, nil)
	tid := declSpin(t, r.app, "tick", ms(20), ms(1))
	r.runMain(t, ms(200), func(c rt.Ctx) {
		c.SleepUntil(ms(100))
		if err := r.app.Reconfigure(c, func(tx *Reconfig) error {
			return tx.Retune(tid, TData{Name: "tick", Period: ms(5)})
		}); err != nil {
			t.Errorf("Retune: %v", err)
		}
	})
	rec := r.app.Recorder().Task("tick")
	// ~5 jobs in the first 100ms (20ms period), ~20 in the second (5ms).
	if rec == nil || rec.Jobs < 23 || rec.Jobs > 27 {
		t.Errorf("tick jobs = %+v, want ~25 after retune", rec)
	}
	recs := r.app.Recorder().Reconfigs()
	if len(recs) != 1 || len(recs[0].Retuned) != 1 || recs[0].Retuned[0] != "tick" {
		t.Errorf("reconfig records = %+v", recs)
	}
}

func TestReconfigureTopicStateSurvivesEpoch(t *testing.T) {
	r := newRig(t, Config{Workers: 2, Priority: PriorityEDF}, nil)
	top, err := r.app.TopicDecl("stream", TopicOpts{Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	pub, _ := r.app.TaskDecl(TData{Name: "pub", Period: ms(10)})
	r.app.VersionDecl(pub, func(x *ExecCtx, _ any) error {
		return x.Publish(top, int(x.JobIndex()))
	}, nil, VSelect{WCET: ms(1)})
	r.app.TopicPub(pub, top)
	subT, _ := r.app.TaskDecl(TData{Name: "sub", Period: ms(30)})
	r.app.VersionDecl(subT, func(x *ExecCtx, _ any) error {
		for {
			v, ok, err := x.Take(top)
			if err != nil || !ok {
				return err
			}
			got = append(got, v.(int))
		}
	}, nil, VSelect{WCET: ms(1)})
	r.app.TopicSub(subT, top)
	declSpin(t, r.app, "bystander", ms(10), ms(1))

	r.runMain(t, ms(300), func(c rt.Ctx) {
		c.SleepUntil(ms(95)) // several entries published since the last 30ms take
		if err := r.app.Reconfigure(c, func(tx *Reconfig) error {
			return tx.RemoveTaskByName("bystander")
		}); err != nil {
			t.Errorf("Reconfigure: %v", err)
		}
	})
	// Every published entry must reach the surviving subscriber in FIFO
	// order — the epoch must not reset the shared buffer or the cursor.
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got[%d] = %d; lost or reordered entries across the epoch: %v", i, v, got[:i+1])
		}
	}
	if len(got) < 25 {
		t.Errorf("subscriber consumed %d entries, want ~30", len(got))
	}
}

func TestReconfigureLastSubscriberRetiresUnblocksPublisher(t *testing.T) {
	r := newRig(t, Config{Workers: 2, Priority: PriorityEDF}, nil)
	top, err := r.app.TopicDecl("up", TopicOpts{Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	var okBefore, okAfter, failBefore int
	pub, _ := r.app.TaskDecl(TData{Name: "pub", Period: ms(10)})
	r.app.VersionDecl(pub, func(x *ExecCtx, _ any) error {
		err := x.Publish(top, x.JobIndex())
		switch {
		case err == nil && x.App().Epoch() == 0:
			okBefore++
		case err == nil:
			okAfter++
		case x.App().Epoch() == 0:
			failBefore++
		}
		return nil
	}, nil, VSelect{WCET: ms(1)})
	r.app.TopicPub(pub, top)
	subT, _ := r.app.TaskDecl(TData{Name: "sub", Period: ms(10)})
	r.app.VersionDecl(subT, func(x *ExecCtx, _ any) error {
		for {
			if _, ok, err := x.Take(top); err != nil || !ok {
				return err
			}
		}
	}, nil, VSelect{WCET: ms(1)})
	r.app.TopicSub(subT, top)
	r.runMain(t, ms(300), func(c rt.Ctx) {
		c.SleepUntil(ms(100)) // well past Capacity publishes
		if err := r.app.Reconfigure(c, func(tx *Reconfig) error {
			return tx.RemoveTaskByName("sub")
		}); err != nil {
			t.Errorf("Reconfigure: %v", err)
		}
	})
	// After the sole subscriber retired, its stale cursor must not pin the
	// buffer at "full": the topic reverts to an empty anonymous FIFO, so
	// exactly Capacity more publishes succeed before Reject kicks in (there
	// is no consumer left — a regression would make ALL of them fail).
	if okBefore < 9 || failBefore != 0 {
		t.Errorf("pre-epoch publishes: ok=%d fail=%d, want ~10/0", okBefore, failBefore)
	}
	if okAfter != 4 {
		t.Errorf("post-retire successful publishes = %d, want exactly Capacity=4", okAfter)
	}
	if rec := r.app.Recorder().Task("pub"); rec == nil || rec.Jobs < 29 {
		t.Errorf("pub = %+v, want ~30 uninterrupted jobs", rec)
	}
}

func TestSwitchModePreset(t *testing.T) {
	r := newRig(t, Config{Workers: 1, Priority: PriorityEDF, VersionSelect: SelectMode}, nil)
	tid, _ := r.app.TaskDecl(TData{Name: "dual", Period: ms(10)})
	var ranA, ranB int
	r.app.VersionDecl(tid, func(x *ExecCtx, _ any) error { ranA++; return x.Compute(ms(1)) }, nil,
		VSelect{WCET: ms(1), Modes: 1 << 0})
	r.app.VersionDecl(tid, func(x *ExecCtx, _ any) error { ranB++; return x.Compute(ms(1)) }, nil,
		VSelect{WCET: ms(1), Modes: 1 << 1})
	if err := r.app.InstallMode("normal", ModePreset{Mode: 0}); err != nil {
		t.Fatal(err)
	}
	if err := r.app.InstallMode("secure", ModePreset{Mode: 1}); err != nil {
		t.Fatal(err)
	}
	r.runMain(t, ms(200), func(c rt.Ctx) {
		c.SleepUntil(ms(100))
		if err := r.app.SwitchMode(c, "secure"); err != nil {
			t.Errorf("SwitchMode: %v", err)
		}
		if got := r.app.ModeName(); got != "secure" {
			t.Errorf("ModeName = %q", got)
		}
		if err := r.app.SwitchMode(c, "nope"); err == nil ||
			!strings.Contains(err.Error(), "no mode preset") {
			t.Errorf("unknown mode err = %v", err)
		}
	})
	if ranA < 9 || ranB < 9 {
		t.Errorf("version A ran %d, B ran %d; want ~10 each around the switch", ranA, ranB)
	}
}

func TestReconfigureStoppedApp(t *testing.T) {
	r := newRig(t, Config{Workers: 1, Priority: PriorityEDF}, nil)
	declSpin(t, r.app, "a", ms(10), ms(1))
	var tErr error
	r.env.Spawn("cfg", rt.UnpinnedCore, func(c rt.Ctx) {
		tErr = r.app.Reconfigure(c, func(tx *Reconfig) error {
			id, err := tx.AddTask(TData{Name: "b", Period: ms(20)})
			if err != nil {
				return err
			}
			_, err = tx.AddVersion(id, spin(ms(1)), nil, VSelect{WCET: ms(1)})
			return err
		})
	})
	if err := r.eng.Run(1 << 40); err != nil {
		t.Fatal(err)
	}
	if tErr != nil {
		t.Fatalf("stopped reconfigure: %v", tErr)
	}
	r.runMain(t, ms(100), nil)
	rec := r.app.Recorder()
	if b := rec.Task("b"); b == nil || b.Jobs < 4 {
		t.Errorf("b = %+v, want ~5 jobs (admitted before Start)", b)
	}
}

func TestReconfigureSlotReuseModePingPong(t *testing.T) {
	// MaxTasks just big enough for base + one churn slot: repeated
	// add/remove must recycle slots, not exhaust the static budget.
	r := newRig(t, Config{Workers: 1, Priority: PriorityEDF, MaxTasks: 3}, nil)
	declSpin(t, r.app, "base", ms(10), ms(1))
	r.runMain(t, ms(500), func(c rt.Ctx) {
		for i := 0; i < 8; i++ {
			c.Sleep(ms(25))
			if err := r.app.Reconfigure(c, func(tx *Reconfig) error {
				id, err := tx.AddTask(TData{Name: "churn", Period: ms(10)})
				if err != nil {
					return err
				}
				_, err = tx.AddVersion(id, spin(ms(1)), nil, VSelect{WCET: ms(1)})
				return err
			}); err != nil {
				t.Errorf("add %d: %v", i, err)
				return
			}
			c.Sleep(ms(25))
			if err := r.app.Reconfigure(c, func(tx *Reconfig) error {
				return tx.RemoveTaskByName("churn")
			}); err != nil {
				t.Errorf("remove %d: %v", i, err)
				return
			}
		}
	})
	if got := r.app.Epoch(); got != 16 {
		t.Errorf("epoch = %d, want 16", got)
	}
	if n := r.app.Overruns(); n != 0 {
		t.Errorf("overruns = %d", n)
	}
	if err := r.app.FirstError(); err != nil {
		t.Fatal(err)
	}
}

func TestReconfigureEdgeAndTopicLifecycle(t *testing.T) {
	r := newRig(t, Config{Workers: 2, Priority: PriorityEDF}, nil)
	declSpin(t, r.app, "src", ms(10), ms(1))
	r.runMain(t, ms(300), func(c rt.Ctx) {
		c.SleepUntil(ms(100))
		// Grow a pipeline stage live: src -> sink through a fresh channel.
		err := r.app.Reconfigure(c, func(tx *Reconfig) error {
			ch, err := tx.AddChannel("pipe", 8)
			if err != nil {
				return err
			}
			sink, err := tx.AddTask(TData{Name: "sink"})
			if err != nil {
				return err
			}
			if _, err := tx.AddVersion(sink, spin(ms(1)), nil, VSelect{WCET: ms(1)}); err != nil {
				return err
			}
			src := tx.TaskID("src")
			if src < 0 {
				return errors.New("src not found in merged view")
			}
			return tx.Connect(src, sink, ch)
		})
		if err != nil {
			t.Errorf("grow: %v", err)
			return
		}
		c.SleepUntil(ms(200))
		// Shrink it again: the sink drains, the channel dies with it.
		err = r.app.Reconfigure(c, func(tx *Reconfig) error {
			if err := tx.RemoveTaskByName("sink"); err != nil {
				return err
			}
			src := tx.a.taskIDByName("src")
			sink := tx.a.taskIDByName("sink")
			ch := tx.a.TopicID("pipe")
			if err := tx.Disconnect(src, sink, ch); err != nil {
				return err
			}
			return tx.RemoveTopic(ch)
		})
		if err != nil {
			t.Errorf("shrink: %v", err)
		}
	})
	rec := r.app.Recorder()
	sink := rec.Task("sink")
	if sink == nil || sink.Jobs < 8 {
		t.Fatalf("sink = %+v, want ~10 data-activated jobs", sink)
	}
	if src := rec.Task("src"); src == nil || src.Jobs < 29 {
		t.Errorf("src = %+v, want ~30 jobs across all three epochs", src)
	}
	if err := r.app.FirstError(); err != nil {
		t.Fatal(err)
	}
}
