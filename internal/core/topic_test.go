package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/yasmin-rt/yasmin/internal/rt"
)

func TestTopicDeclValidation(t *testing.T) {
	r := newRig(t, Config{Workers: 1, MaxChannels: 8}, nil)
	app := r.app
	if _, err := app.TopicDecl("", TopicOpts{Capacity: 1}); err == nil {
		t.Error("want error for unnamed topic")
	}
	if _, err := app.TopicDecl("t", TopicOpts{Capacity: 0}); err == nil {
		t.Error("want error for zero capacity")
	}
	if _, err := app.TopicDecl("t", TopicOpts{Capacity: 1, Policy: OverflowPolicy(9)}); err == nil {
		t.Error("want error for unknown policy")
	}
	tid, err := app.TaskDecl(TData{Name: "a", Period: ms(10)})
	if err != nil {
		t.Fatal(err)
	}
	tp, err := app.TopicDecl("t", TopicOpts{Capacity: 4, Policy: Latest})
	if err != nil {
		t.Fatal(err)
	}
	if got := app.TopicID("t"); got != tp {
		t.Errorf("TopicID = %d, want %d", got, tp)
	}
	if got := app.TopicID("nope"); got != -1 {
		t.Errorf("TopicID(unknown) = %d, want -1", got)
	}
	if err := app.TopicPub(tid, tp); err != nil {
		t.Fatal(err)
	}
	if err := app.TopicPub(tid, tp); err == nil {
		t.Error("want error for duplicate publisher")
	}
	if err := app.TopicSub(tid, tp); err != nil {
		t.Fatal(err)
	}
	if err := app.TopicSub(tid, tp); err == nil {
		t.Error("want error for duplicate subscriber")
	}
	if err := app.TopicPub(TID(77), tp); err == nil {
		t.Error("want error for unknown task")
	}
	if err := app.TopicSub(tid, CID(55)); err == nil {
		t.Error("want error for unknown topic")
	}
	// Channels and topics share the CID space and the MaxChannels budget.
	ch, err := app.ChannelDecl("legacy", 2)
	if err != nil {
		t.Fatal(err)
	}
	if app.NumChannels() != 2 || int(ch) != 1 {
		t.Errorf("NumChannels = %d (ch=%d), want 2 (ch=1)", app.NumChannels(), ch)
	}
	// A pure-precedence (capacity 0) channel cannot be subscribed to.
	prec, err := app.ChannelDecl("prec", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.TopicSub(tid, prec); err == nil {
		t.Error("want error subscribing to a capacity-0 channel")
	}
	if _, err := ParsePolicy("drop_oldest"); err != nil {
		t.Error(err)
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("want error for bogus policy string")
	}
}

// TestTopicRejectNoLoss: two publishers fan into one subscriber through a
// Reject topic in deterministic virtual time. Every successful publish must
// be taken exactly once, in per-publisher FIFO order.
func TestTopicRejectNoLoss(t *testing.T) {
	r := newRig(t, Config{Workers: 2, Priority: PriorityRM}, nil)
	app := r.app
	top, err := app.TopicDecl("bus", TopicOpts{Capacity: 8, Policy: Reject})
	if err != nil {
		t.Fatal(err)
	}
	published := make([]int64, 2)
	mkPub := func(idx int, period time.Duration) TID {
		tid, _ := app.TaskDecl(TData{Name: fmt.Sprintf("pub%d", idx), Period: period})
		app.VersionDecl(tid, func(x *ExecCtx, _ any) error {
			if x.Now() >= ms(400) {
				return nil // quiesce so the subscriber drains everything
			}
			published[idx]++
			return x.Publish(top, [2]int64{int64(idx), published[idx]})
		}, nil, VSelect{})
		if err := app.TopicPub(tid, top); err != nil {
			t.Fatal(err)
		}
		return tid
	}
	mkPub(0, ms(5))
	mkPub(1, ms(10))

	lastSeen := make([]int64, 2)
	var taken int64
	sub, _ := app.TaskDecl(TData{Name: "sub", Period: ms(10)})
	app.VersionDecl(sub, func(x *ExecCtx, _ any) error {
		for {
			v, ok, err := x.Take(top)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			e := v.([2]int64)
			if e[1] != lastSeen[e[0]]+1 {
				return fmt.Errorf("pub%d: seq %d after %d", e[0], e[1], lastSeen[e[0]])
			}
			lastSeen[e[0]] = e[1]
			taken++
		}
	}, nil, VSelect{})
	if err := app.TopicSub(sub, top); err != nil {
		t.Fatal(err)
	}

	r.runMain(t, ms(500), nil)
	if err := app.FirstError(); err != nil {
		t.Fatal(err)
	}
	want := published[0] + published[1]
	if taken != want || want == 0 {
		t.Errorf("taken %d of %d published", taken, want)
	}
	if app.TopicDropped(top) != 0 {
		t.Errorf("Reject topic dropped %d entries", app.TopicDropped(top))
	}
}

// TestTopicLatestConflation: a fast publisher and a slow subscriber on a
// Latest topic. Every take returns the newest published value; intermediate
// values conflate away.
func TestTopicLatestConflation(t *testing.T) {
	r := newRig(t, Config{Workers: 2, Priority: PriorityRM}, nil)
	app := r.app
	top, err := app.TopicDecl("sensor", TopicOpts{Capacity: 1, Policy: Latest})
	if err != nil {
		t.Fatal(err)
	}
	var seq int64
	pub, _ := app.TaskDecl(TData{Name: "pub", Period: ms(1)})
	app.VersionDecl(pub, func(x *ExecCtx, _ any) error {
		seq++
		return x.Publish(top, seq)
	}, nil, VSelect{})
	if err := app.TopicPub(pub, top); err != nil {
		t.Fatal(err)
	}
	var got []int64
	sub, _ := app.TaskDecl(TData{Name: "sub", Period: ms(50)})
	app.VersionDecl(sub, func(x *ExecCtx, _ any) error {
		v, ok, err := x.Take(top)
		if err != nil || !ok {
			return err
		}
		got = append(got, v.(int64))
		// Conflation: nothing older may remain pending after a take.
		if n, err := x.ChannelLen(top); err != nil || n != 0 {
			return fmt.Errorf("backlog %d after conflating take (err %v)", n, err)
		}
		return nil
	}, nil, VSelect{})
	if err := app.TopicSub(sub, top); err != nil {
		t.Fatal(err)
	}

	r.runMain(t, ms(500), nil)
	if err := app.FirstError(); err != nil {
		t.Fatal(err)
	}
	if len(got) < 5 {
		t.Fatalf("only %d takes", len(got))
	}
	gaps := 0
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("takes not increasing: %v", got)
		}
		if got[i] > got[i-1]+1 {
			gaps++
		}
	}
	if gaps == 0 {
		t.Error("50:1 rate mismatch produced no conflation gaps")
	}
	if app.TopicDropped(top) == 0 {
		t.Error("no overwrites recorded on a saturated Latest topic")
	}
}

// TestTopicDropOldestBoundedLag: a slow subscriber on a DropOldest topic
// loses the oldest entries but always reads a consistent, ordered suffix.
func TestTopicDropOldestBoundedLag(t *testing.T) {
	r := newRig(t, Config{Workers: 2, Priority: PriorityRM}, nil)
	app := r.app
	top, err := app.TopicDecl("stream", TopicOpts{Capacity: 4, Policy: DropOldest})
	if err != nil {
		t.Fatal(err)
	}
	var seq int64
	pub, _ := app.TaskDecl(TData{Name: "pub", Period: ms(1)})
	app.VersionDecl(pub, func(x *ExecCtx, _ any) error {
		seq++
		return x.Publish(top, seq)
	}, nil, VSelect{})
	app.TopicPub(pub, top)
	var got []int64
	sub, _ := app.TaskDecl(TData{Name: "sub", Period: ms(20)})
	app.VersionDecl(sub, func(x *ExecCtx, _ any) error {
		v, ok, err := x.Take(top)
		if err != nil || !ok {
			return err
		}
		got = append(got, v.(int64))
		return nil
	}, nil, VSelect{})
	app.TopicSub(sub, top)

	r.runMain(t, ms(400), nil)
	if err := app.FirstError(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("stream went backwards: %v", got)
		}
	}
	if app.TopicDropped(top) == 0 {
		t.Error("no drops on a 20x oversubscribed DropOldest topic")
	}
	// Bounded lag: each taken value is within Capacity of the newest at the
	// time of the take — it cannot be older than the retained window. The
	// last take happened when seq was at most 400, so a crude bound:
	if last := got[len(got)-1]; last < seq-25 {
		t.Errorf("subscriber lag unbounded: last take %d, published %d", last, seq)
	}
}

// TestTakeAnyPriorityOrder: TakeAny drains the urgent topic before the bulk
// topic regardless of declaration or publish order.
func TestTakeAnyPriorityOrder(t *testing.T) {
	r := newRig(t, Config{Workers: 2, Priority: PriorityRM}, nil)
	app := r.app
	// Declare the LOW-priority topic first: order must come from Priority.
	lo, err := app.TopicDecl("bulk", TopicOpts{Capacity: 8, Policy: Reject, Priority: 5})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := app.TopicDecl("alarm", TopicOpts{Capacity: 8, Policy: Reject, Priority: 0})
	if err != nil {
		t.Fatal(err)
	}
	pub, _ := app.TaskDecl(TData{Name: "pub", Period: ms(10)})
	app.VersionDecl(pub, func(x *ExecCtx, _ any) error {
		if x.Now() >= ms(90) {
			return nil
		}
		// Bulk goes out BEFORE the alarm each cycle.
		if err := x.Publish(lo, "bulk"); err != nil {
			return err
		}
		return x.Publish(hi, "alarm")
	}, nil, VSelect{})
	app.TopicPub(pub, lo)
	app.TopicPub(pub, hi)

	// Record one burst per subscriber job so the priority-order assertion can
	// check real drain boundaries instead of guessing them from the stream.
	var bursts [][]string
	sub, _ := app.TaskDecl(TData{Name: "sub", Period: ms(20)})
	app.VersionDecl(sub, func(x *ExecCtx, _ any) error {
		var burst []string
		for {
			from, v, ok, err := x.TakeAny()
			if err != nil {
				return err
			}
			if !ok {
				if len(burst) > 0 {
					bursts = append(bursts, burst)
				}
				return nil
			}
			if from == hi && v != "alarm" || from == lo && v != "bulk" {
				return fmt.Errorf("topic %d delivered %v", from, v)
			}
			burst = append(burst, v.(string))
		}
	}, nil, VSelect{})
	app.TopicSub(sub, lo)
	app.TopicSub(sub, hi)

	r.runMain(t, ms(200), nil)
	if err := app.FirstError(); err != nil {
		t.Fatal(err)
	}
	if len(bursts) == 0 {
		t.Fatal("nothing delivered")
	}
	// Within each drain burst, every alarm precedes every bulk entry:
	// TakeAny must empty the urgent topic before touching the bulk one.
	alarms := 0
	for _, burst := range bursts {
		seenBulk := false
		for _, s := range burst {
			if s == "alarm" {
				alarms++
				if seenBulk {
					t.Fatalf("alarm delivered mid-burst after bulk: %v", bursts)
				}
			} else {
				seenBulk = true
			}
		}
	}
	if alarms == 0 {
		t.Fatal("no alarms delivered")
	}
}

// TestTopicEndpointEnforcement: once endpoints are registered, outsiders
// can neither publish nor take.
func TestTopicEndpointEnforcement(t *testing.T) {
	r := newRig(t, Config{Workers: 2, Priority: PriorityRM}, nil)
	app := r.app
	top, _ := app.TopicDecl("private", TopicOpts{Capacity: 4})
	pub, _ := app.TaskDecl(TData{Name: "pub", Period: ms(10)})
	app.VersionDecl(pub, func(x *ExecCtx, _ any) error {
		return x.Publish(top, 1)
	}, nil, VSelect{})
	app.TopicPub(pub, top)
	sub, _ := app.TaskDecl(TData{Name: "sub", Period: ms(10)})
	var subPubErr error
	app.VersionDecl(sub, func(x *ExecCtx, _ any) error {
		if _, _, err := x.Take(top); err != nil {
			return err
		}
		if subPubErr == nil {
			subPubErr = x.Publish(top, 2) // subscriber is not a publisher
		}
		return nil
	}, nil, VSelect{})
	app.TopicSub(sub, top)
	var roguePub, rogueTake error
	rogue, _ := app.TaskDecl(TData{Name: "rogue", Period: ms(10)})
	app.VersionDecl(rogue, func(x *ExecCtx, _ any) error {
		if roguePub == nil {
			roguePub = x.Publish(top, 3)
		}
		if _, _, err := x.Take(top); rogueTake == nil {
			rogueTake = err
		}
		return nil
	}, nil, VSelect{})

	r.runMain(t, ms(50), nil)
	if err := app.FirstError(); err != nil {
		t.Fatal(err)
	}
	if subPubErr == nil {
		t.Error("subscriber published without a pub endpoint")
	}
	if roguePub == nil {
		t.Error("non-endpoint task published")
	}
	if rogueTake == nil {
		t.Error("non-endpoint task took")
	}
}

// TestLegacyChannelTopicInterop: ChannelDecl channels answer the topic API
// too (one CID space), and Take treats empty as a normal outcome where Pop
// errors.
func TestLegacyChannelTopicInterop(t *testing.T) {
	r := newRig(t, Config{Workers: 1}, nil)
	app := r.app
	ch, _ := app.ChannelDecl("fifo", 2)
	var failures []string
	tid, _ := app.TaskDecl(TData{Name: "t", Period: ms(10)})
	app.VersionDecl(tid, func(x *ExecCtx, _ any) error {
		if x.JobIndex() > 1 {
			return nil
		}
		check := func(cond bool, msg string) {
			if !cond {
				failures = append(failures, msg)
			}
		}
		check(x.Push(ch, "a") == nil, "push a")
		check(x.Publish(ch, "b") == nil, "publish b") // same CID, same buffer
		check(x.Push(ch, "c") != nil, "push beyond capacity must fail")
		n, err := x.ChannelLen(ch)
		check(err == nil && n == 2, "len 2")
		v, err := x.Pop(ch)
		check(err == nil && v == "a", "pop a")
		v2, ok, err := x.Take(ch)
		check(err == nil && ok && v2 == "b", "take b")
		_, err = x.Pop(ch)
		check(err != nil, "pop empty must error")
		_, ok, err = x.Take(ch)
		check(err == nil && !ok, "take empty is ok=false, no error")
		return nil
	}, nil, VSelect{})
	r.runMain(t, ms(30), nil)
	if err := app.FirstError(); err != nil {
		t.Fatal(err)
	}
	if len(failures) > 0 {
		t.Fatalf("interop failures: %v", failures)
	}
}

// TestTypedPorts: Send/Recv round a value through typed ports; direction
// and dynamic-type violations are caught.
func TestTypedPorts(t *testing.T) {
	r := newRig(t, Config{Workers: 2, Priority: PriorityRM}, nil)
	app := r.app
	top, _ := app.TopicDecl("typed", TopicOpts{Capacity: 4})
	type frame struct{ n int }
	out := PubOf[frame](top)
	in := SubOf[frame](top)
	if out.Topic() != top || out.Dir() != PubPort || in.Dir() != SubPort {
		t.Fatal("port accessors broken")
	}
	pub, _ := app.TaskDecl(TData{Name: "pub", Period: ms(10)})
	var dirErr error
	app.VersionDecl(pub, func(x *ExecCtx, _ any) error {
		if _, _, err := Recv(x, out); dirErr == nil {
			dirErr = err // Recv through a pub port must fail
		}
		return Send(x, out, frame{n: int(x.JobIndex())})
	}, nil, VSelect{})
	app.TopicPub(pub, top)
	var got []int
	sub, _ := app.TaskDecl(TData{Name: "sub", Period: ms(10)})
	app.VersionDecl(sub, func(x *ExecCtx, _ any) error {
		for {
			f, ok, err := Recv(x, in)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			got = append(got, f.n)
		}
	}, nil, VSelect{})
	app.TopicSub(sub, top)
	r.runMain(t, ms(100), nil)
	if err := app.FirstError(); err != nil {
		t.Fatal(err)
	}
	if dirErr == nil {
		t.Error("Recv through a pub port succeeded")
	}
	if len(got) < 5 {
		t.Fatalf("only %d frames received: %v", len(got), got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[i-1]+1 {
			t.Fatalf("frames out of order: %v", got)
		}
	}
}

// TestTopicMultiPubWallClockStress exercises the lock-free MPSC fan-in
// staging path: four publisher tasks and one subscriber on the OS backend
// under the race detector. Per-publisher FIFO order must hold and every
// successful publish must be delivered.
func TestTopicMultiPubWallClockStress(t *testing.T) {
	env := rt.NewOSEnv()
	env.Spin = false
	app, err := New(Config{Workers: 4, Priority: PriorityRM, MaxPendingJobs: 256}, env)
	if err != nil {
		t.Fatal(err)
	}
	top, err := app.TopicDecl("bus", TopicOpts{Capacity: 64, Policy: Reject})
	if err != nil {
		t.Fatal(err)
	}
	const pubs = 4
	published := make([]atomic.Int64, pubs)
	var quiesce atomic.Bool
	for p := 0; p < pubs; p++ {
		p := p
		tid, _ := app.TaskDecl(TData{Name: fmt.Sprintf("pub%d", p), Period: 2 * time.Millisecond})
		app.VersionDecl(tid, func(x *ExecCtx, _ any) error {
			if quiesce.Load() {
				return nil
			}
			for i := 0; i < 4; i++ {
				next := published[p].Load() + 1
				if err := x.Publish(top, [2]int64{int64(p), next}); err != nil {
					return nil // Reject full: retry next period
				}
				published[p].Store(next)
			}
			return nil
		}, nil, VSelect{})
		if err := app.TopicPub(tid, top); err != nil {
			t.Fatal(err)
		}
	}
	var mu sync.Mutex
	lastSeen := make([]int64, pubs)
	var taken int64
	sub, _ := app.TaskDecl(TData{Name: "sub", Period: 5 * time.Millisecond})
	app.VersionDecl(sub, func(x *ExecCtx, _ any) error {
		for {
			v, ok, err := x.Take(top)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			e := v.([2]int64)
			mu.Lock()
			if e[1] != lastSeen[e[0]]+1 {
				mu.Unlock()
				return fmt.Errorf("pub%d: seq %d after %d", e[0], e[1], lastSeen[e[0]])
			}
			lastSeen[e[0]] = e[1]
			taken++
			mu.Unlock()
		}
	}, nil, VSelect{})
	if err := app.TopicSub(sub, top); err != nil {
		t.Fatal(err)
	}

	env.RunMain(func(c rt.Ctx) {
		if err := app.Start(c); err != nil {
			t.Errorf("start: %v", err)
			return
		}
		c.Sleep(250 * time.Millisecond)
		quiesce.Store(true)
		c.Sleep(100 * time.Millisecond) // subscriber drains the tail
		app.Stop(c)
		app.Cleanup(c)
	})
	env.Wait()
	if err := app.FirstError(); err != nil {
		t.Fatal(err)
	}
	var want int64
	for p := range published {
		want += published[p].Load()
	}
	mu.Lock()
	defer mu.Unlock()
	if taken != want || want == 0 {
		t.Errorf("taken %d of %d published", taken, want)
	}
	for p := range lastSeen {
		if lastSeen[p] != published[p].Load() {
			t.Errorf("pub%d: delivered up to %d, published %d", p, lastSeen[p], published[p].Load())
		}
	}
}

// TestTopicMultiPubWallClockDropOldest drives the staged fan-in slow path
// for a policy that must never fail: a tiny topic saturated by four
// publishers. Publishes never error, and each publisher's delivered
// subsequence stays strictly increasing (gaps are the dropped entries).
// The publishers are pinned (partitioned mapping) so each one's jobs run
// serialized on its home worker: under the global mapping a task's next
// release can be dispatched or stolen while the previous job still runs,
// and overlapping jobs would make the per-publisher sequence ill-defined.
func TestTopicMultiPubWallClockDropOldest(t *testing.T) {
	env := rt.NewOSEnv()
	env.Spin = false
	app, err := New(Config{Workers: 4, Mapping: MappingPartitioned, Priority: PriorityRM, MaxPendingJobs: 256}, env)
	if err != nil {
		t.Fatal(err)
	}
	top, err := app.TopicDecl("tiny", TopicOpts{Capacity: 2, Policy: DropOldest})
	if err != nil {
		t.Fatal(err)
	}
	const pubs = 4
	var pubErrs atomic.Int64
	for p := 0; p < pubs; p++ {
		p := p
		var seq int64
		tid, _ := app.TaskDecl(TData{Name: fmt.Sprintf("pub%d", p), Period: time.Millisecond, VirtCore: p})
		app.VersionDecl(tid, func(x *ExecCtx, _ any) error {
			for i := 0; i < 8; i++ {
				seq++
				if err := x.Publish(top, [2]int64{int64(p), seq}); err != nil {
					pubErrs.Add(1)
				}
			}
			return nil
		}, nil, VSelect{})
		if err := app.TopicPub(tid, top); err != nil {
			t.Fatal(err)
		}
	}
	var mu sync.Mutex
	lastSeen := make([]int64, pubs)
	var taken int64
	sub, _ := app.TaskDecl(TData{Name: "sub", Period: 2 * time.Millisecond})
	app.VersionDecl(sub, func(x *ExecCtx, _ any) error {
		for {
			v, ok, err := x.Take(top)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			e := v.([2]int64)
			mu.Lock()
			if e[1] <= lastSeen[e[0]] {
				mu.Unlock()
				return fmt.Errorf("pub%d: seq %d after %d (reordered)", e[0], e[1], lastSeen[e[0]])
			}
			lastSeen[e[0]] = e[1]
			taken++
			mu.Unlock()
		}
	}, nil, VSelect{})
	if err := app.TopicSub(sub, top); err != nil {
		t.Fatal(err)
	}
	env.RunMain(func(c rt.Ctx) {
		if err := app.Start(c); err != nil {
			t.Errorf("start: %v", err)
			return
		}
		c.Sleep(200 * time.Millisecond)
		app.Stop(c)
		app.Cleanup(c)
	})
	env.Wait()
	if err := app.FirstError(); err != nil {
		t.Fatal(err)
	}
	if n := pubErrs.Load(); n != 0 {
		t.Errorf("%d publishes failed on a DropOldest topic", n)
	}
	if taken == 0 {
		t.Error("nothing delivered")
	}
	if app.TopicDropped(top) == 0 {
		t.Error("saturated capacity-2 topic recorded no drops")
	}
}

// TestSleepUnderOfflineDispatcher: the time-triggered dispatcher has no
// detach/rejoin handshake, so ExecCtx.Sleep must wait in place there — a
// sleeping body must complete normally, not corrupt the dispatch loop.
func TestSleepUnderOfflineDispatcher(t *testing.T) {
	r := newRig(t, Config{Workers: 1, Mapping: MappingOffline, AsyncAccel: true}, nil)
	app := r.app
	tid, _ := app.TaskDecl(TData{Name: "dozer", Deadline: ms(10)})
	var runs int64
	app.VersionDecl(tid, func(x *ExecCtx, _ any) error {
		if err := x.Sleep(ms(2)); err != nil {
			return err
		}
		if err := x.Compute(ms(1)); err != nil {
			return err
		}
		// AsyncAccel is configured but the version has no accelerator;
		// AccelSection must stay synchronous under offline dispatch.
		if err := x.AccelSection(ms(1)); err != nil {
			return err
		}
		runs++
		return nil
	}, nil, VSelect{})
	if err := app.SetOfflineTable(&OfflineTable{
		Cycle:     ms(20),
		PerWorker: [][]TableEntry{{{Offset: 0, Task: tid, Version: 0}}},
	}); err != nil {
		t.Fatal(err)
	}
	r.runMain(t, ms(100), nil)
	if err := app.FirstError(); err != nil {
		t.Fatal(err)
	}
	if runs < 4 {
		t.Fatalf("only %d offline runs completed", runs)
	}
	if st := app.Recorder().Task("dozer"); st == nil || st.Misses != 0 {
		t.Errorf("offline sleeper missed deadlines: %+v", st)
	}
}
