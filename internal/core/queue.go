package core

import "fmt"

// readyQueue is a fixed-capacity binary heap of jobs ordered by effective
// priority (then FIFO). It is not itself synchronised: callers hold the
// App's queue lock. Capacity is fixed at creation — pushing beyond it fails,
// the static-allocation discipline of the paper.
//
// The heap is intrusive: each job carries its own heap slot in job.heapIdx
// (-1 while not enqueued), so push/pop/fix/remove never touch a position
// map — no allocation and no hashing on the scheduler hot path.
type readyQueue struct {
	heap []*job
	n    int
}

func newReadyQueue(capacity int) *readyQueue {
	return &readyQueue{heap: make([]*job, capacity)}
}

func (q *readyQueue) len() int { return q.n }

// opCost returns the number of heap levels a push/pop traverses, used by the
// caller to charge the platform's per-item queue cost.
func (q *readyQueue) opCost() int {
	levels := 0
	for n := q.n; n > 0; n >>= 1 {
		levels++
	}
	return levels + 1
}

// contains reports whether j currently sits in this queue's heap.
func (q *readyQueue) contains(j *job) bool {
	return j.heapIdx >= 0 && j.heapIdx < q.n && q.heap[j.heapIdx] == j
}

func (q *readyQueue) push(j *job) error {
	if q.n == len(q.heap) {
		return fmt.Errorf("core: ready queue full (%d)", q.n) //yasmin:alloc-ok cold error path
	}
	if q.contains(j) {
		panic(fmt.Sprintf("core: job %d (seq %d) pushed twice", j.poolIdx, j.seq))
	}
	q.heap[q.n] = j
	j.heapIdx = q.n
	q.n++
	q.up(q.n - 1)
	return nil
}

func (q *readyQueue) peek() *job {
	if q.n == 0 {
		return nil
	}
	return q.heap[0]
}

func (q *readyQueue) pop() *job {
	if q.n == 0 {
		return nil
	}
	j := q.heap[0]
	q.n--
	if q.n > 0 {
		q.heap[0] = q.heap[q.n]
		q.heap[0].heapIdx = 0
	}
	q.heap[q.n] = nil
	j.heapIdx = -1
	if q.n > 0 {
		q.down(0)
	}
	return j
}

// fix restores heap order after j's priority changed (PIP boost).
func (q *readyQueue) fix(j *job) {
	if !q.contains(j) {
		return
	}
	q.up(j.heapIdx)
	q.down(j.heapIdx)
}

// remove extracts an arbitrary job (used when a job is pulled for an
// accelerator waitlist).
func (q *readyQueue) remove(j *job) bool {
	if !q.contains(j) {
		return false
	}
	i := j.heapIdx
	q.n--
	last := q.heap[q.n]
	q.heap[q.n] = nil
	j.heapIdx = -1
	if i == q.n {
		return true
	}
	q.heap[i] = last
	last.heapIdx = i
	q.up(i)
	q.down(last.heapIdx)
	return true
}

func (q *readyQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.heap[i].before(q.heap[parent]) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *readyQueue) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < q.n && q.heap[l].before(q.heap[smallest]) {
			smallest = l
		}
		if r < q.n && q.heap[r].before(q.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}

func (q *readyQueue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.heap[i].heapIdx = i
	q.heap[j].heapIdx = j
}
