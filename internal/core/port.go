package core

import "fmt"

// PortDir distinguishes the two endpoint directions of a topic.
type PortDir int

// Port directions.
const (
	// PubPort is an outbound endpoint: Send publishes through it.
	PubPort PortDir = iota + 1
	// SubPort is an inbound endpoint: Recv takes through it.
	SubPort
)

func (d PortDir) String() string {
	switch d {
	case PubPort:
		return "pub"
	case SubPort:
		return "sub"
	default:
		return fmt.Sprintf("PortDir(%d)", int(d))
	}
}

// Port is a typed, directional handle on a topic: the compile-time face of
// the pub-sub layer. The runtime moves `any` values (one shared buffer
// entry per publish, whatever T is); a Port pins the element type at the
// API boundary so Send and Recv are type-checked, and pins the direction so
// a subscriber cannot accidentally publish through its inbound endpoint.
//
// Ports are plain values: capture them in version closures like CIDs.
// Declare the endpoints (Builder Publishes/Subscribes, spec TopicSpec
// pubs/subs, or App.TopicPub/TopicSub) and wrap the topic's CID:
//
//	frames := b.Topic("frames", yasmin.TopicOpts{Capacity: 1, Policy: yasmin.Latest})
//	out := yasmin.PubOf[Frame](frames)   // in the camera task
//	in := yasmin.SubOf[Frame](frames)    // in the detector task
type Port[T any] struct {
	c   CID
	dir PortDir
}

// PubOf wraps topic c as a typed publish endpoint.
func PubOf[T any](c CID) Port[T] { return Port[T]{c: c, dir: PubPort} }

// SubOf wraps topic c as a typed subscribe endpoint.
func SubOf[T any](c CID) Port[T] { return Port[T]{c: c, dir: SubPort} }

// Topic returns the underlying topic ID.
func (p Port[T]) Topic() CID { return p.c }

// Dir returns the port direction.
func (p Port[T]) Dir() PortDir { return p.dir }

// Send publishes v through a typed publish port (generic functions cannot
// be methods on ExecCtx, hence the free-function spelling).
func Send[T any](x *ExecCtx, p Port[T], v T) error {
	if p.dir != PubPort {
		return fmt.Errorf("core: Send through a %v port on topic %d", p.dir, p.c)
	}
	return x.Publish(p.c, v)
}

// Recv takes the next pending value through a typed subscribe port; ok is
// false when nothing is pending. A buffered value of a different dynamic
// type (a stray untyped Publish on the same topic) is an error.
func Recv[T any](x *ExecCtx, p Port[T]) (v T, ok bool, err error) {
	if p.dir != SubPort {
		return v, false, fmt.Errorf("core: Recv through a %v port on topic %d", p.dir, p.c)
	}
	raw, ok, err := x.Take(p.c)
	if err != nil || !ok {
		return v, ok, err
	}
	t, isT := raw.(T)
	if !isT {
		return v, false, fmt.Errorf("core: topic %d carries %T, port expects %T", p.c, raw, v)
	}
	return t, true, nil
}
