package core

// Cluster attachment points: internal/cluster splits a topic across
// nodes by (a) installing a forwarder on the origin node's topic, called
// on the publisher's own thread after every successful local publish,
// and (b) injecting received frames into the destination node's topic
// via RemotePublish from its ingress worker. Neither direction ever
// takes App.mu on the steady-state path beyond what a local publish
// would: the forwarder rides the lock-free topicView snapshot, and
// RemotePublish uses the staging ring where one exists.

import (
	"fmt"

	"github.com/yasmin-rt/yasmin/internal/rt"
)

// SetTopicForwarder installs fn as topic c's remote-subscriber
// forwarder: every successful local Publish also calls fn(pub, v) on the
// publisher's thread, outside the App lock, after the value is in the
// local buffer — so local and remote subscribers observe the same
// per-publisher order. One forwarder per topic (the data plane fans out
// to all remote nodes itself); nil uninstalls. Declaration-time only.
func (a *App) SetTopicForwarder(c CID, fn func(pub TID, v any)) error {
	if a.started.Load() {
		return ErrStarted
	}
	tp, err := a.topicByID(c)
	if err != nil {
		return err
	}
	tp.fwd = fn
	tp.publishView()
	return nil
}

// MarkTopicRemote marks topic c as having remote publishers: cluster
// ingress will inject entries via RemotePublish from a non-task thread,
// so the wall-clock backend provisions the lock-free staging ring even
// when the topic has at most one local publisher. Declaration-time only;
// a no-op on the simulation backend (whose engine serialises all
// threads, keeping the locked path deterministic).
func (a *App) MarkTopicRemote(c CID) error {
	if a.started.Load() {
		return ErrStarted
	}
	tp, err := a.topicByID(c)
	if err != nil {
		return err
	}
	tp.remote = true
	tp.publishView()
	return nil
}

// RemotePublish appends a value arriving from another node to topic c
// under the topic's overflow policy. It is the ingress twin of
// ExecCtx.Publish: same staging fast path, same overflow semantics, but
// no endpoint check (the origin node already enforced its publisher
// discipline) and no forwarder invocation (frames must not bounce back
// into the data plane). Call it from a cluster ingress thread of the
// same environment; c is that thread's rt.Ctx.
//
//yasmin:noalloc
func (a *App) RemotePublish(c rt.Ctx, id CID, v any) error {
	if int(id) < 0 || int(id) >= int(a.ntopicsA.Load()) {
		return fmt.Errorf("core: no channel %d", id) //yasmin:alloc-ok cold error path
	}
	tp := &a.topics[id]
	vw := tp.view.Load()
	if vw == nil || vw.dead {
		return fmt.Errorf("core: channel %d was removed", id) //yasmin:alloc-ok cold error path
	}
	if vw.staging != nil {
		// Wall-clock ingress fast path: no middleware lock. Overflow
		// handling mirrors ExecCtx.Publish — the entry must queue BEHIND
		// anything still staged to preserve per-publisher frame order.
		if vw.staging.Push(v) {
			return nil
		}
		for {
			a.mu.Lock(c)
			tp.drainStaging()
			a.mu.Unlock(c)
			if vw.staging.Push(v) {
				return nil
			}
			if vw.policy == Reject {
				return fmt.Errorf("core: channel %s full (%d)", vw.name, vw.capacity) //yasmin:alloc-ok cold error path
			}
			c.Yield() //yasmin:alloc-ok contended slow path
		}
	}
	a.mu.Lock(c)
	if tp.dead { // removed between the snapshot read and the lock
		a.mu.Unlock(c)
		return fmt.Errorf("core: channel %d was removed", id) //yasmin:alloc-ok cold error path
	}
	ok := tp.publish(v)
	a.mu.Unlock(c)
	if !ok {
		return fmt.Errorf("core: channel %s full (%d)", vw.name, vw.capacity) //yasmin:alloc-ok cold error path
	}
	return nil
}
