package core

import (
	"testing"
	"time"

	"github.com/yasmin-rt/yasmin/internal/platform"
	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/sim"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }
func us(n int) time.Duration { return time.Duration(n) * time.Microsecond }

// rig bundles a simulation environment and an App for tests.
type rig struct {
	eng *sim.Engine
	env *rt.SimEnv
	app *App
}

func newRig(t *testing.T, cfg Config, pl *platform.Platform) *rig {
	t.Helper()
	if pl == nil {
		pl = platform.Generic(8)
	}
	cfg.RecordAccel = true // tests assert on arbitration events
	eng := sim.NewEngine(42)
	env, err := rt.NewSimEnv(eng, pl, nil)
	if err != nil {
		t.Fatal(err)
	}
	app, err := New(cfg, env)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{eng: eng, env: env, app: app}
}

// runMain drives the app from a "main" thread: declarations happened
// already; fn runs between Start and Stop+Cleanup.
func (r *rig) runMain(t *testing.T, horizon time.Duration, fn func(c rt.Ctx)) {
	t.Helper()
	r.env.Spawn("main", rt.UnpinnedCore, func(c rt.Ctx) {
		if err := r.app.Start(c); err != nil {
			t.Errorf("Start: %v", err)
			return
		}
		if fn != nil {
			fn(c)
		}
		c.SleepUntil(horizon)
		r.app.Stop(c)
		r.app.Cleanup(c)
	})
	if err := r.eng.Run(sim.Time(horizon + 10*time.Second)); err != nil {
		t.Fatal(err)
	}
}

// spin returns a TaskFunc consuming d of CPU work.
func spin(d time.Duration) TaskFunc {
	return func(x *ExecCtx, _ any) error { return x.Compute(d) }
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"defaults valid", Config{Workers: 2}, true},
		{"no workers", Config{}, false},
		{"mismatched cores", Config{Workers: 2, WorkerCores: []int{1}}, false},
		{"bad alpha", Config{Workers: 1, TradeoffAlpha: 1.5}, false},
		{"user select without callback", Config{Workers: 1, VersionSelect: SelectUser}, false},
		{"negative sched period", Config{Workers: 1, SchedulerPeriod: -1}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			err := cfg.Validate()
			if tc.ok && err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{Workers: 3}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Mapping != MappingGlobal || cfg.Priority != PriorityEDF {
		t.Errorf("defaults: mapping=%v priority=%v", cfg.Mapping, cfg.Priority)
	}
	if len(cfg.WorkerCores) != 3 || cfg.WorkerCores[0] != 1 || cfg.SchedulerCore != 0 {
		t.Errorf("default pinning: cores=%v sched=%d", cfg.WorkerCores, cfg.SchedulerCore)
	}
	if cfg.MaxTasks == 0 || cfg.MaxPendingJobs == 0 {
		t.Error("static sizes not defaulted")
	}
}

func TestPeriodicTaskRunsOnSchedule(t *testing.T) {
	r := newRig(t, Config{Workers: 2, Preemption: true}, nil)
	tid, err := r.app.TaskDecl(TData{Name: "tau", Period: ms(10)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.app.VersionDecl(tid, spin(ms(2)), nil, VSelect{WCET: ms(2)}); err != nil {
		t.Fatal(err)
	}
	r.runMain(t, ms(100), nil)

	st := r.app.Recorder().Task("tau")
	if st == nil {
		t.Fatal("no stats for tau")
	}
	// Released at 0,10,...,90: 10 jobs within the 100ms horizon.
	if st.Jobs < 9 || st.Jobs > 11 {
		t.Errorf("jobs = %d, want ~10", st.Jobs)
	}
	if st.Misses != 0 {
		t.Errorf("misses = %d, want 0", st.Misses)
	}
	_, max, _ := st.Response.Summary()
	if max > ms(3) {
		t.Errorf("max response %v, want ~2ms (+overheads)", max)
	}
	if r.app.Overruns() != 0 {
		t.Errorf("overruns = %d", r.app.Overruns())
	}
}

func TestSchedulerPeriodIsGCD(t *testing.T) {
	r := newRig(t, Config{Workers: 2}, nil)
	for _, p := range []time.Duration{ms(250), ms(100), ms(40)} {
		tid, err := r.app.TaskDecl(TData{Name: "t" + p.String(), Period: p})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.app.VersionDecl(tid, spin(ms(1)), nil, VSelect{}); err != nil {
			t.Fatal(err)
		}
	}
	r.runMain(t, ms(500), nil)
	if got := r.app.schedPeriodNow(); got != ms(10) {
		t.Errorf("scheduler period = %v, want GCD 10ms", got)
	}
}

func TestEDFOrdering(t *testing.T) {
	// Two tasks released together on one worker; EDF must run the tighter
	// deadline first.
	r := newRig(t, Config{Workers: 1, Priority: PriorityEDF}, nil)
	var order []string
	record := func(name string, c time.Duration) TaskFunc {
		return func(x *ExecCtx, _ any) error {
			order = append(order, name)
			return x.Compute(c)
		}
	}
	loose, _ := r.app.TaskDecl(TData{Name: "loose", Period: ms(100), Deadline: ms(80)})
	tight, _ := r.app.TaskDecl(TData{Name: "tight", Period: ms(100), Deadline: ms(20)})
	r.app.VersionDecl(loose, record("loose", ms(2)), nil, VSelect{})
	r.app.VersionDecl(tight, record("tight", ms(2)), nil, VSelect{})
	r.runMain(t, ms(90), nil)
	if len(order) < 2 || order[0] != "tight" {
		t.Errorf("order = %v, want tight first", order)
	}
}

func TestRMOrdering(t *testing.T) {
	r := newRig(t, Config{Workers: 1, Priority: PriorityRM}, nil)
	var order []string
	record := func(name string, c time.Duration) TaskFunc {
		return func(x *ExecCtx, _ any) error {
			order = append(order, name)
			return x.Compute(c)
		}
	}
	slow, _ := r.app.TaskDecl(TData{Name: "slow", Period: ms(100)})
	fast, _ := r.app.TaskDecl(TData{Name: "fast", Period: ms(20)})
	r.app.VersionDecl(slow, record("slow", ms(1)), nil, VSelect{})
	r.app.VersionDecl(fast, record("fast", ms(1)), nil, VSelect{})
	r.runMain(t, ms(90), nil)
	if len(order) < 2 || order[0] != "fast" {
		t.Errorf("order = %v, want fast (shorter period) first", order)
	}
}

func TestPreemption(t *testing.T) {
	// One worker: a long low-priority job must be preempted by a
	// short-deadline task arriving mid-execution.
	r := newRig(t, Config{Workers: 1, Priority: PriorityEDF, Preemption: true}, nil)
	long, _ := r.app.TaskDecl(TData{Name: "long", Period: ms(100), Deadline: ms(100), ReleaseOffset: 0})
	short, _ := r.app.TaskDecl(TData{Name: "short", Period: ms(100), Deadline: ms(10), ReleaseOffset: ms(5)})
	r.app.VersionDecl(long, spin(ms(40)), nil, VSelect{})
	r.app.VersionDecl(short, spin(ms(2)), nil, VSelect{})
	r.runMain(t, ms(95), nil)

	shortSt := r.app.Recorder().Task("short")
	longSt := r.app.Recorder().Task("long")
	if shortSt == nil || longSt == nil {
		t.Fatal("missing stats")
	}
	if shortSt.Misses != 0 {
		t.Errorf("short missed %d deadlines; preemption failed", shortSt.Misses)
	}
	_, max, _ := shortSt.Response.Summary()
	if max > ms(5) {
		t.Errorf("short max response %v, want < 5ms (preempts long)", max)
	}
	if longSt.Preempts == 0 {
		t.Error("long was never preempted")
	}
	if longSt.Misses != 0 {
		t.Errorf("long missed %d deadlines", longSt.Misses)
	}
}

func TestNoPreemptionWhenDisabled(t *testing.T) {
	r := newRig(t, Config{Workers: 1, Priority: PriorityEDF, Preemption: false}, nil)
	long, _ := r.app.TaskDecl(TData{Name: "long", Period: ms(100), Deadline: ms(100)})
	short, _ := r.app.TaskDecl(TData{Name: "short", Period: ms(100), Deadline: ms(10), ReleaseOffset: ms(5)})
	r.app.VersionDecl(long, spin(ms(40)), nil, VSelect{})
	r.app.VersionDecl(short, spin(ms(2)), nil, VSelect{})
	r.runMain(t, ms(95), nil)
	longSt := r.app.Recorder().Task("long")
	shortSt := r.app.Recorder().Task("short")
	if longSt.Preempts != 0 {
		t.Errorf("long preempted %d times with preemption disabled", longSt.Preempts)
	}
	if shortSt.Misses == 0 {
		t.Error("short should miss its 10ms deadline behind a 40ms job")
	}
}

func TestPartitionedMapping(t *testing.T) {
	pl := platform.Generic(4)
	r := newRig(t, Config{
		Workers: 2, Mapping: MappingPartitioned, Priority: PriorityDM,
		WorkerCores: []int{1, 2}, SchedulerCore: 0,
	}, pl)
	a, _ := r.app.TaskDecl(TData{Name: "onW0", Period: ms(10), VirtCore: 0})
	b, _ := r.app.TaskDecl(TData{Name: "onW1", Period: ms(10), VirtCore: 1})
	r.app.VersionDecl(a, spin(ms(1)), nil, VSelect{})
	r.app.VersionDecl(b, spin(ms(1)), nil, VSelect{})
	r.app.cfg.RecordJobs = true
	r.app.Init() // re-init to pick up RecordJobs
	a, _ = r.app.TaskDecl(TData{Name: "onW0", Period: ms(10), VirtCore: 0})
	b, _ = r.app.TaskDecl(TData{Name: "onW1", Period: ms(10), VirtCore: 1})
	r.app.VersionDecl(a, spin(ms(1)), nil, VSelect{})
	r.app.VersionDecl(b, spin(ms(1)), nil, VSelect{})
	r.runMain(t, ms(50), nil)
	for _, j := range r.app.Recorder().Jobs() {
		switch j.Task {
		case "onW0":
			if j.Core != 1 {
				t.Errorf("onW0 ran on core %d, want 1", j.Core)
			}
		case "onW1":
			if j.Core != 2 {
				t.Errorf("onW1 ran on core %d, want 2", j.Core)
			}
		}
	}
}

func TestPartitionedRequiresVirtCore(t *testing.T) {
	r := newRig(t, Config{Workers: 2, Mapping: MappingPartitioned}, nil)
	tid, _ := r.app.TaskDecl(TData{Name: "x", Period: ms(10), VirtCore: 7})
	r.app.VersionDecl(tid, spin(ms(1)), nil, VSelect{})
	r.env.Spawn("main", rt.UnpinnedCore, func(c rt.Ctx) {
		if err := r.app.Start(c); err == nil {
			t.Error("want error for out-of-range VirtCore")
			r.app.Stop(c)
			r.app.Cleanup(c)
		}
	})
	if err := r.eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
}

func TestDiamondGraphDataFlow(t *testing.T) {
	// The paper's Listing 2 diamond: fork -> {left,right} -> join.
	r := newRig(t, Config{Workers: 2, Priority: PriorityEDF}, nil)
	app := r.app

	flCh, _ := app.ChannelDecl("fl", 0) // pure precedence
	frCh, _ := app.ChannelDecl("fr", 4)
	rjCh, _ := app.ChannelDecl("rj", 8)
	ljCh, _ := app.ChannelDecl("lj", 4)

	fork, _ := app.TaskDecl(TData{Name: "fork", Period: ms(25)})
	left, _ := app.TaskDecl(TData{Name: "left"})
	right, _ := app.TaskDecl(TData{Name: "right"})
	join, _ := app.TaskDecl(TData{Name: "join"})

	var joined []int
	app.VersionDecl(fork, func(x *ExecCtx, _ any) error {
		if err := x.Compute(ms(1)); err != nil {
			return err
		}
		if err := x.Push(flCh, nil); err != nil {
			return err
		}
		return x.Push(frCh, 2)
	}, nil, VSelect{})
	app.VersionDecl(left, func(x *ExecCtx, _ any) error {
		if err := x.Compute(ms(1)); err != nil {
			return err
		}
		return x.Push(ljCh, 7)
	}, nil, VSelect{})
	app.VersionDecl(right, func(x *ExecCtx, _ any) error {
		v, err := x.Pop(frCh)
		if err != nil {
			return err
		}
		n := v.(int)
		if err := x.Push(rjCh, n); err != nil {
			return err
		}
		return x.Push(rjCh, n*2)
	}, nil, VSelect{})
	app.VersionDecl(join, func(x *ExecCtx, _ any) error {
		a, err := x.Pop(rjCh)
		if err != nil {
			return err
		}
		b, err := x.Pop(rjCh)
		if err != nil {
			return err
		}
		l, err := x.Pop(ljCh)
		if err != nil {
			return err
		}
		joined = append(joined, a.(int)+b.(int)+l.(int))
		return nil
	}, nil, VSelect{})

	if err := app.ChannelConnect(fork, left, flCh); err != nil {
		t.Fatal(err)
	}
	if err := app.ChannelConnect(fork, right, frCh); err != nil {
		t.Fatal(err)
	}
	if err := app.ChannelConnect(right, join, rjCh); err != nil {
		t.Fatal(err)
	}
	if err := app.ChannelConnect(left, join, ljCh); err != nil {
		t.Fatal(err)
	}

	r.runMain(t, ms(100), nil)

	if len(joined) < 3 {
		t.Fatalf("join ran %d times, want >= 3", len(joined))
	}
	for _, v := range joined {
		if v != 2+4+7 {
			t.Errorf("join value = %d, want 13", v)
		}
	}
	// Graph-level record for the sink exists.
	if st := app.Recorder().Task("graph:join"); st == nil || st.Jobs == 0 {
		t.Error("missing graph-level sink records")
	}
	if app.FirstError() != nil {
		t.Errorf("task error: %v", app.FirstError())
	}
}

func TestGraphRejectsPeriodOnNonRoot(t *testing.T) {
	r := newRig(t, Config{Workers: 1}, nil)
	ch, _ := r.app.ChannelDecl("c", 1)
	a, _ := r.app.TaskDecl(TData{Name: "a", Period: ms(10)})
	b, _ := r.app.TaskDecl(TData{Name: "b", Period: ms(10)}) // non-root with period: invalid
	r.app.VersionDecl(a, spin(ms(1)), nil, VSelect{})
	r.app.VersionDecl(b, spin(ms(1)), nil, VSelect{})
	r.app.ChannelConnect(a, b, ch)
	r.env.Spawn("main", rt.UnpinnedCore, func(c rt.Ctx) {
		if err := r.app.Start(c); err == nil {
			t.Error("want error: data-activated task with period")
			r.app.Stop(c)
			r.app.Cleanup(c)
		}
	})
	if err := r.eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
}

func TestChannelCycleRejected(t *testing.T) {
	r := newRig(t, Config{Workers: 1}, nil)
	c1, _ := r.app.ChannelDecl("c1", 1)
	c2, _ := r.app.ChannelDecl("c2", 1)
	a, _ := r.app.TaskDecl(TData{Name: "a", Period: ms(10)})
	b, _ := r.app.TaskDecl(TData{Name: "b"})
	r.app.VersionDecl(a, spin(ms(1)), nil, VSelect{})
	r.app.VersionDecl(b, spin(ms(1)), nil, VSelect{})
	r.app.ChannelConnect(a, b, c1)
	if err := r.app.ChannelConnect(b, a, c2); err != nil {
		t.Fatal(err) // connect itself is fine; Start detects the cycle
	}
	r.env.Spawn("main", rt.UnpinnedCore, func(c rt.Ctx) {
		if err := r.app.Start(c); err == nil {
			t.Error("want cycle error at Start")
			r.app.Stop(c)
			r.app.Cleanup(c)
		}
	})
	if err := r.eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
}

func TestSporadicActivation(t *testing.T) {
	r := newRig(t, Config{Workers: 1}, nil)
	tid, _ := r.app.TaskDecl(TData{Name: "sporadic", Period: ms(20), Sporadic: true})
	r.app.VersionDecl(tid, spin(ms(1)), nil, VSelect{})
	var early, late error
	r.runMain(t, ms(100), func(c rt.Ctx) {
		c.Sleep(ms(5))
		if err := r.app.TaskActivate(c, tid); err != nil {
			t.Errorf("first activation: %v", err)
		}
		c.Sleep(ms(5))
		early = r.app.TaskActivate(c, tid) // 5ms later: violates T=20ms
		c.Sleep(ms(20))
		late = r.app.TaskActivate(c, tid) // 25ms later: fine
	})
	if early == nil {
		t.Error("early activation must be rejected (min inter-arrival)")
	}
	if late != nil {
		t.Errorf("late activation rejected: %v", late)
	}
	if st := r.app.Recorder().Task("sporadic"); st == nil || st.Jobs != 2 {
		t.Errorf("sporadic jobs = %v, want 2", st)
	}
}

func TestAperiodicNeedsDeadline(t *testing.T) {
	r := newRig(t, Config{Workers: 1}, nil)
	tid, _ := r.app.TaskDecl(TData{Name: "aper"})
	r.app.VersionDecl(tid, spin(ms(1)), nil, VSelect{})
	r.env.Spawn("main", rt.UnpinnedCore, func(c rt.Ctx) {
		if err := r.app.Start(c); err == nil {
			t.Error("want error: aperiodic task without deadline")
			r.app.Stop(c)
			r.app.Cleanup(c)
		}
	})
	if err := r.eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
}

func TestDeclarationLimitsAndErrors(t *testing.T) {
	r := newRig(t, Config{Workers: 1, MaxTasks: 2, MaxVersionsPerTask: 1, MaxChannels: 1, MaxAccels: 1}, nil)
	app := r.app
	if _, err := app.TaskDecl(TData{}); err == nil {
		t.Error("want error for unnamed task")
	}
	t1, err := app.TaskDecl(TData{Name: "a", Period: ms(10)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.TaskDecl(TData{Name: "b", Period: ms(10)}); err != nil {
		t.Fatal(err)
	}
	if _, err := app.TaskDecl(TData{Name: "c", Period: ms(10)}); err == nil {
		t.Error("want MaxTasks error")
	}
	if _, err := app.VersionDecl(t1, nil, nil, VSelect{}); err == nil {
		t.Error("want error for nil fn")
	}
	if _, err := app.VersionDecl(t1, spin(ms(1)), nil, VSelect{}); err != nil {
		t.Fatal(err)
	}
	if _, err := app.VersionDecl(t1, spin(ms(1)), nil, VSelect{}); err == nil {
		t.Error("want MaxVersionsPerTask error")
	}
	if _, err := app.VersionDecl(TID(99), spin(ms(1)), nil, VSelect{}); err == nil {
		t.Error("want unknown-task error")
	}
	if _, err := app.ChannelDecl("ch", -1); err == nil {
		t.Error("want negative-capacity error")
	}
	if _, err := app.ChannelDecl("ch", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := app.ChannelDecl("ch2", 1); err == nil {
		t.Error("want MaxChannels error")
	}
	if _, err := app.HwAccelDecl(""); err == nil {
		t.Error("want unnamed-accel error")
	}
	if _, err := app.HwAccelDecl("gpu"); err != nil {
		t.Fatal(err)
	}
	if _, err := app.HwAccelDecl("gpu2"); err == nil {
		t.Error("want MaxAccels error")
	}
	if err := app.HwAccelUse(t1, VID(5), HID(0)); err == nil {
		t.Error("want unknown-version error")
	}
	if err := app.HwAccelUse(t1, VID(0), HID(5)); err == nil {
		t.Error("want unknown-accel error")
	}
	if err := app.ChannelConnect(t1, t1, CID(0)); err == nil {
		t.Error("want self-loop error")
	}
}

func TestTaskFuncErrorsAreCounted(t *testing.T) {
	r := newRig(t, Config{Workers: 1}, nil)
	tid, _ := r.app.TaskDecl(TData{Name: "bad", Period: ms(10)})
	r.app.VersionDecl(tid, func(x *ExecCtx, _ any) error {
		return errTest
	}, nil, VSelect{})
	r.runMain(t, ms(35), nil)
	if r.app.TaskErrors() == 0 {
		t.Error("task errors not counted")
	}
	if r.app.FirstError() == nil {
		t.Error("first error not recorded")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }
