package core

import (
	"fmt"
	"time"

	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/trace"
)

// TableEntry is one slot of an off-line schedule: at Offset within the table
// cycle, the worker runs Version of Task. Delay slots are implicit: workers
// sleep between a job's completion and the next entry's offset (Section
// 3.4).
type TableEntry struct {
	Offset  time.Duration
	Task    TID
	Version VID
}

// OfflineTable is a pre-computed time-triggered schedule: one entry sequence
// per worker, repeated every Cycle (typically the task-set hyperperiod).
// Versions are pre-selected off-line, as the paper notes this shrinks the
// binary: only referenced versions are needed.
type OfflineTable struct {
	Cycle     time.Duration
	PerWorker [][]TableEntry
}

// validate checks the table against the app's declarations.
func (t *OfflineTable) validate(a *App) error {
	if t == nil {
		return fmt.Errorf("core: nil offline table")
	}
	if t.Cycle <= 0 {
		return fmt.Errorf("core: offline table needs a positive cycle")
	}
	if len(t.PerWorker) != a.cfg.Workers {
		return fmt.Errorf("core: offline table has %d worker rows for %d workers",
			len(t.PerWorker), a.cfg.Workers)
	}
	for wi, entries := range t.PerWorker {
		last := time.Duration(-1)
		for ei, e := range entries {
			if e.Offset < 0 || e.Offset >= t.Cycle {
				return fmt.Errorf("core: worker %d entry %d: offset %v outside cycle %v",
					wi, ei, e.Offset, t.Cycle)
			}
			if e.Offset < last {
				return fmt.Errorf("core: worker %d entries not sorted by offset", wi)
			}
			last = e.Offset
			tk, err := a.taskByID(e.Task)
			if err != nil {
				return fmt.Errorf("core: worker %d entry %d: %w", wi, ei, err)
			}
			if int(e.Version) < 0 || int(e.Version) >= len(tk.versions) {
				return fmt.Errorf("core: worker %d entry %d: task %s has no version %d",
					wi, ei, tk.d.Name, e.Version)
			}
		}
	}
	return nil
}

// offlineWorkerLoop is the on-line dispatcher for off-line schedules
// (Figure 1c): each worker walks its release-time-ordered entry list,
// waiting out the pre-computed delay slots, and runs each job to completion
// without preemption. Heterogeneous resource management was resolved by the
// off-line scheduler, so no accelerator arbitration happens here.
func (a *App) offlineWorkerLoop(c rt.Ctx, w *workerState) {
	defer a.threadExit()
	costs := a.env.Costs()
	entries := a.offTable.PerWorker[w.idx]
	if len(entries) == 0 {
		return
	}
	for cycleStart := a.startTime; ; cycleStart += a.offTable.Cycle {
		if a.stopping.Load() || a.terminating.Load() {
			return
		}
		for i := range entries {
			e := &entries[i]
			release := cycleStart + e.Offset
			// Delay slot: wait for the pre-computed release time.
			c.Charge(costs.TimerProgram)
			if intr := c.SleepUntil(release); intr {
				if a.terminating.Load() {
					return
				}
			}
			if a.stopping.Load() || a.terminating.Load() {
				return
			}
			a.runOfflineEntry(c, w, e, release)
		}
	}
}

// runOfflineEntry executes one table slot on this worker.
func (a *App) runOfflineEntry(c rt.Ctx, w *workerState, e *TableEntry, release time.Duration) {
	costs := a.env.Costs()
	a.mu.Lock(c)
	t := &a.tasks[e.Task]
	j := a.allocJob()
	if j == nil {
		a.overruns.Add(1)
		a.mu.Unlock(c)
		return
	}
	t.jobSeq++
	j.t = t
	j.name = t.d.Name
	t.live.Add(1)
	a.jobsLive.Add(1)
	j.seq = a.jobSeq.Add(1)
	j.taskSeq = t.jobSeq
	j.release = release
	j.stamp = release
	j.absDL = release + t.effDeadline
	j.version = e.Version
	j.basePrio = t.staticPrio
	j.effPrio.Store(j.basePrio)
	j.state.Store(jobRunning)
	j.worker.Store(int32(w.idx))
	j.started = true
	j.start = c.Now()
	// Accelerator bookkeeping (no arbitration: the table guarantees
	// exclusivity, we only track occupancy for AccelBusy observers).
	if h := t.versions[e.Version].accel; h != NoAccel {
		ac := &a.accels[h]
		ac.busy = true
		ac.holder = j
		j.accel = h
	}
	// Bind a fiber (lock-free Treiber pool; sized so exhaustion is
	// structurally impossible, dropped defensively).
	f := a.allocFib()
	if f == nil {
		a.overruns.Add(1)
		a.freeJobLocked(c, j)
		a.mu.Unlock(c)
		return
	}
	f.job = j
	j.fib = f
	w.current = j
	a.mu.Unlock(c)

	c.Charge(costs.ContextSwitch)
	f.th.SetCore(w.core)
	f.th.Unpark()
	// The fiber notifies completion under the worker's shard lock (the same
	// handshake as the online dispatcher).
	sh := a.shards[w.idx]
	for {
		intr := c.Park()
		if intr && a.terminating.Load() {
			return
		}
		sh.mu.Lock()
		reason := w.wakeReason
		w.wakeReason = wakeNone
		w.wakeJob = nil
		sh.mu.Unlock()
		if reason != wakeNone {
			break
		}
		if a.terminating.Load() {
			return
		}
	}
	now := c.Now()
	a.recordTaskError(j.err)
	a.mu.Lock(c)
	heldInst := j.accel
	accelName := ""
	if heldInst != NoAccel {
		ac := &a.accels[heldInst]
		accelName = ac.name
		ac.busy = false
		ac.holder = nil
		j.accel = NoAccel
	}
	a.rec.Record(trace.JobRecord{
		Task:     t.d.Name,
		TaskID:   int(t.id),
		Job:      j.taskSeq,
		Version:  int(j.version),
		Core:     w.core,
		Accel:    accelName,
		Release:  release,
		Start:    j.start,
		Finish:   now,
		Deadline: j.absDL,
		Missed:   now > j.absDL,
	})
	a.accountEnergy(j, heldInst)
	f.job = nil
	j.fib = nil
	a.pushFreeFib(f)
	a.freeJobLocked(c, j)
	w.current = nil
	a.mu.Unlock(c)
}
