package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/yasmin-rt/yasmin/internal/platform"
	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/trace"
)

// Common errors.
var (
	// ErrStarted is returned by declaration calls while the schedule runs:
	// the paper only allows altering the task set while stopped.
	ErrStarted = errors.New("core: schedule is running; stop it first")
	// ErrTerminated is returned from ExecCtx methods when the middleware is
	// cleaning up; task functions must propagate it.
	ErrTerminated = errors.New("core: middleware terminated")
	// ErrTooMany is returned when a static size limit is exceeded.
	ErrTooMany = errors.New("core: static size limit exceeded")
	// ErrMinInterarrival is returned by TaskActivate when a sporadic task is
	// activated faster than its declared minimum inter-arrival time.
	ErrMinInterarrival = errors.New("core: sporadic activation before minimum inter-arrival")
)

// App is one YASMIN middleware instance: the Go analogue of the library
// linked into the end-user program. All declaration methods must run before
// Start (or between Stop and a new Start, enabling the paper's multi-mode
// scheduling); Start spawns the scheduler and worker threads on the
// configured cores.
type App struct {
	cfg Config
	env rt.Env

	// mu protects the reconfiguration surface, the task graph (edges,
	// pending-data backlog), and accelerator arbitration. It is OFF the
	// steady-state scheduling path: releases, dispatch, execution and
	// isolated-task completion run under the per-shard leaf locks alone.
	// Scheduling-critical, so no blocking operation may run while it is held
	// (enforced by yasmin-vet's lockedblock analyzer).
	//yasmin:lockrank 2 nosleep
	mu rt.Lock

	tasks   []task
	ntasks  int
	accels  []accel
	naccels int
	topics  []topic // channels and pub-sub topics; one CID space
	ntopics int
	edges   []edge
	nedges  int

	// jobPool recycles through a lock-free Treiber freelist: freeJobHead
	// packs (generation<<32 | poolIdx+1), jobs link via job.nextFree, and
	// the generation counter defeats ABA. jobsLive counts in-flight jobs;
	// the drain and retire protocols poll it instead of scanning queues.
	jobPool     []job
	freeJobHead atomic.Uint64
	jobsLive    atomic.Int64

	workers []*workerState
	fibers  []*fiber
	// Fiber recycling uses the same lock-free freelist scheme as jobs.
	freeFibHead atomic.Uint64

	// Release shards: one per worker (ready queue + timer wheel + due
	// scratch behind one leaf lock; see releaseShard). dataPending queues
	// data-activated tasks whose inputs became ready outside the inline
	// producer-completion path; it is App.mu state, with dataPendingN
	// mirroring its length so the tick skips the App.mu phase when empty.
	shards       []*releaseShard
	dataPending  []*task
	dataPendingN atomic.Int32
	// slowDue is the scheduler's scratch for feedback-root releases (roots
	// with in-edges consume delay tokens, which is graph state) deferred to
	// the App.mu phase of the tick. schedDue/schedDueOK snapshot each
	// shard's next wheel deadline during phase 1 (scheduler-thread private).
	slowDue    []slowRelease
	schedDue   []time.Duration
	schedDueOK []bool

	// ticking is the tick seqlock: odd while a release pass is in flight.
	// A worker may retire only when stopping is set and it observes the
	// same even ticking value around a zero jobsLive load — that closes the
	// release-vs-retire race without App.mu. tickSeq numbers dispatch
	// passes for preemption-signal dedup.
	ticking atomic.Int64
	tickSeq atomic.Int64

	// Intrusive doubly-linked idle-worker list: dispatch pops exactly the
	// workers it wakes, O(jobs dispatched), instead of scanning all workers.
	// List membership under idleMu is the single source of truth for
	// idleness (there is no per-worker idle flag).
	//yasmin:lockrank 4 nosleep
	idleMu   sync.Mutex
	idleHead *workerState

	// view is the epoch-published immutable scheduling snapshot (schedView),
	// rebuilt at Start and at every reconfiguration commit; lock-free
	// readers (TaskActivate) load it to pre-validate before touching any
	// lock.
	view atomic.Pointer[schedView]

	// Sharded-scheduler counters (exported via SchedStats).
	steals         atomic.Int64
	stealMisses    atomic.Int64
	migrations     atomic.Int64
	idleWakes      atomic.Int64
	signalsSent    atomic.Int64
	signalsDeduped atomic.Int64
	viewPublishes  atomic.Int64

	started       atomic.Bool
	stopping      atomic.Bool
	terminating   atomic.Bool
	liveThreads   atomic.Int64
	workersLive   atomic.Int64
	schedLive     atomic.Int64
	fibersSpawned bool
	schedTh       rt.Thread

	// Live-reconfiguration state. Slot freelists recycle the fixed tables
	// across retire/admit cycles so mode ping-pong never exhausts the
	// static budgets; reconfigMu serialises whole transactions (declaration
	// tables are only mutated by a transaction holding it, plus a.mu for
	// the commit itself).
	// reconfigMu ranks strictly outside mu: a transaction may take mu while
	// holding reconfigMu (the commit), never the reverse (enforced by
	// yasmin-vet's lockorder analyzer).
	//yasmin:lockrank 1
	reconfigMu        rt.Lock
	epoch             atomic.Int64
	freeTaskSlots     []int
	freeEdgeSlots     []int
	freeTopicSlots    []int
	pendingDeadTopics []CID
	ntopicsA          atomic.Int32 // mirror of ntopics for lock-free bounds checks
	modes             map[string]ModePreset
	modeName          atomic.Pointer[string]

	mode    atomic.Uint32
	maskBit atomic.Uint32

	// boostSeen marks pool heads visited by one PIP chain-boost walk (cycle
	// guard); vselRest is the version-selection scratch for unaffordable
	// versions (orderByEnergy). Both are reused under the App lock so the
	// scheduling hot path never allocates.
	boostSeen []bool
	vselRest  []VID

	battery *platform.Battery
	meter   *platform.EnergyMeter

	rec *trace.Recorder
	ovh *trace.Overheads

	overruns   atomic.Int64
	taskErrors atomic.Int64
	firstError atomic.Pointer[error] // first task-function error; read lock-free by FirstError

	// schedPeriodNs is the scheduler tick period in nanoseconds; atomic
	// because a committed reconfiguration retunes it while the scheduler
	// loop reads it every tick.
	schedPeriodNs atomic.Int64
	startTime     time.Duration
	// jobSeq numbers releases globally; atomic because phase-1 ticks,
	// TaskActivate and App.mu release paths allocate concurrently.
	jobSeq atomic.Int64

	offTable *OfflineTable
}

// New builds an App for the given configuration and environment. Everything
// the scheduling path touches is allocated here.
func New(cfg Config, env rt.Env) (*App, error) {
	if env == nil {
		return nil, fmt.Errorf("core: nil environment")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &App{cfg: cfg, env: env}
	a.mu = env.NewLock(cfg.Lock.rtKind())
	a.reconfigMu = env.NewLock(cfg.Lock.rtKind())
	a.tasks = make([]task, cfg.MaxTasks)
	for i := range a.tasks {
		a.tasks[i].versions = make([]version, 0, cfg.MaxVersionsPerTask)
	}
	a.accels = make([]accel, cfg.MaxAccels)
	for i := range a.accels {
		a.accels[i].waiters = make([]*job, 0, cfg.MaxPendingJobs)
	}
	a.boostSeen = make([]bool, cfg.MaxAccels)
	a.vselRest = make([]VID, 0, cfg.MaxVersionsPerTask)
	a.topics = make([]topic, cfg.MaxChannels)
	a.edges = make([]edge, cfg.MaxChannels)
	a.jobPool = make([]job, cfg.MaxPendingJobs)
	// One shard (ready queue + wheel + leaf lock) per worker, regardless of
	// mapping: global routes tasks by id modulo shard count and lets idle
	// workers steal; partitioned routes by VirtCore with no stealing. Each
	// queue holds the whole pool in the worst case, so migrations and
	// steals can never overflow a destination queue.
	nq := cfg.Workers
	a.shards = make([]*releaseShard, nq)
	for i := range a.shards {
		a.shards[i] = &releaseShard{
			q:   newReadyQueue(cfg.MaxPendingJobs),
			due: make([]*task, 0, cfg.MaxTasks),
		}
		a.shards[i].headPrio.Store(noRunPrio)
	}
	a.slowDue = make([]slowRelease, 0, cfg.MaxTasks)
	a.schedDue = make([]time.Duration, nq)
	a.schedDueOK = make([]bool, nq)
	a.dataPending = make([]*task, 0, cfg.MaxTasks)
	a.workers = make([]*workerState, cfg.Workers)
	for i := range a.workers {
		a.workers[i] = &workerState{
			idx:       i,
			core:      cfg.WorkerCores[i],
			preempted: make([]*job, 0, cfg.MaxPendingJobs),
			vselOrder: make([]VID, 0, cfg.MaxVersionsPerTask),
			vselRest:  make([]VID, 0, cfg.MaxVersionsPerTask),
		}
	}
	nfib := cfg.Workers + cfg.MaxPendingJobs
	a.fibers = make([]*fiber, nfib)
	a.Init()
	return a, nil
}

// Init (re)initialises the middleware structures — the paper's yas_init().
// It clears all declarations; it must not be called while started.
func (a *App) Init() {
	a.ntasks = 0
	a.naccels = 0
	a.ntopics = 0
	a.ntopicsA.Store(0)
	a.nedges = 0
	a.freeJobHead.Store(0)
	for i := len(a.jobPool) - 1; i >= 0; i-- {
		resetJob(&a.jobPool[i], i)
		a.pushFreeJob(&a.jobPool[i])
	}
	a.jobsLive.Store(0)
	a.epoch.Store(0)
	a.freeTaskSlots = a.freeTaskSlots[:0]
	a.freeEdgeSlots = a.freeEdgeSlots[:0]
	a.freeTopicSlots = a.freeTopicSlots[:0]
	a.pendingDeadTopics = a.pendingDeadTopics[:0]
	a.modes = nil
	a.modeName.Store(nil)
	a.mode.Store(0)
	a.maskBit.Store(^uint32(0))
	a.rec = trace.NewRecorder(a.cfg.RecordJobs)
	if a.cfg.Telemetry != nil {
		// Stream every record (job completions, reconfig commits,
		// retirements, accel arbitration) into the telemetry pipeline;
		// the forward happens lock-free on the record paths.
		a.rec.SetStream(a.cfg.Telemetry)
	}
	a.ovh = trace.NewOverheads()
	a.overruns.Store(0)
	a.taskErrors.Store(0)
	a.firstError.Store(nil)
	a.ticking.Store(0)
	a.tickSeq.Store(0)
	a.dataPendingN.Store(0)
	a.view.Store(nil)
	a.steals.Store(0)
	a.stealMisses.Store(0)
	a.migrations.Store(0)
	a.idleWakes.Store(0)
	a.signalsSent.Store(0)
	a.signalsDeduped.Store(0)
	a.viewPublishes.Store(0)
}

// Env returns the execution environment.
func (a *App) Env() rt.Env { return a.env }

// Started reports whether the schedule is currently running.
func (a *App) Started() bool { return a.started.Load() }

// NumTasks returns the number of declared tasks.
func (a *App) NumTasks() int { return a.ntasks }

// NumChannels returns the number of declared channels and topics.
func (a *App) NumChannels() int { return a.ntopics }

// NumAccels returns the number of declared accelerators.
func (a *App) NumAccels() int { return a.naccels }

// Config returns a copy of the effective configuration.
func (a *App) Config() Config { return a.cfg }

// Recorder returns the job/metric recorder of the current run.
func (a *App) Recorder() *trace.Recorder { return a.rec }

// Overheads returns the middleware-overhead samples of the current run.
func (a *App) Overheads() *trace.Overheads { return a.ovh }

// Overruns returns the number of dropped activations (pool or queue
// exhaustion, graph backlog overflow).
func (a *App) Overruns() int64 { return a.overruns.Load() }

// TaskErrors returns the number of task-function errors observed.
func (a *App) TaskErrors() int64 { return a.taskErrors.Load() }

// FirstError returns the first task-function error, if any.
func (a *App) FirstError() error {
	if p := a.firstError.Load(); p != nil {
		return *p
	}
	return nil
}

// recordTaskError counts a task-function failure and keeps the first one;
// termination sentinels are not failures. Shared by the online and offline
// completion paths.
func (a *App) recordTaskError(err error) {
	if err == nil || errors.Is(err, ErrTerminated) {
		return
	}
	a.taskErrors.Add(1)
	a.firstError.CompareAndSwap(nil, &err)
}

// SetBattery attaches a battery model used by SelectEnergy and drained by
// job execution.
func (a *App) SetBattery(b *platform.Battery) { a.battery = b }

// SetMeter attaches an energy meter recording per-version consumption.
func (a *App) SetMeter(m *platform.EnergyMeter) { a.meter = m }

// SetMode switches the execution mode (SelectMode); mode is a small integer
// < 32 matched against VSelect.Modes bitmasks. Callable at runtime: the
// paper's multi-security-mode example switches modes while running.
func (a *App) SetMode(mode uint32) { a.mode.Store(mode) }

// Mode returns the current execution mode.
func (a *App) Mode() uint32 { return a.mode.Load() }

// SetPermissionMask sets the bitmask for SelectBitmask.
func (a *App) SetPermissionMask(mask uint32) { a.maskBit.Store(mask) }

// validateTData checks declaration-time task parameters (shared by TaskDecl
// and the reconfiguration transaction).
func validateTData(d TData) error {
	if d.Name == "" {
		return fmt.Errorf("core: task needs a name")
	}
	if d.Period < 0 || d.Deadline < 0 || d.ReleaseOffset < 0 {
		return fmt.Errorf("core: task %s: negative timing parameter", d.Name)
	}
	return nil
}

// allocTaskSlot reserves a task slot, recycling retired slots before growing
// the high-water mark. Caller holds a.mu when the schedule may be running.
func (a *App) allocTaskSlot() (*task, TID, error) {
	if n := len(a.freeTaskSlots); n > 0 {
		idx := a.freeTaskSlots[n-1]
		a.freeTaskSlots = a.freeTaskSlots[:n-1]
		t := &a.tasks[idx]
		resetTaskSlot(t, TID(idx))
		return t, TID(idx), nil
	}
	if a.ntasks == len(a.tasks) {
		return nil, -1, fmt.Errorf("%w: MaxTasks=%d", ErrTooMany, len(a.tasks))
	}
	id := TID(a.ntasks)
	t := &a.tasks[a.ntasks]
	resetTaskSlot(t, id)
	a.ntasks++
	return t, id, nil
}

// resetTaskSlot wipes a task slot for a new incarnation, keeping slice
// capacity and — critically — the wheelGen counter: release-wheel entries of
// the previous incarnation are invalidated by generation, so the counter
// must stay monotonic across slot recycling or a stale entry could match a
// reused generation and double-release the new task.
func resetTaskSlot(t *task, id TID) {
	// Field-wise reset: the struct carries atomics and cannot be copied.
	t.id = id
	t.d = TData{}
	t.versions = t.versions[:0]
	t.state = taskAdmitted
	t.shard.Store(0)
	t.live.Store(0)
	t.draining.Store(false)
	t.retireEpoch = 0
	t.outEdges = t.outEdges[:0]
	t.inEdges = t.inEdges[:0]
	t.effDeadline = 0
	t.root = false
	t.nextRelease = 0
	t.lastActivation = 0
	t.everActivated = false
	t.jobSeq = 0
	t.staticPrio = 0
	t.subTopics = t.subTopics[:0]
	t.pubTopics = t.pubTopics[:0]
	t.hasIns = false
	t.fastSel = false
	t.fastDone = false
	t.wheelGen.Add(1)
	t.wheelTick = 0
	t.wheelLive = false
	t.wheelShard = 0
	t.pendingData = false
}

// TaskDecl declares a task — the paper's yas_task_decl. The task has no
// versions yet; add at least one with VersionDecl before Start.
func (a *App) TaskDecl(d TData) (TID, error) {
	if a.started.Load() {
		return -1, ErrStarted
	}
	if err := validateTData(d); err != nil {
		return -1, err
	}
	t, id, err := a.allocTaskSlot()
	if err != nil {
		return -1, err
	}
	t.d = d
	return id, nil
}

// VersionDecl adds an implementation to a task — yas_version_decl. args is
// passed to fn on every job (the C API's f_static_args).
func (a *App) VersionDecl(t TID, fn TaskFunc, args any, props VSelect) (VID, error) {
	if a.started.Load() {
		return -1, ErrStarted
	}
	tk, err := a.taskByID(t)
	if err != nil {
		return -1, err
	}
	if fn == nil {
		return -1, fmt.Errorf("core: task %s: nil version function", tk.d.Name)
	}
	if len(tk.versions) == cap(tk.versions) {
		return -1, fmt.Errorf("%w: MaxVersionsPerTask=%d", ErrTooMany, cap(tk.versions))
	}
	id := VID(len(tk.versions))
	tk.versions = append(tk.versions, version{id: id, fn: fn, args: args, props: props, accel: NoAccel})
	return id, nil
}

// HwAccelDecl declares a hardware accelerator — yas_hwaccel_decl. If the
// platform knows an accelerator with this name its speed/power are used.
func (a *App) HwAccelDecl(name string) (HID, error) {
	return a.HwAccelDeclPool(name, 1)
}

// HwAccelDeclPool declares a pool of count interchangeable accelerator
// instances (e.g. two identical DSP cores). The returned HID is the pool
// head: version bindings (HwAccelUse) reference it, version selection takes
// any free instance, and contention parks jobs on one pool-wide
// priority-ordered waiter list. Instances beyond the head are named
// "name#1", "name#2", ... and each consumes one MaxAccels slot.
func (a *App) HwAccelDeclPool(name string, count int) (HID, error) {
	if a.started.Load() {
		return -1, ErrStarted
	}
	if name == "" {
		return -1, fmt.Errorf("core: accelerator needs a name")
	}
	if count < 1 {
		return -1, fmt.Errorf("core: accelerator pool %s needs count >= 1, got %d", name, count)
	}
	if a.naccels+count > len(a.accels) {
		return -1, fmt.Errorf("%w: MaxAccels=%d", ErrTooMany, len(a.accels))
	}
	platIdx := -1
	if pl := a.env.Platform(); pl != nil {
		if acc, err := pl.AccelByName(name); err == nil {
			platIdx = acc.ID
		}
	}
	head := HID(a.naccels)
	for k := 0; k < count; k++ {
		ac := &a.accels[a.naccels]
		ac.id = HID(a.naccels)
		ac.name = name
		if k > 0 {
			ac.name = fmt.Sprintf("%s#%d", name, k)
		}
		ac.platIdx = platIdx
		ac.busy = false
		ac.holder = nil
		ac.group = head
		ac.members = nil
		ac.waiters = ac.waiters[:0]
		a.naccels++
	}
	hd := &a.accels[head]
	hd.members = hd.members[:0]
	for k := 0; k < count; k++ {
		hd.members = append(hd.members, head+HID(k))
	}
	return head, nil
}

// HwAccelUse declares that version v of task t uses accelerator h —
// yas_hwaccel_use. The scheduler uses this to steer version selection and
// apply PIP on contention.
func (a *App) HwAccelUse(t TID, v VID, h HID) error {
	if a.started.Load() {
		return ErrStarted
	}
	tk, err := a.taskByID(t)
	if err != nil {
		return err
	}
	if int(v) < 0 || int(v) >= len(tk.versions) {
		return fmt.Errorf("core: task %s has no version %d", tk.d.Name, v)
	}
	if int(h) < 0 || int(h) >= a.naccels {
		return fmt.Errorf("core: no accelerator %d", h)
	}
	// Bindings are normalised to the pool head: acquisition then takes any
	// free instance of the pool.
	tk.versions[v].accel = a.poolHead(h)
	return nil
}

// ChannelDecl declares a FIFO channel of the given capacity —
// yas_channel_decl. Capacity zero declares a pure precedence channel (the
// paper's size-0 fork->left channel): it carries activation tokens only.
// A channel is implemented as a Reject-policy topic with a single anonymous
// cursor, so Push/Pop and Publish/Take interoperate on the same CID.
func (a *App) ChannelDecl(name string, capacity int) (CID, error) {
	if a.started.Load() {
		return -1, ErrStarted
	}
	if capacity < 0 {
		return -1, fmt.Errorf("core: channel %s: negative capacity", name)
	}
	return a.declTopic(name, TopicOpts{Capacity: capacity, Policy: Reject})
}

// ChannelConnect connects src to dst through channel c —
// yas_channel_connect. The connection is also a precedence edge: dst (if
// non-periodic) is activated by the scheduler once every input edge has
// data.
func (a *App) ChannelConnect(src, dst TID, c CID) error {
	return a.connect(src, dst, c, 0)
}

// ChannelConnectDelayed connects src to dst with `delay` initial tokens on
// the edge — the paper's future-work "delay tokens mechanism, thus relaxing
// the acyclic constraint in graph-based task models" (Section 7). A
// consumer can fire `delay` times before its producer ever completes, and
// back edges carrying at least one delay token are permitted: the classic
// SDF feedback-loop construction.
func (a *App) ChannelConnectDelayed(src, dst TID, c CID, delay int) error {
	if delay < 0 {
		return fmt.Errorf("core: negative delay token count %d", delay)
	}
	if delay >= a.cfg.GraphInstanceCap {
		return fmt.Errorf("%w: %d delay tokens with GraphInstanceCap=%d",
			ErrTooMany, delay, a.cfg.GraphInstanceCap)
	}
	return a.connect(src, dst, c, delay)
}

func (a *App) connect(src, dst TID, c CID, delay int) error {
	if a.started.Load() {
		return ErrStarted
	}
	if _, err := a.taskByID(src); err != nil {
		return err
	}
	if _, err := a.taskByID(dst); err != nil {
		return err
	}
	if src == dst {
		return fmt.Errorf("core: channel self-loop on task %d", src)
	}
	if int(c) < 0 || int(c) >= a.ntopics {
		return fmt.Errorf("core: no channel %d", c)
	}
	if len(a.freeEdgeSlots) == 0 && a.nedges == len(a.edges) {
		return fmt.Errorf("%w: MaxChannels=%d edges", ErrTooMany, len(a.edges))
	}
	e := a.allocEdgeSlot()
	*e = edge{src: src, dst: dst, ch: c, initial: delay, stamps: e.stamps}
	if cap(e.stamps) < a.cfg.GraphInstanceCap {
		e.stamps = make([]time.Duration, a.cfg.GraphInstanceCap)
	} else {
		e.stamps = e.stamps[:a.cfg.GraphInstanceCap]
	}
	e.head, e.count, e.tokens = 0, 0, 0
	return nil
}

// SetOfflineTable installs the pre-computed dispatch table for
// MappingOffline.
func (a *App) SetOfflineTable(t *OfflineTable) error {
	if a.started.Load() {
		return ErrStarted
	}
	if a.cfg.Mapping != MappingOffline {
		return fmt.Errorf("core: offline table requires MappingOffline")
	}
	if err := t.validate(a); err != nil {
		return err
	}
	a.offTable = t
	return nil
}

func (a *App) taskByID(t TID) (*task, error) {
	if int(t) < 0 || int(t) >= a.ntasks {
		return nil, fmt.Errorf("core: no task %d", t)
	}
	tk := &a.tasks[t]
	if tk.state == taskRetired || tk.state == taskStaged {
		return nil, fmt.Errorf("core: no task %d (slot %s)", t, tk.state)
	}
	return tk, nil
}

// taskIDByName returns the most recently declared non-retired task with the
// given name, or -1. Draining incarnations are only returned when no
// running/admitted task holds the name (name reuse across a drain).
func (a *App) taskIDByName(name string) TID {
	best := TID(-1)
	for i := 0; i < a.ntasks; i++ {
		t := &a.tasks[i]
		if t.d.Name != name {
			continue
		}
		switch t.state {
		case taskAdmitted, taskRunning:
			best = t.id
		case taskDraining:
			if best < 0 {
				best = t.id
			}
		}
	}
	return best
}

// TaskIDByName returns the TID of the named live task, or -1. Like the other
// declaration-surface accessors it must not race a concurrent Reconfigure;
// call it from declaration time, task code, or after the run.
func (a *App) TaskIDByName(name string) TID { return a.taskIDByName(name) }

// Epoch returns the number of committed reconfiguration transactions.
func (a *App) Epoch() int { return int(a.epoch.Load()) }

// ModeName returns the name of the last mode preset switched to ("" before
// any SwitchMode).
func (a *App) ModeName() string {
	if p := a.modeName.Load(); p != nil {
		return *p
	}
	return ""
}

// prioKeyOf computes the static part of a task's priority key.
func (a *App) prioKeyOf(t *task) int64 {
	switch a.cfg.Priority {
	case PriorityRM:
		return int64(t.d.Period)
	case PriorityDM:
		return int64(t.effDeadline)
	case PriorityUser:
		return int64(t.d.Priority)
	default: // EDF: dynamic, computed at release
		return 0
	}
}

// resolve finishes the declaration phase: effective deadlines, root flags,
// static priorities, and structural validation. Called by Start. Tasks left
// draining by a reconfiguration whose jobs a previous Cleanup abandoned are
// force-retired here (their threads are gone); retired slots are skipped.
func (a *App) resolve() error {
	for i := 0; i < a.ntasks; i++ {
		t := &a.tasks[i]
		if t.state == taskDraining {
			t.live.Store(0)
			a.finishRetireLocked(t, a.env.Now())
		}
	}
	if err := a.rebuildGraphLocked(); err != nil {
		return err
	}
	for i := 0; i < a.ntasks; i++ {
		t := &a.tasks[i]
		if t.state == taskRetired {
			continue
		}
		if err := a.deriveTaskLocked(t); err != nil {
			return err
		}
		t.nextRelease = 0
		t.lastActivation = 0
		t.everActivated = false
		t.jobSeq = 0
		t.live.Store(0)
		t.draining.Store(false)
	}
	a.resolveTopics()
	return nil
}

// rebuildGraphLocked rebuilds the adjacency lists over alive edges and
// re-checks acyclicity. Shared by resolve (Start) and reconfiguration
// commits.
func (a *App) rebuildGraphLocked() error {
	for i := 0; i < a.ntasks; i++ {
		t := &a.tasks[i]
		t.outEdges = t.outEdges[:0]
		t.inEdges = t.inEdges[:0]
	}
	for i := 0; i < a.nedges; i++ {
		e := &a.edges[i]
		if e.dead {
			continue
		}
		a.tasks[e.src].outEdges = append(a.tasks[e.src].outEdges, e)
		a.tasks[e.dst].inEdges = append(a.tasks[e.dst].inEdges, e)
	}
	// Cycle check over the edge relation.
	return a.checkAcyclic()
}

// deriveTaskLocked computes one task's derived scheduling state (root flag,
// effective deadline, static priority) and validates its structure. The
// adjacency lists must be current.
func (a *App) deriveTaskLocked(t *task) error {
	if len(t.versions) == 0 {
		return fmt.Errorf("core: task %s has no version", t.d.Name)
	}
	// Derived fields are shard-guarded (the release tick reads them under
	// the home shard lock, without App.mu), so rewriting them for a new
	// epoch takes that lock on top of App.mu (rank 2 -> 3). A home move
	// (partitioned retune changing VirtCore) is published under the OLD
	// home's lock, after dropping any wheel entry still bucketed there —
	// the commit's re-arm pass re-inserts under the new home.
	sh := a.shards[t.shard.Load()]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	t.root = t.d.Period > 0 || t.d.Sporadic || len(t.inEdges) == 0
	for _, e := range t.inEdges {
		if t.d.Period > 0 && e.initial == 0 {
			return fmt.Errorf("core: task %s is data-activated but has a period; only root nodes carry periods (feedback into a periodic root needs delay tokens)", t.d.Name)
		}
	}
	t.effDeadline = t.d.Deadline
	if t.effDeadline == 0 {
		switch {
		case t.d.Period > 0:
			t.effDeadline = t.d.Period // implicit
		case len(t.inEdges) > 0:
			t.effDeadline = a.graphDeadlineFor(t) // inherit from graph roots
		case a.cfg.Mapping == MappingOffline && a.offTable != nil:
			// Table-driven tasks fall back to the table cycle: the
			// off-line synthesiser already proved their placements meet
			// the real deadlines.
			t.effDeadline = a.offTable.Cycle
		default:
			return fmt.Errorf("core: aperiodic task %s needs an explicit deadline", t.d.Name)
		}
	}
	if a.cfg.Mapping == MappingPartitioned {
		if t.d.VirtCore < 0 || t.d.VirtCore >= a.cfg.Workers {
			return fmt.Errorf("core: task %s: VirtCore %d out of [0,%d) for partitioned mapping",
				t.d.Name, t.d.VirtCore, a.cfg.Workers)
		}
	}
	t.staticPrio = a.prioKeyOf(t)
	t.hasIns = len(t.inEdges) > 0
	t.fastDone = len(t.inEdges) == 0 && len(t.outEdges) == 0
	t.fastSel = a.cfg.VersionSelect != SelectUser
	for i := range t.versions {
		if t.versions[i].accel != NoAccel {
			t.fastSel = false
			break
		}
	}
	if nsi := int32(a.homeShardOf(t)); nsi != t.shard.Load() {
		a.wheelRemoveShardLocked(t)
		t.shard.Store(nsi)
	}
	return nil
}

// homeShardOf routes a task to its home release shard: its virtual core
// under the partitioned mapping, id modulo shard count under global.
func (a *App) homeShardOf(t *task) int {
	if a.cfg.Mapping == MappingPartitioned {
		if t.d.VirtCore >= 0 && t.d.VirtCore < len(a.shards) {
			return t.d.VirtCore
		}
		return 0
	}
	return int(t.id) % len(a.shards)
}

// graphDeadlineFor walks back to the graph roots and returns the smallest
// root relative deadline (conservative).
func (a *App) graphDeadlineFor(t *task) time.Duration {
	best := time.Duration(0)
	seen := make(map[TID]bool, a.ntasks)
	var walk func(x *task)
	walk = func(x *task) {
		if seen[x.id] {
			return
		}
		seen[x.id] = true
		if len(x.inEdges) == 0 {
			d := x.d.Deadline
			if d == 0 {
				d = x.d.Period
			}
			if d > 0 && (best == 0 || d < best) {
				best = d
			}
			return
		}
		for _, e := range x.inEdges {
			walk(&a.tasks[e.src])
		}
	}
	walk(t)
	if best == 0 {
		best = time.Second // degenerate: no rooted period found
	}
	return best
}

func (a *App) checkAcyclic() error {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, a.ntasks)
	var visit func(i int) error
	visit = func(i int) error {
		color[i] = grey
		for _, e := range a.tasks[i].outEdges {
			if e.initial > 0 {
				// Delay tokens break the cycle: the edge does not
				// constrain the first e.initial activations.
				continue
			}
			switch color[e.dst] {
			case grey:
				return fmt.Errorf("core: channel graph has a cycle through task %s", a.tasks[e.dst].d.Name)
			case white:
				if err := visit(int(e.dst)); err != nil {
					return err
				}
			}
		}
		color[i] = black
		return nil
	}
	for i := 0; i < a.ntasks; i++ {
		if color[i] == white {
			if err := visit(i); err != nil {
				return err
			}
		}
	}
	return nil
}

// schedGCD derives the scheduler thread period: the GCD of all declared
// periods (Section 3.3). Non-zero release offsets join the GCD so that
// offset releases also fall on the scheduler's activation grid.
func (a *App) schedGCD() time.Duration {
	var g time.Duration
	acc := func(d time.Duration) {
		if d <= 0 {
			return
		}
		if g == 0 {
			g = d
		} else {
			g = gcdDur(g, d)
		}
	}
	for i := 0; i < a.ntasks; i++ {
		t := &a.tasks[i]
		if t.d.Sporadic || !(t.state == taskAdmitted || t.state == taskRunning) {
			continue
		}
		acc(t.d.Period)
		acc(t.d.ReleaseOffset)
	}
	if g == 0 {
		g = time.Millisecond
	}
	return g
}

func gcdDur(x, y time.Duration) time.Duration {
	for y != 0 {
		x, y = y, x%y
	}
	return x
}

// resetJob wipes a job slot for a new incarnation. Field-wise: the struct
// carries atomics and cannot be copied.
func resetJob(j *job, idx int) {
	j.t = nil
	j.seq, j.taskSeq = 0, 0
	j.state.Store(jobFree)
	j.release, j.stamp, j.absDL = 0, 0, 0
	j.basePrio = 0
	j.effPrio.Store(0)
	j.version = 0
	j.accel, j.nested, j.waitingOn = NoAccel, NoAccel, NoAccel
	j.midWait = false
	j.fib = nil
	j.worker.Store(-1)
	j.preempts = 0
	j.started, j.fnDone = false, false
	j.start, j.computed = 0, 0
	j.err = nil
	j.poolIdx = idx
	j.heapIdx = -1
	j.shardIdx.Store(-1)
	j.fastSel, j.fastPath = false, false
	j.pendingCharge = 0
}

// pushFreeJob returns a job slot to the lock-free pool freelist. The slot
// must not be touched after the CAS succeeds: it may be re-allocated
// immediately by another thread.
//
//yasmin:noalloc
func (a *App) pushFreeJob(j *job) {
	idx := uint64(uint32(j.poolIdx + 1))
	for {
		h := a.freeJobHead.Load()
		j.nextFree.Store(int32(uint32(h)) - 1)
		nh := (h>>32+1)<<32 | idx
		if a.freeJobHead.CompareAndSwap(h, nh) {
			return
		}
	}
}

// allocJob pops a job from the pool freelist lock-free; nil when exhausted
// (counted by caller). The generation counter in the packed head defeats
// ABA on concurrent pop/push/pop interleavings.
//
//yasmin:noalloc
func (a *App) allocJob() *job {
	for {
		h := a.freeJobHead.Load()
		idx := int(int32(uint32(h))) - 1
		if idx < 0 {
			return nil
		}
		j := &a.jobPool[idx]
		next := uint64(uint32(j.nextFree.Load() + 1))
		nh := (h>>32+1)<<32 | next
		if !a.freeJobHead.CompareAndSwap(h, nh) {
			continue
		}
		if j.state.Load() != jobFree {
			panic(fmt.Sprintf("core: allocJob handing out live job %d (state=%d, task=%v)",
				idx, j.state.Load(), j.t != nil))
		}
		resetJob(j, idx)
		a.jobsLive.Add(1)
		return j
	}
}

// recycleJobUnreleased returns a just-allocated job that never became
// visible to any scheduler structure (ready-queue overflow). Safe under any
// lock: touches only atomics.
//
//yasmin:noalloc
func (a *App) recycleJobUnreleased(j *job) {
	j.state.Store(jobFree)
	j.t = nil
	a.pushFreeJob(j)
	if a.jobsLive.Add(-1) == 0 && a.stopping.Load() {
		a.wakeAllWorkers() //yasmin:alloc-ok stop-drain wake, only on the last-job edge of a stop
	}
}

// freeJobLocked recycles a finished (or never-run) job; caller holds App.mu.
// The slow completion paths, accelerator requeue overflow and the offline
// dispatcher use this variant so draining tasks retire inline.
func (a *App) freeJobLocked(c rt.Ctx, j *job) {
	if j.state.Load() == jobFree {
		panic(fmt.Sprintf("core: double free of job %d", j.poolIdx))
	}
	t := j.t
	j.state.Store(jobFree)
	j.t = nil
	j.fib = nil
	a.pushFreeJob(j)
	var live int32
	if t != nil {
		live = t.live.Add(-1)
	}
	if a.jobsLive.Add(-1) == 0 && a.stopping.Load() {
		a.wakeAllWorkers()
	}
	if t != nil && live == 0 && t.state == taskDraining {
		a.finishRetireLocked(t, c.Now())
	}
}

// freeJob recycles a finished job on the lock-free completion path: the
// caller holds NO locks, and only when the task is draining does retirement
// fall back to App.mu (with a re-check under the lock).
func (a *App) freeJob(c rt.Ctx, j *job) {
	if j.state.Load() == jobFree {
		panic(fmt.Sprintf("core: double free of job %d", j.poolIdx))
	}
	t := j.t
	j.state.Store(jobFree)
	j.t = nil
	j.fib = nil
	a.pushFreeJob(j)
	live := t.live.Add(-1)
	if a.jobsLive.Add(-1) == 0 && a.stopping.Load() {
		a.wakeAllWorkers()
	}
	if live == 0 && t.draining.Load() {
		a.mu.Lock(c)
		if t.state == taskDraining && t.live.Load() == 0 {
			a.finishRetireLocked(t, c.Now())
		}
		a.mu.Unlock(c)
	}
}

// finishRetireLocked completes a draining task's retirement: the last
// in-flight job finished, so the task's topic endpoints are scrubbed (its
// cursors no longer hold back the shared buffers), its slot returns to the
// freelist, and topics waiting on it may die. Only the task's own endpoint
// lists (pubTopics/subTopics) are visited — retirement cost is O(endpoints
// of the retiring task), not O(topics declared), keeping cursor scans off
// the reconfiguration hot path. Caller holds the lock.
func (a *App) finishRetireLocked(t *task, now time.Duration) {
	a.setTaskStateLocked(t, taskRetired)
	t.draining.Store(false)
	for _, c := range t.pubTopics {
		tp := &a.topics[c]
		if tp.dead {
			continue
		}
		changed := false
		for k := len(tp.pubs) - 1; k >= 0; k-- {
			if tp.pubs[k] == t.id {
				tp.pubs = append(tp.pubs[:k], tp.pubs[k+1:]...)
				changed = true
			}
		}
		if changed {
			tp.publishView()
		}
	}
	for _, c := range t.subTopics {
		tp := &a.topics[c]
		if tp.dead {
			continue
		}
		changed := false
		for k := len(tp.subs) - 1; k >= 0; k-- {
			if tp.subs[k].task == t.id {
				tp.subs = append(tp.subs[:k], tp.subs[k+1:]...)
				changed = true
			}
		}
		if !changed {
			continue
		}
		if len(tp.subs) == 0 {
			// The last registered subscriber is gone: its unconsumed
			// backlog is unclaimable, so discard it and park the
			// anonymous cursor at the tail — a stale cursor must not
			// block surviving publishers forever.
			tp.anon = tp.tail
		}
		if tp.buf != nil {
			tp.gc() // retired cursors no longer hold entries back
		}
		tp.publishView()
	}
	t.subTopics = t.subTopics[:0]
	t.pubTopics = t.pubTopics[:0]
	a.freeTaskSlots = append(a.freeTaskSlots, int(t.id))
	a.rec.RecordRetire(trace.RetireEvent{Task: t.d.Name, Epoch: t.retireEpoch, At: now})
	a.reapDeadTopicsLocked()
}

// reapDeadTopicsLocked kills pending-removal topics whose endpoints have all
// retired. Caller holds the lock.
func (a *App) reapDeadTopicsLocked() {
	kept := a.pendingDeadTopics[:0]
	for _, c := range a.pendingDeadTopics {
		tp := &a.topics[c]
		if len(tp.pubs) == 0 && len(tp.subs) == 0 {
			a.killTopicLocked(tp)
		} else {
			kept = append(kept, c)
		}
	}
	a.pendingDeadTopics = kept
}
