package core

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/trace"
)

// accelEvents filters the recorded arbitration events by kind.
func accelEvents(app *App, kind trace.AccelEventKind) []trace.AccelEvent {
	var out []trace.AccelEvent
	for _, e := range app.Recorder().AccelEvents() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// TestAccelPoolTakesAnyFreeInstance: a 2-instance pool serves two
// simultaneous jobs in parallel; a third contender parks. Instance names
// carry the pool name with a #k suffix.
func TestAccelPoolTakesAnyFreeInstance(t *testing.T) {
	r := newRig(t, Config{Workers: 3, Priority: PriorityEDF}, nil)
	dsp, err := r.app.HwAccelDeclPool("dsp", 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.app.NumAccels(); got != 2 {
		t.Fatalf("NumAccels = %d, want 2 instances", got)
	}
	if got := r.app.AccelPoolSize(dsp); got != 2 {
		t.Fatalf("AccelPoolSize = %d, want 2", got)
	}
	for i := 0; i < 3; i++ {
		tid, err := r.app.TaskDecl(TData{Name: fmt.Sprintf("t%d", i), Period: ms(50)})
		if err != nil {
			t.Fatal(err)
		}
		vid, err := r.app.VersionDecl(tid, func(x *ExecCtx, _ any) error {
			return x.AccelSection(ms(10))
		}, nil, VSelect{WCET: ms(10), AccelCS: ms(10)})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.app.HwAccelUse(tid, vid, dsp); err != nil {
			t.Fatal(err)
		}
	}
	r.runMain(t, ms(45), nil)

	instances := map[string]bool{}
	for _, e := range accelEvents(r.app, trace.AccelAcquire) {
		instances[e.Accel] = true
	}
	if !instances["dsp"] || !instances["dsp#1"] {
		t.Errorf("acquired instances %v, want both dsp and dsp#1 busy in parallel", instances)
	}
	if parks := accelEvents(r.app, trace.AccelPark); len(parks) == 0 {
		t.Error("third contender never parked: pool admitted more jobs than instances")
	}
	for i := 0; i < 3; i++ {
		st := r.app.Recorder().Task(fmt.Sprintf("t%d", i))
		if st == nil || st.Jobs == 0 {
			t.Errorf("t%d never ran", i)
		}
	}
}

// TestPIPChainPropagationThreeDeep is the regression test for one-hop
// boosting: urgent parks on pool A whose holder waits on B whose holder
// waits on C. The boost must reach all three holders (the pre-fix code
// stopped at A's holder), and the chain must then unwind so every job
// completes.
func TestPIPChainPropagationThreeDeep(t *testing.T) {
	r := newRig(t, Config{Workers: 3, Priority: PriorityUser, Preemption: true}, nil)
	accA, _ := r.app.HwAccelDecl("a")
	accB, _ := r.app.HwAccelDecl("b")
	accC, _ := r.app.HwAccelDecl("c")

	// tC (least urgent) holds C for a long section.
	tC, _ := r.app.TaskDecl(TData{Name: "holdC", Period: ms(200), Priority: 40})
	vC, _ := r.app.VersionDecl(tC, func(x *ExecCtx, _ any) error {
		return x.AccelSection(ms(20))
	}, nil, VSelect{WCET: ms(20)})
	if err := r.app.HwAccelUse(tC, vC, accC); err != nil {
		t.Fatal(err)
	}
	// tB holds B (version-bound) and parks on C mid-job.
	tB, _ := r.app.TaskDecl(TData{Name: "holdB", Period: ms(200), Priority: 30, ReleaseOffset: ms(1)})
	vB, _ := r.app.VersionDecl(tB, func(x *ExecCtx, _ any) error {
		if err := x.Compute(ms(1)); err != nil {
			return err
		}
		return x.AccelSectionOn(accC, ms(3))
	}, nil, VSelect{WCET: ms(4)})
	if err := r.app.HwAccelUse(tB, vB, accB); err != nil {
		t.Fatal(err)
	}
	// tA holds A (version-bound) and parks on B mid-job.
	tA, _ := r.app.TaskDecl(TData{Name: "holdA", Period: ms(200), Priority: 20, ReleaseOffset: ms(3)})
	vA, _ := r.app.VersionDecl(tA, func(x *ExecCtx, _ any) error {
		if err := x.Compute(ms(1)); err != nil {
			return err
		}
		return x.AccelSectionOn(accB, ms(3))
	}, nil, VSelect{WCET: ms(4)})
	if err := r.app.HwAccelUse(tA, vA, accA); err != nil {
		t.Fatal(err)
	}
	// urgent wants A: its park must boost holdA, holdB AND holdC.
	tU, _ := r.app.TaskDecl(TData{Name: "urgent", Period: ms(200), Priority: 10, ReleaseOffset: ms(6)})
	vU, _ := r.app.VersionDecl(tU, func(x *ExecCtx, _ any) error {
		return x.AccelSection(ms(2))
	}, nil, VSelect{WCET: ms(2)})
	if err := r.app.HwAccelUse(tU, vU, accA); err != nil {
		t.Fatal(err)
	}

	r.runMain(t, ms(150), nil)

	boosted := map[string]int64{}
	for _, e := range accelEvents(r.app, trace.AccelBoost) {
		if cur, ok := boosted[e.Task]; !ok || e.Prio < cur {
			boosted[e.Task] = e.Prio
		}
	}
	for _, holder := range []string{"holdA", "holdB", "holdC"} {
		prio, ok := boosted[holder]
		if !ok {
			t.Errorf("%s never boosted: chain propagation stopped early (boosted=%v)", holder, boosted)
			continue
		}
		if prio != 10 {
			t.Errorf("%s boosted to %d, want urgent's priority 10", holder, prio)
		}
	}
	for _, name := range []string{"holdA", "holdB", "holdC", "urgent"} {
		st := r.app.Recorder().Task(name)
		if st == nil || st.Jobs == 0 {
			t.Errorf("%s never completed: chain did not unwind", name)
		}
	}
	if err := r.app.FirstError(); err != nil {
		t.Errorf("task error: %v", err)
	}
}

// TestWaiterResortOnChainBoost is the regression test for stale waiter
// ordering: a parked job's slot was fixed at park time, so a chain boost
// arriving later must re-sort the list. Here tLow parks on X behind tMid;
// an urgent job then parks on the pool tLow still holds, boosting tLow
// above tMid — when X frees, tLow must be granted first.
func TestWaiterResortOnChainBoost(t *testing.T) {
	r := newRig(t, Config{Workers: 4, Priority: PriorityUser, Preemption: true}, nil)
	accX, _ := r.app.HwAccelDecl("x")
	accY, _ := r.app.HwAccelDecl("y")

	// tHold keeps X busy so the waiter list can form.
	tHold, _ := r.app.TaskDecl(TData{Name: "hold", Period: ms(200), Priority: 50})
	vH, _ := r.app.VersionDecl(tHold, func(x *ExecCtx, _ any) error {
		return x.AccelSection(ms(10))
	}, nil, VSelect{WCET: ms(10)})
	if err := r.app.HwAccelUse(tHold, vH, accX); err != nil {
		t.Fatal(err)
	}
	// tMid parks on X first (fresh waiter, priority 30).
	tMid, _ := r.app.TaskDecl(TData{Name: "mid", Period: ms(200), Priority: 30, ReleaseOffset: ms(1)})
	vM, _ := r.app.VersionDecl(tMid, func(x *ExecCtx, _ any) error {
		return x.AccelSection(ms(2))
	}, nil, VSelect{WCET: ms(2)})
	if err := r.app.HwAccelUse(tMid, vM, accX); err != nil {
		t.Fatal(err)
	}
	// tLow holds Y and parks on X behind tMid (mid-job waiter, priority 40).
	tLow, _ := r.app.TaskDecl(TData{Name: "low", Period: ms(200), Priority: 40, ReleaseOffset: ms(2)})
	vL, _ := r.app.VersionDecl(tLow, func(x *ExecCtx, _ any) error {
		if err := x.Compute(ms(1)); err != nil {
			return err
		}
		return x.AccelSectionOn(accX, ms(2))
	}, nil, VSelect{WCET: ms(3)})
	if err := r.app.HwAccelUse(tLow, vL, accY); err != nil {
		t.Fatal(err)
	}
	// urgent parks on Y at ~5ms: tLow (holder of Y, parked on X) inherits
	// priority 10 and must move ahead of tMid in X's waiter list.
	tU, _ := r.app.TaskDecl(TData{Name: "urgent", Period: ms(200), Priority: 10, ReleaseOffset: ms(5)})
	vU, _ := r.app.VersionDecl(tU, func(x *ExecCtx, _ any) error {
		return x.AccelSection(ms(1))
	}, nil, VSelect{WCET: ms(1)})
	if err := r.app.HwAccelUse(tU, vU, accY); err != nil {
		t.Fatal(err)
	}

	r.runMain(t, ms(150), nil)

	// The freed X must go to the boosted tLow (direct grant), not tMid.
	grants := accelEvents(r.app, trace.AccelGrant)
	var xGrant *trace.AccelEvent
	for i := range grants {
		if grants[i].Pool == "x" {
			xGrant = &grants[i]
			break
		}
	}
	if xGrant == nil {
		t.Fatalf("no direct grant on pool x; events: %v", r.app.Recorder().AccelEvents())
	}
	if xGrant.Task != "low" {
		t.Errorf("first grant of x went to %s, want the chain-boosted low (stale waiter order?)", xGrant.Task)
	}
	for _, name := range []string{"hold", "mid", "low", "urgent"} {
		st := r.app.Recorder().Task(name)
		if st == nil || st.Jobs == 0 {
			t.Errorf("%s never completed", name)
		}
	}
}

// TestMixedWaitersRequeueThenGrant pins the release semantics for a mixed
// waiter list (a more urgent pre-run waiter ahead of a mid-job waiter):
// the pre-run waiters are requeued for re-selection AND the instance is
// eagerly granted to the remaining mid-job head — leaving it free could
// strand the mid-job waiter forever if the requeued job picks another
// version, while a re-parking requeued job simply boosts the new holder.
func TestMixedWaitersRequeueThenGrant(t *testing.T) {
	r := newRig(t, Config{Workers: 4, Priority: PriorityUser, Preemption: true}, nil)
	accX, _ := r.app.HwAccelDecl("x")
	accY, _ := r.app.HwAccelDecl("y")

	tHold, _ := r.app.TaskDecl(TData{Name: "hold", Period: ms(200), Priority: 50})
	vH, _ := r.app.VersionDecl(tHold, func(x *ExecCtx, _ any) error {
		return x.AccelSection(ms(10))
	}, nil, VSelect{WCET: ms(10)})
	if err := r.app.HwAccelUse(tHold, vH, accX); err != nil {
		t.Fatal(err)
	}
	// fresh (more urgent) parks on X pre-run.
	tFresh, _ := r.app.TaskDecl(TData{Name: "fresh", Period: ms(200), Priority: 20, ReleaseOffset: ms(1)})
	vF, _ := r.app.VersionDecl(tFresh, func(x *ExecCtx, _ any) error {
		return x.AccelSection(ms(2))
	}, nil, VSelect{WCET: ms(2)})
	if err := r.app.HwAccelUse(tFresh, vF, accX); err != nil {
		t.Fatal(err)
	}
	// lowmid (less urgent) holds Y and parks on X mid-job, behind fresh.
	tLow, _ := r.app.TaskDecl(TData{Name: "lowmid", Period: ms(200), Priority: 40, ReleaseOffset: ms(2)})
	vL, _ := r.app.VersionDecl(tLow, func(x *ExecCtx, _ any) error {
		if err := x.Compute(ms(1)); err != nil {
			return err
		}
		return x.AccelSectionOn(accX, ms(2))
	}, nil, VSelect{WCET: ms(3)})
	if err := r.app.HwAccelUse(tLow, vL, accY); err != nil {
		t.Fatal(err)
	}

	r.runMain(t, ms(150), nil)

	requeued, granted := false, false
	for _, e := range r.app.Recorder().AccelEvents() {
		switch {
		case e.Kind == trace.AccelRequeue && e.Task == "fresh":
			requeued = true
		case e.Kind == trace.AccelGrant && e.Pool == "x" && e.Task == "lowmid":
			if !requeued {
				t.Error("grant to the mid-job waiter preceded the pre-run requeue")
			}
			granted = true
		}
	}
	if !requeued {
		t.Error("pre-run waiter was never requeued for re-selection")
	}
	if !granted {
		t.Error("mid-job waiter was never granted the freed instance (stranded)")
	}
	for _, name := range []string{"hold", "fresh", "lowmid"} {
		st := r.app.Recorder().Task(name)
		if st == nil || st.Jobs == 0 {
			t.Errorf("%s never completed", name)
		}
	}
}

// TestBoostRestoredOnRelease: a holder boosted through PIP must return to
// its base priority when it releases the contended instance — and not
// before, while a waiter still depends on it.
func TestBoostRestoredOnRelease(t *testing.T) {
	r := newRig(t, Config{Workers: 2, Priority: PriorityUser, Preemption: true}, nil)
	accX, _ := r.app.HwAccelDecl("x")

	// hold takes X at t=0 for 10ms inside a longer job.
	tHold, _ := r.app.TaskDecl(TData{Name: "hold", Period: ms(200), Priority: 40})
	if _, err := r.app.VersionDecl(tHold, func(x *ExecCtx, _ any) error {
		if err := x.AccelSectionOn(accX, ms(10)); err != nil {
			return err
		}
		return x.Compute(ms(20))
	}, nil, VSelect{WCET: ms(30)}); err != nil {
		t.Fatal(err)
	}
	// urgent parks on X at ~2ms, boosting hold until the 10ms release.
	tU, _ := r.app.TaskDecl(TData{Name: "urgent", Period: ms(200), Priority: 10, ReleaseOffset: ms(2)})
	if _, err := r.app.VersionDecl(tU, func(x *ExecCtx, _ any) error {
		return x.AccelSectionOn(accX, ms(2))
	}, nil, VSelect{WCET: ms(2)}); err != nil {
		t.Fatal(err)
	}

	// Probe hold's live job under the lock: boosted mid-wait, restored
	// after the release.
	probe := func(c rt.Ctx) int64 {
		r.app.mu.Lock(c)
		defer r.app.mu.Unlock(c)
		for i := range r.app.jobPool {
			j := &r.app.jobPool[i]
			if j.state.Load() != jobFree && j.t != nil && j.t.d.Name == "hold" {
				return j.effPrio.Load()
			}
		}
		return -1
	}
	var atBoost, atRestore int64
	r.env.Spawn("probe", rt.UnpinnedCore, func(c rt.Ctx) {
		c.SleepUntil(ms(6))
		atBoost = probe(c)
		c.SleepUntil(ms(15))
		atRestore = probe(c)
	})
	r.runMain(t, ms(100), nil)

	if atBoost != 10 {
		t.Errorf("effPrio during contention = %d, want inherited 10", atBoost)
	}
	if atRestore != 40 {
		t.Errorf("effPrio after release = %d, want base 40 restored", atRestore)
	}
}

// TestAccelBlockingAdmission: a transaction whose target set is schedulable
// ignoring accelerator contention but not with the PIP blocking terms must
// be rejected with a typed *NotSchedulableError naming the blocking term —
// and the same timing without the shared accelerator must be admitted.
func TestAccelBlockingAdmission(t *testing.T) {
	r := newRig(t, Config{Workers: 1, Priority: PriorityDM, MaxTasks: 4}, nil)
	gpu, err := r.app.HwAccelDecl("gpu")
	if err != nil {
		t.Fatal(err)
	}
	// high: D=10ms, C=3ms on the gpu. Alone: R = 3ms, fine.
	tHigh, _ := r.app.TaskDecl(TData{Name: "high", Period: ms(20), Deadline: ms(10)})
	vH, _ := r.app.VersionDecl(tHigh, spin(ms(3)), nil, VSelect{WCET: ms(3), AccelCS: ms(2)})
	if err := r.app.HwAccelUse(tHigh, vH, gpu); err != nil {
		t.Fatal(err)
	}

	r.runMain(t, ms(30), func(c rt.Ctx) {
		// low's 8ms gpu critical section can block high for 8ms: R(high) =
		// 3 + 8 = 11ms > D = 10ms. Ignoring blocking both tasks pass RTA.
		err := r.app.Reconfigure(c, func(tx *Reconfig) error {
			id, err := tx.AddTask(TData{Name: "low", Period: ms(100)})
			if err != nil {
				return err
			}
			vid, err := tx.AddVersion(id, spin(ms(9)), nil, VSelect{WCET: ms(9), AccelCS: ms(8)})
			if err != nil {
				return err
			}
			return tx.UseAccel(id, vid, gpu)
		})
		if err == nil {
			t.Fatal("accel-hungry task admitted despite blocking making high unschedulable")
		}
		if !errors.Is(err, ErrNotSchedulable) {
			t.Fatalf("want ErrNotSchedulable, got %v", err)
		}
		var nse *NotSchedulableError
		if !errors.As(err, &nse) {
			t.Fatalf("want *NotSchedulableError, got %T", err)
		}
		if nse.Task != "high" {
			t.Errorf("offender = %q, want high (the task whose deadline the blocking breaks)", nse.Task)
		}
		if !strings.Contains(nse.Test, "accel-blocking") {
			t.Errorf("Test = %q, want the accel-blocking marker", nse.Test)
		}
		if !strings.Contains(nse.Detail, "blocking term") || !strings.Contains(nse.Detail, "gpu") {
			t.Errorf("Detail = %q, want the blocking term named with its pool", nse.Detail)
		}

		// The identical timing WITHOUT the shared accelerator is admissible:
		// the rejection above was priced purely on contention.
		err = r.app.Reconfigure(c, func(tx *Reconfig) error {
			id, err := tx.AddTask(TData{Name: "low-cpu", Period: ms(100)})
			if err != nil {
				return err
			}
			_, err = tx.AddVersion(id, spin(ms(9)), nil, VSelect{WCET: ms(9)})
			return err
		})
		if err != nil {
			t.Fatalf("CPU-only twin rejected: %v", err)
		}
	})
}

// TestAccelBlockingPoolHeadroom: growing a pool so that every contender can
// hold an instance simultaneously removes the blocking term — the same
// transaction rejected on a 1-instance pool is admitted on a 2-instance
// pool.
func TestAccelBlockingPoolHeadroom(t *testing.T) {
	for _, tc := range []struct {
		count int
		admit bool
	}{
		{1, false},
		{2, true},
	} {
		r := newRig(t, Config{Workers: 2, Priority: PriorityDM, MaxTasks: 4, MaxAccels: 2}, nil)
		gpu, err := r.app.HwAccelDeclPool("gpu", tc.count)
		if err != nil {
			t.Fatal(err)
		}
		tHigh, _ := r.app.TaskDecl(TData{Name: "high", Period: ms(20), Deadline: ms(10)})
		vH, _ := r.app.VersionDecl(tHigh, spin(ms(3)), nil, VSelect{WCET: ms(3), AccelCS: ms(2)})
		if err := r.app.HwAccelUse(tHigh, vH, gpu); err != nil {
			t.Fatal(err)
		}
		r.runMain(t, ms(30), func(c rt.Ctx) {
			err := r.app.Reconfigure(c, func(tx *Reconfig) error {
				id, err := tx.AddTask(TData{Name: "low", Period: ms(100), VirtCore: 1})
				if err != nil {
					return err
				}
				vid, err := tx.AddVersion(id, spin(ms(9)), nil, VSelect{WCET: ms(9), AccelCS: ms(8)})
				if err != nil {
					return err
				}
				return tx.UseAccel(id, vid, gpu)
			})
			if tc.admit && err != nil {
				t.Errorf("count=%d: rejected despite an instance per contender: %v", tc.count, err)
			}
			if !tc.admit && err == nil {
				t.Errorf("count=%d: admitted despite contention blocking", tc.count)
			}
		})
	}
}

// TestAccelSectionOnRaceStress races pools, mid-job sections, PIP
// boosts/releases and live reconfiguration churn on the wall-clock backend
// under -race: steady accel-bound tasks hammer a 2-instance pool and a
// single contended accelerator with nested sections while a churn thread
// admits and retires accel-hungry tasks.
func TestAccelSectionOnRaceStress(t *testing.T) {
	env := rt.NewOSEnv()
	env.Spin = false
	app, err := New(Config{
		Workers: 4, Priority: PriorityEDF, Preemption: true, RecordAccel: true,
		MaxTasks: 12, MaxAccels: 3, MaxPendingJobs: 64,
	}, env)
	if err != nil {
		t.Fatal(err)
	}
	dsp, err := app.HwAccelDeclPool("dsp", 2)
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := app.HwAccelDecl("gpu")
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	for i := 0; i < 4; i++ {
		tid, err := app.TaskDecl(TData{Name: fmt.Sprintf("steady%d", i), Period: 2 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		nested := i%2 == 0
		vid, err := app.VersionDecl(tid, func(x *ExecCtx, _ any) error {
			if err := x.AccelSection(100 * time.Microsecond); err != nil {
				return err
			}
			if nested {
				// Hold dsp, contend on gpu: builds real holder chains.
				return x.AccelSectionOn(gpu, 50*time.Microsecond)
			}
			return nil
		}, nil, VSelect{WCET: 200 * time.Microsecond, AccelCS: 150 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		if err := app.HwAccelUse(tid, vid, dsp); err != nil {
			t.Fatal(err)
		}
	}

	env.RunMain(func(c rt.Ctx) {
		if err := app.Start(c); err != nil {
			t.Errorf("start: %v", err)
			return
		}
		deadline := time.Now().Add(500 * time.Millisecond)
		gen := 0
		for time.Now().Before(deadline) {
			gen++
			name := fmt.Sprintf("churn-%d", gen)
			err := app.Reconfigure(c, func(tx *Reconfig) error {
				id, err := tx.AddTask(TData{Name: name, Period: 3 * time.Millisecond})
				if err != nil {
					return err
				}
				vid, err := tx.AddVersion(id, func(x *ExecCtx, _ any) error {
					return x.AccelSection(80 * time.Microsecond)
				}, nil, VSelect{WCET: 80 * time.Microsecond, AccelCS: 80 * time.Microsecond})
				if err != nil {
					return err
				}
				return tx.UseAccel(id, vid, gpu)
			})
			if err != nil && !errors.Is(err, ErrNotSchedulable) {
				t.Errorf("churn admit %d: %v", gen, err)
				break
			}
			c.Sleep(time.Millisecond)
			if err == nil {
				if rerr := app.Reconfigure(c, func(tx *Reconfig) error {
					return tx.RemoveTaskByName(name)
				}); rerr != nil {
					t.Errorf("churn retire %d: %v", gen, rerr)
					break
				}
			}
		}
		stop.Store(true)
		app.Stop(c)
		app.Cleanup(c)
	})
	env.Wait()
	if err := app.FirstError(); err != nil {
		t.Fatalf("task error under churn: %v", err)
	}
}
