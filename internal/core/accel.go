// Accelerator arbitration (Section 3.2): shared accelerators with the
// Priority Inheritance Protocol. Accelerators declared together form a
// pool of interchangeable instances; version bindings reference the pool,
// acquisition takes any free instance, and contention parks the job on the
// pool's priority-ordered waiter list while the holders inherit the
// waiter's priority — transitively along holder chains (a job can hold one
// accelerator and wait for another via ExecCtx.AccelSectionOn).

package core

import (
	"fmt"
	"sync/atomic"

	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/taskset"
	"github.com/yasmin-rt/yasmin/internal/trace"
)

// poolHead normalises an instance HID to its pool head.
func (a *App) poolHead(h HID) HID { return a.accels[h].group }

// poolMembers returns the instance HIDs of the pool containing h.
func (a *App) poolMembers(h HID) []HID {
	head := &a.accels[a.accels[h].group]
	if len(head.members) == 0 {
		// Defensive: a head always carries its member list; treat a bare
		// slot as a single-instance pool.
		return []HID{head.id}
	}
	return head.members
}

// poolFreeInstanceLocked returns a free instance of h's pool, or NoAccel
// when every instance is held. Caller holds the lock.
func (a *App) poolFreeInstanceLocked(h HID) HID {
	for _, m := range a.poolMembers(h) {
		if !a.accels[m].busy {
			return m
		}
	}
	return NoAccel
}

// poolAvailableForLocked returns a free instance j may take, or NoAccel.
// Beyond raw occupancy it enforces priority-ordered admission: while a
// strictly more urgent job is parked on the pool, a free instance is
// reserved for it — a less urgent job must park behind rather than overtake
// (the inversion PIP exists to bound must not be re-introduced by the
// acquisition path). Caller holds the lock.
func (a *App) poolAvailableForLocked(j *job, h HID) HID {
	head := a.poolHead(h)
	for _, w := range a.accels[head].waiters {
		if w != j && w.before(j) {
			return NoAccel
		}
	}
	return a.poolFreeInstanceLocked(head)
}

// acquireInstanceLocked marks instance inst held by j and records the
// acquisition. Caller holds the lock; inst is free.
func (a *App) acquireInstanceLocked(c rt.Ctx, inst HID, j *job) {
	ac := &a.accels[inst]
	if ac.busy {
		panic(fmt.Sprintf("core: acquiring busy accelerator %s", ac.name))
	}
	ac.busy = true
	ac.holder = j
	a.recordAccel(c, trace.AccelAcquire, inst, j)
}

// recordAccel emits one arbitration event to the recorder. Gated on
// Config.RecordAccel so the default arbitration path neither allocates nor
// touches the recorder mutex.
func (a *App) recordAccel(c rt.Ctx, kind trace.AccelEventKind, inst HID, j *job) {
	if !a.cfg.RecordAccel {
		return
	}
	a.rec.RecordAccel(trace.AccelEvent{
		Kind:  kind,
		Accel: a.accels[inst].name,
		Pool:  a.accels[a.accels[inst].group].name,
		Task:  j.name,
		Job:   j.taskSeq,
		Prio:  j.effPrio.Load(),
		At:    c.Now(),
	})
}

// insertWaiterLocked places j on the pool head's waiter list, priority
// ordered (most urgent first). Caller holds the lock.
func (a *App) insertWaiterLocked(head HID, j *job) {
	ac := &a.accels[head]
	pos := len(ac.waiters)
	for i, wjob := range ac.waiters {
		if j.before(wjob) {
			pos = i
			break
		}
	}
	ac.waiters = append(ac.waiters, nil)
	copy(ac.waiters[pos+1:], ac.waiters[pos:])
	ac.waiters[pos] = j
}

// staleWaiterResortBug re-introduces the pre-fix PR 5 defect (stale waiter
// slots after a chain boost) when enabled: boostPoolLocked skips the
// re-sort, so a boosted holder parked on a second pool keeps its
// park-time position and less urgent waiters can be granted ahead of it.
// It exists solely so the scenario fuzzer's self-test can prove the
// generator + checker rediscover a real, historical bug; nothing outside
// tests may enable it.
var staleWaiterResortBug atomic.Bool

// TestingSetStaleWaiterResortBug toggles the seeded PR 5 regression (see
// staleWaiterResortBug). Test-only; the production path never sets it.
func TestingSetStaleWaiterResortBug(on bool) { staleWaiterResortBug.Store(on) }

// resortWaiterLocked re-inserts a parked job whose effective priority just
// changed: a waiter's slot is assigned at park time, so a later PIP boost
// along a holder chain must re-order the list or the most urgent waiter is
// no longer genuinely first. Caller holds the lock.
func (a *App) resortWaiterLocked(head HID, j *job) {
	ac := &a.accels[head]
	for i, wjob := range ac.waiters {
		if wjob == j {
			copy(ac.waiters[i:], ac.waiters[i+1:])
			ac.waiters = ac.waiters[:len(ac.waiters)-1]
			a.insertWaiterLocked(head, j)
			return
		}
	}
}

// parkOnAccel parks a job on a busy pool's waiter list and applies the
// Priority Inheritance Protocol: every holder of the pool less urgent than
// the waiter inherits its priority, transitively along holder chains.
// Caller holds the lock; h may be any instance of the pool.
func (a *App) parkOnAccel(c rt.Ctx, j *job, h HID) {
	head := a.poolHead(h)
	// A pre-run waiter is owned by no shard queue and no worker yet, so the
	// lifecycle store has no concurrent reader to synchronise with.
	j.state.Store(jobAccelWait)
	j.waitingOn = head
	a.insertWaiterLocked(head, j)
	a.recordAccel(c, trace.AccelPark, head, j)
	a.boostChainLocked(c, head, j.effPrio.Load())
}

// boostChainLocked raises every holder of pool head (and, transitively, of
// any pool a boosted holder is itself waiting on) to at least prio. The
// seen scratch guards against cycles in the wait-for graph: a deadlocked
// hold cycle must not turn the boost walk into an infinite recursion (the
// deadlock itself is the application's lock-ordering bug, not ours to
// mask). Caller holds the lock.
func (a *App) boostChainLocked(c rt.Ctx, head HID, prio int64) {
	for i := range a.boostSeen[:a.naccels] {
		a.boostSeen[i] = false
	}
	a.boostPoolLocked(c, head, prio)
}

func (a *App) boostPoolLocked(c rt.Ctx, head HID, prio int64) {
	if a.boostSeen[head] {
		return
	}
	a.boostSeen[head] = true
	for _, m := range a.poolMembers(head) {
		holder := a.accels[m].holder
		if holder == nil || holder.effPrio.Load() <= prio {
			continue
		}
		// PIP boost: the holder inherits the waiter's priority. setEffPrio
		// publishes it where the holder currently lives — heap re-fix if
		// queued, mirror refresh if running, plain store otherwise (a
		// suspended stack job is picked up by the next stackTop scan).
		a.setEffPrio(holder, prio)
		a.recordAccel(c, trace.AccelBoost, m, holder)
		if holder.state.Load() == jobAccelWait && holder.waitingOn != NoAccel {
			// The holder is itself parked on another pool: fix its now-stale
			// waiter slot and push the boost one hop further down the chain.
			if !staleWaiterResortBug.Load() {
				a.resortWaiterLocked(holder.waitingOn, holder)
			}
			a.boostPoolLocked(c, holder.waitingOn, prio)
		}
	}
}

// setEffPrio publishes an effective-priority change on a job that may
// concurrently sit in a shard's ready queue (its heap position must be
// fixed under that shard's lock) or run on a worker (the preemption
// mirror must be refreshed). Caller holds App.mu; the shard lock is taken
// inside (rank 2 -> 3), resolved with the usual load/lock/re-validate loop.
func (a *App) setEffPrio(j *job, prio int64) {
	for {
		if si := j.shardIdx.Load(); si >= 0 {
			sh := a.shards[si]
			sh.mu.Lock()
			if j.shardIdx.Load() != si {
				sh.mu.Unlock()
				continue
			}
			j.effPrio.Store(prio)
			if j.heapIdx >= 0 {
				sh.q.fix(j)
				sh.updateHeadLocked()
			}
			sh.mu.Unlock()
			return
		}
		if wi := j.worker.Load(); wi >= 0 {
			sh := a.shards[wi]
			sh.mu.Lock()
			j.effPrio.Store(prio)
			if w := a.workers[wi]; w.current == j {
				w.curPrio.Store(prio)
			}
			sh.mu.Unlock()
			return
		}
		// Neither queued nor worker-attached (pre-run accel waiter): no
		// concurrent heap or mirror to maintain.
		j.effPrio.Store(prio)
		return
	}
}

// restoreBoostLocked recomputes a job's effective priority after it
// released an instance: the base priority, lowered to the most urgent
// waiter of any pool whose instance the job STILL holds (releasing one of
// two held accelerators must not drop an inheritance the other still
// warrants). Caller holds the lock.
func (a *App) restoreBoostLocked(j *job) {
	prio := j.basePrio
	for _, held := range [2]HID{j.accel, j.nested} {
		if held == NoAccel {
			continue
		}
		head := &a.accels[a.poolHead(held)]
		if len(head.waiters) > 0 && head.waiters[0].effPrio.Load() < prio {
			prio = head.waiters[0].effPrio.Load()
		}
	}
	a.setEffPrio(j, prio)
}

// releaseInstanceLocked frees instance inst (held by j), restores j's
// inherited priority and arbitrates the pool's waiters:
//
//   - a mid-job waiter at the head of the list is granted the instance
//     directly (its fiber is blocked inside AccelSectionOn; it cannot
//     re-run version selection) and woken through its worker;
//   - pre-run waiters are requeued for a fresh scheduling pass — the paper
//     "reschedules the task", which re-runs version selection and may now
//     pick the freed accelerator or a CPU version. Mid-job waiters behind
//     them stay parked; priority-ordered admission (poolAvailableForLocked)
//     keeps requeued jobs from overtaking them.
//
// Caller holds the lock.
func (a *App) releaseInstanceLocked(c rt.Ctx, inst HID, j *job) {
	ac := &a.accels[inst]
	ac.busy = false
	ac.holder = nil
	a.recordAccel(c, trace.AccelRelease, inst, j)
	a.restoreBoostLocked(j)
	head := &a.accels[ac.group]
	if len(head.waiters) == 0 {
		return
	}
	t0 := c.Now()
	requeued := false
	if !head.waiters[0].midWait {
		// The most urgent waiter is a pre-run one: requeue every pre-run
		// waiter for a fresh scheduling pass; mid-job waiters stay parked.
		kept := head.waiters[:0]
		for _, wjob := range head.waiters {
			if wjob.midWait {
				kept = append(kept, wjob)
				continue
			}
			wjob.state.Store(jobReady)
			wjob.waitingOn = NoAccel
			a.recordAccel(c, trace.AccelRequeue, head.id, wjob)
			if !a.pushReady(c, wjob) {
				a.overruns.Add(1)
				a.freeJobLocked(c, wjob)
			}
		}
		for i := len(kept); i < len(head.waiters); i++ {
			head.waiters[i] = nil
		}
		head.waiters = kept
		requeued = true
	}
	if len(head.waiters) > 0 && head.waiters[0].midWait {
		// Direct grant to the most urgent (now necessarily mid-job) waiter.
		// This also runs after a requeue pass: a requeued job may re-select
		// a CPU version and never come back for the instance, so leaving it
		// free while a mid-job waiter stays parked could strand that waiter
		// forever. Granting eagerly keeps it live; a re-parking requeued job
		// boosts the new holder, bounding the inversion by one section.
		w := head.waiters[0]
		copy(head.waiters, head.waiters[1:])
		head.waiters[len(head.waiters)-1] = nil
		head.waiters = head.waiters[:len(head.waiters)-1]
		w.waitingOn = NoAccel
		w.midWait = false
		w.nested = inst
		ac.busy = true
		ac.holder = w
		a.recordAccel(c, trace.AccelGrant, inst, w)
		// Re-attach the waiter to a CPU, mirroring rejoinWorker: flip it
		// resumable under its worker's shard lock (rank 2 -> 3) so the
		// worker's stackTop scan sees it, then wake the idle worker or
		// preempt the worker's less urgent current job.
		ww := a.workers[w.worker.Load()]
		wsh := a.shards[ww.idx]
		wsh.mu.Lock()
		w.state.Store(jobAccelResumed)
		cur := ww.current
		var preemptFib *fiber
		if a.cfg.Preemption && cur != nil &&
			cur.state.Load() == jobRunning && w.before(cur) && cur.fib != nil {
			preemptFib = cur.fib
		}
		wsh.mu.Unlock()
		if a.claimIdle(ww) {
			c.Charge(a.env.Costs().DispatchIPI)
			ww.th.Unpark()
		} else if preemptFib != nil {
			a.signalFiber(c, preemptFib)
		}
	}
	a.ovh.Add(trace.OverheadDispatch, c.Now()-t0)
	if requeued {
		a.dispatch(c)
	}
}

// releaseAccel releases j's version-bound accelerator instance at job
// completion. Caller holds the lock.
func (a *App) releaseAccel(c rt.Ctx, j *job) {
	inst := j.accel
	j.accel = NoAccel
	a.releaseInstanceLocked(c, inst, j)
}

// AccelBusy reports whether every instance of h's pool is currently held
// (for tests and user selection callbacks running outside the lock it is
// advisory).
func (a *App) AccelBusy(h HID) bool {
	if int(h) < 0 || int(h) >= a.naccels {
		return false
	}
	return a.poolFreeInstanceLocked(h) == NoAccel
}

// AccelIDByName returns the pool head HID of the named accelerator, or
// NoAccel. Like the other declaration-surface accessors it must not race a
// concurrent declaration; call it from declaration time or task code.
func (a *App) AccelIDByName(name string) HID {
	for i := 0; i < a.naccels; i++ {
		if a.accels[i].name == name && a.accels[i].group == HID(i) {
			return HID(i)
		}
	}
	return NoAccel
}

// AccelPoolSize returns the number of instances in h's pool (0 for an
// unknown HID).
func (a *App) AccelPoolSize(h HID) int {
	if int(h) < 0 || int(h) >= a.naccels {
		return 0
	}
	return len(a.poolMembers(h))
}

// accelUsesLocked returns a task's worst-case critical section on EVERY
// pool its versions can run on, for the blocking-aware admission test
// (VSelect.AccelCS; the whole version WCET when undeclared —
// conservative). Version selection is dynamic, so omitting any pool would
// make the analysis unsound. Caller holds the lock.
func (a *App) accelUsesLocked(t *task) []taskset.AccelUse {
	var uses []taskset.AccelUse
	for vi := range t.versions {
		v := &t.versions[vi]
		if v.accel == NoAccel {
			continue
		}
		c := v.props.AccelCS
		if c <= 0 {
			c = v.props.WCET
		}
		if v.props.WCET > 0 && c > v.props.WCET {
			c = v.props.WCET
		}
		if c <= 0 {
			continue
		}
		head := a.poolHead(v.accel)
		name := a.accels[head].name
		found := false
		for i := range uses {
			if uses[i].Pool == name {
				if c > uses[i].CS {
					uses[i].CS = c
				}
				found = true
				break
			}
		}
		if !found {
			uses = append(uses, taskset.AccelUse{Pool: name, CS: c, Count: len(a.poolMembers(head))})
		}
	}
	return uses
}
