package core

import (
	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/trace"
)

// parkOnAccel parks a job on a busy accelerator's waiter list and applies
// the Priority Inheritance Protocol (Section 3.2): when the waiting job is
// more urgent than the accelerator's holder, the holder inherits its
// priority so it finishes (and releases the accelerator) sooner.
// Caller holds the lock.
func (a *App) parkOnAccel(c rt.Ctx, j *job, h HID) {
	ac := &a.accels[h]
	j.state = jobAccelWait
	// Insert priority-ordered (most urgent first).
	pos := len(ac.waiters)
	for i, wjob := range ac.waiters {
		if j.before(wjob) {
			pos = i
			break
		}
	}
	ac.waiters = append(ac.waiters, nil)
	copy(ac.waiters[pos+1:], ac.waiters[pos:])
	ac.waiters[pos] = j

	holder := ac.holder
	if holder == nil {
		return
	}
	if j.effPrio < holder.effPrio {
		// PIP boost: the holder inherits the waiter's priority.
		holder.effPrio = j.effPrio
		// If the holder is still queued (not yet running), fix its heap
		// position; if it is suspended on a worker stack the next
		// stackTop scan picks the boost up automatically.
		a.queueForTask(holder.t).fix(holder)
	}
}

// releaseAccel releases j's accelerator, restores the (possibly boosted)
// holder priority bookkeeping and requeues all waiters for a fresh
// scheduling pass — the paper "reschedules the task", which re-runs version
// selection and may now pick the freed accelerator or a CPU version.
// Caller holds the lock.
func (a *App) releaseAccel(c rt.Ctx, j *job) {
	ac := &a.accels[j.accel]
	ac.busy = false
	ac.holder = nil
	j.accel = NoAccel
	j.effPrio = j.basePrio
	if len(ac.waiters) == 0 {
		return
	}
	t0 := c.Now()
	for _, wjob := range ac.waiters {
		wjob.state = jobReady
		q := a.queueForTask(wjob.t)
		a.chargeQueueOp(c, q)
		if err := q.push(wjob); err != nil {
			a.overruns.Add(1)
			a.freeJob(c, wjob)
		}
	}
	ac.waiters = ac.waiters[:0]
	a.ovh.Add(trace.OverheadDispatch, c.Now()-t0)
	a.dispatch(c)
}

// AccelBusy reports whether accelerator h is currently held (for tests and
// user selection callbacks running outside the lock it is advisory).
func (a *App) AccelBusy(h HID) bool {
	if int(h) < 0 || int(h) >= a.naccels {
		return false
	}
	return a.accels[h].busy
}
