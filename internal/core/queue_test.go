package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// mkJob builds a standalone job for queue tests.
func mkJob(seq int64, prio int64) *job {
	j := &job{seq: seq, basePrio: prio, accel: NoAccel}
	j.effPrio.Store(prio)
	j.worker.Store(-1)
	return j
}

func TestQueuePopsInPriorityOrder(t *testing.T) {
	q := newReadyQueue(16)
	prios := []int64{5, 1, 9, 3, 7, 2, 8}
	for i, p := range prios {
		if err := q.push(mkJob(int64(i), p)); err != nil {
			t.Fatal(err)
		}
	}
	var got []int64
	for q.len() > 0 {
		got = append(got, q.pop().effPrio.Load())
	}
	want := append([]int64{}, prios...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestQueueFIFOWithinPriority(t *testing.T) {
	q := newReadyQueue(8)
	for i := int64(0); i < 5; i++ {
		if err := q.push(mkJob(i, 42)); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 5; i++ {
		j := q.pop()
		if j.seq != i {
			t.Fatalf("seq %d popped at position %d: FIFO tie-break broken", j.seq, i)
		}
	}
}

func TestQueueCapacityBound(t *testing.T) {
	q := newReadyQueue(2)
	if err := q.push(mkJob(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(mkJob(2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(mkJob(3, 3)); err == nil {
		t.Fatal("push beyond capacity must fail (static allocation)")
	}
}

func TestQueueRemoveArbitrary(t *testing.T) {
	q := newReadyQueue(8)
	jobs := make([]*job, 6)
	for i := range jobs {
		jobs[i] = mkJob(int64(i), int64(10-i))
		if err := q.push(jobs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !q.remove(jobs[3]) {
		t.Fatal("remove of queued job failed")
	}
	if q.remove(jobs[3]) {
		t.Fatal("second remove of the same job succeeded")
	}
	if q.len() != 5 {
		t.Fatalf("len = %d, want 5", q.len())
	}
	// Remaining jobs still pop in priority order.
	last := int64(-1 << 62)
	for q.len() > 0 {
		j := q.pop()
		if j == jobs[3] {
			t.Fatal("removed job popped")
		}
		if j.effPrio.Load() < last {
			t.Fatal("heap order violated after remove")
		}
		last = j.effPrio.Load()
	}
}

func TestQueueFixAfterBoost(t *testing.T) {
	q := newReadyQueue(8)
	low := mkJob(1, 100)
	mid := mkJob(2, 50)
	high := mkJob(3, 10)
	for _, j := range []*job{low, mid, high} {
		if err := q.push(j); err != nil {
			t.Fatal(err)
		}
	}
	// PIP-boost the low job above everything.
	low.effPrio.Store(1)
	q.fix(low)
	if got := q.pop(); got != low {
		t.Fatalf("boosted job not at the head (got seq %d)", got.seq)
	}
}

// TestQueueMatchesReferenceModel drives the heap and a sorted-slice
// reference with the same random operations and checks observable
// equivalence.
func TestQueueMatchesReferenceModel(t *testing.T) {
	f := func(seed int64, opsRaw []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		q := newReadyQueue(64)
		var ref []*job
		seq := int64(0)
		refBest := func() int {
			best := -1
			for i, j := range ref {
				if best < 0 || j.before(ref[best]) {
					best = i
				}
			}
			return best
		}
		for _, op := range opsRaw {
			switch op % 4 {
			case 0, 1: // push
				if q.len() == 64 {
					continue
				}
				seq++
				j := mkJob(seq, int64(rng.Intn(20)))
				if err := q.push(j); err != nil {
					return false
				}
				ref = append(ref, j)
			case 2: // pop
				got := q.pop()
				bi := refBest()
				if bi < 0 {
					if got != nil {
						return false
					}
					continue
				}
				want := ref[bi]
				ref = append(ref[:bi], ref[bi+1:]...)
				if got != want {
					return false
				}
			case 3: // boost a random job and fix
				if len(ref) == 0 {
					continue
				}
				j := ref[rng.Intn(len(ref))]
				j.effPrio.Store(int64(rng.Intn(20)))
				q.fix(j)
			}
			if q.len() != len(ref) {
				return false
			}
			if head := q.peek(); head != nil {
				if bi := refBest(); ref[bi] != head && !headTied(head, ref[bi]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// headTied reports whether two jobs compare equal under the queue order
// (can only happen transiently if priorities collide with equal seq, which
// mkJob prevents; kept for safety).
func headTied(a, b *job) bool {
	return !a.before(b) && !b.before(a)
}
