package core

// Sharded scheduler support: the epoch-published scheduling snapshot
// (schedView), the intrusive idle-worker list, and the shard-targeted
// enqueue helper shared by the scheduler tick, the workers, and the
// accelerator arbitration paths.
//
// Lock hierarchy (outermost first), enforced by yasmin-vet's lockorder
// analyzer via the lockrank annotations on each lock:
//
//	reconfigMu(1) -> App.mu(2) -> queueMu[i](3) -> idleMu(4)
//	              -> {Recorder, Overheads, EnergyMeter}(5) -> {Stat, Battery}(6)
//
// All shard locks share one rank (and one analyzer identity), so no code
// path may hold two shard locks at once: stealing and migration lock the
// source and destination shards strictly in sequence, re-validating after
// each acquisition instead of nesting.

import (
	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/trace"
)

// schedView is the immutable scheduling snapshot published at Start and at
// every reconfiguration commit. Readers load it through App.view with a
// single atomic pointer load — no lock, no epoch counter handshake: a
// snapshot is never mutated after publication, so a reader can use a stale
// one safely and re-validate against shard-guarded state once it holds the
// relevant leaf lock. It generalises the topicView pattern to the scheduler
// core: task-slot liveness, queue routing and the priority configuration
// become lock-free reads.
//
//yasmin:immutable
type schedView struct {
	epoch   int64
	ntasks  int32
	nq      int32
	mapping MappingScheme
	prio    PriorityAssignment
	// live is a bitmap over task slots: bit set = the slot holds a Running
	// or Admitted task in this epoch.
	live []uint64
	// shard is the home shard per task slot at publication time.
	shard []int32
}

// liveBit reports whether task slot id was live when the view was taken.
//
//yasmin:noalloc
func (v *schedView) liveBit(id int) bool {
	if id < 0 || id >= int(v.ntasks) {
		return false
	}
	return v.live[id>>6]&(1<<(uint(id)&63)) != 0
}

// publishViewLocked rebuilds and publishes the schedView. Caller holds
// App.mu (Start and reconfiguration commits only — this is off the steady
// hot path, so the snapshot allocation is fine).
func (a *App) publishViewLocked() {
	nt := a.ntasks
	v := &schedView{
		epoch:   a.epoch.Load(),
		ntasks:  int32(nt),
		nq:      int32(len(a.shards)),
		mapping: a.cfg.Mapping,
		prio:    a.cfg.Priority,
		live:    make([]uint64, (nt+63)/64),
		shard:   make([]int32, nt),
	}
	for i := 0; i < nt; i++ {
		t := &a.tasks[i]
		v.shard[i] = t.shard.Load()
		if t.state == taskRunning || t.state == taskAdmitted {
			v.live[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	a.view.Store(v)
	a.viewPublishes.Add(1)
}

// setTaskStateLocked writes a task's lifecycle state under its home shard
// lock (rank 2 -> 3; shard-locked readers like TaskActivate and the release
// tick must never see a torn state). Caller holds App.mu, so t.shard cannot
// move concurrently — only commits move tasks, and commits hold App.mu.
func (a *App) setTaskStateLocked(t *task, st taskState) {
	sh := a.shards[t.shard.Load()]
	sh.mu.Lock()
	t.state = st
	sh.mu.Unlock()
}

// enqueueIdle pushes w onto the idle list. List membership is the single
// source of truth for idleness: a worker is wakeable-for-work exactly while
// linked, and whoever unlinks it (claimIdle/popIdle) owns waking it.
//
//yasmin:noalloc
func (a *App) enqueueIdle(w *workerState) {
	a.idleMu.Lock()
	if !w.onIdle {
		w.onIdle = true
		w.idlePrev = nil
		w.idleNext = a.idleHead
		if a.idleHead != nil {
			a.idleHead.idlePrev = w
		}
		a.idleHead = w
	}
	a.idleMu.Unlock()
}

// claimIdle removes w from the idle list if present; true when this caller
// won the claim. Workers self-claim on every wake-up, so a dispatch claim
// that races a self-claim resolves to exactly one winner.
//
//yasmin:noalloc
func (a *App) claimIdle(w *workerState) bool {
	a.idleMu.Lock()
	ok := w.onIdle
	if ok {
		a.unlinkIdleLocked(w)
	}
	a.idleMu.Unlock()
	return ok
}

// popIdle claims any idle worker, or nil when all are busy.
//
//yasmin:noalloc
func (a *App) popIdle() *workerState {
	a.idleMu.Lock()
	w := a.idleHead
	if w != nil {
		a.unlinkIdleLocked(w)
	}
	a.idleMu.Unlock()
	return w
}

//yasmin:noalloc
func (a *App) unlinkIdleLocked(w *workerState) {
	if w.idlePrev != nil {
		w.idlePrev.idleNext = w.idleNext
	} else {
		a.idleHead = w.idleNext
	}
	if w.idleNext != nil {
		w.idleNext.idlePrev = w.idlePrev
	}
	w.idlePrev, w.idleNext = nil, nil
	w.onIdle = false
}

// wakeAllWorkers unconditionally unparks every worker (stop, drain-to-zero,
// terminate). A token buffered on a busy worker surfaces as one benign
// spurious wake — the park loops tolerate it. Lock-free: safe from any
// context, including under a shard lock.
func (a *App) wakeAllWorkers() {
	for _, w := range a.workers {
		if w.th != nil {
			w.th.Unpark()
		}
	}
}

// pushReady enqueues an already-allocated ready job on its task's home
// shard, resolving the home lock with a load/lock/re-validate loop (a
// commit may move the task between shards concurrently). Caller may hold
// App.mu (rank 2 -> 3 is legal) but no shard lock. Returns false on queue
// overflow — structurally impossible since every queue holds the whole job
// pool, but kept defensive.
func (a *App) pushReady(c rt.Ctx, j *job) bool {
	t := j.t
	for {
		si := t.shard.Load()
		sh := a.shards[si]
		sh.mu.Lock()
		if t.shard.Load() != si {
			sh.mu.Unlock()
			continue
		}
		err := sh.q.push(j)
		if err == nil {
			j.shardIdx.Store(si)
			sh.nready.Add(1)
			sh.updateHeadLocked()
		}
		cost := queueOpCost(a.env.Costs(), sh.q)
		sh.mu.Unlock()
		c.Charge(cost)
		return err == nil
	}
}

// SchedStats returns the sharded-scheduler counters for the current run:
// work-stealing traffic, cross-shard preemption migrations, idle-list
// wakes, preemption-signal dedup hits and schedView publications.
func (a *App) SchedStats() trace.SchedStats {
	return trace.SchedStats{
		Steals:         a.steals.Load(),
		StealMisses:    a.stealMisses.Load(),
		Migrations:     a.migrations.Load(),
		IdleWakes:      a.idleWakes.Load(),
		Signals:        a.signalsSent.Load(),
		SignalsDeduped: a.signalsDeduped.Load(),
		ViewPublishes:  a.viewPublishes.Load(),
	}
}
