package core

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/yasmin-rt/yasmin/internal/rt"
)

// TestStealChurnRaceOSEnv races the work-stealing hot path against
// reconfiguration churn on the wall-clock backend. The load is deliberately
// unbalanced: four short-period publishers all share home shard 0 (global
// mapping homes task id modulo shard count, and the cold fillers between
// them pin the ids), so shard 0 releases ~1.2 cores of work while the other
// three queues stay empty — the other workers can only make progress by
// stealing. While that runs, one thread churns a transient compute task
// (admit/retire) and another retunes a hot publisher's period, so steals
// interleave with schedView republication, wheel rebuilds and retirement
// quiescence. Under overload two jobs of one task can legitimately run
// concurrently (the next release is stolen onto another worker while the
// previous job still computes), so entries carry atomically allocated
// sequence numbers and the invariant is exactly-once delivery, not
// ordering. Checked under -race:
//
//   - no lost or duplicated entries: every successfully published entry
//     reaches the subscriber exactly once, across every epoch;
//   - stealing actually happened (the imbalance is structural, so zero
//     steals would mean the steal path is dead);
//   - the epoch snapshot was published exactly once per commit plus Start.
func TestStealChurnRaceOSEnv(t *testing.T) {
	env := rt.NewOSEnv()
	env.Spin = false
	app, err := New(Config{
		Workers: 4, Mapping: MappingGlobal, Priority: PriorityEDF,
		MaxTasks: 32, MaxChannels: 4, MaxPendingJobs: 256,
	}, env)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := app.TopicDecl("stream", TopicOpts{Capacity: 1024})
	if err != nil {
		t.Fatal(err)
	}

	const nHot = 4
	var stop atomic.Bool
	var seqs, published [nHot]atomic.Int64
	type entry struct {
		pub int
		seq int64
	}

	// Declare nHot publishers with exactly Workers-1 cold fillers between
	// consecutive ones: ids 0, 4, 8, 12 → all home on shard 0.
	hotIDs := make([]TID, nHot)
	for p := 0; p < nHot; p++ {
		p := p
		tid, err := app.TaskDecl(TData{Name: fmt.Sprintf("hot%d", p), Period: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		hotIDs[p] = tid
		if _, err := app.VersionDecl(tid, func(x *ExecCtx, _ any) error {
			if stop.Load() {
				return nil
			}
			seq := seqs[p].Add(1)
			if err := x.Publish(stream, entry{pub: p, seq: seq}); err == nil {
				published[p].Add(1)
			} // Reject-full: the entry (and its seq) is dropped
			return x.Compute(300 * time.Microsecond)
		}, nil, VSelect{}); err != nil {
			t.Fatal(err)
		}
		if err := app.TopicPub(tid, stream); err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 3; f++ {
			ftid, err := app.TaskDecl(TData{Name: fmt.Sprintf("cold%d-%d", p, f), Period: time.Hour})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := app.VersionDecl(ftid, func(x *ExecCtx, _ any) error { return nil }, nil, VSelect{}); err != nil {
				t.Fatal(err)
			}
		}
	}

	var got [nHot]atomic.Int64
	var duplicates atomic.Int64
	subT, err := app.TaskDecl(TData{Name: "subscriber", Period: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.VersionDecl(subT, func(x *ExecCtx, _ any) error {
		var seen [nHot]map[int64]bool
		for p := range seen {
			seen[p] = make(map[int64]bool)
		}
		emptyAfterStop := 0
		for {
			_, v, ok, err := x.TakeAny()
			if err != nil {
				return err
			}
			if !ok {
				if stop.Load() {
					emptyAfterStop++
					if emptyAfterStop >= 2 {
						break
					}
				}
				if err := x.Sleep(200 * time.Microsecond); err != nil {
					return err
				}
				continue
			}
			emptyAfterStop = 0
			e := v.(entry)
			if seen[e.pub][e.seq] {
				duplicates.Add(1)
			}
			seen[e.pub][e.seq] = true
			got[e.pub].Add(1)
		}
		return nil
	}, nil, VSelect{}); err != nil {
		t.Fatal(err)
	}
	if err := app.TopicSub(subT, stream); err != nil {
		t.Fatal(err)
	}

	var churnErr atomic.Pointer[error]
	saveErr := func(err error) {
		if err != nil {
			churnErr.CompareAndSwap(nil, &err)
		}
	}
	var churners atomic.Int64
	churners.Store(2)

	// Churner 1: admit and retire a transient compute task, so retirement
	// quiescence and slot recycling run against live steal traffic.
	env.Spawn("churn-retire", rt.UnpinnedCore, func(c rt.Ctx) {
		defer churners.Add(-1)
		for !stop.Load() {
			err := app.Reconfigure(c, func(tx *Reconfig) error {
				id, err := tx.AddTask(TData{Name: "transient", Period: time.Millisecond})
				if err != nil {
					return err
				}
				_, err = tx.AddVersion(id, func(x *ExecCtx, _ any) error { return nil }, nil, VSelect{})
				return err
			})
			if err != nil {
				saveErr(fmt.Errorf("admit transient: %w", err))
				return
			}
			c.Sleep(2 * time.Millisecond)
			if err := app.Reconfigure(c, func(tx *Reconfig) error {
				return tx.RemoveTaskByName("transient")
			}); err != nil {
				saveErr(fmt.Errorf("retire transient: %w", err))
				return
			}
			c.Sleep(time.Millisecond)
		}
	})

	// Churner 2: retune a hot publisher's period back and forth, so wheel
	// re-insertion and schedView republication race the steal scans that
	// read the task's tables lock-free.
	env.Spawn("churn-retune", rt.UnpinnedCore, func(c rt.Ctx) {
		defer churners.Add(-1)
		up := false
		for !stop.Load() {
			period := time.Millisecond
			if up {
				period = 1500 * time.Microsecond
			}
			up = !up
			if err := app.Reconfigure(c, func(tx *Reconfig) error {
				return tx.Retune(hotIDs[0], TData{Name: "hot0", Period: period})
			}); err != nil {
				saveErr(fmt.Errorf("retune hot0: %w", err))
				return
			}
			c.Sleep(3 * time.Millisecond)
		}
	})

	env.RunMain(func(c rt.Ctx) {
		if err := app.Start(c); err != nil {
			t.Errorf("start: %v", err)
			stop.Store(true)
			return
		}
		c.Sleep(300 * time.Millisecond)
		stop.Store(true)
		for churners.Load() > 0 {
			c.Sleep(time.Millisecond)
		}
		// Let the subscriber drain the tail before stopping.
		deadline := c.Now() + 5*time.Second
		for c.Now() < deadline {
			done := true
			for p := 0; p < nHot; p++ {
				if got[p].Load() < published[p].Load() {
					done = false
				}
			}
			if done {
				break
			}
			c.Sleep(time.Millisecond)
		}
		app.Stop(c)
		app.Cleanup(c)
	})
	env.Wait()

	if p := churnErr.Load(); p != nil {
		t.Fatalf("churn: %v", *p)
	}
	if err := app.FirstError(); err != nil {
		t.Fatalf("task error: %v", err)
	}
	if n := duplicates.Load(); n != 0 {
		t.Errorf("%d duplicated deliveries across epochs", n)
	}
	for p := 0; p < nHot; p++ {
		pub, taken := published[p].Load(), got[p].Load()
		if pub == 0 {
			t.Errorf("hot%d published nothing", p)
		}
		if taken != pub {
			t.Errorf("hot%d: published %d, subscriber took %d (lost %d)", p, pub, taken, pub-taken)
		}
	}
	if app.Epoch() < 4 {
		t.Errorf("only %d epochs committed; churn too slow to exercise races", app.Epoch())
	}
	st := app.SchedStats()
	if st.Steals == 0 {
		t.Errorf("no steals despite structurally unbalanced load: %+v", st)
	}
	if st.ViewPublishes != int64(app.Epoch())+1 {
		t.Errorf("schedView published %d times over %d epochs (want epochs+1)", st.ViewPublishes, app.Epoch())
	}
	t.Logf("sched stats: %+v, epochs %d", st, app.Epoch())
}
