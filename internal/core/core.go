package core
