package core

import (
	"fmt"
	"sync/atomic"
	"time"
)

// TID identifies a declared task.
type TID int

// VID identifies a version within its task.
type VID int

// HID identifies a declared hardware accelerator.
type HID int

// CID identifies a declared communication endpoint: a FIFO channel or a
// pub-sub topic. Channels and topics share one ID space (and the
// Config.MaxChannels budget); a legacy channel IS a 1-publisher/1-subscriber
// Reject topic under the hood.
type CID int

// NoAccel marks a version that runs purely on the CPU.
const NoAccel HID = -1

// NoCore marks a task not bound to a virtual core (global mapping).
const NoCore = -1

// TData describes a task at declaration time — the paper's struct TData
// (Table 1). Some fields are optional depending on the configured policy.
type TData struct {
	Name string
	// Period is the minimal inter-arrival time T. Zero makes the task
	// non-recurring: it is either data-activated (a non-root graph node) or
	// aperiodic (activated via TaskActivate).
	Period time.Duration
	// Deadline is the relative deadline D; zero means implicit (D = T for
	// periodic tasks, the graph deadline for data-activated nodes).
	Deadline time.Duration
	// VirtCore binds the task to a worker under MappingPartitioned
	// (the paper's virt_core_id); NoCore (or 0..Workers-1) otherwise.
	VirtCore int
	// ReleaseOffset delays the first periodic release.
	ReleaseOffset time.Duration
	// Priority is the static priority under PriorityUser (lower = more
	// urgent).
	Priority int
	// Sporadic marks tasks released by TaskActivate with Period acting as
	// the minimum inter-arrival time enforced by the runtime.
	Sporadic bool
}

// TaskFunc is a task version's entry point. It runs on a job fiber; all
// interaction with time, channels and accelerators goes through the ExecCtx.
// args carries the static argument registered at VersionDecl.
type TaskFunc func(x *ExecCtx, args any) error

// VSelect carries a version's extra-functional properties; which fields
// matter depends on Config.VersionSelect (the paper morphs the structure per
// method; Go lets us keep a single struct).
type VSelect struct {
	// WCET is the version's worst-case execution time (informative; used by
	// SelectTradeoff and the off-line scheduler).
	WCET time.Duration
	// AccelCS is the worst-case length of the version's accelerator
	// critical section (the AccelSection part of WCET). The blocking-aware
	// admission test derives priority-inversion bounds from it; zero on an
	// accelerator-bound version falls back to the full WCET (conservative).
	AccelCS time.Duration
	// EnergyBudget is the version's per-job energy in millijoules
	// (SelectEnergy, SelectTradeoff).
	EnergyBudget float64
	// GetBatteryStatus returns the platform battery level in percent
	// (SelectEnergy). Tasks sharing a battery share the callback.
	GetBatteryStatus func() float64
	// MinBattery is the battery percentage below which this version is not
	// affordable (SelectEnergy); 0 means always affordable.
	MinBattery float64
	// Quality ranks functionally-equivalent versions (SelectEnergy prefers
	// the highest affordable quality).
	Quality int
	// Modes is the bitmask of execution modes this version serves
	// (SelectMode).
	Modes uint32
	// Mask is the permission bitmask (SelectBitmask).
	Mask uint32
}

// VersionInfo is the read-only view handed to user selection callbacks.
type VersionInfo struct {
	ID         VID
	Props      VSelect
	Accel      HID
	AccelBusy  bool
	AccelOwner TID // valid when AccelBusy
}

// SelectState is the runtime context for user selection callbacks.
type SelectState struct {
	Now     time.Duration
	Mode    uint32
	Mask    uint32
	Battery float64 // percent, -1 when no battery is attached
}

// SelectFunc is the SelectUser callback: return the version to run, or a
// negative VID to defer (the job is rescheduled when an accelerator frees
// up).
type SelectFunc func(t TID, versions []VersionInfo, st SelectState) VID

// taskState tracks a task through the live-reconfiguration lifecycle
// (Admitted -> Running -> Draining -> Retired). The zero value is Admitted:
// every Table-1 declaration starts there and Start promotes it to Running.
// Staged marks a slot reserved by an open Reconfig transaction — invisible
// to the scheduler until the transaction commits (or rolled back on abort).
type taskState int

const (
	taskAdmitted taskState = iota // declared; not yet released by a schedule
	taskRunning                   // eligible for job releases
	taskStaged                    // reserved by an uncommitted transaction
	taskDraining                  // removed; in-flight jobs finish, no new releases
	taskRetired                   // fully drained; slot reusable
)

func (s taskState) String() string {
	switch s {
	case taskAdmitted:
		return "admitted"
	case taskRunning:
		return "running"
	case taskStaged:
		return "staged"
	case taskDraining:
		return "draining"
	case taskRetired:
		return "retired"
	default:
		return fmt.Sprintf("taskState(%d)", int(s))
	}
}

// version is a registered implementation of a task.
type version struct {
	id    VID
	fn    TaskFunc
	args  any
	props VSelect
	accel HID
}

// task is the runtime task record.
//
// Locking: the scheduling-hot fields (state, nextRelease, lastActivation,
// everActivated, jobSeq, effDeadline, staticPrio, root, hasIns, fastSel,
// fastDone, the wheel bookkeeping and d itself) are guarded by the task's
// HOME SHARD lock (shards[t.shard].mu): the scheduler tick and TaskActivate
// read and write them under the shard lock alone, and a reconfiguration
// commit — which holds App.mu — additionally takes the home shard lock
// around every write. Graph fields (outEdges/inEdges, pendingData) remain
// pure App.mu state.
type task struct {
	id       TID
	d        TData
	versions []version // len grows to cfg.MaxVersionsPerTask
	// state is the reconfiguration lifecycle state; written under App.mu
	// plus the task's home shard lock, read under either.
	state taskState
	// shard is the task's home release shard (queue + wheel). Readers
	// resolve the home lock with a load/lock/re-validate loop: a commit
	// moving the task (partitioned retune) stores the new index under the
	// OLD shard's lock, so a reader that re-reads the same index after
	// locking holds the task's current home lock.
	shard atomic.Int32
	// live counts in-flight jobs (ready + running + suspended); a Draining
	// task retires when it reaches zero. Atomic: the lock-free completion
	// path decrements it without App.mu.
	live atomic.Int32
	// draining mirrors state == taskDraining for the lock-free completion
	// path: only when it is set does freeJob take App.mu to retire.
	draining atomic.Bool
	// retireEpoch is the reconfiguration epoch whose transaction started
	// this task's drain.
	retireEpoch int
	// Graph links derived from ChannelConnect.
	outEdges []*edge
	inEdges  []*edge
	// effDeadline is the effective relative deadline (implicit resolved).
	effDeadline time.Duration
	// root marks periodic or sporadic tasks (released by the scheduler /
	// TaskActivate); non-roots are data-activated.
	root bool
	// nextRelease is the next periodic release instant.
	nextRelease time.Duration
	// lastActivation enforces sporadic minimum inter-arrival.
	lastActivation time.Duration
	everActivated  bool
	jobSeq         int64
	// staticPrio caches the RM/DM/user priority key.
	staticPrio int64
	// subTopics lists the topics this task subscribes to, sorted by topic
	// priority then declaration order (maintained incrementally and rebuilt
	// at Start; drives TakeAny).
	subTopics []CID
	// pubTopics lists the topics this task publishes on. Together with
	// subTopics it lets retirement scrub exactly the task's own endpoints
	// instead of scanning every declared topic.
	pubTopics []CID

	// hasIns mirrors len(inEdges) > 0 so the release path can classify
	// feedback roots without reading graph state (shard-guarded).
	hasIns bool
	// fastSel marks tasks whose version selection never consults accelerator
	// or user-callback state (no accelerator-bound versions, not SelectUser):
	// workers select their version lock-free.
	fastSel bool
	// fastDone marks graph-isolated tasks (no in or out edges): completion
	// has no successors to release or tokens to consume, so the worker
	// finishes the job without App.mu.
	fastDone bool

	// Timer-wheel bookkeeping (periodic roots only; see wheel.go). wheelGen
	// invalidates bucketed entries lazily, wheelTick is the pending release
	// tick, wheelLive reports whether a live entry exists. wheelGen is
	// atomic: slot recycling (reconfiguration staging) bumps it while a
	// sibling shard's tick may still be gen-checking stale entries of the
	// previous incarnation under only that shard's lock. The rest guarded by
	// the home shard lock.
	wheelGen   atomic.Uint64
	wheelTick  int64
	wheelLive  bool
	wheelShard int // shard whose wheel holds the live entry
	// wheelLvl/wheelSlot locate the live entry inside its wheel so the
	// per-slot occupancy counters can be maintained without slot walks;
	// wheelLvl is -1 for overflow-list entries.
	wheelLvl  int8
	wheelSlot int16
	// pendingData marks a data-activated task queued on the scheduler's
	// catch-up list (seeded delay tokens, post-commit input backlogs).
	// Guarded by App.mu (graph state).
	pendingData bool
}

// edge is a producer->consumer dependency created by ChannelConnect. The
// stamps FIFO carries the root-release instant of each in-flight graph
// activation (bounded by GraphInstanceCap). Edges with initial (delay)
// tokens — the paper's announced future-work extension — start pre-seeded,
// which both breaks cycles and lets a consumer fire ahead of its producer.
type edge struct {
	src, dst TID
	ch       CID
	tokens   int
	initial  int             // delay tokens pre-seeded at Start
	stamps   []time.Duration // ring buffer, preallocated
	head     int
	count    int
	// dead marks an edge severed by a reconfiguration (its endpoint was
	// removed or it was explicitly disconnected); the slot is recycled.
	dead bool
}

func (e *edge) pushStamp(t time.Duration) bool {
	if e.count == len(e.stamps) {
		return false
	}
	e.stamps[(e.head+e.count)%len(e.stamps)] = t
	e.count++
	e.tokens++
	return true
}

func (e *edge) popStamp() (time.Duration, bool) {
	if e.count == 0 {
		return 0, false
	}
	s := e.stamps[e.head]
	e.head = (e.head + 1) % len(e.stamps)
	e.count--
	e.tokens--
	return s, true
}

// jobState tracks a job through its life cycle. It is an int32 alias so the
// constants feed job.state's atomic accessors directly.
type jobState = int32

const (
	jobFree jobState = iota
	jobReady
	jobRunning
	jobPreempted    // suspended by a preemption signal, on a worker's stack
	jobAccelWait    // parked on a busy accelerator's waiter list
	jobAccelAsync   // executing its accelerator section without a CPU worker
	jobAccelResumed // accelerator section done, waiting for a CPU worker
)

// job is one activation of a task. Jobs live in a fixed pool allocated at
// New and recycle through a lock-free Treiber freelist; the scheduling path
// never allocates.
//
// Locking: heap position (heapIdx) and state transitions of queued or
// stack-resident jobs are guarded by the shard lock that currently holds the
// job (shardIdx while queued, the owning worker's shard while on a stack).
// effPrio, worker and shardIdx are atomics so cross-shard readers (steal
// candidates, preemption mirrors, PIP boosts) never tear; their writers
// still follow the shard-lock discipline so heap invariants hold.
type job struct {
	t *task
	// name snapshots t.d.Name at fill time: Retune rewrites t.d under
	// App.mu plus the home shard lock, while completion records, energy
	// accounting and ExecCtx read the running job's name with neither.
	name    string
	seq     int64 // global FIFO tie-breaker
	taskSeq int64 // job index within the task
	// state is atomic because writers hold whichever shard lock owns the
	// job's current home (run handshake, suspension, accelerator rejoin)
	// while the accelerator arbitration paths read it under App.mu alone.
	state    atomic.Int32
	release  time.Duration
	stamp    time.Duration // root release of the graph activation
	absDL    time.Duration
	basePrio int64
	effPrio  atomic.Int64 // may be boosted by PIP
	version  VID
	accel    HID // version-bound accelerator instance held, NoAccel otherwise
	// nested is the instance held by an in-flight ExecCtx.AccelSectionOn
	// (explicit mid-job section on a second accelerator), NoAccel otherwise.
	// A job holds at most one version-bound and one nested instance; holder
	// chains of arbitrary depth form across jobs (A holds X and waits for Y,
	// B holds Y and waits for Z, ...).
	nested HID
	// waitingOn is the pool head this job is parked on while jobAccelWait
	// (NoAccel otherwise); midWait distinguishes a mid-job waiter (bound
	// fiber, granted the freed instance directly) from a pre-run waiter
	// (requeued for a fresh version-selection pass on release).
	waitingOn HID
	midWait   bool
	fib       *fiber
	worker    atomic.Int32 // executing worker index, -1 otherwise
	preempts  int
	started   bool
	fnDone    bool // version function returned (set by the fiber)
	start     time.Duration
	computed  time.Duration // accumulated Compute time (energy accounting)
	err       error
	poolIdx   int
	// heapIdx is the job's slot in its ready queue's heap, -1 while not
	// enqueued (intrusive index: no per-queue position map on the hot path).
	heapIdx int
	// shardIdx is the shard whose ready queue holds the job, -1 otherwise
	// (a migrating or boosted job is re-located with a load/lock/re-validate
	// loop on this field).
	shardIdx atomic.Int32
	// fastSel / fastPath capture the task's fastSel / fastDone flags at
	// release time (stable for the job's lifetime without further locking).
	fastSel  bool
	fastPath bool
	// pendingCharge is dispatch bookkeeping cost (context switch, queue ops)
	// the worker defers to the fiber, which lazily folds it into the job
	// body's first timed primitive.
	pendingCharge time.Duration
	// nextFree links the job into the lock-free pool freelist; atomic so a
	// racing allocator's stale read of a just-pushed slot is well-defined
	// (the CAS generation check discards the value).
	nextFree atomic.Int32
}

// before orders jobs by effective priority then FIFO.
func (j *job) before(k *job) bool {
	jp, kp := j.effPrio.Load(), k.effPrio.Load()
	if jp != kp {
		return jp < kp
	}
	return j.seq < k.seq
}

// accel is one declared hardware accelerator INSTANCE and its PIP state.
// Instances declared together (HwAccelDeclPool with Count > 1) form a pool:
// version bindings reference the pool head, acquisition takes any free
// instance, and waiters park on the head's list only.
type accel struct {
	id      HID
	name    string
	platIdx int // index into platform.Accels, -1 when simulated generically
	busy    bool
	holder  *job
	group   HID    // pool head HID (== id for the head / single accelerators)
	members []HID  // pool head only: every instance HID, head first
	waiters []*job // pool head only: priority-ordered, preallocated capacity
}

// The channel FIFO of Table 1 lives on as the degenerate topic: see
// topic.go. ChannelDecl declares a topic with Reject overflow and a single
// anonymous cursor, which behaves exactly like the paper's bounded FIFO.
