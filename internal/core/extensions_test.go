package core

import (
	"testing"
	"time"

	"github.com/yasmin-rt/yasmin/internal/rt"
)

// TestDelayTokensFeedbackLoop exercises the paper's future-work "delay
// tokens" extension: a periodic producer feeds a consumer which feeds state
// back to the producer. The back edge carries one delay token, so the graph
// is cyclic yet deadlock-free, and iteration k of the producer consumes the
// state produced by iteration k-1.
func TestDelayTokensFeedbackLoop(t *testing.T) {
	r := newRig(t, Config{Workers: 2, Priority: PriorityEDF}, nil)
	app := r.app

	fwd, err := app.ChannelDecl("fwd", 4)
	if err != nil {
		t.Fatal(err)
	}
	back, err := app.ChannelDecl("back", 4)
	if err != nil {
		t.Fatal(err)
	}
	producer, _ := app.TaskDecl(TData{Name: "producer", Period: ms(10)})
	consumer, _ := app.TaskDecl(TData{Name: "consumer"})

	var states []int
	app.VersionDecl(producer, func(x *ExecCtx, _ any) error {
		// Consume the previous iteration's state (the first iteration
		// consumes the seeded delay token; its channel is empty, so the
		// seed value is a default).
		state := 0
		if n, err := x.ChannelLen(back); err == nil && n > 0 {
			v, err := x.Pop(back)
			if err != nil {
				return err
			}
			state = v.(int)
		}
		states = append(states, state)
		if err := x.Compute(ms(1)); err != nil {
			return err
		}
		return x.Push(fwd, state+1)
	}, nil, VSelect{})
	app.VersionDecl(consumer, func(x *ExecCtx, _ any) error {
		v, err := x.Pop(fwd)
		if err != nil {
			return err
		}
		if err := x.Compute(ms(1)); err != nil {
			return err
		}
		return x.Push(back, v.(int)+1)
	}, nil, VSelect{})

	if err := app.ChannelConnect(producer, consumer, fwd); err != nil {
		t.Fatal(err)
	}
	// Plain back edge would be a cycle...
	if err := app.ChannelConnect(consumer, producer, back); err != nil {
		t.Fatal(err)
	}
	r.env.Spawn("probe", rt.UnpinnedCore, func(c rt.Ctx) {
		if err := app.Start(c); err == nil {
			t.Error("un-delayed cycle must be rejected at Start")
			app.Stop(c)
			app.Cleanup(c)
		}
	})
	if err := r.eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}

	// ...with a delay token it is legal and live.
	r2 := newRig(t, Config{Workers: 2, Priority: PriorityEDF}, nil)
	app = r2.app
	fwd, _ = app.ChannelDecl("fwd", 4)
	back, _ = app.ChannelDecl("back", 4)
	producer, _ = app.TaskDecl(TData{Name: "producer", Period: ms(10)})
	consumer, _ = app.TaskDecl(TData{Name: "consumer"})
	states = states[:0]
	app.VersionDecl(producer, func(x *ExecCtx, _ any) error {
		state := 0
		if n, err := x.ChannelLen(back); err == nil && n > 0 {
			v, err := x.Pop(back)
			if err != nil {
				return err
			}
			state = v.(int)
		}
		states = append(states, state)
		if err := x.Compute(ms(1)); err != nil {
			return err
		}
		return x.Push(fwd, state+1)
	}, nil, VSelect{})
	app.VersionDecl(consumer, func(x *ExecCtx, _ any) error {
		v, err := x.Pop(fwd)
		if err != nil {
			return err
		}
		if err := x.Compute(ms(1)); err != nil {
			return err
		}
		return x.Push(back, v.(int)+1)
	}, nil, VSelect{})
	if err := app.ChannelConnect(producer, consumer, fwd); err != nil {
		t.Fatal(err)
	}
	if err := app.ChannelConnectDelayed(consumer, producer, back, 1); err != nil {
		t.Fatal(err)
	}
	r2.runMain(t, ms(95), nil)

	if len(states) < 8 {
		t.Fatalf("only %d producer iterations", len(states))
	}
	// State accumulates +2 per loop iteration: 0, 2, 4, ...
	for i, s := range states {
		if s != 2*i {
			t.Fatalf("iteration %d saw state %d, want %d (feedback lost)", i, s, 2*i)
		}
	}
	if app.Overruns() != 0 {
		t.Errorf("overruns = %d: feedback tokens starved the producer", app.Overruns())
	}
}

func TestDelayTokenValidation(t *testing.T) {
	r := newRig(t, Config{Workers: 1, GraphInstanceCap: 4}, nil)
	ch, _ := r.app.ChannelDecl("c", 1)
	a, _ := r.app.TaskDecl(TData{Name: "a", Period: ms(10)})
	b, _ := r.app.TaskDecl(TData{Name: "b"})
	if err := r.app.ChannelConnectDelayed(a, b, ch, -1); err == nil {
		t.Error("want error for negative delay")
	}
	if err := r.app.ChannelConnectDelayed(a, b, ch, 4); err == nil {
		t.Error("want error for delay >= GraphInstanceCap")
	}
	if err := r.app.ChannelConnectDelayed(a, b, ch, 2); err != nil {
		t.Errorf("legal delay rejected: %v", err)
	}
}

// TestDelayedEdgeAllowsEarlyConsumer checks the non-cyclic use of delay
// tokens: a consumer with a 2-token edge fires twice before its producer
// ever completes.
func TestDelayedEdgeAllowsEarlyConsumer(t *testing.T) {
	r := newRig(t, Config{Workers: 2, Priority: PriorityEDF}, nil)
	app := r.app
	ch, _ := app.ChannelDecl("d", 4)
	slow, _ := app.TaskDecl(TData{Name: "slow", Period: ms(50)})
	sink, _ := app.TaskDecl(TData{Name: "sink"})
	app.VersionDecl(slow, spin(ms(30)), nil, VSelect{})
	var fires []time.Duration
	app.VersionDecl(sink, func(x *ExecCtx, _ any) error {
		fires = append(fires, x.Now())
		return x.Compute(ms(1))
	}, nil, VSelect{})
	if err := app.ChannelConnectDelayed(slow, sink, ch, 2); err != nil {
		t.Fatal(err)
	}
	r.runMain(t, ms(45), nil)
	// The two seeded tokens fire the sink before slow's first completion
	// (~30ms); they are consumed one per activation round.
	early := 0
	for _, at := range fires {
		if at < ms(30) {
			early++
		}
	}
	if early < 1 {
		t.Errorf("fires = %v, want at least one pre-producer firing from seeds", fires)
	}
}
