package core

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/yasmin-rt/yasmin/internal/rt"
)

// TestReconfigureRaceOSEnv races concurrent Reconfigure transactions against
// Publish/Take/TakeAny on the wall-clock backend: two steady publishers fan
// into one Reject topic through the lock-free MPSC staging ring while two
// threads repeatedly admit and retire tasks (one of which joins the topic as
// a transient subscriber, exercising cursor scrub and gc at retirement).
// Invariants checked under -race:
//
//   - no lost entries for the surviving subscriber: every successfully
//     published entry is delivered to it exactly once;
//   - per-publisher FIFO across every reconfiguration epoch.
func TestReconfigureRaceOSEnv(t *testing.T) {
	env := rt.NewOSEnv()
	env.Spin = false
	app, err := New(Config{
		Workers: 4, Priority: PriorityEDF,
		MaxTasks: 8, MaxChannels: 4, MaxPendingJobs: 64,
	}, env)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := app.TopicDecl("stream", TopicOpts{Capacity: 512})
	if err != nil {
		t.Fatal(err)
	}

	const nPub = 2
	var stop atomic.Bool
	var published [nPub]atomic.Int64
	type entry struct{ pub, seq int }

	for p := 0; p < nPub; p++ {
		p := p
		tid, err := app.TaskDecl(TData{Name: fmt.Sprintf("pub%d", p), Period: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := app.VersionDecl(tid, func(x *ExecCtx, _ any) error {
			seq := 0
			for !stop.Load() {
				if err := x.Publish(stream, entry{pub: p, seq: seq + 1}); err != nil {
					if err := x.Sleep(100 * time.Microsecond); err != nil {
						return err
					}
					continue // Reject-full: back off and retry
				}
				seq++
				published[p].Store(int64(seq))
				if seq%128 == 0 {
					if err := x.Sleep(50 * time.Microsecond); err != nil {
						return err
					}
				}
			}
			return nil
		}, nil, VSelect{}); err != nil {
			t.Fatal(err)
		}
		if err := app.TopicPub(tid, stream); err != nil {
			t.Fatal(err)
		}
	}

	var got [nPub]atomic.Int64
	var fifoViolations atomic.Int64
	subT, err := app.TaskDecl(TData{Name: "subscriber", Period: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.VersionDecl(subT, func(x *ExecCtx, _ any) error {
		var last [nPub]int
		emptyAfterStop := 0
		for {
			_, v, ok, err := x.TakeAny()
			if err != nil {
				return err
			}
			if !ok {
				if stop.Load() {
					// Publishers quiesced: two empty sweeps with a grace
					// sleep between them mean the backlog (including the
					// staging ring) is fully drained.
					emptyAfterStop++
					if emptyAfterStop >= 2 {
						break
					}
				}
				if err := x.Sleep(200 * time.Microsecond); err != nil {
					return err
				}
				continue
			}
			emptyAfterStop = 0
			e := v.(entry)
			if e.seq != last[e.pub]+1 {
				fifoViolations.Add(1)
			}
			last[e.pub] = e.seq
			got[e.pub].Store(int64(e.seq))
		}
		return nil
	}, nil, VSelect{}); err != nil {
		t.Fatal(err)
	}
	if err := app.TopicSub(subT, stream); err != nil {
		t.Fatal(err)
	}

	// Two concurrent reconfigurers: one churns a transient subscriber task
	// on the shared topic, the other churns an unrelated compute task.
	var churnErr atomic.Pointer[error]
	saveErr := func(err error) {
		if err != nil {
			churnErr.CompareAndSwap(nil, &err)
		}
	}
	var churners atomic.Int64
	churn := func(name string, withSub bool) func(c rt.Ctx) {
		return func(c rt.Ctx) {
			defer churners.Add(-1)
			for !stop.Load() {
				err := app.Reconfigure(c, func(tx *Reconfig) error {
					id, err := tx.AddTask(TData{Name: name, Period: time.Millisecond})
					if err != nil {
						return err
					}
					body := func(x *ExecCtx, _ any) error { return nil }
					if withSub {
						body = func(x *ExecCtx, _ any) error {
							for i := 0; i < 4; i++ {
								if _, ok, err := x.Take(stream); err != nil || !ok {
									return err
								}
							}
							return nil
						}
					}
					if _, err := tx.AddVersion(id, body, nil, VSelect{}); err != nil {
						return err
					}
					if withSub {
						return tx.SubOn(id, stream)
					}
					return nil
				})
				if err != nil {
					saveErr(fmt.Errorf("add %s: %w", name, err))
					return
				}
				c.Sleep(2 * time.Millisecond)
				if err := app.Reconfigure(c, func(tx *Reconfig) error {
					return tx.RemoveTaskByName(name)
				}); err != nil {
					saveErr(fmt.Errorf("remove %s: %w", name, err))
					return
				}
				c.Sleep(time.Millisecond)
			}
		}
	}
	churners.Store(2)
	env.Spawn("churn-sub", rt.UnpinnedCore, churn("churnA", true))
	env.Spawn("churn-cpu", rt.UnpinnedCore, churn("churnB", false))

	env.RunMain(func(c rt.Ctx) {
		if err := app.Start(c); err != nil {
			t.Errorf("start: %v", err)
			stop.Store(true)
			return
		}
		c.Sleep(250 * time.Millisecond)
		stop.Store(true)
		for churners.Load() > 0 {
			c.Sleep(time.Millisecond)
		}
		// Give the subscriber time to drain the tail before stopping.
		deadline := c.Now() + 5*time.Second
		for c.Now() < deadline {
			done := true
			for p := 0; p < nPub; p++ {
				if got[p].Load() < published[p].Load() {
					done = false
				}
			}
			if done {
				break
			}
			c.Sleep(time.Millisecond)
		}
		app.Stop(c)
		app.Cleanup(c)
	})
	env.Wait()

	if p := churnErr.Load(); p != nil {
		t.Fatalf("churn: %v", *p)
	}
	if err := app.FirstError(); err != nil {
		t.Fatalf("task error: %v", err)
	}
	if n := fifoViolations.Load(); n != 0 {
		t.Errorf("per-publisher FIFO violated %d times across epochs", n)
	}
	for p := 0; p < nPub; p++ {
		pub, taken := published[p].Load(), got[p].Load()
		if pub == 0 {
			t.Errorf("pub%d published nothing", p)
		}
		if taken != pub {
			t.Errorf("pub%d: published %d, surviving subscriber took %d (lost %d)",
				p, pub, taken, pub-taken)
		}
	}
	if app.Epoch() < 4 {
		t.Errorf("only %d epochs committed; churn too slow to exercise races", app.Epoch())
	}
}
