package core

import (
	"strings"
	"testing"
	"time"

	"github.com/yasmin-rt/yasmin/internal/rt"
)

// TestReconfigSporadicNoDeadlinePanic is the regression test for the
// sporadic-task-without-deadline panic: a transaction staging a sporadic
// task with neither a minimum inter-arrival time nor an explicit deadline
// used to pass validation (the deadline rule exempted sporadic tasks) and
// then panic inside commit when deriveTaskLocked rejected it — while
// holding the App lock, so the deferred rollback deadlocked on top.
//
// The fixed behaviour: Reconfigure rejects the transaction with a clean
// validation error, the application is untouched, and a corrected
// transaction on the same App succeeds.
func TestReconfigSporadicNoDeadlinePanic(t *testing.T) {
	env := rt.NewOSEnv()
	env.Spin = false
	app, err := New(Config{Workers: 1, MaxTasks: 4, MaxChannels: 2, MaxPendingJobs: 8}, env)
	if err != nil {
		t.Fatal(err)
	}
	env.Spawn("main", rt.UnpinnedCore, func(c rt.Ctx) {
		err := app.Reconfigure(c, func(tx *Reconfig) error {
			id, err := tx.AddTask(TData{Name: "spore", Sporadic: true})
			if err != nil {
				return err
			}
			_, err = tx.AddVersion(id, func(x *ExecCtx, _ any) error { return nil }, nil, VSelect{WCET: time.Millisecond})
			return err
		})
		if err == nil {
			t.Error("sporadic task without period or deadline must be rejected")
		} else if !strings.Contains(err.Error(), "sporadic task spore") {
			t.Errorf("rejection should name the offending task, got: %v", err)
		}
		if app.Epoch() != 0 {
			t.Errorf("rejected transaction bumped the epoch to %d", app.Epoch())
		}

		// The rejection must roll back cleanly: the same App admits the
		// corrected transaction (a minimum inter-arrival time gives the
		// sporadic task its implicit deadline).
		err = app.Reconfigure(c, func(tx *Reconfig) error {
			id, err := tx.AddTask(TData{Name: "spore", Sporadic: true, Period: 10 * time.Millisecond})
			if err != nil {
				return err
			}
			_, err = tx.AddVersion(id, func(x *ExecCtx, _ any) error { return nil }, nil, VSelect{WCET: time.Millisecond})
			return err
		})
		if err != nil {
			t.Errorf("corrected sporadic task rejected: %v", err)
		}
		if app.Epoch() != 1 {
			t.Errorf("committed transaction should report epoch 1, got %d", app.Epoch())
		}
		if id := app.TaskIDByName("spore"); id < 0 {
			t.Error("committed sporadic task not found by name")
		}
	})
	env.Wait()
}

// TestReconfigSporadicExplicitDeadline: a sporadic task with no minimum
// inter-arrival time is admissible when it declares an explicit deadline.
func TestReconfigSporadicExplicitDeadline(t *testing.T) {
	env := rt.NewOSEnv()
	env.Spin = false
	app, err := New(Config{Workers: 1, MaxTasks: 4, MaxChannels: 2, MaxPendingJobs: 8}, env)
	if err != nil {
		t.Fatal(err)
	}
	env.Spawn("main", rt.UnpinnedCore, func(c rt.Ctx) {
		err := app.Reconfigure(c, func(tx *Reconfig) error {
			id, err := tx.AddTask(TData{Name: "burst", Sporadic: true, Deadline: 5 * time.Millisecond})
			if err != nil {
				return err
			}
			_, err = tx.AddVersion(id, func(x *ExecCtx, _ any) error { return nil }, nil, VSelect{WCET: time.Millisecond})
			return err
		})
		if err != nil {
			t.Errorf("sporadic task with explicit deadline rejected: %v", err)
		}
	})
	env.Wait()
}
