package core

import (
	"testing"
	"time"

	"github.com/yasmin-rt/yasmin/internal/rt"
)

func TestReconfigSporadicNoDeadlinePanic(t *testing.T) {
	env := rt.NewOSEnv()
	env.Spin = false
	app, err := New(Config{Workers: 1, MaxTasks: 4, MaxChannels: 2, MaxPendingJobs: 8}, env)
	if err != nil {
		t.Fatal(err)
	}
	env.Spawn("main", rt.UnpinnedCore, func(c rt.Ctx) {
		err := app.Reconfigure(c, func(tx *Reconfig) error {
			id, err := tx.AddTask(TData{Name: "spore", Sporadic: true})
			if err != nil {
				return err
			}
			_, err = tx.AddVersion(id, func(x *ExecCtx, _ any) error { return nil }, nil, VSelect{WCET: time.Millisecond})
			return err
		})
		t.Logf("Reconfigure returned: %v", err)
	})
	env.Wait()
}
