package core

import (
	"fmt"
	"time"

	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/trace"
)

// ExecCtx is the execution context handed to task version functions. It is
// the only sanctioned interface between user code and the middleware: time,
// modelled computation, FIFO channels, accelerator sections and mode
// queries all go through it. An ExecCtx is valid only for the duration of
// the job it was created for.
type ExecCtx struct {
	app *App
	j   *job
	c   rt.Ctx
	f   *fiber
}

// Now returns the current time (virtual or wall-clock, per environment).
func (x *ExecCtx) Now() time.Duration { return x.c.Now() }

// App returns the owning middleware instance (e.g. to switch execution
// modes from task code, as the SAR application's detector does).
func (x *ExecCtx) App() *App { return x.app }

// Task returns the executing task's ID.
func (x *ExecCtx) Task() TID { return x.j.t.id }

// TaskName returns the executing task's name.
func (x *ExecCtx) TaskName() string { return x.j.name }

// Version returns the selected version's ID.
func (x *ExecCtx) Version() VID { return x.j.version }

// JobIndex returns the job's index within its task (1-based).
func (x *ExecCtx) JobIndex() int64 { return x.j.taskSeq }

// Release returns the job's release instant.
func (x *ExecCtx) Release() time.Duration { return x.j.release }

// AbsoluteDeadline returns the job's absolute deadline.
func (x *ExecCtx) AbsoluteDeadline() time.Duration { return x.j.absDL }

// Mode returns the application's current execution mode.
func (x *ExecCtx) Mode() uint32 { return x.app.Mode() }

// Battery returns the battery level in percent, or -1 without a battery.
func (x *ExecCtx) Battery() float64 {
	if x.app.battery == nil {
		return -1
	}
	return x.app.battery.Level()
}

// Compute consumes d of CPU work on the job's virtual CPU. It is the
// preemption point: when the scheduler signals the worker (a higher-priority
// job became ready), Compute suspends the job mid-way, lets the worker run
// the urgent job, and transparently resumes the remainder afterwards.
// It returns ErrTerminated when the middleware is shutting down.
func (x *ExecCtx) Compute(d time.Duration) error {
	rem := d
	for rem > 0 {
		consumedStart := rem
		r, intr := x.c.Compute(rem)
		x.j.computed += consumedStart - r
		rem = r
		if !intr {
			return nil
		}
		cont := x.suspendForPreemption()
		if !cont {
			return ErrTerminated
		}
	}
	return nil
}

// suspendForPreemption is called when the fiber received the preemption
// signal mid-Compute. Under the worker's own shard lock it re-checks that a
// more urgent job is actually waiting (the signal may be stale — and under
// the global mapping the dispatcher migrates the urgent job into this
// worker's shard before signalling, so the own queue head is the full
// check); if so it hands the worker back, parks, and returns when the
// worker resumes this job. Returns false on termination.
func (x *ExecCtx) suspendForPreemption() bool {
	a := x.app
	if a.terminating.Load() {
		return false
	}
	j := x.j
	w := a.workers[j.worker.Load()]
	sh := a.shards[w.idx]
	sh.mu.Lock()
	head := sh.q.peek()
	if head == nil || !head.before(j) || !a.cfg.Preemption {
		// Spurious or stale signal: keep running.
		sh.mu.Unlock()
		return true
	}
	w.wakeReason = wakeSuspended
	w.wakeJob = j
	sh.mu.Unlock()
	c := a.env.Costs()
	x.c.Charge(c.ContextSwitch)
	w.th.Unpark()
	// Stay suspended until the worker genuinely resumes us (Park returns
	// false). Interrupted parks are stale preemption signals: a scheduler
	// may signal the same fiber more than once per tick and the extras
	// coalesce as pending interrupts — they must not self-resume the job.
	for {
		intr := x.c.Park()
		if !intr {
			return true
		}
		if a.terminating.Load() {
			return false
		}
	}
}

// AccelSection executes the accelerator-bound part of the version: d of
// work on the accelerator declared via HwAccelUse. In the paper's default
// (synchronous) model the CPU worker stays occupied for the whole section
// (the Section 3.2 "Limitation"); with Config.AsyncAccel the worker is
// released to run other jobs and this job re-acquires a CPU afterwards —
// the paper's announced future-work extension.
func (x *ExecCtx) AccelSection(d time.Duration) error {
	if x.j.accel == NoAccel {
		// Version has no accelerator: it is CPU work.
		return x.Compute(d)
	}
	scaled := x.accelScaled(d)
	if !x.app.cfg.AsyncAccel || x.app.cfg.Mapping == MappingOffline {
		// Synchronous: the worker is pinned down; the section is not
		// preemptible (a signal cannot stop a running GPU kernel). The
		// offline dispatcher has no detach/rejoin handshake, so it is
		// always synchronous — the table accounts for the section anyway.
		x.c.Charge(scaled)
		x.j.computed += d
		return nil
	}
	return x.asyncAccelSection(scaled, d)
}

// accelScaled converts nominal accelerator work to the speed of the
// version-bound instance.
func (x *ExecCtx) accelScaled(d time.Duration) time.Duration {
	return x.app.accelScaledOn(x.j.accel, d)
}

// accelScaledOn converts nominal accelerator work to instance h's speed.
func (a *App) accelScaledOn(h HID, d time.Duration) time.Duration {
	pl := a.env.Platform()
	if pl == nil {
		return d
	}
	pi := a.accels[h].platIdx
	if pi < 0 || pi >= len(pl.Accels) {
		return d
	}
	if s := pl.Accels[pi].Speed; s > 0 {
		return time.Duration(float64(d) / s)
	}
	return d
}

// AccelSectionOn executes d of work on an explicitly named accelerator
// pool — in addition to (and possibly while holding) the version-bound
// accelerator of AccelSection. When every instance of the pool is busy the
// job parks on the pool's waiter list mid-execution: the CPU worker is
// released to run other jobs (the detach/rejoin handshake of asynchronous
// sections), the holders inherit the waiter's priority transitively along
// the holder chain, and the freed instance is granted directly to the most
// urgent waiter. Because the calling job may already hold its version-bound
// accelerator, nested sections form holder chains; keeping a global
// acquisition order across pools is the application's responsibility, as
// with any nested locking.
func (x *ExecCtx) AccelSectionOn(h HID, d time.Duration) error {
	a := x.app
	j := x.j
	if int(h) < 0 || int(h) >= a.naccels {
		return fmt.Errorf("core: no accelerator %d", h)
	}
	if d <= 0 {
		return nil
	}
	if a.cfg.Mapping == MappingOffline {
		// The off-line table accounts for explicit sections like any other
		// work; the dispatcher has no park/grant handshake.
		x.c.Charge(a.accelScaledOn(h, d))
		j.computed += d
		return nil
	}
	a.mu.Lock(x.c)
	head := a.poolHead(h)
	if j.nested != NoAccel {
		a.mu.Unlock(x.c)
		return fmt.Errorf("core: task %s: nested AccelSectionOn sections cannot themselves nest", j.name)
	}
	var inst HID
	if j.accel != NoAccel && a.poolHead(j.accel) == head {
		// Re-entering the pool whose instance the job already holds: run the
		// section on it.
		inst = j.accel
		a.mu.Unlock(x.c)
	} else if inst = a.poolAvailableForLocked(j, head); inst != NoAccel {
		a.acquireInstanceLocked(x.c, inst, j)
		j.nested = inst
		a.mu.Unlock(x.c)
	} else {
		// Park mid-job: hand the worker back (it runs other jobs meanwhile)
		// and wait for a direct grant from a releasing holder. The state
		// flip and the worker handshake go under the shard lock (App.mu is
		// held too — rank 2 -> 3): preemption scans read cur.state under the
		// shard lock alone, and a releasing holder's direct grant flips
		// jobAccelWait -> jobAccelResumed under the same pair.
		w := a.workers[j.worker.Load()]
		sh := a.shards[w.idx]
		sh.mu.Lock()
		j.state.Store(jobAccelWait)
		w.wakeReason = wakeAsyncFree
		w.wakeJob = j
		sh.mu.Unlock()
		j.waitingOn = head
		j.midWait = true
		a.insertWaiterLocked(head, j)
		a.recordAccel(x.c, trace.AccelPark, head, j)
		a.boostChainLocked(x.c, head, j.effPrio.Load())
		a.mu.Unlock(x.c)
		x.c.Charge(a.env.Costs().ContextSwitch)
		w.th.Unpark()
		// Park until a worker resumes us after the grant; stale preemption
		// interrupts must not self-resume the job.
		for {
			intr := x.c.Park()
			if !intr {
				break
			}
			if a.terminating.Load() {
				return ErrTerminated
			}
		}
		inst = j.nested
	}
	// The section itself: not preemptible (a signal cannot stop a running
	// kernel), charged at the instance's speed.
	x.c.Charge(a.accelScaledOn(inst, d))
	j.computed += d
	if inst != j.accel {
		a.mu.Lock(x.c)
		j.nested = NoAccel
		a.releaseInstanceLocked(x.c, inst, j)
		if a.cfg.Preemption {
			// The restored (lower) priority may no longer beat the queue
			// head; let the dispatcher raise the preemption signal now
			// rather than at the next release tick.
			a.dispatch(x.c)
		}
		a.mu.Unlock(x.c)
	}
	return nil
}

// asyncAccelSection releases the CPU worker, waits out the accelerator time
// off-CPU, then rejoins the worker through its resume stack.
func (x *ExecCtx) asyncAccelSection(scaled, nominal time.Duration) error {
	if err := x.detachedWait(scaled); err != nil {
		return err
	}
	x.j.computed += nominal
	return x.rejoinWorker()
}

// detachedWait hands the CPU worker back (wakeAsyncFree) and waits out d on
// the fiber, off any CPU. Stale preemption interrupts must not shorten the
// wait: the sleep is re-armed until the full duration elapsed. The caller
// must rejoinWorker() before touching middleware state again.
func (x *ExecCtx) detachedWait(d time.Duration) error {
	a := x.app
	j := x.j
	w := a.workers[j.worker.Load()]
	sh := a.shards[w.idx]
	sh.mu.Lock()
	j.state.Store(jobAccelAsync)
	w.wakeReason = wakeAsyncFree
	w.wakeJob = j
	sh.mu.Unlock()
	w.th.Unpark()

	until := x.c.Now() + d
	for x.c.Now() < until {
		if intr := x.c.SleepUntil(until); intr && a.terminating.Load() {
			return ErrTerminated
		}
	}
	return nil
}

// rejoinWorker re-acquires a CPU after detachedWait: the job becomes
// resumable on its worker's stack, competing on priority with the queue —
// an idle worker is woken, a less urgent running job is preempted.
func (x *ExecCtx) rejoinWorker() error {
	a := x.app
	j := x.j
	w := a.workers[j.worker.Load()]
	sh := a.shards[w.idx]
	sh.mu.Lock()
	// Become resumable BEFORE probing the idle list: if the claim below
	// loses to the worker's self-claim, the worker's pre-park re-check
	// (workVisible, under this shard lock) is guaranteed to see the
	// resumed state on its stack.
	j.state.Store(jobAccelResumed)
	cur := w.current
	preemptCurrent := a.cfg.Preemption &&
		cur != nil && cur.state.Load() == jobRunning && j.before(cur)
	var preemptFiber rt.Thread
	if preemptCurrent && cur.fib != nil {
		preemptFiber = cur.fib.th
	}
	sh.mu.Unlock()
	if a.claimIdle(w) {
		w.th.Unpark()
	} else if preemptFiber != nil {
		x.c.Charge(a.env.Costs().SignalDeliver)
		preemptFiber.Interrupt()
	}
	// Until the worker resumes us; stale interrupts must not self-resume.
	for {
		intr := x.c.Park()
		if !intr {
			return nil
		}
		if a.terminating.Load() {
			return ErrTerminated
		}
	}
}

// Sleep suspends the job for at least d of virtual or wall-clock time
// WITHOUT consuming modelled CPU work (contrast Compute) and WITHOUT
// holding the CPU: the worker is released for the duration (the same
// detach/rejoin path as asynchronous accelerator sections), so any other
// ready job — more or less urgent — runs meanwhile. On wake the job
// re-acquires a CPU by priority, so the actual suspension can exceed d
// under load. Returns ErrTerminated on shutdown. Aperiodic servers and
// polling subscribers idle with Sleep so waiting burns neither budget nor
// a core.
func (x *ExecCtx) Sleep(d time.Duration) error {
	if d <= 0 {
		return nil
	}
	if x.app.cfg.Mapping == MappingOffline {
		// Time-triggered dispatch has no detach/rejoin handshake (the
		// dispatcher treats any fiber wake as completion) and the table
		// slot belongs to this job anyway: wait in place.
		until := x.c.Now() + d
		for x.c.Now() < until {
			if intr := x.c.SleepUntil(until); intr && x.app.terminating.Load() {
				return ErrTerminated
			}
		}
		return nil
	}
	if err := x.detachedWait(d); err != nil {
		return err
	}
	return x.rejoinWorker()
}

// Reconfigure runs a live reconfiguration transaction from task code —
// e.g. a detector task retiring the search pipeline when the mission phase
// changes. The calling job keeps running; removing the calling task itself
// is legal (it drains once this job completes).
func (x *ExecCtx) Reconfigure(fn func(tx *Reconfig) error) error {
	return x.app.Reconfigure(x.c, fn)
}

// SwitchMode switches to a named mode preset from task code.
func (x *ExecCtx) SwitchMode(name string) error { return x.app.SwitchMode(x.c, name) }

// Publish appends a value to a topic under its overflow policy — the
// pub-sub generalisation of the channel_push macro. One buffered entry
// serves every subscriber (per-subscriber cursors; no per-subscriber
// copies). Under Reject a full buffer fails the publish (the Table-1
// semantics); DropOldest and Latest never fail.
//
// On a topic with registered publishers, only those tasks may Publish. On
// the wall-clock backend a multi-publisher topic is staged through a
// lock-free MPSC ring, so concurrent publishers never serialise on the
// middleware lock (the staging ring may transiently hold up to one extra
// Capacity of entries).
//
//yasmin:noalloc
func (x *ExecCtx) Publish(c CID, v any) error {
	a := x.app
	if int(c) < 0 || int(c) >= int(a.ntopicsA.Load()) {
		return fmt.Errorf("core: no channel %d", c) //yasmin:alloc-ok cold error path
	}
	tp := &a.topics[c]
	// Endpoint discipline and the staging fast path go through the atomic
	// snapshot: a concurrent reconfiguration swaps in a new consistent view
	// under the lock, so no field read here can tear.
	vw := tp.view.Load()
	if vw == nil || vw.dead {
		return fmt.Errorf("core: channel %d was removed", c) //yasmin:alloc-ok cold error path
	}
	if len(vw.pubs) > 0 && !vw.isPub(x.j.t.id) {
		return fmt.Errorf("core: task %s does not publish on topic %s", x.j.name, vw.name) //yasmin:alloc-ok cold error path
	}
	costs := a.env.Costs()
	opCost := costs.ChannelOp + time.Duration(vw.nsubs)*costs.TopicFanoutPerSub
	if vw.staging != nil {
		// Wall-clock fan-in fast path: no middleware lock.
		x.c.Charge(opCost)
		if vw.staging.Push(v) {
			if vw.fwd != nil {
				vw.fwd(x.j.t.id, v) //yasmin:alloc-ok cluster egress hook owns its buffers
			}
			return nil
		}
		// Staging full: drain it under the lock, then retry the ring. The
		// entry must go BEHIND anything still staged (our own earlier
		// publishes may sit there — possibly stuck behind another
		// producer's claimed-but-unwritten slot, which the drain cannot
		// pass), so never publish directly into the buffer from here.
		// Under Reject one drain+retry decides: still full means reject.
		// DropOldest/Latest never fail: keep draining until the ring
		// accepts — each round either the drain frees slots or the
		// mid-write producer finishes, so this terminates.
		for {
			a.mu.Lock(x.c)
			tp.drainStaging()
			a.mu.Unlock(x.c)
			if vw.staging.Push(v) {
				if vw.fwd != nil {
					vw.fwd(x.j.t.id, v) //yasmin:alloc-ok cluster egress hook owns its buffers
				}
				return nil
			}
			if vw.policy == Reject {
				return fmt.Errorf("core: channel %s full (%d)", vw.name, vw.capacity) //yasmin:alloc-ok cold error path
			}
			x.c.Yield() //yasmin:alloc-ok contended slow path
		}
	}
	a.mu.Lock(x.c)
	x.c.Charge(opCost)
	if tp.dead { // removed between the snapshot read and the lock
		a.mu.Unlock(x.c)
		return fmt.Errorf("core: channel %d was removed", c) //yasmin:alloc-ok cold error path
	}
	ok := tp.publish(v)
	a.mu.Unlock(x.c)
	if !ok {
		return fmt.Errorf("core: channel %s full (%d)", vw.name, vw.capacity) //yasmin:alloc-ok cold error path
	}
	// Remote fan-out rides the publisher's thread, outside the App lock
	// and only after the local buffer accepted the value — local and
	// remote subscribers see the same per-publisher prefix.
	if vw.fwd != nil {
		vw.fwd(x.j.t.id, v) //yasmin:alloc-ok cluster egress hook owns its buffers
	}
	return nil
}

// cursorFor resolves which cursor a consuming call uses: the calling
// task's subscription on a topic with registered subscribers, the shared
// anonymous cursor otherwise (legacy channels). Caller holds the lock.
func (x *ExecCtx) cursorFor(tp *topic) (*uint64, error) {
	if len(tp.subs) == 0 {
		return &tp.anon, nil
	}
	if s := tp.subFor(x.j.t.id); s != nil {
		return &s.cursor, nil
	}
	return nil, fmt.Errorf("core: task %s does not subscribe to topic %s", x.j.name, tp.name)
}

// Take removes the next value the calling task has not consumed from a
// topic; ok is false when nothing is pending (no error — polling an empty
// sensor stream is normal). Under Latest it returns the newest value and
// skips everything older (conflation).
func (x *ExecCtx) Take(c CID) (v any, ok bool, err error) {
	a := x.app
	if int(c) < 0 || int(c) >= int(a.ntopicsA.Load()) {
		return nil, false, fmt.Errorf("core: no channel %d", c)
	}
	a.mu.Lock(x.c)
	x.c.Charge(a.env.Costs().ChannelOp)
	tp := &a.topics[c]
	if tp.dead {
		a.mu.Unlock(x.c)
		return nil, false, fmt.Errorf("core: channel %d was removed", c)
	}
	tp.drainStaging()
	cur, err := x.cursorFor(tp)
	if err == nil {
		v, ok = tp.take(cur)
	}
	a.mu.Unlock(x.c)
	return v, ok, err
}

// TakeAny takes from the most urgent non-empty topic among cs — or, with no
// arguments, among all topics the calling task subscribes to — in topic
// priority order (lower Priority first, declaration order breaking ties).
// This is consumer-side channel prioritization: an aggregator drains its
// alarm stream before its bulk stream. Returns the topic the value came
// from; ok is false when every topic is empty.
func (x *ExecCtx) TakeAny(cs ...CID) (from CID, v any, ok bool, err error) {
	a := x.app
	a.mu.Lock(x.c)
	x.c.Charge(a.env.Costs().ChannelOp)
	if len(cs) == 0 {
		cs = x.j.t.subTopics
	}
	for _, c := range cs {
		if int(c) < 0 || int(c) >= a.ntopics {
			a.mu.Unlock(x.c)
			return -1, nil, false, fmt.Errorf("core: no channel %d", c)
		}
		tp := &a.topics[c]
		if tp.dead {
			a.mu.Unlock(x.c)
			return -1, nil, false, fmt.Errorf("core: channel %d was removed", c)
		}
		tp.drainStaging()
		cur, cerr := x.cursorFor(tp)
		if cerr != nil {
			a.mu.Unlock(x.c)
			return -1, nil, false, cerr
		}
		if v, ok = tp.take(cur); ok {
			a.mu.Unlock(x.c)
			return c, v, true, nil
		}
	}
	a.mu.Unlock(x.c)
	return -1, nil, false, nil
}

// Push appends a value to a FIFO channel — the channel_push macro. It fails
// when the channel is full (static capacity, Table 1). Push is Publish by
// its Table-1 name; both work on any CID.
func (x *ExecCtx) Push(c CID, v any) error { return x.Publish(c, v) }

// Pop removes the oldest value from a FIFO channel — the channel_pop macro.
// It fails when the channel is empty: with graph activation semantics the
// scheduler guarantees inputs are present, so an empty pop is a programming
// error, not a blocking condition. (Take is the polling variant that treats
// empty as a normal outcome.)
func (x *ExecCtx) Pop(c CID) (any, error) {
	v, ok, err := x.Take(c)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("core: channel %s empty", x.app.topics[c].name)
	}
	return v, nil
}

// ChannelLen returns the number of values buffered for the calling task on
// a channel or topic (its unconsumed backlog).
func (x *ExecCtx) ChannelLen(c CID) (int, error) {
	a := x.app
	if int(c) < 0 || int(c) >= int(a.ntopicsA.Load()) {
		return 0, fmt.Errorf("core: no channel %d", c)
	}
	a.mu.Lock(x.c)
	tp := &a.topics[c]
	if tp.dead {
		a.mu.Unlock(x.c)
		return 0, fmt.Errorf("core: channel %d was removed", c)
	}
	tp.drainStaging()
	cur, err := x.cursorFor(tp)
	var n int
	if err == nil {
		n = tp.backlog(*cur)
	}
	a.mu.Unlock(x.c)
	return n, err
}
