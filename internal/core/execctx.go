package core

import (
	"fmt"
	"time"

	"github.com/yasmin-rt/yasmin/internal/rt"
)

// ExecCtx is the execution context handed to task version functions. It is
// the only sanctioned interface between user code and the middleware: time,
// modelled computation, FIFO channels, accelerator sections and mode
// queries all go through it. An ExecCtx is valid only for the duration of
// the job it was created for.
type ExecCtx struct {
	app *App
	j   *job
	c   rt.Ctx
	f   *fiber
}

// Now returns the current time (virtual or wall-clock, per environment).
func (x *ExecCtx) Now() time.Duration { return x.c.Now() }

// App returns the owning middleware instance (e.g. to switch execution
// modes from task code, as the SAR application's detector does).
func (x *ExecCtx) App() *App { return x.app }

// Task returns the executing task's ID.
func (x *ExecCtx) Task() TID { return x.j.t.id }

// TaskName returns the executing task's name.
func (x *ExecCtx) TaskName() string { return x.j.t.d.Name }

// Version returns the selected version's ID.
func (x *ExecCtx) Version() VID { return x.j.version }

// JobIndex returns the job's index within its task (1-based).
func (x *ExecCtx) JobIndex() int64 { return x.j.taskSeq }

// Release returns the job's release instant.
func (x *ExecCtx) Release() time.Duration { return x.j.release }

// AbsoluteDeadline returns the job's absolute deadline.
func (x *ExecCtx) AbsoluteDeadline() time.Duration { return x.j.absDL }

// Mode returns the application's current execution mode.
func (x *ExecCtx) Mode() uint32 { return x.app.Mode() }

// Battery returns the battery level in percent, or -1 without a battery.
func (x *ExecCtx) Battery() float64 {
	if x.app.battery == nil {
		return -1
	}
	return x.app.battery.Level()
}

// Compute consumes d of CPU work on the job's virtual CPU. It is the
// preemption point: when the scheduler signals the worker (a higher-priority
// job became ready), Compute suspends the job mid-way, lets the worker run
// the urgent job, and transparently resumes the remainder afterwards.
// It returns ErrTerminated when the middleware is shutting down.
func (x *ExecCtx) Compute(d time.Duration) error {
	rem := d
	for rem > 0 {
		consumedStart := rem
		r, intr := x.c.Compute(rem)
		x.j.computed += consumedStart - r
		rem = r
		if !intr {
			return nil
		}
		cont := x.suspendForPreemption()
		if !cont {
			return ErrTerminated
		}
	}
	return nil
}

// suspendForPreemption is called when the fiber received the preemption
// signal mid-Compute. Under the lock it re-checks that a more urgent job is
// actually waiting (the signal may be stale); if so it hands the worker
// back, parks, and returns when the worker resumes this job. Returns false
// on termination.
func (x *ExecCtx) suspendForPreemption() bool {
	a := x.app
	if a.terminating.Load() {
		return false
	}
	a.mu.Lock(x.c)
	j := x.j
	w := a.workers[j.worker]
	q := a.queueForWorker(w)
	head := q.peek()
	if head == nil || !head.before(j) || !a.cfg.Preemption {
		// Spurious or stale signal: keep running.
		a.mu.Unlock(x.c)
		return true
	}
	w.wakeReason = wakeSuspended
	w.wakeJob = j
	a.mu.Unlock(x.c)
	c := a.env.Costs()
	x.c.Charge(c.ContextSwitch)
	w.th.Unpark()
	// Stay suspended until the worker genuinely resumes us (Park returns
	// false). Interrupted parks are stale preemption signals: a scheduler
	// may signal the same fiber more than once per tick and the extras
	// coalesce as pending interrupts — they must not self-resume the job.
	for {
		intr := x.c.Park()
		if !intr {
			return true
		}
		if a.terminating.Load() {
			return false
		}
	}
}

// AccelSection executes the accelerator-bound part of the version: d of
// work on the accelerator declared via HwAccelUse. In the paper's default
// (synchronous) model the CPU worker stays occupied for the whole section
// (the Section 3.2 "Limitation"); with Config.AsyncAccel the worker is
// released to run other jobs and this job re-acquires a CPU afterwards —
// the paper's announced future-work extension.
func (x *ExecCtx) AccelSection(d time.Duration) error {
	if x.j.accel == NoAccel {
		// Version has no accelerator: it is CPU work.
		return x.Compute(d)
	}
	scaled := x.accelScaled(d)
	if !x.app.cfg.AsyncAccel {
		// Synchronous: the worker is pinned down; the section is not
		// preemptible (a signal cannot stop a running GPU kernel).
		x.c.Charge(scaled)
		x.j.computed += d
		return nil
	}
	return x.asyncAccelSection(scaled, d)
}

// accelScaled converts nominal accelerator work to the accelerator's speed.
func (x *ExecCtx) accelScaled(d time.Duration) time.Duration {
	a := x.app
	pl := a.env.Platform()
	if pl == nil {
		return d
	}
	pi := a.accels[x.j.accel].platIdx
	if pi < 0 || pi >= len(pl.Accels) {
		return d
	}
	if s := pl.Accels[pi].Speed; s > 0 {
		return time.Duration(float64(d) / s)
	}
	return d
}

// asyncAccelSection releases the CPU worker, waits out the accelerator time
// off-CPU, then rejoins the worker through its resume stack.
func (x *ExecCtx) asyncAccelSection(scaled, nominal time.Duration) error {
	a := x.app
	j := x.j
	a.mu.Lock(x.c)
	w := a.workers[j.worker]
	j.state = jobAccelAsync
	w.wakeReason = wakeAsyncFree
	w.wakeJob = j
	a.mu.Unlock(x.c)
	w.th.Unpark()

	// The fiber now represents the accelerator execution: off any CPU.
	// Stale preemption interrupts must not shorten the GPU time: re-arm
	// the sleep until the full section elapsed.
	until := x.c.Now() + scaled
	for x.c.Now() < until {
		if intr := x.c.SleepUntil(until); intr && a.terminating.Load() {
			return ErrTerminated
		}
	}
	j.computed += nominal

	// Re-acquire a CPU: mark resumable and wake our worker.
	a.mu.Lock(x.c)
	j.state = jobAccelResumed
	wake := w.idle
	if wake {
		w.idle = false
	}
	preemptCurrent := !wake && a.cfg.Preemption &&
		w.current != nil && w.current.state == jobRunning && j.before(w.current)
	var preemptFiber rt.Thread
	if preemptCurrent && w.current.fib != nil {
		preemptFiber = w.current.fib.th
	}
	a.mu.Unlock(x.c)
	if wake {
		w.th.Unpark()
	} else if preemptFiber != nil {
		x.c.Charge(a.env.Costs().SignalDeliver)
		preemptFiber.Interrupt()
	}
	// Until the worker resumes us; stale interrupts must not self-resume.
	for {
		intr := x.c.Park()
		if !intr {
			return nil
		}
		if a.terminating.Load() {
			return ErrTerminated
		}
	}
}

// Push appends a value to a FIFO channel — the channel_push macro. It fails
// when the channel is full (static capacity, Table 1).
func (x *ExecCtx) Push(c CID, v any) error {
	a := x.app
	if int(c) < 0 || int(c) >= a.nchannels {
		return fmt.Errorf("core: no channel %d", c)
	}
	a.mu.Lock(x.c)
	x.c.Charge(a.env.Costs().ChannelOp)
	ch := &a.channels[c]
	ok := ch.cap == 0 || ch.push(v) // size-0 channels carry activations only
	a.mu.Unlock(x.c)
	if !ok {
		return fmt.Errorf("core: channel %s full (%d)", ch.name, ch.cap)
	}
	return nil
}

// Pop removes the oldest value from a FIFO channel — the channel_pop macro.
// It fails when the channel is empty: with graph activation semantics the
// scheduler guarantees inputs are present, so an empty pop is a programming
// error, not a blocking condition.
func (x *ExecCtx) Pop(c CID) (any, error) {
	a := x.app
	if int(c) < 0 || int(c) >= a.nchannels {
		return nil, fmt.Errorf("core: no channel %d", c)
	}
	a.mu.Lock(x.c)
	x.c.Charge(a.env.Costs().ChannelOp)
	ch := &a.channels[c]
	v, ok := ch.pop()
	a.mu.Unlock(x.c)
	if !ok {
		return nil, fmt.Errorf("core: channel %s empty", ch.name)
	}
	return v, nil
}

// ChannelLen returns the number of values buffered in a channel.
func (x *ExecCtx) ChannelLen(c CID) (int, error) {
	a := x.app
	if int(c) < 0 || int(c) >= a.nchannels {
		return 0, fmt.Errorf("core: no channel %d", c)
	}
	a.mu.Lock(x.c)
	n := a.channels[c].len()
	a.mu.Unlock(x.c)
	return n, nil
}
