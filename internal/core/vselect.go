package core

import (
	"github.com/yasmin-rt/yasmin/internal/rt"
)

// selectVersion picks the version to run for job j following the configured
// method (Section 3.2), preferring versions whose accelerator is free. When
// every admissible version targets a busy accelerator, it returns the
// accelerator of the preferred version in blockedOn so the caller parks the
// job there (with PIP). Caller holds the lock.
func (a *App) selectVersion(c rt.Ctx, j *job) (vid VID, blockedOn HID) {
	t := j.t
	// Order candidate versions by method preference into a scratch slice.
	// The slice is small (MaxVersionsPerTask) and stack-allocated in
	// practice.
	order := make([]VID, 0, len(t.versions))
	switch a.cfg.VersionSelect {
	case SelectEnergy:
		order = a.orderByEnergy(t, order, a.vselRest)
	case SelectTradeoff:
		order = a.orderByTradeoff(t, order)
	case SelectMode:
		order = a.filterByMode(t, order)
	case SelectBitmask:
		order = a.filterByMask(t, order)
	case SelectUser:
		return a.selectByUser(c, j)
	default: // SelectFirst
		for i := range t.versions {
			order = append(order, VID(i))
		}
	}
	if len(order) == 0 {
		// No version admissible under the method; fall back to declaration
		// order rather than dropping the job.
		for i := range t.versions {
			order = append(order, VID(i))
		}
	}
	// First preference whose accelerator pool has an instance this job may
	// take (free, and not reserved for a more urgent parked waiter).
	for _, v := range order {
		h := t.versions[v].accel
		if h == NoAccel || a.poolAvailableForLocked(j, h) != NoAccel {
			return v, NoAccel
		}
	}
	// All admissible versions need busy accelerators: block on the top
	// preference's pool.
	return order[0], t.versions[order[0]].accel
}

// orderByEnergy implements SelectEnergy: among affordable versions (battery
// at or above MinBattery) prefer the highest Quality; unaffordable versions
// come last, cheapest first (graceful degradation). The unaffordable
// overflow goes into the caller-owned scratch slice (the App-level buffer
// under the lock, the worker-private one on the lock-free fast path):
// version selection runs once per job, so a per-call allocation here was
// measurable on the hot path.
func (a *App) orderByEnergy(t *task, order, scratch []VID) []VID {
	level := a.batteryLevelFor(t)
	afford := order[:0]
	rest := scratch[:0]
	for i := range t.versions {
		p := &t.versions[i].props
		if p.MinBattery <= level {
			afford = append(afford, VID(i))
		} else {
			rest = append(rest, VID(i))
		}
	}
	// Sort affordable by Quality descending (stable insertion; tiny n).
	for i := 1; i < len(afford); i++ {
		for k := i; k > 0; k-- {
			qa := t.versions[afford[k]].props.Quality
			qb := t.versions[afford[k-1]].props.Quality
			if qa > qb {
				afford[k], afford[k-1] = afford[k-1], afford[k]
			} else {
				break
			}
		}
	}
	// Sort rest by EnergyBudget ascending.
	for i := 1; i < len(rest); i++ {
		for k := i; k > 0; k-- {
			ea := t.versions[rest[k]].props.EnergyBudget
			eb := t.versions[rest[k-1]].props.EnergyBudget
			if ea < eb {
				rest[k], rest[k-1] = rest[k-1], rest[k]
			} else {
				break
			}
		}
	}
	return append(afford, rest...)
}

// selectVersionFast is the lock-free selection path for fastSel tasks: no
// version is accelerator-bound and the method is not SelectUser, so the
// choice depends only on the task's immutable version table, the mode/mask
// atomics and the battery (a leaf behind its own rank-6 lock). The task
// holds a live job, so a reconfiguration cannot mutate its versions
// concurrently. Worker-private scratch keeps the path allocation-free.
func (a *App) selectVersionFast(c rt.Ctx, w *workerState, j *job) VID {
	t := j.t
	order := w.vselOrder[:0]
	switch a.cfg.VersionSelect {
	case SelectEnergy:
		order = a.orderByEnergy(t, order, w.vselRest)
	case SelectTradeoff:
		order = a.orderByTradeoff(t, order)
	case SelectMode:
		order = a.filterByMode(t, order)
	case SelectBitmask:
		order = a.filterByMask(t, order)
	default: // SelectFirst
		for i := range t.versions {
			order = append(order, VID(i))
		}
	}
	if len(order) == 0 {
		return 0
	}
	return order[0]
}

// batteryLevelFor queries the task's battery callback, the app battery, or
// reports full charge.
func (a *App) batteryLevelFor(t *task) float64 {
	for i := range t.versions {
		if f := t.versions[i].props.GetBatteryStatus; f != nil {
			return f()
		}
	}
	if a.battery != nil {
		return a.battery.Level()
	}
	return 100
}

// orderByTradeoff implements SelectTradeoff: minimise
// alpha*WCET + (1-alpha)*energy, both normalised against the task's maxima.
func (a *App) orderByTradeoff(t *task, order []VID) []VID {
	var maxW, maxE float64
	for i := range t.versions {
		p := &t.versions[i].props
		if w := float64(p.WCET); w > maxW {
			maxW = w
		}
		if p.EnergyBudget > maxE {
			maxE = p.EnergyBudget
		}
	}
	score := func(v VID) float64 {
		p := &t.versions[v].props
		var w, e float64
		if maxW > 0 {
			w = float64(p.WCET) / maxW
		}
		if maxE > 0 {
			e = p.EnergyBudget / maxE
		}
		return a.cfg.TradeoffAlpha*w + (1-a.cfg.TradeoffAlpha)*e
	}
	for i := range t.versions {
		order = append(order, VID(i))
	}
	for i := 1; i < len(order); i++ {
		for k := i; k > 0 && score(order[k]) < score(order[k-1]); k-- {
			order[k], order[k-1] = order[k-1], order[k]
		}
	}
	return order
}

// filterByMode implements SelectMode: versions whose Modes bitmask includes
// the current mode (bit m set); Modes==0 serves every mode.
func (a *App) filterByMode(t *task, order []VID) []VID {
	mode := a.mode.Load()
	bit := uint32(1) << (mode % 32)
	for i := range t.versions {
		m := t.versions[i].props.Modes
		if m == 0 || m&bit != 0 {
			order = append(order, VID(i))
		}
	}
	return order
}

// filterByMask implements SelectBitmask: versions whose permission mask
// intersects the app's current mask.
func (a *App) filterByMask(t *task, order []VID) []VID {
	mask := a.maskBit.Load()
	for i := range t.versions {
		if t.versions[i].props.Mask&mask != 0 {
			order = append(order, VID(i))
		}
	}
	return order
}

// selectByUser implements SelectUser via the configured callback.
func (a *App) selectByUser(c rt.Ctx, j *job) (VID, HID) {
	t := j.t
	infos := make([]VersionInfo, len(t.versions))
	for i := range t.versions {
		v := &t.versions[i]
		info := VersionInfo{ID: VID(i), Props: v.props, Accel: v.accel}
		if v.accel != NoAccel {
			// Pool-level view: busy means no instance is available to this
			// job; the owner is the holder of the first busy instance.
			info.AccelBusy = a.poolAvailableForLocked(j, v.accel) == NoAccel
			for _, m := range a.poolMembers(v.accel) {
				if ac := &a.accels[m]; ac.busy && ac.holder != nil {
					info.AccelOwner = ac.holder.t.id
					break
				}
			}
		}
		infos[i] = info
	}
	battery := -1.0
	if a.battery != nil {
		battery = a.battery.Level()
	}
	st := SelectState{
		Now:     c.Now(),
		Mode:    a.mode.Load(),
		Mask:    a.maskBit.Load(),
		Battery: battery,
	}
	v := a.cfg.UserSelect(t.id, infos, st)
	if int(v) < 0 || int(v) >= len(t.versions) {
		// Defer: block on the first accelerator-bound version whose pool
		// has nothing available, or fall back to version 0.
		for i := range t.versions {
			if h := t.versions[i].accel; h != NoAccel && a.poolAvailableForLocked(j, h) == NoAccel {
				return VID(i), h
			}
		}
		return 0, NoAccel
	}
	if h := t.versions[v].accel; h != NoAccel && a.poolAvailableForLocked(j, h) == NoAccel {
		return v, h
	}
	return v, NoAccel
}
