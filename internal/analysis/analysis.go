package analysis

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/yasmin-rt/yasmin/internal/taskset"
)

// MaxIterations bounds the fixed-point iterations of response-time analysis.
const MaxIterations = 10000

// ResponseTimeFP computes worst-case response times for a fixed-priority,
// fully preemptive uniprocessor task set. Tasks must be given in descending
// priority order (index 0 = highest). blocking is an optional per-task
// blocking term (e.g. priority-inversion bound from PIP); pass nil for none.
//
// Returns the response times; schedulable reports whether every response
// time is within its deadline. Tasks with arbitrary deadlines (> period) are
// rejected — use busy-window analysis variants for those.
func ResponseTimeFP(tasks []taskset.Task, blocking []time.Duration) (resp []time.Duration, schedulable bool, err error) {
	n := len(tasks)
	if n == 0 {
		return nil, true, nil
	}
	if blocking != nil && len(blocking) != n {
		return nil, false, fmt.Errorf("analysis: blocking has %d entries for %d tasks", len(blocking), n)
	}
	resp = make([]time.Duration, n)
	schedulable = true
	for i := 0; i < n; i++ {
		ti := &tasks[i]
		if ti.Deadline > ti.Period {
			return nil, false, fmt.Errorf("analysis: task %s has arbitrary deadline; unsupported", ti.Name)
		}
		b := time.Duration(0)
		if blocking != nil {
			b = blocking[i]
		}
		r := ti.WCET + b
		converged := false
		for iter := 0; iter < MaxIterations; iter++ {
			interference := time.Duration(0)
			for j := 0; j < i; j++ {
				tj := &tasks[j]
				k := time.Duration(ceilDiv(int64(r), int64(tj.Period)))
				interference += k * tj.WCET
			}
			next := ti.WCET + b + interference
			if next == r {
				converged = true
				break
			}
			r = next
			if r > ti.Deadline && r > ti.Period {
				// Diverging past any bound of interest.
				break
			}
		}
		resp[i] = r
		if !converged && r <= ti.Deadline {
			return nil, false, fmt.Errorf("analysis: RTA did not converge for task %s", ti.Name)
		}
		if r > ti.Deadline {
			schedulable = false
		}
	}
	return resp, schedulable, nil
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// RMSchedulableLL applies the Liu & Layland sufficient bound for
// rate-monotonic scheduling: U <= n(2^(1/n)-1).
func RMSchedulableLL(s *taskset.Set) bool {
	n := float64(s.Len())
	if n == 0 {
		return true
	}
	return s.TotalUtilization() <= n*(math.Pow(2, 1/n)-1)
}

// EDFSchedulableImplicit applies the exact U <= 1 test for preemptive EDF
// with implicit deadlines on one processor.
func EDFSchedulableImplicit(s *taskset.Set) bool {
	for i := range s.Tasks {
		if s.Tasks[i].Deadline != s.Tasks[i].Period {
			return false // not applicable; caller should use DemandBound
		}
	}
	return s.TotalUtilization() <= 1.0+1e-12
}

// DemandBoundEDF applies the processor-demand criterion for preemptive EDF
// with constrained deadlines on one processor: for every absolute deadline d
// up to the analysis bound, dbf(d) <= d.
func DemandBoundEDF(s *taskset.Set) (schedulable bool, err error) {
	u := s.TotalUtilization()
	if u > 1.0+1e-12 {
		return false, nil
	}
	if s.Len() == 0 {
		return true, nil
	}
	allImplicit := true
	for i := range s.Tasks {
		if s.Tasks[i].Deadline < s.Tasks[i].Period {
			allImplicit = false
			break
		}
	}
	if allImplicit {
		// dbf(t) <= U*t <= t for every t when U <= 1: schedulable.
		return true, nil
	}
	// Analysis horizon: min(hyperperiod, Baruah's L_a bound). Violations of
	// the demand criterion can only occur before
	// L_a = U/(1-U) * max_i(T_i - D_i); when that bound is zero no deadline
	// can be violated.
	bound := s.Hyperperiod()
	if u < 1 {
		var worst float64
		for i := range s.Tasks {
			t := &s.Tasks[i]
			v := float64(t.Period-t.Deadline) * u / (1 - u)
			if v > worst {
				worst = v
			}
		}
		la := time.Duration(worst)
		if la == 0 {
			return true, nil
		}
		if la < bound {
			bound = la
		}
	}
	const maxCheckpoints = 2_000_000
	// Collect deadlines to check.
	var points []time.Duration
	for i := range s.Tasks {
		t := &s.Tasks[i]
		for d := t.Deadline; d <= bound; d += t.Period {
			points = append(points, d)
			if len(points) > maxCheckpoints {
				return false, fmt.Errorf("analysis: demand-bound check exceeds %d points", maxCheckpoints)
			}
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })
	for _, d := range points {
		var demand time.Duration
		for i := range s.Tasks {
			t := &s.Tasks[i]
			if d < t.Deadline {
				continue
			}
			k := int64((d-t.Deadline)/t.Period) + 1
			demand += time.Duration(k) * t.WCET
		}
		if demand > d {
			return false, nil
		}
	}
	return true, nil
}

// Partition assigns tasks to m cores by first-fit decreasing utilisation,
// accepting a core assignment when the per-core set remains schedulable
// under the supplied uniprocessor test. It returns the per-core task index
// lists (indices into s.Tasks) or an error when some task fits nowhere.
func Partition(s *taskset.Set, m int, fits func(sub *taskset.Set) bool) ([][]int, error) {
	if m <= 0 {
		return nil, fmt.Errorf("analysis: partition onto %d cores", m)
	}
	order := make([]int, s.Len())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return s.Tasks[order[a]].Utilization() > s.Tasks[order[b]].Utilization()
	})
	bins := make([][]int, m)
	binSets := make([]taskset.Set, m)
	for _, ti := range order {
		placed := false
		for c := 0; c < m; c++ {
			trial := binSets[c]
			trial.Tasks = append(append([]taskset.Task{}, binSets[c].Tasks...), s.Tasks[ti])
			if fits(&trial) {
				bins[c] = append(bins[c], ti)
				binSets[c] = trial
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("analysis: task %s (U=%.3f) fits on no core",
				s.Tasks[ti].Name, s.Tasks[ti].Utilization())
		}
	}
	return bins, nil
}

// UtilizationFits returns a Partition predicate accepting bins whose total
// utilisation stays at or below cap.
func UtilizationFits(cap float64) func(*taskset.Set) bool {
	return func(sub *taskset.Set) bool { return sub.TotalUtilization() <= cap+1e-12 }
}

// GlobalEDFGFBTest applies the Goossens-Funk-Baruah density test for global
// EDF on m identical processors: schedulable if
// delta_sum <= m - (m-1) * delta_max, using densities for constrained
// deadlines. Sufficient, not necessary.
func GlobalEDFGFBTest(s *taskset.Set, m int) bool {
	if m <= 0 {
		return false
	}
	var sum, maxd float64
	for i := range s.Tasks {
		d := s.Tasks[i].Density()
		sum += d
		if d > maxd {
			maxd = d
		}
	}
	return sum <= float64(m)-(float64(m)-1)*maxd+1e-12
}
