package analysis

import (
	"fmt"
	"sort"
	"time"

	"github.com/yasmin-rt/yasmin/internal/taskset"
)

// Admission selects the schedulability test an online admission decision
// runs, keyed the way the middleware configuration is: the mapping scheme
// (global vs partitioned ready queues) and the priority assignment (fixed
// vs dynamic). It is the analysis-side mirror of core.Config without the
// import cycle.
type Admission struct {
	// Workers is the number of worker threads (processors for the test).
	Workers int
	// Partitioned selects per-core tests over the Cores assignment; false
	// runs the global multiprocessor tests.
	Partitioned bool
	// FixedPriority selects response-time analysis (RM/DM/user priorities);
	// false selects the EDF demand/density tests.
	FixedPriority bool
	// PrioKey orders tasks for fixed-priority analysis (lower = more
	// urgent); len == set.Len(). Nil defaults to deadline-monotonic order.
	PrioKey []int64
	// Cores assigns each task to a worker (only read when Partitioned);
	// len == set.Len().
	Cores []int
	// Blocking is the per-task worst-case blocking term (e.g. the PIP
	// priority-inversion bound from PIPBlocking); nil means no blocking.
	// Fixed-priority response-time analysis consumes it natively; the
	// demand-bound and density tests fold it into the WCETs
	// (InflateBlocking), which can only overestimate demand — every test
	// stays sufficient.
	Blocking []time.Duration
}

// Result reports an admission decision. When the set is not schedulable,
// Offender names the task the failing test pins the violation on (the task
// whose response time exceeds its deadline, or the densest task for the
// sufficient multiprocessor bounds) and Test names the failed criterion.
type Result struct {
	Schedulable bool
	Offender    string
	Test        string
	Detail      string
}

// Admit runs the schedulability test matching the configuration over the
// task set and reports whether the set is admissible. All tests are
// sufficient (an admitted set is schedulable under the test's assumptions);
// the global fixed-priority case uses the density bound, which is
// conservative. Tasks must carry positive WCET, period and deadline —
// callers exclude tasks without timing information before admission.
func Admit(set *taskset.Set, adm Admission) (Result, error) {
	n := set.Len()
	if n == 0 {
		return Result{Schedulable: true, Test: "empty"}, nil
	}
	if adm.Workers <= 0 {
		return Result{}, fmt.Errorf("analysis: admission with %d workers", adm.Workers)
	}
	if adm.Blocking != nil && len(adm.Blocking) != n {
		return Result{}, fmt.Errorf("analysis: admission has %d blocking terms for %d tasks", len(adm.Blocking), n)
	}
	if adm.Partitioned {
		if len(adm.Cores) != n {
			return Result{}, fmt.Errorf("analysis: admission has %d core assignments for %d tasks", len(adm.Cores), n)
		}
		return admitPartitioned(set, adm)
	}
	if adm.Workers == 1 {
		return admitUniprocessor(set, adm, "")
	}
	// The global sufficient bounds have no native blocking parameter: fold
	// the terms into the WCETs (conservative).
	inflated := InflateBlocking(set, adm.Blocking)
	if adm.FixedPriority {
		return admitDensity(inflated, adm.Workers, "global-fp-density"), nil
	}
	return admitDensity(inflated, adm.Workers, "global-edf-gfb"), nil
}

// admitPartitioned runs the uniprocessor test per core over the explicit
// assignment.
func admitPartitioned(set *taskset.Set, adm Admission) (Result, error) {
	for core := 0; core < adm.Workers; core++ {
		var sub taskset.Set
		var keys []int64
		var blocking []time.Duration
		for i := range set.Tasks {
			if adm.Cores[i] != core {
				continue
			}
			sub.Tasks = append(sub.Tasks, set.Tasks[i])
			if adm.PrioKey != nil {
				keys = append(keys, adm.PrioKey[i])
			}
			if adm.Blocking != nil {
				blocking = append(blocking, adm.Blocking[i])
			}
		}
		if sub.Len() == 0 {
			continue
		}
		subAdm := adm
		subAdm.PrioKey = keys
		subAdm.Blocking = blocking
		res, err := admitUniprocessor(&sub, subAdm, fmt.Sprintf(" on core %d", core))
		if err != nil || !res.Schedulable {
			return res, err
		}
	}
	return Result{Schedulable: true, Test: "partitioned"}, nil
}

// admitUniprocessor applies RTA (fixed priority) or the processor-demand
// criterion (EDF) to a single-core subset.
func admitUniprocessor(set *taskset.Set, adm Admission, where string) (Result, error) {
	if adm.FixedPriority {
		order := priorityOrder(set, adm.PrioKey)
		sorted := make([]taskset.Task, len(order))
		var blocking []time.Duration
		if adm.Blocking != nil {
			blocking = make([]time.Duration, len(order))
		}
		for k, i := range order {
			sorted[k] = set.Tasks[i]
			if blocking != nil {
				blocking[k] = adm.Blocking[i]
			}
		}
		resp, ok, err := ResponseTimeFP(sorted, blocking)
		if err != nil {
			// Arbitrary deadlines (or divergence) fall back to the density
			// bound so admission stays decidable.
			return admitDensity(InflateBlocking(set, adm.Blocking), 1, "fp-density"+where), nil
		}
		if !ok {
			for k := range sorted {
				if resp[k] > sorted[k].Deadline {
					detail := fmt.Sprintf("response time %v exceeds deadline %v",
						resp[k], sorted[k].Deadline)
					if blocking != nil && blocking[k] > 0 {
						detail += fmt.Sprintf(" (includes blocking %v)", blocking[k])
					}
					return Result{
						Offender: sorted[k].Name,
						Test:     "fp-rta" + where,
						Detail:   detail,
					}, nil
				}
			}
			return Result{
				Offender: densest(set).Name,
				Test:     "fp-rta" + where,
				Detail:   "response-time analysis failed",
			}, nil
		}
		return Result{Schedulable: true, Test: "fp-rta" + where}, nil
	}
	// EDF: the demand-bound criterion has no native blocking parameter;
	// fold the terms into the WCETs (conservative).
	inflated := InflateBlocking(set, adm.Blocking)
	ok, err := DemandBoundEDF(inflated)
	if err != nil {
		return admitDensity(inflated, 1, "edf-density"+where), nil
	}
	if !ok {
		t := densest(inflated)
		detail := fmt.Sprintf("processor demand exceeds capacity (U=%.3f)", inflated.TotalUtilization())
		if inflated != set {
			detail = fmt.Sprintf("processor demand exceeds capacity (U=%.3f incl. blocking)",
				inflated.TotalUtilization())
		}
		return Result{
			Offender: t.Name,
			Test:     "edf-demand-bound" + where,
			Detail:   detail,
		}, nil
	}
	return Result{Schedulable: true, Test: "edf-demand-bound" + where}, nil
}

// admitDensity applies the Goossens-Funk-Baruah density condition
// delta_sum <= m - (m-1)*delta_max on m processors. Exact only as a
// sufficient test for global EDF; for fixed priorities it is a conservative
// guard (sets passing it are also FP-schedulable under the density argument
// delta_max <= 1 per processor).
func admitDensity(set *taskset.Set, m int, test string) Result {
	if GlobalEDFGFBTest(set, m) && densest(set).Density() <= 1.0+1e-12 {
		return Result{Schedulable: true, Test: test}
	}
	t := densest(set)
	var sum float64
	for i := range set.Tasks {
		sum += set.Tasks[i].Density()
	}
	return Result{
		Offender: t.Name,
		Test:     test,
		Detail: fmt.Sprintf("density sum %.3f > %d - %d*%.3f (max density task %s)",
			sum, m, m-1, t.Density(), t.Name),
	}
}

// priorityOrder returns task indices sorted by the explicit key (lower =
// more urgent), defaulting to deadline-monotonic, with period and then
// declaration order as stable tie-breakers.
func priorityOrder(set *taskset.Set, key []int64) []int {
	order := make([]int, set.Len())
	for i := range order {
		order[i] = i
	}
	keyOf := func(i int) int64 {
		if key != nil {
			return key[i]
		}
		return int64(set.Tasks[i].Deadline)
	}
	sort.SliceStable(order, func(a, b int) bool {
		ka, kb := keyOf(order[a]), keyOf(order[b])
		if ka != kb {
			return ka < kb
		}
		return set.Tasks[order[a]].Period < set.Tasks[order[b]].Period
	})
	return order
}

// densest returns the task with the highest density (ties: first declared).
func densest(set *taskset.Set) *taskset.Task {
	best := &set.Tasks[0]
	for i := 1; i < len(set.Tasks); i++ {
		if set.Tasks[i].Density() > best.Density() {
			best = &set.Tasks[i]
		}
	}
	return best
}

// ScaleWCETs returns a copy of the set with every WCET divided by speed —
// the nominal-to-core-local conversion admission applies when workers run
// on cores slower than the reference speed 1.0.
func ScaleWCETs(set *taskset.Set, speed float64) *taskset.Set {
	if speed == 1.0 || speed <= 0 {
		return set
	}
	out := &taskset.Set{Tasks: make([]taskset.Task, len(set.Tasks))}
	copy(out.Tasks, set.Tasks)
	for i := range out.Tasks {
		out.Tasks[i].WCET = time.Duration(float64(out.Tasks[i].WCET) / speed)
	}
	return out
}
