package analysis

import (
	"testing"
	"time"

	"github.com/yasmin-rt/yasmin/internal/taskset"
)

func accTask(id int, name string, period, deadline, wcet time.Duration, accel string, cs time.Duration, count int) taskset.Task {
	return taskset.Task{
		ID: id, Name: name, Period: period, Deadline: deadline, WCET: wcet,
		Accels: []taskset.AccelUse{{Pool: accel, CS: cs, Count: count}},
	}
}

// TestPIPBlockingDirectAndPushThrough: the classical per-pool bound — a
// task is blocked by the longest lower-priority critical section on every
// pool it (or a higher-priority task) uses, and by nothing else.
func TestPIPBlockingDirectAndPushThrough(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	set := &taskset.Set{Tasks: []taskset.Task{
		accTask(0, "high", ms(20), ms(10), ms(3), "gpu", ms(2), 1),
		// mid does not touch the gpu but suffers push-through blocking:
		// low's section can run at high's inherited priority above mid.
		{ID: 1, Name: "mid", Period: ms(40), Deadline: ms(20), WCET: ms(4)},
		accTask(2, "low", ms(100), ms(100), ms(9), "gpu", ms(8), 1),
	}}
	key := []int64{int64(ms(10)), int64(ms(20)), int64(ms(100))} // DM order
	terms := PIPBlocking(set, key)

	if terms[0].Dur != ms(8) {
		t.Errorf("high blocking = %v, want low's 8ms section", terms[0].Dur)
	}
	if terms[0].Accel != "gpu" || terms[0].From != "low" {
		t.Errorf("high blocking attributed to %s/%s, want gpu/low", terms[0].Accel, terms[0].From)
	}
	if terms[1].Dur != ms(8) {
		t.Errorf("mid push-through blocking = %v, want 8ms", terms[1].Dur)
	}
	if terms[2].Dur != 0 {
		t.Errorf("low (lowest priority) blocking = %v, want 0", terms[2].Dur)
	}
}

// TestPIPBlockingPoolHeadroom: a pool with an instance per contender never
// blocks; one instance short and the bound reappears.
func TestPIPBlockingPoolHeadroom(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	mkSet := func(count int) *taskset.Set {
		return &taskset.Set{Tasks: []taskset.Task{
			accTask(0, "a", ms(20), ms(10), ms(2), "dsp", ms(1), count),
			accTask(1, "b", ms(30), ms(15), ms(2), "dsp", ms(2), count),
			accTask(2, "c", ms(50), ms(40), ms(3), "dsp", ms(3), count),
		}}
	}
	terms := PIPBlocking(mkSet(3), nil)
	for i, term := range terms {
		if term.Dur != 0 {
			t.Errorf("count=3: task %d blocked %v despite an instance each", i, term.Dur)
		}
	}
	terms = PIPBlocking(mkSet(2), nil)
	if terms[0].Dur != ms(3) {
		t.Errorf("count=2: most urgent blocked %v, want c's 3ms section", terms[0].Dur)
	}
}

// TestPIPBlockingSumsAcrossPools: one term per pool, accumulated.
func TestPIPBlockingSumsAcrossPools(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	set := &taskset.Set{Tasks: []taskset.Task{
		accTask(0, "hot", ms(20), ms(10), ms(2), "gpu", ms(1), 1),
		accTask(1, "warm", ms(40), ms(20), ms(3), "dsp", ms(2), 1),
		accTask(2, "cold1", ms(100), ms(80), ms(5), "gpu", ms(4), 1),
		accTask(3, "cold2", ms(100), ms(90), ms(6), "dsp", ms(5), 1),
	}}
	terms := PIPBlocking(set, nil) // deadline order
	// hot: direct gpu blocking (cold1, 4ms) + push-through? dsp is used by
	// nobody at or above hot except... hot does not use dsp and no task
	// more urgent than hot uses dsp — no dsp term for hot.
	if terms[0].Dur != ms(4) {
		t.Errorf("hot blocking = %v, want 4ms (gpu only)", terms[0].Dur)
	}
	// warm: dsp direct (cold2, 5ms) + gpu push-through (hot is more urgent
	// and uses gpu; cold1's 4ms section can run boosted above warm).
	if terms[1].Dur != ms(9) {
		t.Errorf("warm blocking = %v, want 4ms+5ms across both pools", terms[1].Dur)
	}
}

// TestPIPBlockingMultiPoolTask: a task whose versions span TWO pools
// contributes its critical section on each of them — dropping all but the
// worst pool (the original single-field model) would let a more urgent
// task on the second pool go unblocked in the analysis while blockable at
// runtime.
func TestPIPBlockingMultiPoolTask(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	set := &taskset.Set{Tasks: []taskset.Task{
		accTask(0, "urgentG", ms(20), ms(10), ms(2), "g", ms(1), 1),
		accTask(1, "urgentH", ms(25), ms(12), ms(2), "h", ms(1), 1),
		{ID: 2, Name: "dual", Period: ms(100), Deadline: ms(100), WCET: ms(9),
			Accels: []taskset.AccelUse{
				{Pool: "g", CS: ms(4), Count: 1},
				{Pool: "h", CS: ms(5), Count: 1},
			}},
	}}
	terms := PIPBlocking(set, nil)
	if terms[0].Dur != ms(4) {
		t.Errorf("urgentG blocking = %v, want dual's 4ms section on g", terms[0].Dur)
	}
	// urgentH pays dual's 5ms section on h directly PLUS 4ms push-through
	// on g (dual's g section can run at urgentG's inherited priority above
	// urgentH). The single-worst-pool model would have dropped the g term.
	if terms[1].Dur != ms(9) {
		t.Errorf("urgentH blocking = %v, want 5ms (h, direct) + 4ms (g, push-through)", terms[1].Dur)
	}
	if terms[1].Accel != "h" {
		t.Errorf("urgentH dominant term attributed to %q, want h", terms[1].Accel)
	}
}

// TestAdmitWithBlocking: the same set flips from schedulable to rejected
// when the blocking terms join the fixed-priority response-time analysis.
func TestAdmitWithBlocking(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	set := &taskset.Set{Tasks: []taskset.Task{
		accTask(0, "high", ms(20), ms(10), ms(3), "gpu", ms(2), 1),
		accTask(1, "low", ms(100), ms(100), ms(9), "gpu", ms(8), 1),
	}}
	adm := Admission{Workers: 1, FixedPriority: true}
	res, err := Admit(set, adm)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Fatalf("schedulable without blocking, got %+v", res)
	}
	adm.Blocking = Durations(PIPBlocking(set, nil))
	res, err = Admit(set, adm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedulable {
		t.Fatal("blocking-aware admission accepted an infeasible set")
	}
	if res.Offender != "high" {
		t.Errorf("offender = %q, want high", res.Offender)
	}
}
