package analysis

import (
	"math/rand"
	"testing"
	"time"

	"github.com/yasmin-rt/yasmin/internal/taskset"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func mkTask(id int, c, t, d time.Duration) taskset.Task {
	return taskset.Task{ID: id, Name: string(rune('a' + id)), WCET: c, Period: t, Deadline: d}
}

func TestRTAClassicExample(t *testing.T) {
	// Textbook example (Burns & Wellings): three tasks, RM order.
	tasks := []taskset.Task{
		mkTask(0, ms(1), ms(4), ms(4)),
		mkTask(1, ms(2), ms(6), ms(6)),
		mkTask(2, ms(3), ms(13), ms(13)),
	}
	resp, ok, err := ResponseTimeFP(tasks, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("set must be schedulable")
	}
	want := []time.Duration{ms(1), ms(3), ms(10)}
	for i := range want {
		if resp[i] != want[i] {
			t.Errorf("R[%d] = %v, want %v", i, resp[i], want[i])
		}
	}
}

func TestRTAWithBlocking(t *testing.T) {
	tasks := []taskset.Task{
		mkTask(0, ms(1), ms(4), ms(4)),
		mkTask(1, ms(2), ms(6), ms(6)),
	}
	// 1ms priority-inversion blocking on the high task: R0 = 1+1 = 2.
	resp, ok, err := ResponseTimeFP(tasks, []time.Duration{ms(1), 0})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("must stay schedulable")
	}
	if resp[0] != ms(2) {
		t.Errorf("R0 = %v, want 2ms", resp[0])
	}
}

func TestRTADetectsUnschedulable(t *testing.T) {
	tasks := []taskset.Task{
		mkTask(0, ms(3), ms(4), ms(4)),
		mkTask(1, ms(3), ms(8), ms(8)),
	}
	_, ok, err := ResponseTimeFP(tasks, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("overloaded set reported schedulable")
	}
}

func TestRTARejectsArbitraryDeadlines(t *testing.T) {
	tasks := []taskset.Task{mkTask(0, ms(1), ms(4), ms(6))}
	if _, _, err := ResponseTimeFP(tasks, nil); err == nil {
		t.Error("want error for D > T")
	}
}

func TestRTABlockingLengthMismatch(t *testing.T) {
	tasks := []taskset.Task{mkTask(0, ms(1), ms(4), ms(4))}
	if _, _, err := ResponseTimeFP(tasks, []time.Duration{0, 0}); err == nil {
		t.Error("want error for blocking length mismatch")
	}
}

func TestLiuLaylandBound(t *testing.T) {
	// U = 0.75 <= 3*(2^(1/3)-1) ~ 0.7798.
	s := &taskset.Set{Tasks: []taskset.Task{
		mkTask(0, ms(25), ms(100), ms(100)),
		mkTask(1, ms(25), ms(100), ms(100)),
		mkTask(2, ms(25), ms(100), ms(100)),
	}}
	if !RMSchedulableLL(s) {
		t.Error("U=0.75 with n=3 must pass the LL bound")
	}
	s.Tasks[0].WCET = ms(35) // U = 0.85 > bound
	if RMSchedulableLL(s) {
		t.Error("U=0.85 with n=3 must fail the LL bound")
	}
}

func TestEDFImplicitUtilizationTest(t *testing.T) {
	s := &taskset.Set{Tasks: []taskset.Task{
		mkTask(0, ms(50), ms(100), ms(100)),
		mkTask(1, ms(50), ms(100), ms(100)),
	}}
	if !EDFSchedulableImplicit(s) {
		t.Error("U=1.0 implicit EDF must be schedulable")
	}
	s.Tasks[0].WCET = ms(51)
	if EDFSchedulableImplicit(s) {
		t.Error("U>1 must fail")
	}
	s.Tasks[0].WCET = ms(10)
	s.Tasks[0].Deadline = ms(50) // constrained: test not applicable
	if EDFSchedulableImplicit(s) {
		t.Error("constrained deadlines must be rejected by the implicit test")
	}
}

func TestDemandBoundEDF(t *testing.T) {
	// Constrained-deadline set, schedulable.
	s := &taskset.Set{Tasks: []taskset.Task{
		mkTask(0, ms(10), ms(50), ms(30)),
		mkTask(1, ms(20), ms(100), ms(80)),
	}}
	ok, err := DemandBoundEDF(s)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("set must pass the demand-bound test")
	}
	// Tighten deadlines until infeasible: two 10ms jobs due at 10ms.
	bad := &taskset.Set{Tasks: []taskset.Task{
		mkTask(0, ms(10), ms(50), ms(10)),
		mkTask(1, ms(10), ms(50), ms(10)),
	}}
	ok, err = DemandBoundEDF(bad)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("infeasible set passed the demand-bound test")
	}
}

func TestDemandBoundRejectsOverUtilization(t *testing.T) {
	s := &taskset.Set{Tasks: []taskset.Task{
		mkTask(0, ms(60), ms(100), ms(100)),
		mkTask(1, ms(60), ms(100), ms(100)),
	}}
	ok, err := DemandBoundEDF(s)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("U=1.2 must fail")
	}
}

func TestPartitionFirstFit(t *testing.T) {
	s := &taskset.Set{Tasks: []taskset.Task{
		mkTask(0, ms(60), ms(100), ms(100)), // U=0.6
		mkTask(1, ms(60), ms(100), ms(100)), // U=0.6
		mkTask(2, ms(30), ms(100), ms(100)), // U=0.3
		mkTask(3, ms(30), ms(100), ms(100)), // U=0.3
	}}
	bins, err := Partition(s, 2, UtilizationFits(1.0))
	if err != nil {
		t.Fatal(err)
	}
	// FFD: 0.6,0.6 split across cores; 0.3s fill up.
	if len(bins[0]) == 0 || len(bins[1]) == 0 {
		t.Errorf("bins = %v, expected both cores used", bins)
	}
	var u0, u1 float64
	for _, i := range bins[0] {
		u0 += s.Tasks[i].Utilization()
	}
	for _, i := range bins[1] {
		u1 += s.Tasks[i].Utilization()
	}
	if u0 > 1 || u1 > 1 {
		t.Errorf("bin utilisations %g, %g exceed 1", u0, u1)
	}
}

func TestPartitionFailsWhenOverloaded(t *testing.T) {
	s := &taskset.Set{Tasks: []taskset.Task{
		mkTask(0, ms(90), ms(100), ms(100)),
		mkTask(1, ms(90), ms(100), ms(100)),
		mkTask(2, ms(90), ms(100), ms(100)),
	}}
	if _, err := Partition(s, 2, UtilizationFits(1.0)); err == nil {
		t.Error("want partition failure for 2.7 utilisation on 2 cores")
	}
	if _, err := Partition(s, 0, UtilizationFits(1.0)); err == nil {
		t.Error("want error for zero cores")
	}
}

func TestGlobalEDFGFB(t *testing.T) {
	light := &taskset.Set{Tasks: []taskset.Task{
		mkTask(0, ms(10), ms(100), ms(100)),
		mkTask(1, ms(10), ms(100), ms(100)),
		mkTask(2, ms(10), ms(100), ms(100)),
	}}
	if !GlobalEDFGFBTest(light, 2) {
		t.Error("light set must pass GFB on 2 cores")
	}
	heavy := &taskset.Set{Tasks: []taskset.Task{
		mkTask(0, ms(90), ms(100), ms(100)),
		mkTask(1, ms(90), ms(100), ms(100)),
		mkTask(2, ms(90), ms(100), ms(100)),
	}}
	if GlobalEDFGFBTest(heavy, 2) {
		t.Error("heavy set must fail GFB on 2 cores")
	}
	if GlobalEDFGFBTest(light, 0) {
		t.Error("zero processors must fail")
	}
}

// Property: sets that pass DemandBoundEDF never report more demand than
// capacity when simulated at the deadline grid — cross-check against brute
// demand computation on random small sets.
func TestDemandBoundAgreesWithUtilizationOnImplicitSets(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(6)
		cfg := taskset.DRSConfig{
			N:                n,
			TotalUtilization: 0.2 + rng.Float64()*0.75,
			PeriodMin:        ms(10),
			PeriodMax:        ms(100),
		}
		s, err := taskset.Generate(rng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Implicit deadlines: demand-bound must agree with U <= 1.
		ok, err := DemandBoundEDF(s)
		if err != nil {
			t.Fatal(err)
		}
		want := s.TotalUtilization() <= 1
		if ok != want {
			t.Errorf("trial %d: demand-bound=%v but U=%g", trial, ok, s.TotalUtilization())
		}
	}
}
