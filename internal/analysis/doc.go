// Package analysis implements classical schedulability tests used by the
// off-line scheduler, the online admission guard, the experiment harness
// and the test suite to cross-check simulation results: response-time
// analysis for fixed-priority scheduling, the EDF processor-demand
// criterion, utilisation/density bounds, and first-fit partitioning.
//
// The Admit entry point (admission.go) is the runtime-facing façade: it
// selects the test matching a middleware configuration — per-core RTA or
// EDF demand-bound under partitioned mappings, the global density (GFB)
// bounds otherwise — and pins a rejection on the offending task, which
// core.Reconfigure surfaces as a typed *NotSchedulableError. All tests are
// sufficient: an admitted set is schedulable under the test's assumptions,
// a rejected one may merely exceed the bound's pessimism.
package analysis
