package analysis

import (
	"fmt"
	"sort"
	"time"

	"github.com/yasmin-rt/yasmin/internal/taskset"
)

// BlockingTerm is one task's worst-case priority-inversion bound under the
// Priority Inheritance Protocol, with its largest single contribution named
// for diagnostics: Accel is the pool and From the lower-priority task whose
// critical section dominates the bound.
type BlockingTerm struct {
	Dur   time.Duration
	Accel string
	From  string

	// dominantCS tracks the largest single contribution while accumulating
	// (drives the Accel/From attribution).
	dominantCS time.Duration
}

// String renders the term for admission-rejection messages.
func (b BlockingTerm) String() string {
	if b.Dur == 0 {
		return "0"
	}
	return fmt.Sprintf("%v on %s (longest critical section of %s)", b.Dur, b.Accel, b.From)
}

// PIPBlocking computes per-task worst-case blocking terms for shared
// accelerator pools arbitrated with the Priority Inheritance Protocol
// (Section 3.2). key orders the tasks (lower = more urgent; declaration
// order breaks ties); nil defaults to relative deadlines — the preemption
// levels EDF resource analysis uses.
//
// The bound is the classical per-resource PIP bound: task i can be blocked
// at most once per pool, for the longest critical section of any
// lower-priority task on that pool, counting a pool only when i itself or a
// higher-priority task uses it (direct and push-through blocking). A pool
// with at least as many instances as tasks touching it never blocks — an
// instance is always free — so growing a pool genuinely buys admission
// headroom. Summing over pools is sufficient (safe), not tight.
func PIPBlocking(set *taskset.Set, key []int64) []BlockingTerm {
	n := set.Len()
	out := make([]BlockingTerm, n)
	if n == 0 {
		return out
	}
	if key == nil {
		key = make([]int64, n)
		for i := range set.Tasks {
			key[i] = int64(set.Tasks[i].Deadline)
		}
	}
	// moreUrgent reports whether task a outranks task b.
	moreUrgent := func(a, b int) bool {
		if key[a] != key[b] {
			return key[a] < key[b]
		}
		return a < b
	}

	type user struct {
		idx int
		cs  time.Duration
	}
	pools := make(map[string][]user)
	counts := make(map[string]int)
	for i := range set.Tasks {
		for _, u := range set.Tasks[i].Accels {
			if u.Pool == "" || u.CS <= 0 {
				continue
			}
			pools[u.Pool] = append(pools[u.Pool], user{idx: i, cs: u.CS})
			cnt := u.Count
			if cnt < 1 {
				cnt = 1
			}
			if cnt > counts[u.Pool] {
				counts[u.Pool] = cnt
			}
		}
	}
	if len(pools) == 0 {
		return out
	}
	names := make([]string, 0, len(pools))
	for name := range pools {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic accumulation and attribution

	for i := range set.Tasks {
		for _, name := range names {
			users := pools[name]
			if len(users) <= counts[name] {
				continue // an instance is always free: no contention
			}
			relevant := false
			for _, u := range users {
				if u.idx == i || moreUrgent(u.idx, i) {
					relevant = true
					break
				}
			}
			if !relevant {
				continue
			}
			var worst user
			for _, u := range users {
				if u.idx != i && !moreUrgent(u.idx, i) && u.cs > worst.cs {
					worst = u
				}
			}
			if worst.cs == 0 {
				continue
			}
			out[i].Dur += worst.cs
			if worst.cs > out[i].dominantCS {
				out[i].Accel = name
				out[i].From = set.Tasks[worst.idx].Name
				out[i].dominantCS = worst.cs
			}
		}
	}
	return out
}

// Durations projects the blocking terms onto the plain per-task durations
// the admission tests consume.
func Durations(terms []BlockingTerm) []time.Duration {
	out := make([]time.Duration, len(terms))
	for i := range terms {
		out[i] = terms[i].Dur
	}
	return out
}

// InflateBlocking returns a copy of the set with each task's blocking term
// folded into its WCET — the conservative reduction that lets the
// demand-bound and density tests (which have no native blocking parameter)
// price priority inversion: demand can only be overestimated, so the tests
// stay sufficient. A nil or all-zero blocking vector returns the set
// unchanged.
func InflateBlocking(set *taskset.Set, blocking []time.Duration) *taskset.Set {
	if len(blocking) == 0 {
		return set
	}
	any := false
	for _, b := range blocking {
		if b > 0 {
			any = true
			break
		}
	}
	if !any {
		return set
	}
	out := &taskset.Set{Tasks: make([]taskset.Task, len(set.Tasks))}
	copy(out.Tasks, set.Tasks)
	for i := range out.Tasks {
		if i < len(blocking) {
			out.Tasks[i].WCET += blocking[i]
		}
	}
	return out
}
