package telemetry

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/yasmin-rt/yasmin/internal/lockfree"
	"github.com/yasmin-rt/yasmin/internal/trace"
)

// Sink receives batches of events from the pipeline's writer goroutine.
// WriteBatch and Finish are only ever called from that one goroutine, so
// implementations need no locking against the pipeline (MemorySink locks
// anyway so tests can read concurrently). The batch slice is reused across
// calls — a sink that retains events must copy them.
type Sink interface {
	// WriteBatch persists one batch (len >= 1).
	WriteBatch(batch []Event) error
	// Finish is called exactly once, after the final batch, with the
	// pipeline's closing counters; sinks that persist a stream append them
	// as a trailer so a replay can verify losslessness, then release their
	// resources.
	Finish(st Stats) error
}

// Stats are the pipeline's overflow-accounting counters. Published =
// Exported + Dropped + (events still buffered); after Close the buffer is
// empty and the identity is exact. Dropped is never silent: it is surfaced
// here, in the file trailer, and by every CLI that attaches a pipeline.
type Stats struct {
	Published uint64 `json:"published"` // sequence numbers assigned
	Exported  uint64 `json:"exported"`  // events handed to the sink
	Dropped   uint64 `json:"dropped"`   // ring-full (or post-Close) rejections
	Batches   uint64 `json:"batches"`   // WriteBatch calls
}

// Options tunes a Pipeline. The zero value gets sensible defaults.
type Options struct {
	// RingCapacity bounds the in-flight queue (rounded up to a power of
	// two; default 1<<15). A full ring drops — and counts — new events
	// rather than blocking the record path.
	RingCapacity int
	// BatchSize is the flush-by-size trigger (default 256). 1 means one
	// sink write per event — the unbatched baseline.
	BatchSize int
	// MaxBatchAge is the flush-by-age trigger: a partial batch is flushed
	// when its oldest event has been buffered this long (default 5ms;
	// negative disables the age trigger).
	MaxBatchAge time.Duration
	// Node is the cluster node id stamped into every published event
	// (Event.Node). A single-node run is node 0 of a one-node cluster,
	// so the zero value is always correct.
	Node int
}

func (o *Options) defaults() {
	if o.RingCapacity <= 0 {
		o.RingCapacity = 1 << 15
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 256
	}
	if o.MaxBatchAge == 0 {
		o.MaxBatchAge = 5 * time.Millisecond
	}
}

// Pipeline is the streaming exporter: lock-free MPSC ring on the publish
// side, one batching writer goroutine on the drain side. It implements
// trace.Stream, so attaching it to a Recorder (Recorder.SetStream, or
// core.Config.Telemetry) streams every record as it is produced.
//
// Publish never blocks and never allocates; overflow is dropped and
// counted. Close after all producers have quiesced — events published
// concurrently with Close may be counted as published without being
// exported or dropped, which a replay will (correctly) flag as lost.
type Pipeline struct {
	ring *lockfree.MPSCRing[Event]
	sink Sink
	opt  Options

	pub     atomic.Uint64 // sequence numbers assigned
	dropped atomic.Uint64
	expo    atomic.Uint64 // events handed to the sink
	batches atomic.Uint64

	closed  atomic.Bool
	wake    chan struct{}
	quit    chan struct{}
	done    chan struct{}
	sinkErr atomic.Pointer[error]

	closeOnce sync.Once
	closeErr  error
}

// New creates a pipeline over sink and starts its writer goroutine.
func New(sink Sink, opt Options) (*Pipeline, error) {
	opt.defaults()
	ring, err := lockfree.NewMPSCRing[Event](opt.RingCapacity)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	p := &Pipeline{
		ring: ring,
		sink: sink,
		opt:  opt,
		wake: make(chan struct{}, 1),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	go p.run()
	return p, nil
}

// Publish stamps ev with the next sequence number and enqueues it. It
// returns false — after counting the drop — when the ring is full or the
// pipeline is closed. Safe from any number of goroutines; per-goroutine
// publish order is preserved for the events the ring retains.
//
//yasmin:noalloc
func (p *Pipeline) Publish(ev Event) bool {
	ev.Seq = p.pub.Add(1)
	ev.Node = p.opt.Node
	if p.closed.Load() || !p.ring.Push(ev) {
		p.dropped.Add(1)
		return false
	}
	select {
	case p.wake <- struct{}{}:
	default:
	}
	return true
}

// PublishWait enqueues like Publish but spins (yielding) instead of
// dropping when the ring is full. For bulk or offline producers only —
// record paths inside the middleware must use Publish, which never blocks.
// Returns false once the pipeline is closed.
func (p *Pipeline) PublishWait(ev Event) bool {
	ev.Seq = p.pub.Add(1)
	ev.Node = p.opt.Node
	for !p.ring.Push(ev) {
		if p.closed.Load() {
			p.dropped.Add(1)
			return false
		}
		runtime.Gosched()
	}
	if p.closed.Load() {
		// The writer may already be past its final drain; it still empties
		// the ring before finishing, so the event is not lost — but flag
		// the misuse by not confirming it.
		select {
		case p.wake <- struct{}{}:
		default:
		}
		return false
	}
	select {
	case p.wake <- struct{}{}:
	default:
	}
	return true
}

// Stream implements trace.Stream: each record becomes one Event.

// StreamJob forwards one job record.
//
//yasmin:noalloc
func (p *Pipeline) StreamJob(j trace.JobRecord) {
	p.Publish(Event{Kind: KindJob, Job: j})
}

// StreamReconfig forwards one committed reconfiguration epoch.
//
//yasmin:noalloc
func (p *Pipeline) StreamReconfig(r trace.ReconfigRecord) {
	p.Publish(Event{Kind: KindReconfig, Reconfig: r})
}

// StreamRetire forwards one completed retirement.
//
//yasmin:noalloc
func (p *Pipeline) StreamRetire(r trace.RetireEvent) {
	p.Publish(Event{Kind: KindRetire, Retire: r})
}

// StreamAccel forwards one accelerator-arbitration event.
//
//yasmin:noalloc
func (p *Pipeline) StreamAccel(a trace.AccelEvent) {
	p.Publish(Event{Kind: KindAccel, Accel: a})
}

// blockingStream adapts a pipeline into a trace.Stream that waits for ring
// space (PublishWait) instead of dropping.
type blockingStream struct{ p *Pipeline }

func (b blockingStream) StreamJob(j trace.JobRecord) {
	b.p.PublishWait(Event{Kind: KindJob, Job: j})
}

func (b blockingStream) StreamReconfig(r trace.ReconfigRecord) {
	b.p.PublishWait(Event{Kind: KindReconfig, Reconfig: r})
}

func (b blockingStream) StreamRetire(r trace.RetireEvent) {
	b.p.PublishWait(Event{Kind: KindRetire, Retire: r})
}

func (b blockingStream) StreamAccel(a trace.AccelEvent) {
	b.p.PublishWait(Event{Kind: KindAccel, Accel: a})
}

// Blocking returns a trace.Stream view that waits for ring space instead of
// dropping on overflow — for offline exporters (simulation-backed runs,
// bulk conversions) where losslessness matters more than bounded record
// latency. Live record paths must attach the pipeline itself, which never
// blocks.
func (p *Pipeline) Blocking() trace.Stream { return blockingStream{p: p} }

// Stats returns the current counters. Exact only after Close (while
// running, published events may still be buffered in the ring).
func (p *Pipeline) Stats() Stats {
	return Stats{
		Published: p.pub.Load(),
		Exported:  p.expo.Load(),
		Dropped:   p.dropped.Load(),
		Batches:   p.batches.Load(),
	}
}

// Err returns the first sink error, if any. Sink failures do not stop the
// pipeline — events keep draining (and dropping at the sink) so producers
// are never back-pressured by a broken disk; the error is reported here and
// by Close.
func (p *Pipeline) Err() error {
	if e := p.sinkErr.Load(); e != nil {
		return *e
	}
	return nil
}

// Close stops accepting events, drains everything still buffered through
// the sink, writes the trailer (Sink.Finish) and waits for the writer to
// exit. It returns the first sink error. Idempotent.
func (p *Pipeline) Close() error {
	p.closeOnce.Do(func() {
		p.closed.Store(true)
		close(p.quit)
		<-p.done
		p.closeErr = p.Err()
	})
	return p.closeErr
}

// noteErr records the first sink error.
func (p *Pipeline) noteErr(err error) {
	if err == nil {
		return
	}
	p.sinkErr.CompareAndSwap(nil, &err)
}

// run is the writer goroutine: drain the ring into a reused batch, flush on
// size, age, or shutdown. Everything here is off the record path; its
// steady state also allocates nothing (batch, timer and encoder buffers are
// reused).
func (p *Pipeline) run() {
	defer close(p.done)
	// Start the batch at a bounded capacity and let append grow it toward
	// BatchSize: preallocating a huge batch up front would burn hundreds of
	// megabytes (and a visible pause) for a trigger that may never fill.
	batch := make([]Event, 0, min(p.opt.BatchSize, 1024))
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	timerLive := false
	stopTimer := func() {
		if timerLive {
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timerLive = false
		}
	}
	flush := func() {
		if len(batch) == 0 {
			return
		}
		if err := p.sink.WriteBatch(batch); err != nil {
			p.noteErr(err)
		}
		p.expo.Add(uint64(len(batch)))
		p.batches.Add(1)
		batch = batch[:0]
		stopTimer()
	}
	for {
		// Drain until the ring is empty or the batch is full.
		for len(batch) < p.opt.BatchSize {
			ev, ok := p.ring.Pop()
			if !ok {
				break
			}
			if len(batch) == 0 && p.opt.MaxBatchAge > 0 {
				stopTimer()
				timer.Reset(p.opt.MaxBatchAge)
				timerLive = true
			}
			batch = append(batch, ev)
		}
		if len(batch) >= p.opt.BatchSize {
			flush()
			continue
		}
		select {
		case <-p.wake:
		case <-timer.C:
			timerLive = false
			flush()
		case <-p.quit:
			// Final drain: everything in the ring at shutdown is exported.
			for {
				ev, ok := p.ring.Pop()
				if !ok {
					break
				}
				batch = append(batch, ev)
				if len(batch) >= p.opt.BatchSize {
					flush()
				}
			}
			flush()
			stopTimer()
			if err := p.sink.Finish(p.Stats()); err != nil {
				p.noteErr(err)
			}
			return
		}
	}
}
