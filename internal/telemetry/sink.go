package telemetry

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// FileSink writes events as JSONL — one JSON object per line, "type"-tagged
// (docs/TRACE.md "Streaming export") — and appends a summary trailer on
// Finish. Each WriteBatch is one file write, so batch size is exactly the
// syscall amortisation factor; the encode buffer is reused across batches.
// Driven by a single pipeline writer goroutine; not safe for concurrent use.
type FileSink struct {
	f    *os.File
	buf  []byte
	path string
}

// NewFileSink creates (truncating) path.
func NewFileSink(path string) (*FileSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	return &FileSink{f: f, path: path}, nil
}

// Path returns the file path the sink writes to.
func (s *FileSink) Path() string { return s.path }

// WriteBatch encodes the batch into one buffer and writes it with a single
// call.
func (s *FileSink) WriteBatch(batch []Event) error {
	s.buf = s.buf[:0]
	for i := range batch {
		s.buf = AppendEvent(s.buf, &batch[i])
		s.buf = append(s.buf, '\n')
	}
	if _, err := s.f.Write(s.buf); err != nil {
		return fmt.Errorf("telemetry: write %s: %w", s.path, err)
	}
	return nil
}

// Finish appends the summary trailer and closes the file.
func (s *FileSink) Finish(st Stats) error {
	s.buf = append(AppendSummary(s.buf[:0], st), '\n')
	_, werr := s.f.Write(s.buf)
	cerr := s.f.Close()
	if werr != nil {
		return fmt.Errorf("telemetry: trailer %s: %w", s.path, werr)
	}
	if cerr != nil {
		return fmt.Errorf("telemetry: close %s: %w", s.path, cerr)
	}
	return nil
}

// MemorySink retains every event in memory — the in-process sink for tests
// and for replaying a run without touching disk. Safe for concurrent reads
// while the pipeline is writing.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
	stats  Stats
	done   bool
}

// NewMemorySink creates an empty in-memory sink.
func NewMemorySink() *MemorySink { return &MemorySink{} }

// WriteBatch copies the batch (the pipeline reuses the slice).
func (s *MemorySink) WriteBatch(batch []Event) error {
	s.mu.Lock()
	s.events = append(s.events, batch...)
	s.mu.Unlock()
	return nil
}

// Finish stores the closing counters.
func (s *MemorySink) Finish(st Stats) error {
	s.mu.Lock()
	s.stats, s.done = st, true
	s.mu.Unlock()
	return nil
}

// Events returns a copy of everything received so far.
func (s *MemorySink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// Summary returns the trailer counters and whether Finish ran.
func (s *MemorySink) Summary() (Stats, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats, s.done
}

// Stream builds a replay Stream from the retained events (the in-memory
// equivalent of ReplayFile on a JSONL export).
func (s *MemorySink) Stream() *Stream {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := newStream()
	for i := range s.events {
		st.add(s.events[i])
	}
	if s.done {
		sum := s.stats
		st.Summary = &sum
	}
	return st
}

// DiscardSink drops every batch, keeping only a count — the sink for
// benchmarking the record path itself without encoding or I/O.
type DiscardSink struct {
	events atomic.Uint64
}

// NewDiscardSink creates a counting no-op sink.
func NewDiscardSink() *DiscardSink { return &DiscardSink{} }

// WriteBatch counts and discards.
func (s *DiscardSink) WriteBatch(batch []Event) error {
	s.events.Add(uint64(len(batch)))
	return nil
}

// Finish is a no-op.
func (s *DiscardSink) Finish(Stats) error { return nil }

// Count returns the number of events discarded.
func (s *DiscardSink) Count() uint64 { return s.events.Load() }
