package telemetry

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/yasmin-rt/yasmin/internal/trace"
)

// sampleEvents returns one event of every kind, with strings that need
// JSON escaping.
func sampleEvents() []Event {
	return []Event{
		{Kind: KindJob, Job: trace.JobRecord{
			Task: `tau "1"\x`, TaskID: 3, Job: 42, Version: 1, Core: 2,
			Accel: "gpu0", Release: 10 * time.Millisecond, Start: 11 * time.Millisecond,
			Finish: 12 * time.Millisecond, Deadline: 20 * time.Millisecond,
			Missed: true, Preempts: 2,
		}},
		{Kind: KindJob, Job: trace.JobRecord{
			Task: "plain", Job: 1, Release: 1, Start: 2, Finish: 3, Deadline: 4,
		}},
		{Kind: KindReconfig, Reconfig: trace.ReconfigRecord{
			Epoch: 1, At: 50 * time.Millisecond,
			Admitted: []string{"a", "b\tc"}, Retuned: []string{}, Retiring: []string{"z"},
			Mode: 7, Pause: 80 * time.Microsecond,
		}},
		{Kind: KindRetire, Retire: trace.RetireEvent{Task: "z", Epoch: 1, At: 60 * time.Millisecond}},
		{Kind: KindAccel, Accel: trace.AccelEvent{
			Kind: trace.AccelGrant, Accel: "gpu0#1", Pool: "gpu0", Task: "tau",
			Job: 9, Prio: -12345, At: 70 * time.Millisecond,
		}},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rt.jsonl")
	sink, err := NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(sink, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := sampleEvents()
	for _, ev := range want {
		if !p.Publish(ev) {
			t.Fatal("Publish rejected with an empty ring")
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Every line must be standalone valid JSON.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != len(want)+1 {
		t.Fatalf("%d lines, want %d events + trailer", len(lines), len(want))
	}
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, ln)
		}
		if m["type"] == "" {
			t.Fatalf("line %d has no type tag: %s", i+1, ln)
		}
	}

	st, err := ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if v := st.Verify(true); v != nil {
		t.Fatalf("clean export fails Verify: %v", v)
	}
	if st.Lost() != 0 {
		t.Fatalf("Lost() = %d on a clean export", st.Lost())
	}
	if len(st.Events) != len(want) {
		t.Fatalf("replayed %d events, want %d", len(st.Events), len(want))
	}
	for i := range want {
		got := st.Events[i]
		got.Seq = 0 // assigned by the pipeline
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("event %d mismatch:\n got  %+v\n want %+v", i, got, want[i])
		}
	}
}

// gatedSink blocks WriteBatch until released, so tests can hold the writer
// goroutine mid-flush and fill the ring deterministically.
type gatedSink struct {
	release chan struct{}
	mu      sync.Mutex
	events  []Event
	summary Stats
}

func newGatedSink() *gatedSink { return &gatedSink{release: make(chan struct{})} }

func (s *gatedSink) WriteBatch(batch []Event) error {
	<-s.release
	s.mu.Lock()
	s.events = append(s.events, batch...)
	s.mu.Unlock()
	return nil
}

func (s *gatedSink) Finish(st Stats) error {
	s.mu.Lock()
	s.summary = st
	s.mu.Unlock()
	return nil
}

// TestOverflowAccounting fills a tiny ring from concurrent publishers while
// the writer is blocked in the sink, and checks that every drop is
// accounted exactly and the retained records keep per-publisher FIFO order.
// Run under -race this is also the pipeline's publisher/writer race test.
func TestOverflowAccounting(t *testing.T) {
	sink := newGatedSink()
	p, err := New(sink, Options{RingCapacity: 4, BatchSize: 1, MaxBatchAge: -1})
	if err != nil {
		t.Fatal(err)
	}

	const pubs, perPub = 4, 500
	var accepted [pubs]uint64
	var wg sync.WaitGroup
	for pi := 0; pi < pubs; pi++ {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			for j := 0; j < perPub; j++ {
				if p.Publish(Event{Kind: KindJob, Job: trace.JobRecord{TaskID: pi, Job: int64(j)}}) {
					accepted[pi]++
				}
			}
		}(pi)
	}
	wg.Wait()
	close(sink.release)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	st := p.Stats()
	if st.Published != pubs*perPub {
		t.Fatalf("published %d, want %d", st.Published, pubs*perPub)
	}
	if st.Dropped == 0 {
		t.Fatal("a 4-slot ring behind a blocked sink dropped nothing")
	}
	if st.Exported+st.Dropped != st.Published {
		t.Fatalf("accounting leak: exported %d + dropped %d != published %d",
			st.Exported, st.Dropped, st.Published)
	}
	var acceptedTotal uint64
	for _, a := range accepted {
		acceptedTotal += a
	}
	if acceptedTotal != st.Exported {
		t.Fatalf("publishers got %d acks, sink received %d events", acceptedTotal, st.Exported)
	}
	if got := uint64(len(sink.events)); got != st.Exported {
		t.Fatalf("sink holds %d events, stats say %d exported", got, st.Exported)
	}
	if sink.summary != st {
		t.Fatalf("trailer %+v != final stats %+v", sink.summary, st)
	}

	// Per-publisher FIFO: each publisher's retained Job numbers strictly
	// increase (drops leave gaps, never reorderings), and so do its seqs.
	lastJob := map[int]int64{}
	lastSeq := map[int]uint64{}
	for _, ev := range sink.events {
		pi := ev.Job.TaskID
		if last, ok := lastJob[pi]; ok && ev.Job.Job <= last {
			t.Fatalf("publisher %d: job %d after %d (FIFO violated)", pi, ev.Job.Job, last)
		}
		if last, ok := lastSeq[pi]; ok && ev.Seq <= last {
			t.Fatalf("publisher %d: seq %d after %d (FIFO violated)", pi, ev.Seq, last)
		}
		lastJob[pi] = ev.Job.Job
		lastSeq[pi] = ev.Seq
	}
}

func TestBlockingStreamNeverDrops(t *testing.T) {
	sink := NewMemorySink()
	p, err := New(sink, Options{RingCapacity: 4, BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	bs := p.Blocking()
	const n = 5000
	for i := 0; i < n; i++ {
		bs.StreamJob(trace.JobRecord{Task: "t", Job: int64(i)})
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Dropped != 0 || st.Exported != n {
		t.Fatalf("blocking stream lost events: %+v", st)
	}
	if v := sink.Stream().Verify(true); v != nil {
		t.Fatalf("blocking export fails Verify: %v", v)
	}
}

func TestAgeFlushTrigger(t *testing.T) {
	sink := NewMemorySink()
	// Batch size far beyond what we publish: only the age trigger can flush.
	p, err := New(sink, Options{BatchSize: 1 << 20, MaxBatchAge: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Publish(Event{Kind: KindRetire, Retire: trace.RetireEvent{Task: "x"}})
	deadline := time.Now().Add(2 * time.Second)
	for len(sink.Events()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("age trigger never flushed the partial batch")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBatchSizeTrigger(t *testing.T) {
	sink := NewMemorySink()
	p, err := New(sink, Options{BatchSize: 8, MaxBatchAge: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		p.PublishWait(Event{Kind: KindRetire, Retire: trace.RetireEvent{Task: "x", Epoch: i}})
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Exported != 64 {
		t.Fatalf("exported %d of 64", st.Exported)
	}
	// 64 events in batches of <= 8 means at least 8 WriteBatch calls; the
	// age trigger is off, so without the size trigger nothing would flush
	// before Close's single final drain.
	if st.Batches < 8 {
		t.Fatalf("64 events arrived in %d batches; size trigger (8) never fired", st.Batches)
	}
}

func TestPublishAllocationFree(t *testing.T) {
	p, err := New(NewDiscardSink(), Options{RingCapacity: 1 << 16, MaxBatchAge: -1, BatchSize: 1 << 15})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ev := Event{Kind: KindJob, Job: trace.JobRecord{Task: "steady", Job: 1}}
	if avg := testing.AllocsPerRun(1000, func() { p.Publish(ev) }); avg != 0 {
		t.Fatalf("Publish allocates %.1f times per call; the record path must be allocation-free", avg)
	}
}

// corrupt applies a line-level mutation to an exported file and returns the
// replayed stream.
func corrupt(t *testing.T, path string, mutate func(lines []string) []string) *Stream {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	out := filepath.Join(t.TempDir(), "corrupt.jsonl")
	if err := os.WriteFile(out, []byte(strings.Join(mutate(lines), "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := ReplayFile(out)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestVerifyCatchesSeededCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "clean.jsonl")
	sink, err := NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(sink, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		p.Publish(Event{Kind: KindJob, Job: trace.JobRecord{Task: "t", Job: int64(i)}})
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if st, err := ReplayFile(path); err != nil || st.Verify(true) != nil || st.Lost() != 0 {
		t.Fatalf("baseline export not clean: err=%v verify=%v", err, func() []string {
			st, _ := ReplayFile(path)
			return st.Verify(true)
		}())
	}

	cases := []struct {
		label  string
		mutate func([]string) []string
		want   string // substring of an expected violation
	}{
		{"gap", func(ls []string) []string {
			return append(ls[:10:10], ls[11:]...) // drop one record silently
		}, "missing from stream"},
		{"reorder", func(ls []string) []string {
			ls[5], ls[6] = ls[6], ls[5]
			return ls
		}, "stream reordered"},
		{"duplicate", func(ls []string) []string {
			return append(ls[:8:8], append([]string{ls[7]}, ls[8:]...)...)
		}, "duplicates"},
		{"truncated", func(ls []string) []string {
			return ls[:len(ls)-1] // cut the trailer
		}, "truncated before Close"},
	}
	for _, tc := range cases {
		st := corrupt(t, path, tc.mutate)
		v := st.Verify(true)
		if len(v) == 0 {
			t.Errorf("%s: Verify found nothing", tc.label)
			continue
		}
		found := false
		for _, s := range v {
			if strings.Contains(s, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: violations %v mention no %q", tc.label, v, tc.want)
		}
		if tc.label == "gap" && st.Lost() == 0 {
			t.Error("gap: Lost() = 0 after a record was removed")
		}
	}
}
