package telemetry

// Cluster record shapes. These are produced by internal/cluster (not by
// trace.Recorder, so they are not part of trace.Stream): the data plane
// publishes one FrameRecord per frame action on the local node's
// pipeline, and the control plane publishes one ClusterEpochRecord per
// committed cluster-wide reconfiguration. Both land in the same JSONL
// export as the job/reconfig/retire/accel records, tagged with the
// node id, so scenario.CheckStreams can reconcile the per-node files of
// a cluster run into one verified timeline.

// FrameDir says which side of the transport recorded a frame action.
type FrameDir uint8

// Frame actions, one per FrameRecord direction.
const (
	// FrameSend is a frame handed to the transport by the origin node.
	FrameSend FrameDir = iota + 1
	// FrameRecv is a frame accepted by a destination node's ingress.
	FrameRecv
	// FrameDrop is a frame rejected by a destination node's ingress
	// (stale sequence after loss/reorder, stale epoch, or injected loss).
	FrameDrop
)

var frameDirNames = [...]string{FrameSend: "send", FrameRecv: "recv", FrameDrop: "drop"}

func (d FrameDir) String() string {
	if int(d) < len(frameDirNames) && frameDirNames[d] != "" {
		return frameDirNames[d]
	}
	return "FrameDir?"
}

// FrameRecord is one data-plane frame action. Send records carry the
// origin's clock in both SentAt and At; recv/drop records keep the
// sender's SentAt and stamp At from the receiving node's clock, which is
// what the clock-discipline estimator and the replay reconciler consume.
type FrameRecord struct {
	Dir    FrameDir
	Origin int    // origin node id
	Dst    int    // destination node id (== the recording node for recv/drop)
	Topic  string // topic name (cluster-wide namespace)
	Pub    int    // publisher task id on the origin node
	FSeq   uint64 // per-(origin,topic,pub) frame sequence, 1-based
	Epoch  uint64 // cluster epoch stamped by the sender
	SentAt int64  // sender-local send timestamp (ns since env start)
	At     int64  // local timestamp of this action (ns since env start)
}

// ClusterEpochRecord marks a committed cluster-wide reconfiguration: all
// nodes switch to Epoch at their local instant At. CheckStreams requires
// the per-node epoch sequences of one run to be identical — a mismatch
// means a node committed an epoch the others never saw.
type ClusterEpochRecord struct {
	Epoch uint64
	At    int64 // local commit timestamp (ns since env start)
}
