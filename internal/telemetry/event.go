package telemetry

import (
	"fmt"

	"github.com/yasmin-rt/yasmin/internal/jsonenc"
	"github.com/yasmin-rt/yasmin/internal/trace"
)

// Kind tags the record variant an Event carries.
type Kind uint8

// Event kinds, one per trace record shape.
const (
	// KindJob is one job execution (trace.JobRecord).
	KindJob Kind = iota + 1
	// KindReconfig is one committed reconfiguration epoch
	// (trace.ReconfigRecord).
	KindReconfig
	// KindRetire is one completed task drain (trace.RetireEvent).
	KindRetire
	// KindAccel is one accelerator-arbitration action (trace.AccelEvent).
	KindAccel
	// KindFrame is one cluster data-plane frame action (FrameRecord).
	KindFrame
	// KindClusterEpoch is one committed cluster-wide reconfiguration
	// (ClusterEpochRecord).
	KindClusterEpoch
)

var kindNames = map[Kind]string{
	KindJob:          "job",
	KindReconfig:     "reconfig",
	KindRetire:       "retire",
	KindAccel:        "accel",
	KindFrame:        "frame",
	KindClusterEpoch: "cepoch",
}

//yasmin:noalloc
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k)) //yasmin:alloc-ok unknown-kind fallback, cold
}

// Event is the ring-buffer element: a tagged union over the trace record
// shapes plus the pipeline-assigned sequence number. It is a plain value —
// publishing one copies it into a preallocated ring slot, so the record
// path allocates nothing. Only the field selected by Kind is meaningful.
type Event struct {
	Kind Kind
	// Seq is the 1-based global sequence number stamped by
	// Pipeline.Publish. Dropped events consume their number, so a gap in
	// an exported stream is exactly one lost record.
	Seq uint64
	// Node is the cluster node id of the pipeline that published the
	// event, stamped by Pipeline.Publish from Options.Node. A
	// single-node run is node 0 of a one-node cluster, so the zero value
	// is always correct; node 0 is elided from the wire (the decoder's
	// zero default reconstructs it losslessly).
	Node int

	Job      trace.JobRecord
	Reconfig trace.ReconfigRecord
	Retire   trace.RetireEvent
	Accel    trace.AccelEvent
	Frame    FrameRecord
	CEpoch   ClusterEpochRecord
}

// At returns the event's timestamp (the record's own instant field).
func (e *Event) At() int64 {
	switch e.Kind {
	case KindJob:
		return int64(e.Job.Finish)
	case KindReconfig:
		return int64(e.Reconfig.At)
	case KindRetire:
		return int64(e.Retire.At)
	case KindAccel:
		return int64(e.Accel.At)
	case KindFrame:
		return e.Frame.At
	case KindClusterEpoch:
		return e.CEpoch.At
	}
	return 0
}

// --- JSONL encoding -------------------------------------------------------
//
// One JSON object per line, tagged with "type". The encoder is built on
// internal/jsonenc's append-style helpers (shared with the cluster wire
// codec) so the writer goroutine reuses one buffer across batches and the
// steady-state export path performs zero allocations. Durations are
// nanosecond integers (offsets from environment start, as everywhere in
// internal/trace). Decoding (the replay path, never hot) uses
// encoding/json against the same schema; see docs/TRACE.md "Streaming
// export".
//
// Field keys are precomposed literals — `,"name":` with the separating
// comma and colon baked in — appended at the call site, where the
// compiler turns a constant-string append into immediate stores instead
// of a memmove call. (Passing a key through a helper parameter defeats
// that, so the jsonenc value helpers take the buffer with the key
// already appended.)

// appendNode appends the ",node":N field unless the event belongs to
// node 0 (single-node runs and the cluster coordinator's own node), which
// is elided: the decoder's zero default reconstructs it.
//
//yasmin:noalloc
func appendNode(b []byte, ev *Event) []byte {
	if ev.Node == 0 {
		return b
	}
	return jsonenc.AppendSigned(append(b, `,"node":`...), int64(ev.Node))
}

// AppendEvent appends ev as one JSON object (no trailing newline) and
// returns the extended buffer. It allocates only when the buffer grows.
//
//yasmin:noalloc
func AppendEvent(b []byte, ev *Event) []byte {
	switch ev.Kind {
	case KindJob:
		j := &ev.Job
		b = jsonenc.AppendDec(append(b, `{"type":"job","seq":`...), ev.Seq)
		b = appendNode(b, ev)
		b = jsonenc.AppendString(append(b, `,"task":`...), j.Task)
		b = jsonenc.AppendSigned(append(b, `,"tid":`...), int64(j.TaskID))
		b = jsonenc.AppendSigned(append(b, `,"job":`...), j.Job)
		b = jsonenc.AppendSigned(append(b, `,"ver":`...), int64(j.Version))
		b = jsonenc.AppendSigned(append(b, `,"core":`...), int64(j.Core))
		if j.Accel != "" {
			b = jsonenc.AppendString(append(b, `,"accel":`...), j.Accel)
		}
		b = jsonenc.AppendSigned(append(b, `,"rel":`...), int64(j.Release))
		b = jsonenc.AppendSigned(append(b, `,"start":`...), int64(j.Start))
		b = jsonenc.AppendSigned(append(b, `,"fin":`...), int64(j.Finish))
		b = jsonenc.AppendSigned(append(b, `,"dl":`...), int64(j.Deadline))
		if j.Missed {
			b = append(b, `,"miss":true`...)
		}
		if j.Preempts != 0 {
			b = jsonenc.AppendSigned(append(b, `,"pre":`...), int64(j.Preempts))
		}
	case KindReconfig:
		r := &ev.Reconfig
		b = jsonenc.AppendDec(append(b, `{"type":"reconfig","seq":`...), ev.Seq)
		b = appendNode(b, ev)
		b = jsonenc.AppendSigned(append(b, `,"epoch":`...), int64(r.Epoch))
		b = jsonenc.AppendSigned(append(b, `,"at":`...), int64(r.At))
		b = jsonenc.AppendStringList(append(b, `,"admitted":`...), r.Admitted)
		b = jsonenc.AppendStringList(append(b, `,"retuned":`...), r.Retuned)
		b = jsonenc.AppendStringList(append(b, `,"retiring":`...), r.Retiring)
		b = jsonenc.AppendDec(append(b, `,"mode":`...), uint64(r.Mode))
		b = jsonenc.AppendSigned(append(b, `,"pause":`...), int64(r.Pause))
	case KindRetire:
		r := &ev.Retire
		b = jsonenc.AppendDec(append(b, `{"type":"retire","seq":`...), ev.Seq)
		b = appendNode(b, ev)
		b = jsonenc.AppendString(append(b, `,"task":`...), r.Task)
		b = jsonenc.AppendSigned(append(b, `,"epoch":`...), int64(r.Epoch))
		b = jsonenc.AppendSigned(append(b, `,"at":`...), int64(r.At))
	case KindAccel:
		a := &ev.Accel
		b = jsonenc.AppendDec(append(b, `{"type":"accel","seq":`...), ev.Seq)
		b = appendNode(b, ev)
		b = jsonenc.AppendString(append(b, `,"kind":`...), a.Kind.String())
		b = jsonenc.AppendString(append(b, `,"accel":`...), a.Accel)
		b = jsonenc.AppendString(append(b, `,"pool":`...), a.Pool)
		b = jsonenc.AppendString(append(b, `,"task":`...), a.Task)
		b = jsonenc.AppendSigned(append(b, `,"job":`...), a.Job)
		b = jsonenc.AppendSigned(append(b, `,"prio":`...), a.Prio)
		b = jsonenc.AppendSigned(append(b, `,"at":`...), int64(a.At))
	case KindFrame:
		f := &ev.Frame
		b = jsonenc.AppendDec(append(b, `{"type":"frame","seq":`...), ev.Seq)
		b = appendNode(b, ev)
		b = jsonenc.AppendString(append(b, `,"dir":`...), f.Dir.String())
		b = jsonenc.AppendSigned(append(b, `,"origin":`...), int64(f.Origin))
		b = jsonenc.AppendSigned(append(b, `,"dst":`...), int64(f.Dst))
		b = jsonenc.AppendString(append(b, `,"topic":`...), f.Topic)
		b = jsonenc.AppendSigned(append(b, `,"pub":`...), int64(f.Pub))
		b = jsonenc.AppendDec(append(b, `,"fseq":`...), f.FSeq)
		b = jsonenc.AppendDec(append(b, `,"epoch":`...), f.Epoch)
		b = jsonenc.AppendSigned(append(b, `,"sent":`...), f.SentAt)
		b = jsonenc.AppendSigned(append(b, `,"at":`...), f.At)
	case KindClusterEpoch:
		c := &ev.CEpoch
		b = jsonenc.AppendDec(append(b, `{"type":"cepoch","seq":`...), ev.Seq)
		b = appendNode(b, ev)
		b = jsonenc.AppendDec(append(b, `,"epoch":`...), c.Epoch)
		b = jsonenc.AppendSigned(append(b, `,"at":`...), c.At)
	default:
		b = jsonenc.AppendString(append(b, `{"type":`...), ev.Kind.String())
		b = jsonenc.AppendDec(append(b, `,"seq":`...), ev.Seq)
	}
	return append(b, '}')
}

// AppendSummary appends the stream trailer object (no trailing newline):
// the pipeline's final counters, which a replay checks the reloaded stream
// against to prove losslessness.
func AppendSummary(b []byte, st Stats) []byte {
	b = jsonenc.AppendDec(append(b, `{"type":"summary","published":`...), st.Published)
	b = jsonenc.AppendDec(append(b, `,"exported":`...), st.Exported)
	b = jsonenc.AppendDec(append(b, `,"dropped":`...), st.Dropped)
	b = jsonenc.AppendDec(append(b, `,"batches":`...), st.Batches)
	return append(b, '}')
}
