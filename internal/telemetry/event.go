package telemetry

import (
	"fmt"
	"math/bits"

	"github.com/yasmin-rt/yasmin/internal/trace"
)

// Kind tags the record variant an Event carries.
type Kind uint8

// Event kinds, one per trace record shape.
const (
	// KindJob is one job execution (trace.JobRecord).
	KindJob Kind = iota + 1
	// KindReconfig is one committed reconfiguration epoch
	// (trace.ReconfigRecord).
	KindReconfig
	// KindRetire is one completed task drain (trace.RetireEvent).
	KindRetire
	// KindAccel is one accelerator-arbitration action (trace.AccelEvent).
	KindAccel
)

var kindNames = map[Kind]string{
	KindJob:      "job",
	KindReconfig: "reconfig",
	KindRetire:   "retire",
	KindAccel:    "accel",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is the ring-buffer element: a tagged union over the trace record
// shapes plus the pipeline-assigned sequence number. It is a plain value —
// publishing one copies it into a preallocated ring slot, so the record
// path allocates nothing. Only the field selected by Kind is meaningful.
type Event struct {
	Kind Kind
	// Seq is the 1-based global sequence number stamped by
	// Pipeline.Publish. Dropped events consume their number, so a gap in
	// an exported stream is exactly one lost record.
	Seq uint64

	Job      trace.JobRecord
	Reconfig trace.ReconfigRecord
	Retire   trace.RetireEvent
	Accel    trace.AccelEvent
}

// At returns the event's timestamp (the record's own instant field).
func (e *Event) At() int64 {
	switch e.Kind {
	case KindJob:
		return int64(e.Job.Finish)
	case KindReconfig:
		return int64(e.Reconfig.At)
	case KindRetire:
		return int64(e.Retire.At)
	case KindAccel:
		return int64(e.Accel.At)
	}
	return 0
}

// --- JSONL encoding -------------------------------------------------------
//
// One JSON object per line, tagged with "type". The encoder is hand-rolled
// append-style so the writer goroutine reuses one buffer across batches and
// the steady-state export path performs zero allocations. Durations are
// nanosecond integers (offsets from environment start, as everywhere in
// internal/trace). Decoding (the replay path, never hot) uses encoding/json
// against the same schema; see docs/TRACE.md "Streaming export".

const hexDigits = "0123456789abcdef"

// jsonEsc marks the bytes that need escaping inside a JSON string: quote,
// backslash, and the C0 control range. One table load per byte beats the
// three-comparison chain on the encode hot path.
var jsonEsc = [256]bool{'"': true, '\\': true}

func init() {
	for c := 0; c < 0x20; c++ {
		jsonEsc[c] = true
	}
}

// appendJSONString appends s as a JSON string literal, escaping quotes,
// backslashes and control characters. Multi-byte UTF-8 passes through raw
// (valid JSON). Clean runs between escapes are copied in one append — task
// and pool names almost never need escaping, so the common case is a single
// bulk copy.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !jsonEsc[c] {
			continue
		}
		b = append(b, s[start:i]...)
		if c == '"' || c == '\\' {
			b = append(b, '\\', c)
		} else {
			b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		}
		start = i + 1
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// Field keys are precomposed literals — `,"name":` with the separating
// comma and colon baked in — appended at the call site, where the compiler
// turns a constant-string append into immediate stores instead of a memmove
// call. (Passing a key through a helper parameter defeats that, so the
// value helpers below take the buffer with the key already appended.)

// digitPairs is the two-digit lookup table for appendDec: index 2n holds
// the tens digit of n, 2n+1 the ones digit.
const digitPairs = "00010203040506070809" +
	"10111213141516171819" +
	"20212223242526272829" +
	"30313233343536373839" +
	"40414243444546474849" +
	"50515253545556575859" +
	"60616263646566676869" +
	"70717273747576777879" +
	"80818283848586878889" +
	"90919293949596979899"

var pow10 = [20]uint64{
	1, 10, 100, 1000, 10000, 100000, 1000000, 10000000, 100000000,
	1000000000, 10000000000, 100000000000, 1000000000000,
	10000000000000, 100000000000000, 1000000000000000,
	10000000000000000, 100000000000000000, 1000000000000000000,
	10000000000000000000,
}

// decLen returns the number of decimal digits in v in constant time:
// floor(log2 · 1233/4096) approximates log10, then one table compare
// corrects the boundary. No divisions — those are appendDec's whole cost,
// and doing them twice would defeat it.
func decLen(v uint64) int {
	if v == 0 {
		return 1
	}
	t := (bits.Len64(v) * 1233) >> 12
	if v >= pow10[t] {
		t++
	}
	return t
}

// appendDec appends v in decimal. It beats strconv.AppendUint on this hot
// path with small-value fast paths (most job-record fields are one or two
// digits) and by writing two digits per division directly into the
// destination — no intermediate buffer, no copy. Integer fields dominate an
// encoded job record, so this is where export throughput is won.
func appendDec(b []byte, v uint64) []byte {
	if v < 10 {
		return append(b, byte('0'+v))
	}
	if v < 100 {
		return append(b, digitPairs[v*2], digitPairs[v*2+1])
	}
	if cap(b)-len(b) < 20 {
		b = append(b, make([]byte, 20)...)[:len(b)]
	}
	i := len(b) + decLen(v)
	b = b[:i]
	for v >= 100 {
		q := v / 100
		r := (v - q*100) * 2
		i -= 2
		b[i] = digitPairs[r]
		b[i+1] = digitPairs[r+1]
		v = q
	}
	if v >= 10 {
		b[i-2] = digitPairs[v*2]
		b[i-1] = digitPairs[v*2+1]
	} else {
		b[i-1] = byte('0' + v)
	}
	return b
}

// appendSigned appends v in decimal with a sign when negative.
func appendSigned(b []byte, v int64) []byte {
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	return appendDec(b, uint64(v))
}

// appendList appends vs as a JSON array of strings.
func appendList(b []byte, vs []string) []byte {
	b = append(b, '[')
	for i, v := range vs {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendJSONString(b, v)
	}
	return append(b, ']')
}

// AppendEvent appends ev as one JSON object (no trailing newline) and
// returns the extended buffer. It allocates only when the buffer grows.
func AppendEvent(b []byte, ev *Event) []byte {
	switch ev.Kind {
	case KindJob:
		j := &ev.Job
		b = appendDec(append(b, `{"type":"job","seq":`...), ev.Seq)
		b = appendJSONString(append(b, `,"task":`...), j.Task)
		b = appendSigned(append(b, `,"tid":`...), int64(j.TaskID))
		b = appendSigned(append(b, `,"job":`...), j.Job)
		b = appendSigned(append(b, `,"ver":`...), int64(j.Version))
		b = appendSigned(append(b, `,"core":`...), int64(j.Core))
		if j.Accel != "" {
			b = appendJSONString(append(b, `,"accel":`...), j.Accel)
		}
		b = appendSigned(append(b, `,"rel":`...), int64(j.Release))
		b = appendSigned(append(b, `,"start":`...), int64(j.Start))
		b = appendSigned(append(b, `,"fin":`...), int64(j.Finish))
		b = appendSigned(append(b, `,"dl":`...), int64(j.Deadline))
		if j.Missed {
			b = append(b, `,"miss":true`...)
		}
		if j.Preempts != 0 {
			b = appendSigned(append(b, `,"pre":`...), int64(j.Preempts))
		}
	case KindReconfig:
		r := &ev.Reconfig
		b = appendDec(append(b, `{"type":"reconfig","seq":`...), ev.Seq)
		b = appendSigned(append(b, `,"epoch":`...), int64(r.Epoch))
		b = appendSigned(append(b, `,"at":`...), int64(r.At))
		b = appendList(append(b, `,"admitted":`...), r.Admitted)
		b = appendList(append(b, `,"retuned":`...), r.Retuned)
		b = appendList(append(b, `,"retiring":`...), r.Retiring)
		b = appendDec(append(b, `,"mode":`...), uint64(r.Mode))
		b = appendSigned(append(b, `,"pause":`...), int64(r.Pause))
	case KindRetire:
		r := &ev.Retire
		b = appendDec(append(b, `{"type":"retire","seq":`...), ev.Seq)
		b = appendJSONString(append(b, `,"task":`...), r.Task)
		b = appendSigned(append(b, `,"epoch":`...), int64(r.Epoch))
		b = appendSigned(append(b, `,"at":`...), int64(r.At))
	case KindAccel:
		a := &ev.Accel
		b = appendDec(append(b, `{"type":"accel","seq":`...), ev.Seq)
		b = appendJSONString(append(b, `,"kind":`...), a.Kind.String())
		b = appendJSONString(append(b, `,"accel":`...), a.Accel)
		b = appendJSONString(append(b, `,"pool":`...), a.Pool)
		b = appendJSONString(append(b, `,"task":`...), a.Task)
		b = appendSigned(append(b, `,"job":`...), a.Job)
		b = appendSigned(append(b, `,"prio":`...), a.Prio)
		b = appendSigned(append(b, `,"at":`...), int64(a.At))
	default:
		b = appendJSONString(append(b, `{"type":`...), ev.Kind.String())
		b = appendDec(append(b, `,"seq":`...), ev.Seq)
	}
	return append(b, '}')
}

// AppendSummary appends the stream trailer object (no trailing newline):
// the pipeline's final counters, which a replay checks the reloaded stream
// against to prove losslessness.
func AppendSummary(b []byte, st Stats) []byte {
	b = appendDec(append(b, `{"type":"summary","published":`...), st.Published)
	b = appendDec(append(b, `,"exported":`...), st.Exported)
	b = appendDec(append(b, `,"dropped":`...), st.Dropped)
	b = appendDec(append(b, `,"batches":`...), st.Batches)
	return append(b, '}')
}
