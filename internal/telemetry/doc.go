// Package telemetry is the streaming export pipeline for trace records: an
// allocation-free MPSC ring buffer on the record path, a batching writer
// goroutine with size/age flush triggers, bounded-queue backpressure with
// explicit overflow accounting, and pluggable sinks (JSONL file, in-memory,
// discard).
//
// The shape is producer → ring → batcher → sink:
//
//   - Producers (scheduler workers, the reconfiguration commit path, the
//     accelerator arbiter) call Pipeline.Publish, which stamps a global
//     sequence number and pushes the event into a lock-free ring. The call
//     never blocks, never allocates, and never takes a mutex; when the ring
//     is full the event is dropped and counted — overflow is explicit
//     accounting, not silence.
//   - One writer goroutine drains the ring into a reused batch and hands it
//     to the Sink when the batch is full or the oldest buffered event
//     exceeds the flush age. Batching amortises encoding buffers and write
//     syscalls; BatchSize 1 degenerates to one write per record (the
//     unbatched comparison in BENCH_telemetry.json).
//   - Sequence numbers make loss visible end to end: a dropped event
//     consumes its number, so a replay of the exported stream can prove
//     exactly how many records were lost (gaps) and that none were silently
//     reordered. Replay reloads a JSONL export; internal/scenario's
//     CheckStream re-runs the scenario invariants on it.
//
// trace.Recorder forwards records here through its streaming hook
// (Recorder.SetStream) before taking its own mutex, so export costs the hot
// path one ring push.
package telemetry
