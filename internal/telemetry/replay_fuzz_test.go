package telemetry

import (
	"bytes"
	"testing"
)

// FuzzReplay drives the JSONL replay decoder with arbitrary input. Beyond
// crash-freedom it checks one closure property: any stream Replay accepts
// can be re-exported record-by-record with AppendEvent and replayed again
// with the same event count — the reader and writer agree on the schema
// for every value the reader lets through.
func FuzzReplay(f *testing.F) {
	f.Add([]byte(`{"type":"job","seq":1,"task":"t0","tid":1,"job":2,"ver":1,"core":0,"rel":0,"start":10,"fin":20,"dl":100,"miss":false,"pre":0}`))
	f.Add([]byte(`{"type":"reconfig","seq":2,"epoch":1,"at":50,"admitted":["a"],"retuned":[],"retiring":["b"],"mode":0,"pause":7}`))
	f.Add([]byte(`{"type":"retire","seq":3,"task":"b","epoch":1,"at":60}`))
	f.Add([]byte(`{"type":"accel","seq":4,"kind":"grant","accel":"gpu0","pool":"gpu","task":"t0","job":2,"prio":5,"at":70}`))
	f.Add([]byte(`{"type":"frame","seq":5,"node":1,"dir":"send","origin":1,"dst":0,"topic":"x","pub":3,"fseq":9,"epoch":1,"sent":80,"at":81}`))
	f.Add([]byte(`{"type":"cepoch","seq":6,"node":1,"epoch":2,"at":90}`))
	f.Add([]byte(`{"type":"summary","published":6,"exported":6,"dropped":0,"batches":1}`))
	f.Add([]byte("{\"type\":\"job\",\"seq\":1}\n\n{\"type\":\"summary\"}"))
	f.Add([]byte(`{"type":"nope"}`))
	f.Add([]byte(`{"type":`))
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Replay(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf []byte
		for i := range st.Events {
			buf = AppendEvent(buf, &st.Events[i])
			buf = append(buf, '\n')
		}
		st2, err := Replay(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("replay of re-exported stream failed: %v\nexport:\n%s", err, buf)
		}
		if len(st2.Events) != len(st.Events) {
			t.Fatalf("re-export changed event count: %d -> %d", len(st.Events), len(st2.Events))
		}
	})
}
