package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/yasmin-rt/yasmin/internal/trace"
)

// Stream is a reloaded export: the events in stream order, split per record
// kind for convenience, plus the trailer (when the export was closed
// cleanly). Verify proves transport-level losslessness; internal/scenario's
// CheckStream re-runs the scenario invariants on top.
type Stream struct {
	Events []Event

	Jobs      []trace.JobRecord
	Reconfigs []trace.ReconfigRecord
	Retires   []trace.RetireEvent
	Accels    []trace.AccelEvent
	Frames    []FrameRecord
	CEpochs   []ClusterEpochRecord

	// Summary is the trailer (nil when the export was truncated before
	// Close — Verify reports that as a violation).
	Summary *Stats
}

func newStream() *Stream { return &Stream{} }

func (s *Stream) add(ev Event) {
	s.Events = append(s.Events, ev)
	switch ev.Kind {
	case KindJob:
		s.Jobs = append(s.Jobs, ev.Job)
	case KindReconfig:
		s.Reconfigs = append(s.Reconfigs, ev.Reconfig)
	case KindRetire:
		s.Retires = append(s.Retires, ev.Retire)
	case KindAccel:
		s.Accels = append(s.Accels, ev.Accel)
	case KindFrame:
		s.Frames = append(s.Frames, ev.Frame)
	case KindClusterEpoch:
		s.CEpochs = append(s.CEpochs, ev.CEpoch)
	}
}

// Node returns the cluster node id the stream was exported by: the node
// stamp shared by every event (a pipeline stamps all its events with one
// id). Mixed stamps return -1 — CheckStreams flags that as a corrupt
// merge input. An empty stream is node 0.
func (s *Stream) Node() int {
	if len(s.Events) == 0 {
		return 0
	}
	n := s.Events[0].Node
	for i := range s.Events {
		if s.Events[i].Node != n {
			return -1
		}
	}
	return n
}

// Lost returns how many published records are absent from the stream:
// the dropped count the exporter accounted for (ring overflow) plus any
// silent loss. 0 means the export is provably complete.
func (s *Stream) Lost() uint64 {
	published := uint64(len(s.Events))
	if s.Summary != nil {
		published = s.Summary.Published
	} else {
		for i := range s.Events {
			if s.Events[i].Seq > published {
				published = s.Events[i].Seq
			}
		}
	}
	if published < uint64(len(s.Events)) {
		return 0 // duplicate seqs; Verify flags them
	}
	return published - uint64(len(s.Events))
}

// Verify checks the transport-level invariants of the stream and returns
// the violations found (nil = clean):
//
//   - every sequence number in 1..Published appears exactly once (no
//     duplicates; gaps beyond the exporter's accounted drops mean records
//     were lost silently);
//   - a trailer is present and consistent (Exported == events on stream,
//     Published == Exported + Dropped);
//   - with strictOrder, sequence numbers are strictly increasing in stream
//     order. Sim-backed exports are strictly ordered (producers run
//     lock-step); on OSEnv concurrent producers may legally interleave a
//     few positions, so pass false there — per-producer order is still
//     guaranteed by the ring.
func (s *Stream) Verify(strictOrder bool) []string {
	var v []string
	seen := make(map[uint64]int, len(s.Events))
	var maxSeq, prev uint64
	for i := range s.Events {
		seq := s.Events[i].Seq
		if seq == 0 {
			v = append(v, fmt.Sprintf("event %d: missing seq", i))
			continue
		}
		if first, dup := seen[seq]; dup {
			v = append(v, fmt.Sprintf("event %d: seq %d duplicates event %d", i, seq, first))
		}
		seen[seq] = i
		if strictOrder && seq <= prev {
			v = append(v, fmt.Sprintf("event %d: seq %d after %d (stream reordered)", i, seq, prev))
		}
		prev = seq
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	published := maxSeq
	accounted := uint64(0)
	if s.Summary == nil {
		v = append(v, "no summary trailer: export was truncated before Close")
	} else {
		published = s.Summary.Published
		accounted = s.Summary.Dropped
		if s.Summary.Exported != uint64(len(s.Events)) {
			v = append(v, fmt.Sprintf("trailer says %d exported, stream has %d events",
				s.Summary.Exported, len(s.Events)))
		}
		if s.Summary.Published != s.Summary.Exported+s.Summary.Dropped {
			v = append(v, fmt.Sprintf("trailer inconsistent: published %d != exported %d + dropped %d",
				s.Summary.Published, s.Summary.Exported, s.Summary.Dropped))
		}
		if maxSeq > published {
			v = append(v, fmt.Sprintf("seq %d beyond trailer published %d", maxSeq, published))
		}
	}
	if published >= uint64(len(seen)) {
		if missing := published - uint64(len(seen)); missing != accounted {
			v = append(v, fmt.Sprintf("%d of %d records missing from stream, exporter accounted %d drops (silent loss)",
				missing, published, accounted))
		}
	}
	return v
}

// wireEvent is the decode shape of one JSONL line — the union of every
// event type's fields plus the trailer's (docs/TRACE.md).
type wireEvent struct {
	Type string `json:"type"`
	Seq  uint64 `json:"seq"`
	Node int    `json:"node"` // elided when 0, so the decode default matches

	Dir    string `json:"dir"`
	Origin int    `json:"origin"`
	Dst    int    `json:"dst"`
	Topic  string `json:"topic"`
	Pub    int    `json:"pub"`
	FSeq   uint64 `json:"fseq"`
	Sent   int64  `json:"sent"`

	Task string `json:"task"`
	TID  int    `json:"tid"`
	Job  int64  `json:"job"`
	Ver  int    `json:"ver"`
	Core int    `json:"core"`
	Rel  int64  `json:"rel"`
	Strt int64  `json:"start"`
	Fin  int64  `json:"fin"`
	DL   int64  `json:"dl"`
	Miss bool   `json:"miss"`
	Pre  int    `json:"pre"`

	Epoch    int      `json:"epoch"`
	At       int64    `json:"at"`
	Admitted []string `json:"admitted"`
	Retuned  []string `json:"retuned"`
	Retiring []string `json:"retiring"`
	Mode     uint32   `json:"mode"`
	Pause    int64    `json:"pause"`

	Kind  string `json:"kind"`
	Accel string `json:"accel"`
	Pool  string `json:"pool"`
	Prio  int64  `json:"prio"`

	Published uint64 `json:"published"`
	Exported  uint64 `json:"exported"`
	Dropped   uint64 `json:"dropped"`
	Batches   uint64 `json:"batches"`
}

var frameDirByName = map[string]FrameDir{
	FrameSend.String(): FrameSend,
	FrameRecv.String(): FrameRecv,
	FrameDrop.String(): FrameDrop,
}

var accelKindByName = map[string]trace.AccelEventKind{
	trace.AccelAcquire.String(): trace.AccelAcquire,
	trace.AccelPark.String():    trace.AccelPark,
	trace.AccelBoost.String():   trace.AccelBoost,
	trace.AccelGrant.String():   trace.AccelGrant,
	trace.AccelRequeue.String(): trace.AccelRequeue,
	trace.AccelRelease.String(): trace.AccelRelease,
}

// Replay decodes a JSONL export back into a Stream. Unknown line types are
// an error (the schema is versioned by construction: every type this
// package writes, it reads).
func Replay(r io.Reader) (*Stream, error) {
	st := newStream()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var w wireEvent
		if err := json.Unmarshal(raw, &w); err != nil {
			return nil, fmt.Errorf("telemetry: replay line %d: %w", line, err)
		}
		switch w.Type {
		case "job":
			st.add(Event{Kind: KindJob, Seq: w.Seq, Node: w.Node, Job: trace.JobRecord{
				Task: w.Task, TaskID: w.TID, Job: w.Job, Version: w.Ver,
				Core: w.Core, Accel: w.Accel,
				Release: time.Duration(w.Rel), Start: time.Duration(w.Strt),
				Finish: time.Duration(w.Fin), Deadline: time.Duration(w.DL),
				Missed: w.Miss, Preempts: w.Pre,
			}})
		case "reconfig":
			st.add(Event{Kind: KindReconfig, Seq: w.Seq, Node: w.Node, Reconfig: trace.ReconfigRecord{
				Epoch: w.Epoch, At: time.Duration(w.At),
				Admitted: w.Admitted, Retuned: w.Retuned, Retiring: w.Retiring,
				Mode: w.Mode, Pause: time.Duration(w.Pause),
			}})
		case "retire":
			st.add(Event{Kind: KindRetire, Seq: w.Seq, Node: w.Node, Retire: trace.RetireEvent{
				Task: w.Task, Epoch: w.Epoch, At: time.Duration(w.At),
			}})
		case "accel":
			kind, ok := accelKindByName[w.Kind]
			if !ok {
				return nil, fmt.Errorf("telemetry: replay line %d: unknown accel kind %q", line, w.Kind)
			}
			st.add(Event{Kind: KindAccel, Seq: w.Seq, Node: w.Node, Accel: trace.AccelEvent{
				Kind: kind, Accel: w.Accel, Pool: w.Pool, Task: w.Task,
				Job: w.Job, Prio: w.Prio, At: time.Duration(w.At),
			}})
		case "frame":
			dir, ok := frameDirByName[w.Dir]
			if !ok {
				return nil, fmt.Errorf("telemetry: replay line %d: unknown frame dir %q", line, w.Dir)
			}
			st.add(Event{Kind: KindFrame, Seq: w.Seq, Node: w.Node, Frame: FrameRecord{
				Dir: dir, Origin: w.Origin, Dst: w.Dst, Topic: w.Topic, Pub: w.Pub,
				FSeq: w.FSeq, Epoch: uint64(w.Epoch), SentAt: w.Sent, At: w.At,
			}})
		case "cepoch":
			st.add(Event{Kind: KindClusterEpoch, Seq: w.Seq, Node: w.Node, CEpoch: ClusterEpochRecord{
				Epoch: uint64(w.Epoch), At: w.At,
			}})
		case "summary":
			st.Summary = &Stats{
				Published: w.Published, Exported: w.Exported,
				Dropped: w.Dropped, Batches: w.Batches,
			}
		default:
			return nil, fmt.Errorf("telemetry: replay line %d: unknown type %q", line, w.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: replay: %w", err)
	}
	return st, nil
}

// ReplayFile decodes the JSONL export at path.
func ReplayFile(path string) (*Stream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	defer f.Close()
	return Replay(f)
}
