// Fixture for the lockedblock analyzer: App.mu is `lockrank 2 nosleep`, so
// no blocking operation may be reachable while it is held.
package lockedblock

import (
	"fmt"
	"sync"
	"time"
)

type lk struct{ held bool }

func (l *lk) Lock()   { l.held = true }
func (l *lk) Unlock() { l.held = false }

type App struct {
	//yasmin:lockrank 2 nosleep
	mu lk
	wg sync.WaitGroup
	ch chan int
}

// Ctx mirrors the rt.Ctx park/sleep surface.
type Ctx interface {
	//yasmin:blocking
	Park()
	//yasmin:nonblocking
	Yield()
}

func (a *App) badSend() {
	a.mu.Lock()
	a.ch <- 1 // want `blocking operation \(channel send\) while holding App.mu`
	a.mu.Unlock()
}

func (a *App) badRecv() {
	a.mu.Lock()
	<-a.ch // want `blocking operation \(channel receive\) while holding App.mu`
	a.mu.Unlock()
}

func (a *App) badSleep() {
	a.mu.Lock()
	time.Sleep(time.Millisecond) // want `blocking operation \(time.Sleep\) while holding App.mu`
	a.mu.Unlock()
}

func (a *App) badWait() {
	a.mu.Lock()
	a.wg.Wait() // want `WaitGroup.Wait\) while holding App.mu`
	a.mu.Unlock()
}

func (a *App) badPrint() {
	a.mu.Lock()
	fmt.Println("state") // want `blocking operation \(fmt.Println \(I/O\)\) while holding App.mu`
	a.mu.Unlock()
}

func (a *App) badSelect() {
	a.mu.Lock()
	select { // want `blocking operation \(select without default\) while holding App.mu`
	case <-a.ch:
	}
	a.mu.Unlock()
}

func (a *App) badPark(c Ctx) {
	a.mu.Lock()
	c.Park() // want `call to Park \(annotated //yasmin:blocking\) while holding App.mu`
	a.mu.Unlock()
}

func (a *App) okYield(c Ctx) {
	a.mu.Lock()
	c.Yield()
	a.mu.Unlock()
}

func (a *App) okSelectDefault() {
	a.mu.Lock()
	select {
	case v := <-a.ch:
		_ = v
	default:
	}
	a.mu.Unlock()
}

func (a *App) okAfterUnlock() {
	a.mu.Lock()
	a.mu.Unlock()
	time.Sleep(time.Millisecond)
	<-a.ch
}

// badTransitive blocks two calls deep: step1 → step2 → channel receive.
func (a *App) badTransitive() {
	a.mu.Lock()
	a.step1() // want `call to step1 blocks \(channel receive via step2\) while holding App.mu`
	a.mu.Unlock()
}

func (a *App) step1() { a.step2() }
func (a *App) step2() { <-a.ch }

// okTransitive: calling the same chain without the lock is fine.
func (a *App) okTransitive() {
	a.step1()
}
