package determinism

import "time"

// This file carries no //yasmin:deterministic tag, so wall-clock use and
// map iteration are fine here.

func hostClock() int64 {
	return time.Now().UnixNano()
}

func anyOrder(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
