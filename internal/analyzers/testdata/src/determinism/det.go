// Fixture for the determinism analyzer: this file is tagged deterministic,
// its sibling nondet.go is not.
//
//yasmin:deterministic
package determinism

import (
	"math/rand"
	"time"
)

func badNow() int64 {
	return time.Now().UnixNano() // want `wall-clock time.Now in deterministic scope`
}

func okWallclockEscape() int64 {
	return time.Now().UnixNano() //yasmin:wallclock host-side measurement only
}

func badGlobalRand() int {
	return rand.Intn(10) // want `global math/rand.Intn in deterministic scope`
}

func okSeededSource(r *rand.Rand) int {
	return r.Intn(10)
}

func badMapRange(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m { // want `map iteration order is randomized`
		out = append(out, k)
	}
	return out
}

func okOrderInvariant(m map[string]int) int {
	n := 0
	//yasmin:orderinvariant commutative count
	for range m {
		n++
	}
	return n
}

func okDurationMath(d time.Duration) time.Duration {
	return d * 2
}
