// Fixture for the noalloc analyzer: annotated hot-path functions must not
// allocate, directly or through any depth of same-package calls.
package noalloc

import (
	"strings"
	"sync/atomic"
)

type buf struct {
	dst []byte
	m   map[string]int
	n   atomic.Uint64
}

//yasmin:noalloc
func (b *buf) ok(vs []int) int {
	s := 0
	for _, v := range vs {
		s += v
	}
	b.dst = append(b.dst, byte(s)) // append: amortized, allowed
	b.m["k"] = s                   // map store: allowed
	b.n.Add(1)                     // sync/atomic: allowed
	return s
}

//yasmin:noalloc
func (b *buf) badMake() {
	b.dst = make([]byte, 8) // want `make allocates in noalloc function`
}

//yasmin:noalloc
func (b *buf) badLits() {
	_ = []int{1, 2}      // want `slice literal allocates in noalloc function`
	_ = map[string]int{} // want `map literal allocates in noalloc function`
}

//yasmin:noalloc
func (b *buf) badPtrLit() *buf {
	return &buf{} // want `&composite literal escapes to the heap in noalloc function`
}

//yasmin:noalloc
func (b *buf) badConcat(a, c string) string {
	return a + c // want `string concatenation allocates in noalloc function`
}

//yasmin:noalloc
func (b *buf) badConv(s string) []byte {
	return []byte(s) // want `string conversion copies and allocates in noalloc function`
}

//yasmin:noalloc
func (b *buf) badClosure() func() {
	return func() {} // want `function literal allocates a closure in noalloc function`
}

//yasmin:noalloc
func (b *buf) badGo() {
	go b.badMake() // want `go statement allocates a goroutine in noalloc function`
}

//yasmin:noalloc
func (b *buf) badCrossPkg(s string) string {
	return strings.Repeat(s, 2) // want `calls strings.Repeat which is not annotated //yasmin:noalloc`
}

//yasmin:noalloc
func (b *buf) badDynamic(f func()) {
	f() // want `call through function value cannot be proven allocation-free`
}

//yasmin:noalloc
func (b *buf) okEscape() {
	b.dst = make([]byte, 8) //yasmin:alloc-ok deliberate cold-path resize
}

//yasmin:noalloc
func (b *buf) okPanicArgs(n int) {
	if n < 0 {
		panic("negative input: " + string(rune(n))) // panicking paths may build their message
	}
}

//yasmin:noalloc
func helperAnnotated(x int) int { return x * 2 }

//yasmin:noalloc
func (b *buf) okCallAnnotated() int { return helperAnnotated(3) }

// badTransitive allocates two calls deep through unannotated helpers; the
// analyzer recurses rather than stopping one hop in.
//
//yasmin:noalloc
func (b *buf) badTransitive() {
	b.level1() // want `calls level1 which allocates \(calls level2 which allocates \(make allocates in noalloc function`
}

func (b *buf) level1() { b.level2() }
func (b *buf) level2() { b.dst = make([]byte, 1) }
