// Fixture: `//yasmin:deterministic package` in one file extends the scope
// to every file of the package.
//
//yasmin:deterministic package
package determinismpkg

func pure(x int) int { return x * 3 }
