package determinismpkg

import "time"

// No directive in this file, but a.go declared the whole package
// deterministic.

func badNowOtherFile() int64 {
	return time.Now().UnixNano() // want `wall-clock time.Now in deterministic scope`
}
