// Fixture for the atomicview analyzer: atomic-typed fields only via their
// methods, legacy atomic.XxxUint32 fields atomically everywhere, and
// //yasmin:immutable snapshots never mutated.
package atomicview

import "sync/atomic"

type view struct{ n int }

type holder struct {
	v    atomic.Pointer[view]
	c    atomic.Uint32
	mode uint32
}

func (h *holder) okMethods() *view {
	h.v.Store(&view{n: 1})
	h.c.Add(1)
	_ = h.c.Load()
	return h.v.Load()
}

func (h *holder) badCopy() atomic.Uint32 {
	return h.c // want `atomic field c used outside its atomic methods`
}

func (h *holder) badAddr() *atomic.Uint32 {
	return &h.c // want `atomic field c used outside its atomic methods`
}

func (h *holder) okLegacy() uint32 {
	atomic.StoreUint32(&h.mode, 1)
	return atomic.LoadUint32(&h.mode)
}

func (h *holder) badMixedWrite() {
	h.mode = 3 // want `plain write of field mode, which is accessed with sync/atomic`
}

func (h *holder) badMixedRead() uint32 {
	return h.mode // want `plain read of field mode, which is accessed with sync/atomic`
}

// snap mirrors topicView: a published, never-mutated snapshot.
//
//yasmin:immutable
type snap struct {
	subs []int
}

func build() *snap { return &snap{subs: []int{1, 2}} }

func badMutate(s *snap) {
	s.subs = nil // want `write to field subs of //yasmin:immutable type snap`
}

func okRepublish(h2 *atomic.Pointer[snap], s *snap) {
	next := &snap{subs: append([]int(nil), s.subs...)}
	h2.Store(next)
}
