// Fixture for the lockorder analyzer: a two-rank hierarchy mirroring the
// real App (reconfigMu rank 1 outside mu rank 2), plus an unranked mutex.
package lockorder

import "sync"

type lk struct{ held bool }

func (l *lk) Lock()   { l.held = true }
func (l *lk) Unlock() { l.held = false }

type App struct {
	//yasmin:lockrank 1
	cfg lk
	//yasmin:lockrank 2 nosleep
	mu  lk
	aux sync.Mutex
}

func (a *App) good() {
	a.cfg.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	a.cfg.Unlock()
}

func (a *App) goodSequential() {
	a.mu.Lock()
	a.mu.Unlock()
	a.cfg.Lock()
	a.cfg.Unlock()
}

func (a *App) badOrder() {
	a.mu.Lock()
	a.cfg.Lock() // want `lock order violation: App.cfg \(rank 1\) acquired while holding App.mu \(rank 2\)`
	a.cfg.Unlock()
	a.mu.Unlock()
}

func (a *App) badUnranked() {
	a.mu.Lock()
	a.aux.Lock() // want `unranked lock App.aux acquired while holding ranked lock App.mu`
	a.aux.Unlock()
	a.mu.Unlock()
}

func (a *App) badReacquire() {
	a.mu.Lock()
	a.mu.Lock() // want `lock App.mu acquired while already held: self-deadlock`
	a.mu.Unlock()
	a.mu.Unlock()
}

func (a *App) badUnderDefer() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.cfg.Lock() // want `lock order violation: App.cfg \(rank 1\) acquired while holding App.mu \(rank 2\)`
	a.cfg.Unlock()
}

func (a *App) badInBranch(x bool) {
	a.mu.Lock()
	if x {
		a.cfg.Lock() // want `lock order violation: App.cfg \(rank 1\) acquired while holding App.mu \(rank 2\)`
		a.cfg.Unlock()
	}
	a.mu.Unlock()
}

// badTransitive acquires cfg two calls deep while holding mu — the PR 5
// PIP-chain shape applied to the linter: the walk must not be one-hop.
func (a *App) badTransitive() {
	a.mu.Lock()
	a.mid() // want `lock order violation: App.cfg \(rank 1\) acquired while holding App.mu \(rank 2\) \(via mid → leaf\)`
	a.mu.Unlock()
}

func (a *App) mid()  { a.leaf() }
func (a *App) leaf() { a.cfg.Lock(); a.cfg.Unlock() }

// goodTransitive: the same helper chain is fine when nothing is held.
func (a *App) goodTransitive() {
	a.mid()
}
