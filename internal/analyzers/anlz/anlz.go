// Package anlz is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis driver surface: Analyzer, Pass, Diagnostic,
// a package loader built on `go list` plus the standard library's source
// importer, and a cross-package directive ("fact") store. The repository's
// build environment is hermetic — x/tools cannot be fetched — so yasmin-vet
// carries this shim instead; the analyzer API is kept call-compatible so the
// checkers port to the real framework mechanically if it ever lands in the
// module cache.
package anlz

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker, mirroring analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and baselines.
	Name string
	// Doc is the one-paragraph description shown by yasmin-vet -help.
	Doc string
	// Run executes the analyzer on one package.
	Run func(*Pass) error
}

// Diagnostic is one finding, positioned in the analyzed package.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass carries one analyzed package into an Analyzer's Run, mirroring
// analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Dirs holds the package's directives (this package's own plus, via
	// the shared store, every dependency's).
	Dirs *Directives

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos. Exact duplicates (same position,
// analyzer, and message) are dropped: flow-based checkers may legitimately
// traverse a loop body more than once to reach a fixpoint.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	for _, d := range *p.diags {
		if d.Pos == pos && d.Analyzer == p.Analyzer.Name && d.Message == msg {
			return
		}
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  msg,
	})
}

// A directive is a magic comment of the form //yasmin:<verb> [args...].
// Directives attach to the declaration they document (func, struct field,
// interface method, type) or — for file/package scope — to any comment in
// the file.
const directivePrefix = "//yasmin:"

// Directive is one parsed //yasmin: comment.
type Directive struct {
	Verb string   // e.g. "noalloc", "lockrank", "deterministic"
	Args []string // whitespace-split arguments after the verb
	Pos  token.Pos
}

// Directives indexes a package's //yasmin: comments three ways: by declared
// object key (functions, fields, types, interface methods), by file (scoped
// verbs like deterministic), and by source line (statement-level escapes
// like alloc-ok / wallclock / orderinvariant). Object keys are stable
// strings so they can be looked up across packages through the shared
// Store.
type Directives struct {
	store *Store
	// objs maps object key -> directives on its declaration.
	objs map[string][]Directive
	// files maps file name (fset-resolved) -> file-scope directives.
	files map[string][]Directive
	// lines maps "file:line" -> directives written on that line.
	lines map[string][]Directive
	// pkgPath of the package these were collected from.
	pkgPath string
}

// Store accumulates every analyzed package's directives so later packages
// can consult annotations on their dependencies' objects — the shim's
// equivalent of analysis facts. The driver analyzes packages in dependency
// order, so lookups always hit a fully collected package.
type Store struct {
	pkgs map[string]*Directives
}

// NewStore creates an empty cross-package directive store.
func NewStore() *Store { return &Store{pkgs: map[string]*Directives{}} }

// ObjKey computes the stable cross-package key for a declared object:
// "pkgpath.Name" for package-level objects, "pkgpath.Type.Name" for
// methods and struct fields. Returns "" for objects without a package
// (builtins) or local variables.
func ObjKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	switch o := obj.(type) {
	case *types.Func:
		sig, ok := o.Type().(*types.Signature)
		if ok && sig.Recv() != nil {
			return obj.Pkg().Path() + "." + baseTypeName(sig.Recv().Type()) + "." + obj.Name()
		}
		return obj.Pkg().Path() + "." + obj.Name()
	case *types.Var:
		// Struct fields are keyed by owner type at collection time; a
		// bare var key covers package-level vars.
		if o.IsField() {
			return "" // callers use FieldKey with the owner type
		}
		if o.Parent() == o.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		return ""
	case *types.TypeName:
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return ""
}

// FieldKey is the object key of a struct field or interface method given
// its owner's named type.
func FieldKey(pkgPath, typeName, fieldName string) string {
	return pkgPath + "." + typeName + "." + fieldName
}

func baseTypeName(t types.Type) string {
	t = derefAll(t)
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return strings.ReplaceAll(types.TypeString(t, nil), " ", "")
}

func derefAll(t types.Type) types.Type {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			return t
		}
		t = p.Elem()
	}
}

// CollectDirectives walks the package's files once and indexes every
// //yasmin: comment. It registers the result in the store under the
// package's import path.
func (s *Store) CollectDirectives(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Directives {
	d := &Directives{
		store:   s,
		objs:    map[string][]Directive{},
		files:   map[string][]Directive{},
		lines:   map[string][]Directive{},
		pkgPath: pkg.Path(),
	}
	for _, f := range files {
		fname := fset.Position(f.Package).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				dir, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				dir.Pos = c.Pos()
				pos := fset.Position(c.Pos())
				d.files[fname] = append(d.files[fname], dir)
				d.lines[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] =
					append(d.lines[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)], dir)
			}
		}
		// Attach directives to the declarations they document.
		for _, decl := range f.Decls {
			switch dd := decl.(type) {
			case *ast.FuncDecl:
				for _, dir := range commentDirectives(dd.Doc) {
					if obj := info.Defs[dd.Name]; obj != nil {
						if k := ObjKey(obj); k != "" {
							d.objs[k] = append(d.objs[k], dir)
						}
					}
				}
			case *ast.GenDecl:
				d.collectGenDecl(fset, dd, pkg, info)
			}
		}
	}
	s.pkgs[pkg.Path()] = d
	return d
}

// collectGenDecl attaches directives inside type declarations: the type
// itself, struct fields, and interface methods. Field and method
// directives may ride the doc comment or the same-line trailing comment.
func (d *Directives) collectGenDecl(fset *token.FileSet, g *ast.GenDecl, pkg *types.Package, info *types.Info) {
	for _, spec := range g.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		typeName := ts.Name.Name
		docs := commentDirectives(g.Doc)
		docs = append(docs, commentDirectives(ts.Doc)...)
		docs = append(docs, commentDirectives(ts.Comment)...)
		for _, dir := range docs {
			d.objs[FieldKey(pkg.Path(), typeName, "")] = append(d.objs[FieldKey(pkg.Path(), typeName, "")], dir)
			if obj := info.Defs[ts.Name]; obj != nil {
				if k := ObjKey(obj); k != "" {
					d.objs[k] = append(d.objs[k], dir)
				}
			}
		}
		var fields *ast.FieldList
		switch t := ts.Type.(type) {
		case *ast.StructType:
			fields = t.Fields
		case *ast.InterfaceType:
			fields = t.Methods
		default:
			continue
		}
		for _, f := range fields.List {
			dirs := commentDirectives(f.Doc)
			dirs = append(dirs, commentDirectives(f.Comment)...)
			if len(dirs) == 0 {
				continue
			}
			for _, name := range f.Names {
				for _, dir := range dirs {
					d.objs[FieldKey(pkg.Path(), typeName, name.Name)] =
						append(d.objs[FieldKey(pkg.Path(), typeName, name.Name)], dir)
				}
			}
		}
	}
}

func commentDirectives(cg *ast.CommentGroup) []Directive {
	if cg == nil {
		return nil
	}
	var out []Directive
	for _, c := range cg.List {
		if dir, ok := parseDirective(c.Text); ok {
			dir.Pos = c.Pos()
			out = append(out, dir)
		}
	}
	return out
}

func parseDirective(text string) (Directive, bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return Directive{}, false
	}
	fields := strings.Fields(strings.TrimPrefix(text, directivePrefix))
	if len(fields) == 0 {
		return Directive{}, false
	}
	return Directive{Verb: fields[0], Args: fields[1:]}, true
}

// ObjHas reports whether obj's declaration carries the verb, looking the
// declaring package up in the shared store (works across packages).
func (d *Directives) ObjHas(obj types.Object, verb string) bool {
	_, ok := d.ObjDirective(obj, verb)
	return ok
}

// ObjDirective returns the first directive with the verb on obj's
// declaration.
func (d *Directives) ObjDirective(obj types.Object, verb string) (Directive, bool) {
	if obj == nil || obj.Pkg() == nil {
		return Directive{}, false
	}
	return d.KeyDirective(ObjKey(obj), obj.Pkg().Path(), verb)
}

// FieldDirective returns the first directive with the verb on the named
// struct field or interface method.
func (d *Directives) FieldDirective(pkgPath, typeName, fieldName, verb string) (Directive, bool) {
	return d.KeyDirective(FieldKey(pkgPath, typeName, fieldName), pkgPath, verb)
}

// KeyDirective resolves a directive by precomputed object key.
func (d *Directives) KeyDirective(key, pkgPath, verb string) (Directive, bool) {
	if key == "" {
		return Directive{}, false
	}
	src := d
	if pkgPath != d.pkgPath && d.store != nil {
		src = d.store.pkgs[pkgPath]
		if src == nil {
			return Directive{}, false
		}
	}
	for _, dir := range src.objs[key] {
		if dir.Verb == verb {
			return dir, true
		}
	}
	return Directive{}, false
}

// FileDirectives returns every file-scope directive with the verb in the
// file containing pos (this package only).
func (d *Directives) FileDirectives(fset *token.FileSet, pos token.Pos, verb string) []Directive {
	fname := fset.Position(pos).Filename
	var out []Directive
	for _, dir := range d.files[fname] {
		if dir.Verb == verb {
			out = append(out, dir)
		}
	}
	return out
}

// FileHas reports whether the file containing pos carries a file-scope
// directive with the verb (in this package).
func (d *Directives) FileHas(fset *token.FileSet, pos token.Pos, verb string) bool {
	fname := fset.Position(pos).Filename
	for _, dir := range d.files[fname] {
		if dir.Verb == verb {
			return true
		}
	}
	return false
}

// LineHas reports whether the source line of pos (or the line above it)
// carries the verb — the statement-level escape hatch: the annotation may
// trail the statement or sit on its own line immediately before it.
func (d *Directives) LineHas(fset *token.FileSet, pos token.Pos, verb string) bool {
	p := fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, dir := range d.lines[fmt.Sprintf("%s:%d", p.Filename, line)] {
			if dir.Verb == verb {
				return true
			}
		}
	}
	return false
}

// RunOne executes a single analyzer over one already-type-checked package
// (the analysistest entry point).
func RunOne(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, dirs *Directives) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Dirs:      dirs,
		diags:     &diags,
	}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	SortDiagnostics(fset, diags)
	return diags, nil
}

// SortDiagnostics orders diagnostics by position then analyzer for stable
// output.
func SortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}
