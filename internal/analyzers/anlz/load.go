package anlz

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path    string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
	Imports []string
	// Match reports whether the package was named by the load patterns
	// (false: an in-module dependency loaded only so its //yasmin:
	// directives enter the store — it is not itself analyzed).
	Match bool
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Module     *struct{ Path string }
}

// Load enumerates the packages matching patterns with `go list`, parses and
// type-checks them (imports resolve through the standard library's source
// importer, so the loader works offline), and returns them topologically
// sorted: every package appears after the packages it imports. In-module
// dependencies of the matched packages are loaded too — with Match=false —
// so their //yasmin: directives are visible when only a subset of the tree
// is analyzed; dependencies outside the module are type-checked on demand
// by the importer but never surfaced.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	matched, err := golist(dir, patterns, false)
	if err != nil {
		return nil, err
	}
	matchSet := make(map[string]bool, len(matched))
	for _, e := range matched {
		matchSet[e.ImportPath] = true
	}
	// Second pass with -deps picks up in-module dependencies of the matched
	// set (stdlib and external modules are filtered by the Module stamp).
	entries, err := golist(dir, patterns, true)
	if err != nil {
		return nil, err
	}
	entries = toposort(entries)

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, e := range entries {
		p, err := typecheck(fset, imp, e)
		if err != nil {
			return nil, err
		}
		p.Match = matchSet[p.Path]
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// golist runs `go list -json` (with -deps when deps is set) and returns the
// module-local entries that have Go sources.
func golist(dir string, patterns []string, deps bool) ([]listEntry, error) {
	args := []string{"list", "-json=ImportPath,Dir,GoFiles,Imports,Module"}
	if deps {
		args = append(args, "-deps")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("anlz: go list: %v\n%s", err, errb.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(&out)
	for dec.More() {
		var e listEntry
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("anlz: go list decode: %v", err)
		}
		if len(e.GoFiles) > 0 && e.Module != nil {
			entries = append(entries, e)
		}
	}
	return entries, nil
}

// toposort orders entries so imports precede importers (stable for
// unrelated packages: lexical by import path).
func toposort(entries []listEntry) []listEntry {
	sort.Slice(entries, func(i, j int) bool { return entries[i].ImportPath < entries[j].ImportPath })
	byPath := make(map[string]*listEntry, len(entries))
	for i := range entries {
		byPath[entries[i].ImportPath] = &entries[i]
	}
	var out []listEntry
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(e *listEntry)
	visit = func(e *listEntry) {
		if state[e.ImportPath] != 0 {
			return
		}
		state[e.ImportPath] = 1
		for _, imp := range e.Imports {
			if dep := byPath[imp]; dep != nil && state[imp] == 0 {
				visit(dep)
			}
		}
		state[e.ImportPath] = 2
		out = append(out, *e)
	}
	for i := range entries {
		visit(&entries[i])
	}
	return out
}

func typecheck(fset *token.FileSet, imp types.Importer, e listEntry) (*Package, error) {
	var files []*ast.File
	for _, name := range e.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(e.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("anlz: parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp, Error: func(error) {}}
	pkg, err := conf.Check(e.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("anlz: typecheck %s: %v", e.ImportPath, err)
	}
	return &Package{
		Path:    e.ImportPath,
		Dir:     e.Dir,
		Fset:    fset,
		Files:   files,
		Pkg:     pkg,
		Info:    info,
		Imports: e.Imports,
	}, nil
}

// Analyze runs the analyzers over every matched loaded package (which must
// be in dependency order, as Load returns them) sharing one directive
// store, and returns all diagnostics sorted by position. Directives are
// collected from every package — analyzers run only on matched ones, so a
// subset run still sees the annotations of its in-module dependencies.
func Analyze(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	store := NewStore()
	var diags []Diagnostic
	for _, p := range pkgs {
		dirs := store.CollectDirectives(p.Fset, p.Files, p.Pkg, p.Info)
		if !p.Match {
			continue
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      p.Fset,
				Files:     p.Files,
				Pkg:       p.Pkg,
				TypesInfo: p.Info,
				Dirs:      dirs,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("anlz: %s on %s: %v", a.Name, p.Path, err)
			}
		}
	}
	if len(pkgs) > 0 {
		SortDiagnostics(pkgs[0].Fset, diags)
	}
	return diags, nil
}
