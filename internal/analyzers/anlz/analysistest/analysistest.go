// Package analysistest runs an anlz.Analyzer over fixture packages under
// testdata/src and checks its diagnostics against `// want "regexp"`
// comments, mirroring golang.org/x/tools/go/analysis/analysistest on top of
// the stdlib-only shim.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/yasmin-rt/yasmin/internal/analyzers/anlz"
)

// wantRe matches one expectation in a // want comment: either a
// double-quoted (Go-unquoted) or backtick-quoted (raw) regexp, as in
// x/tools analysistest.
var wantRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// Run analyzes each package fixture testdata/src/<pkg> with the analyzer
// and reports mismatches between emitted diagnostics and // want comments.
func Run(t *testing.T, testdata string, a *anlz.Analyzer, pkgNames ...string) {
	t.Helper()
	for _, name := range pkgNames {
		t.Run(name, func(t *testing.T) {
			runOne(t, filepath.Join(testdata, "src", name), a)
		})
	}
}

func runOne(t *testing.T, dir string, a *anlz.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(error) {},
	}
	pkg, err := conf.Check(files[0].Name.Name, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck fixture: %v", err)
	}

	store := anlz.NewStore()
	dirs := store.CollectDirectives(fset, files, pkg, info)
	diags, err := anlz.RunOne(a, fset, files, pkg, info, dirs)
	if err != nil {
		t.Fatalf("analyzer: %v", err)
	}

	type want struct {
		re      *regexp.Regexp
		raw     string
		matched bool
	}
	wants := map[string][]*want{} // "file:line" -> expectations
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "want ")
				if !strings.HasPrefix(text, "// want ") && !strings.Contains(text, "// want ") {
					continue
				}
				idx = strings.Index(text, "want ")
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, m := range wantRe.FindAllStringSubmatch(text[idx:], -1) {
					unq := m[1] // backtick-quoted: raw
					if m[1] == "" && m[2] != "" {
						var err error
						unq, err = strconv.Unquote(`"` + m[2] + `"`)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", key, m[2], err)
						}
					}
					re, err := regexp.Compile(unq)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, unq, err)
					}
					wants[key] = append(wants[key], &want{re: re, raw: unq})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.raw)
			}
		}
	}
}
