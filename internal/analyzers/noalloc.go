package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"github.com/yasmin-rt/yasmin/internal/analyzers/anlz"
)

// NoAlloc verifies the zero-allocation contract on hot-path functions
// annotated //yasmin:noalloc (Publish, the scheduler tick, the telemetry
// record path, cluster ingress shard delivery, AppendFrame/AppendEvent).
// Inside them it flags heap-allocating constructs — make/new, slice and map
// literals, &T{…}, string concatenation and string<->[]byte conversions,
// closures, go statements — and walks calls: same-package unannotated
// callees are verified transitively (any depth); cross-package and
// interface callees must themselves be annotated //yasmin:noalloc or sit on
// the short allocation-free stdlib allowlist (sync/atomic, math, math/bits,
// plain sync lock ops, time arithmetic). append/copy/delete and map stores
// are allowed (amortized, pre-sized by design); a trailing
// //yasmin:alloc-ok escapes one deliberate cold-path line.
var NoAlloc = &anlz.Analyzer{
	Name: "noalloc",
	Doc: "check that //yasmin:noalloc functions contain no allocating " +
		"constructs and only call allocation-free callees, transitively",
	Run: runNoAlloc,
}

func runNoAlloc(pass *anlz.Pass) error {
	decls := declMap(pass)
	v := &allocVerifier{
		pass:   pass,
		decls:  decls,
		byFunc: map[*types.Func]*allocFinding{},
		active: map[*types.Func]bool{},
	}
	var order []*types.Func
	for fn := range decls {
		order = append(order, fn)
	}
	sort.Slice(order, func(i, j int) bool { return decls[order[i]].Pos() < decls[order[j]].Pos() })
	for _, fn := range order {
		if !pass.Dirs.ObjHas(fn, "noalloc") {
			continue
		}
		for _, f := range v.findings(fn) {
			pass.Reportf(f.pos, "%s", f.msg)
		}
	}
	return nil
}

// allocFinding is one allocation (or unverifiable call) inside a noalloc
// region.
type allocFinding struct {
	pos token.Pos
	msg string
}

type allocVerifier struct {
	pass  *anlz.Pass
	decls map[*types.Func]*ast.FuncDecl
	// byFunc memoizes the first finding (nil = proven clean) per
	// same-package function reached transitively.
	byFunc map[*types.Func]*allocFinding
	active map[*types.Func]bool // cycle guard: optimistic on recursion
}

// findings walks fn's body and returns every allocation finding in it
// (positions inside fn; transitive callee problems are reported at the call
// site with the chain in the message).
func (v *allocVerifier) findings(fn *types.Func) []allocFinding {
	decl := v.decls[fn]
	if decl == nil || decl.Body == nil {
		return nil
	}
	var out []allocFinding
	v.walkBody(decl.Body, func(f allocFinding) { out = append(out, f) })
	return out
}

// verdict reports whether a transitively-reached, unannotated same-package
// function allocates, memoized. Returns the first finding or nil.
func (v *allocVerifier) verdict(fn *types.Func) *allocFinding {
	if f, ok := v.byFunc[fn]; ok {
		return f
	}
	if v.active[fn] {
		return nil // cycle: optimistic, the outer walk still covers each body once
	}
	v.active[fn] = true
	defer delete(v.active, fn)
	var first *allocFinding
	decl := v.decls[fn]
	if decl != nil && decl.Body != nil {
		v.walkBody(decl.Body, func(f allocFinding) {
			if first == nil {
				first = &f
			}
		})
	}
	v.byFunc[fn] = first
	return first
}

// walkBody visits a function body in source order, emitting findings. It
// skips function-literal bodies (reported as an allocation themselves),
// panic arguments (panicking paths may allocate their message), and any
// node whose line carries //yasmin:alloc-ok.
func (v *allocVerifier) walkBody(body *ast.BlockStmt, emit func(allocFinding)) {
	report := func(n ast.Node, msg string) {
		if v.pass.Dirs.LineHas(v.pass.Fset, n.Pos(), "alloc-ok") {
			return
		}
		emit(allocFinding{pos: n.Pos(), msg: msg})
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			report(x, "function literal allocates a closure in noalloc function")
			return false
		case *ast.GoStmt:
			report(x, "go statement allocates a goroutine in noalloc function")
			// Still check the call's arguments, which evaluate here.
			for _, a := range x.Call.Args {
				ast.Inspect(a, walk)
			}
			return false
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					report(x, "&composite literal escapes to the heap in noalloc function")
					return false
				}
			}
		case *ast.CompositeLit:
			t := v.pass.TypesInfo.Types[x].Type
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					report(x, "slice literal allocates in noalloc function")
				case *types.Map:
					report(x, "map literal allocates in noalloc function")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if t, ok := v.pass.TypesInfo.Types[x].Type.Underlying().(*types.Basic); ok &&
					t.Info()&types.IsString != 0 {
					report(x, "string concatenation allocates in noalloc function")
				}
			}
		case *ast.CallExpr:
			return v.checkCall(x, report, walk)
		}
		return true
	}
	ast.Inspect(body, walk)
}

// checkCall classifies one call inside a noalloc region. Returns whether
// ast.Inspect should descend into the call's children.
func (v *allocVerifier) checkCall(call *ast.CallExpr, report func(ast.Node, string), walk func(ast.Node) bool) bool {
	// Type conversions: only string <-> []byte/[]rune copy.
	if tv, ok := v.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && stringBytesConv(tv.Type, v.pass.TypesInfo.Types[call.Args[0]].Type) {
			report(call, "string conversion copies and allocates in noalloc function")
		}
		return true
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := v.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				report(call, b.Name()+" allocates in noalloc function")
			case "panic":
				return false // failing paths may build their message
			}
			return true
		}
	}
	callee := staticCalleeOf(v.pass, call)
	if callee == nil {
		report(call, "call through function value cannot be proven allocation-free in noalloc function")
		return true
	}
	switch {
	case v.pass.Dirs.ObjHas(callee, "noalloc"):
		// Annotated: verified at its own definition (or trusted, for
		// interface methods — every implementation is checked where
		// declared).
	case allocFreeStd(callee):
	case callee.Pkg() == v.pass.Pkg:
		if _, hasBody := v.decls[callee]; hasBody {
			if f := v.verdict(callee); f != nil {
				report(call, "calls "+callee.Name()+" which allocates ("+f.msg+
					" at "+posOf(v.pass, f.pos)+")")
			}
		} else {
			report(call, "calls "+callee.Name()+" (no body found) from noalloc function")
		}
	default:
		report(call, "calls "+calleeDisplay(callee)+" which is not annotated //yasmin:noalloc")
	}
	return true
}

func staticCalleeOf(pass *anlz.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

func calleeDisplay(f *types.Func) string {
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		return types.TypeString(sig.Recv().Type(), types.RelativeTo(f.Pkg())) + "." + f.Name()
	}
	if f.Pkg() != nil {
		return f.Pkg().Name() + "." + f.Name()
	}
	return f.Name()
}

// stringBytesConv reports whether converting from -> to copies string
// contents ([]byte/[]rune <-> string in either direction).
func stringBytesConv(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	return (isString(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// allocFreeStd is the short allowlist of standard-library callees known not
// to allocate: atomics, pure math, mutex ops, and time arithmetic (not
// formatting).
func allocFreeStd(f *types.Func) bool {
	pkg := f.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "sync/atomic", "math/bits", "math":
		return true
	case "sync":
		switch f.Name() {
		case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock", "Add", "Done", "Load", "Store", "Swap", "CompareAndSwap":
			return true
		}
	case "time":
		switch f.Name() {
		case "String", "Format", "AppendFormat", "GoString", "MarshalJSON", "MarshalText", "MarshalBinary", "Parse", "ParseDuration", "ParseInLocation":
			return false
		}
		return true
	}
	return false
}
