package analyzers_test

import (
	"testing"

	"github.com/yasmin-rt/yasmin/internal/analyzers"
	"github.com/yasmin-rt/yasmin/internal/analyzers/anlz/analysistest"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.LockOrder, "lockorder")
}

func TestLockedBlock(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.LockedBlock, "lockedblock")
}

func TestNoAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.NoAlloc, "noalloc")
}

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Determinism, "determinism", "determinismpkg")
}

func TestAtomicView(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.AtomicView, "atomicview")
}
