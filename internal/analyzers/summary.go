package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"

	"github.com/yasmin-rt/yasmin/internal/analyzers/anlz"
)

// acqEntry records that a function (possibly transitively) acquires a lock.
type acqEntry struct {
	lk    lockID
	chain string // "g → h" call chain, "" for a direct acquisition
	pos   token.Pos
}

// blockEntry records one representative blocking operation a function
// (possibly transitively) performs.
type blockEntry struct {
	desc  string
	chain string
	pos   token.Pos
}

// fnSummary is the transitive effect summary of one function: every lock it
// may acquire anywhere below it, and one example blocking operation. Both
// grow monotonically during the fixpoint, so convergence is by size.
type fnSummary struct {
	acquires map[types.Object]acqEntry
	block    *blockEntry
}

func (s *fnSummary) size() int {
	n := len(s.acquires)
	if s.block != nil {
		n++
	}
	return n
}

// sumReg holds summaries for every package analyzed so far in this process,
// keyed by the function's stable object key — the shim's fact surface for
// cross-package call-graph walks. Packages are analyzed in dependency
// order, so a callee's summary is always registered before its callers'
// packages run. Re-summarizing a package (same name in a different test
// fixture) overwrites cleanly.
var sumReg = struct {
	sync.Mutex
	byKey map[string]*fnSummary
	// byPkg memoizes the per-package summary map so lockorder and
	// lockedblock share one fixpoint per *types.Package instance.
	byPkg map[*types.Package]map[*types.Func]*fnSummary
}{byKey: map[string]*fnSummary{}, byPkg: map[*types.Package]map[*types.Func]*fnSummary{}}

// summarize computes (or returns memoized) transitive lock/blocking
// summaries for every function declared in the pass's package.
func summarize(pass *anlz.Pass) map[*types.Func]*fnSummary {
	sumReg.Lock()
	defer sumReg.Unlock()
	if m, ok := sumReg.byPkg[pass.Pkg]; ok {
		return m
	}

	decls := declMap(pass)
	var order []*types.Func
	for fn := range decls {
		order = append(order, fn)
	}
	sort.Slice(order, func(i, j int) bool { return decls[order[i]].Pos() < decls[order[j]].Pos() })

	sums := map[*types.Func]*fnSummary{}
	for _, fn := range order {
		sums[fn] = &fnSummary{acquires: map[types.Object]acqEntry{}}
	}

	// Fixpoint: each round re-walks every body, merging callee summaries.
	// Entries only ever get added, so stop when nothing grows; depth of the
	// longest local call chain bounds the round count.
	for round := 0; round <= len(order)+1; round++ {
		grew := false
		for _, fn := range order {
			before := sums[fn].size()
			ev := &summaryEvents{pass: pass, cur: sums[fn], local: sums}
			newWalker(pass, ev).funcBody(decls[fn].Body)
			if sums[fn].size() > before {
				grew = true
			}
		}
		if !grew {
			break
		}
	}

	for _, fn := range order {
		if k := anlz.ObjKey(fn); k != "" {
			sumReg.byKey[k] = sums[fn]
		}
	}
	sumReg.byPkg[pass.Pkg] = sums
	return sums
}

// declMap collects every function/method declared with a body in the
// package, keyed by its types object.
func declMap(pass *anlz.Pass) map[*types.Func]*ast.FuncDecl {
	m := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				m[fn] = fd
			}
		}
	}
	return m
}

// summaryEvents folds walker events into one function's summary.
type summaryEvents struct {
	pass  *anlz.Pass
	cur   *fnSummary
	local map[*types.Func]*fnSummary
}

func (e *summaryEvents) acquire(n ast.Node, lk lockID, held heldSet) {
	if _, ok := e.cur.acquires[lk.obj]; !ok {
		e.cur.acquires[lk.obj] = acqEntry{lk: lk, pos: n.Pos()}
	}
}

func (e *summaryEvents) blocking(n ast.Node, desc string, held heldSet) {
	if e.cur.block == nil {
		e.cur.block = &blockEntry{desc: desc, pos: n.Pos()}
	}
}

func (e *summaryEvents) call(n *ast.CallExpr, callee *types.Func, held heldSet) {
	if callee == nil {
		return
	}
	if e.pass.Dirs.ObjHas(callee, "nonblocking") {
		// Explicitly declared non-blocking; trust the annotation for the
		// blocking half, but lock effects still merge below.
	} else if e.pass.Dirs.ObjHas(callee, "blocking") {
		if e.cur.block == nil {
			e.cur.block = &blockEntry{
				desc: "call to " + callee.Name() + " (annotated //yasmin:blocking)",
				pos:  n.Pos(),
			}
		}
	} else if desc, ok := stdBlocking(callee); ok {
		if e.cur.block == nil {
			e.cur.block = &blockEntry{desc: desc, pos: n.Pos()}
		}
	}
	sum := lookupSummary(e.local, callee)
	if sum == nil {
		return
	}
	for obj, entry := range sum.acquires {
		if _, ok := e.cur.acquires[obj]; ok {
			continue
		}
		e.cur.acquires[obj] = acqEntry{
			lk:    entry.lk,
			chain: prependChain(callee.Name(), entry.chain),
			pos:   n.Pos(),
		}
	}
	if e.cur.block == nil && sum.block != nil && !e.pass.Dirs.ObjHas(callee, "nonblocking") {
		e.cur.block = &blockEntry{
			desc:  sum.block.desc,
			chain: prependChain(callee.Name(), sum.block.chain),
			pos:   n.Pos(),
		}
	}
}

// lookupSummary resolves a callee's summary: same-package by object
// identity, cross-package through the registry by stable key.
func lookupSummary(local map[*types.Func]*fnSummary, callee *types.Func) *fnSummary {
	if s, ok := local[callee]; ok {
		return s
	}
	k := anlz.ObjKey(callee)
	if k == "" {
		return nil
	}
	return sumReg.byKey[k]
}

func prependChain(name, chain string) string {
	if chain == "" {
		return name
	}
	return name + " → " + chain
}

// stdBlocking classifies well-known standard-library calls that block or
// perform I/O. The net is deliberately wide for os/net/syscall — code under
// a nosleep lock has no business near those packages; a false positive is
// escaped with //yasmin:nonblocking on the callee or restructured.
func stdBlocking(f *types.Func) (string, bool) {
	pkg := f.Pkg()
	if pkg == nil {
		return "", false
	}
	switch pkg.Path() {
	case "time":
		if f.Name() == "Sleep" {
			return "time.Sleep", true
		}
	case "sync":
		if f.Name() == "Wait" { // WaitGroup.Wait, Cond.Wait
			recv := "sync"
			if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
				recv = types.TypeString(sig.Recv().Type(), nil)
			}
			return recv + ".Wait", true
		}
	case "os", "net", "syscall", "os/exec", "io/fs", "net/http":
		return "call into " + pkg.Path() + " (I/O or syscall)", true
	case "fmt":
		switch f.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln", "Scan", "Scanf", "Scanln":
			return "fmt." + f.Name() + " (I/O)", true
		}
	}
	return "", false
}
