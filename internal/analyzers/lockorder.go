package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/yasmin-rt/yasmin/internal/analyzers/anlz"
)

// LockOrder enforces the runtime's declared lock hierarchy. Locks opt in
// with a //yasmin:lockrank N directive on their field or var declaration;
// acquisitions must then happen in strictly increasing rank order on every
// path, through any depth of calls. Concretely for this codebase:
// reconfigMu (rank 1) must never be acquired while App.mu (rank 2) is held,
// and any new, unranked mutex acquired under a ranked one is flagged until
// it declares its place in the hierarchy.
var LockOrder = &anlz.Analyzer{
	Name: "lockorder",
	Doc: "check that ranked locks (//yasmin:lockrank) are acquired in strictly " +
		"increasing rank order, including through transitive calls, and that no " +
		"unranked lock is acquired while a ranked lock is held",
	Run: runLockOrder,
}

func runLockOrder(pass *anlz.Pass) error {
	sums := summarize(pass)
	for _, decl := range declMap(pass) {
		ev := &lockOrderEvents{pass: pass, local: sums}
		newWalker(pass, ev).funcBody(decl.Body)
	}
	return nil
}

type lockOrderEvents struct {
	pass  *anlz.Pass
	local map[*types.Func]*fnSummary
}

func (e *lockOrderEvents) acquire(n ast.Node, lk lockID, held heldSet) {
	e.check(n.Pos(), lk, "", held)
}

func (e *lockOrderEvents) blocking(ast.Node, string, heldSet) {}

func (e *lockOrderEvents) call(n *ast.CallExpr, callee *types.Func, held heldSet) {
	if len(held) == 0 || callee == nil {
		return
	}
	sum := lookupSummary(e.local, callee)
	if sum == nil {
		return
	}
	var entries []acqEntry
	for _, entry := range sum.acquires {
		entries = append(entries, entry)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].lk.display < entries[j].lk.display })
	for _, entry := range entries {
		e.check(n.Pos(), entry.lk, prependChain(callee.Name(), entry.chain), held)
	}
}

// check validates one (possibly transitive) acquisition against the held
// set.
func (e *lockOrderEvents) check(pos token.Pos, lk lockID, chain string, held heldSet) {
	via := ""
	if chain != "" {
		via = " (via " + chain + ")"
	}
	if h, ok := held[lk.obj]; ok {
		e.pass.Reportf(pos, "lock %s acquired while already held%s: self-deadlock", h.display, via)
		return
	}
	var worst *lockID
	anyRanked := false
	for _, h := range held {
		h := h
		if !h.hasRank {
			continue
		}
		anyRanked = true
		if lk.hasRank && h.rank >= lk.rank && (worst == nil || h.rank > worst.rank) {
			worst = &h
		}
	}
	if lk.hasRank && worst != nil {
		e.pass.Reportf(pos,
			"lock order violation: %s (rank %d) acquired while holding %s (rank %d)%s; ranks must be strictly increasing",
			lk.display, lk.rank, worst.display, worst.rank, via)
		return
	}
	if !lk.hasRank && anyRanked {
		e.pass.Reportf(pos,
			"unranked lock %s acquired while holding ranked lock %s%s; declare //yasmin:lockrank on %s",
			lk.display, rankedNames(held), via, lk.display)
	}
}

func rankedNames(held heldSet) string {
	var names []string
	for _, h := range held {
		if h.hasRank {
			names = append(names, h.display)
		}
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
