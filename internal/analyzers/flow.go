package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"github.com/yasmin-rt/yasmin/internal/analyzers/anlz"
)

// lockID identifies one mutex as the analysis sees it: the declared field
// or variable object (identity across every access path), a display name,
// and its declared //yasmin:lockrank, if any.
type lockID struct {
	obj     types.Object
	display string
	rank    int
	hasRank bool
	noSleep bool // //yasmin:lockrank N nosleep — no blocking ops while held
}

// heldSet is the set of locks that may be held at a program point, keyed by
// lock object. Conservative: a lock held on any path into the point counts
// as held.
type heldSet map[types.Object]lockID

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

func (h heldSet) union(o heldSet) heldSet {
	c := h.clone()
	for k, v := range o {
		c[k] = v
	}
	return c
}

// events receives the walker's callbacks. held snapshots are only valid for
// the duration of the call.
type events interface {
	// acquire fires when a lock's Lock/RLock is called, before it joins held.
	acquire(n ast.Node, lk lockID, held heldSet)
	// call fires for every non-lock function call. callee is nil for
	// dynamic calls (closures, function values).
	call(n *ast.CallExpr, callee *types.Func, held heldSet)
	// blocking fires for AST-level blocking constructs: channel send,
	// channel receive, select without default.
	blocking(n ast.Node, desc string, held heldSet)
}

// walker performs a structured abstract interpretation of one function
// body, tracking the may-held lock set through branches, loops, switches
// and defers. Deferred Unlocks keep the lock held to function exit (which
// is exactly the runtime behaviour); function literals are not entered
// (they execute later, not at their definition point).
type walker struct {
	pass  *anlz.Pass
	on    events
	locks map[types.Object]lockID // resolution cache
}

func newWalker(pass *anlz.Pass, on events) *walker {
	return &walker{pass: pass, on: on, locks: map[types.Object]lockID{}}
}

// flowOut is the dataflow result of one statement (or block).
type flowOut struct {
	out        heldSet   // fall-through exit state
	terminated bool      // no fall-through (all paths return/panic)
	breaks     []heldSet // states flowing to the innermost breakable stmt
	continues  []heldSet // states flowing to the innermost loop head
}

func (w *walker) funcBody(body *ast.BlockStmt) {
	w.block(body, heldSet{})
}

func (w *walker) block(b *ast.BlockStmt, held heldSet) flowOut {
	cur := held.clone()
	res := flowOut{}
	for _, s := range b.List {
		r := w.stmt(s, cur)
		res.breaks = append(res.breaks, r.breaks...)
		res.continues = append(res.continues, r.continues...)
		if r.terminated {
			res.terminated = true
			return res
		}
		cur = r.out
	}
	res.out = cur
	return res
}

func (w *walker) stmt(s ast.Stmt, held heldSet) flowOut {
	switch st := s.(type) {
	case nil:
		return flowOut{out: held}
	case *ast.BlockStmt:
		return w.block(st, held)
	case *ast.ExprStmt:
		return flowOut{out: w.expr(st.X, held)}
	case *ast.AssignStmt:
		cur := held
		for _, e := range st.Rhs {
			cur = w.expr(e, cur)
		}
		for _, e := range st.Lhs {
			cur = w.expr(e, cur)
		}
		return flowOut{out: cur}
	case *ast.DeclStmt:
		cur := held
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						cur = w.expr(e, cur)
					}
				}
			}
		}
		return flowOut{out: cur}
	case *ast.IncDecStmt:
		return flowOut{out: w.expr(st.X, held)}
	case *ast.SendStmt:
		cur := w.expr(st.Chan, held)
		cur = w.expr(st.Value, cur)
		w.on.blocking(st, "channel send", cur)
		return flowOut{out: cur}
	case *ast.GoStmt:
		// Argument expressions evaluate here; the goroutine itself runs
		// without our locks.
		cur := held
		for _, a := range st.Call.Args {
			cur = w.expr(a, cur)
		}
		return flowOut{out: cur}
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held for the remainder of the
		// function — model it by simply not releasing. A deferred Lock is
		// nonsensical; other deferred calls are reported as calls (they
		// run at return, when held-on-entry locks may still be held).
		cur := held
		for _, a := range st.Call.Args {
			cur = w.expr(a, cur)
		}
		if _, _, isRelease := w.lockCall(st.Call); isRelease {
			return flowOut{out: cur}
		}
		w.on.call(st.Call, w.staticCallee(st.Call), cur)
		return flowOut{out: cur}
	case *ast.ReturnStmt:
		cur := held
		for _, e := range st.Results {
			cur = w.expr(e, cur)
		}
		return flowOut{terminated: true}
	case *ast.BranchStmt:
		switch st.Tok {
		case token.BREAK:
			return flowOut{terminated: true, breaks: []heldSet{held.clone()}}
		case token.CONTINUE:
			return flowOut{terminated: true, continues: []heldSet{held.clone()}}
		default: // goto, fallthrough: treat as fall-through (rare; conservative enough)
			return flowOut{out: held}
		}
	case *ast.IfStmt:
		cur := held
		if st.Init != nil {
			cur = w.stmt(st.Init, cur).out
		}
		cur = w.expr(st.Cond, cur)
		thenR := w.stmt(st.Body, cur)
		var elseR flowOut
		if st.Else != nil {
			elseR = w.stmt(st.Else, cur)
		} else {
			elseR = flowOut{out: cur.clone()}
		}
		return mergeBranches(thenR, elseR)
	case *ast.ForStmt:
		cur := held
		if st.Init != nil {
			cur = w.stmt(st.Init, cur).out
		}
		return w.loop(cur, st.Cond != nil, func(entry heldSet) flowOut {
			c := entry
			if st.Cond != nil {
				c = w.expr(st.Cond, c)
			}
			r := w.stmt(st.Body, c)
			if !r.terminated && st.Post != nil {
				r.out = w.stmt(st.Post, r.out).out
			}
			return r
		})
	case *ast.RangeStmt:
		cur := w.expr(st.X, held)
		return w.loop(cur, true, func(entry heldSet) flowOut {
			return w.stmt(st.Body, entry)
		})
	case *ast.SwitchStmt:
		cur := held
		if st.Init != nil {
			cur = w.stmt(st.Init, cur).out
		}
		if st.Tag != nil {
			cur = w.expr(st.Tag, cur)
		}
		return w.switchBody(st.Body, cur)
	case *ast.TypeSwitchStmt:
		cur := held
		if st.Init != nil {
			cur = w.stmt(st.Init, cur).out
		}
		cur = w.stmt(st.Assign, cur).out
		return w.switchBody(st.Body, cur)
	case *ast.SelectStmt:
		if !selectHasDefault(st) {
			w.on.blocking(st, "select without default", held)
		}
		// Each comm clause: the comm op itself, then the body.
		out := flowOut{}
		any := false
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			cur := held.clone()
			if cc.Comm != nil {
				cur = w.commStmt(cc.Comm, cur)
			}
			r := w.stmts(cc.Body, cur)
			out.breaks = append(out.breaks, r.breaks...)
			out.continues = append(out.continues, r.continues...)
			if !r.terminated {
				if out.out == nil {
					out.out = r.out
				} else {
					out.out = out.out.union(r.out)
				}
				any = true
			}
		}
		if !any && len(st.Body.List) > 0 {
			out.terminated = true
		}
		if out.out == nil {
			out.out = held.clone()
		}
		return out
	case *ast.LabeledStmt:
		return w.stmt(st.Stmt, held)
	default:
		return flowOut{out: held}
	}
}

// commStmt walks a select communication op without re-reporting it as a
// blocking construct (the select itself already was, when it had no
// default).
func (w *walker) commStmt(s ast.Stmt, held heldSet) heldSet {
	switch st := s.(type) {
	case *ast.SendStmt:
		cur := w.exprNoBlock(st.Chan, held)
		return w.exprNoBlock(st.Value, cur)
	case *ast.AssignStmt:
		cur := held
		for _, e := range st.Rhs {
			cur = w.exprNoBlock(e, cur)
		}
		return cur
	case *ast.ExprStmt:
		return w.exprNoBlock(st.X, held)
	}
	return held
}

func (w *walker) stmts(list []ast.Stmt, held heldSet) flowOut {
	cur := held
	res := flowOut{}
	for _, s := range list {
		r := w.stmt(s, cur)
		res.breaks = append(res.breaks, r.breaks...)
		res.continues = append(res.continues, r.continues...)
		if r.terminated {
			res.terminated = true
			return res
		}
		cur = r.out
	}
	res.out = cur
	return res
}

// switchBody walks case clauses; unlabeled breaks inside them exit the
// switch, so they merge into the fall-through state instead of escaping to
// an enclosing loop.
func (w *walker) switchBody(body *ast.BlockStmt, held heldSet) flowOut {
	out := flowOut{}
	var exits []heldSet
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		cur := held.clone()
		for _, e := range cc.List {
			cur = w.expr(e, cur)
		}
		if cc.List == nil {
			hasDefault = true
		}
		r := w.stmts(cc.Body, cur)
		exits = append(exits, r.breaks...) // break exits the switch
		out.continues = append(out.continues, r.continues...)
		if !r.terminated {
			exits = append(exits, r.out)
		}
	}
	if !hasDefault {
		exits = append(exits, held.clone()) // no case matched
	}
	if len(exits) == 0 {
		return flowOut{terminated: true, continues: out.continues}
	}
	m := exits[0]
	for _, e := range exits[1:] {
		m = m.union(e)
	}
	out.out = m
	return out
}

// loop runs the body analysis twice (the second pass feeds back the first
// pass's fall-through and continue states) so a lock acquired in iteration
// N is seen held at the top of iteration N+1. Exit = body breaks plus — for
// loops with a condition — every state that can reach the condition test.
func (w *walker) loop(entry heldSet, conditional bool, body func(heldSet) flowOut) flowOut {
	r1 := body(entry.clone())
	second := entry.clone()
	if !r1.terminated {
		second = second.union(r1.out)
	}
	for _, c := range r1.continues {
		second = second.union(c)
	}
	r2 := body(second)

	var exits []heldSet
	exits = append(exits, r1.breaks...)
	exits = append(exits, r2.breaks...)
	if conditional {
		exits = append(exits, entry.clone())
		if !r2.terminated {
			exits = append(exits, r2.out)
		}
		for _, c := range r2.continues {
			exits = append(exits, c)
		}
	}
	if len(exits) == 0 {
		return flowOut{terminated: true}
	}
	m := exits[0]
	for _, e := range exits[1:] {
		m = m.union(e)
	}
	return flowOut{out: m}
}

func mergeBranches(a, b flowOut) flowOut {
	res := flowOut{
		breaks:    append(append([]heldSet{}, a.breaks...), b.breaks...),
		continues: append(append([]heldSet{}, a.continues...), b.continues...),
	}
	switch {
	case a.terminated && b.terminated:
		res.terminated = true
	case a.terminated:
		res.out = b.out
	case b.terminated:
		res.out = a.out
	default:
		res.out = a.out.union(b.out)
	}
	return res
}

func selectHasDefault(st *ast.SelectStmt) bool {
	for _, c := range st.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// expr walks an expression, firing events for calls and channel receives,
// and returns the held set after evaluation (lock calls mutate it).
func (w *walker) expr(e ast.Expr, held heldSet) heldSet {
	return w.exprInner(e, held, true)
}

func (w *walker) exprNoBlock(e ast.Expr, held heldSet) heldSet {
	return w.exprInner(e, held, false)
}

func (w *walker) exprInner(e ast.Expr, held heldSet, reportBlocking bool) heldSet {
	switch ex := e.(type) {
	case nil:
		return held
	case *ast.CallExpr:
		cur := held
		// Receiver/operand expressions inside Fun evaluate first; skip
		// descending into plain identifiers and selectors (no calls there)
		// except when Fun itself nests calls, e.g. f().g().
		if sel, ok := ex.Fun.(*ast.SelectorExpr); ok {
			cur = w.exprInner(sel.X, cur, reportBlocking)
		}
		for _, a := range ex.Args {
			cur = w.exprInner(a, cur, reportBlocking)
		}
		if lk, isAcq, isRel := w.lockCall(ex); isAcq {
			w.on.acquire(ex, lk, cur)
			cur = cur.clone()
			cur[lk.obj] = lk
			return cur
		} else if isRel {
			cur = cur.clone()
			delete(cur, lk.obj)
			return cur
		}
		w.on.call(ex, w.staticCallee(ex), cur)
		return cur
	case *ast.UnaryExpr:
		cur := w.exprInner(ex.X, held, reportBlocking)
		if ex.Op == token.ARROW && reportBlocking {
			w.on.blocking(ex, "channel receive", cur)
		}
		return cur
	case *ast.BinaryExpr:
		cur := w.exprInner(ex.X, held, reportBlocking)
		return w.exprInner(ex.Y, cur, reportBlocking)
	case *ast.ParenExpr:
		return w.exprInner(ex.X, held, reportBlocking)
	case *ast.SelectorExpr:
		return w.exprInner(ex.X, held, reportBlocking)
	case *ast.IndexExpr:
		cur := w.exprInner(ex.X, held, reportBlocking)
		return w.exprInner(ex.Index, cur, reportBlocking)
	case *ast.SliceExpr:
		cur := w.exprInner(ex.X, held, reportBlocking)
		cur = w.exprInner(ex.Low, cur, reportBlocking)
		cur = w.exprInner(ex.High, cur, reportBlocking)
		return w.exprInner(ex.Max, cur, reportBlocking)
	case *ast.StarExpr:
		return w.exprInner(ex.X, held, reportBlocking)
	case *ast.TypeAssertExpr:
		return w.exprInner(ex.X, held, reportBlocking)
	case *ast.CompositeLit:
		cur := held
		for _, el := range ex.Elts {
			cur = w.exprInner(el, cur, reportBlocking)
		}
		return cur
	case *ast.KeyValueExpr:
		cur := w.exprInner(ex.Key, held, reportBlocking)
		return w.exprInner(ex.Value, cur, reportBlocking)
	case *ast.FuncLit:
		// Not executed here; closures are outside the walk (conservative
		// gap shared with the real x/tools-based checkers of this shape).
		return held
	default:
		return held
	}
}

// staticCallee resolves a call to its declared *types.Func, or nil for
// dynamic calls and builtins/conversions.
func (w *walker) staticCallee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := w.pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := w.pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// lockCall classifies a call as a lock acquisition (Lock/RLock) or release
// (Unlock/RUnlock) on a trackable mutex value: the receiver type must also
// carry the counterpart method, and the receiver expression must resolve to
// a field or variable object.
func (w *walker) lockCall(call *ast.CallExpr) (lk lockID, acquire, release bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockID{}, false, false
	}
	var counterpart string
	switch sel.Sel.Name {
	case "Lock":
		counterpart, acquire = "Unlock", true
	case "RLock":
		counterpart, acquire = "RUnlock", true
	case "Unlock":
		counterpart, release = "Lock", true
	case "RUnlock":
		counterpart, release = "RLock", true
	default:
		return lockID{}, false, false
	}
	callee, ok := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || callee.Type().(*types.Signature).Recv() == nil {
		return lockID{}, false, false
	}
	recvT := w.pass.TypesInfo.Types[sel.X].Type
	if recvT == nil {
		return lockID{}, false, false
	}
	if obj, _, _ := types.LookupFieldOrMethod(recvT, true, callee.Pkg(), counterpart); obj == nil {
		return lockID{}, false, false
	}
	obj, owner := w.lockTarget(sel.X)
	if obj == nil {
		return lockID{}, false, false
	}
	if cached, ok := w.locks[obj]; ok {
		return cached, acquire, release
	}
	lk = lockID{obj: obj, display: obj.Name()}
	var rankDir anlz.Directive
	var hasDir bool
	if owner != "" {
		lk.display = owner + "." + obj.Name()
		rankDir, hasDir = w.pass.Dirs.FieldDirective(obj.Pkg().Path(), owner, obj.Name(), "lockrank")
	} else if k := anlz.ObjKey(obj); k != "" {
		rankDir, hasDir = w.pass.Dirs.KeyDirective(k, obj.Pkg().Path(), "lockrank")
	}
	if hasDir && len(rankDir.Args) > 0 {
		if n, err := strconv.Atoi(rankDir.Args[0]); err == nil {
			lk.rank = n
			lk.hasRank = true
		}
		for _, arg := range rankDir.Args[1:] {
			if arg == "nosleep" {
				lk.noSleep = true
			}
		}
	}
	w.locks[obj] = lk
	return lk, acquire, release
}

// lockTarget resolves the lock expression to its declaring object and, for
// struct fields, the owning type's name (for display and rank lookup).
func (w *walker) lockTarget(e ast.Expr) (types.Object, string) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := w.pass.TypesInfo.Uses[x]
		if obj == nil {
			obj = w.pass.TypesInfo.Defs[x]
		}
		if v, ok := obj.(*types.Var); ok {
			return v, ""
		}
	case *ast.SelectorExpr:
		obj := w.pass.TypesInfo.Uses[x.Sel]
		v, ok := obj.(*types.Var)
		if !ok || !v.IsField() {
			return nil, ""
		}
		owner := ""
		if selInfo, ok := w.pass.TypesInfo.Selections[x]; ok {
			owner = namedTypeName(selInfo.Recv())
		}
		return v, owner
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return w.lockTarget(x.X)
		}
	}
	return nil, ""
}

func namedTypeName(t types.Type) string {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt.Obj().Name()
		default:
			return ""
		}
	}
}

func posOf(pass *anlz.Pass, pos token.Pos) string {
	p := pass.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}
