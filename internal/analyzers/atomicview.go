package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/yasmin-rt/yasmin/internal/analyzers/anlz"
)

// AtomicView protects the lock-free snapshot discipline around topicView
// and friends. Three rules:
//
//  1. struct fields of sync/atomic types (atomic.Pointer[T], atomic.Uint32,
//     atomic.Value, …) may only appear as the receiver of their own method
//     calls (Load/Store/Swap/CompareAndSwap/Add/…) — never copied, plainly
//     assigned, or address-taken;
//  2. fields that are passed as &x.f to the legacy atomic.LoadUint32-style
//     functions anywhere in the package must be accessed that way
//     everywhere — a single plain read or write next to atomic uses is a
//     data race;
//  3. types annotated //yasmin:immutable (the published topicView snapshot)
//     must never have a field written after construction: build a new value
//     with a composite literal and publish it via its atomic pointer.
var AtomicView = &anlz.Analyzer{
	Name: "atomicview",
	Doc: "check that atomic fields are only touched through atomic " +
		"operations and //yasmin:immutable snapshots are never mutated",
	Run: runAtomicView,
}

func runAtomicView(pass *anlz.Pass) error {
	ok := map[ast.Node]bool{}            // selector uses proven legal
	legacy := map[*types.Var]token.Pos{} // fields used via atomic.XxxUint32(&x.f, …)

	// Pass 1: mark legal uses — method-call receivers on atomic-typed
	// fields, and &x.f arguments to sync/atomic package functions (which
	// also enroll x.f in the must-always-be-atomic set).
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
				if recv, isRecvSel := ast.Unparen(sel.X).(*ast.SelectorExpr); isRecvSel {
					if atomicField(pass, recv) != nil {
						ok[recv] = true // x.f.Load() etc.
					}
				}
				if callee, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func); isFn &&
					callee.Pkg() != nil && callee.Pkg().Path() == "sync/atomic" &&
					callee.Type().(*types.Signature).Recv() == nil {
					for _, arg := range call.Args {
						if ue, isAddr := ast.Unparen(arg).(*ast.UnaryExpr); isAddr && ue.Op == token.AND {
							if fs, isFieldSel := ast.Unparen(ue.X).(*ast.SelectorExpr); isFieldSel {
								if v, isVar := pass.TypesInfo.Uses[fs.Sel].(*types.Var); isVar && v.IsField() {
									if _, seen := legacy[v]; !seen {
										legacy[v] = fs.Pos()
									}
									ok[fs] = true
								}
							}
						}
					}
				}
			}
			return true
		})
	}

	immutable := func(t types.Type) (string, bool) {
		n, okN := derefNamed(t)
		if !okN {
			return "", false
		}
		if _, has := pass.Dirs.ObjDirective(n.Obj(), "immutable"); has {
			return n.Obj().Name(), true
		}
		return "", false
	}

	// Pass 2: report violations.
	for _, f := range pass.Files {
		var writes = map[ast.Node]bool{} // LHS selector nodes of assignments
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					if sel, isSel := ast.Unparen(lhs).(*ast.SelectorExpr); isSel {
						writes[sel] = true
						if name, isImm := immutable(pass.TypesInfo.Types[sel.X].Type); isImm {
							pass.Reportf(x.Pos(), "write to field %s of //yasmin:immutable type %s; build a fresh snapshot and republish it instead", sel.Sel.Name, name)
						}
					}
				}
			case *ast.IncDecStmt:
				if sel, isSel := ast.Unparen(x.X).(*ast.SelectorExpr); isSel {
					writes[sel] = true
					if name, isImm := immutable(pass.TypesInfo.Types[sel.X].Type); isImm {
						pass.Reportf(x.Pos(), "write to field %s of //yasmin:immutable type %s; build a fresh snapshot and republish it instead", sel.Sel.Name, name)
					}
				}
			case *ast.SelectorExpr:
				if ok[x] {
					return true
				}
				if fld := atomicField(pass, x); fld != nil {
					pass.Reportf(x.Pos(), "atomic field %s used outside its atomic methods (Load/Store/…); plain access defeats the snapshot discipline", fld.Name())
					return true
				}
				if v, isVar := pass.TypesInfo.Uses[x.Sel].(*types.Var); isVar && v.IsField() {
					if first, enrolled := legacy[v]; enrolled {
						kind := "read"
						if writes[x] {
							kind = "write"
						}
						pass.Reportf(x.Pos(), "plain %s of field %s, which is accessed with sync/atomic at %s; every access must be atomic", kind, v.Name(), posOf(pass, first))
					}
				}
			}
			return true
		})
	}
	return nil
}

// atomicField resolves sel to a struct field whose type is declared in
// sync/atomic, or nil.
func atomicField(pass *anlz.Pass, sel *ast.SelectorExpr) *types.Var {
	v, isVar := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !isVar || !v.IsField() {
		return nil
	}
	if n, okN := derefNamed(v.Type()); okN {
		if p := n.Obj().Pkg(); p != nil && p.Path() == "sync/atomic" {
			return v
		}
	}
	return nil
}

func derefNamed(t types.Type) (*types.Named, bool) {
	if t == nil {
		return nil, false
	}
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt, true
		case *types.Alias:
			t = types.Unalias(tt)
		default:
			return nil, false
		}
	}
}
