package analyzers

import (
	"go/ast"
	"go/types"

	"github.com/yasmin-rt/yasmin/internal/analyzers/anlz"
)

// Determinism enforces the SimEnv reproducibility contract: code tagged
// //yasmin:deterministic (file scope; `//yasmin:deterministic package`
// extends to the whole package) must produce identical behaviour run to
// run. That bans the wall clock (time.Now/Since/Until, timers), the global
// math/rand source (seeded *rand.Rand instances are fine), crypto/rand,
// and ranging over maps — Go randomizes iteration order, so any map range
// whose effect reaches output diverges between runs. Escapes:
// //yasmin:wallclock on a line that deliberately measures host time,
// //yasmin:orderinvariant on a map range whose body is provably
// order-insensitive.
var Determinism = &anlz.Analyzer{
	Name: "determinism",
	Doc: "check that //yasmin:deterministic files avoid wall-clock time, " +
		"global math/rand, crypto/rand, and map iteration",
	Run: runDeterminism,
}

func runDeterminism(pass *anlz.Pass) error {
	// A `deterministic package` directive in any file covers them all.
	pkgWide := false
	for _, f := range pass.Files {
		for _, d := range pass.Dirs.FileDirectives(pass.Fset, f.Pos(), "deterministic") {
			if len(d.Args) > 0 && d.Args[0] == "package" {
				pkgWide = true
			}
		}
	}
	for _, f := range pass.Files {
		if !pkgWide && !pass.Dirs.FileHas(pass.Fset, f.Pos(), "deterministic") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				callee := staticCalleeOf(pass, x)
				if callee == nil || callee.Pkg() == nil {
					return true
				}
				if msg := nondeterministicCall(callee); msg != "" &&
					!pass.Dirs.LineHas(pass.Fset, x.Pos(), "wallclock") {
					pass.Reportf(x.Pos(), "%s in deterministic scope; use the injected env clock/seeded source or annotate //yasmin:wallclock", msg)
				}
			case *ast.RangeStmt:
				t := pass.TypesInfo.Types[x.X].Type
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); isMap &&
					!pass.Dirs.LineHas(pass.Fset, x.Pos(), "orderinvariant") {
					pass.Reportf(x.Pos(), "map iteration order is randomized; sort keys first or annotate //yasmin:orderinvariant in deterministic scope")
				}
			}
			return true
		})
	}
	return nil
}

// nondeterministicCall classifies callees whose result differs run to run.
func nondeterministicCall(f *types.Func) string {
	sig, _ := f.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil
	switch f.Pkg().Path() {
	case "time":
		if isMethod {
			return "" // arithmetic on time values is fine
		}
		switch f.Name() {
		case "Now", "Since", "Until", "After", "Tick", "NewTimer", "NewTicker", "AfterFunc":
			return "wall-clock time." + f.Name()
		}
	case "math/rand", "math/rand/v2":
		// Package-level sampling funcs draw from the shared global source.
		// The constructors are the blessed escape: rand.New(rand.NewSource(seed))
		// builds the private seeded generator deterministic code should use.
		if !isMethod {
			switch f.Name() {
			case "New", "NewSource", "NewPCG", "NewChaCha8", "NewZipf":
				return ""
			}
			return "global " + f.Pkg().Path() + "." + f.Name()
		}
	case "crypto/rand":
		return "crypto/rand." + f.Name()
	}
	return ""
}
