// Package analyzers holds yasmin-vet's project-specific invariant checkers.
// Each analyzer mechanically enforces one convention that the runtime's
// correctness rests on (docs/ARCHITECTURE.md, "Invariants & enforcement"):
// the reconfigMu-outside-App.mu lock order, the no-blocking-under-App.mu
// rule, the zero-allocation hot paths, SimEnv determinism, and the atomic
// snapshot discipline. Code opts in and communicates exceptions through
// //yasmin: directives; see each analyzer's Doc for its vocabulary.
package analyzers

import "github.com/yasmin-rt/yasmin/internal/analyzers/anlz"

// All is the yasmin-vet suite in the order diagnostics are grouped.
var All = []*anlz.Analyzer{
	LockOrder,
	LockedBlock,
	NoAlloc,
	Determinism,
	AtomicView,
}
