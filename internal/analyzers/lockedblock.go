package analyzers

import (
	"go/ast"
	"go/types"
	"sort"

	"github.com/yasmin-rt/yasmin/internal/analyzers/anlz"
)

// LockedBlock forbids blocking operations on any path that holds a lock
// declared `//yasmin:lockrank N nosleep` (App.mu). Blocking means: channel
// send/receive, select without default, time.Sleep, WaitGroup/Cond Wait,
// calls into os/net/syscall, fmt printing, and any call annotated
// //yasmin:blocking (the rt.Ctx park/sleep/compute surface) — found at any
// depth through the call graph. //yasmin:nonblocking on a callee vouches
// for it and stops the walk.
var LockedBlock = &anlz.Analyzer{
	Name: "lockedblock",
	Doc: "check that no blocking operation (channel ops, sleeps, waits, I/O, " +
		"//yasmin:blocking calls) is reachable while a `lockrank … nosleep` " +
		"mutex such as App.mu is held",
	Run: runLockedBlock,
}

func runLockedBlock(pass *anlz.Pass) error {
	sums := summarize(pass)
	for _, decl := range declMap(pass) {
		ev := &lockedBlockEvents{pass: pass, local: sums}
		newWalker(pass, ev).funcBody(decl.Body)
	}
	return nil
}

type lockedBlockEvents struct {
	pass  *anlz.Pass
	local map[*types.Func]*fnSummary
}

func (e *lockedBlockEvents) acquire(ast.Node, lockID, heldSet) {}

// noSleepHeld returns the display names of held nosleep locks.
func noSleepHeld(held heldSet) []string {
	var names []string
	for _, h := range held {
		if h.noSleep {
			names = append(names, h.display)
		}
	}
	sort.Strings(names)
	return names
}

func (e *lockedBlockEvents) blocking(n ast.Node, desc string, held heldSet) {
	if names := noSleepHeld(held); len(names) > 0 {
		e.pass.Reportf(n.Pos(), "blocking operation (%s) while holding %s", desc, names[0])
	}
}

func (e *lockedBlockEvents) call(n *ast.CallExpr, callee *types.Func, held heldSet) {
	names := noSleepHeld(held)
	if len(names) == 0 || callee == nil {
		return
	}
	if e.pass.Dirs.ObjHas(callee, "nonblocking") {
		return
	}
	if e.pass.Dirs.ObjHas(callee, "blocking") {
		e.pass.Reportf(n.Pos(), "call to %s (annotated //yasmin:blocking) while holding %s",
			callee.Name(), names[0])
		return
	}
	if desc, ok := stdBlocking(callee); ok {
		e.pass.Reportf(n.Pos(), "blocking operation (%s) while holding %s", desc, names[0])
		return
	}
	if sum := lookupSummary(e.local, callee); sum != nil && sum.block != nil {
		e.pass.Reportf(n.Pos(), "call to %s blocks (%s%s) while holding %s",
			callee.Name(), sum.block.desc, chainSuffix(sum.block.chain), names[0])
	}
}

func chainSuffix(chain string) string {
	if chain == "" {
		return ""
	}
	return " via " + chain
}
