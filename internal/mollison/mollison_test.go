package mollison

import (
	"math/rand"
	"testing"
	"time"

	"github.com/yasmin-rt/yasmin/internal/platform"
	"github.com/yasmin-rt/yasmin/internal/taskset"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func simpleSet(n int, period, wcet time.Duration) *taskset.Set {
	s := &taskset.Set{}
	for i := 0; i < n; i++ {
		s.Tasks = append(s.Tasks, taskset.Task{
			ID: i, Name: "t" + string(rune('a'+i)), Period: period, Deadline: period, WCET: wcet,
		})
	}
	return s
}

func TestRunExecutesJobs(t *testing.T) {
	pl := platform.OdroidXU4()
	set := simpleSet(4, ms(10), ms(2))
	res, err := Run(1, pl, set, Config{Workers: 2, WorkerCores: []int{4, 5}, Horizon: ms(100)})
	if err != nil {
		t.Fatal(err)
	}
	// 4 tasks x ~10 jobs on 2 cores with U=0.8: all should run.
	jobs := res.Recorder.TotalJobs()
	if jobs < 30 {
		t.Errorf("jobs = %d, want ~40", jobs)
	}
	if res.Overheads.Total().Count() == 0 {
		t.Error("no overhead samples")
	}
}

func TestConfigValidation(t *testing.T) {
	pl := platform.Generic(2)
	set := simpleSet(1, ms(10), ms(1))
	if _, err := Run(1, pl, set, Config{Workers: 0, Horizon: ms(10)}); err == nil {
		t.Error("want worker-count error")
	}
	if _, err := Run(1, pl, set, Config{Workers: 1, Horizon: 0}); err == nil {
		t.Error("want horizon error")
	}
	if _, err := Run(1, pl, set, Config{Workers: 1, WorkerCores: []int{0, 1}, Horizon: ms(1)}); err == nil {
		t.Error("want core-mismatch error")
	}
	bad := &taskset.Set{Tasks: []taskset.Task{{ID: 0, Period: 0, Deadline: ms(1), WCET: ms(1)}}}
	if _, err := Run(1, pl, bad, Config{Workers: 1, Horizon: ms(1)}); err == nil {
		t.Error("want invalid-set error")
	}
}

func TestLockContentionGrowsWithWorkers(t *testing.T) {
	pl := platform.OdroidXU4()
	rng := rand.New(rand.NewSource(5))
	set, err := taskset.Generate(rng, taskset.DRSConfig{
		N: 40, TotalUtilization: 1.5,
		PeriodMin: ms(10), PeriodMax: ms(100),
	})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(2, pl, set, Config{Workers: 2, WorkerCores: []int{4, 5}, Horizon: ms(500)})
	if err != nil {
		t.Fatal(err)
	}
	r3, err := Run(2, pl, set, Config{Workers: 3, WorkerCores: []int{4, 5, 6}, Horizon: ms(500)})
	if err != nil {
		t.Fatal(err)
	}
	if r3.LockSpins <= r2.LockSpins {
		t.Errorf("lock spins: 3 workers %d <= 2 workers %d; contention should grow",
			r3.LockSpins, r2.LockSpins)
	}
}

func TestOverheadGrowsWithTaskCount(t *testing.T) {
	pl := platform.OdroidXU4()
	rng := rand.New(rand.NewSource(9))
	mean := func(n int) time.Duration {
		set, err := taskset.Generate(rng, taskset.DRSConfig{
			N: n, TotalUtilization: 1.0,
			PeriodMin: ms(10), PeriodMax: ms(100),
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(3, pl, set, Config{Workers: 2, WorkerCores: []int{4, 5}, Horizon: ms(500)})
		if err != nil {
			t.Fatal(err)
		}
		return res.Overheads.Kind(1).Mean() // OverheadSchedule
	}
	small, large := mean(20), mean(120)
	if large <= small {
		t.Errorf("schedule overhead: 120 tasks %v <= 20 tasks %v; should grow", large, small)
	}
}

func TestDeterministic(t *testing.T) {
	pl := platform.OdroidXU4()
	set := simpleSet(6, ms(20), ms(3))
	run := func() (int64, time.Duration) {
		res, err := Run(7, pl, set, Config{Workers: 2, WorkerCores: []int{4, 5}, Horizon: ms(300)})
		if err != nil {
			t.Fatal(err)
		}
		return res.Recorder.TotalJobs(), res.Overheads.Total().Max()
	}
	j1, o1 := run()
	j2, o2 := run()
	if j1 != j2 || o1 != o2 {
		t.Errorf("non-deterministic: (%d,%v) vs (%d,%v)", j1, o1, j2, o2)
	}
}
