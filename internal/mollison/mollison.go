// Package mollison reimplements the userspace G-EDF scheduling library of
// Mollison & Anderson ("Bringing theory into practice: A userspace library
// for multicore real-time scheduling", RTAS 2013) — the baseline of the
// paper's Fig. 2 overhead comparison.
//
// Structural differences from YASMIN, all of which show up in the measured
// overhead:
//
//   - No dedicated scheduler thread: every worker self-schedules, so all
//     scheduling work happens inside the workers' ready-queue critical
//     sections.
//   - One global ready queue + release queue guarded by a test-and-set
//     spinlock: contention grows with both worker count and task count.
//   - Job migration is allowed (any worker runs any ready job).
//   - Dynamic allocation on the scheduling path (the paper criticises
//     this): each release pays a malloc with jittery cost.
//
// The implementation runs on the same deterministic simulation substrate as
// YASMIN, with the same platform cost model, so Fig. 2 compares structures,
// not constants.
package mollison

import (
	"fmt"
	"time"

	"github.com/yasmin-rt/yasmin/internal/platform"
	"github.com/yasmin-rt/yasmin/internal/sim"
	"github.com/yasmin-rt/yasmin/internal/taskset"
	"github.com/yasmin-rt/yasmin/internal/trace"
)

// Config parameterises a library instance.
type Config struct {
	// Workers is the number of worker threads; each is pinned to a core.
	Workers int
	// WorkerCores pins workers to platform cores (defaults to 0..Workers-1).
	WorkerCores []int
	// Horizon is the simulated run length.
	Horizon time.Duration
}

// Result carries the measurements of one run.
type Result struct {
	Overheads *trace.Overheads
	Recorder  *trace.Recorder
	// LockSpins counts failed test-and-set probes on the global lock.
	LockSpins uint64
}

// releaseEntry is a future job release (the library's release queue).
type releaseEntry struct {
	task    int
	release time.Duration
}

// readyJob is a released job ordered by absolute deadline (EDF).
type readyJob struct {
	task    int
	release time.Duration
	absDL   time.Duration
	seq     int64
}

// state is the shared scheduling state guarded by the global TAS lock.
type state struct {
	lock     sim.SpinMutex
	ready    []readyJob // deadline-ordered heap
	releases []releaseEntry
	seq      int64
	set      *taskset.Set
	ovh      *trace.Overheads
	rec      *trace.Recorder
	costs    *platform.CostModel
	stop     bool
}

// Run executes the task set under the library for the configured horizon
// and returns the overhead measurements.
func Run(seed int64, pl *platform.Platform, set *taskset.Set, cfg Config) (*Result, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("mollison: need at least one worker")
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("mollison: need a positive horizon")
	}
	if err := set.Validate(); err != nil {
		return nil, fmt.Errorf("mollison: %w", err)
	}
	cores := cfg.WorkerCores
	if cores == nil {
		cores = make([]int, cfg.Workers)
		for i := range cores {
			cores[i] = i
		}
	}
	if len(cores) != cfg.Workers {
		return nil, fmt.Errorf("mollison: %d cores for %d workers", len(cores), cfg.Workers)
	}

	eng := sim.NewEngine(seed)
	st := &state{
		ovh:   trace.NewOverheads(),
		rec:   trace.NewRecorder(false),
		set:   set,
		costs: &pl.Costs,
	}
	st.lock.RetryCost = pl.Costs.SpinRetry
	st.lock.AcquireCost = pl.Costs.LockUncontended
	// Pre-fill the release queue with each task's first job.
	for i := range set.Tasks {
		st.releases = append(st.releases, releaseEntry{task: i, release: set.Tasks[i].Offset})
	}
	eng.At(sim.Time(cfg.Horizon), func() { st.stop = true })

	for w := 0; w < cfg.Workers; w++ {
		coreID := cores[w]
		speed := 1.0
		if c, err := pl.Core(coreID); err == nil {
			speed = c.Speed
		}
		eng.Spawn(fmt.Sprintf("ma-worker-%d", w), func(p *sim.Proc) {
			st.workerLoop(p, coreID, speed)
		})
	}
	if err := eng.Run(sim.Time(cfg.Horizon + 10*time.Second)); err != nil {
		return nil, err
	}
	spins, _ := st.lock.Stats()
	return &Result{Overheads: st.ovh, Recorder: st.rec, LockSpins: spins}, nil
}

// workerLoop self-schedules: lock, process due releases, pop the earliest
// deadline job, unlock, execute; when idle, sleep until the next release.
// Every pass through the critical section is one overhead sample — the
// quantity Fig. 2 plots.
func (st *state) workerLoop(p *sim.Proc, coreID int, speed float64) {
	for {
		if st.stop {
			return
		}
		t0 := p.Now()
		spun := st.lock.Lock(p)
		if spun > 0 {
			st.ovh.Add(trace.OverheadLock, spun)
		}
		p.Charge(st.costs.ClockRead)
		now := p.Now().Duration()
		next := st.processReleases(p, now)
		j, ok := st.popReady(p)
		st.lock.Unlock(p)
		st.ovh.Add(trace.OverheadSchedule, p.Now().Sub(t0))

		if st.stop {
			return
		}
		if !ok {
			// Idle: arm a timer for the next release (each worker manages
			// its own timer — there is no scheduler thread to do it).
			p.Charge(st.costs.TimerProgram)
			if next <= now {
				next = now + time.Millisecond
			}
			if intr, _ := p.SleepUntil(sim.Time(next)); intr {
				return
			}
			continue
		}
		// Execute the job to completion (migration is allowed: any worker
		// may pick up any job; YASMIN forbids this).
		tk := &st.set.Tasks[j.task]
		p.Charge(st.costs.ContextSwitch)
		wall := time.Duration(float64(tk.WCET) / speed)
		p.Compute(wall)
		fin := p.Now().Duration()
		st.rec.Record(trace.JobRecord{
			Task:     tk.Name,
			TaskID:   tk.ID,
			Core:     coreID,
			Release:  j.release,
			Start:    fin - wall,
			Finish:   fin,
			Deadline: j.absDL,
			Missed:   fin > j.absDL,
		})
	}
}

// processReleases moves due releases into the ready heap, paying malloc and
// queue costs per job, and returns the next future release instant.
// Caller holds the lock — and that is the structural difference to YASMIN:
// every worker pays the O(n) release scan inside the global critical
// section on every scheduling pass, whereas YASMIN's scheduler core pays it
// once per tick.
func (st *state) processReleases(p *sim.Proc, now time.Duration) (next time.Duration) {
	p.Charge(time.Duration(len(st.releases)) * st.costs.QueueOpPerItem)
	next = now + time.Hour
	for i := range st.releases {
		re := &st.releases[i]
		for re.release <= now {
			tk := &st.set.Tasks[re.task]
			// Dynamic allocation on the scheduling path: base + jitter.
			jit := time.Duration(p.Engine().Rand().Int63n(int64(st.costs.MallocJitterMax) + 1))
			p.Charge(st.costs.MallocBase + jit)
			st.seq++
			st.pushReady(p, readyJob{
				task:    re.task,
				release: re.release,
				absDL:   re.release + tk.Deadline,
				seq:     st.seq,
			})
			re.release += tk.Period
		}
		if re.release < next {
			next = re.release
		}
	}
	return next
}

// pushReady inserts into the deadline-ordered heap. Caller holds the lock.
func (st *state) pushReady(p *sim.Proc, j readyJob) {
	st.chargeHeapOp(p)
	st.ready = append(st.ready, j)
	i := len(st.ready) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !st.less(i, parent) {
			break
		}
		st.ready[i], st.ready[parent] = st.ready[parent], st.ready[i]
		i = parent
	}
}

// popReady removes the earliest-deadline job. Caller holds the lock.
func (st *state) popReady(p *sim.Proc) (readyJob, bool) {
	st.chargeHeapOp(p)
	if len(st.ready) == 0 {
		return readyJob{}, false
	}
	top := st.ready[0]
	last := len(st.ready) - 1
	st.ready[0] = st.ready[last]
	st.ready = st.ready[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(st.ready) && st.less(l, smallest) {
			smallest = l
		}
		if r < len(st.ready) && st.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		st.ready[i], st.ready[smallest] = st.ready[smallest], st.ready[i]
		i = smallest
	}
	return top, true
}

func (st *state) less(i, j int) bool {
	a, b := &st.ready[i], &st.ready[j]
	if a.absDL != b.absDL {
		return a.absDL < b.absDL
	}
	return a.seq < b.seq
}

func (st *state) chargeHeapOp(p *sim.Proc) {
	levels := 1
	for n := len(st.ready); n > 0; n >>= 1 {
		levels++
	}
	p.Charge(st.costs.QueueOpBase + time.Duration(levels)*st.costs.QueueOpPerItem)
}
