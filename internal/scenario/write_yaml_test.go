package scenario

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/yasmin-rt/yasmin/internal/spec"
)

func dms(d time.Duration) spec.Duration { return spec.Duration(d) }

// TestWriteYAMLRoundTripsCheckedInScenarios proves parse(write(s)) == s for
// every scenario file shipped in the repository.
func TestWriteYAMLRoundTripsCheckedInScenarios(t *testing.T) {
	paths, err := filepath.Glob("../../scenarios/*.yaml")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no scenario files found: %v", err)
	}
	corpus, _ := filepath.Glob("../../scenarios/corpus/*.yaml")
	for _, path := range append(paths, corpus...) {
		sc, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		back, err := Load(sc.WriteYAML(), "roundtrip.yaml")
		if err != nil {
			t.Fatalf("%s: reparse: %v\n%s", path, err, sc.WriteYAML())
		}
		if !reflect.DeepEqual(sc, back) {
			t.Errorf("%s: round trip diverged:\noriginal: %+v\nreparsed: %+v\nyaml:\n%s", path, sc, back, sc.WriteYAML())
		}
	}
}

// TestWriteYAMLRoundTripsAllFields exercises every optional field at once —
// fields no checked-in scenario happens to use still must round-trip.
func TestWriteYAMLRoundTripsAllFields(t *testing.T) {
	cases := []*Scenario{
		{
			Name:            "full-single",
			Seed:            1<<53 - 1,
			Duration:        dms(250 * time.Millisecond),
			Workers:         4,
			Mapping:         "partitioned",
			Priority:        "rm",
			SchedulerPeriod: dms(time.Millisecond),
			MaxPendingJobs:  512,
			Accels: []AccelDecl{
				{Name: "gpu", Count: 2},
				{Name: "dsp"},
			},
			AccelWaitBound: dms(80 * time.Millisecond),
			Groups: []TaskGroup{
				{
					Name: "chain", Count: 3,
					Period:        Dist{Choices: []spec.Duration{dms(5 * time.Millisecond), dms(10 * time.Millisecond)}},
					Utilization:   0.12,
					DeadlineRatio: 0.9,
					OffsetJitter:  true,
					Accel:         "gpu", AccelShare: 0.4,
					Accel2: "dsp", Accel2Share: 0.2,
				},
				{
					Name: "plain", Count: 2,
					Period:      Dist{Min: dms(8 * time.Millisecond), Max: dms(40 * time.Millisecond)},
					Utilization: 0.05,
				},
			},
			Topics: []TopicShape{
				{
					Name: "tele", Count: 2, Pubs: 3, Subs: 2, Capacity: 16,
					Policy:        "drop_oldest",
					PublishPeriod: dms(3 * time.Millisecond),
					ConsumePeriod: dms(7 * time.Millisecond),
				},
			},
			Churn: []ChurnPhase{
				{
					At: dms(20 * time.Millisecond), Every: dms(30 * time.Millisecond),
					Action: "ping_pong", Count: 4,
					Period:      Dist{Min: dms(10 * time.Millisecond), Max: dms(50 * time.Millisecond)},
					Utilization: 0.02,
					Accel:       "gpu", AccelShare: 0.3,
				},
				{At: 0, Action: "mode"},
			},
			Failures: Failures{TaskErrorRate: 0.25},
		},
		{
			Name:     "full-cluster",
			Duration: dms(100 * time.Millisecond),
			Workers:  2,
			Nodes: &NodesSpec{
				Count: 3, LossRate: 0.05, ReorderRate: 0.02,
				SyncInterval: dms(10 * time.Millisecond),
				ClockSkew:    []spec.Duration{0, dms(50 * time.Microsecond)},
			},
			Topics: []TopicShape{
				{
					Name: "wire", Count: 1, Pubs: 2, Subs: 2, Capacity: 32,
					PublishPeriod: dms(2 * time.Millisecond),
					ConsumePeriod: dms(5 * time.Millisecond),
					PubNodes:      []int{0, 1},
					SubNodes:      []int{2},
				},
			},
			Churn: []ChurnPhase{
				{At: dms(30 * time.Millisecond), Action: "cluster", Count: 2},
			},
		},
	}
	for _, sc := range cases {
		if err := sc.Validate(); err != nil {
			t.Fatalf("%s: test scenario invalid: %v", sc.Name, err)
		}
		back, err := Load(sc.WriteYAML(), "roundtrip.yaml")
		if err != nil {
			t.Fatalf("%s: reparse: %v\n%s", sc.Name, err, sc.WriteYAML())
		}
		if !reflect.DeepEqual(sc, back) {
			t.Errorf("%s: round trip diverged:\noriginal: %+v\nreparsed: %+v\nyaml:\n%s", sc.Name, sc, back, sc.WriteYAML())
		}
	}
}

// TestWriteYAMLQuotesHostileStrings covers names a bare YAML scalar would
// mis-type.
func TestWriteYAMLQuotesHostileStrings(t *testing.T) {
	sc := &Scenario{
		Name:     "3.14",
		Duration: dms(50 * time.Millisecond),
		Workers:  1,
		Groups: []TaskGroup{{
			Name: "a: b #c", Count: 1,
			Period:      Dist{Min: dms(5 * time.Millisecond), Max: dms(10 * time.Millisecond)},
			Utilization: 0.1,
		}},
	}
	if err := sc.Validate(); err != nil {
		t.Fatalf("test scenario invalid: %v", err)
	}
	back, err := Load(sc.WriteYAML(), "roundtrip.yaml")
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, sc.WriteYAML())
	}
	if !reflect.DeepEqual(sc, back) {
		t.Errorf("round trip diverged:\noriginal: %+v\nreparsed: %+v\nyaml:\n%s", sc, back, sc.WriteYAML())
	}
}
